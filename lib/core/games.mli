(** Monte-Carlo instantiations of the paper's security games (§6.2,
    Appendix A), used to regenerate Table 1 and the §6.2.1/§4.3 numbers.

    All games draw from an explicit RNG and a fresh MAC key per trial
    (matching the paper's assumption that every program run gets new PA
    keys). *)

type estimate = {
  successes : int;
  trials : int;
  rate : float;
  ci_low : float;
  ci_high : float;  (** 95 % Wilson interval *)
}

val pp_estimate : Format.formatter -> estimate -> unit

val estimate : successes:int -> trials:int -> estimate
(** Wraps a raw (successes, trials) count, deriving rate and interval. *)

val merge_estimates : estimate -> estimate -> estimate
(** Pools two binomial samples. Associative and commutative, so shard
    estimates from a parallel campaign merge to the same total in any
    order; rate and interval are recomputed from the pooled counts. *)

(** {1 §6.2.1 — collisions} *)

val birthday_harvest : ?bits:int -> trials:int -> Pacstack_util.Rng.t -> float
(** Mean number of tokens an adversary must harvest before two (unmasked)
    tokens collide. [bits] defaults to 16; the paper's expectation is
    ≈ 321. *)

val birthday_total : ?bits:int -> trials:int -> Pacstack_util.Rng.t -> int
(** Shardable form of {!birthday_harvest}: the summed harvest count over
    [trials] runs. Shard totals add; divide by the summed trials for the
    campaign mean. *)

val violation_success :
  masked:bool ->
  kind:Analysis.violation_kind ->
  bits:int ->
  ?harvest:int ->
  trials:int ->
  Pacstack_util.Rng.t -> estimate
(** One Table 1 cell: the adversary's measured success rate at the given
    violation. For [On_graph] the adversary first harvests [harvest]
    (default 2000) authenticated return addresses along distinct paths;
    without masking it exploits any visible collision, with masking it
    must pick blindly. *)

(** {1 Appendix A — mask indistinguishability} *)

val mask_distinguisher_advantage :
  bits:int -> queries:int -> trials:int -> Pacstack_util.Rng.t -> float
(** Advantage of a collision-statistics distinguisher at telling masked
    real tokens from uniform random strings. The Appendix A theorem says
    this bounds the collision-finding advantage; masking is sound iff this
    is ≈ 0. *)

type theorem1 = {
  collision_advantage : float;
  distinguisher_advantage : float;
  bound : float;  (** 2 x distinguisher advantage + sampling slack *)
  holds : bool;
}

val theorem1_check :
  bits:int -> queries:int -> trials:int -> Pacstack_util.Rng.t -> theorem1
(** Empirical check of Appendix A Theorem 1: the measured advantage at
    finding unmasked-token collisions from masked observations stays below
    twice the distinguisher advantage (plus Monte-Carlo slack). *)

(** {1 §4.3 — brute-force guessing} *)

type guess_strategy =
  | Divide_and_conquer
      (** shared keys across pre-forked siblings, no re-seeding *)
  | Reseeded  (** the paper's mitigation: per-fork/thread chain re-seed *)
  | Independent  (** both tokens guessed jointly *)

val pp_guess_strategy : Format.formatter -> guess_strategy -> unit

val guessing_mean :
  strategy:guess_strategy -> bits:int -> trials:int -> Pacstack_util.Rng.t -> float
(** Measured mean number of guesses until the adversary can jump to an
    arbitrary address. Expectations: ≈ 2^b, 2^(b+1) and 2^(2b)
    respectively (§4.3). *)

val guessing_total :
  strategy:guess_strategy -> bits:int -> trials:int -> Pacstack_util.Rng.t -> int
(** Shardable form of {!guessing_mean}: the summed guess count over
    [trials] attacks. Shard totals add; divide by the summed trials for
    the campaign mean. *)
