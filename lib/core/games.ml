module Word64 = Pacstack_util.Word64
module Rng = Pacstack_util.Rng
module Stats = Pacstack_util.Stats
module Prf = Pacstack_qarma.Prf

type estimate = {
  successes : int;
  trials : int;
  rate : float;
  ci_low : float;
  ci_high : float;
}

let estimate ~successes ~trials =
  let ci_low, ci_high = Stats.binomial_ci ~successes ~trials in
  { successes; trials; rate = float_of_int successes /. float_of_int trials; ci_low; ci_high }

(* Pooling two binomial samples is associative and commutative on the
   (successes, trials) pair; the derived fields are recomputed, so merged
   shard estimates are identical however the campaign ordered them. *)
let merge_estimates a b = estimate ~successes:(a.successes + b.successes) ~trials:(a.trials + b.trials)

let pp_estimate fmt e =
  Format.fprintf fmt "%d/%d = %.2e [%.2e, %.2e]" e.successes e.trials e.rate e.ci_low e.ci_high

let fresh_prf rng = Prf.create_fast (Rng.next64 rng)

let token prf ~bits ~data ~modifier = Prf.mac prf ~bits ~data ~modifier

(* --- §6.2.1 birthday harvesting -------------------------------------- *)

let birthday_total ?(bits = 16) ~trials rng =
  if trials <= 0 then invalid_arg "Games.birthday_total";
  let total = ref 0 in
  for _ = 1 to trials do
    let prf = fresh_prf rng in
    let ret_c = Rng.next64 rng in
    let seen = Hashtbl.create 512 in
    let rec harvest n =
      let modifier = Rng.next64 rng in
      let t = token prf ~bits ~data:ret_c ~modifier in
      if Hashtbl.mem seen t then n + 1
      else begin
        Hashtbl.replace seen t ();
        harvest (n + 1)
      end
    in
    total := !total + harvest 0
  done;
  !total

let birthday_harvest ?bits ~trials rng =
  if trials <= 0 then invalid_arg "Games.birthday_harvest";
  float_of_int (birthday_total ?bits ~trials rng) /. float_of_int trials

(* --- Table 1 cells ---------------------------------------------------- *)

(* The §6.2 attack template: function C was set up to return to ret_A via
   aret_A (token over modifier m_A); the adversary substitutes aret_B and
   wins (AG-Load) iff H(ret_C, aret_B) = H(ret_C, aret_A); for arbitrary
   targets it additionally needs the forged token inside aret_B to verify
   (AG-Jump). *)

let mask prf ~bits ~modifier = token prf ~bits ~data:0L ~modifier

let on_graph_trial ~masked ~bits ~harvest prf rng =
  let ret_c = Rng.next64 rng in
  (* Harvest [harvest] authenticated return addresses for ret_C along
     distinct paths (distinct previous-aret modifiers). The adversary sees
     the stored (possibly masked) token together with its modifier. *)
  let entries =
    Array.init harvest (fun _ ->
        let modifier = Rng.next64 rng in
        let t = token prf ~bits ~data:ret_c ~modifier in
        let visible = if masked then Int64.logxor t (mask prf ~bits ~modifier) else t in
        (modifier, t, visible))
  in
  (* Pick the substitution pair: with visible collisions, a real one;
     otherwise (masking) any pair. *)
  let pick_visible_collision () =
    let seen = Hashtbl.create harvest in
    let found = ref None in
    Array.iteri
      (fun i (_, _, visible) ->
        match Hashtbl.find_opt seen visible with
        | Some j when !found = None -> found := Some (j, i)
        | Some _ | None -> Hashtbl.replace seen visible i)
      entries;
    !found
  in
  let pair =
    match pick_visible_collision () with
    | Some p -> p
    | None ->
      let i = Rng.int rng harvest in
      let j = (i + 1 + Rng.int rng (harvest - 1)) mod harvest in
      (i, j)
  in
  let i, j = pair in
  let (_, t_a, _), (_, t_b, _) = (entries.(i), entries.(j)) in
  (* AG-Load succeeds iff the true (unmasked) tokens collide. *)
  Word64.equal t_a t_b

let off_graph_trial ~arbitrary ~bits prf rng =
  let ret_c = Rng.next64 rng in
  let aret_a = Rng.next64 rng in
  let aret_b = Rng.next64 rng in
  let load_ok =
    Word64.equal (token prf ~bits ~data:ret_c ~modifier:aret_a)
      (token prf ~bits ~data:ret_c ~modifier:aret_b)
  in
  if not arbitrary then load_ok
  else
    (* AG-Jump: the token embedded in aret_B must also verify for a
       never-signed target address; the adversary can only guess it. *)
    let ret_b = Rng.next64 rng in
    let guessed = Rng.bits rng bits in
    load_ok && Word64.equal guessed (token prf ~bits ~data:ret_b ~modifier:(Rng.next64 rng))

let violation_success ~masked ~kind ~bits ?(harvest = 2000) ~trials rng =
  if trials <= 0 then invalid_arg "Games.violation_success";
  let successes = ref 0 in
  for _ = 1 to trials do
    let prf = fresh_prf rng in
    let ok =
      match (kind : Analysis.violation_kind) with
      | Analysis.On_graph -> on_graph_trial ~masked ~bits ~harvest prf rng
      | Analysis.Off_graph_to_call_site -> off_graph_trial ~arbitrary:false ~bits prf rng
      | Analysis.Off_graph_arbitrary -> off_graph_trial ~arbitrary:true ~bits prf rng
    in
    if ok then incr successes
  done;
  estimate ~successes:!successes ~trials

(* --- Appendix A distinguisher ----------------------------------------- *)

let mask_distinguisher_advantage ~bits ~queries ~trials rng =
  if trials <= 0 || queries < 2 then invalid_arg "Games.mask_distinguisher_advantage";
  let correct = ref 0 in
  for _ = 1 to trials do
    let prf = fresh_prf rng in
    let real = Rng.bool rng in
    let data = Rng.next64 rng in
    (* Sample the visible stream: masked real tokens or uniform noise. *)
    let sample () =
      if real then
        let modifier = Rng.next64 rng in
        Int64.logxor (token prf ~bits ~data ~modifier) (mask prf ~bits ~modifier)
      else Rng.bits rng bits
    in
    (* Distinguisher: compare the observed collision count against the
       birthday expectation for uniform tokens; guess "real" when below. *)
    let seen = Hashtbl.create queries in
    let collisions = ref 0 in
    for _ = 1 to queries do
      let v = sample () in
      if Hashtbl.mem seen v then incr collisions else Hashtbl.replace seen v ()
    done;
    let expected =
      float_of_int (queries * (queries - 1)) /. (2.0 *. (2.0 ** float_of_int bits))
    in
    let guess_real = float_of_int !collisions < expected in
    if guess_real = real then incr correct
  done;
  abs_float ((float_of_int !correct /. float_of_int trials) -. 0.5)

(* --- Appendix A, Theorem 1 -------------------------------------------------- *)

type theorem1 = {
  collision_advantage : float;
  distinguisher_advantage : float;
  bound : float;
  holds : bool;
}

let theorem1_check ~bits ~queries ~trials rng =
  (* G-PAC-Collision: the adversary sees [queries] masked tokens and names
     a pair it believes collides; its advantage is the success rate beyond
     the blind 2^-b baseline. *)
  let successes = ref 0 in
  for _ = 1 to trials do
    let prf = fresh_prf rng in
    let data = Rng.next64 rng in
    let entries =
      Array.init queries (fun _ ->
          let modifier = Rng.next64 rng in
          let t = token prf ~bits ~data ~modifier in
          (t, Int64.logxor t (mask prf ~bits ~modifier)))
    in
    (* best effort: pick a visibly-colliding masked pair if any, else any *)
    let pick =
      let seen = Hashtbl.create queries in
      let found = ref None in
      Array.iteri
        (fun i (_, visible) ->
          match Hashtbl.find_opt seen visible with
          | Some j when !found = None -> found := Some (j, i)
          | Some _ | None -> Hashtbl.replace seen visible i)
        entries;
      match !found with
      | Some p -> p
      | None -> (0, 1 + Rng.int rng (queries - 1))
    in
    let (t1, _), (t2, _) = (entries.(fst pick), entries.(snd pick)) in
    if Word64.equal t1 t2 then incr successes
  done;
  let collision_advantage =
    Float.max 0.0
      ((float_of_int !successes /. float_of_int trials) -. (2.0 ** float_of_int (-bits)))
  in
  let distinguisher_advantage = mask_distinguisher_advantage ~bits ~queries ~trials rng in
  (* three-sigma Monte-Carlo slack on both estimates *)
  let slack = 3.0 /. sqrt (float_of_int trials) in
  let bound = (2.0 *. distinguisher_advantage) +. slack in
  { collision_advantage; distinguisher_advantage; bound; holds = collision_advantage <= bound }

(* --- §4.3 guessing ----------------------------------------------------- *)

type guess_strategy = Divide_and_conquer | Reseeded | Independent

let pp_guess_strategy fmt = function
  | Divide_and_conquer -> Format.pp_print_string fmt "divide-and-conquer (shared keys)"
  | Reseeded -> Format.pp_print_string fmt "re-seeded chains"
  | Independent -> Format.pp_print_string fmt "independent joint guess"

let guessing_total ~strategy ~bits ~trials rng =
  if trials <= 0 then invalid_arg "Games.guessing_total";
  let space = Int64.to_int (Word64.mask bits) + 1 in
  let total = ref 0 in
  for _ = 1 to trials do
    let guesses = ref 0 in
    (match strategy with
    | Divide_and_conquer ->
      (* The token answers are fixed across siblings (inherited chain
         state), so each stage is enumerated without replacement. *)
      let stage () =
        let answer = Rng.int rng space in
        guesses := !guesses + answer + 1
      in
      stage ();
      stage ()
    | Reseeded ->
      (* Every sibling re-seeds its chain: each guess faces a fresh
         uniform answer, so a stage is geometric with mean 2^b. *)
      let stage () =
        let rec go () =
          incr guesses;
          if Rng.int rng space <> 0 then go ()
        in
        go ()
      in
      stage ();
      stage ()
    | Independent ->
      (* One shot must get both tokens right. *)
      let rec go () =
        incr guesses;
        if not (Rng.int rng space = 0 && Rng.int rng space = 0) then go ()
      in
      go ());
    total := !total + !guesses
  done;
  !total

let guessing_mean ~strategy ~bits ~trials rng =
  if trials <= 0 then invalid_arg "Games.guessing_mean";
  float_of_int (guessing_total ~strategy ~bits ~trials rng) /. float_of_int trials
