module Ast = Pacstack_minic.Ast
module B = Pacstack_minic.Build
module Compile = Pacstack_minic.Compile
module Scheme = Pacstack_harden.Scheme
module Machine = Pacstack_machine.Machine
module Kernel = Pacstack_machine.Kernel
module Trap = Pacstack_machine.Trap
module Rng = Pacstack_util.Rng

type test = {
  name : string;
  description : string;
  program : Ast.program;
  expected : int64 list;
  needs_kernel : bool;
  overrides : (string * Scheme.t) list;
}

let test ?(needs_kernel = false) ?(overrides = []) name description program expected =
  { name; description; program; expected; needs_kernel; overrides }

let widx g e = B.(glob g + (e lsl i 3))

let indirect_call =
  test "indirect_call" "call through a function pointer"
    (Ast.program
       [
         Ast.fdef "twice" ~params:[ "x" ] B.[ ret (v "x" * i 2) ];
         Ast.fdef "main" ~locals:[ Ast.Scalar "p"; Ast.Scalar "r" ]
           B.[
             set "p" (fn "twice");
             set "r" (Ast.Call_ptr (v "p", [ i 21 ]));
             print (v "r");
             ret (i 0);
           ];
       ])
    [ 42L ]

let fptr_table =
  test "fptr_table" "dispatch through a function-pointer table in memory"
    (Ast.program
       ~globals:[ ("table", 16) ]
       [
         Ast.fdef "add3" ~params:[ "x" ] B.[ ret (v "x" + i 3) ];
         Ast.fdef "dbl" ~params:[ "x" ] B.[ ret (v "x" * i 2) ];
         Ast.fdef "main" ~locals:[ Ast.Scalar "k"; Ast.Scalar "acc"; Ast.Scalar "f" ]
           B.[
             store (widx "table" (i 0)) (fn "add3");
             store (widx "table" (i 1)) (fn "dbl");
             set "acc" (i 5);
             for_ "k" ~from:(i 0) ~below:(i 4)
               [
                 set "f" (load (widx "table" (v "k" land i 1)));
                 set "acc" (Ast.Call_ptr (v "f", [ v "acc" ]));
               ];
             print (v "acc");
             ret (i 0);
           ];
       ])
    [ 38L ]

let setjmp_basic =
  test "setjmp_longjmp" "longjmp across several frames"
    (Ast.program
       ~globals:[ ("jb", 128) ]
       [
         Ast.fdef "down" ~params:[ "d" ] ~locals:[ Ast.Scalar "r" ]
           B.[
             if_ (v "d" == i 0) [ Ast.Longjmp (glob "jb", i 7) ] [];
             set "r" (call "down" [ v "d" - i 1 ]);
             ret (v "r");
           ];
         Ast.fdef "main" ~locals:[ Ast.Scalar "r"; Ast.Scalar "x" ]
           B.[
             Ast.Setjmp ("r", glob "jb");
             if_ (v "r" != i 0) [ print (v "r"); ret (i 0) ] [];
             set "x" (call "down" [ i 3 ]);
             ret (v "x");
           ];
       ])
    [ 7L ]

let setjmp_twice =
  test "setjmp_twice" "setjmp observed returning twice with correct values"
    (Ast.program
       ~globals:[ ("jb", 128) ]
       [
         Ast.fdef "main" ~locals:[ Ast.Scalar "r" ]
           B.[
             Ast.Setjmp ("r", glob "jb");
             print (v "r");
             if_ (v "r" == i 0) [ Ast.Longjmp (glob "jb", i 9) ] [];
             ret (i 0);
           ];
       ])
    [ 0L; 9L ]

let tail_call =
  test "tail_call" "tail-recursive accumulation via non-linking branches"
    (Ast.program
       [
         Ast.fdef "sum" ~params:[ "n"; "acc" ]
           B.[
             if_ (v "n" == i 0) [ ret (v "acc") ] [];
             Ast.Tail_call ("sum", [ v "n" - i 1; v "acc" + v "n" ]);
           ];
         Ast.fdef "main" ~locals:[ Ast.Scalar "r" ]
           B.[
             set "r" (call "sum" [ i 5; i 0 ]);
             print (v "r");
             ret (i 0);
           ];
       ])
    [ 15L ]

let deep_recursion =
  test "deep_recursion" "400-deep call chain"
    (Ast.program
       [
         Ast.fdef "down" ~params:[ "d" ] ~locals:[ Ast.Scalar "r" ]
           B.[
             if_ (v "d" == i 0) [ ret (i 0) ] [];
             set "r" (call "down" [ v "d" - i 1 ]);
             ret (v "r" + v "d");
           ];
         Ast.fdef "main" ~locals:[ Ast.Scalar "r" ]
           B.[
             set "r" (call "down" [ i 400 ]);
             print (v "r");
             ret (i 0);
           ];
       ])
    [ 80200L ]

let calling_convention =
  test "calling_convention" "six register arguments"
    (Ast.program
       [
         Ast.fdef "weigh" ~params:[ "a"; "b"; "c"; "d"; "e"; "f" ]
           ~locals:[ Ast.Scalar "s" ]
           B.[
             set "s" (v "a" + (v "b" * i 2) + (v "c" * i 3));
             ret (v "s" + (v "d" * i 4) + (v "e" * i 5) + (v "f" * i 6));
           ];
         Ast.fdef "main" ~locals:[ Ast.Scalar "r" ]
           B.[
             set "r" (call "weigh" [ i 1; i 2; i 3; i 4; i 5; i 6 ]);
             print (v "r");
             ret (i 0);
           ];
       ])
    [ 91L ]

let mutual_recursion =
  test "mutual_recursion" "mutually recursive even/odd"
    (Ast.program
       [
         Ast.fdef "is_even" ~params:[ "n" ] ~locals:[ Ast.Scalar "r" ]
           B.[
             if_ (v "n" == i 0) [ ret (i 1) ] [];
             set "r" (call "is_odd" [ v "n" - i 1 ]);
             ret (v "r");
           ];
         Ast.fdef "is_odd" ~params:[ "n" ] ~locals:[ Ast.Scalar "r" ]
           B.[
             if_ (v "n" == i 0) [ ret (i 0) ] [];
             set "r" (call "is_even" [ v "n" - i 1 ]);
             ret (v "r");
           ];
         Ast.fdef "main" ~locals:[ Ast.Scalar "r" ]
           B.[
             set "r" (call "is_even" [ i 10 ]);
             print (v "r");
             ret (i 0);
           ];
       ])
    [ 1L ]

let signal_delivery =
  test ~needs_kernel:true "signal_delivery" "asynchronous signal and sigreturn"
    (Ast.program
       [
         Ast.fdef "handler" ~params:[ "sig" ] ~locals:[ Ast.Scalar "t" ]
           B.[
             set "t" (call "echo" [ v "sig" + i 100 ]);
             print (v "t");
             ret (i 0);
           ];
         Ast.fdef "echo" ~params:[ "x" ] B.[ ret (v "x") ];
         Ast.fdef "main" ~locals:[ Ast.Scalar "k"; Ast.Scalar "s" ]
           B.[
             set "s" (i 0);
             for_ "k" ~from:(i 0) ~below:(i 100) [ set "s" (v "s" + v "k") ];
             print (v "s");
             ret (i 0);
           ];
       ])
    [ 105L; 4950L ]

let mixed_linkage =
  test
    ~overrides:[ ("legacy", Scheme.unprotected) ]
    "mixed_linkage" "instrumented caller into an uninstrumented library function"
    (Ast.program
       [
         Ast.fdef "legacy" ~params:[ "x" ] ~locals:[ Ast.Scalar "t" ]
           B.[
             set "t" (call "leaf5" [ v "x" ]);
             ret (v "t");
           ];
         Ast.fdef "leaf5" ~params:[ "x" ] B.[ ret (v "x" + i 5) ];
         Ast.fdef "main" ~locals:[ Ast.Scalar "r" ]
           B.[
             set "r" (call "legacy" [ i 10 ]);
             print (v "r");
             ret (i 0);
           ];
       ])
    [ 15L ]

let nested_longjmp =
  test "nested_longjmp" "longjmp to an outer environment across a nested setjmp"
    (Ast.program
       ~globals:[ ("jb1", 128); ("jb2", 128) ]
       [
         Ast.fdef "deep" ~locals:[ Ast.Scalar "z" ]
           B.[
             set "z" (i 1);
             Ast.Longjmp (glob "jb1", i 33);
             ret (v "z");
           ];
         Ast.fdef "mid" ~locals:[ Ast.Scalar "r2"; Ast.Scalar "x" ]
           B.[
             Ast.Setjmp ("r2", glob "jb2");
             if_ (v "r2" != i 0) [ ret (i 999) ] [];
             set "x" (call "deep" []);
             ret (v "x");
           ];
         Ast.fdef "main" ~locals:[ Ast.Scalar "r1"; Ast.Scalar "x" ]
           B.[
             Ast.Setjmp ("r1", glob "jb1");
             if_ (v "r1" != i 0) [ print (v "r1"); ret (i 0) ] [];
             set "x" (call "mid" []);
             ret (v "x");
           ];
       ])
    [ 33L ]

let all =
  [
    indirect_call;
    fptr_table;
    setjmp_basic;
    setjmp_twice;
    tail_call;
    deep_recursion;
    calling_convention;
    mutual_recursion;
    signal_delivery;
    mixed_linkage;
    nested_longjmp;
  ]

type outcome = Pass | Fail of string

let check_output t out =
  if out = t.expected then Pass
  else
    Fail
      (Printf.sprintf "expected [%s], got [%s]"
         (String.concat "; " (List.map Int64.to_string t.expected))
         (String.concat "; " (List.map Int64.to_string out)))

let run ~scheme t =
  match Compile.compile ~scheme ~overrides:t.overrides t.program with
  | exception Compile.Error m -> Fail ("compile error: " ^ m)
  | program -> (
    if not t.needs_kernel then (
      let m = Machine.load program in
      match Machine.run ~fuel:5_000_000 m with
      | Machine.Halted 0 -> check_output t (Machine.output m)
      | Machine.Halted c -> Fail (Printf.sprintf "exit code %d" c)
      | Machine.Faulted f -> Fail ("fault: " ^ Trap.to_string f)
      | Machine.Out_of_fuel -> Fail "out of fuel")
    else
      (* run a while, deliver a signal mid-loop, then run to completion *)
      let kernel = Kernel.create (Rng.create 99L) in
      let proc = Kernel.boot kernel program in
      let m = Kernel.machine proc in
      let rec warmup () =
        if Machine.instructions_retired m < 300 && Machine.halted m = None then (
          Machine.step m;
          warmup ())
      in
      match warmup () with
      | exception Trap.Fault f -> Fail ("fault during warmup: " ^ Trap.to_string f)
      | () -> (
        Kernel.deliver_signal kernel proc ~handler:"handler" ~signum:5;
        match Kernel.run kernel proc with
        | Machine.Halted 0 -> check_output t (Machine.output m)
        | Machine.Halted c -> Fail (Printf.sprintf "exit code %d" c)
        | Machine.Faulted f -> Fail ("fault: " ^ Trap.to_string f)
        | Machine.Out_of_fuel -> Fail "out of fuel"))

let run_all ~scheme = List.map (fun t -> (t, run ~scheme t)) all
