module Ast = Pacstack_minic.Ast
module B = Pacstack_minic.Build
module Compile = Pacstack_minic.Compile
module Scheme = Pacstack_harden.Scheme
module Machine = Pacstack_machine.Machine
module Trap = Pacstack_machine.Trap
module Stats = Pacstack_util.Stats
module Obs = Pacstack_obs.Obs

type result = {
  scheme : Scheme.t;
  workers : int;
  req_per_sec : float;
  sigma : float;
  cycles_per_request : float;
  mem_ops_per_request : float;
}

let widx g e = B.(glob g + (e lsl i 3))

(* The handshake kernel, the request-size jitter and the memory-contention
   model used to be closed over inside [measure]'s per-scheme loop; they
   are public here so the fleet simulator (lib/fleet) can reuse exactly
   the same request physics — same compiled programs, same cycle counts,
   same contention charge — that the Table 3 report measures. *)
module Kernel = struct
  let base_records = 72

  let records ~variant = base_records + (variant mod 9)

  (* One HTTPS request: an RSA-flavoured key exchange (square-and-multiply
     over 2^61-1) plus per-record cipher and MAC passes over the response.
     [records] is the response size in records — the request-size axis the
     fleet's heavy-tailed mixes stretch far beyond the ±9 jitter of the
     Table 3 variants. *)
  let program ~records =
    Ast.program
      ~globals:[ ("record", 8 * 64); ("state", 8 * 8) ]
      [
        Ast.fdef "reduce" ~params:[ "x" ] B.[ ret (v "x" land i64 0x1fffffffffffffffL) ];
        Ast.fdef "modmul" ~params:[ "a"; "b" ]
          B.[ ret (call "reduce" [ (v "a" * v "b") + (v "a" lsr i 32) ]) ];
        Ast.fdef "modexp" ~params:[ "base"; "e" ]
          ~locals:[ Ast.Scalar "r"; Ast.Scalar "k" ]
          B.[
            set "r" (i 1);
            for_ "k" ~from:(i 0) ~below:(i 32)
              [
                if_ (((v "e" lsr v "k") land i 1) == i 1)
                  [ set "r" (call "modmul" [ v "r"; v "base" ]) ]
                  [];
                set "base" (call "modmul" [ v "base"; v "base" ]);
              ];
            ret (v "r");
          ];
        Ast.fdef "mix_word" ~params:[ "w"; "k" ]
          B.[ ret ((v "w" * i 2654435761) lxor (v "k" + (v "w" lsr i 29))) ];
        Ast.fdef "cipher_record" ~params:[ "rec"; "key" ]
          ~locals:[ Ast.Scalar "j"; Ast.Scalar "w" ]
          B.[
            for_ "j" ~from:(i 0) ~below:(i 6)
              [
                set "w" (load (widx "record" ((v "rec" + v "j") land i 63)));
                set "w" ((v "w" lsl i 1) lxor (v "key" + v "j"));
                set "w" ((v "w" * i 1099511627) lxor (v "w" lsr i 17));
                store (widx "record" ((v "rec" + v "j") land i 63)) (v "w");
              ];
            ret (call "mix_word" [ load (widx "record" (v "rec" land i 63)); v "key" ]);
          ];
        Ast.fdef "mac_record" ~params:[ "rec"; "key" ]
          ~locals:[ Ast.Scalar "j"; Ast.Scalar "h" ]
          B.[
            set "h" (v "key");
            for_ "j" ~from:(i 0) ~below:(i 8)
              [ set "h" (call "mix_word" [ v "h" + load (widx "record" ((v "rec" + v "j") land i 63)); v "j" ]) ];
            ret (v "h");
          ];
        Ast.fdef "handshake" ~params:[ "nrec" ]
          ~locals:[ Ast.Scalar "key"; Ast.Scalar "r"; Ast.Scalar "sum" ]
          B.[
            set "key" (call "modexp" [ i 65537; i64 0x10001abcdL ]);
            set "sum" (i 0);
            for_ "r" ~from:(i 0) ~below:(v "nrec")
              [
                set "sum" (v "sum" + call "cipher_record" [ v "r" * i 3; v "key" ]);
                set "sum" (v "sum" lxor call "mac_record" [ v "r" * i 3; v "sum" ]);
              ];
            ret (v "sum");
          ];
        Ast.fdef "main"
          ~locals:[ Ast.Scalar "k"; Ast.Scalar "s" ]
          B.[
            for_ "k" ~from:(i 0) ~below:(i 64) [ store (widx "record" (v "k")) (v "k" * i 7919) ];
            set "s" (call "handshake" [ i records ]);
            print (v "s");
            ret (i 0);
          ];
      ]

  (* Calibration (see DESIGN.md):
     - [clock_hz] pins the absolute baseline throughput near Table 3;
     - [scaling 8] reflects the paper's own superlinear 4->8-worker baseline
       (30.7k vs 2x14.2k);
     - [contention w] charges each memory operation the instrumentation adds
       *beyond the baseline's footprint*: the baseline working set stays
       cache-resident, while extra stack traffic (CR spills, shadow-stack
       pushes) contends for the memory system as workers multiply — this is
       what makes the paper's 8-worker overheads exceed the 4-worker ones. *)
  let clock_hz = 445.0e6
  let scaling = function 8 -> 1.08 | _ -> 1.0
  let contention = function 8 -> 43.0 | _ -> 1.0

  let compiled ~scheme ~records = Compile.compile ~scheme (program ~records)

  (* Runs one compiled request to completion and charges its cost.
     [obs_label] attributes the machine's published counters (a non-empty
     label renders machine.* metrics as machine.*{scheme=...}). *)
  let execute ?(obs_label = "") program =
    let m = Machine.load program in
    if Obs.enabled () && obs_label <> "" then Machine.set_obs_label m obs_label;
    match Machine.run ~fuel:10_000_000 m with
    | Machine.Halted 0 ->
      (float_of_int (Machine.cycles m), float_of_int (Machine.memory_operations m))
    | Machine.Halted c -> failwith (Printf.sprintf "server: exit %d" c)
    | Machine.Faulted f -> failwith ("server: fault: " ^ Trap.to_string f)
    | Machine.Out_of_fuel -> failwith "server: out of fuel"

  let measure_request ~scheme ~records =
    execute ~obs_label:(Scheme.to_string scheme) (compiled ~scheme ~records)

  (* Throughput of [workers] cores serving requests of this cost:
     [workers * clock / (cycles + contention charge)], the Table 3 model.
     [base_mem] is the unprotected footprint for the same request size —
     only the instrumentation's *extra* memory traffic contends. *)
  let throughput ~workers ~base_mem ~cycles ~mem_ops =
    let beta = contention workers in
    let extra_mem = Float.max 0.0 (mem_ops -. base_mem) in
    float_of_int workers *. clock_hz *. scaling workers /. (cycles +. (beta *. extra_mem))
end

let handshake_program ~variant = Kernel.program ~records:(Kernel.records ~variant)

let obs_cycles_histogram = "server.cycles_per_request"

let run_request ~scheme ~variant =
  if Obs.enabled () then Obs.Metrics.incr "server.requests";
  let (cycles, mem_ops) =
    Kernel.measure_request ~scheme ~records:(Kernel.records ~variant)
  in
  if Obs.enabled () then begin
    Obs.Metrics.register_histogram obs_cycles_histogram ~lo:0. ~hi:1e6 ~buckets:20;
    Obs.Metrics.observe obs_cycles_histogram cycles
  end;
  (cycles, mem_ops)

let measure ~scheme ~workers ?(variants = 10) () =
  if variants < 2 then invalid_arg "Server.measure";
  let samples = List.init variants (fun variant -> run_request ~scheme ~variant) in
  let base_samples =
    if Scheme.equal scheme Scheme.unprotected then samples
    else List.init variants (fun variant -> run_request ~scheme:Scheme.unprotected ~variant)
  in
  let tps =
    List.map2
      (fun (_, base_mem) (cycles, mem_ops) ->
        Kernel.throughput ~workers ~base_mem ~cycles ~mem_ops)
      base_samples samples
  in
  let cycles = Stats.mean (List.map fst samples) in
  let mem_ops = Stats.mean (List.map snd samples) in
  {
    scheme;
    workers;
    req_per_sec = Stats.mean tps;
    sigma = Stats.stddev tps;
    cycles_per_request = cycles;
    mem_ops_per_request = mem_ops;
  }

let overhead_pct ~baseline r =
  (baseline.req_per_sec -. r.req_per_sec) /. baseline.req_per_sec *. 100.0

let sweep_cells ?(worker_counts = [ 4; 8 ])
    ?(schemes =
      [ Scheme.unprotected; Scheme.pacstack_nomask; Scheme.pacstack;
        Scheme.pcan; Scheme.zipper; Scheme.pactight; Scheme.parts ]) () =
  List.concat_map (fun workers -> List.map (fun scheme -> (workers, scheme)) schemes) worker_counts
