module Ast = Pacstack_minic.Ast
module B = Pacstack_minic.Build
module Compile = Pacstack_minic.Compile
module Scheme = Pacstack_harden.Scheme
module Machine = Pacstack_machine.Machine
module Trap = Pacstack_machine.Trap

type variant = Rate | Speed

let variant_to_string = function Rate -> "rate" | Speed -> "speed"

type benchmark = {
  name : string;
  description : string;
  program : variant -> Ast.program;
}

let scale = function Rate -> 1 | Speed -> 3

(* address of 64-bit word [e] of global array [g] *)
let widx g e = B.(glob g + (e lsl i 3))
let bidx g e = B.(glob g + e)

(* --- perlbench: interpreter-style dispatch, very call-heavy ----------- *)

let perlbench variant =
  let n = 1200 * scale variant in
  let op name body = Ast.fdef name ~params:[ "x" ] body in
  Ast.program
    ~globals:[ ("ops", 8 * 4) ]
    [
      op "op_inc" B.[ ret (v "x" + i 1) ];
      op "op_tri" B.[ ret (v "x" * i 3) ];
      op "op_mix" B.[ ret (v "x" lxor (v "x" lsr i 3)) ];
      op "op_dbl" B.[ ret (v "x" + (v "x" lsl i 1)) ];
      Ast.fdef "dispatch" ~params:[ "op"; "x" ]
        ~locals:[ Ast.Scalar "f" ]
        B.[
          set "f" (load (widx "ops" (v "op" land i 3)));
          ret (Ast.Call_ptr (v "f", [ v "x" ]));
        ];
      Ast.fdef "scan" ~params:[ "x" ]
        ~locals:[ Ast.Array ("buf", 32); Ast.Scalar "j"; Ast.Scalar "s" ]
        B.[
          for_ "j" ~from:(i 0) ~below:(i 4)
            [ store (idx "buf" (v "j" lsl i 3)) (v "x" + v "j") ];
          set "s" (i 0);
          for_ "j" ~from:(i 0) ~below:(i 4)
            [ set "s" (v "s" + load (idx "buf" (v "j" lsl i 3))) ];
          ret (v "s");
        ];
      Ast.fdef "main"
        ~locals:[ Ast.Scalar "acc"; Ast.Scalar "k"; Ast.Scalar "j" ]
        B.[
          store (widx "ops" (i 0)) (fn "op_inc");
          store (widx "ops" (i 1)) (fn "op_tri");
          store (widx "ops" (i 2)) (fn "op_mix");
          store (widx "ops" (i 3)) (fn "op_dbl");
          set "acc" (i 7);
          for_ "k" ~from:(i 0) ~below:(i n)
            [
              set "acc" (call "dispatch" [ v "k"; v "acc" ]);
              for_ "j" ~from:(i 0) ~below:(i 12)
                [ set "acc" ((v "acc" lxor (v "acc" lsr i 13)) + v "j") ];
              if_ ((v "k" land i 31) == i 0)
                [ set "acc" (v "acc" + call "scan" [ v "acc" ]) ]
                [];
            ];
          print (v "acc");
          ret (i 0);
        ];
    ]

(* --- gcc: deep recursion over expression-like structure, call-heavy --- *)

let gcc variant =
  let rounds = 24 * scale variant in
  Ast.program
    [
      Ast.fdef "fold" ~params:[ "n"; "acc" ]
        B.[
          if_ (v "n" == i 0) [ ret (v "acc") ] [];
          Ast.Tail_call ("fold", [ v "n" - i 1; (v "acc" lxor v "n") + i 3 ]);
        ];
      Ast.fdef "visit" ~params:[ "d" ]
        ~locals:[ Ast.Scalar "l"; Ast.Scalar "r"; Ast.Scalar "j"; Ast.Scalar "t" ]
        B.[
          if_ (v "d" <= i 1) [ ret (i 1) ] [];
          set "t" (v "d");
          for_ "j" ~from:(i 0) ~below:(i 20)
            [ set "t" ((v "t" + (v "d" * v "j")) lxor (v "t" lsr i 5)) ];
          set "l" (call "visit" [ v "d" - i 1 ]);
          set "r" (call "fold" [ i 2; v "l" ]);
          ret ((v "l" + v "r") lxor v "t");
        ];
      Ast.fdef "main"
        ~locals:[ Ast.Scalar "s"; Ast.Scalar "k" ]
        B.[
          set "s" (i 0);
          for_ "k" ~from:(i 0) ~below:(i rounds)
            [ set "s" (v "s" + call "visit" [ i 40 ]) ];
          print (v "s");
          ret (i 0);
        ];
    ]

(* --- mcf: pointer chasing with a periodic helper, medium calls -------- *)

let mcf variant =
  let nodes = 1024 in
  let steps = 3000 * scale variant in
  Ast.program
    ~globals:[ ("next", 8 * nodes) ]
    [
      Ast.fdef "clamp" ~params:[ "x" ] B.[ ret (v "x" land i 0xffff) ];
      Ast.fdef "relax" ~params:[ "t" ]
        ~locals:[ Ast.Scalar "c" ]
        B.[
          set "c" (call "clamp" [ v "t" ]);
          ret (v "c" + (v "t" lsr i 16));
        ];
      Ast.fdef "snapshot" ~params:[ "x" ]
        ~locals:[ Ast.Array ("log", 32); Ast.Scalar "j"; Ast.Scalar "s" ]
        B.[
          for_ "j" ~from:(i 0) ~below:(i 4) [ store (idx "log" (v "j" lsl i 3)) (v "x" lsr v "j") ];
          set "s" (i 0);
          for_ "j" ~from:(i 0) ~below:(i 4) [ set "s" (v "s" + load (idx "log" (v "j" lsl i 3))) ];
          ret (v "s");
        ];
      Ast.fdef "main"
        ~locals:[ Ast.Scalar "k"; Ast.Scalar "cur"; Ast.Scalar "total" ]
        B.[
          for_ "k" ~from:(i 0) ~below:(i nodes)
            [ store (widx "next" (v "k")) (((v "k" * i 193) + i 7) land i 1023) ];
          set "cur" (i 1);
          set "total" (i 0);
          for_ "k" ~from:(i 0) ~below:(i steps)
            [
              set "cur" (load (widx "next" (v "cur")));
              set "total" (v "total" + v "cur");
              if_ ((v "k" land i 7) == i 0)
                [ set "total" (call "relax" [ v "total" ]) ]
                [];
              if_ ((v "k" land i 63) == i 1)
                [ set "total" (v "total" lxor call "snapshot" [ v "total" ]) ]
                [];
            ];
          print (v "total");
          ret (i 0);
        ];
    ]

(* --- lbm: stencil sweeps, essentially no calls ------------------------ *)

let lbm variant =
  let cells = 512 in
  let cells_m1 = cells - 1 in
  let sweeps = 40 * scale variant in
  Ast.program
    ~globals:[ ("grid", 8 * cells) ]
    [
      Ast.fdef "main"
        ~locals:[ Ast.Scalar "s"; Ast.Scalar "k"; Ast.Scalar "acc"; Ast.Scalar "m" ]
        B.[
          for_ "k" ~from:(i 0) ~below:(i cells)
            [ store (widx "grid" (v "k")) ((v "k" * i 37) land i 4095) ];
          for_ "s" ~from:(i 0) ~below:(i sweeps)
            [
              for_ "k" ~from:(i 1) ~below:(i cells_m1)
                [
                  set "m" (load (widx "grid" (v "k" - i 1)) + load (widx "grid" (v "k")));
                  store (widx "grid" (v "k"))
                    ((v "m" + load (widx "grid" (v "k" + i 1))) / i 3);
                ];
            ];
          set "acc" (i 0);
          for_ "k" ~from:(i 0) ~below:(i cells)
            [ set "acc" (v "acc" + load (widx "grid" (v "k"))) ];
          print (v "acc");
          ret (i 0);
        ];
    ]

(* --- xz: byte-stream digesting in 8-byte chunks, medium calls --------- *)

let xz variant =
  let bytes = 4096 in
  let nblocks = bytes / 32 in
  let passes = 4 * scale variant in
  Ast.program
    ~globals:[ ("buf", bytes) ]
    [
      Ast.fdef "mix8" ~params:[ "c"; "b" ]
        B.[ ret ((v "c" lsl i 1) lxor v "b" lxor (v "c" lsr i 7)) ];
      Ast.fdef "digest_block" ~params:[ "p"; "c" ]
        ~locals:[ Ast.Scalar "j" ]
        B.[
          for_ "j" ~from:(i 0) ~below:(i 32)
            [ set "c" (call "mix8" [ v "c"; load8 (v "p" + v "j") ]) ];
          ret (v "c");
        ];
      Ast.fdef "pad_tail" ~params:[ "c" ]
        ~locals:[ Ast.Array ("pad", 16); Ast.Scalar "s" ]
        B.[
          store (idx "pad" (i 0)) (v "c" lxor i 0x5c);
          store (idx "pad" (i 8)) (v "c" lxor i 0x36);
          set "s" (load (idx "pad" (i 0)) + load (idx "pad" (i 8)));
          ret (v "s");
        ];
      Ast.fdef "main"
        ~locals:[ Ast.Scalar "k"; Ast.Scalar "p"; Ast.Scalar "crc" ]
        B.[
          for_ "k" ~from:(i 0) ~below:(i bytes)
            [ store8 (bidx "buf" (v "k")) ((v "k" * i 131) land i 255) ];
          set "crc" (i 0);
          for_ "p" ~from:(i 0) ~below:(i passes)
            [
              for_ "k" ~from:(i 0) ~below:(i nblocks)
                [
                  set "crc" (call "digest_block" [ bidx "buf" (v "k" lsl i 5); v "crc" ]);
                  if_ ((v "k" land i 15) == i 2)
                    [ set "crc" (v "crc" + call "pad_tail" [ v "crc" land i 255 ]) ]
                    [];
                ];
            ];
          print (v "crc");
          ret (i 0);
        ];
    ]

(* --- x264: per-block cost with leaf SAD helpers, medium-high calls ---- *)

let x264 variant =
  let blocks = 220 * scale variant in
  Ast.program
    ~globals:[ ("frame", 8 * 512) ]
    [
      Ast.fdef "sad8" ~params:[ "p"; "q" ]
        ~locals:[ Ast.Scalar "j"; Ast.Scalar "s"; Ast.Scalar "d" ]
        B.[
          set "s" (i 0);
          for_ "j" ~from:(i 0) ~below:(i 8)
            [
              set "d" (load (v "p" + (v "j" lsl i 3)) - load (v "q" + (v "j" lsl i 3)));
              set "s" (v "s" + (v "d" lxor (v "d" lsr i 63)));
            ];
          ret (v "s");
        ];
      Ast.fdef "block_cost" ~params:[ "b" ]
        ~locals:[ Ast.Scalar "p"; Ast.Scalar "q"; Ast.Scalar "c1"; Ast.Scalar "c2" ]
        B.[
          set "p" (widx "frame" ((v "b" * i 16) land i 255));
          set "q" (widx "frame" (((v "b" * i 16) + i 128) land i 255));
          set "c1" (call "sad8" [ v "p"; v "q" ]);
          set "c2" (call "sad8" [ v "q"; v "p" ]);
          ret (v "c1" + v "c2");
        ];
      Ast.fdef "main"
        ~locals:[ Ast.Scalar "k"; Ast.Scalar "cost" ]
        B.[
          for_ "k" ~from:(i 0) ~below:(i 512)
            [ store (widx "frame" (v "k")) ((v "k" * i 2654435761) land i 65535) ];
          set "cost" (i 0);
          for_ "k" ~from:(i 0) ~below:(i blocks)
            [ set "cost" (v "cost" + call "block_cost" [ v "k" ]) ];
          print (v "cost");
          ret (i 0);
        ];
    ]

(* --- imagick: per-pixel arithmetic with a per-row helper, low-medium --- *)

let imagick variant =
  let rows = 120 * scale variant in
  let cols = 64 in
  Ast.program
    ~globals:[ ("img", 8 * cols) ]
    [
      Ast.fdef "clamp255" ~params:[ "x" ]
        B.[
          if_ (v "x" > i 255) [ ret (i 255) ] [];
          ret (v "x");
        ];
      Ast.fdef "edge_buf" ~params:[ "x" ]
        ~locals:[ Ast.Array ("edge", 24); Ast.Scalar "j"; Ast.Scalar "s" ]
        B.[
          for_ "j" ~from:(i 0) ~below:(i 3) [ store (idx "edge" (v "j" lsl i 3)) (v "x" + v "j") ];
          set "s" (load (idx "edge" (i 0)) + load (idx "edge" (i 8)));
          ret (v "s" + load (idx "edge" (i 16)));
        ];
      Ast.fdef "row_op" ~params:[ "r"; "acc" ]
        ~locals:[ Ast.Scalar "k"; Ast.Scalar "px" ]
        B.[
          for_ "k" ~from:(i 0) ~below:(i cols)
            [
              set "px" (load (widx "img" (v "k")));
              set "px" (((v "px" * i 77) + (v "r" * i 19)) lsr i 6);
              store (widx "img" (v "k")) (v "px" land i 1023);
              set "acc" (v "acc" + (v "px" land i 255));
            ];
          ret (call "clamp255" [ v "acc" land i 4095 ] + call "edge_buf" [ v "acc" land i 255 ]);
        ];
      Ast.fdef "main"
        ~locals:[ Ast.Scalar "r"; Ast.Scalar "acc"; Ast.Scalar "k" ]
        B.[
          for_ "k" ~from:(i 0) ~below:(i cols) [ store (widx "img" (v "k")) (v "k" * i 3) ];
          set "acc" (i 0);
          for_ "r" ~from:(i 0) ~below:(i rows)
            [ set "acc" (call "row_op" [ v "r"; v "acc" ]) ];
          print (v "acc");
          ret (i 0);
        ];
    ]

(* --- nab: nested arithmetic accumulation, very few calls -------------- *)

let nab variant =
  let outer = 60 * scale variant in
  let inner = 256 in
  Ast.program
    [
      Ast.fdef "sq" ~params:[ "x" ] B.[ ret (v "x" * v "x") ];
      Ast.fdef "norm" ~params:[ "x" ] B.[ ret (call "sq" [ v "x" ] lsr i 8) ];
      Ast.fdef "main"
        ~locals:[ Ast.Scalar "a"; Ast.Scalar "b"; Ast.Scalar "f"; Ast.Scalar "e" ]
        B.[
          set "e" (i 0);
          for_ "a" ~from:(i 0) ~below:(i outer)
            [
              for_ "b" ~from:(i 0) ~below:(i inner)
                [
                  set "f" (((v "a" * i 13) + (v "b" * i 7)) land i 8191);
                  set "e" (v "e" + ((v "f" * v "f") lsr i 4));
                ];
              set "e" (call "norm" [ v "e" ] + (v "e" land i 65535));
            ];
          print (v "e");
          ret (i 0);
        ];
    ]

(* --- C++-flavoured kernels (the paper reports C++ overheads of 2.0 %
   masked / 0.9 % unmasked separately from Table 2) -------------------- *)

(* omnetpp: discrete-event simulation with vtable-style indirect dispatch *)
let omnetpp variant =
  let events = 260 * scale variant in
  Ast.program
    ~globals:[ ("vtable", 8 * 4); ("queue", 8 * 64) ]
    [
      Ast.fdef "ev_timer" ~params:[ "t" ] B.[ ret ((v "t" * i 5) + i 3) ];
      Ast.fdef "ev_packet" ~params:[ "t" ] B.[ ret (v "t" lxor (v "t" lsr i 7)) ];
      Ast.fdef "ev_queue" ~params:[ "t" ] B.[ ret (v "t" + (v "t" lsr i 2)) ];
      Ast.fdef "ev_stat" ~params:[ "t" ] B.[ ret (v "t" * i 9) ];
      Ast.fdef "handle" ~params:[ "kind"; "t" ]
        ~locals:[ Ast.Scalar "f"; Ast.Scalar "r"; Ast.Scalar "j" ]
        B.[
          set "f" (load (widx "vtable" (v "kind" land i 3)));
          set "r" (Ast.Call_ptr (v "f", [ v "t" ]));
          for_ "j" ~from:(i 0) ~below:(i 42)
            [ set "r" ((v "r" + (v "j" * i 11)) land i 0xffffff) ];
          ret (v "r");
        ];
      Ast.fdef "main"
        ~locals:[ Ast.Scalar "k"; Ast.Scalar "clock"; Ast.Scalar "acc" ]
        B.[
          store (widx "vtable" (i 0)) (fn "ev_timer");
          store (widx "vtable" (i 1)) (fn "ev_packet");
          store (widx "vtable" (i 2)) (fn "ev_queue");
          store (widx "vtable" (i 3)) (fn "ev_stat");
          set "clock" (i 1);
          set "acc" (i 0);
          for_ "k" ~from:(i 0) ~below:(i events)
            [
              set "clock" (call "handle" [ v "k"; v "clock" ]);
              set "acc" ((v "acc" + v "clock") land i64 0xffffffffL);
            ];
          print (v "acc");
          ret (i 0);
        ];
    ]

(* leela: game-tree search, recursion with evaluation leaves *)
let leela variant =
  let rounds = 4 * scale variant in
  Ast.program
    [
      Ast.fdef "eval_leaf" ~params:[ "pos" ]
        ~locals:[ Ast.Scalar "j"; Ast.Scalar "sc" ]
        B.[
          set "sc" (v "pos");
          for_ "j" ~from:(i 0) ~below:(i 28)
            [ set "sc" ((v "sc" * i 31) lxor (v "sc" lsr i 11)) ];
          ret (v "sc" land i 0xffff);
        ];
      Ast.fdef "search" ~params:[ "pos"; "depth" ]
        ~locals:[ Ast.Scalar "best"; Ast.Scalar "m"; Ast.Scalar "sc" ]
        B.[
          if_ (v "depth" == i 0) [ ret (call "eval_leaf" [ v "pos" ]) ] [];
          (* move generation *)
          set "best" (v "pos");
          for_ "m" ~from:(i 0) ~below:(i 18)
            [ set "best" ((v "best" + (v "m" * i 7)) lxor (v "best" lsr i 9)) ];
          set "best" (i 0);
          for_ "m" ~from:(i 0) ~below:(i 3)
            [
              set "sc" (call "search" [ (v "pos" * i 3) + v "m"; v "depth" - i 1 ]);
              if_ (v "sc" > v "best") [ set "best" (v "sc") ] [];
            ];
          ret (v "best");
        ];
      Ast.fdef "main"
        ~locals:[ Ast.Scalar "k"; Ast.Scalar "total" ]
        B.[
          set "total" (i 0);
          for_ "k" ~from:(i 0) ~below:(i rounds)
            [ set "total" (v "total" + call "search" [ v "k" + i 1; i 5 ]) ];
          print (v "total");
          ret (i 0);
        ];
    ]

(* xalancbmk: tree transformation with string-hash leaves *)
let xalancbmk variant =
  let nodes = 420 * scale variant in
  Ast.program
    ~globals:[ ("tree", 8 * 256) ]
    [
      Ast.fdef "hash_name" ~params:[ "h"; "n" ]
        B.[ ret (((v "h" * i 131) + v "n") land i64 0x3fffffffL) ];
      Ast.fdef "transform" ~params:[ "node" ]
        ~locals:[ Ast.Scalar "h"; Ast.Scalar "j" ]
        B.[
          set "h" (load (widx "tree" (v "node" land i 255)));
          for_ "j" ~from:(i 0) ~below:(i 8)
            [ set "h" (call "hash_name" [ v "h"; v "node" + v "j" ]) ];
          for_ "j" ~from:(i 0) ~below:(i 10)
            [ set "h" ((v "h" + (v "j" * i 3)) lxor (v "h" lsr i 5)) ];
          store (widx "tree" (v "node" land i 255)) (v "h");
          ret (v "h");
        ];
      Ast.fdef "main"
        ~locals:[ Ast.Scalar "k"; Ast.Scalar "acc" ]
        B.[
          for_ "k" ~from:(i 0) ~below:(i 256) [ store (widx "tree" (v "k")) (v "k" * i 17) ];
          set "acc" (i 0);
          for_ "k" ~from:(i 0) ~below:(i nodes)
            [ set "acc" ((v "acc" + call "transform" [ v "k" ]) land i64 0xffffffffL) ];
          print (v "acc");
          ret (i 0);
        ];
    ]

(* --- catalogue --------------------------------------------------------- *)

let all =
  [
    { name = "perlbench"; description = "interpreter-style dispatch, very call-heavy"; program = perlbench };
    { name = "gcc"; description = "deep recursion and tail calls, call-heavy"; program = gcc };
    { name = "mcf"; description = "pointer chasing with periodic helpers"; program = mcf };
    { name = "lbm"; description = "stencil sweeps, no calls in the hot loop"; program = lbm };
    { name = "xz"; description = "byte-stream digesting in blocks"; program = xz };
    { name = "x264"; description = "block cost with leaf SAD helpers"; program = x264 };
    { name = "imagick"; description = "per-pixel arithmetic with per-row helper"; program = imagick };
    { name = "nab"; description = "nested arithmetic accumulation, few calls"; program = nab };
  ]

let cpp =
  [
    { name = "omnetpp"; description = "event simulation with vtable dispatch (C++-like)"; program = omnetpp };
    { name = "leela"; description = "game-tree search (C++-like)"; program = leela };
    { name = "xalancbmk"; description = "tree transformation (C++-like)"; program = xalancbmk };
  ]

let find name = List.find_opt (fun b -> b.name = name) (all @ cpp)

type measurement = {
  bench : string;
  variant : variant;
  scheme : Scheme.t;
  cycles : int;
  instructions : int;
  mem_ops : int;
  checksum : int64;
}

let measure ~scheme variant bench =
  let program = Compile.compile ~scheme (bench.program variant) in
  let m = Machine.load program in
  match Machine.run ~fuel:100_000_000 m with
  | Machine.Halted 0 -> (
    match List.rev (Machine.output m) with
    | checksum :: _ ->
      {
        bench = bench.name;
        variant;
        scheme;
        cycles = Machine.cycles m;
        instructions = Machine.instructions_retired m;
        mem_ops = Machine.memory_operations m;
        checksum;
      }
    | [] -> failwith (bench.name ^ ": no checksum printed"))
  | Machine.Halted c -> failwith (Printf.sprintf "%s: exit code %d" bench.name c)
  | Machine.Faulted f -> failwith (Printf.sprintf "%s: fault: %s" bench.name (Trap.to_string f))
  | Machine.Out_of_fuel -> failwith (bench.name ^ ": out of fuel")

let overhead_pct ~baseline m =
  Pacstack_util.Stats.overhead_pct ~baseline:(float_of_int baseline.cycles)
    ~measured:(float_of_int m.cycles)

let measure_cell ~variant ~scheme name =
  match find name with
  | Some bench -> measure ~scheme variant bench
  | None -> failwith ("Speclike.measure_cell: unknown benchmark " ^ name)

let sweep_cells ~variants ~schemes =
  List.concat_map
    (fun variant ->
      List.concat_map
        (fun bench -> List.map (fun scheme -> (variant, bench.name, scheme)) schemes)
        (all @ cpp))
    variants
