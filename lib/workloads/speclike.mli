(** Synthetic stand-ins for the SPEC CPU 2017 C benchmarks of §7.1.

    Each kernel is a deterministic mini-C program whose function-call
    density is calibrated to the role its namesake plays in Figure 5 —
    PACStack overhead is proportional to call frequency, so matching the
    call-density spectrum reproduces the per-benchmark overhead shape.
    Every kernel prints a checksum, so tests can assert that hardening
    never changes program semantics.

    [Rate] and [Speed] variants differ in working-set scale, mirroring the
    SPECrate/SPECspeed split of Table 2. *)

type variant = Rate | Speed

val variant_to_string : variant -> string

type benchmark = {
  name : string;  (** e.g. "perlbench" *)
  description : string;
  program : variant -> Pacstack_minic.Ast.program;
}

val all : benchmark list
(** The eight C benchmarks the paper measures, in Figure 5 order. *)

val cpp : benchmark list
(** Three C++-flavoured kernels (virtual dispatch, deep recursion, tree
    rewriting) matching the paper's separately-reported C++ overheads
    (2.0 % masked, 0.9 % unmasked). *)

val find : string -> benchmark option
(** Looks up both the C and C++ catalogues. *)

type measurement = {
  bench : string;
  variant : variant;
  scheme : Pacstack_harden.Scheme.t;
  cycles : int;
  instructions : int;
  mem_ops : int;
  checksum : int64;
}

val measure :
  scheme:Pacstack_harden.Scheme.t -> variant -> benchmark -> measurement
(** Compiles, runs to completion and reports the cost counters. Raises
    [Failure] if the benchmark crashes or runs out of fuel. *)

val overhead_pct : baseline:measurement -> measurement -> float

(** {1 Campaign sharding} — the SPEC-like sweep as independent cells. *)

val measure_cell :
  variant:variant -> scheme:Pacstack_harden.Scheme.t -> string -> measurement
(** [measure_cell ~variant ~scheme name] measures one sweep cell looked
    up by benchmark name — the shard body for a campaign over the
    benchmark × scheme grid. Raises [Failure] on an unknown name. *)

val sweep_cells :
  variants:variant list ->
  schemes:Pacstack_harden.Scheme.t list ->
  (variant * string * Pacstack_harden.Scheme.t) list
(** The full measurement grid (every benchmark, C and C++) in
    deterministic order, one triple per campaign shard. *)
