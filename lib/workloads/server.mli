(** The NGINX SSL-TPS experiment of §7.2 (Table 3).

    The paper measures a CPU-bound web server: every request costs one
    TLS handshake plus record processing, so throughput is
    [workers * clock / per-request cycles]. We reproduce exactly that
    structure: a deterministic handshake kernel (modular-exponentiation
    key exchange, per-record cipher transform) compiled under each scheme
    gives per-request cycles and memory operations; a calibrated
    contention model charges memory operations more as workers contend
    for the memory system, which is why the paper's 8-worker overheads
    exceed its 4-worker overheads. Client-side variance comes from
    request-size jitter across simulated connections. *)

type result = {
  scheme : Pacstack_harden.Scheme.t;
  workers : int;
  req_per_sec : float;
  sigma : float;  (** std dev across request variants, as in Table 3 *)
  cycles_per_request : float;
  mem_ops_per_request : float;
}

(** The reusable request physics: the handshake kernel, the request-size
    jitter and the calibrated contention model, shared by this Table 3
    experiment and the fleet simulator (lib/fleet). Everything here is a
    pure function of its arguments (machine execution is deterministic),
    so both consumers see identical per-request costs. *)
module Kernel : sig
  val base_records : int
  (** The response size of an unjittered request, in records (72). *)

  val records : variant:int -> int
  (** Request-size jitter: [base_records + variant mod 9], the ±σ of
      Table 3's client-side variance. *)

  val program : records:int -> Pacstack_minic.Ast.program
  (** One request: key exchange + cipher/MAC over [records] records. *)

  val clock_hz : float
  (** Simulated core clock pinning absolute throughput near Table 3. *)

  val scaling : int -> float
  (** Worker-count scaling factor (the paper's superlinear 8-worker
      baseline). *)

  val contention : int -> float
  (** Memory-contention charge per *extra* memory operation at a worker
      count — 43 at 8 workers, 1 otherwise (see DESIGN.md). *)

  val compiled :
    scheme:Pacstack_harden.Scheme.t -> records:int -> Pacstack_isa.Program.t
  (** The request compiled under a scheme, ready for [Machine.load]. *)

  val execute : ?obs_label:string -> Pacstack_isa.Program.t -> float * float
  (** Loads and runs one compiled request; [(cycles, memory operations)].
      Raises [Failure] if the request faults or runs out of fuel. A
      non-empty [obs_label] attributes the machine's lib/obs counters. *)

  val measure_request :
    scheme:Pacstack_harden.Scheme.t -> records:int -> float * float
  (** [execute] of [compiled], labelled with the scheme. *)

  val throughput :
    workers:int -> base_mem:float -> cycles:float -> mem_ops:float -> float
  (** Requests per second of [workers] cores at this per-request cost:
      [workers * clock * scaling / (cycles + contention * extra_mem)]
      where [extra_mem = max 0 (mem_ops - base_mem)]. *)
end

val handshake_program : variant:int -> Pacstack_minic.Ast.program
(** One request: key exchange + record processing; [variant] jitters the
    record count as different clients would.
    [Kernel.program ~records:(Kernel.records ~variant)]. *)

val measure :
  scheme:Pacstack_harden.Scheme.t -> workers:int -> ?variants:int -> unit -> result
(** Runs [variants] (default 10) request variants under the scheme and
    derives throughput for the worker count (4 and 8 in the paper). *)

val overhead_pct : baseline:result -> result -> float
(** Throughput degradation in percent (positive = slower than baseline). *)

val sweep_cells :
  ?worker_counts:int list ->
  ?schemes:Pacstack_harden.Scheme.t list ->
  unit ->
  (int * Pacstack_harden.Scheme.t) list
(** The Table 3 measurement grid in deterministic order, one
    [(workers, scheme)] cell per campaign shard. Defaults to the paper's
    4/8 workers against unprotected and both PACStack variants. *)
