(** The NGINX SSL-TPS experiment of §7.2 (Table 3).

    The paper measures a CPU-bound web server: every request costs one
    TLS handshake plus record processing, so throughput is
    [workers * clock / per-request cycles]. We reproduce exactly that
    structure: a deterministic handshake kernel (modular-exponentiation
    key exchange, per-record cipher transform) compiled under each scheme
    gives per-request cycles and memory operations; a calibrated
    contention model charges memory operations more as workers contend
    for the memory system, which is why the paper's 8-worker overheads
    exceed its 4-worker overheads. Client-side variance comes from
    request-size jitter across simulated connections. *)

type result = {
  scheme : Pacstack_harden.Scheme.t;
  workers : int;
  req_per_sec : float;
  sigma : float;  (** std dev across request variants, as in Table 3 *)
  cycles_per_request : float;
  mem_ops_per_request : float;
}

val handshake_program : variant:int -> Pacstack_minic.Ast.program
(** One request: key exchange + record processing; [variant] jitters the
    record count as different clients would. *)

val measure :
  scheme:Pacstack_harden.Scheme.t -> workers:int -> ?variants:int -> unit -> result
(** Runs [variants] (default 10) request variants under the scheme and
    derives throughput for the worker count (4 and 8 in the paper). *)

val overhead_pct : baseline:result -> result -> float
(** Throughput degradation in percent (positive = slower than baseline). *)

val sweep_cells :
  ?worker_counts:int list ->
  ?schemes:Pacstack_harden.Scheme.t list ->
  unit ->
  (int * Pacstack_harden.Scheme.t) list
(** The Table 3 measurement grid in deterministic order, one
    [(workers, scheme)] cell per campaign shard. Defaults to the paper's
    4/8 workers against unprotected and both PACStack variants. *)
