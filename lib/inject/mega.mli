(** Constant-size sufficient statistics for mega-campaigns.

    {!Engine.stats} retains one reproducer per silent fault — O(events)
    memory, fine at 10^2 faults, fatal at 10^8. This module folds each
    shard into a fixed-size summary instead: per scheme, the
    detected/benign/silent counters, a latency sum, and a 32-bucket
    log2 histogram of detection latencies; globally, at most
    {!repro_cap} reproducers (the smallest (fault, scheme) keys, so the
    retained set is deterministic). {!merge} is associative and
    commutative, which is what makes N-worker, 1-worker and
    resumed-from-compacted-checkpoint totals bit-identical. *)

type cell = {
  detected : int;
  benign : int;
  silent : int;
  latency_sum : int;
  latency_hist : int array;
      (** {!hist_buckets} log2 buckets: bucket 0 counts latencies <= 1,
          bucket [b >= 1] counts [(2^(b-1), 2^b]], saturating at the
          last bucket. Treat as immutable. *)
}

val hist_buckets : int
(** 32 — covers any [int] latency. *)

val repro_cap : int
(** Max reproducers retained in a summary (32). *)

val bucket : int -> int
(** The histogram bucket a latency lands in. *)

val latency_percentile : cell -> float -> float option
(** Tail quantile of the detection-latency histogram via
    {!Pacstack_util.Stats.weighted_percentile}; [None] when the cell has
    no detections. Accurate to one log2 bucket. *)

type t = {
  faults : int;  (** faults executed (each fault runs every scheme) *)
  cells : (string * cell) list;  (** per scheme name, canonical order *)
  repro : Engine.reproducer list;
      (** the <= {!repro_cap} silent reproducers with the smallest
          (fault, scheme) keys, sorted *)
}

val empty : t

val silent_total : t -> int
val detected_total : t -> int

val repro_dropped : t -> int
(** Silent events beyond {!repro_cap} whose reproducers were not
    retained (derived, not stored — keeps {!merge} pointwise). *)

val add_result : t -> Engine.result -> t
(** Folds one classification into the summary; constant time and
    constant space (the [faults] counter is the caller's to bump, as in
    {!Engine.add_result}). *)

val merge : t -> t -> t
(** Associative and commutative: counters and histograms add pointwise,
    and keep-K-smallest reproducer truncation commutes with union. *)

val run_range :
  Engine.config -> campaign_seed:int64 -> first:int -> count:int -> t
(** Runs faults [first .. first + count - 1] — one mega-campaign
    shard — folding every result into the summary as it happens; also
    feeds detection latencies into the ["inject.detect_latency"]
    {!Pacstack_obs.Obs} histogram when observability is enabled. Same
    determinism contract as {!Engine.run_range}. *)

val to_json : t -> Pacstack_campaign.Json.t
val of_json : Pacstack_campaign.Json.t -> t option
