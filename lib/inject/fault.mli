(** Deterministic fault specifications: a pure function of
    (campaign seed, fault index) choosing what to corrupt, when, and
    how — the reproducibility anchor of the whole injection engine. *)

type site =
  | Ret_slot  (** the live frame's saved return address, [fp + 8] *)
  | Chain_spill  (** the live frame's CR spill, [fp - 16] *)
  | Cr_reg  (** the chain register X28 itself (a register-file glitch) *)
  | Lr_reg  (** the link register (a register-file glitch) *)
  | Shadow_slot  (** the topmost shadow-stack entry *)
  | Pac_bits  (** a subset of the PAC bits of the scheme's control word *)
  | Signal_frame  (** the saved PC inside a kernel signal frame *)
  | Reload_window
      (** the §5.2 store-to-reload TOCTOU: substitute a harvested
          sibling control word while it sits on the stack *)

val all_sites : site array
val site_to_string : site -> string
val site_of_string : string -> site option

type spec = {
  index : int;  (** fault index within the campaign *)
  site : site;
  trigger : float;
      (** when to strike, as a fraction of the un-faulted run's retired
          instructions (generic sites) *)
  flip : int64;  (** xor corruption pattern, 1–3 set bits *)
  round : int;  (** {!Reload_window}: selects the victim call path *)
  pick : int;  (** {!Reload_window}: blind substitution choice *)
}

val derive : campaign_seed:int64 -> int -> spec
(** [derive ~campaign_seed i] — deterministic, worker-count independent,
    salted so it shares no stream with the fuzz driver at equal seeds. *)

val rng : campaign_seed:int64 -> int -> Pacstack_util.Rng.t
(** The fault's private generator (machine keys, blind picks): the
    stream {!derive} consumed, re-derivable anywhere. *)

val to_json : spec -> Pacstack_campaign.Json.t
val pp : Format.formatter -> spec -> unit
