(* Victim programs for fault injection.

   [program] is the workhorse: [paths] sibling call paths into a shared
   [mid -> inner -> probe] chain, driven round-robin from [main].  The
   shape is exactly the on-graph geometry of the paper's §6.1 reuse
   analysis, reproduced at machine level:

   - every round r takes path (r mod paths), so each path's control
     words (saved return addresses, shadow entries, spilled aret values)
     appear on the stack at the *same addresses* once per cycle — a
     harvesting adversary sees [paths] sibling values for each slot;
   - the call depth at the [window] hook is main -> path_j -> mid ->
     inner -> probe, so when the hook fires, every spill of the chain is
     written but none is yet reloaded: the hook sits squarely inside the
     §5.2 store-to-reload window;
   - [probe] is deliberately non-leaf (it calls [id]) so that under
     PACStack it spills the current chain head aret_inner — the value
     whose full-word collisions decide whether the §6.1 substitution
     authenticates;
   - each path adds a distinct constant to the running sum, which is
     printed every round: a diverted return flows through the sibling
     path's tail and shifts every later printed value, so silent
     corruption is visible to the trace oracle without any trap.

   All paths have identical frame shapes (same locals, same spills), so
   substituting one path's control words for another's is exactly the
   frame-transplant the reuse attack performs. *)

module Ast = Pacstack_minic.Ast
module B = Pacstack_minic.Build

let paths = 16
let rounds = 2 * paths
let window_hook = "window"
let handler_name = "on_signal"

let path_name j = Printf.sprintf "path_%d" j

(* distinct per-path contribution, so a diverted return changes the sum *)
let path_constant j = (j + 1) * 97

let path_fn j =
  Ast.fdef (path_name j) ~params:[ "k" ]
    ~locals:[ Ast.Scalar "t" ]
    B.[ set "t" (call "mid" [ v "k" + i j ]); ret (v "t" + i (path_constant j)) ]

(* the if-chain dispatch gives every path its own call site in main,
   hence its own return address and (under PACStack) its own aret *)
let dispatch =
  let rec chain j =
    if j = paths - 1 then B.[ set "s" (v "s" + call (path_name j) [ v "r" ]) ]
    else
      [
        B.if_
          B.(v "j" == i j)
          B.[ set "s" (v "s" + call (path_name j) [ v "r" ]) ]
          (chain (j + 1));
      ]
  in
  chain 0

let program () =
  Ast.program
    ([
       Ast.fdef "id" ~params:[ "x" ] B.[ ret (v "x") ];
       Ast.fdef "probe" ~params:[ "k" ]
         ~locals:[ Ast.Scalar "t" ]
         (B.hook window_hook :: B.[ set "t" (call "id" [ v "k" ]); ret (v "t" + i 1) ]);
       Ast.fdef "inner" ~params:[ "k" ]
         ~locals:[ Ast.Scalar "t" ]
         B.[ set "t" (call "probe" [ v "k" ]); ret (v "t" + i 2) ];
       Ast.fdef "mid" ~params:[ "k" ]
         ~locals:[ Ast.Scalar "t" ]
         B.[ set "t" (call "inner" [ v "k" + i 5 ]); ret (v "t" + i 3) ];
     ]
    @ List.init paths path_fn
    @ [
        Ast.fdef "main"
          ~locals:[ Ast.Scalar "s"; Ast.Scalar "j"; Ast.Scalar "r" ]
          (B.[ set "s" (i 0); set "j" (i 0) ]
          @ [
              B.for_ "r" ~from:(B.i 0) ~below:(B.i rounds)
                (dispatch
                @ B.
                    [
                      print (v "s");
                      set "j" (v "j" + i 1);
                      if_ (v "j" == i paths) [ set "j" (i 0) ] [];
                    ]);
            ]
          @ B.[ ret (v "s" land i 63) ]);
      ])

(* Victim for the kernel signal-frame site: a plain compute loop plus a
   signal handler the kernel can deliver to at any trigger point. *)
let signal_program () =
  Ast.program
    [
      Ast.fdef "work" ~params:[ "k" ] B.[ ret ((v "k" * i 7) + i 1) ];
      Ast.fdef handler_name B.[ print (i 911); ret0 ];
      Ast.fdef "main"
        ~locals:[ Ast.Scalar "s"; Ast.Scalar "r" ]
        (B.[ set "s" (i 0) ]
        @ [
            B.for_ "r" ~from:(B.i 0) ~below:(B.i 24)
              B.[ set "s" (v "s" + call "work" [ v "r" ]); print (v "s") ];
          ]
        @ B.[ ret (v "s" land i 63) ]);
    ]
