(* Streaming sufficient statistics for mega-campaigns.

   [Engine.stats] keeps one reproducer per silent fault, which is the
   right artifact at 10^2 faults and an OOM at 10^8: memory grows with
   the number of events. This module is the constant-size replacement —
   per scheme, six counters plus a 32-bucket log2 latency histogram,
   and a global reproducer list truncated to the [repro_cap] smallest
   (fault, scheme) keys. Everything is associative AND commutative
   under [merge]:

   - counters and histograms add pointwise;
   - "keep the K smallest" truncation is associative-commutative too:
     the K smallest of a union is the K smallest of the per-part K
     smallest, in any grouping or order.

   Commutativity matters beyond worker-order independence: a campaign
   resumed from a compacted checkpoint folds the merged blob before the
   per-shard remainder, so fold order differs between an interrupted
   and an uninterrupted run. With these laws the totals are still
   bit-identical — the N-worker == 1-worker == resumed contract. *)

module Scheme = Pacstack_harden.Scheme
module Json = Pacstack_campaign.Json
module Obs = Pacstack_obs.Obs

let hist_buckets = 32
let repro_cap = 32

type cell = {
  detected : int;
  benign : int;
  silent : int;
  latency_sum : int;
  latency_hist : int array;  (* log2 buckets; treated as immutable *)
}

let cell_zero () =
  { detected = 0; benign = 0; silent = 0; latency_sum = 0;
    latency_hist = Array.make hist_buckets 0 }

let cell_add a b =
  {
    detected = a.detected + b.detected;
    benign = a.benign + b.benign;
    silent = a.silent + b.silent;
    latency_sum = a.latency_sum + b.latency_sum;
    latency_hist =
      Array.init hist_buckets (fun i -> a.latency_hist.(i) + b.latency_hist.(i));
  }

(* Bucket 0 holds latencies 0 and 1; bucket b >= 1 holds (2^(b-1), 2^b],
   saturating at the last bucket. *)
let bucket latency =
  if latency <= 1 then 0
  else begin
    (* smallest b with 2^b >= latency, i.e. ceil(log2 latency) *)
    let b = ref 0 and v = ref (latency - 1) in
    while !v > 0 && !b < hist_buckets - 1 do
      incr b;
      v := !v lsr 1
    done;
    !b
  end

(* Bucket bounds for {!Pacstack_util.Stats.weighted_percentile}: the
   histogram's tail quantiles without retaining a single sample. *)
let hist_bounds =
  lazy
    (Array.init (hist_buckets + 1) (fun i ->
         if i = 0 then 0.0 else Float.of_int (1 lsl (i - 1))))

let latency_percentile cell p =
  if cell.detected = 0 then None
  else
    Some
      (Pacstack_util.Stats.weighted_percentile ~bounds:(Lazy.force hist_bounds)
         ~counts:cell.latency_hist p)

type t = {
  faults : int;
  cells : (string * cell) list;  (* per scheme name, canonical order *)
  repro : Engine.reproducer list;  (* <= repro_cap smallest (fault, scheme) *)
}

let empty = { faults = 0; cells = []; repro = [] }

let scheme_rank =
  let names = List.map Scheme.to_string Scheme.all in
  fun n ->
    let rec find i = function
      | [] -> List.length names
      | x :: rest -> if String.equal x n then i else find (i + 1) rest
    in
    find 0 names

let sort_cells cells =
  List.stable_sort
    (fun (a, _) (b, _) -> compare (scheme_rank a, a) (scheme_rank b, b))
    cells

let bump_cell cells name f =
  let found = List.mem_assoc name cells in
  let cells =
    if found then
      List.map (fun (n, c) -> if String.equal n name then (n, f c) else (n, c)) cells
    else cells @ [ (name, f (cell_zero ())) ]
  in
  sort_cells cells

let truncate_repro repro =
  let sorted =
    List.stable_sort
      (fun (a : Engine.reproducer) (b : Engine.reproducer) ->
        compare (a.fault, a.scheme) (b.fault, b.scheme))
      repro
  in
  List.filteri (fun i _ -> i < repro_cap) sorted

let silent_total t =
  List.fold_left (fun n (_, c) -> n + c.silent) 0 t.cells

let detected_total t =
  List.fold_left (fun n (_, c) -> n + c.detected) 0 t.cells

(* Not a stored field: deriving it keeps [merge] a plain pointwise
   operation with no cross-field invariant to maintain. *)
let repro_dropped t = silent_total t - List.length t.repro

let add_result t (r : Engine.result) =
  let name = Scheme.to_string r.scheme in
  let cells =
    bump_cell t.cells name (fun c ->
        match r.classification with
        | Engine.Detected { latency; _ } ->
          let h = Array.copy c.latency_hist in
          let b = bucket latency in
          h.(b) <- h.(b) + 1;
          { c with detected = c.detected + 1;
            latency_sum = c.latency_sum + latency; latency_hist = h }
        | Engine.Benign -> { c with benign = c.benign + 1 }
        | Engine.Silent -> { c with silent = c.silent + 1 })
  in
  let repro =
    match r.classification with
    | Engine.Silent ->
      truncate_repro
        ({ Engine.fault = r.spec.Fault.index;
           scheme = name;
           site = Fault.site_to_string r.spec.Fault.site }
        :: t.repro)
    | Engine.Detected _ | Engine.Benign -> t.repro
  in
  { t with cells; repro }

let merge a b =
  {
    faults = a.faults + b.faults;
    cells =
      List.fold_left
        (fun acc (n, c) -> bump_cell acc n (fun cur -> cell_add cur c))
        a.cells b.cells;
    repro = truncate_repro (a.repro @ b.repro);
  }

let run_range cfg ~campaign_seed ~first ~count =
  if Obs.enabled () then
    Obs.Metrics.register_histogram "inject.detect_latency" ~lo:0. ~hi:4096.
      ~buckets:20;
  let t = ref empty in
  for i = first to first + count - 1 do
    let results = Engine.run_fault cfg ~campaign_seed i in
    if Obs.enabled () then
      List.iter
        (fun (r : Engine.result) ->
          match r.classification with
          | Engine.Detected { latency; _ } ->
            Obs.Metrics.observe "inject.detect_latency" (float_of_int latency)
          | Engine.Benign | Engine.Silent -> ())
        results;
    t := List.fold_left add_result { !t with faults = !t.faults + 1 } results
  done;
  !t

(* ------------------------------------------------------------------ *)
(* JSON codec (campaign checkpoint payload)                            *)

let to_json t =
  Json.Obj
    [
      ("faults", Json.Int t.faults);
      ( "cells",
        Json.List
          (List.map
             (fun (n, c) ->
               Json.Obj
                 [
                   ("scheme", Json.String n);
                   ("detected", Json.Int c.detected);
                   ("benign", Json.Int c.benign);
                   ("silent", Json.Int c.silent);
                   ("latency_sum", Json.Int c.latency_sum);
                   ( "latency_hist",
                     Json.List
                       (Array.to_list (Array.map (fun n -> Json.Int n) c.latency_hist))
                   );
                 ])
             t.cells) );
      ("repro", Json.List (List.map Engine.reproducer_to_json t.repro));
    ]

let of_json j =
  let ( let* ) = Option.bind in
  let int k o = Option.bind (Json.member k o) Json.to_int in
  let str k o = Option.bind (Json.member k o) Json.to_str in
  let* faults = int "faults" j in
  let* cells = Option.bind (Json.member "cells" j) Json.to_list in
  let* cells =
    List.fold_left
      (fun acc o ->
        let* acc = acc in
        let* n = str "scheme" o in
        let* detected = int "detected" o in
        let* benign = int "benign" o in
        let* silent = int "silent" o in
        let* latency_sum = int "latency_sum" o in
        let* hist = Option.bind (Json.member "latency_hist" o) Json.to_list in
        let* hist =
          List.fold_left
            (fun acc h ->
              let* acc = acc in
              let* v = Json.to_int h in
              Some (v :: acc))
            (Some []) hist
        in
        let hist = Array.of_list (List.rev hist) in
        if Array.length hist <> hist_buckets then None
        else
          Some
            (acc
            @ [ (n, { detected; benign; silent; latency_sum; latency_hist = hist }) ]))
      (Some []) cells
  in
  let* repro = Option.bind (Json.member "repro" j) Json.to_list in
  let* repro =
    List.fold_left
      (fun acc o ->
        let* acc = acc in
        let* fault = int "fault" o in
        let* scheme = str "scheme" o in
        let* site = str "site" o in
        Some (acc @ [ { Engine.fault; scheme; site } ]))
      (Some []) repro
  in
  Some { faults; cells = sort_cells cells; repro = truncate_repro repro }
