(** The deterministic fault-injection engine: applies a {!Fault.spec} to
    the {!Victim} under each hardening scheme mid-run and classifies the
    outcome against an un-faulted reference execution. *)

module Scheme = Pacstack_harden.Scheme
module Machine = Pacstack_machine.Machine
module Json = Pacstack_campaign.Json

type config = {
  pac_bits : int;
      (** PAC width of the simulated machine; the default 4 makes the
          2^-b collision events of the reuse analysis observable at
          small campaign sizes *)
  fuel : int;  (** per-run instruction budget *)
  schemes : Scheme.t list;  (** schemes every fault is evaluated under *)
  tamper : (Machine.t -> unit) option;
      (** test-only: replaces the site corruption at the injection
          point — used to plant a known-silent fault and check the
          campaign gate catches it. Never set in production. *)
}

val default_config : config
(** [pac_bits = 4], default fuel, all six schemes, no tamper. *)

exception Misrouted_site of { index : int; site : Fault.site }
(** A structured site ([Signal_frame]/[Reload_window]) reached the
    generic xor-a-slot injector instead of its dedicated replay — a
    dispatch bug, not a property of the fault. The registered printer
    names the fault index and site, so a worker crash surfaces as a
    [Pool] [Crashed] outcome that identifies the culprit instead of
    [Assert_failure]. *)

type classification =
  | Detected of { cause : string; latency : int }
      (** trapped (or runtime abort: canary 134, sigreturn kill 139);
          [latency] is cycles from injection to detection *)
  | Benign  (** trace identical to the un-faulted reference *)
  | Silent  (** trace diverged with no trap — the headline metric *)

val classification_to_string : classification -> string

type result = {
  spec : Fault.spec;
  scheme : Scheme.t;
  classification : classification;
}

val run_fault : config -> campaign_seed:int64 -> int -> result list
(** Derives fault [index] and runs it under every configured scheme.
    Pure in (config, seed, index): same inputs, same classifications,
    on any worker. Ticks the {!Pacstack_campaign.Watchdog} once per
    scheme. *)

(** {1 Mergeable campaign statistics} *)

type cell = { detected : int; benign : int; silent : int; latency_sum : int }

type reproducer = { fault : int; scheme : string; site : string }
(** Everything needed to replay a silent corruption:
    [run_fault cfg ~campaign_seed fault]. *)

type stats = {
  faults : int;
  cells : (string * cell) list;  (** per scheme name, canonical order *)
  site_cells : ((string * string) * cell) list;
      (** per (site name, scheme name), sorted by (site order in
          {!Fault.all_sites}, scheme order) — the long-format
          detection-rate table *)
  silents : reproducer list;  (** sorted by (fault, scheme) *)
}

val empty : stats
val add_result : stats -> result -> stats

val merge : stats -> stats -> stats
(** Associative and commutative up to the canonical orderings — shard
    merge order cannot change the campaign result. *)

val run_range : config -> campaign_seed:int64 -> first:int -> count:int -> stats
(** Runs faults [first .. first + count - 1] — one campaign shard. *)

val stats_to_json : stats -> Json.t
val stats_of_json : Json.t -> stats option
val reproducer_to_json : reproducer -> Json.t
