(** Victim programs for fault injection. *)

val paths : int
(** Sibling call paths in {!program} — the width of the §6.1 on-graph
    harvest. *)

val rounds : int
(** Main-loop iterations: one harvest cycle over every path, then one
    strike cycle. *)

val window_hook : string
(** Name of the hook intrinsic that fires inside the store-to-reload
    window at full call depth, once per round. *)

val handler_name : string
(** Signal-handler symbol of {!signal_program}. *)

val path_name : int -> string
val path_constant : int -> int

val program : unit -> Pacstack_minic.Ast.program
(** The [paths]-sibling collision victim (see the implementation header
    for the exact geometry). Deterministic: no generator involved. *)

val signal_program : unit -> Pacstack_minic.Ast.program
(** Compute loop plus signal handler, for the kernel signal-frame
    site. *)
