(* The fault-injection engine.

   One fault = one {!Fault.spec} applied to the victim under one
   hardening scheme.  Every fault is run twice with identical PA keys:
   once untouched (the reference), once with the corruption applied
   mid-run.  The injected run is then classified against the reference
   trace:

   - [Detected]  — the machine trapped (or the runtime aborted: canary
     exit 134, sigreturn kill 139).  The latency is the cycle distance
     from the injection to the trap: how long the corrupt state lived.
   - [Benign]    — the trace is identical to the reference: the fault
     hit dead state (a frame already consumed, bits nobody reloads).
   - [Silent]    — the trace diverges and nothing trapped.  This is the
     headline metric: corruption that changed the program's behaviour
     and was never caught.

   Generic sites pause the machine at a trigger point (a fraction of
   the reference run's retired instructions, via {!Machine.run_until}),
   xor a pattern into the chosen slot and resume.  The two structured
   sites replay the paper's actual attacks:

   - [Reload_window] mounts the §6.1 reuse attack inside the §5.2
     store-to-reload window.  A hook at full call depth harvests every
     sibling path's control words during the first [Victim.paths]
     rounds, then — on a later round — substitutes one sibling's two
     control words for the current path's while they sit spilled on the
     stack.  The diversion flows through the sibling's function tail
     and rejoins main at the sibling's call site, shifting every later
     printed value: silent unless some authentication rejects the
     transplant.  Under unmasked PACStack the adversary picks the
     sibling by matching harvested aret values (collisions are visible,
     §6.1); under the masked variant the spills are masked and the pick
     is blind, succeeding with probability 2^-b — the Appendix A
     argument, mirrored from [Pacstack_harden.Surface.observable].
   - [Signal_frame] boots the victim under the kernel personality,
     delivers a signal at the trigger point and flips bits in the saved
     PC inside the user-visible signal frame.  Under [Sig_chained]
     (PACStack's Appendix B) the forged frame is killed at sigreturn
     with exit 139; mainline-Linux-style unprotected frames resume
     wherever the corrupt PC points.

   Determinism: everything derives from (campaign seed, fault index)
   through {!Fault}; machine keys come from the fault's private runtime
   stream, copied so reference and injected runs see identical keys.
   The same fault classifies identically at any worker count. *)

module Rng = Pacstack_util.Rng
module Config = Pacstack_pa.Config
module Reg = Pacstack_isa.Reg
module Scheme = Pacstack_harden.Scheme
module Surface = Pacstack_harden.Surface
module Machine = Pacstack_machine.Machine
module Memory = Pacstack_machine.Memory
module Trap = Pacstack_machine.Trap
module Kernel = Pacstack_machine.Kernel
module Compile = Pacstack_minic.Compile
module Trace = Pacstack_fuzz.Trace
module Json = Pacstack_campaign.Json
module Watchdog = Pacstack_campaign.Watchdog

type config = {
  pac_bits : int;
  fuel : int;
  schemes : Scheme.t list;
  tamper : (Machine.t -> unit) option;
}

let default_config =
  { pac_bits = 4; fuel = 10_000_000; schemes = Scheme.all; tamper = None }

module Obs = Pacstack_obs.Obs

(* [Signal_frame]/[Reload_window] faults are routed by [run_one] to
   their structured replays and must never reach the generic
   xor-a-slot injector. If a future site is added to [Fault.site]
   without a dispatch arm, the worker domain's crash should say which
   fault hit the hole — a bare [assert false] here used to cost the
   whole shard its context. *)
exception Misrouted_site of { index : int; site : Fault.site }

let () =
  Printexc.register_printer (function
    | Misrouted_site { index; site } ->
      Some
        (Printf.sprintf
           "Inject.Engine.Misrouted_site(fault %d, site %s): structured site \
            reached the generic injector; run_one must dispatch it"
           index
           (Fault.site_to_string site))
    | _ -> None)

type classification = Detected of { cause : string; latency : int } | Benign | Silent

let classification_to_string = function
  | Detected _ -> "detected"
  | Benign -> "benign"
  | Silent -> "silent"

type result = { spec : Fault.spec; scheme : Scheme.t; classification : classification }

(* ------------------------------------------------------------------ *)
(* Shared plumbing                                                     *)

let machine_cfg cfg = Config.make ~pac_bits:cfg.pac_bits ()

let trace_of m (outcome : Machine.outcome) =
  let o =
    match outcome with
    | Machine.Halted c -> Trace.Exit c
    | Machine.Faulted _ -> Trace.Trap
    | Machine.Out_of_fuel -> Trace.Fuel
  in
  { Trace.outcome = o; output = Machine.output m }

(* The runtime aborts detection turns into exit codes; both victims
   return [s land 63], so 134/139 are unambiguous here. *)
let classify ~ref_trace ~injected_cycles m (outcome : Machine.outcome) =
  let latency () = Machine.cycles m - injected_cycles in
  match outcome with
  | Machine.Faulted t -> Detected { cause = Trap.to_string t; latency = latency () }
  | Machine.Halted 134 -> Detected { cause = "canary-abort"; latency = latency () }
  | Machine.Halted 139 -> Detected { cause = "sigreturn-kill"; latency = latency () }
  | Machine.Halted _ | Machine.Out_of_fuel ->
    if Trace.equal ref_trace (trace_of m outcome) then Benign else Silent

(* ------------------------------------------------------------------ *)
(* Generic sites: pause at the trigger, xor, resume                    *)

(* Spread the spec's flip bits into the PAC field of the configured
   geometry, so [Pac_bits] faults never touch address bits. *)
let pac_pattern (mcfg : Config.t) flip =
  let lo = Config.pac_lo mcfg and b = mcfg.Config.pac_bits in
  let p = ref 0L in
  for i = 0 to 63 do
    if Int64.logand (Int64.shift_left 1L i) flip <> 0L then
      p := Int64.logor !p (Int64.shift_left 1L (lo + (i mod b)))
  done;
  if !p = 0L then Int64.shift_left 1L lo else !p

let control_slot_addr scheme m =
  match Surface.control_slot scheme with
  | Surface.Return_slot ->
    Int64.add (Machine.get m Reg.fp) (Int64.of_int Surface.return_slot_offset)
  | Surface.Chain_slot ->
    Int64.add (Machine.get m Reg.fp) (Int64.of_int Surface.chain_spill_offset)
  | Surface.Shadow_slot -> Int64.sub (Machine.get m Reg.shadow) 8L

let apply_site cfg (spec : Fault.spec) scheme m =
  match cfg.tamper with
  | Some f -> f m
  | None -> (
    let mem = Machine.memory m in
    let xor_mem addr pattern =
      (* peek/poke: a trigger that lands while FP or X18 points outside
         mapped memory corrupts nothing — the run classifies benign *)
      match Memory.peek64 mem addr with
      | Some v -> ignore (Memory.poke64 mem addr (Int64.logxor v pattern))
      | None -> ()
    in
    let xor_reg r = Machine.set m r (Int64.logxor (Machine.get m r) spec.flip) in
    let fp = Machine.get m Reg.fp in
    match spec.site with
    | Fault.Ret_slot -> xor_mem (Int64.add fp 8L) spec.flip
    | Fault.Chain_spill -> xor_mem (Int64.sub fp 16L) spec.flip
    | Fault.Cr_reg -> xor_reg Reg.cr
    | Fault.Lr_reg -> xor_reg Reg.lr
    | Fault.Shadow_slot -> xor_mem (Int64.sub (Machine.get m Reg.shadow) 8L) spec.flip
    | Fault.Pac_bits ->
      xor_mem (control_slot_addr scheme m) (pac_pattern (Machine.config m) spec.flip)
    | Fault.Signal_frame | Fault.Reload_window ->
      raise (Misrouted_site { index = spec.index; site = spec.site }))

(* Machine metrics from injection runs are attributed to the scheme
   under test; labelling is itself obs-gated so the disabled path stays
   allocation-free. *)
let obs_label scheme m =
  if Obs.enabled () then Machine.set_obs_label m (Scheme.to_string scheme)

let reference cfg scheme compiled keys_rng =
  let m = Machine.load ~cfg:(machine_cfg cfg) ~rng:(Rng.copy keys_rng) compiled in
  obs_label scheme m;
  let outcome = Machine.run ~fuel:cfg.fuel m in
  (trace_of m outcome, max 1 (Machine.instructions_retired m))

let run_generic cfg (spec : Fault.spec) scheme compiled keys_rng =
  let ref_trace, total = reference cfg scheme compiled keys_rng in
  let trigger = max 1 (int_of_float (spec.trigger *. float_of_int total)) in
  let m = Machine.load ~cfg:(machine_cfg cfg) ~rng:(Rng.copy keys_rng) compiled in
  obs_label scheme m;
  match
    Machine.run_until ~fuel:cfg.fuel m ~stop:(fun m ->
        Machine.instructions_retired m >= trigger)
  with
  | Some outcome -> classify ~ref_trace ~injected_cycles:(Machine.cycles m) m outcome
  | None ->
    let at = Machine.cycles m in
    apply_site cfg spec scheme m;
    let outcome = Machine.run ~fuel:cfg.fuel m in
    classify ~ref_trace ~injected_cycles:at m outcome

(* ------------------------------------------------------------------ *)
(* Reload-window reuse attack (§5.2 window, §6.1 substitution)         *)

(* Walk the saved-FP chain from the hook frame (probe) back to the path
   function's frame, and name the two control words whose substitution
   diverts mid's and the path's returns to a sibling site.  Offsets per
   scheme come from {!Surface.control_slot}:

   - return-slot schemes: the saved LRs [fp_mid + 8] (return into the
     path's tail) and [fp_path + 8] (return to main's call site);
   - PACStack: the chain spills [fp_inner - 16] (= aret binding mid's
     return) and [fp_mid - 16] (= aret binding the path's return); the
     transplant authenticates iff the sibling's aret for *probe's*
     spill — the handle at [fp_probe - 16] — collides with the current
     one (both are consumed against the same spilled token);
   - shadow stack: the entries at [x18 - 24] (pushed by mid) and
     [x18 - 32] (pushed by the path); the shadow value is authoritative
     on return, so the transplant needs no stack-slot help. *)
let window_slots scheme m =
  let load a = Memory.load64 (Machine.memory m) a in
  let fp_probe = Machine.get m Reg.fp in
  let fp_inner = load fp_probe in
  let fp_mid = load fp_inner in
  let fp_path = load fp_mid in
  match Surface.control_slot scheme with
  | Surface.Return_slot -> (Int64.add fp_mid 8L, Int64.add fp_path 8L, Int64.add fp_mid 8L)
  | Surface.Chain_slot ->
    (Int64.sub fp_inner 16L, Int64.sub fp_mid 16L, Int64.sub fp_probe 16L)
  | Surface.Shadow_slot ->
    let x18 = Machine.get m Reg.shadow in
    (Int64.sub x18 24L, Int64.sub x18 32L, Int64.sub x18 24L)

(* First harvested pair with identical handles, scanning in index
   order — the adversary's deterministic collision match. *)
let first_collision handles =
  let n = Array.length handles in
  let found = ref None in
  (try
     for a = 0 to n - 2 do
       for b = a + 1 to n - 1 do
         if Int64.equal handles.(a) handles.(b) then begin
           found := Some (a, b);
           raise Exit
         end
       done
     done
   with Exit -> ());
  !found

let blind_pair (spec : Fault.spec) =
  let paths = Victim.paths in
  let x = spec.round mod paths in
  let y = (x + 1 + (spec.pick mod (paths - 1))) mod paths in
  (x, y)

let run_window cfg (spec : Fault.spec) scheme compiled keys_rng =
  let ref_trace, _ = reference cfg scheme compiled keys_rng in
  let m = Machine.load ~cfg:(machine_cfg cfg) ~rng:(Rng.copy keys_rng) compiled in
  obs_label scheme m;
  let paths = Victim.paths in
  let handles = Array.make paths 0L in
  let w1s = Array.make paths 0L in
  let w2s = Array.make paths 0L in
  let round = ref 0 in
  let plan = ref None in
  let injected_at = ref None in
  let hook hm =
    let mem = Machine.memory hm in
    let w1_addr, w2_addr, handle_addr = window_slots scheme hm in
    let j = !round in
    if j < paths then begin
      (* harvest cycle: round j runs path j — record its control words *)
      handles.(j) <- Memory.load64 mem handle_addr;
      w1s.(j) <- Memory.load64 mem w1_addr;
      w2s.(j) <- Memory.load64 mem w2_addr
    end
    else begin
      (if !plan = None then
         let pair =
           if Surface.observable scheme then
             match first_collision handles with
             | Some p -> p
             | None -> blind_pair spec
           else blind_pair spec
         in
         plan := Some pair);
      let x, y = Option.get !plan in
      if j = paths + x && !injected_at = None then begin
        (match cfg.tamper with
        | Some f -> f hm
        | None ->
          Memory.store64 mem w1_addr w1s.(y);
          Memory.store64 mem w2_addr w2s.(y));
        injected_at := Some (Machine.cycles hm)
      end
    end;
    incr round
  in
  Machine.attach_hook m Victim.window_hook hook;
  let outcome = Machine.run ~fuel:cfg.fuel m in
  let at = match !injected_at with Some c -> c | None -> Machine.cycles m in
  classify ~ref_trace ~injected_cycles:at m outcome

(* ------------------------------------------------------------------ *)
(* Kernel signal-frame corruption (Appendix B)                         *)

let signal_policy scheme =
  if Scheme.chained_signal scheme then Kernel.Sig_chained else Kernel.Sig_unprotected

(* Index of the saved PC in [Machine.context_words] order
   (X0..X30, SP, PC, flags). *)
let saved_pc_index = 32

let run_signal cfg (spec : Fault.spec) scheme keys_rng =
  let compiled = Compile.compile ~scheme (Victim.signal_program ()) in
  let policy = signal_policy scheme in
  let boot rng =
    let k = Kernel.create ~signal_policy:policy rng in
    let p = Kernel.boot k compiled in
    let m = Kernel.machine p in
    obs_label scheme m;
    (k, p, m)
  in
  (* size the trigger off a delivery-free run, so reference and injected
     runs both deliver at the same retired-instruction point *)
  let _, _, base_m = boot (Rng.copy keys_rng) in
  ignore (Machine.run ~fuel:cfg.fuel base_m);
  let total = max 1 (Machine.instructions_retired base_m) in
  let trigger = max 1 (int_of_float (spec.trigger *. float_of_int total)) in
  (* keep the corruption inside the code segment: flip only low,
     4-byte-aligned PC bits so an unprotected resume lands on some other
     instruction rather than trivially faulting on unmapped memory *)
  let pc_flip =
    let f = Int64.logand spec.flip 0xfcL in
    if Int64.equal f 0L then 4L else f
  in
  let run ~corrupt =
    let k, p, m = boot (Rng.copy keys_rng) in
    match
      Machine.run_until ~fuel:cfg.fuel m ~stop:(fun m ->
          Machine.instructions_retired m >= trigger)
    with
    | Some outcome -> (trace_of m outcome, Machine.cycles m, m, outcome)
    | None ->
      Kernel.deliver_signal k p ~handler:Victim.handler_name ~signum:14;
      let at = Machine.cycles m in
      if corrupt then begin
        match cfg.tamper with
        | Some f -> f m
        | None ->
          let sp = Machine.get m Reg.SP in
          let addr = Int64.add sp (Int64.of_int (8 * saved_pc_index)) in
          let v = Memory.load64 (Machine.memory m) addr in
          Memory.store64 (Machine.memory m) addr (Int64.logxor v pc_flip)
      end;
      let outcome = Machine.run ~fuel:cfg.fuel m in
      (trace_of m outcome, at, m, outcome)
  in
  let ref_trace, _, _, _ = run ~corrupt:false in
  let _, at, m, outcome = run ~corrupt:true in
  classify ~ref_trace ~injected_cycles:at m outcome

(* ------------------------------------------------------------------ *)
(* Per-fault driver                                                    *)

let run_one cfg (spec : Fault.spec) scheme keys_rng =
  match spec.site with
  | Fault.Signal_frame -> run_signal cfg spec scheme keys_rng
  | Fault.Reload_window ->
    run_window cfg spec scheme (Compile.compile ~scheme (Victim.program ())) keys_rng
  | Fault.Ret_slot | Fault.Chain_spill | Fault.Cr_reg | Fault.Lr_reg | Fault.Shadow_slot
  | Fault.Pac_bits ->
    run_generic cfg spec scheme (Compile.compile ~scheme (Victim.program ())) keys_rng

(* One trace event per fault, keyed by its index — campaign sharding
   hands each index to exactly one worker, so the merged trace is
   deterministic at any worker count. *)
let obs_fault (spec : Fault.spec) results =
  if Obs.enabled () then begin
    Obs.Metrics.incr "inject.faults";
    List.iter
      (fun r ->
        Obs.Metrics.incr
          (Printf.sprintf "inject.%s{scheme=%s}"
             (classification_to_string r.classification)
             (Scheme.to_string r.scheme)))
      results;
    Obs.Trace.emit ~key:spec.Fault.index "inject.fault"
      [ ("site", Obs.Json.String (Fault.site_to_string spec.Fault.site));
        ( "classes",
          Obs.Json.List
            (List.map
               (fun r ->
                 Obs.Json.String (classification_to_string r.classification))
               results) )
      ]
  end;
  results

let run_fault cfg ~campaign_seed index =
  let spec = Fault.derive ~campaign_seed index in
  let keys_rng = Fault.rng ~campaign_seed index in
  obs_fault spec
    (List.map
       (fun scheme ->
         Watchdog.tick ();
         { spec; scheme; classification = run_one cfg spec scheme (Rng.copy keys_rng) })
       cfg.schemes)

(* ------------------------------------------------------------------ *)
(* Mergeable campaign statistics                                       *)

type cell = { detected : int; benign : int; silent : int; latency_sum : int }

let cell_zero = { detected = 0; benign = 0; silent = 0; latency_sum = 0 }

let cell_add a b =
  {
    detected = a.detected + b.detected;
    benign = a.benign + b.benign;
    silent = a.silent + b.silent;
    latency_sum = a.latency_sum + b.latency_sum;
  }

type reproducer = { fault : int; scheme : string; site : string }

type stats = {
  faults : int;
  cells : (string * cell) list;  (** per scheme name, canonical order *)
  site_cells : ((string * string) * cell) list;
      (** per (site, scheme), site-major in Fault.all_sites order *)
  silents : reproducer list;  (** sorted by (fault, scheme) *)
}

let empty = { faults = 0; cells = []; site_cells = []; silents = [] }

let rank_of names n =
  let rec find i = function
    | [] -> List.length names
    | x :: rest -> if String.equal x n then i else find (i + 1) rest
  in
  find 0 names

let scheme_rank =
  let names = List.map Scheme.to_string Scheme.all in
  fun n -> rank_of names n

let site_rank =
  let names = List.map Fault.site_to_string (Array.to_list Fault.all_sites) in
  fun n -> rank_of names n

let sort_cells cells =
  List.stable_sort
    (fun (a, _) (b, _) -> compare (scheme_rank a, a) (scheme_rank b, b))
    cells

let sort_site_cells cells =
  List.stable_sort
    (fun ((sa, na), _) ((sb, nb), _) ->
      compare (site_rank sa, sa, scheme_rank na, na) (site_rank sb, sb, scheme_rank nb, nb))
    cells

let sort_silents silents =
  List.stable_sort (fun a b -> compare (a.fault, a.scheme) (b.fault, b.scheme)) silents

let bump_cell cells name f =
  let found = List.mem_assoc name cells in
  let cells =
    if found then List.map (fun (n, c) -> if String.equal n name then (n, f c) else (n, c)) cells
    else cells @ [ (name, f cell_zero) ]
  in
  sort_cells cells

let bump_site_cell cells key f =
  let found = List.mem_assoc key cells in
  let cells =
    if found then List.map (fun (k, c) -> if k = key then (k, f c) else (k, c)) cells
    else cells @ [ (key, f cell_zero) ]
  in
  sort_site_cells cells

let add_result stats (r : result) =
  let name = Scheme.to_string r.scheme in
  let site = Fault.site_to_string r.spec.Fault.site in
  let bump c =
    match r.classification with
    | Detected { latency; _ } ->
      { c with detected = c.detected + 1; latency_sum = c.latency_sum + latency }
    | Benign -> { c with benign = c.benign + 1 }
    | Silent -> { c with silent = c.silent + 1 }
  in
  let cells = bump_cell stats.cells name bump in
  let site_cells = bump_site_cell stats.site_cells (site, name) bump in
  let silents =
    match r.classification with
    | Silent ->
      sort_silents ({ fault = r.spec.Fault.index; scheme = name; site } :: stats.silents)
    | Detected _ | Benign -> stats.silents
  in
  { stats with cells; site_cells; silents }

let merge a b =
  let cells =
    List.fold_left (fun acc (n, c) -> bump_cell acc n (fun cur -> cell_add cur c)) a.cells b.cells
  in
  let site_cells =
    List.fold_left
      (fun acc (k, c) -> bump_site_cell acc k (fun cur -> cell_add cur c))
      a.site_cells b.site_cells
  in
  {
    faults = a.faults + b.faults;
    cells;
    site_cells;
    silents = sort_silents (a.silents @ b.silents);
  }

let run_range cfg ~campaign_seed ~first ~count =
  let stats = ref empty in
  for i = first to first + count - 1 do
    let results = run_fault cfg ~campaign_seed i in
    stats :=
      List.fold_left add_result { !stats with faults = !stats.faults + 1 } results
  done;
  !stats

(* ------------------------------------------------------------------ *)
(* JSON codec (campaign checkpoint payload)                            *)

let reproducer_to_json r =
  Json.Obj
    [
      ("fault", Json.Int r.fault);
      ("scheme", Json.String r.scheme);
      ("site", Json.String r.site);
    ]

let stats_to_json s =
  Json.Obj
    [
      ("faults", Json.Int s.faults);
      ( "cells",
        Json.List
          (List.map
             (fun (n, c) ->
               Json.Obj
                 [
                   ("scheme", Json.String n);
                   ("detected", Json.Int c.detected);
                   ("benign", Json.Int c.benign);
                   ("silent", Json.Int c.silent);
                   ("latency_sum", Json.Int c.latency_sum);
                 ])
             s.cells) );
      ( "site_cells",
        Json.List
          (List.map
             (fun ((site, n), c) ->
               Json.Obj
                 [
                   ("site", Json.String site);
                   ("scheme", Json.String n);
                   ("detected", Json.Int c.detected);
                   ("benign", Json.Int c.benign);
                   ("silent", Json.Int c.silent);
                   ("latency_sum", Json.Int c.latency_sum);
                 ])
             s.site_cells) );
      ("silents", Json.List (List.map reproducer_to_json s.silents));
    ]

let stats_of_json j =
  let ( let* ) = Option.bind in
  let int k o = Option.bind (Json.member k o) Json.to_int in
  let str k o = Option.bind (Json.member k o) Json.to_str in
  let* faults = int "faults" j in
  let* cells = Option.bind (Json.member "cells" j) Json.to_list in
  let* cells =
    List.fold_left
      (fun acc o ->
        let* acc = acc in
        let* n = str "scheme" o in
        let* detected = int "detected" o in
        let* benign = int "benign" o in
        let* silent = int "silent" o in
        let* latency_sum = int "latency_sum" o in
        Some (acc @ [ (n, { detected; benign; silent; latency_sum }) ]))
      (Some []) cells
  in
  let* site_cells = Option.bind (Json.member "site_cells" j) Json.to_list in
  let* site_cells =
    List.fold_left
      (fun acc o ->
        let* acc = acc in
        let* site = str "site" o in
        let* n = str "scheme" o in
        let* detected = int "detected" o in
        let* benign = int "benign" o in
        let* silent = int "silent" o in
        let* latency_sum = int "latency_sum" o in
        Some (acc @ [ ((site, n), { detected; benign; silent; latency_sum }) ]))
      (Some []) site_cells
  in
  let* silents = Option.bind (Json.member "silents" j) Json.to_list in
  let* silents =
    List.fold_left
      (fun acc o ->
        let* acc = acc in
        let* fault = int "fault" o in
        let* scheme = str "scheme" o in
        let* site = str "site" o in
        Some (acc @ [ { fault; scheme; site } ]))
      (Some []) silents
  in
  Some
    {
      faults;
      cells = sort_cells cells;
      site_cells = sort_site_cells site_cells;
      silents = sort_silents silents;
    }
