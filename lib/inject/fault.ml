(* Deterministic fault specifications.

   A fault spec is a pure function of (campaign seed, fault index): the
   same pair always derives the same site, trigger point and corruption
   pattern, on any machine and at any worker count.  That is the whole
   reproducibility story — a silent corruption found by a 16-worker
   overnight campaign is replayed from the two numbers in its JSON
   reproducer, nothing else. *)

module Rng = Pacstack_util.Rng
module Json = Pacstack_campaign.Json

type site =
  | Ret_slot  (** the live frame's saved return address, [fp + 8] *)
  | Chain_spill  (** the live frame's CR spill, [fp - 16] *)
  | Cr_reg  (** the chain register X28 itself *)
  | Lr_reg  (** the link register *)
  | Shadow_slot  (** the topmost shadow-stack entry *)
  | Pac_bits  (** a subset of the PAC field of the spilled chain value *)
  | Signal_frame  (** the saved PC inside a kernel signal frame *)
  | Reload_window  (** the §5.2 store-to-reload TOCTOU: substitute a
                       harvested sibling control word inside the window *)

let all_sites =
  [|
    Ret_slot; Chain_spill; Cr_reg; Lr_reg; Shadow_slot; Pac_bits; Signal_frame; Reload_window;
  |]

let site_to_string = function
  | Ret_slot -> "ret-slot"
  | Chain_spill -> "chain-spill"
  | Cr_reg -> "cr-reg"
  | Lr_reg -> "lr-reg"
  | Shadow_slot -> "shadow-slot"
  | Pac_bits -> "pac-bits"
  | Signal_frame -> "signal-frame"
  | Reload_window -> "reload-window"

let site_of_string s =
  Array.find_opt (fun site -> site_to_string site = s) all_sites

type spec = {
  index : int;
  site : site;
  trigger : float;
  flip : int64;
  round : int;
  pick : int;
}

(* The derivation stream is salted so it shares nothing with the fuzz
   driver's [create (seed + i)] streams at equal seeds. *)
let salt = 0x696E_6A65_6374L (* "inject" *)

let root ~campaign_seed index =
  Rng.create (Int64.logxor salt (Int64.add campaign_seed (Int64.of_int index)))

(* first split: spec derivation; second split: runtime draws (machine
   keys, blind picks) — disjoint streams from one (seed, index) root *)
let rng ~campaign_seed index =
  let r = root ~campaign_seed index in
  let _spec_stream = Rng.split r in
  Rng.split r

let derive ~campaign_seed index =
  let rng = Rng.split (root ~campaign_seed index) in
  let site = Rng.choose rng all_sites in
  (* keep the trigger away from the first and last instructions: faults
     during _start / __halt glue corrupt nothing interesting *)
  let trigger = 0.05 +. (0.85 *. Rng.float rng) in
  let flips = 1 + Rng.int rng 3 in
  let flip = ref 0L in
  for _ = 1 to flips do
    flip := Int64.logor !flip (Int64.shift_left 1L (2 + Rng.int rng 54))
  done;
  let round = Rng.int rng 1_000_000 in
  let pick = Rng.int rng 1_000_000 in
  { index; site; trigger; flip = !flip; round; pick }

let to_json (t : spec) =
  Json.Obj
    [
      ("fault", Json.Int t.index);
      ("site", Json.String (site_to_string t.site));
      ("trigger", Json.Float t.trigger);
      ("flip", Json.String (Printf.sprintf "0x%Lx" t.flip));
    ]

let pp fmt (t : spec) =
  Format.fprintf fmt "fault %d: %s @%.2f flip=0x%Lx" t.index (site_to_string t.site) t.trigger
    t.flip
