(* The hardening-scheme registry.

   A scheme used to be a closed variant dispatched by match ladders in
   frame.ml, surface.ml, runtime.ml and every downstream consumer;
   adding one meant a cross-cutting edit of all of them.  A scheme is
   now one self-describing {!descriptor} — name/aliases, the
   prologue/epilogue codegen, the injectable control slot, observability
   (§3 adversary), chain-register use, setjmp/longjmp entries and
   function-pointer sealing hooks — registered once here.  [t] is an
   opaque registry index (a plain immediate int, so it marshals across
   the campaign engine's fork-based process pools and compares with
   polymorphic equality), and [Frame]/[Surface]/[Runtime] are thin
   facades over descriptor lookups.

   The six legacy schemes emit byte-for-byte the sequences the old
   match ladders produced (pinned by test_engine's differential suite
   and the fuzz oracle); the four new ones come from the related work
   in PAPERS.md: PCan, Zipper Stack, PACTight sealing and PARTS-style
   forward-edge [pacia]. *)

module Instr = Pacstack_isa.Instr
module Reg = Pacstack_isa.Reg
module Cond = Pacstack_isa.Cond
module Obs = Pacstack_obs.Obs

type t = int

type traits = { is_leaf : bool; has_arrays : bool; locals_bytes : int }

type slot = Return_slot | Chain_slot | Shadow_slot

type descriptor = {
  name : string;  (** canonical name; [to_string] returns it *)
  aliases : string list;  (** extra spellings accepted by [of_string] *)
  prologue : traits -> Instr.t list;
  epilogue : traits -> Instr.t list;  (** ends in the returning instruction *)
  protects_return : traits -> bool;
  frame_overhead_bytes : traits -> int;
  control_slot : slot;
  observable : bool;
  uses_chain_register : bool;
  chained_signal : bool;  (** kernel validates sigreturn frames (Appendix B) *)
  setjmp_symbol : string;
  longjmp_symbol : string;
  fnptr_seal : Reg.t -> Instr.t list;  (** appended after [adr rd, func] *)
  fnptr_call : Reg.t -> Instr.t list;  (** the whole indirect-call sequence *)
}

exception Duplicate_scheme of { name : string; key : string }

let () =
  Printexc.register_printer (function
    | Duplicate_scheme { name; key } ->
      Some
        (Printf.sprintf
           "Scheme.Duplicate_scheme(registering %S: name or alias %S already taken)" name
           key)
    | _ -> None)

let registry : descriptor array ref = ref [||]
let by_name : (string, int) Hashtbl.t = Hashtbl.create 64

let register d =
  let id = Array.length !registry in
  let keys = List.map String.lowercase_ascii (d.name :: d.aliases) in
  (* Reject before claiming anything: a failed registration must leave
     the table untouched, or [of_string] could hand out an index with
     no descriptor behind it. *)
  List.iter
    (fun key ->
      if Hashtbl.mem by_name key then raise (Duplicate_scheme { name = d.name; key }))
    keys;
  List.iter (fun key -> Hashtbl.replace by_name key id) keys;
  registry := Array.append !registry [| d |];
  id

let registered_count () = Array.length !registry
let descriptor t = !registry.(t)
let to_string t = (descriptor t).name

(* Total over everything [to_string] can produce by construction: the
   canonical name is claimed in [by_name] at registration, so a
   registered scheme always round-trips. *)
let of_string s = Hashtbl.find_opt by_name (String.lowercase_ascii s)

let pp fmt t = Format.pp_print_string fmt (to_string t)
let equal (a : t) (b : t) = Int.equal a b
let uses_chain_register t = (descriptor t).uses_chain_register
let chained_signal t = (descriptor t).chained_signal
let fnptr_seal t = (descriptor t).fnptr_seal
let fnptr_call t = (descriptor t).fnptr_call

(* ------------------------------------------------------------------ *)
(* Shared codegen (the moral AArch64FrameLowering; Frame re-exports)   *)

let stack_chk_fail_symbol = "__stack_chk_fail"
let guard_symbol = "__stack_chk_guard"
let canary_slot t = t.locals_bytes + 8

let sub_sp n = if n = 0 then [] else [ Instr.Sub (Reg.SP, Reg.SP, Instr.Imm (Int64.of_int n)) ]
let add_sp n = if n = 0 then [] else [ Instr.Add (Reg.SP, Reg.SP, Instr.Imm (Int64.of_int n)) ]

let mem base offset index = { Instr.base; offset; index }

(* Standard frame record push/pop. *)
let push_record =
  [ Instr.Stp (Reg.fp, Reg.lr, mem Reg.SP (-16) Instr.Pre); Instr.Mov (Reg.fp, Instr.Reg Reg.SP) ]

let pop_record = [ Instr.Ldp (Reg.fp, Reg.lr, mem Reg.SP 16 Instr.Post) ]

let x9 = Reg.x 9
let x10 = Reg.x 10
let x15 = Reg.scratch
let x18 = Reg.shadow
let x28 = Reg.cr

let canary_store t =
  [
    Instr.Adr (x9, guard_symbol);
    Instr.Ldr (x9, mem x9 0 Instr.Offset);
    Instr.Str (x9, mem Reg.SP (canary_slot t) Instr.Offset);
  ]

let canary_check t =
  [
    Instr.Ldr (x9, mem Reg.SP (canary_slot t) Instr.Offset);
    Instr.Adr (x10, guard_symbol);
    Instr.Ldr (x10, mem x10 0 Instr.Offset);
    Instr.Cmp (x9, Instr.Reg x10);
    Instr.Bcond (Cond.NE, stack_chk_fail_symbol);
  ]

(* The PACStack mask sequence of Listing 3: X15 <- pacia(0, CR), applied to
   LR with an exclusive-or, then cleared. *)
let mask_apply =
  [
    Instr.Mov (x15, Instr.Reg Reg.XZR);
    Instr.Pacia (x15, x28);
    Instr.Eor (Reg.lr, Reg.lr, Instr.Reg x15);
    Instr.Mov (x15, Instr.Reg Reg.XZR);
  ]

let pacstack_prologue ~masked =
  [
    Instr.Str (x28, mem Reg.SP (-32) Instr.Pre);
    Instr.Stp (Reg.fp, Reg.lr, mem Reg.SP 16 Instr.Offset);
    Instr.Add (Reg.fp, Reg.SP, Instr.Imm 16L);
    Instr.Pacia (Reg.lr, x28);
  ]
  @ (if masked then mask_apply else [])
  @ [ Instr.Mov (x28, Instr.Reg Reg.lr) ]

let pacstack_epilogue ~masked =
  [
    Instr.Mov (Reg.lr, Instr.Reg x28);
    Instr.Ldr (Reg.fp, mem Reg.SP 16 Instr.Offset);
    Instr.Ldr (x28, mem Reg.SP 32 Instr.Post);
  ]
  @ (if masked then mask_apply else [])
  @ [ Instr.Autia (Reg.lr, x28); Instr.Ret Reg.lr ]

(* Counts the PA instrumentation a pass emits (compile-time events, not
   executions — the machine counts those): [harden.emit.pac]/[.aut] per
   scheme, and [.chain_link] for the ACS link operations whose modifier
   is the chain register. *)
let obs_count_emitted name instrs =
  if Obs.enabled () then begin
    let label = "{scheme=" ^ name ^ "}" in
    List.iter
      (function
        | Instr.Pacia (_, rn) ->
          Obs.Metrics.incr ("harden.emit.pac" ^ label);
          if rn = x28 then Obs.Metrics.incr ("harden.emit.chain_link" ^ label)
        | Instr.Paciasp | Instr.Pacga _ -> Obs.Metrics.incr ("harden.emit.pac" ^ label)
        | Instr.Autia (_, rn) ->
          Obs.Metrics.incr ("harden.emit.aut" ^ label);
          if rn = x28 then Obs.Metrics.incr ("harden.emit.chain_link" ^ label)
        | Instr.Autiasp | Instr.Retaa -> Obs.Metrics.incr ("harden.emit.aut" ^ label)
        | _ -> ())
      instrs
  end;
  instrs

(* Leaf functions (no calls) never spill LR and are skipped by the
   LR-protecting schemes, mirroring the paper's §7.1 heuristic. *)
let leaf_prologue t = sub_sp t.locals_bytes
let leaf_epilogue t = add_sp t.locals_bytes @ [ Instr.Ret Reg.lr ]
let plain_prologue t = push_record @ sub_sp t.locals_bytes
let plain_epilogue t = add_sp t.locals_bytes @ pop_record @ [ Instr.Ret Reg.lr ]

let no_seal (_ : Reg.t) = []
let plain_call r = [ Instr.Blr r ]

(* Defaults shared by most descriptors; each scheme overrides what it
   actually changes. *)
let base name =
  {
    name;
    aliases = [];
    prologue = (fun t -> obs_count_emitted name (if t.is_leaf then leaf_prologue t else plain_prologue t));
    epilogue = (fun t -> obs_count_emitted name (if t.is_leaf then leaf_epilogue t else plain_epilogue t));
    protects_return = (fun _ -> false);
    frame_overhead_bytes = (fun _ -> 0);
    control_slot = Return_slot;
    observable = true;
    uses_chain_register = false;
    chained_signal = false;
    setjmp_symbol = "setjmp";
    longjmp_symbol = "longjmp";
    fnptr_seal = no_seal;
    fnptr_call = plain_call;
  }

(* ------------------------------------------------------------------ *)
(* The six legacy schemes (§7), bit-identical to the old match ladders *)

let unprotected = register { (base "baseline") with aliases = [ "none"; "unprotected" ] }

let stack_protector =
  let name = "stack-protector-strong" in
  register
    {
      (base name) with
      aliases = [ "canary" ];
      (* canary frames take priority over the leaf shortcut: a leaf
         holding addressable buffers still gets the guard *)
      prologue =
        (fun t ->
          obs_count_emitted name
            (if t.has_arrays then push_record @ sub_sp (t.locals_bytes + 16) @ canary_store t
             else if t.is_leaf then leaf_prologue t
             else plain_prologue t));
      epilogue =
        (fun t ->
          obs_count_emitted name
            (if t.has_arrays then
               canary_check t @ add_sp (t.locals_bytes + 16) @ pop_record @ [ Instr.Ret Reg.lr ]
             else if t.is_leaf then leaf_epilogue t
             else plain_epilogue t));
      protects_return = (fun t -> t.has_arrays);
      frame_overhead_bytes = (fun t -> if t.has_arrays then 16 else 0);
    }

let branch_protection =
  let name = "branch-protection" in
  register
    {
      (base name) with
      aliases = [ "mbranch-protection" ];
      prologue =
        (fun t ->
          obs_count_emitted name
            (if t.is_leaf then leaf_prologue t
             else (Instr.Paciasp :: push_record) @ sub_sp t.locals_bytes));
      epilogue =
        (fun t ->
          obs_count_emitted name
            (if t.is_leaf then leaf_epilogue t
             else add_sp t.locals_bytes @ pop_record @ [ Instr.Retaa ]));
      protects_return = (fun t -> not t.is_leaf);
    }

let shadow_stack =
  let name = "shadow-call-stack" in
  register
    {
      (base name) with
      aliases = [ "shadowcallstack"; "scs" ];
      prologue =
        (fun t ->
          obs_count_emitted name
            (if t.is_leaf then leaf_prologue t
             else
               (Instr.Str (Reg.lr, mem x18 8 Instr.Post) :: push_record) @ sub_sp t.locals_bytes));
      epilogue =
        (fun t ->
          obs_count_emitted name
            (if t.is_leaf then leaf_epilogue t
             else
               add_sp t.locals_bytes @ pop_record
               @ [ Instr.Ldr (Reg.lr, mem x18 (-8) Instr.Pre); Instr.Ret Reg.lr ]));
      protects_return = (fun t -> not t.is_leaf);
      frame_overhead_bytes = (fun t -> if t.is_leaf then 0 else 8);
      control_slot = Shadow_slot;
    }

let pacstack_variant ~masked =
  let name = if masked then "pacstack" else "pacstack-nomask" in
  register
    {
      (base name) with
      prologue =
        (fun t ->
          obs_count_emitted name
            (if t.is_leaf then leaf_prologue t
             else pacstack_prologue ~masked @ sub_sp t.locals_bytes));
      epilogue =
        (fun t ->
          obs_count_emitted name
            (if t.is_leaf then leaf_epilogue t
             else add_sp t.locals_bytes @ pacstack_epilogue ~masked));
      protects_return = (fun t -> not t.is_leaf);
      frame_overhead_bytes = (fun t -> if t.is_leaf then 0 else 16);
      control_slot = Chain_slot;
      (* masked spills are indistinguishable from random (Appendix A) *)
      observable = not masked;
      uses_chain_register = true;
      chained_signal = true;
      setjmp_symbol = "__pacstack_setjmp";
      longjmp_symbol = "__pacstack_longjmp";
    }

let pacstack_nomask = pacstack_variant ~masked:false
let pacstack = pacstack_variant ~masked:true

(* ------------------------------------------------------------------ *)
(* The related-work zoo (PAPERS.md)                                    *)

(* PCan: per-function PAC'd canaries.  Instead of the global
   __stack_chk_guard word, the canary is [pacga(LR, SP)] — bound to the
   concrete return address and frame — computed in the prologue, stored
   in the stack-protector slot, recomputed in the epilogue from the
   *saved* LR and compared.  A corrupted saved return address (or
   canary) aborts with the canary exit code before the return
   executes. *)
let pcan =
  let name = "pcan" in
  let prologue t =
    push_record
    @ sub_sp (t.locals_bytes + 16)
    @ [ Instr.Pacga (x9, Reg.lr, Reg.SP); Instr.Str (x9, mem Reg.SP (canary_slot t) Instr.Offset) ]
  in
  let epilogue t =
    [
      Instr.Ldr (x9, mem Reg.SP (canary_slot t) Instr.Offset);
      (* the frame record's saved LR, SP-relative: fp + 8 = sp + locals + 24 *)
      Instr.Ldr (x10, mem Reg.SP (t.locals_bytes + 24) Instr.Offset);
      Instr.Pacga (x10, x10, Reg.SP);
      Instr.Cmp (x9, Instr.Reg x10);
      Instr.Bcond (Cond.NE, stack_chk_fail_symbol);
    ]
    @ add_sp (t.locals_bytes + 16)
    @ pop_record @ [ Instr.Ret Reg.lr ]
  in
  register
    {
      (base name) with
      aliases = [ "pacd-canary"; "pac-canary" ];
      prologue =
        (fun t -> obs_count_emitted name (if t.is_leaf then leaf_prologue t else prologue t));
      epilogue =
        (fun t -> obs_count_emitted name (if t.is_leaf then leaf_epilogue t else epilogue t));
      protects_return = (fun t -> not t.is_leaf);
      frame_overhead_bytes = (fun t -> if t.is_leaf then 0 else 16);
    }

(* Zipper Stack: the top register X28 holds a running hash of the whole
   return chain — [top_i = H(ret_i, top_{i-1})] via [pacga] — with no
   masking.  The prologue spills the previous top next to the frame
   record (same layout as the PACStack CR spill) and absorbs the new
   return address; the epilogue recomputes the hash from the two stack
   words and compares it against the register before restoring either.
   Tampering with the saved LR, the spilled top or X28 itself makes the
   compare fail and aborts. *)
let zipper =
  let name = "zipper-stack" in
  let prologue t =
    [
      Instr.Str (x28, mem Reg.SP (-32) Instr.Pre);
      Instr.Stp (Reg.fp, Reg.lr, mem Reg.SP 16 Instr.Offset);
      Instr.Add (Reg.fp, Reg.SP, Instr.Imm 16L);
      Instr.Pacga (x28, Reg.lr, x28);
    ]
    @ sub_sp t.locals_bytes
  in
  let epilogue t =
    add_sp t.locals_bytes
    @ [
        Instr.Ldr (x9, mem Reg.SP 24 Instr.Offset) (* saved LR (fp + 8) *);
        Instr.Ldr (x10, mem Reg.SP 0 Instr.Offset) (* spilled previous top (fp - 16) *);
        Instr.Pacga (x15, x9, x10);
        Instr.Cmp (x15, Instr.Reg x28);
        Instr.Bcond (Cond.NE, stack_chk_fail_symbol);
        Instr.Mov (Reg.lr, Instr.Reg x9);
        Instr.Ldr (Reg.fp, mem Reg.SP 16 Instr.Offset);
        Instr.Mov (x28, Instr.Reg x10);
        Instr.Add (Reg.SP, Reg.SP, Instr.Imm 32L);
        Instr.Ret Reg.lr;
      ]
  in
  register
    {
      (base name) with
      aliases = [ "zipper" ];
      prologue =
        (fun t -> obs_count_emitted name (if t.is_leaf then leaf_prologue t else prologue t));
      epilogue =
        (fun t -> obs_count_emitted name (if t.is_leaf then leaf_epilogue t else epilogue t));
      protects_return = (fun t -> not t.is_leaf);
      frame_overhead_bytes = (fun t -> if t.is_leaf then 0 else 16);
      (* the hash tokens sit readable on the stack; nothing masks them *)
      uses_chain_register = true;
    }

(* PACTight-style pointer sealing: function pointers are signed with
   [pacia] at creation (zero modifier — one global pointer context) and
   authenticated immediately before every indirect call, so a corrupted
   function-pointer table entry authenticates to a non-canonical address
   and traps at the [blr].  Backward edge is deliberately left at the
   baseline: the scheme isolates the forward-edge contribution. *)
let pactight =
  register
    {
      (base "pactight") with
      aliases = [ "pactight-seal" ];
      fnptr_seal = (fun rd -> [ Instr.Pacia (rd, Reg.XZR) ]);
      fnptr_call = (fun r -> [ Instr.Autia (r, Reg.XZR); Instr.Blr r ]);
    }

(* PARTS-style forward-edge protection: [paciasp]/[retaa] on the
   backward edge (exactly branch-protection's Listing 1 frames) plus
   type-id-keyed [pacia] on every code pointer — the modifier is the
   pointer's static type id, materialised in X15 around the sign and
   authenticate.  Our mini-C has one function-pointer type, so one
   type id. *)
let parts =
  let name = "parts" in
  let type_id = 17L in
  register
    {
      (base name) with
      aliases = [ "parts-fwd"; "pauth-cfi" ];
      prologue =
        (fun t ->
          obs_count_emitted name
            (if t.is_leaf then leaf_prologue t
             else (Instr.Paciasp :: push_record) @ sub_sp t.locals_bytes));
      epilogue =
        (fun t ->
          obs_count_emitted name
            (if t.is_leaf then leaf_epilogue t
             else add_sp t.locals_bytes @ pop_record @ [ Instr.Retaa ]));
      protects_return = (fun t -> not t.is_leaf);
      fnptr_seal =
        (fun rd ->
          [
            Instr.Mov (x15, Instr.Imm type_id);
            Instr.Pacia (rd, x15);
            Instr.Mov (x15, Instr.Reg Reg.XZR);
          ]);
      fnptr_call =
        (fun r ->
          [
            Instr.Mov (x15, Instr.Imm type_id);
            Instr.Autia (r, x15);
            Instr.Mov (x15, Instr.Reg Reg.XZR);
            Instr.Blr r;
          ]);
    }

(* ------------------------------------------------------------------ *)

let legacy =
  [ unprotected; stack_protector; branch_protection; shadow_stack; pacstack_nomask; pacstack ]

let all = legacy @ [ pcan; zipper; pactight; parts ]
