(** Per-scheme attack surface for fault injection and attack code: which
    stack word decides a non-leaf function's return target under each
    {!Scheme}, and whether reading it tells an adversary anything.
    A facade over the scheme registry ({!Scheme.descriptor}). *)

type slot = Scheme.slot =
  | Return_slot  (** the frame record's saved LR at [fp + 8] *)
  | Chain_slot  (** the PACStack/Zipper CR spill at [fp - 16] *)
  | Shadow_slot  (** the function's X18 shadow-stack entry *)

val slot_to_string : slot -> string

val return_slot_offset : int
(** [+8], relative to the frame pointer. *)

val chain_spill_offset : int
(** [-16], relative to the frame pointer. *)

val control_slot : Scheme.t -> slot
(** The word whose value the scheme's epilogue turns into the return
    target: the saved LR for unprotected / stack-protector /
    branch-protection style frames, the shadow-stack entry for shadow
    frames, and the spilled chain value for PACStack (the epilogue
    authenticates the register-held aret against it). *)

val observable : Scheme.t -> bool
(** Whether control words read from memory are correlatable by the §3
    adversary — [false] only for masked PACStack, whose spilled tokens
    are indistinguishable from random (Appendix A), so harvesting them
    supports no reuse strategy. *)
