(* Per-scheme attack surface: where each scheme keeps the word that
   decides a function's return target, and whether an adversary who can
   read that word learns anything from it.

   The fault-injection engine (lib/inject) asks this module instead of
   hardcoding frame layouts: the knowledge of what each Scheme stores on
   the stack belongs next to Frame, which emits the code that stores
   it. *)

type slot = Return_slot | Chain_slot | Shadow_slot

let slot_to_string = function
  | Return_slot -> "return-slot"
  | Chain_slot -> "chain-slot"
  | Shadow_slot -> "shadow-slot"

(* Offsets are relative to a non-leaf function's frame pointer (see
   Frame.push_record / Frame.pacstack_prologue):
   [fp + 8]  the plain saved LR of the frame record;
   [fp - 16] the PACStack chain-register spill. *)
let return_slot_offset = 8
let chain_spill_offset = -16

let control_slot (scheme : Scheme.t) =
  match scheme with
  | Scheme.Unprotected | Scheme.Stack_protector | Scheme.Branch_protection -> Return_slot
  | Scheme.Shadow_stack -> Shadow_slot
  | Scheme.Pacstack _ -> Chain_slot

(* Can the §3 adversary correlate the control words it reads across
   call sites — i.e. does an observed repeat imply a reusable value?

   True everywhere except masked PACStack: plain return addresses,
   SP-keyed [paciasp] tokens and shadow-stack entries are directly
   reusable, and unmasked aret values expose their PACs, so an observed
   full-word collision is exactly the §6.1 reuse precondition. The
   masked variant's spilled tokens are indistinguishable from random
   draws (Appendix A; Games.violation_success models the same split),
   so reading them gives the adversary nothing to match on. *)
let observable (scheme : Scheme.t) =
  match scheme with
  | Scheme.Pacstack { masked } -> not masked
  | Scheme.Unprotected | Scheme.Stack_protector | Scheme.Branch_protection
  | Scheme.Shadow_stack -> true
