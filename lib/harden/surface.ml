(* Per-scheme attack surface — a facade over the scheme registry: each
   descriptor declares where it keeps the word that decides a
   function's return target, and whether an adversary who can read
   that word learns anything from it.

   The fault-injection engine (lib/inject) asks this module instead of
   hardcoding frame layouts: the knowledge of what each scheme stores
   on the stack belongs next to the codegen that stores it. *)

type slot = Scheme.slot = Return_slot | Chain_slot | Shadow_slot

let slot_to_string = function
  | Return_slot -> "return-slot"
  | Chain_slot -> "chain-slot"
  | Shadow_slot -> "shadow-slot"

(* Offsets are relative to a non-leaf function's frame pointer (see the
   push_record / pacstack_prologue sequences in scheme.ml):
   [fp + 8]  the plain saved LR of the frame record;
   [fp - 16] the PACStack/Zipper chain-register spill. *)
let return_slot_offset = 8
let chain_spill_offset = -16

let control_slot scheme = (Scheme.descriptor scheme).Scheme.control_slot
let observable scheme = (Scheme.descriptor scheme).Scheme.observable
