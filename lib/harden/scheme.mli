(** The hardening-scheme registry.

    A scheme is one self-describing {!descriptor}: its names, its
    prologue/epilogue codegen, the stack word an adversary must corrupt
    to redirect its return ({!slot}), whether its spilled control words
    are observable, its chain-register and setjmp/longjmp conventions,
    and the sealing hooks applied to function pointers.  {!Frame},
    {!Surface} and {!Runtime} are facades over descriptor lookups, so
    adding a scheme is one {!register} call in one module.

    Ships ten schemes: the paper's six (§7) plus four from the related
    work — PCan, Zipper Stack, PACTight sealing and PARTS forward-edge
    [pacia]. *)

type t
(** An opaque registry index.  Plain immediate int underneath:
    marshals across process pools and compares structurally. *)

type traits = {
  is_leaf : bool;  (** makes no calls *)
  has_arrays : bool;  (** holds addressable buffers (canary heuristic) *)
  locals_bytes : int;  (** 16-byte aligned size of the locals region *)
}

type slot =
  | Return_slot  (** the frame record's saved LR at [fp + 8] *)
  | Chain_slot  (** the PACStack/Zipper CR spill at [fp - 16] *)
  | Shadow_slot  (** the function's X18 shadow-stack entry *)

type descriptor = {
  name : string;  (** canonical name; [to_string] returns it *)
  aliases : string list;  (** extra spellings accepted by [of_string] *)
  prologue : traits -> Pacstack_isa.Instr.t list;
  epilogue : traits -> Pacstack_isa.Instr.t list;
      (** ends in the returning instruction *)
  protects_return : traits -> bool;
  frame_overhead_bytes : traits -> int;
  control_slot : slot;
  observable : bool;
  uses_chain_register : bool;
  chained_signal : bool;
      (** kernel binds signal frames to the ACS (Appendix B) *)
  setjmp_symbol : string;
  longjmp_symbol : string;
  fnptr_seal : Pacstack_isa.Reg.t -> Pacstack_isa.Instr.t list;
      (** appended after materialising a function address in the register *)
  fnptr_call : Pacstack_isa.Reg.t -> Pacstack_isa.Instr.t list;
      (** the complete indirect-call sequence through the register *)
}

exception Duplicate_scheme of { name : string; key : string }
(** Raised by {!register} when [key] (a name or alias, compared
    case-insensitively) is already claimed. *)

val register : descriptor -> t
val descriptor : t -> descriptor

val registered_count : unit -> int
(** Total registered schemes; tests pin it to [List.length all] so a
    registered scheme cannot silently miss evaluation coverage. *)

val all : t list
(** Every registered scheme, legacy six first, in table order. *)

val legacy : t list
(** The paper's six (§7), in the order its tables list them. *)

val unprotected : t
val stack_protector : t
val branch_protection : t
val shadow_stack : t
val pacstack_nomask : t
val pacstack : t
val pcan : t
val zipper : t
val pactight : t
val parts : t

val to_string : t -> string

val of_string : string -> t option
(** Total over everything {!to_string} produces: canonical names and
    aliases are claimed in one table at registration. *)

val pp : Format.formatter -> t -> unit
val equal : t -> t -> bool

val uses_chain_register : t -> bool
(** True when X28 is reserved (§5.1): PACStack variants and Zipper. *)

val chained_signal : t -> bool
(** True when the kernel authenticates sigreturn frames against the
    chain (Appendix B): the PACStack variants. *)

val fnptr_seal : t -> Pacstack_isa.Reg.t -> Pacstack_isa.Instr.t list
val fnptr_call : t -> Pacstack_isa.Reg.t -> Pacstack_isa.Instr.t list

val stack_chk_fail_symbol : string
(** ["__stack_chk_fail"] — the abort entry the canary-style schemes
    branch to on a failed check. *)

val canary_slot : traits -> int
(** SP-relative offset of the canary slot in a canary frame. *)

val obs_count_emitted :
  string -> Pacstack_isa.Instr.t list -> Pacstack_isa.Instr.t list
(** [obs_count_emitted name instrs] bumps the [harden.emit.*] metrics
    for the PA instructions in [instrs] under scheme [name] and returns
    [instrs]; descriptors wrap their codegen in it. *)
