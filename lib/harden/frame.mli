(** Per-scheme function prologue/epilogue generation.

    This is the moral equivalent of the paper's modified LLVM
    [AArch64FrameLowering]: given a function's traits it emits exactly the
    instruction sequences of Listings 1–3 (plus the canary and shadow-stack
    conventions) around the compiled body.  The sequences themselves live
    in each scheme's registry descriptor ({!Scheme.descriptor}); this
    module is a facade kept for the historical entry points.

    Layout contract with the compiler:
    - the body runs with SP at the bottom of a [locals_bytes] region,
    - FP points at the frame record, so [\[fp\] = caller FP] and
      [\[fp+8\] = return address]; PACStack stores [aret_{i-1}] at
      [\[fp-16\]] (consumed by {!Pacstack_machine.Unwind}),
    - the body ends by falling into the epilogue,
    - leaf functions (no calls) never spill LR and are skipped by the
      LR-protecting schemes, mirroring the paper's §7.1 heuristic. *)

type traits = Scheme.traits = {
  is_leaf : bool;  (** makes no calls *)
  has_arrays : bool;  (** holds addressable buffers (canary heuristic) *)
  locals_bytes : int;  (** 16-byte aligned size of the locals region *)
}

val traits : ?is_leaf:bool -> ?has_arrays:bool -> ?locals_bytes:int -> unit -> traits

val protects_return : Scheme.t -> traits -> bool
(** Whether the scheme instruments this function's return path. *)

val canary_slot : traits -> int
(** SP-relative offset of the canary slot when a canary scheme
    ({!Scheme.stack_protector}, {!Scheme.pcan}) instruments the
    function. *)

val frame_overhead_bytes : Scheme.t -> traits -> int
(** Extra stack bytes versus the unprotected frame. *)

val prologue : Scheme.t -> traits -> Pacstack_isa.Instr.t list
val epilogue : Scheme.t -> traits -> Pacstack_isa.Instr.t list
(** The epilogue ends in the returning instruction. *)

val stack_chk_fail_symbol : string
val canary_failure_exit_code : int
