(* Per-scheme function prologue/epilogue generation — a facade over the
   scheme registry: the codegen itself lives in each scheme's
   descriptor (scheme.ml).  This module keeps the historical entry
   points and the traits smart constructor. *)

type traits = Scheme.traits = { is_leaf : bool; has_arrays : bool; locals_bytes : int }

let traits ?(is_leaf = false) ?(has_arrays = false) ?(locals_bytes = 0) () =
  if locals_bytes < 0 || locals_bytes land 15 <> 0 then
    invalid_arg "Frame.traits: locals_bytes must be 16-byte aligned";
  { is_leaf; has_arrays; locals_bytes }

let stack_chk_fail_symbol = Scheme.stack_chk_fail_symbol
let canary_failure_exit_code = 134
let canary_slot = Scheme.canary_slot
let protects_return scheme t = (Scheme.descriptor scheme).Scheme.protects_return t
let frame_overhead_bytes scheme t = (Scheme.descriptor scheme).Scheme.frame_overhead_bytes t
let prologue scheme t = (Scheme.descriptor scheme).Scheme.prologue t
let epilogue scheme t = (Scheme.descriptor scheme).Scheme.epilogue t
