module Instr = Pacstack_isa.Instr
module Reg = Pacstack_isa.Reg
module Cond = Pacstack_isa.Cond
module Obs = Pacstack_obs.Obs

type traits = { is_leaf : bool; has_arrays : bool; locals_bytes : int }

let traits ?(is_leaf = false) ?(has_arrays = false) ?(locals_bytes = 0) () =
  if locals_bytes < 0 || locals_bytes land 15 <> 0 then
    invalid_arg "Frame.traits: locals_bytes must be 16-byte aligned";
  { is_leaf; has_arrays; locals_bytes }

let stack_chk_fail_symbol = "__stack_chk_fail"
let canary_failure_exit_code = 134
let guard_symbol = "__stack_chk_guard"

let protects_return scheme t =
  match (scheme : Scheme.t) with
  | Scheme.Unprotected -> false
  | Scheme.Stack_protector -> t.has_arrays
  | Scheme.Branch_protection | Scheme.Shadow_stack | Scheme.Pacstack _ -> not t.is_leaf

let canary_active scheme t =
  match (scheme : Scheme.t) with
  | Scheme.Stack_protector -> t.has_arrays
  | Scheme.Unprotected | Scheme.Branch_protection | Scheme.Shadow_stack | Scheme.Pacstack _ ->
    false

let canary_slot t = t.locals_bytes + 8

let frame_overhead_bytes scheme t =
  match (scheme : Scheme.t) with
  | Scheme.Stack_protector when t.has_arrays -> 16
  | Scheme.Pacstack _ when not t.is_leaf -> 16
  | Scheme.Shadow_stack when not t.is_leaf -> 8
  | Scheme.Unprotected | Scheme.Stack_protector | Scheme.Branch_protection
  | Scheme.Shadow_stack | Scheme.Pacstack _ -> 0

let sub_sp n = if n = 0 then [] else [ Instr.Sub (Reg.SP, Reg.SP, Instr.Imm (Int64.of_int n)) ]
let add_sp n = if n = 0 then [] else [ Instr.Add (Reg.SP, Reg.SP, Instr.Imm (Int64.of_int n)) ]

let mem base offset index = { Instr.base; offset; index }

(* Standard frame record push/pop. *)
let push_record = [ Instr.Stp (Reg.fp, Reg.lr, mem Reg.SP (-16) Instr.Pre); Instr.Mov (Reg.fp, Instr.Reg Reg.SP) ]
let pop_record = [ Instr.Ldp (Reg.fp, Reg.lr, mem Reg.SP 16 Instr.Post) ]

let x9 = Reg.x 9
let x10 = Reg.x 10
let x15 = Reg.scratch
let x18 = Reg.shadow
let x28 = Reg.cr

let canary_store t =
  [
    Instr.Adr (x9, guard_symbol);
    Instr.Ldr (x9, mem x9 0 Instr.Offset);
    Instr.Str (x9, mem Reg.SP (canary_slot t) Instr.Offset);
  ]

let canary_check t =
  [
    Instr.Ldr (x9, mem Reg.SP (canary_slot t) Instr.Offset);
    Instr.Adr (x10, guard_symbol);
    Instr.Ldr (x10, mem x10 0 Instr.Offset);
    Instr.Cmp (x9, Instr.Reg x10);
    Instr.Bcond (Cond.NE, stack_chk_fail_symbol);
  ]

(* The PACStack mask sequence of Listing 3: X15 <- pacia(0, CR), applied to
   LR with an exclusive-or, then cleared. *)
let mask_apply =
  [
    Instr.Mov (x15, Instr.Reg Reg.XZR);
    Instr.Pacia (x15, x28);
    Instr.Eor (Reg.lr, Reg.lr, Instr.Reg x15);
    Instr.Mov (x15, Instr.Reg Reg.XZR);
  ]

let pacstack_prologue ~masked =
  [
    Instr.Str (x28, mem Reg.SP (-32) Instr.Pre);
    Instr.Stp (Reg.fp, Reg.lr, mem Reg.SP 16 Instr.Offset);
    Instr.Add (Reg.fp, Reg.SP, Instr.Imm 16L);
    Instr.Pacia (Reg.lr, x28);
  ]
  @ (if masked then mask_apply else [])
  @ [ Instr.Mov (x28, Instr.Reg Reg.lr) ]

let pacstack_epilogue ~masked =
  [
    Instr.Mov (Reg.lr, Instr.Reg x28);
    Instr.Ldr (Reg.fp, mem Reg.SP 16 Instr.Offset);
    Instr.Ldr (x28, mem Reg.SP 32 Instr.Post);
  ]
  @ (if masked then mask_apply else [])
  @ [ Instr.Autia (Reg.lr, x28); Instr.Ret Reg.lr ]

(* Counts the PA instrumentation a pass emits (compile-time events, not
   executions — the machine counts those): [harden.emit.pac]/[.aut] per
   scheme, and [.chain_link] for the ACS link operations whose modifier
   is the chain register. *)
let obs_count_emitted scheme instrs =
  if Obs.enabled () then begin
    let label = "{scheme=" ^ Scheme.to_string scheme ^ "}" in
    List.iter
      (function
        | Instr.Pacia (_, rn) ->
          Obs.Metrics.incr ("harden.emit.pac" ^ label);
          if rn = x28 then Obs.Metrics.incr ("harden.emit.chain_link" ^ label)
        | Instr.Paciasp -> Obs.Metrics.incr ("harden.emit.pac" ^ label)
        | Instr.Autia (_, rn) ->
          Obs.Metrics.incr ("harden.emit.aut" ^ label);
          if rn = x28 then Obs.Metrics.incr ("harden.emit.chain_link" ^ label)
        | Instr.Autiasp | Instr.Retaa -> Obs.Metrics.incr ("harden.emit.aut" ^ label)
        | _ -> ())
      instrs
  end;
  instrs

let prologue scheme t =
  obs_count_emitted scheme
  @@
  if canary_active scheme t then
    push_record @ sub_sp (t.locals_bytes + 16) @ canary_store t
  else if t.is_leaf then sub_sp t.locals_bytes
  else
    match (scheme : Scheme.t) with
    | Scheme.Unprotected | Scheme.Stack_protector -> push_record @ sub_sp t.locals_bytes
    | Scheme.Branch_protection -> (Instr.Paciasp :: push_record) @ sub_sp t.locals_bytes
    | Scheme.Shadow_stack ->
      (Instr.Str (Reg.lr, mem x18 8 Instr.Post) :: push_record) @ sub_sp t.locals_bytes
    | Scheme.Pacstack { masked } -> pacstack_prologue ~masked @ sub_sp t.locals_bytes

let epilogue scheme t =
  obs_count_emitted scheme
  @@
  if canary_active scheme t then
    canary_check t @ add_sp (t.locals_bytes + 16) @ pop_record @ [ Instr.Ret Reg.lr ]
  else if t.is_leaf then add_sp t.locals_bytes @ [ Instr.Ret Reg.lr ]
  else
    match (scheme : Scheme.t) with
    | Scheme.Unprotected | Scheme.Stack_protector ->
      add_sp t.locals_bytes @ pop_record @ [ Instr.Ret Reg.lr ]
    | Scheme.Branch_protection -> add_sp t.locals_bytes @ pop_record @ [ Instr.Retaa ]
    | Scheme.Shadow_stack ->
      add_sp t.locals_bytes @ pop_record
      @ [ Instr.Ldr (Reg.lr, mem x18 (-8) Instr.Pre); Instr.Ret Reg.lr ]
    | Scheme.Pacstack { masked } -> add_sp t.locals_bytes @ pacstack_epilogue ~masked
