module Instr = Pacstack_isa.Instr
module Reg = Pacstack_isa.Reg
module Cond = Pacstack_isa.Cond
module Program = Pacstack_isa.Program

let jmp_buf_bytes = 128

let setjmp_symbol = "setjmp"
let longjmp_symbol = "longjmp"
let pacstack_setjmp_symbol = "__pacstack_setjmp"
let pacstack_longjmp_symbol = "__pacstack_longjmp"

module Obs = Pacstack_obs.Obs

let obs_entry kind scheme =
  if Obs.enabled () then
    Obs.Metrics.incr
      (Printf.sprintf "harden.runtime.%s{scheme=%s}" kind (Scheme.to_string scheme))

let setjmp_entry scheme =
  obs_entry "setjmp" scheme;
  (Scheme.descriptor scheme).Scheme.setjmp_symbol

let longjmp_entry scheme =
  obs_entry "longjmp" scheme;
  (Scheme.descriptor scheme).Scheme.longjmp_symbol

let x0 = Reg.x 0
let x1 = Reg.x 1
let x9 = Reg.x 9
let x15 = Reg.scratch
let x28 = Reg.cr

let off base offset = { Instr.base; offset; index = Instr.Offset }

(* slot offsets inside jmp_buf *)
let slot_x i = 8 * (i - 19)  (* x19..x28 at 0..72 *)
let slot_fp = 80
let slot_lr = 88
let slot_sp = 96
let slot_x18 = 104  (* shadow-stack pointer, as bionic's setjmp does *)

let ins l = List.map (fun i -> Program.Ins i) l

(* int setjmp(jmp_buf *buf): saves callee-saved registers, FP, LR, SP;
   returns 0. *)
let setjmp_fn =
  Program.func setjmp_symbol
    (ins
       (List.concat
          [
            List.init 10 (fun i -> Instr.Str (Reg.x (19 + i), off x0 (slot_x (19 + i))));
            [
              Instr.Str (Reg.fp, off x0 slot_fp);
              Instr.Str (Reg.lr, off x0 slot_lr);
              Instr.Mov (x9, Instr.Reg Reg.SP);
              Instr.Str (x9, off x0 slot_sp);
              Instr.Str (Reg.shadow, off x0 slot_x18);
              Instr.Mov (x0, Instr.Imm 0L);
              Instr.Ret Reg.lr;
            ];
          ]))

(* void longjmp(jmp_buf *buf, int val): restores the saved environment and
   returns val (or 1 if val = 0) from the corresponding setjmp. *)
let longjmp_fn =
  Program.func longjmp_symbol
    (List.concat
       [
         ins (List.init 10 (fun i -> Instr.Ldr (Reg.x (19 + i), off x0 (slot_x (19 + i)))));
         ins
           [
             Instr.Ldr (Reg.fp, off x0 slot_fp);
             Instr.Ldr (Reg.lr, off x0 slot_lr);
             Instr.Ldr (Reg.shadow, off x0 slot_x18);
             Instr.Ldr (x9, off x0 slot_sp);
             Instr.Mov (Reg.SP, Instr.Reg x9);
             Instr.Cmp (x1, Instr.Imm 0L);
             Instr.Bcond (Cond.NE, "nonzero");
             Instr.Mov (x1, Instr.Imm 1L);
           ];
         [ Program.Lbl "nonzero" ];
         ins [ Instr.Mov (x0, Instr.Reg x1); Instr.Ret Reg.lr ];
       ])

(* Listing 4: bind the setjmp return address to both the current aret and
   the SP value before storing it into jmp_buf. Where the paper's wrapper
   rewrites LR and delegates to libc setjmp, ours performs the stores
   itself so that the wrapper can still return through the plain LR —
   behaviourally identical, but executable in a strict simulator. *)
let pacstack_setjmp_fn =
  Program.func pacstack_setjmp_symbol
    (ins
       (List.concat
          [
            List.init 10 (fun i -> Instr.Str (Reg.x (19 + i), off x0 (slot_x (19 + i))));
            [
              Instr.Str (Reg.fp, off x0 slot_fp);
              Instr.Mov (x9, Instr.Reg Reg.SP);
              Instr.Str (x9, off x0 slot_sp);
              Instr.Str (Reg.shadow, off x0 slot_x18);
              (* aret_b = pacia(ret_b, aret_i) xor pacia(SP_b, aret_i) *)
              Instr.Mov (x15, Instr.Reg Reg.SP);
              Instr.Pacia (x15, x28);
              Instr.Mov (x9, Instr.Reg Reg.lr);
              Instr.Pacia (x9, x28);
              Instr.Eor (x9, x9, Instr.Reg x15);
              Instr.Str (x9, off x0 slot_lr);
              Instr.Mov (x0, Instr.Imm 0L);
              Instr.Ret Reg.lr;
            ];
          ]))

(* Listing 5: retrieve aret_f (saved CR), the bound return address and SP
   from jmp_buf, verify, write the verified plain return address back, and
   fall through to the plain longjmp. *)
let pacstack_longjmp_fn =
  Program.func pacstack_longjmp_symbol
    (ins
       [
         Instr.Ldr (x28, off x0 (slot_x 28));
         Instr.Ldr (x9, off x0 slot_lr);
         Instr.Ldr (x15, off x0 slot_sp);
         Instr.Pacia (x15, x28);
         Instr.Eor (x9, x9, Instr.Reg x15);
         Instr.Autia (x9, x28);
         Instr.Str (x9, off x0 slot_lr);
         Instr.B longjmp_symbol;
       ])

let stack_chk_fail_fn =
  Program.func Frame.stack_chk_fail_symbol
    (ins
       [
         Instr.Mov (x0, Instr.Imm (Int64.of_int Frame.canary_failure_exit_code));
         Instr.Hlt;
       ])

let functions =
  [ setjmp_fn; longjmp_fn; pacstack_setjmp_fn; pacstack_longjmp_fn; stack_chk_fail_fn ]
