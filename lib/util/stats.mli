(** Descriptive statistics and closed-form probability helpers used by the
    benchmark harness and the security experiments. *)

val mean : float list -> float
(** Arithmetic mean; raises [Invalid_argument] on the empty list. *)

val geometric_mean : float list -> float
(** Geometric mean of positive values; raises [Invalid_argument] on an empty
    list or a non-positive element. *)

val stddev : float list -> float
(** Sample standard deviation (n-1 denominator); 0 for fewer than 2 values. *)

val median : float list -> float

val percentile : float list -> float -> float
(** [percentile xs p] with [p] in [0, 100], linear interpolation.
    Raises [Invalid_argument] if [xs] is empty, if [p] is NaN or outside
    [0, 100], or if any element is NaN (NaN has no rank). *)

val percentiles : float list -> float list -> float list
(** [percentiles xs ps] is [List.map (percentile xs) ps] computed with a
    single sort — use it when asking several ranks of the same samples
    (the p50/p95/p99/p999 latency tables). Same validation and
    interpolation as {!percentile}, so the results agree exactly. *)

val weighted_percentile : bounds:float array -> counts:int array -> float -> float
(** [weighted_percentile ~bounds ~counts p]: the [p]-th percentile of a
    histogram with [counts.(i)] samples in bucket
    [[bounds.(i), bounds.(i+1))] — [bounds] has one more entry than
    [counts] and must be strictly increasing. Linear interpolation inside
    the bucket containing the rank, so the answer is within one bucket
    width of {!percentile} on the raw samples. This is the
    sufficient-statistics path: the fleet simulator folds millions of
    request latencies into constant-size bucket counts and still reports
    tails. Raises [Invalid_argument] on an empty histogram, malformed
    bounds or an out-of-range [p]. *)

val wilson : successes:int -> trials:int -> float * float
(** [wilson ~successes ~trials] is the 95 % Wilson score interval
    [(lo, hi)] for a binomial proportion, clamped to [[0, 1]].
    [trials = 0] returns [(0., 1.)] — no evidence constrains nothing —
    which is what the rare-event campaign tables need for empty cells.
    Raises [Invalid_argument] if [trials < 0] or [successes] is outside
    [[0, trials]]. *)

val binomial_ci : successes:int -> trials:int -> float * float
(** 95 % Wilson score interval for a binomial proportion. Same as
    {!wilson} but raises [Invalid_argument] when [trials <= 0] (the
    historical contract). *)

val overhead_pct : baseline:float -> measured:float -> float
(** [(measured - baseline) / baseline * 100]. *)

(** {1 Closed forms from the paper} *)

val birthday_expected_tokens : bits:int -> float
(** Expected number of harvested [b]-bit tokens before the first collision,
    [sqrt (pi * 2^b / 2)] — 321 for b = 16 (paper §6.2.1). *)

val birthday_collision_probability : bits:int -> drawn:int -> float
(** Probability that [drawn] uniform [b]-bit tokens contain a collision. *)

val guesses_for_success : bits:int -> p:float -> float
(** Number of independent 2^-b guesses needed to succeed with probability
    [p] when failure is fatal: [log(1-p) / log(1-2^-b)] (paper §4.3). *)

val expected_guesses_geometric : bits:int -> float
(** Mean of the geometric distribution with success probability 2^-b. *)

(** {1 Histograms} *)

module Histogram : sig
  type t

  val create : buckets:int -> lo:float -> hi:float -> t
  val add : t -> float -> unit
  val count : t -> int
  val bucket_counts : t -> int array
  val pp : Format.formatter -> t -> unit
  (** Renders a small ASCII bar chart. *)
end
