type t = { mutable state : int64 }

let golden_gamma = 0x9e3779b97f4a7c15L

(* SplitMix64 (Steele, Lea, Flood 2014): additive state, mix on output. *)
let mix z =
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xbf58476d1ce4e5b9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94d049bb133111ebL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let create seed = { state = seed }

let next64 t =
  t.state <- Int64.add t.state golden_gamma;
  mix t.state

let split t = create (next64 t)

let split_n t n =
  if n < 0 then invalid_arg "Rng.split_n"
  else if n = 0 then [||]
  else begin
    let a = Array.make n t in
    for i = 0 to n - 1 do
      a.(i) <- split t
    done;
    a
  end

let copy t = { state = t.state }

let bits t n =
  if n < 0 || n > 64 then invalid_arg "Rng.bits"
  else if n = 0 then 0L
  else Int64.shift_right_logical (next64 t) (64 - n)

let int t n =
  if n <= 0 then invalid_arg "Rng.int";
  (* Rejection sampling on the top bits to avoid modulo bias. *)
  let rec width k = if 1 lsl k >= n then k else width (k + 1) in
  let k = width 1 in
  let rec draw () =
    let v = Int64.to_int (bits t k) in
    if v < n then v else draw ()
  in
  draw ()

let bool t = bits t 1 = 1L

let float t =
  (* 53 uniform bits scaled to [0, 1). *)
  Int64.to_float (bits t 53) *. (1.0 /. 9007199254740992.0)

let choose t a =
  if Array.length a = 0 then invalid_arg "Rng.choose";
  a.(int t (Array.length a))

let shuffle t a =
  for i = Array.length a - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done
