type t = int64

let equal = Int64.equal
let compare = Int64.unsigned_compare

let[@inline] mask n =
  if n < 0 || n > 64 then invalid_arg "Word64.mask"
  else if n = 64 then -1L
  else Int64.sub (Int64.shift_left 1L n) 1L

let[@inline] bit w i =
  if i < 0 || i > 63 then invalid_arg "Word64.bit"
  else Int64.logand (Int64.shift_right_logical w i) 1L = 1L

let[@inline] set_bit w i v =
  let m = Int64.shift_left 1L i in
  if v then Int64.logor w m else Int64.logand w (Int64.lognot m)

let[@inline] flip_bit w i = Int64.logxor w (Int64.shift_left 1L i)

let[@inline] extract w ~lo ~width =
  if lo < 0 || width < 0 || lo + width > 64 then invalid_arg "Word64.extract"
  else Int64.logand (Int64.shift_right_logical w lo) (mask width)

let[@inline] insert w ~lo ~width v =
  if lo < 0 || width < 0 || lo + width > 64 then invalid_arg "Word64.insert"
  else
    let m = Int64.shift_left (mask width) lo in
    let v = Int64.shift_left (Int64.logand v (mask width)) lo in
    Int64.logor (Int64.logand w (Int64.lognot m)) v

let[@inline] rotl w n =
  let n = ((n mod 64) + 64) mod 64 in
  if n = 0 then w
  else Int64.logor (Int64.shift_left w n) (Int64.shift_right_logical w (64 - n))

let rotr w n = rotl w (64 - (((n mod 64) + 64) mod 64))

let shift_right_logical = Int64.shift_right_logical

let popcount w =
  let rec go acc w = if w = 0L then acc else go (acc + 1) (Int64.logand w (Int64.sub w 1L)) in
  go 0 w

let hamming a b = popcount (Int64.logxor a b)
let parity w = popcount w land 1

let nibble w i =
  if i < 0 || i > 15 then invalid_arg "Word64.nibble"
  else Int64.to_int (extract w ~lo:(4 * (15 - i)) ~width:4)

let set_nibble w i v =
  if i < 0 || i > 15 then invalid_arg "Word64.set_nibble"
  else insert w ~lo:(4 * (15 - i)) ~width:4 (Int64.of_int (v land 0xf))

let of_nibbles cells =
  if Array.length cells <> 16 then invalid_arg "Word64.of_nibbles";
  Array.fold_left (fun acc c -> Int64.logor (Int64.shift_left acc 4) (Int64.of_int (c land 0xf))) 0L cells

let to_nibbles w = Array.init 16 (nibble w)

let byte w i =
  if i < 0 || i > 7 then invalid_arg "Word64.byte"
  else Int64.to_int (extract w ~lo:(8 * i) ~width:8)

let set_byte w i v =
  if i < 0 || i > 7 then invalid_arg "Word64.set_byte"
  else insert w ~lo:(8 * i) ~width:8 (Int64.of_int (v land 0xff))

let to_hex w = Printf.sprintf "%016Lx" w

let of_hex s =
  let s = if String.length s >= 2 && s.[0] = '0' && (s.[1] = 'x' || s.[1] = 'X') then String.sub s 2 (String.length s - 2) else s in
  if String.length s = 0 || String.length s > 16 then invalid_arg "Word64.of_hex";
  let digit c =
    match c with
    | '0' .. '9' -> Char.code c - Char.code '0'
    | 'a' .. 'f' -> Char.code c - Char.code 'a' + 10
    | 'A' .. 'F' -> Char.code c - Char.code 'A' + 10
    | _ -> invalid_arg "Word64.of_hex"
  in
  String.fold_left (fun acc c -> Int64.logor (Int64.shift_left acc 4) (Int64.of_int (digit c))) 0L s

let pp fmt w = Format.fprintf fmt "0x%s" (to_hex w)
