(** Deterministic pseudo-random number generation (SplitMix64).

    Every stochastic component of the simulator (key generation, workload
    data, Monte-Carlo experiments) draws from an explicit [Rng.t] so runs
    are reproducible from a seed. *)

type t

val create : int64 -> t
(** [create seed] is a fresh generator. Equal seeds yield equal streams. *)

val split : t -> t
(** [split t] derives an independent generator and advances [t]. *)

val split_n : t -> int -> t array
(** [split_n t n] derives [n] independent generators in order, advancing
    [t] by [n] draws. [split_n t n = Array.init n (fun _ -> split t)]
    evaluated left to right; raises [Invalid_argument] for [n < 0]. The
    campaign sharder keys shard [i] of an [n]-shard plan to
    [(split_n (create campaign_seed) n).(i)], so a shard's stream depends
    only on the campaign seed and the shard's index. *)

val copy : t -> t

val next64 : t -> int64
(** Uniform 64-bit word. *)

val bits : t -> int -> int64
(** [bits t n] is a uniform [n]-bit word, [0 <= n <= 64]. *)

val int : t -> int -> int
(** [int t n] is uniform in [0, n), [n > 0]. *)

val bool : t -> bool

val float : t -> float
(** Uniform in [0, 1). *)

val choose : t -> 'a array -> 'a
(** Uniform element of a non-empty array. *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher–Yates shuffle. *)
