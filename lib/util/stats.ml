let mean = function
  | [] -> invalid_arg "Stats.mean"
  | xs -> List.fold_left ( +. ) 0.0 xs /. float_of_int (List.length xs)

let geometric_mean = function
  | [] -> invalid_arg "Stats.geometric_mean"
  | xs ->
    let log_sum =
      List.fold_left
        (fun acc x ->
          if x <= 0.0 then invalid_arg "Stats.geometric_mean: non-positive value"
          else acc +. log x)
        0.0 xs
    in
    exp (log_sum /. float_of_int (List.length xs))

let stddev xs =
  let n = List.length xs in
  if n < 2 then 0.0
  else
    let m = mean xs in
    let ss = List.fold_left (fun acc x -> acc +. ((x -. m) ** 2.0)) 0.0 xs in
    sqrt (ss /. float_of_int (n - 1))

let sorted xs = List.sort compare xs

let percentile xs p =
  (* Validate the rank before touching the data: an out-of-range [p]
     used to compute an out-of-range [rank] and die on array bounds,
     and a NaN [p] (or element — [compare] orders NaN below everything)
     produced garbage silently. *)
  if Float.is_nan p || p < 0.0 || p > 100.0 then
    invalid_arg (Printf.sprintf "Stats.percentile: p = %g not in [0, 100]" p);
  if List.exists Float.is_nan xs then
    invalid_arg "Stats.percentile: NaN element";
  match sorted xs with
  | [] -> invalid_arg "Stats.percentile"
  | s ->
    let a = Array.of_list s in
    let n = Array.length a in
    if n = 1 then a.(0)
    else
      let rank = p /. 100.0 *. float_of_int (n - 1) in
      let lo = int_of_float (floor rank) in
      let hi = min (lo + 1) (n - 1) in
      let frac = rank -. float_of_int lo in
      a.(lo) +. (frac *. (a.(hi) -. a.(lo)))

let median xs = percentile xs 50.0

(* One sort, many ranks: the per-scheme tail-latency tables ask for
   p50/p95/p99/p999 of the same samples, and sorting once is what makes
   that linear instead of quadratic in the number of ranks. *)
let percentiles xs ps =
  List.iter
    (fun p ->
      if Float.is_nan p || p < 0.0 || p > 100.0 then
        invalid_arg (Printf.sprintf "Stats.percentiles: p = %g not in [0, 100]" p))
    ps;
  if List.exists Float.is_nan xs then invalid_arg "Stats.percentiles: NaN element";
  match sorted xs with
  | [] -> invalid_arg "Stats.percentiles"
  | s ->
    let a = Array.of_list s in
    let n = Array.length a in
    List.map
      (fun p ->
        if n = 1 then a.(0)
        else
          let rank = p /. 100.0 *. float_of_int (n - 1) in
          let lo = int_of_float (floor rank) in
          let hi = min (lo + 1) (n - 1) in
          let frac = rank -. float_of_int lo in
          a.(lo) +. (frac *. (a.(hi) -. a.(lo))))
      ps

let weighted_percentile ~bounds ~counts p =
  if Float.is_nan p || p < 0.0 || p > 100.0 then
    invalid_arg (Printf.sprintf "Stats.weighted_percentile: p = %g not in [0, 100]" p);
  let buckets = Array.length counts in
  if buckets = 0 || Array.length bounds <> buckets + 1 then
    invalid_arg "Stats.weighted_percentile: bounds must have one more entry than counts";
  for i = 0 to buckets - 1 do
    if counts.(i) < 0 then invalid_arg "Stats.weighted_percentile: negative count";
    if not (bounds.(i) < bounds.(i + 1)) then
      invalid_arg "Stats.weighted_percentile: bounds not increasing"
  done;
  let total = Array.fold_left ( + ) 0 counts in
  if total = 0 then invalid_arg "Stats.weighted_percentile: empty histogram";
  (* Rank in sample space, then linear interpolation inside the bucket
     that contains it — the histogram analogue of {!percentile}, accurate
     to one bucket width against the exact answer on the raw samples. *)
  let target = p /. 100.0 *. float_of_int total in
  let rec go i cum =
    if i >= buckets then bounds.(buckets)
    else
      let c = counts.(i) in
      let cum' = cum +. float_of_int c in
      if c > 0 && target <= cum' then
        let frac = if c = 0 then 0.0 else (target -. cum) /. float_of_int c in
        bounds.(i) +. (Float.max 0.0 frac *. (bounds.(i + 1) -. bounds.(i)))
      else go (i + 1) cum'
  in
  go 0 0.0

(* Wilson score interval. Unlike the naive Wald interval this stays
   honest for the rare-event rates the mega-campaigns measure: at
   k = 0 of n the lower bound is exactly 0 but the upper bound shrinks
   like z^2/(n+z^2) instead of collapsing to a zero-width interval. *)
let wilson ~successes ~trials =
  if trials < 0 then invalid_arg "Stats.wilson: trials < 0";
  if successes < 0 || successes > trials then
    invalid_arg
      (Printf.sprintf "Stats.wilson: successes %d not in [0, %d]" successes trials);
  if trials = 0 then (0.0, 1.0) (* no evidence: the whole unit interval *)
  else
    let z = 1.959964 in
    let n = float_of_int trials in
    let p = float_of_int successes /. n in
    let z2 = z *. z in
    let denom = 1.0 +. (z2 /. n) in
    let centre = (p +. (z2 /. (2.0 *. n))) /. denom in
    let half = z /. denom *. sqrt (((p *. (1.0 -. p)) /. n) +. (z2 /. (4.0 *. n *. n))) in
    (max 0.0 (centre -. half), min 1.0 (centre +. half))

let binomial_ci ~successes ~trials =
  if trials <= 0 then invalid_arg "Stats.binomial_ci";
  wilson ~successes ~trials

let overhead_pct ~baseline ~measured =
  if baseline = 0.0 then invalid_arg "Stats.overhead_pct"
  else (measured -. baseline) /. baseline *. 100.0

let birthday_expected_tokens ~bits =
  sqrt (Float.pi *. (2.0 ** float_of_int bits) /. 2.0)

let birthday_collision_probability ~bits ~drawn =
  (* 1 - prod_{i=1}^{q-1} (1 - i/2^b), computed in log space. *)
  let space = 2.0 ** float_of_int bits in
  if float_of_int drawn >= space then 1.0
  else
    let rec go i acc =
      if i >= drawn then acc
      else go (i + 1) (acc +. log1p (-.float_of_int i /. space))
    in
    1.0 -. exp (go 1 0.0)

let guesses_for_success ~bits ~p =
  if p <= 0.0 || p >= 1.0 then invalid_arg "Stats.guesses_for_success";
  log1p (-.p) /. log1p (-.(2.0 ** float_of_int (-bits)))

let expected_guesses_geometric ~bits = 2.0 ** float_of_int bits

module Histogram = struct
  type t = {
    lo : float;
    hi : float;
    counts : int array;
    mutable total : int;
  }

  let create ~buckets ~lo ~hi =
    if buckets <= 0 || hi <= lo then invalid_arg "Histogram.create";
    { lo; hi; counts = Array.make buckets 0; total = 0 }

  let add t x =
    let n = Array.length t.counts in
    let idx =
      if x <= t.lo then 0
      else if x >= t.hi then n - 1
      else int_of_float ((x -. t.lo) /. (t.hi -. t.lo) *. float_of_int n)
    in
    let idx = min (n - 1) (max 0 idx) in
    t.counts.(idx) <- t.counts.(idx) + 1;
    t.total <- t.total + 1

  let count t = t.total
  let bucket_counts t = Array.copy t.counts

  let pp fmt t =
    let width = 40 in
    let peak = Array.fold_left max 1 t.counts in
    let n = Array.length t.counts in
    let step = (t.hi -. t.lo) /. float_of_int n in
    Array.iteri
      (fun i c ->
        let bar = String.make (c * width / peak) '#' in
        Format.fprintf fmt "[%8.1f, %8.1f) %6d %s@."
          (t.lo +. (float_of_int i *. step))
          (t.lo +. (float_of_int (i + 1) *. step))
          c bar)
      t.counts
end
