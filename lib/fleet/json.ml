module J = Pacstack_campaign.Json
module Checkpoint = Pacstack_campaign.Checkpoint
module Scheme = Pacstack_harden.Scheme

let stats_to_json (s : Fleet.stats) =
  J.Obj
    [
      ("scheme", J.String (Scheme.to_string s.scheme));
      ("offered", J.Int s.offered);
      ("completed", J.Int s.completed);
      ("queue_peak", J.Int s.queue_peak);
      ("busy_cycles", J.Float s.busy_cycles);
      ("size_classes", J.Int s.size_classes);
      ("latency", Latency.to_json s.latency);
    ]

let stats_of_json json =
  let int k = Option.bind (J.member k json) J.to_int in
  let scheme = Option.bind (Option.bind (J.member "scheme" json) J.to_str) Scheme.of_string in
  let busy = Option.bind (J.member "busy_cycles" json) J.to_float in
  let latency = Option.bind (J.member "latency" json) Latency.of_json in
  match
    (scheme, int "offered", int "completed", int "queue_peak", busy, int "size_classes", latency)
  with
  | ( Some scheme,
      Some offered,
      Some completed,
      Some queue_peak,
      Some busy_cycles,
      Some size_classes,
      Some latency ) ->
    Some
      ({ scheme; offered; completed; queue_peak; busy_cycles; size_classes; latency }
        : Fleet.stats)
  | _ -> None

let checkpoint_codec : Fleet.stats Checkpoint.codec =
  { encode = stats_to_json; decode = stats_of_json }

let row_json cfg (s : Fleet.stats) =
  let quantile_fields =
    if s.latency.Latency.count = 0 then []
    else
      List.concat_map
        (fun p ->
          let cycles = Latency.percentile s.latency p in
          let tag = if Float.is_integer p then Printf.sprintf "%.0f" p else "999" in
          [
            (Printf.sprintf "p%s_cycles" tag, J.Float cycles);
            (Printf.sprintf "p%s_ms" tag, J.Float (Fleet.ms_of_cycles cycles));
          ])
        Fleet.quantiles
  in
  let mean_fields =
    if s.latency.Latency.count = 0 then []
    else
      let mean = Latency.mean s.latency in
      [ ("mean_cycles", J.Float mean); ("mean_ms", J.Float (Fleet.ms_of_cycles mean)) ]
  in
  J.Obj
    ([
       ("scheme", J.String (Scheme.to_string s.scheme));
       ("offered", J.Int s.offered);
       ("completed", J.Int s.completed);
       ("queue_peak", J.Int s.queue_peak);
       ("size_classes", J.Int s.size_classes);
       ("utilisation", J.Float (Fleet.utilisation cfg s));
     ]
    @ mean_fields @ quantile_fields)

let table_to_json (cfg : Fleet.config) rows =
  J.Obj
    [
      ("experiment", J.String "fleet");
      ("connections", J.Int cfg.connections);
      ("duration_s", J.Float cfg.duration_s);
      ("arrival", J.String (Arrival.to_string cfg.arrival));
      ("seed", J.String (Int64.to_string cfg.seed));
      ("cells", J.Int cfg.cells);
      ("cores", J.Int cfg.cores);
      ("schemes", J.List (List.map (fun r -> row_json cfg r) rows));
    ]
