(** Open-loop arrival processes for the fleet simulator.

    Open loop means clients do not wait for the server: requests keep
    arriving at the offered rate however slow the fleet gets, which is
    what exposes queueing tails (a closed loop throttles itself and hides
    them — see DESIGN.md, "Fleet simulation").

    Determinism: connection [c]'s whole arrival stream — inter-arrival
    gaps, burst-state sojourns, request sizes, service jitter — derives
    from [(seed, c)] alone, never from execution order or worker count,
    the same discipline as fuzz program and fault derivation. *)

type process =
  | Poisson of { rate : float }
      (** memoryless arrivals at [rate] requests/s per connection *)
  | Bursty of { calm_rate : float; burst_rate : float; calm_s : float; burst_s : float }
      (** a 2-state MMPP: exponential sojourns with means [calm_s] /
          [burst_s] seconds, Poisson arrivals at the state's rate *)
  | Diurnal of { rate : float; amplitude : float; period_s : float }
      (** sinusoidal rate modulation
          [rate * (1 + amplitude * sin (2 pi t / period))], drawn by
          thinning; [0 <= amplitude <= 1] *)

type size_mix =
  | Fixed  (** every response is [Server.Kernel.base_records] records *)
  | Jittered  (** the Table 3 variant jitter: base + 0..8 records *)
  | Heavy_tailed
      (** jittered body with Pareto-ish tail classes: x2 / x4 / x8
          responses at 7% / 2.5% / 0.5% — the request-size mix that
          separates p999 from the mean *)

type t = { process : process; sizes : size_mix }

val mean_rate : process -> float
(** Long-run requests/s per connection (exact for Poisson and Bursty,
    exact over whole periods for Diurnal). *)

val presets : (string * t) list
(** The CLI vocabulary: ["poisson"], ["bursty"], ["diurnal"], ["heavy"]. *)

val of_string : string -> t option
val to_string : t -> string
(** The preset's name, or ["custom"] for an un-listed combination. *)

(** {1 Per-connection streams} *)

type request = {
  at_s : float;  (** arrival time in virtual seconds since epoch *)
  records : int;  (** response size drawn from the mix *)
  service_jitter : float;
      (** multiplicative service-time noise in [1, 1.05) — cache and
          interrupt variance the cycle-exact machine cannot show *)
}

type gen

val start : t -> seed:int64 -> conn:int -> gen
(** The arrival stream of connection [conn], a pure function of
    [(seed, conn)]. *)

val next : gen -> until_s:float -> request option
(** The next request strictly before [until_s] virtual seconds, advancing
    the stream; [None] once the stream has passed the horizon (and on
    every later call with the same [until_s]). Arrival times are
    non-decreasing across calls. *)
