module Stats = Pacstack_util.Stats
module J = Pacstack_campaign.Json

type t = {
  count : int;
  sum : float;
  min : float;
  max : float;
  counts : int array;
}

let buckets = 128
let lo_cycles = 1e3
let hi_cycles = 1e9

(* Geometric edges: bucket i covers [lo * r^i, lo * r^(i+1)) with
   r = (hi/lo)^(1/buckets) ~ 1.11 — constant *relative* resolution, which
   is what a latency tail wants (p999 at 100x the median must not share a
   bucket with it, as linear edges would force). *)
let bounds =
  let ratio = (hi_cycles /. lo_cycles) ** (1.0 /. float_of_int buckets) in
  Array.init (buckets + 1) (fun i -> lo_cycles *. (ratio ** float_of_int i))

let empty = { count = 0; sum = 0.0; min = infinity; max = neg_infinity; counts = Array.make buckets 0 }

let bucket_of x =
  if x <= lo_cycles then 0
  else if x >= hi_cycles then buckets - 1
  else begin
    let i =
      int_of_float (log (x /. lo_cycles) /. log (hi_cycles /. lo_cycles) *. float_of_int buckets)
    in
    (* float rounding at an edge can land one off; clamp via the edges *)
    let i = Stdlib.min (buckets - 1) (Stdlib.max 0 i) in
    if x < bounds.(i) then i - 1 else if x >= bounds.(i + 1) then i + 1 else i
  end

let record t x =
  let counts = Array.copy t.counts in
  let i = Stdlib.min (buckets - 1) (Stdlib.max 0 (bucket_of x)) in
  counts.(i) <- counts.(i) + 1;
  {
    count = t.count + 1;
    sum = t.sum +. x;
    min = Float.min t.min x;
    max = Float.max t.max x;
    counts;
  }

let merge a b =
  {
    count = a.count + b.count;
    sum = a.sum +. b.sum;
    min = Float.min a.min b.min;
    max = Float.max a.max b.max;
    counts = Array.init buckets (fun i -> a.counts.(i) + b.counts.(i));
  }

let mean t = if t.count = 0 then invalid_arg "Latency.mean" else t.sum /. float_of_int t.count

let percentile t p =
  if t.count = 0 then invalid_arg "Latency.percentile";
  let raw = Stats.weighted_percentile ~bounds ~counts:t.counts p in
  (* the exact extremes are tracked, so never report outside them *)
  Float.max t.min (Float.min t.max raw)

let percentiles t ps = List.map (percentile t) ps

let to_json t =
  J.Obj
    [
      ("count", J.Int t.count);
      ("sum", J.Float t.sum);
      ("min", J.Float t.min);
      ("max", J.Float t.max);
      ("counts", J.List (Array.to_list (Array.map (fun c -> J.Int c) t.counts)));
    ]

let of_json json =
  let int k = Option.bind (J.member k json) J.to_int in
  let flt k = Option.bind (J.member k json) J.to_float in
  match (int "count", flt "sum", J.member "counts" json) with
  | Some count, Some sum, Some (J.List cells) when List.length cells = buckets ->
    let counts = Array.make buckets 0 in
    let ok =
      List.for_all Fun.id
        (List.mapi
           (fun i cell ->
             match J.to_int cell with
             | Some c -> counts.(i) <- c; true
             | None -> false)
           cells)
    in
    if not ok then None
    else if count = 0 then Some { empty with counts }
    else (
      match (flt "min", flt "max") with
      | Some min, Some max -> Some { count; sum; min; max; counts }
      | _ -> None)
  | _ -> None
