(** The fleet's event queue: a binary min-heap keyed on virtual time.

    Events drain in [(time, tie, push order)] order — [tie] breaks
    same-cycle ties deterministically (the fleet uses the connection
    index), and two events with equal [(time, tie)] drain in the order
    they were pushed. That total order is what makes a cell simulation a
    pure function of its inputs: no wall clock, no domain identity, no
    hash order ever enters the schedule. *)

type 'a t

val create : unit -> 'a t

val length : 'a t -> int
val is_empty : 'a t -> bool

val push : 'a t -> time:int -> tie:int -> 'a -> unit
(** Schedules [v] at virtual cycle [time]. O(log n). *)

val pop : 'a t -> (int * int * 'a) option
(** Removes and returns the minimum [(time, tie, value)], [None] when
    empty. O(log n). *)

val peek_time : 'a t -> int option
(** The virtual time of the next event without removing it. *)
