(** JSON codecs for fleet results: the per-shard {!Fleet.stats} (the
    campaign checkpoint payload, so an interrupted fleet run resumes
    bit-identically) and the merged per-scheme table (the CLI's
    [--json] export). *)

val stats_to_json : Fleet.stats -> Pacstack_campaign.Json.t
val stats_of_json : Pacstack_campaign.Json.t -> Fleet.stats option
(** Round-trips {!stats_to_json} exactly. *)

val checkpoint_codec : Fleet.stats Pacstack_campaign.Checkpoint.codec

val table_to_json : Fleet.config -> Fleet.stats list -> Pacstack_campaign.Json.t
(** The [--json] document: the configuration (connections, duration,
    arrival preset, seed, cells, cores) and one row per scheme with
    counts, utilisation, mean and the {!Fleet.quantiles} in both cycles
    and milliseconds. *)
