(** Per-connection state and the per-cell service-cost memo.

    A connection is deliberately tiny — an id, its arrival stream and two
    counters — so a cell can hold thousands. The expensive part of a
    request, running the compiled handshake on the cycle-exact machine,
    is memoized per (scheme, size class): machine execution is
    deterministic, so the cost of a 72-record request under a scheme is
    the same whichever connection issues it, and each cell measures it
    exactly once on a freshly loaded machine (cheap: untouched pages
    share the zero page until written — see lib/machine/memory.ml). The
    arrival mixes keep the distinct size classes near a dozen
    ({!Arrival.size_mix}), so a cell performs ~12 real machine runs and
    then serves millions of simulated requests from the memo. *)

type cost = { cycles : float; mem_ops : float }
(** One request's machine-measured cost under the cell's scheme. *)

(** The per-cell calibration table. Not shared across cells or domains —
    each campaign shard builds its own, keeping shards free of shared
    mutable state as the {!Pacstack_campaign.Plan} contract requires. *)
module Costs : sig
  type t

  val create : scheme:Pacstack_harden.Scheme.t -> t

  val request : t -> records:int -> cost
  (** The scheme's cost for a [records]-sized response, measured on first
      use ({!Pacstack_workloads.Server.Kernel.measure_request}) and
      memoized. *)

  val extra_mem : t -> records:int -> float
  (** Memory operations the scheme adds over the unprotected build of the
      same request — the quantity the contention model charges (never
      negative). Calibrates the unprotected baseline lazily too. *)

  val distinct : t -> int
  (** Size classes calibrated so far (machine runs = [2 * distinct] for
      protected schemes, counting the unprotected baselines). *)
end

type t = {
  id : int;  (** global connection index, the arrival-stream key *)
  gen : Arrival.gen;
  mutable offered : int;
  mutable completed : int;
}

val start : Arrival.t -> seed:int64 -> conn:int -> t
(** Connection [conn] of a fleet seeded with [seed]; its entire behaviour
    derives from those two values ({!Arrival.start}). *)
