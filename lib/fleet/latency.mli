(** Constant-size latency statistics: count/sum/min/max plus a fixed
    log-spaced bucket array over virtual cycles.

    The fleet never retains per-request records — a shard folds every
    completed request into one of these, and shard results merge by
    integer bucket addition (associative, order-fixed by the campaign
    fold), so the merged table is bit-identical at any worker count and
    the memory footprint is independent of how many requests ran. *)

type t = {
  count : int;
  sum : float;
  min : float;  (** [infinity] when empty *)
  max : float;  (** [neg_infinity] when empty *)
  counts : int array;  (** one cell per bucket of {!bounds} *)
}

val bounds : float array
(** The shared bucket edges: geometric from 10^3 to 10^9 cycles
    ({!buckets} buckets, ~11% relative width — the resolution of every
    reported percentile). Samples outside clamp to the edge buckets. *)

val buckets : int

val empty : t

val record : t -> float -> t
(** Folds one latency sample (virtual cycles) in. *)

val merge : t -> t -> t

val mean : t -> float

val percentile : t -> float -> float
(** Weighted percentile over the buckets ({!Pacstack_util.Stats.weighted_percentile}),
    clamped to the exact observed [min]/[max]. Raises [Invalid_argument]
    when empty. *)

val percentiles : t -> float list -> float list

val to_json : t -> Pacstack_campaign.Json.t
val of_json : Pacstack_campaign.Json.t -> t option
(** Round-trips {!to_json} exactly (counts are ints; sum/min/max are
    floats printed losslessly by the campaign codec). *)
