(** Fleet-scale traffic simulation: thousands of open-loop connections
    against a pool of server cores per scheme, in virtual time, with
    per-scheme tail-latency statistics.

    Structure (see DESIGN.md, "Fleet simulation"): the fleet is cut into
    [cells] — independent groups of connections sharing [cores] server
    cores. A campaign shard is one (scheme, cell) pair: it replays its
    connections' arrival streams through an event-driven scheduler
    ({!Scheduler}) and folds every completed request into a
    constant-size {!Latency.t}. Cross-request coupling (queueing,
    memory contention) exists only *inside* a cell, and the cell cut is
    part of the configuration — never the worker count — so an N-worker
    run is bit-identical to the 1-worker run, exactly as for the fuzz
    and injection campaigns.

    Virtual time is integer cycles of the Table 3 clock
    ({!Pacstack_workloads.Server.Kernel.clock_hz}); nothing reads the
    wall clock. *)

type config = {
  connections : int;  (** fleet size, split over cells *)
  duration_s : float;  (** virtual seconds of offered load *)
  arrival : Arrival.t;
  schemes : Pacstack_harden.Scheme.t list;
  seed : int64;
  cells : int;
      (** independent contention domains; fixes the shard cut, so it is
          semantic configuration, not a tuning knob *)
  cores : int;  (** server cores per cell *)
}

val default : config
(** 1000 connections, 4 virtual seconds, the ["poisson"] preset, every
    scheme, seed 7, 8 cells of 4 cores. *)

val validate : config -> unit
(** Raises [Invalid_argument] on non-positive sizes, [cells] exceeding
    [connections], or an empty scheme list. *)

(** Per-(scheme, cell) results; cells of a scheme merge with {!merge}. *)
type stats = {
  scheme : Pacstack_harden.Scheme.t;
  offered : int;  (** requests that arrived before the horizon *)
  completed : int;  (** requests fully served (drain-all: = offered) *)
  queue_peak : int;  (** deepest any run queue got *)
  busy_cycles : float;  (** total core-cycles spent serving *)
  size_classes : int;  (** distinct request sizes calibrated *)
  latency : Latency.t;  (** arrival-to-departure, virtual cycles *)
}

val merge : stats -> stats -> stats
(** Associative; requires equal schemes ([Invalid_argument] otherwise).
    [size_classes] merges by [max] (cells calibrate independently). *)

val utilisation : config -> stats -> float
(** Busy fraction of the scheme's cores over the horizon (can exceed 1
    while draining a backlog). *)

val run_cell : config -> scheme:Pacstack_harden.Scheme.t -> cell:int -> ?key:int -> unit -> stats
(** Simulates one cell: its slice of the connections (contiguous,
    {!Pacstack_campaign.Plan.split_trials}) arriving at [cores] FIFO
    cores. Deterministic given [(config, scheme, cell)]. [key] tags the
    lib/obs trace event for this cell (default: untraced). *)

val plan : config -> stats Pacstack_campaign.Plan.t
(** The campaign: one shard per (scheme, cell) in scheme-major order,
    shard [i] running cell [i mod cells] of scheme [i / cells]. The
    shard generator is unused — every draw derives from
    [(config.seed, connection)] — mirroring the injection campaign. *)

val tabulate : config -> stats Pacstack_campaign.Campaign.outcome -> stats list
(** Merges cells per scheme (campaign fold order), one entry per scheme
    in [config.schemes] order; schemes whose every cell was quarantined
    are dropped. *)

val quantiles : float list
(** The reported ranks: 50, 95, 99, 99.9. *)

val ms_of_cycles : float -> float
(** Latency unit conversion at the Table 3 clock. *)

val pp_table : config -> Format.formatter -> stats list -> unit
(** The per-scheme latency table: offered/completed counts, utilisation,
    mean and {!quantiles} in milliseconds. *)
