module Rng = Pacstack_util.Rng
module Kernel = Pacstack_workloads.Server.Kernel

type process =
  | Poisson of { rate : float }
  | Bursty of { calm_rate : float; burst_rate : float; calm_s : float; burst_s : float }
  | Diurnal of { rate : float; amplitude : float; period_s : float }

type size_mix = Fixed | Jittered | Heavy_tailed

type t = { process : process; sizes : size_mix }

let mean_rate = function
  | Poisson { rate } -> rate
  | Bursty { calm_rate; burst_rate; calm_s; burst_s } ->
    (* time-weighted average over the two exponential sojourns *)
    ((calm_rate *. calm_s) +. (burst_rate *. burst_s)) /. (calm_s +. burst_s)
  | Diurnal { rate; _ } -> rate

let presets =
  [
    ("poisson", { process = Poisson { rate = 2.0 }; sizes = Jittered });
    ( "bursty",
      {
        process = Bursty { calm_rate = 1.0; burst_rate = 12.0; calm_s = 2.0; burst_s = 0.25 };
        sizes = Jittered;
      } );
    ( "diurnal",
      { process = Diurnal { rate = 2.0; amplitude = 0.8; period_s = 4.0 }; sizes = Jittered } );
    ("heavy", { process = Poisson { rate = 2.0 }; sizes = Heavy_tailed });
  ]

let of_string name = List.assoc_opt name presets

let to_string t =
  match List.find_opt (fun (_, preset) -> preset = t) presets with
  | Some (name, _) -> name
  | None -> "custom"

type request = { at_s : float; records : int; service_jitter : float }

(* Burst-state bookkeeping for the MMPP: which state we are in and when
   its exponential sojourn ends. Poisson and Diurnal leave it unused. *)
type burst_state = { mutable in_burst : bool; mutable state_end_s : float }

type gen = {
  cfg : t;
  rng : Rng.t;
  mutable now_s : float;  (** time of the last arrival drawn *)
  mutable exhausted : bool;
  burst : burst_state;
}

let salt = 0x666C_6565_74L (* "fleet" *)

let conn_rng ~seed ~conn =
  Rng.split (Rng.create (Int64.logxor salt (Int64.add seed (Int64.of_int conn))))

let start cfg ~seed ~conn =
  let () =
    match cfg.process with
    | Poisson { rate } -> if rate <= 0.0 then invalid_arg "Arrival.start: rate <= 0"
    | Bursty { calm_rate; burst_rate; calm_s; burst_s } ->
      if calm_rate <= 0.0 || burst_rate <= 0.0 || calm_s <= 0.0 || burst_s <= 0.0 then
        invalid_arg "Arrival.start: bursty parameters must be positive"
    | Diurnal { rate; amplitude; period_s } ->
      if rate <= 0.0 || period_s <= 0.0 || amplitude < 0.0 || amplitude > 1.0 then
        invalid_arg "Arrival.start: bad diurnal parameters"
  in
  {
    cfg;
    rng = conn_rng ~seed ~conn;
    now_s = 0.0;
    exhausted = false;
    burst = { in_burst = false; state_end_s = 0.0 };
  }

(* Exponential gap with mean [1/rate]; 1 - float is in (0, 1] so log is
   finite. *)
let exp_gap rng rate = -.log (1.0 -. Rng.float rng) /. rate

(* One arrival of the MMPP from virtual time [t]: draw a gap at the
   current state's rate; if it lands past the sojourn's end, move to the
   boundary, switch state and redraw — exact by memorylessness. *)
let rec bursty_gap rng burst ~calm_rate ~burst_rate ~calm_s ~burst_s t =
  if t >= burst.state_end_s then begin
    (* entering a fresh sojourn (also the initial state at t = 0) *)
    if burst.state_end_s > 0.0 then burst.in_burst <- not burst.in_burst;
    let mean = if burst.in_burst then burst_s else calm_s in
    burst.state_end_s <- t +. exp_gap rng (1.0 /. mean);
    bursty_gap rng burst ~calm_rate ~burst_rate ~calm_s ~burst_s t
  end
  else
    let rate = if burst.in_burst then burst_rate else calm_rate in
    let t' = t +. exp_gap rng rate in
    if t' <= burst.state_end_s then t'
    else bursty_gap rng burst ~calm_rate ~burst_rate ~calm_s ~burst_s burst.state_end_s

(* Thinning for the time-varying diurnal rate: candidate arrivals at the
   peak rate, each kept with probability rate(t)/peak. *)
let rec diurnal_arrival rng ~rate ~amplitude ~period_s t =
  let peak = rate *. (1.0 +. amplitude) in
  let t' = t +. exp_gap rng peak in
  let rate_at = rate *. (1.0 +. (amplitude *. sin (2.0 *. Float.pi *. t' /. period_s))) in
  if Rng.float rng < rate_at /. peak then t'
  else diurnal_arrival rng ~rate ~amplitude ~period_s t'

let draw_arrival g =
  match g.cfg.process with
  | Poisson { rate } -> g.now_s +. exp_gap g.rng rate
  | Bursty { calm_rate; burst_rate; calm_s; burst_s } ->
    bursty_gap g.rng g.burst ~calm_rate ~burst_rate ~calm_s ~burst_s g.now_s
  | Diurnal { rate; amplitude; period_s } ->
    diurnal_arrival g.rng ~rate ~amplitude ~period_s g.now_s

let draw_records g =
  match g.cfg.sizes with
  | Fixed -> Kernel.base_records
  | Jittered -> Kernel.records ~variant:(Rng.int g.rng 9)
  | Heavy_tailed ->
    (* body: the Table 3 jitter; tail: whole-response multiples, so the
       distinct size classes stay few enough to calibrate each once *)
    let u = Rng.float g.rng in
    if u < 0.90 then Kernel.records ~variant:(Rng.int g.rng 9)
    else if u < 0.97 then 2 * Kernel.base_records
    else if u < 0.995 then 4 * Kernel.base_records
    else 8 * Kernel.base_records

let next g ~until_s =
  if g.exhausted then None
  else begin
    let at_s = draw_arrival g in
    g.now_s <- at_s;
    if at_s >= until_s then begin
      (* draws past the horizon stay past it: arrival times only grow *)
      g.exhausted <- true;
      None
    end
    else
      (* size and jitter are drawn even for requests a caller might
         discard, keeping the stream a function of the draw count only *)
      let records = draw_records g in
      let service_jitter = 1.0 +. (0.05 *. Rng.float g.rng) in
      Some { at_s; records; service_jitter }
  end
