module Scheme = Pacstack_harden.Scheme
module Kernel = Pacstack_workloads.Server.Kernel

type cost = { cycles : float; mem_ops : float }

module Costs = struct
  type t = {
    scheme : Scheme.t;
    table : (int, cost) Hashtbl.t;
    baseline : (int, cost) Hashtbl.t;  (* unprotected, for extra_mem *)
  }

  let create ~scheme = { scheme; table = Hashtbl.create 16; baseline = Hashtbl.create 16 }

  let measure tbl ~scheme ~records =
    match Hashtbl.find_opt tbl records with
    | Some c -> c
    | None ->
      let cycles, mem_ops = Kernel.measure_request ~scheme ~records in
      let c = { cycles; mem_ops } in
      Hashtbl.add tbl records c;
      c

  let request t ~records = measure t.table ~scheme:t.scheme ~records

  let extra_mem t ~records =
    if Scheme.equal t.scheme Scheme.unprotected then 0.0
    else
      let this = request t ~records in
      let base = measure t.baseline ~scheme:Scheme.unprotected ~records in
      Float.max 0.0 (this.mem_ops -. base.mem_ops)

  let distinct t = Hashtbl.length t.table
end

type t = {
  id : int;
  gen : Arrival.gen;
  mutable offered : int;
  mutable completed : int;
}

let start arrival ~seed ~conn =
  { id = conn; gen = Arrival.start arrival ~seed ~conn; offered = 0; completed = 0 }
