module Scheme = Pacstack_harden.Scheme
module Kernel = Pacstack_workloads.Server.Kernel
module Plan = Pacstack_campaign.Plan
module Campaign = Pacstack_campaign.Campaign
module Json = Pacstack_campaign.Json
module Obs = Pacstack_obs.Obs

type config = {
  connections : int;
  duration_s : float;
  arrival : Arrival.t;
  schemes : Scheme.t list;
  seed : int64;
  cells : int;
  cores : int;
}

let default =
  {
    connections = 1000;
    duration_s = 4.0;
    arrival = List.assoc "poisson" Arrival.presets;
    schemes = Scheme.all;
    seed = 7L;
    cells = 8;
    cores = 4;
  }

let validate cfg =
  if cfg.connections <= 0 then invalid_arg "Fleet: connections must be positive";
  if cfg.duration_s <= 0.0 then invalid_arg "Fleet: duration must be positive";
  if cfg.cells <= 0 then invalid_arg "Fleet: cells must be positive";
  if cfg.cores <= 0 then invalid_arg "Fleet: cores must be positive";
  if cfg.cells > cfg.connections then invalid_arg "Fleet: more cells than connections";
  if cfg.schemes = [] then invalid_arg "Fleet: no schemes"

type stats = {
  scheme : Scheme.t;
  offered : int;
  completed : int;
  queue_peak : int;
  busy_cycles : float;
  size_classes : int;
  latency : Latency.t;
}

let merge a b =
  if not (Scheme.equal a.scheme b.scheme) then invalid_arg "Fleet.merge: scheme mismatch";
  {
    scheme = a.scheme;
    offered = a.offered + b.offered;
    completed = a.completed + b.completed;
    queue_peak = max a.queue_peak b.queue_peak;
    busy_cycles = a.busy_cycles +. b.busy_cycles;
    size_classes = max a.size_classes b.size_classes;
    latency = Latency.merge a.latency b.latency;
  }

let cycles_of_s s = int_of_float (Float.round (s *. Kernel.clock_hz))
let ms_of_cycles c = c /. Kernel.clock_hz *. 1e3

(* The contention charge per extra memory operation when [busy] cores of
   the cell are serving at once. Pinned to the Table 3 calibration: one
   busy core pays no contention, a fully contended 8-core chip pays
   [Kernel.contention 8] per extra op, quadratic in between (memory-system
   queueing grows superlinearly with load). *)
let beta ~busy =
  if busy <= 1 then 1.0
  else
    let x = float_of_int (busy - 1) /. 7.0 in
    1.0 +. ((Kernel.contention 8 -. 1.0) *. x *. x)

(* Service demand of one request, in cycles, given how many cores are
   busy (including the serving one): the machine-measured cycles, the
   client-observed jitter, and the contention charge on the memory
   operations the scheme added over the unprotected build. *)
let service_cycles costs ~records ~jitter ~busy =
  let cost : Connection.cost = Connection.Costs.request costs ~records in
  let extra = Connection.Costs.extra_mem costs ~records in
  let c = (cost.cycles *. jitter) +. (beta ~busy *. extra) in
  max 1 (int_of_float (Float.round c))

(* Contiguous connection slice of a cell, reusing the campaign's
   deterministic near-equal partitioner. *)
let cell_slice cfg ~cell =
  let counts = Plan.split_trials ~trials:cfg.connections ~shards:cfg.cells in
  let offset = ref 0 in
  for i = 0 to cell - 1 do
    offset := !offset + counts.(i)
  done;
  (!offset, counts.(cell))

type event =
  | Arrive of { conn : Connection.t; records : int; jitter : float }
  | Depart of { arrived : int }

(* Departures sort before arrivals at the same instant: a freed core must
   be visible to a request arriving in the same cycle. *)
let tie_depart = 0
let tie_arrive = 1

let run_cell cfg ~scheme ~cell ?key () =
  validate cfg;
  if cell < 0 || cell >= cfg.cells then invalid_arg "Fleet.run_cell: cell out of range";
  let costs = Connection.Costs.create ~scheme in
  let heap = Scheduler.create () in
  let offset, count = cell_slice cfg ~cell in
  let push_arrival (conn : Connection.t) =
    match Arrival.next conn.gen ~until_s:cfg.duration_s with
    | None -> ()
    | Some { at_s; records; service_jitter } ->
      Scheduler.push heap ~time:(cycles_of_s at_s) ~tie:tie_arrive
        (Arrive { conn; records; jitter = service_jitter })
  in
  for i = 0 to count - 1 do
    push_arrival (Connection.start cfg.arrival ~seed:cfg.seed ~conn:(offset + i))
  done;
  let busy = ref 0 in
  let queue : (int * int * float) Queue.t = Queue.create () in
  let offered = ref 0 in
  let completed = ref 0 in
  let queue_peak = ref 0 in
  let busy_cycles = ref 0.0 in
  let latency = ref Latency.empty in
  let start_service ~now ~arrived ~records ~jitter =
    incr busy;
    let svc = service_cycles costs ~records ~jitter ~busy:!busy in
    busy_cycles := !busy_cycles +. float_of_int svc;
    Scheduler.push heap ~time:(now + svc) ~tie:tie_depart (Depart { arrived })
  in
  let rec drain () =
    match Scheduler.pop heap with
    | None -> ()
    | Some (now, _tie, Arrive { conn; records; jitter }) ->
      incr offered;
      conn.offered <- conn.offered + 1;
      push_arrival conn;
      if !busy < cfg.cores then start_service ~now ~arrived:now ~records ~jitter
      else begin
        Queue.push (now, records, jitter) queue;
        queue_peak := max !queue_peak (Queue.length queue)
      end;
      drain ()
    | Some (now, _tie, Depart { arrived }) ->
      incr completed;
      latency := Latency.record !latency (float_of_int (now - arrived));
      decr busy;
      (match Queue.take_opt queue with
      | Some (arrived, records, jitter) -> start_service ~now ~arrived ~records ~jitter
      | None -> ());
      drain ()
  in
  drain ();
  let stats =
    {
      scheme;
      offered = !offered;
      completed = !completed;
      queue_peak = !queue_peak;
      busy_cycles = !busy_cycles;
      size_classes = Connection.Costs.distinct costs;
      latency = !latency;
    }
  in
  if Obs.enabled () then begin
    Obs.Metrics.incr "fleet.requests" ~by:stats.offered;
    Obs.Metrics.incr "fleet.calibrations" ~by:stats.size_classes;
    match key with
    | None -> ()
    | Some key ->
      Obs.Trace.emit ~key "fleet.cell"
        [
          ("scheme", Json.String (Scheme.to_string scheme));
          ("cell", Json.Int cell);
          ("offered", Json.Int stats.offered);
          ("completed", Json.Int stats.completed);
          ("queue_peak", Json.Int stats.queue_peak);
          ("size_classes", Json.Int stats.size_classes);
        ]
  end;
  stats

let plan cfg =
  validate cfg;
  let schemes = Array.of_list cfg.schemes in
  let counts = Plan.split_trials ~trials:cfg.connections ~shards:cfg.cells in
  let shards =
    Array.init
      (Array.length schemes * cfg.cells)
      (fun i ->
        let scheme = schemes.(i / cfg.cells) and cell = i mod cfg.cells in
        (Printf.sprintf "%s/cell%d" (Scheme.to_string scheme) cell, counts.(cell)))
  in
  Plan.make ~name:"fleet" ~seed:cfg.seed ~shards ~run:(fun shard _rng ->
      let scheme = schemes.(shard.index / cfg.cells) and cell = shard.index mod cfg.cells in
      run_cell cfg ~scheme ~cell ~key:shard.index ())

let tabulate cfg outcome =
  let merged : (Scheme.t * stats) list ref = ref [] in
  let () =
    Campaign.fold outcome ~init:() ~f:(fun () stats ->
        match List.assoc_opt stats.scheme !merged with
        | Some acc ->
          merged :=
            List.map
              (fun (s, v) -> if Scheme.equal s stats.scheme then (s, merge acc stats) else (s, v))
              !merged
        | None -> merged := !merged @ [ (stats.scheme, stats) ])
  in
  List.filter_map (fun scheme -> List.assoc_opt scheme !merged) cfg.schemes

let utilisation cfg stats =
  stats.busy_cycles /. (float_of_int (cfg.cells * cfg.cores) *. float_of_int (cycles_of_s cfg.duration_s))

let quantiles = [ 50.0; 95.0; 99.0; 99.9 ]

let pp_table cfg fmt rows =
  Format.fprintf fmt "%-20s %9s %9s %6s %9s %9s %9s %9s %9s@." "scheme" "offered" "done"
    "util%" "mean_ms" "p50_ms" "p95_ms" "p99_ms" "p999_ms";
  List.iter
    (fun row ->
      if row.latency.Latency.count = 0 then
        Format.fprintf fmt "%-20s %9d %9d %6s %9s %9s %9s %9s %9s@." (Scheme.to_string row.scheme)
          row.offered row.completed "-" "-" "-" "-" "-" "-"
      else begin
        let q = Latency.percentiles row.latency quantiles in
        Format.fprintf fmt "%-20s %9d %9d %6.1f %9.3f" (Scheme.to_string row.scheme) row.offered
          row.completed
          (100.0 *. utilisation cfg row)
          (ms_of_cycles (Latency.mean row.latency));
        List.iter (fun v -> Format.fprintf fmt " %9.3f" (ms_of_cycles v)) q;
        Format.fprintf fmt "@."
      end)
    rows
