module Word64 = Pacstack_util.Word64
module Prf = Pacstack_qarma.Prf

type result = Valid of Pointer.t | Invalid of Pointer.t

let[@inline] compute cfg prf ~address ~modifier =
  Prf.mac prf ~bits:(cfg : Config.t).pac_bits ~data:(Pointer.address cfg address) ~modifier

let[@inline] add cfg prf p ~modifier =
  let stripped = Pointer.address cfg p in
  let pac = compute cfg prf ~address:stripped ~modifier in
  (* A pointer whose upper bits are not canonical is signed as if they
     were, but with PAC bit 0 flipped to record the corruption. *)
  let pac = if Pointer.is_canonical cfg p then pac else Word64.flip_bit pac 0 in
  Pointer.with_pac_field cfg stripped pac

let[@inline] auth cfg prf p ~modifier =
  let stripped = Pointer.address cfg p in
  let expected = compute cfg prf ~address:stripped ~modifier in
  let embedded = Pointer.pac_field cfg p in
  (* The error flag itself lives above the PAC field, so a previously
     failed pointer never re-validates. *)
  if Word64.equal expected embedded && not (Pointer.has_error cfg p) then Valid stripped
  else Invalid (Pointer.set_error cfg p)

(* Allocation-free [auth] for the execution hot paths: the valid/invalid
   distinction is already encoded in the returned pointer (error bit), so
   the [result] box adds nothing the caller needs. *)
let[@inline] auth_value cfg prf p ~modifier =
  let stripped = Pointer.address cfg p in
  let expected = compute cfg prf ~address:stripped ~modifier in
  let embedded = Pointer.pac_field cfg p in
  if Word64.equal expected embedded && not (Pointer.has_error cfg p) then stripped
  else Pointer.set_error cfg p

let strip = Pointer.address

let[@inline] generic _cfg prf v ~modifier =
  let mac = Prf.mac prf ~bits:32 ~data:v ~modifier in
  Int64.shift_left mac 32
