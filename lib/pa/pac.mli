(** Architectural semantics of the pointer-authentication instructions.

    These functions are pure; the machine simulator calls them when
    executing [pacia]/[autia]/[xpaci]/[pacga] and the hardening passes'
    emitted code relies on exactly these behaviours:

    - {!compute} is the tweakable MAC over the stripped address.
    - {!add} embeds a PAC. If the input pointer's upper bits are already
      non-canonical, the PAC is computed for the {e stripped} address and
      then a well-known PAC bit is flipped — the behaviour that gives rise
      to the Google Project Zero signing gadget analysed in §6.3.1.
    - {!auth} verifies; on failure it strips the PAC and sets the
      well-known error bit so that any later translation faults. No fault
      is raised at [aut] time, exactly as in ARMv8.3-A (§2.2). *)

type result = Valid of Pointer.t | Invalid of Pointer.t
(** [Valid p]: authentication succeeded, [p] is the stripped address.
    [Invalid p]: failed, [p] carries the error bit. *)

val compute :
  Config.t -> Pacstack_qarma.Prf.t ->
  address:Pointer.t -> modifier:Pacstack_util.Word64.t -> Pacstack_util.Word64.t
(** The [pac_bits]-wide PAC for a (stripped) address under a modifier. *)

val add :
  Config.t -> Pacstack_qarma.Prf.t ->
  Pointer.t -> modifier:Pacstack_util.Word64.t -> Pointer.t
(** [pacia]-style signing, including the flipped-PAC-bit behaviour on
    non-canonical input. *)

val auth :
  Config.t -> Pacstack_qarma.Prf.t ->
  Pointer.t -> modifier:Pacstack_util.Word64.t -> result
(** [autia]-style verification. *)

val auth_value :
  Config.t -> Pacstack_qarma.Prf.t ->
  Pointer.t -> modifier:Pacstack_util.Word64.t -> Pointer.t
(** {!auth} without the [result] box, for the execution hot paths: the
    stripped address on success, the error-bit-tagged pointer on
    failure (any later translation of it faults, so no information is
    lost). *)

val strip : Config.t -> Pointer.t -> Pointer.t
(** [xpac]: remove the PAC without verification. *)

val generic :
  Config.t -> Pacstack_qarma.Prf.t ->
  Pacstack_util.Word64.t -> modifier:Pacstack_util.Word64.t -> Pacstack_util.Word64.t
(** [pacga]: a 32-bit MAC over an arbitrary 64-bit value, returned in the
    upper half of the result (lower half zero). Used by the Appendix B
    sigreturn defence. *)
