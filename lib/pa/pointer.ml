module Word64 = Pacstack_util.Word64

type t = Word64.t

let[@inline] address (cfg : Config.t) p = Word64.extract p ~lo:0 ~width:cfg.va_size

(* Equivalent to [extract ~lo:va_size ~width:(64 - va_size) = 0L] but
   branch-free: this runs once per simulated instruction and once per
   memory access (va_size ≤ 52, so the shift count is always valid). *)
let[@inline] is_canonical (cfg : Config.t) p =
  Int64.equal (Int64.shift_right_logical p cfg.va_size) 0L

let[@inline] pac_field (cfg : Config.t) p =
  Word64.extract p ~lo:(Config.pac_lo cfg) ~width:cfg.pac_bits

let[@inline] with_pac_field (cfg : Config.t) p v =
  Word64.insert p ~lo:(Config.pac_lo cfg) ~width:cfg.pac_bits v

let[@inline] set_error cfg p = Word64.set_bit (address cfg p) (Config.error_bit cfg) true
let[@inline] has_error cfg p = Word64.bit p (Config.error_bit cfg)

let auth_split cfg p = (pac_field cfg p, address cfg p)

let pp = Word64.pp
