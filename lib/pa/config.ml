type t = { va_size : int; pac_bits : int }

let make ?(va_size = 39) ?pac_bits () =
  if va_size < 16 || va_size > 52 then invalid_arg "Pa.Config.make: va_size";
  let max_bits = 55 - va_size in
  let pac_bits = Option.value pac_bits ~default:max_bits in
  if pac_bits < 1 || pac_bits > max_bits then invalid_arg "Pa.Config.make: pac_bits";
  { va_size; pac_bits }

let default = make ()
let with_pac_bits t bits = make ~va_size:t.va_size ~pac_bits:bits ()
let[@inline] pac_lo t = t.va_size
let[@inline] error_bit _ = 63
let pp fmt t = Format.fprintf fmt "va_size=%d pac_bits=%d" t.va_size t.pac_bits
