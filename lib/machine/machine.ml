module Word64 = Pacstack_util.Word64
module Rng = Pacstack_util.Rng
module Config = Pacstack_pa.Config
module Keys = Pacstack_pa.Keys
module Pac = Pacstack_pa.Pac
module Pointer = Pacstack_pa.Pointer
module Reg = Pacstack_isa.Reg
module Cond = Pacstack_isa.Cond
module Instr = Pacstack_isa.Instr
module Obs = Pacstack_obs.Obs

(* Register file layout: X0..X30, SP and PC as raw little-endian int64
   slots in one Bytes buffer. Raw slots keep the hot loop free of both
   the write barrier and the per-store Int64 box that an [int64 array]
   or a mutable int64 record field pays on every write — a register
   write is a bounds-checked raw store, and int64 temporaries stay
   unboxed inside each operation. *)
let sp_slot = 31 * 8
let pc_slot = 32 * 8
let regs_bytes = 33 * 8

type t = {
  cfg : Config.t;
  mem : Memory.t;
  image : Image.t;
  mutable keys : Keys.t;
  regs : Bytes.t;  (* X0..X30, SP, PC — see the layout note above *)
  mutable flags_bits : int;  (* packed NZCV, Cond.bits_* layout *)
  mutable halted : int option;
  mutable cycles : int;
  mutable instret : int;
  mutable mem_ops : int;
  mutable forward_cfi : bool;
  mutable tracer : (t -> Pacstack_isa.Instr.t -> unit) option;
  hooks : (string, t -> unit) Hashtbl.t;
  mutable on_syscall : t -> int -> unit;
  mutable out : int64 list;  (* newest first *)
  (* Observability (lib/obs). Aggregates accumulate in plain fields and
     are flushed as metric deltas once per [run]/[run_until] exit, so
     the per-step cost with obs disabled is one guarded branch on the
     (rare) PA instructions and nothing anywhere else. [obs_label] is a
     pre-rendered "{scheme=...}" suffix or "". *)
  mutable obs_label : string;
  obs_pac : int array;  (* per-kind PA-instruction counts, see obs_pac_names *)
  mutable obs_mark_instret : int;
  mutable obs_mark_memops : int;
  mutable obs_mark_dmiss : int;
  mutable obs_mark_xmiss : int;
  (* Threaded-code engine (DESIGN.md, "Threaded-code execution"): one
     pre-compiled closure per instruction, indexed by (pc-code_base)/4,
     plus a page-granular cached execute check over the code region.
     Each op returns the index of the next op (resolved at compile time
     for straight-line code and static branches) or -1 when the
     dispatcher must re-derive it from pc — so the hot loop chains
     compiled ops directly instead of re-validating pc every step.
     [fast_ok] certifies at load time that every in-image address is
     canonical for [cfg], so the fast path may skip [translate]. *)
  ops : (t -> int) array;
  code_limit : Word64.t;  (* 4 * instruction count *)
  fast_ok : bool;
  xpages : Bytes.t;       (* '\001' per executable code page *)
  mutable xcache_gen : int;
}

let get t = function
  | Reg.X n -> Bytes.get_int64_le t.regs (n lsl 3)
  | Reg.SP -> Bytes.get_int64_le t.regs sp_slot
  | Reg.XZR -> 0L

let set t r v =
  match r with
  | Reg.X n -> Bytes.set_int64_le t.regs (n lsl 3) v
  | Reg.SP -> Bytes.set_int64_le t.regs sp_slot v
  | Reg.XZR -> ()

let pc t = Bytes.get_int64_le t.regs pc_slot
let set_pc t v = Bytes.set_int64_le t.regs pc_slot v
let sp t = Bytes.get_int64_le t.regs sp_slot
let lr t = Bytes.get_int64_le t.regs (30 lsl 3)
let set_lr t v = Bytes.set_int64_le t.regs (30 lsl 3) v

let canary_symbol = "__stack_chk_guard"

(* Bare machines (no kernel) still support exit and debug print. *)
let default_syscall m n =
  match n with
  | 0 -> m.halted <- Some (Int64.to_int (get m (Reg.X 0)))
  | 1 -> m.out <- get m (Reg.X 0) :: m.out
  | n -> raise (Trap.Fault (Trap.Undefined (Printf.sprintf "svc #%d with no kernel" n)))

let config t = t.cfg
let keys t = t.keys
let set_keys t k = t.keys <- k
let memory t = t.mem
let image t = t.image

let flags t = Cond.flags_of_bits t.flags_bits
let set_flags t f = t.flags_bits <- Cond.bits_of_flags f
let cycles t = t.cycles
let instructions_retired t = t.instret
let memory_operations t = t.mem_ops
let halted t = t.halted
let set_halted t code = t.halted <- Some code

let forward_cfi t = t.forward_cfi
let set_forward_cfi t v = t.forward_cfi <- v
let set_tracer t f = t.tracer <- f

let attach_hook t name f = Hashtbl.replace t.hooks name f
let detach_hook t name = Hashtbl.remove t.hooks name
let set_syscall_handler t f = t.on_syscall <- f
let output t = List.rev t.out
let push_output t v = t.out <- v :: t.out

(* --- address translation checks ------------------------------------- *)

let translate t addr access =
  if not (Pointer.is_canonical t.cfg addr) then raise (Trap.Fault (Trap.Translation (addr, access)))

let load64 t addr =
  translate t addr Trap.Read;
  Memory.load64 t.mem addr

let store64 t addr v =
  translate t addr Trap.Write;
  Memory.store64 t.mem addr v

let load8 t addr =
  translate t addr Trap.Read;
  Memory.load8 t.mem addr

let store8 t addr v =
  translate t addr Trap.Write;
  Memory.store8 t.mem addr v

(* --- operand helpers -------------------------------------------------- *)

let operand t = function Instr.Reg r -> get t r | Instr.Imm i -> i

(* Effective address of a memory operand, applying pre/post indexing to
   the base register. *)
let effective t ({ base; offset; index } : Instr.mem) =
  let baseval = get t base in
  let off = Int64.of_int offset in
  match index with
  | Instr.Offset -> Int64.add baseval off
  | Instr.Pre ->
    let a = Int64.add baseval off in
    set t base a;
    a
  | Instr.Post ->
    set t base (Int64.add baseval off);
    baseval

let resolve t label =
  match Image.resolve t.image ~from:(pc t) label with
  | Some a -> a
  | None -> raise (Trap.Fault (Trap.Undefined ("unresolved label " ^ label)))

let ia t = Keys.get t.keys Keys.IA
let ga t = Keys.get t.keys Keys.GA

(* --- instruction semantics (reference) -------------------------------- *)

(* The fetch-then-match semantics the threaded engine is compiled from.
   [Reference.step] still dispatches through here; the differential suite
   in test_engine.ml pins the two engines against each other. *)
let exec t instr =
  let next = Int64.add (pc t) 4L in
  let goto a = set_pc t a in
  let fallthrough () = goto next in
  let binop rd rn op f =
    set t rd (f (get t rn) (operand t op));
    fallthrough ()
  in
  match instr with
  | Instr.Add (rd, rn, op) -> binop rd rn op Int64.add
  | Instr.Sub (rd, rn, op) -> binop rd rn op Int64.sub
  | Instr.Mul (rd, rn, rm) ->
    set t rd (Int64.mul (get t rn) (get t rm));
    fallthrough ()
  | Instr.Udiv (rd, rn, rm) ->
    let d = get t rm in
    set t rd (if d = 0L then 0L else Int64.unsigned_div (get t rn) d);
    fallthrough ()
  | Instr.And_ (rd, rn, op) -> binop rd rn op Int64.logand
  | Instr.Orr (rd, rn, op) -> binop rd rn op Int64.logor
  | Instr.Eor (rd, rn, op) -> binop rd rn op Int64.logxor
  | Instr.Lsl_ (rd, rn, op) ->
    binop rd rn op (fun a b -> Int64.shift_left a (Int64.to_int b land 63))
  | Instr.Lsr_ (rd, rn, op) ->
    binop rd rn op (fun a b -> Int64.shift_right_logical a (Int64.to_int b land 63))
  | Instr.Mov (rd, op) ->
    set t rd (operand t op);
    fallthrough ()
  | Instr.Cmp (rn, op) ->
    t.flags_bits <- Cond.bits_of_compare (get t rn) (operand t op);
    fallthrough ()
  | Instr.Adr (rd, l) ->
    set t rd (resolve t l);
    fallthrough ()
  | Instr.Ldr (rt, m) ->
    set t rt (load64 t (effective t m));
    fallthrough ()
  | Instr.Str (rt, m) ->
    store64 t (effective t m) (get t rt);
    fallthrough ()
  | Instr.Ldrb (rt, m) ->
    set t rt (Int64.of_int (load8 t (effective t m)));
    fallthrough ()
  | Instr.Strb (rt, m) ->
    store8 t (effective t m) (Int64.to_int (Int64.logand (get t rt) 0xffL));
    fallthrough ()
  | Instr.Ldp (r1, r2, m) ->
    let a = effective t m in
    set t r1 (load64 t a);
    set t r2 (load64 t (Int64.add a 8L));
    fallthrough ()
  | Instr.Stp (r1, r2, m) ->
    let a = effective t m in
    store64 t a (get t r1);
    store64 t (Int64.add a 8L) (get t r2);
    fallthrough ()
  | Instr.B l -> goto (resolve t l)
  | Instr.Bcond (c, l) -> if Cond.holds_bits c t.flags_bits then goto (resolve t l) else fallthrough ()
  | Instr.Cbz (r, l) -> if get t r = 0L then goto (resolve t l) else fallthrough ()
  | Instr.Cbnz (r, l) -> if get t r <> 0L then goto (resolve t l) else fallthrough ()
  | Instr.Bl l ->
    set t Reg.lr next;
    goto (resolve t l)
  | Instr.Blr r ->
    let target = get t r in
    (* assumption A2: indirect calls must land on a function entry *)
    if t.forward_cfi && not (Image.is_function_entry t.image target) then
      raise (Trap.Fault (Trap.Cfi_violation target));
    set t Reg.lr next;
    goto target
  | Instr.Br r -> goto (get t r)
  | Instr.Ret r -> goto (get t r)
  | Instr.Retaa ->
    let lr = Pac.auth_value t.cfg (ia t) (get t Reg.lr) ~modifier:(sp t) in
    set t Reg.lr lr;
    goto lr
  | Instr.Pacia (rd, rn) ->
    set t rd (Pac.add t.cfg (ia t) (get t rd) ~modifier:(get t rn));
    fallthrough ()
  | Instr.Autia (rd, rn) ->
    set t rd (Pac.auth_value t.cfg (ia t) (get t rd) ~modifier:(get t rn));
    fallthrough ()
  | Instr.Paciasp ->
    set t Reg.lr (Pac.add t.cfg (ia t) (get t Reg.lr) ~modifier:(sp t));
    fallthrough ()
  | Instr.Autiasp ->
    set t Reg.lr (Pac.auth_value t.cfg (ia t) (get t Reg.lr) ~modifier:(sp t));
    fallthrough ()
  | Instr.Xpaci r ->
    set t r (Pac.strip t.cfg (get t r));
    fallthrough ()
  | Instr.Pacga (rd, rn, rm) ->
    set t rd (Pac.generic t.cfg (ga t) (get t rn) ~modifier:(get t rm));
    fallthrough ()
  | Instr.Svc n ->
    (* PC already points past the svc when the handler runs, as if the
       exception return address had been saved. *)
    fallthrough ();
    t.on_syscall t n
  | Instr.Nop -> fallthrough ()
  | Instr.Hlt ->
    t.halted <- Some (Int64.to_int (get t (Reg.X 0)));
    fallthrough ()
  | Instr.Hook name -> (
    fallthrough ();
    match Hashtbl.find_opt t.hooks name with
    | Some f -> f t
    | None -> ())

(* --- observability ---------------------------------------------------- *)

let set_obs_label t scheme =
  t.obs_label <- (if scheme = "" then "" else "{scheme=" ^ scheme ^ "}")

let obs_pac_names =
  [| "pacia"; "autia"; "paciasp"; "autiasp"; "retaa"; "pacga"; "xpaci";
     "chain.pac"; "chain.aut" |]

(* Only reached behind an [Obs.enabled] guard, and only on PA
   instructions; [chain.*] are the ACS link operations — pacia/autia
   with the chain register CR as modifier. *)
let obs_pac_cell = function
  | Instr.Pacia (_, rn) -> if rn = Reg.cr then 7 else 0
  | Instr.Autia (_, rn) -> if rn = Reg.cr then 8 else 1
  | Instr.Paciasp -> 2
  | Instr.Autiasp -> 3
  | Instr.Retaa -> 4
  | Instr.Pacga _ -> 5
  | Instr.Xpaci _ -> 6
  | _ -> -1

let obs_record_pac t instr =
  let cell = obs_pac_cell instr in
  if cell >= 0 then t.obs_pac.(cell) <- t.obs_pac.(cell) + 1

let obs_publish t trap =
  let label = t.obs_label in
  let c name by = if by > 0 then Obs.Metrics.incr ~by (name ^ label) in
  let dm, xm = Memory.tlb_misses t.mem in
  let instret_d = t.instret - t.obs_mark_instret in
  let memops_d = t.mem_ops - t.obs_mark_memops in
  let dmiss_d = dm - t.obs_mark_dmiss in
  let xmiss_d = xm - t.obs_mark_xmiss in
  c "machine.instructions" instret_d;
  c "machine.tlb.data_miss" dmiss_d;
  c "machine.tlb.data_hit" (max 0 (memops_d - dmiss_d));
  c "machine.tlb.exec_miss" xmiss_d;
  c "machine.tlb.exec_hit" (max 0 (instret_d - xmiss_d));
  Array.iteri
    (fun i n ->
      if n > 0 then begin
        c ("machine.pac." ^ obs_pac_names.(i)) n;
        t.obs_pac.(i) <- 0
      end)
    t.obs_pac;
  (match trap with
  | Some f -> Obs.Metrics.incr ("machine.trap." ^ Trap.kind f ^ label)
  | None -> ());
  t.obs_mark_instret <- t.instret;
  t.obs_mark_memops <- t.mem_ops;
  t.obs_mark_dmiss <- dm;
  t.obs_mark_xmiss <- xm

(* --- reference step --------------------------------------------------- *)

(* One unchecked step through the fetch-then-match path. The public
   [Reference.step] adds the halted guard; [drive] checks halted itself. *)
let exec_reference t =
  translate t (pc t) Trap.Execute;
  Memory.check_exec t.mem (pc t);
  let instr = Image.fetch_exn t.image (pc t) in
  t.cycles <- t.cycles + Instr.cycles instr;
  t.instret <- t.instret + 1;
  (match instr with
  | Instr.Ldr _ | Instr.Str _ | Instr.Ldrb _ | Instr.Strb _ -> t.mem_ops <- t.mem_ops + 1
  | Instr.Ldp _ | Instr.Stp _ -> t.mem_ops <- t.mem_ops + 2
  | Instr.Pacia _ | Instr.Autia _ | Instr.Paciasp | Instr.Autiasp
  | Instr.Retaa | Instr.Pacga _ | Instr.Xpaci _ ->
    if Obs.enabled () then obs_record_pac t instr
  | _ -> ());
  (match t.tracer with Some f -> f t instr | None -> ());
  exec t instr

(* --- threaded-code compilation ---------------------------------------- *)

(* Each instruction compiles to one closure doing exactly what one
   reference step does after fetch: bump the counters, record obs, call
   the tracer, execute. Everything derivable from the instruction alone
   — cycle cost, mem_ops delta, obs cell, branch targets, the operand
   shape — is resolved here, once per image, instead of per step.

   Fidelity rules (the differential suite enforces them):
   - counters and obs/tracer fire before semantics, as in the reference;
   - side effects ordered as in [exec]: Bl writes LR before an
     unresolved-label raise, Adr resolves before writing, pre/post
     indexing commits before a load/store trap;
   - a label a conditional branch never takes is allowed to stay
     unresolved, exactly like the lazy [resolve] in the reference. *)

let op_pre t cyc instr =
  t.cycles <- t.cycles + cyc;
  t.instret <- t.instret + 1;
  match t.tracer with Some f -> f t instr | None -> ()

let op_pre_mem t cyc memops instr =
  t.cycles <- t.cycles + cyc;
  t.instret <- t.instret + 1;
  t.mem_ops <- t.mem_ops + memops;
  match t.tracer with Some f -> f t instr | None -> ()

let op_pre_pac t cyc cell instr =
  t.cycles <- t.cycles + cyc;
  t.instret <- t.instret + 1;
  if Obs.enabled () then t.obs_pac.(cell) <- t.obs_pac.(cell) + 1;
  match t.tracer with Some f -> f t instr | None -> ()

let unresolved label = Trap.Fault (Trap.Undefined ("unresolved label " ^ label))

(* Next-op index for a pc value produced at run time (ret/br/blr/retaa).
   -1 means "outside the ops array / misaligned": the dispatch loop then
   resynchronises from the architectural pc through the full checks.
   Only called with [t.fast_ok] (the loop never enters compiled ops
   otherwise), so an in-image result needs no canonicality check. *)
let live_index t v =
  let off = Int64.sub v Image.code_base in
  if Int64.logand off 3L = 0L && off >= 0L && off < t.code_limit then
    Int64.to_int off lsr 2
  else -1

let compile_op image nops idx instr : t -> int =
  let addr = Int64.add Image.code_base (Int64.of_int (4 * idx)) in
  let next = Int64.add addr 4L in
  let cyc = Instr.cycles instr in
  (* Index of the op for a compile-time-known target address. *)
  let static_index a =
    let off = Int64.sub a Image.code_base in
    if Int64.logand off 3L = 0L && off >= 0L && off < Int64.of_int (4 * nops)
    then Int64.to_int off lsr 2
    else -1
  in
  let nexti = if idx + 1 < nops then idx + 1 else -1 in
  (* Static view of what [resolve] would do with pc = addr; the error
     case is a preallocated exception raised only if execution actually
     needs the label. *)
  let target label =
    match Image.resolve image ~from:addr label with
    | Some a -> Ok a
    | None -> Error (unresolved label)
  in
  let binop rd rn op f =
    match op with
    | Instr.Reg rm ->
      fun t ->
        op_pre t cyc instr;
        set t rd (f (get t rn) (get t rm));
        set_pc t next;
        nexti
    | Instr.Imm i ->
      fun t ->
        op_pre t cyc instr;
        set t rd (f (get t rn) i);
        set_pc t next;
        nexti
  in
  (* Conditional branches evaluate the label lazily in the reference, so
     a dangling label only traps when the branch is taken. *)
  let cond_branch test l =
    match target l with
    | Ok a ->
      let ti = static_index a in
      fun t ->
        op_pre t cyc instr;
        if test t then (set_pc t a; ti) else (set_pc t next; nexti)
    | Error e ->
      fun t ->
        op_pre t cyc instr;
        if test t then raise e else (set_pc t next; nexti)
  in
  match instr with
  | Instr.Add (rd, rn, op) -> (
    match op with
    | Instr.Reg rm ->
      fun t ->
        op_pre t cyc instr;
        set t rd (Int64.add (get t rn) (get t rm));
        set_pc t next;
        nexti
    | Instr.Imm i ->
      fun t ->
        op_pre t cyc instr;
        set t rd (Int64.add (get t rn) i);
        set_pc t next;
        nexti)
  | Instr.Sub (rd, rn, op) -> (
    match op with
    | Instr.Reg rm ->
      fun t ->
        op_pre t cyc instr;
        set t rd (Int64.sub (get t rn) (get t rm));
        set_pc t next;
        nexti
    | Instr.Imm i ->
      fun t ->
        op_pre t cyc instr;
        set t rd (Int64.sub (get t rn) i);
        set_pc t next;
        nexti)
  | Instr.Mul (rd, rn, rm) ->
    fun t ->
      op_pre t cyc instr;
      set t rd (Int64.mul (get t rn) (get t rm));
      set_pc t next;
      nexti
  | Instr.Udiv (rd, rn, rm) ->
    fun t ->
      op_pre t cyc instr;
      let d = get t rm in
      set t rd (if d = 0L then 0L else Int64.unsigned_div (get t rn) d);
      set_pc t next;
      nexti
  | Instr.And_ (rd, rn, op) -> binop rd rn op Int64.logand
  | Instr.Orr (rd, rn, op) -> binop rd rn op Int64.logor
  | Instr.Eor (rd, rn, op) -> (
    match op with
    | Instr.Reg rm ->
      fun t ->
        op_pre t cyc instr;
        set t rd (Int64.logxor (get t rn) (get t rm));
        set_pc t next;
        nexti
    | Instr.Imm i ->
      fun t ->
        op_pre t cyc instr;
        set t rd (Int64.logxor (get t rn) i);
        set_pc t next;
        nexti)
  | Instr.Lsl_ (rd, rn, op) -> (
    match op with
    | Instr.Imm i ->
      let sh = Int64.to_int i land 63 in
      fun t ->
        op_pre t cyc instr;
        set t rd (Int64.shift_left (get t rn) sh);
        set_pc t next;
        nexti
    | Instr.Reg _ ->
      binop rd rn op (fun a b -> Int64.shift_left a (Int64.to_int b land 63)))
  | Instr.Lsr_ (rd, rn, op) -> (
    match op with
    | Instr.Imm i ->
      let sh = Int64.to_int i land 63 in
      fun t ->
        op_pre t cyc instr;
        set t rd (Int64.shift_right_logical (get t rn) sh);
        set_pc t next;
        nexti
    | Instr.Reg _ ->
      binop rd rn op (fun a b -> Int64.shift_right_logical a (Int64.to_int b land 63)))
  | Instr.Mov (rd, op) -> (
    match op with
    | Instr.Reg rm ->
      fun t -> op_pre t cyc instr; set t rd (get t rm); set_pc t next; nexti
    | Instr.Imm i -> fun t -> op_pre t cyc instr; set t rd i; set_pc t next; nexti)
  | Instr.Cmp (rn, op) -> (
    match op with
    | Instr.Reg rm ->
      fun t ->
        op_pre t cyc instr;
        t.flags_bits <- Cond.bits_of_compare (get t rn) (get t rm);
        set_pc t next;
        nexti
    | Instr.Imm i ->
      fun t ->
        op_pre t cyc instr;
        t.flags_bits <- Cond.bits_of_compare (get t rn) i;
        set_pc t next;
        nexti)
  | Instr.Adr (rd, l) -> (
    match target l with
    | Ok a -> fun t -> op_pre t cyc instr; set t rd a; set_pc t next; nexti
    | Error e -> fun t -> op_pre t cyc instr; raise e)
  | Instr.Ldr (rt, m) ->
    fun t ->
      op_pre_mem t cyc 1 instr;
      set t rt (load64 t (effective t m));
      set_pc t next;
      nexti
  | Instr.Str (rt, m) ->
    fun t ->
      op_pre_mem t cyc 1 instr;
      store64 t (effective t m) (get t rt);
      set_pc t next;
      nexti
  | Instr.Ldrb (rt, m) ->
    fun t ->
      op_pre_mem t cyc 1 instr;
      set t rt (Int64.of_int (load8 t (effective t m)));
      set_pc t next;
      nexti
  | Instr.Strb (rt, m) ->
    fun t ->
      op_pre_mem t cyc 1 instr;
      store8 t (effective t m) (Int64.to_int (Int64.logand (get t rt) 0xffL));
      set_pc t next;
      nexti
  | Instr.Ldp (r1, r2, m) ->
    fun t ->
      op_pre_mem t cyc 2 instr;
      let a = effective t m in
      set t r1 (load64 t a);
      set t r2 (load64 t (Int64.add a 8L));
      set_pc t next;
      nexti
  | Instr.Stp (r1, r2, m) ->
    fun t ->
      op_pre_mem t cyc 2 instr;
      let a = effective t m in
      store64 t a (get t r1);
      store64 t (Int64.add a 8L) (get t r2);
      set_pc t next;
      nexti
  | Instr.B l -> (
    match target l with
    | Ok a ->
      let ti = static_index a in
      fun t -> op_pre t cyc instr; set_pc t a; ti
    | Error e -> fun t -> op_pre t cyc instr; raise e)
  | Instr.Bcond (c, l) -> cond_branch (fun t -> Cond.holds_bits c t.flags_bits) l
  | Instr.Cbz (r, l) -> cond_branch (fun t -> get t r = 0L) l
  | Instr.Cbnz (r, l) -> cond_branch (fun t -> get t r <> 0L) l
  | Instr.Bl l -> (
    match target l with
    | Ok a ->
      let ti = static_index a in
      fun t ->
        op_pre t cyc instr;
        set_lr t next;
        set_pc t a;
        ti
    | Error e ->
      (* LR is written before [resolve] raises in the reference. *)
      fun t ->
        op_pre t cyc instr;
        set_lr t next;
        raise e)
  | Instr.Blr r ->
    fun t ->
      op_pre t cyc instr;
      let target = get t r in
      if t.forward_cfi && not (Image.is_function_entry image target) then
        raise (Trap.Fault (Trap.Cfi_violation target));
      set_lr t next;
      set_pc t target;
      live_index t target
  | Instr.Br r ->
    fun t ->
      op_pre t cyc instr;
      let v = get t r in
      set_pc t v;
      live_index t v
  | Instr.Ret r ->
    fun t ->
      op_pre t cyc instr;
      let v = get t r in
      set_pc t v;
      live_index t v
  | Instr.Retaa ->
    fun t ->
      op_pre_pac t cyc 4 instr;
      let lr = Pac.auth_value t.cfg (ia t) (lr t) ~modifier:(sp t) in
      set_lr t lr;
      set_pc t lr;
      live_index t lr
  | Instr.Pacia (rd, rn) ->
    let cell = if rn = Reg.cr then 7 else 0 in
    fun t ->
      op_pre_pac t cyc cell instr;
      set t rd (Pac.add t.cfg (ia t) (get t rd) ~modifier:(get t rn));
      set_pc t next;
      nexti
  | Instr.Autia (rd, rn) ->
    let cell = if rn = Reg.cr then 8 else 1 in
    fun t ->
      op_pre_pac t cyc cell instr;
      set t rd (Pac.auth_value t.cfg (ia t) (get t rd) ~modifier:(get t rn));
      set_pc t next;
      nexti
  | Instr.Paciasp ->
    fun t ->
      op_pre_pac t cyc 2 instr;
      set_lr t (Pac.add t.cfg (ia t) (lr t) ~modifier:(sp t));
      set_pc t next;
      nexti
  | Instr.Autiasp ->
    fun t ->
      op_pre_pac t cyc 3 instr;
      set_lr t (Pac.auth_value t.cfg (ia t) (lr t) ~modifier:(sp t));
      set_pc t next;
      nexti
  | Instr.Xpaci r ->
    fun t ->
      op_pre_pac t cyc 6 instr;
      set t r (Pac.strip t.cfg (get t r));
      set_pc t next;
      nexti
  | Instr.Pacga (rd, rn, rm) ->
    fun t ->
      op_pre_pac t cyc 5 instr;
      set t rd (Pac.generic t.cfg (ga t) (get t rn) ~modifier:(get t rm));
      set_pc t next;
      nexti
  (* The remaining ops return -1 unconditionally: a syscall handler or
     hook may halt the machine, remap memory or move pc, and Hlt halts —
     the dispatch loop must re-run its full boundary checks after them. *)
  | Instr.Svc n ->
    fun t ->
      op_pre t cyc instr;
      set_pc t next;
      t.on_syscall t n;
      -1
  | Instr.Nop -> fun t -> op_pre t cyc instr; set_pc t next; nexti
  | Instr.Hlt ->
    fun t ->
      op_pre t cyc instr;
      t.halted <- Some (Int64.to_int (get t (Reg.X 0)));
      set_pc t next;
      -1
  | Instr.Hook name ->
    fun t ->
      op_pre t cyc instr;
      set_pc t next;
      (match Hashtbl.find_opt t.hooks name with
      | Some f -> f t
      | None -> ());
      -1

(* The compiled ops array lives on the image (compiled once, shared by
   every machine and clone running that image). *)
type Image.cache += Compiled_ops of (t -> int) array

let ops_of_image image =
  match Image.cache image with
  | Some (Compiled_ops ops) -> ops
  | _ ->
    let code = Image.instructions image in
    let ops = Array.mapi (compile_op image (Array.length code)) code in
    Image.set_cache image (Compiled_ops ops);
    ops

(* --- threaded step ---------------------------------------------------- *)

(* [xcache_gen] sentinel: [Memory.generation] restarts at 0 after a
   [Memory.copy], so 0 is a reachable value and the sentinel must be one
   no live memory ever reports. *)
let stale_gen = min_int

let refill_exec_cache t =
  for i = 0 to Bytes.length t.xpages - 1 do
    let addr = Int64.add Image.code_base (Int64.of_int (i lsl Memory.page_bits)) in
    let ok =
      match Memory.perm_at t.mem addr with
      | Some p -> p.Memory.executable
      | None -> false
    in
    Bytes.unsafe_set t.xpages i (if ok then '\001' else '\000')
  done;
  t.xcache_gen <- Memory.generation t.mem

(* One unchecked threaded step (the single-step [step] path). The fast
   path replaces the reference's translate + check_exec + fetch with
   three compares and two unsafe reads; every condition it cannot prove
   (PC outside the image or misaligned, page not executable, [fast_ok]
   false because the config's VA size does not cover the image) falls
   back to [exec_reference], so all traps are produced by exactly the
   reference code. *)
let exec_threaded t =
  let off = Int64.sub (Bytes.get_int64_le t.regs pc_slot) Image.code_base in
  if t.fast_ok && Int64.logand off 3L = 0L && off >= 0L && off < t.code_limit
  then begin
    if t.xcache_gen <> Memory.generation t.mem then refill_exec_cache t;
    let offi = Int64.to_int off in
    if Bytes.unsafe_get t.xpages (offi lsr Memory.page_bits) = '\001' then
      ignore ((Array.unsafe_get t.ops (offi lsr 2)) t : int)
    else exec_reference t
  end
  else exec_reference t

let step t = match t.halted with Some _ -> () | None -> exec_threaded t

type outcome = Halted of int | Faulted of Trap.t | Out_of_fuel

(* Why a run paused, as reported by a runner to [drive]. A runner
   performs the boundary checks — halted, then stop, then fuel, the
   reference order — exactly once per instruction boundary (stop
   predicates count their calls, e.g. "pause at the k-th visit", so a
   double check would change trigger timing). *)
type pause = Paused_halt of int | Paused_stop | Paused_fuel

let never _ = false

let runner_reference t ~stop ~fuel =
  let rec boundary budget =
    match t.halted with
    | Some code -> Paused_halt code
    | None ->
      if stop t then Paused_stop
      else if budget = 0 then Paused_fuel
      else begin
        exec_reference t;
        boundary (budget - 1)
      end
  in
  boundary fuel

(* ops are indexed per instruction word, xpages per page. *)
let xpage_shift = Memory.page_bits - 2

(* The threaded hot loop: compiled ops return the index of the next op,
   so straight-line runs and static branches chain compiled closures
   with no pc re-validation — per step only the stop/fuel boundary
   checks and one cached execute-permission byte remain. [fast]'s
   invariants: ops that can halt, remap memory or leave the image
   (hlt/svc/hook, and any branch whose target is not provably an op
   index) return -1, which drops to [boundary]/[dispatch] for the full
   protocol and pc re-derivation; hence no halted or generation check
   inside the loop. *)
let runner_threaded t ~stop ~fuel =
  let ops = t.ops in
  let xpages = t.xpages in
  (* [run] passes the top-level [never]: recognising it by identity lets
     the hot loop replace an indirect call per step with one branch. *)
  let can_stop = stop != never in
  let rec boundary budget =
    match t.halted with
    | Some code -> Paused_halt code
    | None ->
      if stop t then Paused_stop
      else if budget = 0 then Paused_fuel
      else dispatch budget
  and dispatch budget =
    (* boundary checks for pc already done; budget ≥ 1 *)
    let off = Int64.sub (Bytes.get_int64_le t.regs pc_slot) Image.code_base in
    if t.fast_ok && Int64.logand off 3L = 0L && off >= 0L && off < t.code_limit
    then begin
      if t.xcache_gen <> Memory.generation t.mem then refill_exec_cache t;
      let idx = Int64.to_int off lsr 2 in
      if Bytes.unsafe_get xpages (idx lsr xpage_shift) = '\001' then fast budget idx
      else begin
        exec_reference t;
        boundary (budget - 1)
      end
    end
    else begin
      exec_reference t;
      boundary (budget - 1)
    end
  and fast budget idx =
    let nxt = (Array.unsafe_get ops idx) t in
    let budget = budget - 1 in
    if nxt >= 0 then
      if can_stop && stop t then Paused_stop
      else if budget = 0 then Paused_fuel
      else if Bytes.unsafe_get xpages (nxt lsr xpage_shift) = '\001' then
        fast budget nxt
      else dispatch budget
    else boundary budget
  in
  boundary fuel

(* One driver owns the pause/fault-to-outcome protocol and the obs
   flush, shared by [run]/[run_until] on both engines so they cannot
   drift; the per-instruction boundary checks live in the runners. The
   fault handler is installed once around the whole loop, not per step. *)
let drive ~runner ~stop ~fuel t =
  let outcome =
    try
      match runner t ~stop ~fuel with
      | Paused_halt code -> Some (Halted code)
      | Paused_stop -> None
      | Paused_fuel -> Some Out_of_fuel
    with Trap.Fault f -> Some (Faulted f)
  in
  (match outcome with
  | None -> ()
    (* paused at a trigger point: the counters flush when the caller
       finishes the run *)
  | Some oc ->
    if Obs.enabled () then
      obs_publish t (match oc with Faulted f -> Some f | Halted _ | Out_of_fuel -> None));
  outcome

let run_with runner ?(fuel = 10_000_000) t =
  match drive ~runner ~stop:never ~fuel t with
  | Some oc -> oc
  | None -> invalid_arg "Machine.run: [never] stopped the loop"

let run_until_with runner ?(fuel = 10_000_000) t ~stop = drive ~runner ~stop ~fuel t

let run ?fuel t = run_with runner_threaded ?fuel t
let run_until ?fuel t ~stop = run_until_with runner_threaded ?fuel t ~stop

module Reference = struct
  let step t = match t.halted with Some _ -> () | None -> exec_reference t
  let run ?fuel t = run_with runner_reference ?fuel t
  let run_until ?fuel t ~stop = run_until_with runner_reference ?fuel t ~stop
end

(* --- construction ----------------------------------------------------- *)

let load ?(cfg = Config.default) ?keys ?rng program =
  let rng = match rng with Some r -> r | None -> Rng.create 0x9ac57ac4L in
  let keys = match keys with Some k -> k | None -> Keys.generate ~fast:true rng in
  let image = Image.build program in
  let mem = Memory.create () in
  let code_bytes = max Memory.page_size (Image.code_size image) in
  (* write the binary encoding into the code pages, then seal them rx: the
     code bytes an adversary can disclose are real, and W^X is enforced
     from the first fetch *)
  Memory.map mem ~addr:Image.code_base ~size:code_bytes Memory.perm_rw;
  let words, _pools = Image.encoded image in
  Array.iteri
    (fun i w ->
      Memory.store32 mem (Int64.add Image.code_base (Int64.of_int (4 * i))) w)
    words;
  Memory.protect mem ~addr:Image.code_base ~size:code_bytes Memory.perm_rx;
  (* one rw data region covering all objects (the image appends the canary
     guard object when the program does not declare one) *)
  let data_bytes =
    List.fold_left
      (fun acc (d : Pacstack_isa.Program.data) -> acc + ((d.size + 15) land lnot 15))
      16 (Image.program image).data
  in
  Memory.map mem ~addr:Image.data_base ~size:(max Memory.page_size data_bytes) Memory.perm_rw;
  Memory.map mem
    ~addr:(Int64.sub Image.stack_top (Int64.of_int Image.stack_size))
    ~size:Image.stack_size Memory.perm_rw;
  Memory.map mem ~addr:Image.shadow_base ~size:Image.shadow_size Memory.perm_rw;
  let code_limit = Int64.of_int (4 * Array.length (Image.instructions image)) in
  (* [Pointer.is_canonical] is monotone (p >> va_size = 0), so the last
     in-image address being canonical certifies the whole range; an empty
     image never takes the fast path, the flag is then irrelevant. *)
  let fast_ok =
    code_limit > 0L
    && Pointer.is_canonical cfg (Int64.add Image.code_base (Int64.sub code_limit 1L))
  in
  let xpage_count =
    max 1 ((Int64.to_int code_limit + Memory.page_size - 1) / Memory.page_size)
  in
  let t =
    {
      cfg;
      mem;
      image;
      keys;
      regs = Bytes.make regs_bytes '\000';
      flags_bits = 0;
      halted = None;
      cycles = 0;
      instret = 0;
      mem_ops = 0;
      forward_cfi = true;
      tracer = None;
      hooks = Hashtbl.create 4;
      on_syscall = default_syscall;
      out = [];
      obs_label = "";
      obs_pac = Array.make 9 0;
      obs_mark_instret = 0;
      obs_mark_memops = 0;
      obs_mark_dmiss = 0;
      obs_mark_xmiss = 0;
      ops = ops_of_image image;
      code_limit;
      fast_ok;
      xpages = Bytes.make xpage_count '\000';
      xcache_gen = stale_gen;
    }
  in
  (match Image.symbol image canary_symbol with
  | Some a -> Memory.store64 mem a (Rng.next64 rng)
  | None -> ());
  set t Reg.SP Image.stack_top;
  set_pc t (Image.entry image);
  set t Reg.lr (Image.halt_addr image);
  set t Reg.shadow Image.shadow_base;
  t

let clone t =
  {
    t with
    mem = Memory.copy t.mem;
    regs = Bytes.copy t.regs;
    hooks = t.hooks;
    out = t.out;
    obs_pac = Array.copy t.obs_pac;
    (* Memory.copy restarts its TLB miss counters at zero. *)
    obs_mark_dmiss = 0;
    obs_mark_xmiss = 0;
    (* ... and its generation counter: force a refill on the first step
       of the clone rather than trusting a stale-by-construction cache. *)
    xpages = Bytes.copy t.xpages;
    xcache_gen = stale_gen;
  }

let pp_state fmt t =
  Format.fprintf fmt "pc=%a sp=%a lr=%a cr=%a x0=%a cycles=%d" Word64.pp (pc t) Word64.pp
    (sp t) Word64.pp (get t Reg.lr) Word64.pp (get t Reg.cr) Word64.pp (get t (Reg.X 0))
    t.cycles

(* --- contexts -------------------------------------------------------- *)

type context = {
  c_xregs : Word64.t array;
  c_sp : Word64.t;
  c_pc : Word64.t;
  c_flags : Cond.flags;
}

let save_context t =
  {
    c_xregs = Array.init 31 (fun i -> Bytes.get_int64_le t.regs (i lsl 3));
    c_sp = sp t;
    c_pc = pc t;
    c_flags = Cond.flags_of_bits t.flags_bits;
  }

let restore_context t c =
  for i = 0 to 30 do
    Bytes.set_int64_le t.regs (i lsl 3) c.c_xregs.(i)
  done;
  set t Reg.SP c.c_sp;
  set_pc t c.c_pc;
  t.flags_bits <- Cond.bits_of_flags c.c_flags

let context_pc c = c.c_pc

let context_get c = function
  | Reg.X n -> c.c_xregs.(n)
  | Reg.SP -> c.c_sp
  | Reg.XZR -> 0L

let flags_word (f : Cond.flags) =
  let b v i = if v then Int64.shift_left 1L i else 0L in
  Int64.logor (b f.n 3) (Int64.logor (b f.z 2) (Int64.logor (b f.c 1) (b f.v 0)))

let flags_of_word w =
  let b i = Word64.bit w i in
  { Cond.n = b 3; z = b 2; c = b 1; v = b 0 }

let context_words c =
  Array.concat [ c.c_xregs; [| c.c_sp; c.c_pc; flags_word c.c_flags |] ]

let context_of_words w =
  if Array.length w <> 34 then invalid_arg "Machine.context_of_words";
  {
    c_xregs = Array.sub w 0 31;
    c_sp = w.(31);
    c_pc = w.(32);
    c_flags = flags_of_word w.(33);
  }
