module Word64 = Pacstack_util.Word64
module Rng = Pacstack_util.Rng
module Config = Pacstack_pa.Config
module Keys = Pacstack_pa.Keys
module Pac = Pacstack_pa.Pac
module Pointer = Pacstack_pa.Pointer
module Reg = Pacstack_isa.Reg
module Cond = Pacstack_isa.Cond
module Instr = Pacstack_isa.Instr
module Obs = Pacstack_obs.Obs

type t = {
  cfg : Config.t;
  mem : Memory.t;
  image : Image.t;
  mutable keys : Keys.t;
  xregs : Word64.t array;  (* X0 .. X30 *)
  mutable sp : Word64.t;
  mutable pc : Word64.t;
  mutable flags : Cond.flags;
  mutable halted : int option;
  mutable cycles : int;
  mutable instret : int;
  mutable mem_ops : int;
  mutable forward_cfi : bool;
  mutable tracer : (t -> Pacstack_isa.Instr.t -> unit) option;
  hooks : (string, t -> unit) Hashtbl.t;
  mutable on_syscall : t -> int -> unit;
  mutable out : int64 list;  (* newest first *)
  (* Observability (lib/obs). Aggregates accumulate in plain fields and
     are flushed as metric deltas once per [run]/[run_until] exit, so
     the per-step cost with obs disabled is one guarded branch on the
     (rare) PA instructions and nothing anywhere else. [obs_label] is a
     pre-rendered "{scheme=...}" suffix or "". *)
  mutable obs_label : string;
  obs_pac : int array;  (* per-kind PA-instruction counts, see obs_pac_names *)
  mutable obs_mark_instret : int;
  mutable obs_mark_memops : int;
  mutable obs_mark_dmiss : int;
  mutable obs_mark_xmiss : int;
}

let canary_symbol = "__stack_chk_guard"

(* Bare machines (no kernel) still support exit and debug print. *)
let default_syscall m n =
  match n with
  | 0 -> m.halted <- Some (Int64.to_int m.xregs.(0))
  | 1 -> m.out <- m.xregs.(0) :: m.out
  | n -> raise (Trap.Fault (Trap.Undefined (Printf.sprintf "svc #%d with no kernel" n)))

let config t = t.cfg
let keys t = t.keys
let set_keys t k = t.keys <- k
let memory t = t.mem
let image t = t.image

let get t = function
  | Reg.X n -> t.xregs.(n)
  | Reg.SP -> t.sp
  | Reg.XZR -> 0L

let set t r v =
  match r with
  | Reg.X n -> t.xregs.(n) <- v
  | Reg.SP -> t.sp <- v
  | Reg.XZR -> ()

let pc t = t.pc
let set_pc t v = t.pc <- v
let flags t = t.flags
let set_flags t f = t.flags <- f
let cycles t = t.cycles
let instructions_retired t = t.instret
let memory_operations t = t.mem_ops
let halted t = t.halted
let set_halted t code = t.halted <- Some code

let forward_cfi t = t.forward_cfi
let set_forward_cfi t v = t.forward_cfi <- v
let set_tracer t f = t.tracer <- f

let attach_hook t name f = Hashtbl.replace t.hooks name f
let detach_hook t name = Hashtbl.remove t.hooks name
let set_syscall_handler t f = t.on_syscall <- f
let output t = List.rev t.out
let push_output t v = t.out <- v :: t.out

let load ?(cfg = Config.default) ?keys ?rng program =
  let rng = match rng with Some r -> r | None -> Rng.create 0x9ac57ac4L in
  let keys = match keys with Some k -> k | None -> Keys.generate ~fast:true rng in
  let image = Image.build program in
  let mem = Memory.create () in
  let code_bytes = max Memory.page_size (Image.code_size image) in
  (* write the binary encoding into the code pages, then seal them rx: the
     code bytes an adversary can disclose are real, and W^X is enforced
     from the first fetch *)
  Memory.map mem ~addr:Image.code_base ~size:code_bytes Memory.perm_rw;
  let words, _pools = Image.encoded image in
  Array.iteri
    (fun i w ->
      Memory.store32 mem (Int64.add Image.code_base (Int64.of_int (4 * i))) w)
    words;
  Memory.protect mem ~addr:Image.code_base ~size:code_bytes Memory.perm_rx;
  (* one rw data region covering all objects (the image appends the canary
     guard object when the program does not declare one) *)
  let data_bytes =
    List.fold_left
      (fun acc (d : Pacstack_isa.Program.data) -> acc + ((d.size + 15) land lnot 15))
      16 (Image.program image).data
  in
  Memory.map mem ~addr:Image.data_base ~size:(max Memory.page_size data_bytes) Memory.perm_rw;
  Memory.map mem
    ~addr:(Int64.sub Image.stack_top (Int64.of_int Image.stack_size))
    ~size:Image.stack_size Memory.perm_rw;
  Memory.map mem ~addr:Image.shadow_base ~size:Image.shadow_size Memory.perm_rw;
  let t =
    {
      cfg;
      mem;
      image;
      keys;
      xregs = Array.make 31 0L;
      sp = Image.stack_top;
      pc = Image.entry image;
      flags = Cond.flags_zero;
      halted = None;
      cycles = 0;
      instret = 0;
      mem_ops = 0;
      forward_cfi = true;
      tracer = None;
      hooks = Hashtbl.create 4;
      on_syscall = default_syscall;
      out = [];
      obs_label = "";
      obs_pac = Array.make 9 0;
      obs_mark_instret = 0;
      obs_mark_memops = 0;
      obs_mark_dmiss = 0;
      obs_mark_xmiss = 0;
    }
  in
  (match Image.symbol image canary_symbol with
  | Some a -> Memory.store64 mem a (Rng.next64 rng)
  | None -> ());
  set t Reg.lr (Image.halt_addr image);
  set t Reg.shadow Image.shadow_base;
  t

let clone t =
  {
    t with
    mem = Memory.copy t.mem;
    xregs = Array.copy t.xregs;
    hooks = t.hooks;
    out = t.out;
    obs_pac = Array.copy t.obs_pac;
    (* Memory.copy restarts its TLB miss counters at zero. *)
    obs_mark_dmiss = 0;
    obs_mark_xmiss = 0;
  }

(* --- address translation checks ------------------------------------- *)

let translate t addr access =
  if not (Pointer.is_canonical t.cfg addr) then raise (Trap.Fault (Trap.Translation (addr, access)))

let load64 t addr =
  translate t addr Trap.Read;
  Memory.load64 t.mem addr

let store64 t addr v =
  translate t addr Trap.Write;
  Memory.store64 t.mem addr v

let load8 t addr =
  translate t addr Trap.Read;
  Memory.load8 t.mem addr

let store8 t addr v =
  translate t addr Trap.Write;
  Memory.store8 t.mem addr v

(* --- operand helpers -------------------------------------------------- *)

let operand t = function Instr.Reg r -> get t r | Instr.Imm i -> i

(* Effective address of a memory operand, applying pre/post indexing to
   the base register. *)
let effective t ({ base; offset; index } : Instr.mem) =
  let baseval = get t base in
  let off = Int64.of_int offset in
  match index with
  | Instr.Offset -> Int64.add baseval off
  | Instr.Pre ->
    let a = Int64.add baseval off in
    set t base a;
    a
  | Instr.Post ->
    set t base (Int64.add baseval off);
    baseval

let resolve t label =
  match Image.resolve t.image ~from:t.pc label with
  | Some a -> a
  | None -> raise (Trap.Fault (Trap.Undefined ("unresolved label " ^ label)))

let ia t = Keys.get t.keys Keys.IA
let ga t = Keys.get t.keys Keys.GA

let auth_result = function Pac.Valid p -> p | Pac.Invalid p -> p

(* --- instruction semantics ------------------------------------------- *)

let exec t instr =
  let next = Int64.add t.pc 4L in
  let goto a = t.pc <- a in
  let fallthrough () = goto next in
  let binop rd rn op f =
    set t rd (f (get t rn) (operand t op));
    fallthrough ()
  in
  match instr with
  | Instr.Add (rd, rn, op) -> binop rd rn op Int64.add
  | Instr.Sub (rd, rn, op) -> binop rd rn op Int64.sub
  | Instr.Mul (rd, rn, rm) ->
    set t rd (Int64.mul (get t rn) (get t rm));
    fallthrough ()
  | Instr.Udiv (rd, rn, rm) ->
    let d = get t rm in
    set t rd (if d = 0L then 0L else Int64.unsigned_div (get t rn) d);
    fallthrough ()
  | Instr.And_ (rd, rn, op) -> binop rd rn op Int64.logand
  | Instr.Orr (rd, rn, op) -> binop rd rn op Int64.logor
  | Instr.Eor (rd, rn, op) -> binop rd rn op Int64.logxor
  | Instr.Lsl_ (rd, rn, op) ->
    binop rd rn op (fun a b -> Int64.shift_left a (Int64.to_int b land 63))
  | Instr.Lsr_ (rd, rn, op) ->
    binop rd rn op (fun a b -> Int64.shift_right_logical a (Int64.to_int b land 63))
  | Instr.Mov (rd, op) ->
    set t rd (operand t op);
    fallthrough ()
  | Instr.Cmp (rn, op) ->
    t.flags <- Cond.of_compare (get t rn) (operand t op);
    fallthrough ()
  | Instr.Adr (rd, l) ->
    set t rd (resolve t l);
    fallthrough ()
  | Instr.Ldr (rt, m) ->
    set t rt (load64 t (effective t m));
    fallthrough ()
  | Instr.Str (rt, m) ->
    store64 t (effective t m) (get t rt);
    fallthrough ()
  | Instr.Ldrb (rt, m) ->
    set t rt (Int64.of_int (load8 t (effective t m)));
    fallthrough ()
  | Instr.Strb (rt, m) ->
    store8 t (effective t m) (Int64.to_int (Int64.logand (get t rt) 0xffL));
    fallthrough ()
  | Instr.Ldp (r1, r2, m) ->
    let a = effective t m in
    set t r1 (load64 t a);
    set t r2 (load64 t (Int64.add a 8L));
    fallthrough ()
  | Instr.Stp (r1, r2, m) ->
    let a = effective t m in
    store64 t a (get t r1);
    store64 t (Int64.add a 8L) (get t r2);
    fallthrough ()
  | Instr.B l -> goto (resolve t l)
  | Instr.Bcond (c, l) -> if Cond.holds c t.flags then goto (resolve t l) else fallthrough ()
  | Instr.Cbz (r, l) -> if get t r = 0L then goto (resolve t l) else fallthrough ()
  | Instr.Cbnz (r, l) -> if get t r <> 0L then goto (resolve t l) else fallthrough ()
  | Instr.Bl l ->
    set t Reg.lr next;
    goto (resolve t l)
  | Instr.Blr r ->
    let target = get t r in
    (* assumption A2: indirect calls must land on a function entry *)
    if t.forward_cfi && not (Image.is_function_entry t.image target) then
      raise (Trap.Fault (Trap.Cfi_violation target));
    set t Reg.lr next;
    goto target
  | Instr.Br r -> goto (get t r)
  | Instr.Ret r -> goto (get t r)
  | Instr.Retaa ->
    let lr = auth_result (Pac.auth t.cfg (ia t) (get t Reg.lr) ~modifier:t.sp) in
    set t Reg.lr lr;
    goto lr
  | Instr.Pacia (rd, rn) ->
    set t rd (Pac.add t.cfg (ia t) (get t rd) ~modifier:(get t rn));
    fallthrough ()
  | Instr.Autia (rd, rn) ->
    set t rd (auth_result (Pac.auth t.cfg (ia t) (get t rd) ~modifier:(get t rn)));
    fallthrough ()
  | Instr.Paciasp ->
    set t Reg.lr (Pac.add t.cfg (ia t) (get t Reg.lr) ~modifier:t.sp);
    fallthrough ()
  | Instr.Autiasp ->
    set t Reg.lr (auth_result (Pac.auth t.cfg (ia t) (get t Reg.lr) ~modifier:t.sp));
    fallthrough ()
  | Instr.Xpaci r ->
    set t r (Pac.strip t.cfg (get t r));
    fallthrough ()
  | Instr.Pacga (rd, rn, rm) ->
    set t rd (Pac.generic t.cfg (ga t) (get t rn) ~modifier:(get t rm));
    fallthrough ()
  | Instr.Svc n ->
    (* PC already points past the svc when the handler runs, as if the
       exception return address had been saved. *)
    fallthrough ();
    t.on_syscall t n
  | Instr.Nop -> fallthrough ()
  | Instr.Hlt ->
    t.halted <- Some (Int64.to_int t.xregs.(0));
    fallthrough ()
  | Instr.Hook name -> (
    fallthrough ();
    match Hashtbl.find_opt t.hooks name with
    | Some f -> f t
    | None -> ())

(* --- observability ---------------------------------------------------- *)

let set_obs_label t scheme =
  t.obs_label <- (if scheme = "" then "" else "{scheme=" ^ scheme ^ "}")

let obs_pac_names =
  [| "pacia"; "autia"; "paciasp"; "autiasp"; "retaa"; "pacga"; "xpaci";
     "chain.pac"; "chain.aut" |]

(* Only reached behind an [Obs.enabled] guard, and only on PA
   instructions; [chain.*] are the ACS link operations — pacia/autia
   with the chain register CR as modifier. *)
let obs_record_pac t instr =
  let cell =
    match instr with
    | Instr.Pacia (_, rn) -> if rn = Reg.cr then 7 else 0
    | Instr.Autia (_, rn) -> if rn = Reg.cr then 8 else 1
    | Instr.Paciasp -> 2
    | Instr.Autiasp -> 3
    | Instr.Retaa -> 4
    | Instr.Pacga _ -> 5
    | Instr.Xpaci _ -> 6
    | _ -> -1
  in
  if cell >= 0 then t.obs_pac.(cell) <- t.obs_pac.(cell) + 1

let obs_publish t trap =
  let label = t.obs_label in
  let c name by = if by > 0 then Obs.Metrics.incr ~by (name ^ label) in
  let dm, xm = Memory.tlb_misses t.mem in
  let instret_d = t.instret - t.obs_mark_instret in
  let memops_d = t.mem_ops - t.obs_mark_memops in
  let dmiss_d = dm - t.obs_mark_dmiss in
  let xmiss_d = xm - t.obs_mark_xmiss in
  c "machine.instructions" instret_d;
  c "machine.tlb.data_miss" dmiss_d;
  c "machine.tlb.data_hit" (max 0 (memops_d - dmiss_d));
  c "machine.tlb.exec_miss" xmiss_d;
  c "machine.tlb.exec_hit" (max 0 (instret_d - xmiss_d));
  Array.iteri
    (fun i n ->
      if n > 0 then begin
        c ("machine.pac." ^ obs_pac_names.(i)) n;
        t.obs_pac.(i) <- 0
      end)
    t.obs_pac;
  (match trap with
  | Some f -> Obs.Metrics.incr ("machine.trap." ^ Trap.kind f ^ label)
  | None -> ());
  t.obs_mark_instret <- t.instret;
  t.obs_mark_memops <- t.mem_ops;
  t.obs_mark_dmiss <- dm;
  t.obs_mark_xmiss <- xm

let step t =
  match t.halted with
  | Some _ -> ()
  | None ->
    translate t t.pc Trap.Execute;
    Memory.check_exec t.mem t.pc;
    let instr = Image.fetch_exn t.image t.pc in
    t.cycles <- t.cycles + Instr.cycles instr;
    t.instret <- t.instret + 1;
    (match instr with
    | Instr.Ldr _ | Instr.Str _ | Instr.Ldrb _ | Instr.Strb _ -> t.mem_ops <- t.mem_ops + 1
    | Instr.Ldp _ | Instr.Stp _ -> t.mem_ops <- t.mem_ops + 2
    | Instr.Pacia _ | Instr.Autia _ | Instr.Paciasp | Instr.Autiasp
    | Instr.Retaa | Instr.Pacga _ | Instr.Xpaci _ ->
      if Obs.enabled () then obs_record_pac t instr
    | _ -> ());
    (match t.tracer with Some f -> f t instr | None -> ());
    exec t instr

type outcome = Halted of int | Faulted of Trap.t | Out_of_fuel

(* The fault handler is installed once around the whole loop, not per
   step, so the hot path is just halt-check / fuel-check / step. *)
let run ?(fuel = 10_000_000) t =
  let rec go budget =
    match t.halted with
    | Some code -> Halted code
    | None ->
      if budget = 0 then Out_of_fuel
      else begin
        step t;
        go (budget - 1)
      end
  in
  let outcome = try go fuel with Trap.Fault f -> Faulted f in
  if Obs.enabled () then
    obs_publish t (match outcome with Faulted f -> Some f | Halted _ | Out_of_fuel -> None);
  outcome

(* Like [run], but stops short when [stop] becomes true — the stepping
   primitive fault-injection uses to reach a trigger point mid-run
   without re-implementing the halt/fault/fuel protocol. *)
let run_until ?(fuel = 10_000_000) t ~stop =
  let rec go budget =
    match t.halted with
    | Some code -> Some (Halted code)
    | None ->
      if stop t then None
      else if budget = 0 then Some Out_of_fuel
      else begin
        step t;
        go (budget - 1)
      end
  in
  let outcome = try go fuel with Trap.Fault f -> Some (Faulted f) in
  (match outcome with
  | Some oc when Obs.enabled () ->
    (* [None] means paused at a trigger point: the counters flush when
       the caller finishes the run. *)
    obs_publish t (match oc with Faulted f -> Some f | Halted _ | Out_of_fuel -> None)
  | _ -> ());
  outcome

let pp_state fmt t =
  Format.fprintf fmt "pc=%a sp=%a lr=%a cr=%a x0=%a cycles=%d" Word64.pp t.pc Word64.pp t.sp
    Word64.pp (get t Reg.lr) Word64.pp (get t Reg.cr) Word64.pp t.xregs.(0) t.cycles

(* --- contexts -------------------------------------------------------- *)

type context = {
  c_xregs : Word64.t array;
  c_sp : Word64.t;
  c_pc : Word64.t;
  c_flags : Cond.flags;
}

let save_context t =
  { c_xregs = Array.copy t.xregs; c_sp = t.sp; c_pc = t.pc; c_flags = t.flags }

let restore_context t c =
  Array.blit c.c_xregs 0 t.xregs 0 31;
  t.sp <- c.c_sp;
  t.pc <- c.c_pc;
  t.flags <- c.c_flags

let context_pc c = c.c_pc

let context_get c = function
  | Reg.X n -> c.c_xregs.(n)
  | Reg.SP -> c.c_sp
  | Reg.XZR -> 0L

let flags_word (f : Cond.flags) =
  let b v i = if v then Int64.shift_left 1L i else 0L in
  Int64.logor (b f.n 3) (Int64.logor (b f.z 2) (Int64.logor (b f.c 1) (b f.v 0)))

let flags_of_word w =
  let b i = Word64.bit w i in
  { Cond.n = b 3; z = b 2; c = b 1; v = b 0 }

let context_words c =
  Array.concat [ c.c_xregs; [| c.c_sp; c.c_pc; flags_word c.c_flags |] ]

let context_of_words w =
  if Array.length w <> 34 then invalid_arg "Machine.context_of_words";
  {
    c_xregs = Array.sub w 0 31;
    c_sp = w.(31);
    c_pc = w.(32);
    c_flags = flags_of_word w.(33);
  }
