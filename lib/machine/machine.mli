(** The simulated user-visible machine: register file, memory, loaded
    image, PA keys and the instruction-step semantics.

    One [Machine.t] is one hardware thread running one program. The kernel
    personality ({!Kernel}) layers processes, threads and signals on top. *)

type t

(** {1 Construction} *)

val load :
  ?cfg:Pacstack_pa.Config.t ->
  ?keys:Pacstack_pa.Keys.t ->
  ?rng:Pacstack_util.Rng.t ->
  Pacstack_isa.Program.t -> t
(** Builds the image, maps code (rx), data (rw), stack (rw) and the shadow
    stack region (rw), seeds the stack-canary global, points SP at the
    stack top, X18 at the shadow stack base, LR at [__halt], and PC at the
    entry symbol. [keys] defaults to a fresh set drawn from [rng]
    (defaulting to a fixed-seed generator). *)

val clone : t -> t
(** Deep copy: memory, registers and keys (used by [fork]). Hooks and the
    syscall handler are shared. *)

(** {1 State access} *)

val config : t -> Pacstack_pa.Config.t
val keys : t -> Pacstack_pa.Keys.t
val set_keys : t -> Pacstack_pa.Keys.t -> unit
val memory : t -> Memory.t
val image : t -> Image.t

val get : t -> Pacstack_isa.Reg.t -> Pacstack_util.Word64.t
(** Reads a register; [XZR] reads as zero. *)

val set : t -> Pacstack_isa.Reg.t -> Pacstack_util.Word64.t -> unit
(** Writes a register; writes to [XZR] are discarded. *)

val pc : t -> Pacstack_util.Word64.t
val set_pc : t -> Pacstack_util.Word64.t -> unit
val flags : t -> Pacstack_isa.Cond.flags
val set_flags : t -> Pacstack_isa.Cond.flags -> unit

val cycles : t -> int
val instructions_retired : t -> int

val memory_operations : t -> int
(** Loads/stores executed (pair operations count twice) — input to the
    multi-worker memory-contention model of the Table 3 experiment. *)

val halted : t -> int option
val set_halted : t -> int -> unit

val canary_symbol : string
(** Name of the data object holding the stack-protector guard value. *)

val forward_cfi : t -> bool
val set_forward_cfi : t -> bool -> unit
(** Coarse-grained forward-edge CFI (assumption A2): when enabled (the
    default, as the paper assumes), indirect calls may only target
    function entry points; violations raise {!Trap.Fault} with
    [Cfi_violation]. Disable to study PACStack without its prerequisite. *)

val set_tracer : t -> (t -> Pacstack_isa.Instr.t -> unit) option -> unit
(** Per-instruction observer invoked before execution (PC still points at
    the instruction). Used by {!Profile}; [None] removes it.

    The tracer is an observer: it must not change control state (PC,
    halted) or the page table. The threaded engine resolves the next
    instruction when the image is compiled and chains compiled ops
    without consulting PC between straight-line instructions, so a
    tracer that moved PC or halted the machine mid-step would be seen
    by the reference engine and missed by the threaded one. Mutating
    registers, flags or mapped data memory is fine — both engines apply
    the tracer at the same point. *)

val set_obs_label : t -> string -> unit
(** Attribution label for the lib/obs metrics this machine publishes at
    the end of each [run]/[run_until] (instructions, TLB hits/misses,
    PA operations by kind, traps by kind): a non-empty [scheme] renders
    metric names as [machine.*{scheme=<scheme>}]; [""] (the default)
    removes the suffix. A no-op in effect unless [Obs.enable] was
    called — with obs disabled the machine publishes nothing. *)

(** {1 Hooks and syscalls} *)

val attach_hook : t -> string -> (t -> unit) -> unit
(** Installs the adversary (or test probe) invoked by [Hook name]. *)

val detach_hook : t -> string -> unit

val set_syscall_handler : t -> (t -> int -> unit) -> unit
(** Invoked on [Svc n]; the default handler implements [svc #0] as exit
    with code X0, [svc #1] as debug print of X0, and faults on anything
    else. *)

val output : t -> int64 list
(** Values printed via the debug-print syscall, oldest first. *)

val push_output : t -> int64 -> unit

(** {1 Execution} *)

val step : t -> unit
(** Executes one instruction; raises {!Trap.Fault}. No-op once halted.

    Dispatches through the threaded-code engine: the image is compiled
    once into an array of per-instruction closures (operands, cycle
    costs, mem_ops deltas, branch targets and obs classification all
    resolved at compile time) and the per-step translate/execute check
    is a page-granular cache invalidated by any
    [Memory.map]/[unmap]/[protect]. Observable behaviour is
    bit-identical to {!Reference.step} — pinned by the differential
    suite in test_engine.ml. *)

type outcome = Halted of int | Faulted of Trap.t | Out_of_fuel

val run : ?fuel:int -> t -> outcome
(** Steps until halt, fault or [fuel] instructions (default 10 million). *)

val run_until : ?fuel:int -> t -> stop:(t -> bool) -> outcome option
(** Like {!run}, but returns [None] as soon as [stop t] holds (checked
    before each instruction, so the machine is paused with PC at the
    next, not-yet-executed instruction); [Some outcome] if the program
    halted, faulted or ran out of fuel first. Fault injection uses this
    to reach a trigger point mid-run, mutate state, and continue with
    {!run}. *)

(** The original fetch-then-match interpreter, kept verbatim as the
    oracle for the threaded engine (the [Qarma64.Reference] pattern):
    same machine state, same traps, same counters, one instruction
    dispatch at a time. The engines may be interleaved freely on one
    machine — they share all state and differ only in dispatch. *)
module Reference : sig
  val step : t -> unit
  val run : ?fuel:int -> t -> outcome
  val run_until : ?fuel:int -> t -> stop:(t -> bool) -> outcome option
end

val pp_state : Format.formatter -> t -> unit
(** One-line register dump for diagnostics. *)

(** {1 Context save/restore (used by the kernel)} *)

type context

val save_context : t -> context
val restore_context : t -> context -> unit
val context_pc : context -> Pacstack_util.Word64.t
val context_get : context -> Pacstack_isa.Reg.t -> Pacstack_util.Word64.t
val context_words : context -> Pacstack_util.Word64.t array
(** Flat encoding: X0..X30, SP, PC, flags-as-word — the layout the kernel
    writes into user-visible signal frames. *)

val context_of_words : Pacstack_util.Word64.t array -> context
