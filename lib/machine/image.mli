(** A program laid out in the simulated address space.

    Code occupies 4 bytes per instruction starting at {!code_base}; data
    objects live in a read-write region; labels local to a function shadow
    global symbols when resolved from inside that function. *)

type t

val code_base : Pacstack_util.Word64.t
val data_base : Pacstack_util.Word64.t
val stack_top : Pacstack_util.Word64.t
val stack_size : int
val shadow_base : Pacstack_util.Word64.t
val shadow_size : int

val build : Pacstack_isa.Program.t -> t
(** Lays the program out (appending the [__halt] and
    [__sigreturn_trampoline] runtime stubs if the program does not define
    them) and computes the symbol tables. *)

val program : t -> Pacstack_isa.Program.t

val fetch : t -> Pacstack_util.Word64.t -> Pacstack_isa.Instr.t option
(** The instruction at a code address, [None] outside the code image. *)

val fetch_exn : t -> Pacstack_util.Word64.t -> Pacstack_isa.Instr.t
(** Allocation-free fetch for the step loop: indexes the predecoded
    instruction array at [(addr − code_base) / 4]; raises a per-image
    preformatted [Trap.Fault (Trap.Undefined _)] outside the image or
    misaligned (the raise path allocates nothing). *)

val instructions : t -> Pacstack_isa.Instr.t array
(** The predecoded instruction array, indexed by [(pc − code_base) / 4].
    Callers must not mutate it — it is the image's single source of
    truth for {!fetch}/{!fetch_exn}. *)

type cache = ..
(** Slot for engine-compiled artifacts derived from this (immutable)
    image — the machine's threaded-code ops array. Extensible so the
    machine layer can define the payload without a dependency cycle. *)

val cache : t -> cache option
val set_cache : t -> cache -> unit

val symbol : t -> string -> Pacstack_util.Word64.t option
(** Address of a global symbol (function or data object). *)

val resolve : t -> from:Pacstack_util.Word64.t -> string -> Pacstack_util.Word64.t option
(** Label resolution as seen by the instruction at address [from]: local
    labels of the enclosing function take precedence over globals. *)

val entry : t -> Pacstack_util.Word64.t
val halt_addr : t -> Pacstack_util.Word64.t
val sigreturn_trampoline : t -> Pacstack_util.Word64.t

val function_at : t -> Pacstack_util.Word64.t -> string option
(** Name of the function covering a code address. *)

val function_bounds : t -> string -> (Pacstack_util.Word64.t * Pacstack_util.Word64.t) option
(** [(first, past_last)] code addresses of a function. *)

val code_size : t -> int
(** Bytes of code. *)

val encoded : t -> int32 array * Pacstack_isa.Encode.pools
(** The binary encoding of the code image — what the loader writes into
    the executable pages. *)

val is_function_entry : t -> Pacstack_util.Word64.t -> bool
(** Whether an address is the first instruction of some function — the
    target set of the coarse-grained forward-edge CFI (assumption A2). *)

val disassemble : t -> string
(** Disassembly of the whole code image from its binary encoding. *)
