(** Sparse, page-granular byte-addressable memory with W⊕X enforcement.

    Addresses are 64-bit words; multi-byte accesses are little-endian and
    may cross page boundaries. Unmapped or insufficiently-permitted
    accesses raise {!Trap.Fault}.

    Performance: pages are allocated lazily (a mapped-but-untouched page
    shares one zero page until first written), and the last data and
    execute translations are cached in one-entry TLBs — invalidated by
    {!map}/{!unmap}/{!protect}, so a stale translation can never outlive
    a permission change. *)

type perm = { readable : bool; writable : bool; executable : bool }

val perm_r : perm
val perm_rw : perm
val perm_rx : perm
val pp_perm : Format.formatter -> perm -> unit

type t

val create : unit -> t

val page_size : int
val page_bits : int

val map : t -> addr:Pacstack_util.Word64.t -> size:int -> perm -> unit
(** Maps (and zeroes) the pages covering [\[addr, addr+size)]. Raises
    [Invalid_argument] if a page is already mapped, or if the permission
    is simultaneously writable and executable (W⊕X, assumption A1). *)

val unmap : t -> addr:Pacstack_util.Word64.t -> size:int -> unit

val protect : t -> addr:Pacstack_util.Word64.t -> size:int -> perm -> unit
(** mprotect: changes the permission of already-mapped pages, preserving
    their contents. W⊕X is still enforced; unmapped pages raise
    [Invalid_argument]. *)

val is_mapped : t -> Pacstack_util.Word64.t -> bool
val perm_at : t -> Pacstack_util.Word64.t -> perm option

val load8 : t -> Pacstack_util.Word64.t -> int
val store8 : t -> Pacstack_util.Word64.t -> int -> unit
val load64 : t -> Pacstack_util.Word64.t -> Pacstack_util.Word64.t
val store64 : t -> Pacstack_util.Word64.t -> Pacstack_util.Word64.t -> unit

val load32 : t -> Pacstack_util.Word64.t -> int32
val store32 : t -> Pacstack_util.Word64.t -> int32 -> unit
(** 32-bit little-endian accesses (one instruction word); single
    [Bytes] read/write when the access stays inside one page, as with
    {!load64}/{!store64}. *)

val check_exec : t -> Pacstack_util.Word64.t -> unit
(** Raises unless the address lies in an executable page. *)

val peek64 : t -> Pacstack_util.Word64.t -> Pacstack_util.Word64.t option
(** Non-faulting read used by the adversary and by debugging tools:
    [None] when unmapped. Ignores read permission — the paper's adversary
    reads the whole address space (requirement R2). *)

val poke64 : t -> Pacstack_util.Word64.t -> Pacstack_util.Word64.t -> bool
(** Non-faulting write for the adversary: succeeds only on mapped,
    writable pages (W⊕X still binds the adversary); returns success. *)

val copy : t -> t
(** Deep copy (used by [fork]). TLB miss counters restart at zero. *)

val tlb_misses : t -> int * int
(** [(data, exec)] one-entry-TLB refills since creation. Only the miss
    path counts (it already pays a hashtable probe); hit totals are
    derived by the machine as accesses minus misses, so the TLB hit
    path carries no instrumentation cost. *)

val mapped_ranges : t -> (Pacstack_util.Word64.t * int * perm) list
(** Sorted list of (start, size, perm) for each maximal mapped run. *)

val generation : t -> int
(** Monotonic counter bumped by every {!map}/{!unmap}/{!protect}. A cache
    derived from the page table (e.g. the machine's per-code-page execute
    check) records the generation it was built at and refills when the
    counter moves — the same invalidation discipline as the internal
    one-entry TLBs. Restarts at zero in a {!copy}, so cache holders must
    treat a copied memory as fresh (use an impossible sentinel, not 0). *)

val digest : t -> Pacstack_util.Word64.t
(** Order-independent fingerprint of the full memory state: mapped page
    indices, their permissions and their contents. Two memories digest
    equal iff every observable load/permission query agrees; used by the
    engine differential suite to compare end states without enumerating
    addresses. *)
