module Word64 = Pacstack_util.Word64

type perm = { readable : bool; writable : bool; executable : bool }

let perm_r = { readable = true; writable = false; executable = false }
let perm_rw = { readable = true; writable = true; executable = false }
let perm_rx = { readable = true; writable = false; executable = true }
let perm_none = { readable = false; writable = false; executable = false }

let pp_perm fmt p =
  Format.fprintf fmt "%c%c%c"
    (if p.readable then 'r' else '-')
    (if p.writable then 'w' else '-')
    (if p.executable then 'x' else '-')

let page_size = 4096
let page_bits = 12

(* Pages are allocated lazily: a freshly mapped page shares [zero_page]
   (all-zero, read-only by convention — every write path materialises a
   private copy first), so mapping a 1 MiB stack costs 256 table entries,
   not 1 MiB of zeroing. *)
let zero_page = Bytes.make page_size '\000'

type page = { mutable data : Bytes.t; perm : perm }

(* One-entry TLBs, keyed by page index: [tlb_d_*] caches the last data
   translation (loads/stores), [tlb_x_*] the last execute translation
   (one per step), so the two access streams don't evict each other.
   Both are invalidated by map/unmap/protect. The sentinel index [-1L]
   can never equal a real index (indices are addr lsr 12 < 2^52). *)
type t = {
  pages : (int64, page) Hashtbl.t;
  mutable tlb_d_idx : int64;
  mutable tlb_d_page : page;
  mutable tlb_x_idx : int64;
  mutable tlb_x_page : page;
  (* Refill counters for observability. Only the (already slow) miss
     path pays them — hit counts are reconstructed by the machine from
     mem_ops/instret — so the TLB hit path stays untouched. *)
  mutable tlb_d_miss : int;
  mutable tlb_x_miss : int;
  (* Bumped by every map/unmap/protect. External caches derived from
     the page table (the machine's page-granular execute cache) compare
     this against their snapshot instead of subscribing to
     invalidations — same discipline as the one-entry TLBs above. *)
  mutable generation : int;
}

let no_page = { data = zero_page; perm = perm_none }

let create () =
  {
    pages = Hashtbl.create 64;
    tlb_d_idx = -1L;
    tlb_d_page = no_page;
    tlb_x_idx = -1L;
    tlb_x_page = no_page;
    tlb_d_miss = 0;
    tlb_x_miss = 0;
    generation = 0;
  }

let invalidate_tlb t =
  t.tlb_d_idx <- -1L;
  t.tlb_d_page <- no_page;
  t.tlb_x_idx <- -1L;
  t.tlb_x_page <- no_page;
  t.generation <- t.generation + 1

let generation t = t.generation

let page_index addr = Int64.shift_right_logical addr page_bits
let page_offset addr = Int64.to_int (Int64.logand addr (Int64.of_int (page_size - 1)))

let map t ~addr ~size perm =
  if size <= 0 then invalid_arg "Memory.map: size";
  if perm.writable && perm.executable then invalid_arg "Memory.map: W^X violation";
  let first = page_index addr in
  let last = page_index (Int64.add addr (Int64.of_int (size - 1))) in
  let n = Int64.to_int (Int64.sub last first) in
  for i = 0 to n do
    let idx = Int64.add first (Int64.of_int i) in
    if Hashtbl.mem t.pages idx then
      invalid_arg (Printf.sprintf "Memory.map: page %Lx already mapped" idx)
  done;
  for i = 0 to n do
    let idx = Int64.add first (Int64.of_int i) in
    Hashtbl.replace t.pages idx { data = zero_page; perm }
  done;
  invalidate_tlb t

let unmap t ~addr ~size =
  if size <= 0 then invalid_arg "Memory.unmap: size";
  let first = page_index addr in
  let last = page_index (Int64.add addr (Int64.of_int (size - 1))) in
  let n = Int64.to_int (Int64.sub last first) in
  for i = 0 to n do
    Hashtbl.remove t.pages (Int64.add first (Int64.of_int i))
  done;
  invalidate_tlb t

let protect t ~addr ~size perm =
  if size <= 0 then invalid_arg "Memory.protect: size";
  if perm.writable && perm.executable then invalid_arg "Memory.protect: W^X violation";
  let first = page_index addr in
  let last = page_index (Int64.add addr (Int64.of_int (size - 1))) in
  let n = Int64.to_int (Int64.sub last first) in
  for i = 0 to n do
    let idx = Int64.add first (Int64.of_int i) in
    match Hashtbl.find_opt t.pages idx with
    | None -> invalid_arg (Printf.sprintf "Memory.protect: page %Lx not mapped" idx)
    | Some p -> Hashtbl.replace t.pages idx { p with perm }
  done;
  invalidate_tlb t

let find t addr = Hashtbl.find_opt t.pages (page_index addr)

let is_mapped t addr = find t addr <> None
let perm_at t addr = Option.map (fun p -> p.perm) (find t addr)

(* Hot-path translation: one compare on a TLB hit, one hashtable probe on
   a miss. *)
let page_for t addr access =
  let idx = page_index addr in
  if Int64.equal idx t.tlb_d_idx then t.tlb_d_page
  else
    match Hashtbl.find_opt t.pages idx with
    | Some p ->
      t.tlb_d_miss <- t.tlb_d_miss + 1;
      t.tlb_d_idx <- idx;
      t.tlb_d_page <- p;
      p
    | None -> raise (Trap.Fault (Trap.Unmapped (addr, access)))

(* A write to a page still sharing [zero_page] first gives it a private
   zeroed copy. *)
let writable_data p =
  if p.data == zero_page then p.data <- Bytes.make page_size '\000';
  p.data

let load8 t addr =
  let p = page_for t addr Trap.Read in
  if not p.perm.readable then raise (Trap.Fault (Trap.Permission (addr, Trap.Read)));
  Char.code (Bytes.get p.data (page_offset addr))

let store8 t addr v =
  let p = page_for t addr Trap.Write in
  if not p.perm.writable then raise (Trap.Fault (Trap.Permission (addr, Trap.Write)));
  Bytes.set (writable_data p) (page_offset addr) (Char.chr (v land 0xff))

let load64 t addr =
  (* Fast path: the common aligned access within one page. *)
  let off = page_offset addr in
  if off <= page_size - 8 then begin
    let p = page_for t addr Trap.Read in
    if not p.perm.readable then raise (Trap.Fault (Trap.Permission (addr, Trap.Read)));
    Bytes.get_int64_le p.data off
  end
  else
    let rec go i acc =
      if i < 0 then acc
      else go (i - 1) (Int64.logor (Int64.shift_left acc 8) (Int64.of_int (load8 t (Int64.add addr (Int64.of_int i)))))
    in
    go 7 0L

let store64 t addr v =
  let off = page_offset addr in
  if off <= page_size - 8 then begin
    let p = page_for t addr Trap.Write in
    if not p.perm.writable then raise (Trap.Fault (Trap.Permission (addr, Trap.Write)));
    Bytes.set_int64_le (writable_data p) off v
  end
  else
    for i = 0 to 7 do
      store8 t (Int64.add addr (Int64.of_int i)) (Int64.to_int (Word64.extract v ~lo:(8 * i) ~width:8))
    done

let load32 t addr =
  let off = page_offset addr in
  if off <= page_size - 4 then begin
    let p = page_for t addr Trap.Read in
    if not p.perm.readable then raise (Trap.Fault (Trap.Permission (addr, Trap.Read)));
    Bytes.get_int32_le p.data off
  end
  else
    let rec go i acc =
      if i < 0 then acc
      else
        go (i - 1)
          (Int32.logor (Int32.shift_left acc 8)
             (Int32.of_int (load8 t (Int64.add addr (Int64.of_int i)))))
    in
    go 3 0l

let store32 t addr v =
  let off = page_offset addr in
  if off <= page_size - 4 then begin
    let p = page_for t addr Trap.Write in
    if not p.perm.writable then raise (Trap.Fault (Trap.Permission (addr, Trap.Write)));
    Bytes.set_int32_le (writable_data p) off v
  end
  else
    for i = 0 to 3 do
      store8 t (Int64.add addr (Int64.of_int i))
        (Int32.to_int (Int32.shift_right_logical v (8 * i)) land 0xff)
    done

let check_exec t addr =
  let idx = page_index addr in
  let p =
    if Int64.equal idx t.tlb_x_idx then t.tlb_x_page
    else
      match Hashtbl.find_opt t.pages idx with
      | Some p ->
        t.tlb_x_miss <- t.tlb_x_miss + 1;
        t.tlb_x_idx <- idx;
        t.tlb_x_page <- p;
        p
      | None -> raise (Trap.Fault (Trap.Unmapped (addr, Trap.Execute)))
  in
  if not p.perm.executable then raise (Trap.Fault (Trap.Permission (addr, Trap.Execute)))

let peek64 t addr =
  match find t addr with
  | None -> None
  | Some _ -> (
    (* Crossing into an unmapped page also yields None. *)
    try
      let rec go i acc =
        if i < 0 then acc
        else
          match find t (Int64.add addr (Int64.of_int i)) with
          | None -> raise Exit
          | Some p ->
            let b = Char.code (Bytes.get p.data (page_offset (Int64.add addr (Int64.of_int i)))) in
            go (i - 1) (Int64.logor (Int64.shift_left acc 8) (Int64.of_int b))
      in
      Some (go 7 0L)
    with Exit -> None)

let poke64 t addr v =
  let writable_at a =
    match find t a with Some p -> p.perm.writable | None -> false
  in
  let ok = ref true in
  for i = 0 to 7 do
    if not (writable_at (Int64.add addr (Int64.of_int i))) then ok := false
  done;
  if !ok then
    for i = 0 to 7 do
      let a = Int64.add addr (Int64.of_int i) in
      let p = page_for t a Trap.Write in
      Bytes.set (writable_data p) (page_offset a) (Char.chr (Int64.to_int (Word64.extract v ~lo:(8 * i) ~width:8)))
    done;
  !ok

let copy t =
  let pages = Hashtbl.create (Hashtbl.length t.pages) in
  Hashtbl.iter
    (fun k p ->
      let data = if p.data == zero_page then zero_page else Bytes.copy p.data in
      Hashtbl.replace pages k { p with data })
    t.pages;
  {
    pages;
    tlb_d_idx = -1L;
    tlb_d_page = no_page;
    tlb_x_idx = -1L;
    tlb_x_page = no_page;
    tlb_d_miss = 0;
    tlb_x_miss = 0;
    generation = 0;
  }

let tlb_misses t = (t.tlb_d_miss, t.tlb_x_miss)

(* FNV-1a over the mapped pages in index order: permissions and contents
   both feed the hash, so two memories digest equal iff they are
   observably identical. Page contents hash position-independently (a
   fold from a fixed seed), letting the shared [zero_page]'s hash be
   computed once and reused for every still-pristine page. *)
let fnv_prime = 0x100000001b3L
let fnv_seed = 0xcbf29ce484222325L
let fnv_mix h v = Int64.mul (Int64.logxor h v) fnv_prime

let hash_page_data data =
  let h = ref fnv_seed in
  for i = 0 to (page_size / 8) - 1 do
    h := fnv_mix !h (Bytes.get_int64_le data (i * 8))
  done;
  !h

let zero_page_hash = lazy (hash_page_data zero_page)

let digest t =
  let idxs = Hashtbl.fold (fun k _ acc -> k :: acc) t.pages [] in
  let idxs = List.sort Int64.unsigned_compare idxs in
  List.fold_left
    (fun h idx ->
      let p = Hashtbl.find t.pages idx in
      let perm_bits =
        (if p.perm.readable then 1 else 0)
        lor (if p.perm.writable then 2 else 0)
        lor if p.perm.executable then 4 else 0
      in
      let content =
        if p.data == zero_page then Lazy.force zero_page_hash else hash_page_data p.data
      in
      fnv_mix (fnv_mix (fnv_mix h idx) (Int64.of_int perm_bits)) content)
    fnv_seed idxs

let mapped_ranges t =
  let idxs = Hashtbl.fold (fun k p acc -> (k, p.perm) :: acc) t.pages [] in
  let idxs = List.sort (fun (a, _) (b, _) -> Int64.unsigned_compare a b) idxs in
  let rec runs acc = function
    | [] -> List.rev acc
    | (idx, perm) :: rest -> (
      match acc with
      | (start, size, p) :: tl
        when p = perm && Int64.equal (Int64.add start (Int64.of_int size)) (Int64.shift_left idx page_bits) ->
        runs ((start, size + page_size, p) :: tl) rest
      | _ -> runs ((Int64.shift_left idx page_bits, page_size, perm) :: acc) rest)
  in
  runs [] idxs
