module Word64 = Pacstack_util.Word64

type access = Read | Write | Execute

type t =
  | Unmapped of Word64.t * access
  | Permission of Word64.t * access
  | Translation of Word64.t * access
  | Cfi_violation of Word64.t
  | Undefined of string

exception Fault of t

let pp_access fmt = function
  | Read -> Format.pp_print_string fmt "read"
  | Write -> Format.pp_print_string fmt "write"
  | Execute -> Format.pp_print_string fmt "execute"

let pp fmt = function
  | Unmapped (a, acc) -> Format.fprintf fmt "unmapped %a at %a" pp_access acc Word64.pp a
  | Permission (a, acc) -> Format.fprintf fmt "permission violation (%a) at %a" pp_access acc Word64.pp a
  | Translation (a, acc) -> Format.fprintf fmt "translation fault (%a) at %a" pp_access acc Word64.pp a
  | Cfi_violation a -> Format.fprintf fmt "forward-edge CFI violation at %a" Word64.pp a
  | Undefined msg -> Format.fprintf fmt "undefined: %s" msg

let to_string t = Format.asprintf "%a" pp t

let kind = function
  | Unmapped _ -> "unmapped"
  | Permission _ -> "permission"
  | Translation _ -> "translation"
  | Cfi_violation _ -> "cfi"
  | Undefined _ -> "undefined"

let equal a b =
  match a, b with
  | Unmapped (x, p), Unmapped (y, q)
  | Permission (x, p), Permission (y, q)
  | Translation (x, p), Translation (y, q) -> Word64.equal x y && p = q
  | Cfi_violation x, Cfi_violation y -> Word64.equal x y
  | Undefined x, Undefined y -> x = y
  | (Unmapped _ | Permission _ | Translation _ | Cfi_violation _ | Undefined _), _ -> false
