(** Faults the simulated hardware can raise.

    A failed pointer authentication never faults by itself; the fault
    materialises later, when the corrupted pointer is translated — exactly
    the ARMv8.3-A behaviour the paper relies on (§2.2). *)

type access = Read | Write | Execute

type t =
  | Unmapped of Pacstack_util.Word64.t * access
      (** Access to an address with no page mapped. *)
  | Permission of Pacstack_util.Word64.t * access
      (** Access violating page permissions (e.g. a W⊕X write to code). *)
  | Translation of Pacstack_util.Word64.t * access
      (** Non-canonical address — the fate of pointers that failed [aut]. *)
  | Cfi_violation of Pacstack_util.Word64.t
      (** Indirect branch to a non-function-entry target, rejected by the
          coarse-grained forward-edge CFI of assumption A2. *)
  | Undefined of string
      (** Architecturally undefined situation (bad syscall number, ...). *)

exception Fault of t

val pp_access : Format.formatter -> access -> unit
val pp : Format.formatter -> t -> unit
val to_string : t -> string

(** Constructor name only ("unmapped", "permission", "translation",
    "cfi", "undefined") — a stable label for trap-by-kind metrics. *)
val kind : t -> string
val equal : t -> t -> bool
