module Word64 = Pacstack_util.Word64
module Program = Pacstack_isa.Program
module Instr = Pacstack_isa.Instr
module Encode = Pacstack_isa.Encode

(* Open slot for engine-compiled artifacts derived from this image (the
   machine's threaded-code ops array). An extensible variant keeps the
   dependency arrow pointing the right way: Machine extends [cache],
   Image never learns what it stores. *)
type cache = ..

type t = {
  program : Program.t;
  code : Instr.t array;
  words : int32 array;
  pools : Encode.pools;
  globals : (string, Word64.t) Hashtbl.t;
  locals : (string * string, Word64.t) Hashtbl.t;  (* (function, label) *)
  bounds : (string * Word64.t * Word64.t) list;    (* name, first, past-last *)
  entries : (Word64.t, unit) Hashtbl.t;            (* function entry points *)
  fetch_trap : exn;      (* preformatted out-of-image trap, raised as-is *)
  mutable cache : cache option;
}

let code_base = 0x0000_0001_0000L
let data_base = 0x0000_0020_0000L
let stack_top = 0x0000_7fff_f000L
let stack_size = 1 lsl 20
let shadow_base = 0x0000_6000_0000L
let shadow_size = 1 lsl 16

let runtime_stubs existing =
  let stub name body = { Program.name; body = List.map (fun i -> Program.Ins i) body } in
  let need n = not (List.exists (fun f -> f.Program.name = n) existing) in
  List.concat
    [
      (if need "__halt" then [ stub "__halt" [ Instr.Hlt ] ] else []);
      (if need "__sigreturn_trampoline" then
         [ stub "__sigreturn_trampoline" [ Instr.Svc 5; Instr.Hlt ] ]
       else []);
    ]

let canary_name = "__stack_chk_guard"

let build (p : Program.t) =
  let funcs = p.funcs @ runtime_stubs p.funcs in
  let data =
    if List.exists (fun (d : Program.data) -> d.dname = canary_name) p.data then p.data
    else p.data @ [ { Program.dname = canary_name; size = 8 } ]
  in
  let program = { p with funcs; data } in
  let globals = Hashtbl.create 32 in
  let locals = Hashtbl.create 32 in
  let code = ref [] in
  let addr = ref code_base in
  let bounds = ref [] in
  List.iter
    (fun (f : Program.func) ->
      let first = !addr in
      Hashtbl.replace globals f.name !addr;
      List.iter
        (function
          | Program.Lbl l -> Hashtbl.replace locals (f.name, l) !addr
          | Program.Ins i ->
            code := i :: !code;
            addr := Int64.add !addr 4L)
        f.body;
      bounds := (f.name, first, !addr) :: !bounds)
    funcs;
  (* data objects, 16-byte aligned *)
  let daddr = ref data_base in
  List.iter
    (fun (d : Program.data) ->
      Hashtbl.replace globals d.dname !daddr;
      let size = (d.size + 15) land lnot 15 in
      daddr := Int64.add !daddr (Int64.of_int size))
    program.data;
  let code = Array.of_list (List.rev !code) in
  let words, pools = Encode.encode (Array.to_list code) in
  let entries = Hashtbl.create 16 in
  List.iter (fun (_, first, _) -> Hashtbl.replace entries first ()) !bounds;
  (* Formatted once here instead of on every raise: the message names the
     image bounds rather than the faulting PC, which the trap's (pc) site
     context already carries. *)
  let fetch_trap =
    Trap.Fault
      (Trap.Undefined
         (Printf.sprintf "fetch outside code image [%Lx..%Lx)" code_base
            (Int64.add code_base (Int64.of_int (4 * Array.length code)))))
  in
  {
    program; code; words; pools; globals; locals;
    bounds = List.rev !bounds; entries; fetch_trap; cache = None;
  }

let program t = t.program

let fetch t addr =
  let off = Int64.sub addr code_base in
  if Int64.logand off 3L <> 0L
     || Int64.unsigned_compare off (Int64.of_int (4 * Array.length t.code)) >= 0
  then None
  else Some t.code.(Int64.to_int off lsr 2)

(* The interpreter's per-step fetch: a bounds-checked read of the
   predecoded instruction array, no [Option] box. Out-of-image or
   misaligned PCs raise the per-image preformatted trap — the old
   [Printf.sprintf] here allocated and formatted on every raise, which
   the fuzz campaigns hit constantly (every wild-PC program ends in this
   trap). *)
let fetch_exn t addr =
  let off = Int64.sub addr code_base in
  if Int64.logand off 3L <> 0L
     || Int64.unsigned_compare off (Int64.of_int (4 * Array.length t.code)) >= 0
  then raise t.fetch_trap
  else Array.unsafe_get t.code (Int64.to_int off lsr 2)

let instructions t = t.code
let cache t = t.cache
let set_cache t c = t.cache <- Some c

let symbol t name = Hashtbl.find_opt t.globals name

let function_at t addr =
  List.find_map
    (fun (name, first, past) ->
      if Int64.unsigned_compare addr first >= 0 && Int64.unsigned_compare addr past < 0 then Some name
      else None)
    t.bounds

let function_bounds t name =
  List.find_map
    (fun (n, first, past) -> if n = name then Some (first, past) else None)
    t.bounds

let resolve t ~from label =
  let local =
    match function_at t from with
    | Some f -> Hashtbl.find_opt t.locals (f, label)
    | None -> None
  in
  match local with Some a -> Some a | None -> symbol t label

let entry t =
  match symbol t t.program.entry with
  | Some a -> a
  | None -> invalid_arg "Image.entry"

let required t name =
  match symbol t name with
  | Some a -> a
  | None -> invalid_arg ("Image: missing runtime stub " ^ name)

let halt_addr t = required t "__halt"
let sigreturn_trampoline t = required t "__sigreturn_trampoline"

let code_size t = 4 * Array.length t.code

let encoded t = (t.words, t.pools)

let is_function_entry t addr = Hashtbl.mem t.entries addr

let disassemble t = Encode.disassemble t.words t.pools
