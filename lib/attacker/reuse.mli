(** The §6.1 return-address attacks on the Listing 6 victim, run against
    every hardening scheme.

    Three adversary strategies:
    - {!Arbitrary_redirect}: overwrite every return-address-bearing slot
      the scheme keeps in attackable memory (stack slot, shadow-stack
      entry, PACStack chain slot) with the address of [evil].
    - {!Sibling_reuse}: the PAC-reuse attack — harvest the protected
      return value stored by sibling call [a] and substitute it into
      [b]'s frame; both were produced under the same SP modifier, so
      SP-modifier schemes accept it.
    - {!Linear_overflow}: a contiguous buffer overflow sled from [b]'s
      buffer up through the frame record (what stack canaries detect).

    Expected outcomes (asserted by tests, printed by the bench harness):
    the unprotected baseline is hijacked by all three; canaries stop only
    the linear overflow; [-mbranch-protection] stops arbitrary redirects
    but is {e bent} by sibling reuse; the software shadow stack falls to
    an adversary who knows its location; PACStack detects or ignores all
    of them. *)

type strategy = Arbitrary_redirect | Sibling_reuse | Linear_overflow

exception
  Missing_evil_function of { symbol : string; scheme : Pacstack_harden.Scheme.t }
(** Raised when the victim program exposes no landing symbol for the
    adversary to redirect to. *)

val strategy_to_string : strategy -> string
val all_strategies : strategy list

val attack :
  scheme:Pacstack_harden.Scheme.t ->
  ?overrides:(string * Pacstack_harden.Scheme.t) list ->
  ?victim:Pacstack_minic.Ast.program ->
  strategy -> Adversary.outcome
(** Runs the victim with the adversary attached and classifies the run.
    [overrides] assigns individual victim functions a different scheme —
    the §9.2 mixed instrumented/uninstrumented deployment study.
    [victim] substitutes the Listing 6 default (it must still expose the
    adversary hooks; without an [evil] symbol the attack raises
    {!Missing_evil_function}). *)

val matrix : unit -> (strategy * (Pacstack_harden.Scheme.t * Adversary.outcome) list) list
(** The full strategy × scheme outcome table. *)
