module Word64 = Pacstack_util.Word64
module Rng = Pacstack_util.Rng
module Config = Pacstack_pa.Config
module Machine = Pacstack_machine.Machine
module Scheme = Pacstack_harden.Scheme
module Ast = Pacstack_minic.Ast
module B = Pacstack_minic.Build
module Compile = Pacstack_minic.Compile
module Scenarios = Pacstack_workloads.Scenarios

type result = {
  pac_bits : int;
  trials : int;
  mean_guesses : float;
  expected : float;
}

(* main prints f's result before returning, so a surviving stage-1 guess
   (f returned despite the forged chain slot) is observable to the
   adversary even though main's own return then crashes. *)
let victim =
  Ast.program
    [
      Scenarios.(
        Ast.fdef "f" ~locals:[ Ast.Scalar "t" ]
          B.[
            Ast.Hook overwrite_hook;
            set "t" (call "id" [ i 55 ]);
            ret (v "t");
          ]);
      Ast.fdef "id" ~params:[ "x" ] B.[ ret (v "x") ];
      Ast.fdef "main" ~locals:[ Ast.Scalar "x" ]
        B.[
          set "x" (call "f" []);
          print (v "x");
          ret (i 0);
        ];
    ]

let total_guesses ?(pac_bits = 6) ~trials rng =
  if trials <= 0 then invalid_arg "Bruteforce.total_guesses";
  let cfg = Config.make ~pac_bits () in
  let program = Compile.compile ~scheme:Scheme.pacstack victim in
  let space = Int64.to_int (Word64.mask pac_bits) + 1 in
  let total = ref 0 in
  for _ = 1 to trials do
    (* one parent per trial: fresh PA keys, i.e. a fresh program start *)
    let parent = Machine.load ~cfg ~rng:(Rng.split rng) program in
    (* any canonical address serves as the injected jump target *)
    let evil = 0x7000_0000L in
    let rec guess n =
      (* sibling n: a fork of the parent, sharing its keys *)
      let child = Machine.clone parent in
      let forged =
        let address = Int64.add evil (Int64.of_int (8 * (n / space))) in
        Pacstack_pa.Pointer.with_pac_field cfg address (Int64.of_int (n mod space))
      in
      Machine.attach_hook child Scenarios.overwrite_hook (fun m ->
          ignore (Adversary.write m (Adversary.chain_slot m) forged));
      let _ = Machine.run ~fuel:100_000 child in
      Machine.detach_hook child Scenarios.overwrite_hook;
      if List.exists (Word64.equal 55L) (Machine.output child) then n + 1 else guess (n + 1)
    in
    total := !total + guess 0
  done;
  !total

let run ?(pac_bits = 6) ?(trials = 20) ?(seed = 0xb4c3L) () =
  let total = total_guesses ~pac_bits ~trials (Rng.create seed) in
  {
    pac_bits;
    trials;
    mean_guesses = float_of_int total /. float_of_int trials;
    expected = 2.0 ** float_of_int pac_bits;
  }
