module Word64 = Pacstack_util.Word64
module Config = Pacstack_pa.Config
module Pac = Pacstack_pa.Pac
module Pointer = Pacstack_pa.Pointer
module Machine = Pacstack_machine.Machine
module Scheme = Pacstack_harden.Scheme
module Compile = Pacstack_minic.Compile
module Scenarios = Pacstack_workloads.Scenarios

let forge_with_gadget cfg prf ~target ~modifier =
  (* Listing 7: inject the bare target, let the victim authenticate it
     (fails, setting the error bit), let the victim re-sign it (PAC
     computed over the stripped address, bit p flipped because the input
     was invalid), then flip bit p back. *)
  let injected = target in
  let after_aut =
    match Pac.auth cfg prf injected ~modifier with
    | Pac.Valid p -> p  (* a zero-PAC pointer might validate by luck *)
    | Pac.Invalid p -> p
  in
  let after_pac = Pac.add cfg prf after_aut ~modifier in
  (* bit p is PAC bit 0 in our PA semantics *)
  let p_bit = Config.pac_lo cfg in
  Word64.flip_bit after_pac p_bit

let gadget_forges_valid_pointer cfg prf ~target ~modifier =
  let forged = forge_with_gadget cfg prf ~target ~modifier in
  match Pac.auth cfg prf forged ~modifier with
  | Pac.Valid p -> Word64.equal p (Pointer.address cfg target)
  | Pac.Invalid _ -> false

let tail_call_attack ~masked =
  let scheme = if masked then Scheme.pacstack else Scheme.pacstack_nomask in
  let victim = Scenarios.tail_call_victim in
  let expected = Adversary.benign_output scheme victim in
  let program = Compile.compile ~scheme victim in
  let m = Machine.load program in
  Machine.attach_hook m Scenarios.overwrite_hook (fun m ->
      match Adversary.symbol m "evil" with
      | None -> ()
      | Some evil ->
        (* the adversary's best forgery: the gadget output for the stored
           chain value's slot — but it cannot flip bit p of the value in
           CR, so it can only plant the forgery in memory *)
        let cfg = Machine.config m in
        let ia = Pacstack_pa.Keys.get (Machine.keys m) Pacstack_pa.Keys.IA in
        let forged = forge_with_gadget cfg ia ~target:evil ~modifier:0L in
        ignore (Adversary.write m (Adversary.chain_slot m) forged));
  let outcome = Machine.run ~fuel:300_000 m in
  Adversary.classify ~expected m outcome
