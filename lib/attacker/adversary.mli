(** The §3 adversary: arbitrary read of the whole address space, arbitrary
    write to writable pages (W⊕X binds it), no access to registers or PA
    keys. Attacks attach to hook intrinsics in victim programs and act on
    the machine state through this module only. *)

type outcome =
  | Hijacked  (** control reached the adversary's target ([evil] ran) *)
  | Bent  (** execution completed but the observable trace changed *)
  | Detected of string  (** fault or canary abort stopped the attack *)
  | No_effect  (** trace identical to the benign run *)

exception
  Benign_run_failed of { scheme : Pacstack_harden.Scheme.t; outcome : string }
(** Raised by {!benign_output} when the unattacked victim run does not
    halt cleanly — the victim/scheme pair is broken, not the attack. *)

val pp_outcome : Format.formatter -> outcome -> unit
val outcome_to_string : outcome -> string
val equal_outcome : outcome -> outcome -> bool

val read : Pacstack_machine.Machine.t -> Pacstack_util.Word64.t -> Pacstack_util.Word64.t option
(** Unrestricted read (R2: full memory disclosure). *)

val write : Pacstack_machine.Machine.t -> Pacstack_util.Word64.t -> Pacstack_util.Word64.t -> bool
(** Write, refused on non-writable pages (assumption A1). *)

val frame_record : Pacstack_machine.Machine.t -> Pacstack_util.Word64.t
(** Address of the live function's frame record ([fp] — observable because
    the frame-pointer chain is plain data on the stack). *)

val return_slot : Pacstack_machine.Machine.t -> Pacstack_util.Word64.t
(** [fp + 8]: where the interrupted function's return address is stored. *)

val chain_slot : Pacstack_machine.Machine.t -> Pacstack_util.Word64.t
(** [fp - 16]: the PACStack [aret_{i-1}] spill slot. *)

val shadow_top_slot : Pacstack_machine.Machine.t -> Pacstack_util.Word64.t option
(** Topmost occupied shadow-stack entry, found by scanning the (known,
    deterministic) shadow region — the paper's "software shadow stacks are
    vulnerable once their location is known". [None] if empty. *)

val symbol : Pacstack_machine.Machine.t -> string -> Pacstack_util.Word64.t option

val classify :
  expected:int64 list ->
  Pacstack_machine.Machine.t ->
  Pacstack_machine.Machine.outcome -> outcome
(** Classifies a finished victim run against the benign output trace. *)

val benign_output :
  Pacstack_harden.Scheme.t -> Pacstack_minic.Ast.program -> int64 list
(** Output of an unattacked run (for [classify]'s [expected]). *)
