module Word64 = Pacstack_util.Word64
module Machine = Pacstack_machine.Machine
module Memory = Pacstack_machine.Memory
module Image = Pacstack_machine.Image
module Trap = Pacstack_machine.Trap
module Reg = Pacstack_isa.Reg
module Scenarios = Pacstack_workloads.Scenarios
module Scheme = Pacstack_harden.Scheme

type outcome = Hijacked | Bent | Detected of string | No_effect

exception Benign_run_failed of { scheme : Scheme.t; outcome : string }

let () =
  Printexc.register_printer (function
    | Benign_run_failed { scheme; outcome } ->
      Some
        (Printf.sprintf "Adversary.Benign_run_failed(scheme %s: %s)"
           (Scheme.to_string scheme) outcome)
    | _ -> None)

let outcome_to_string = function
  | Hijacked -> "HIJACKED"
  | Bent -> "bent"
  | Detected m -> "detected (" ^ m ^ ")"
  | No_effect -> "no effect"

let pp_outcome fmt o = Format.pp_print_string fmt (outcome_to_string o)

let equal_outcome a b =
  match a, b with
  | Hijacked, Hijacked | Bent, Bent | No_effect, No_effect -> true
  | Detected _, Detected _ -> true
  | (Hijacked | Bent | Detected _ | No_effect), _ -> false

let read m addr = Memory.peek64 (Machine.memory m) addr
let write m addr v = Memory.poke64 (Machine.memory m) addr v

let frame_record m = Machine.get m Reg.fp
let return_slot m = Int64.add (frame_record m) 8L
let chain_slot m = Int64.sub (frame_record m) 16L

let shadow_top_slot m =
  let rec scan last addr =
    match read m addr with
    | Some v when not (Word64.equal v 0L) -> scan (Some addr) (Int64.add addr 8L)
    | Some _ | None -> last
  in
  scan None Image.shadow_base

let symbol m name = Image.symbol (Machine.image m) name

let classify ~expected m outcome =
  let out = Machine.output m in
  let hijacked = List.exists (Word64.equal Scenarios.evil_marker) out in
  match outcome with
  | _ when hijacked -> Hijacked
  | Machine.Faulted f -> Detected (Trap.to_string f)
  | Machine.Halted 134 -> Detected "stack canary"
  | Machine.Halted 139 -> Detected "kernel sigreturn validation"
  | Machine.Halted _ | Machine.Out_of_fuel -> if out = expected then No_effect else Bent

let benign_output scheme program =
  let compiled = Pacstack_minic.Compile.compile ~scheme program in
  let m = Machine.load compiled in
  match Machine.run ~fuel:10_000_000 m with
  | Machine.Halted _ -> Machine.output m
  | Machine.Faulted f ->
    raise (Benign_run_failed { scheme; outcome = "benign run faulted: " ^ Trap.to_string f })
  | Machine.Out_of_fuel -> raise (Benign_run_failed { scheme; outcome = "benign run out of fuel" })
