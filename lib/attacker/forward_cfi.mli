(** Forward-edge attacks against the coarse-grained CFI of assumption A2.

    The paper assumes indirect calls can only reach function entries; this
    module exercises both sides of that assumption on a dispatch-table
    victim:

    - corrupting a function pointer to a {e mid-function} address is
      rejected by the CFI check (and is what makes the PACStack
      instrumentation atomic, §6.3);
    - corrupting it to a {e different function's entry} is allowed by
      coarse-grained CFI — which is precisely why backward-edge protection
      such as PACStack is still needed;
    - with the CFI disabled, mid-function targets execute. *)

type target =
  | Entry_of_evil  (** a legitimate function entry the victim never calls *)
  | Mid_function  (** an address inside a function body *)

val attack :
  ?scheme:Pacstack_harden.Scheme.t -> cfi:bool -> target -> Adversary.outcome
(** Runs the dispatch victim (default scheme: PACStack) with assumption
    A2 enforced ([cfi = true]) or dropped, the adversary rewriting the
    dispatch table. *)

val summary : unit -> ((bool * target) * Adversary.outcome) list
(** All four CFI x target combinations under PACStack. *)

val sealing_summary :
  unit -> ((Pacstack_harden.Scheme.t * target) * Adversary.outcome) list
(** The pointer-sealing schemes (PACTight, PARTS) against both targets
    with the coarse CFI {e disabled}: authentication at the call site is
    the only line of defence. *)
