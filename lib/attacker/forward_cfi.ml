module Machine = Pacstack_machine.Machine
module Image = Pacstack_machine.Image
module Scheme = Pacstack_harden.Scheme
module Ast = Pacstack_minic.Ast
module B = Pacstack_minic.Build
module Compile = Pacstack_minic.Compile
module Scenarios = Pacstack_workloads.Scenarios

type target = Entry_of_evil | Mid_function

(* A dispatch-table victim: main repeatedly calls through a function
   pointer stored in writable memory; the hook fires between loads. *)
let victim =
  Ast.program
    ~globals:[ ("table", 8) ]
    [
      (Ast.fdef "evil" ~locals:[ Ast.Scalar "z" ]
         B.[
           print (i64 Scenarios.evil_marker);
           set "z" (i 1);
           while_ (v "z" == i 1) [];
           ret (i 0);
         ]);
      Ast.fdef "step" ~params:[ "x" ] B.[ ret (v "x" + i 3) ];
      Ast.fdef "main"
        ~locals:[ Ast.Scalar "k"; Ast.Scalar "acc"; Ast.Scalar "f" ]
        B.[
          store (glob "table") (fn "step");
          set "acc" (i 0);
          for_ "k" ~from:(i 0) ~below:(i 4)
            [
              Ast.Hook "fptr";
              set "f" (load (glob "table"));
              set "acc" (Ast.Call_ptr (v "f", [ v "acc" ]));
            ];
          print (v "acc");
          ret (i 0);
        ];
    ]

let attack ?(scheme = Scheme.pacstack) ~cfi target =
  let expected = Adversary.benign_output scheme victim in
  let program = Compile.compile ~scheme victim in
  let m = Machine.load program in
  Machine.set_forward_cfi m cfi;
  let fired = ref false in
  Machine.attach_hook m "fptr" (fun m ->
      if not !fired then begin
        fired := true;
        let table = Option.get (Adversary.symbol m "table") in
        let addr =
          match target with
          | Entry_of_evil -> Option.get (Adversary.symbol m "evil")
          | Mid_function ->
            (* a few instructions into main's body *)
            Int64.add (Option.get (Adversary.symbol m "main")) 12L
        in
        ignore (Adversary.write m table addr)
      end);
  let outcome = Machine.run ~fuel:300_000 m in
  Adversary.classify ~expected m outcome

let summary () =
  List.concat_map
    (fun cfi ->
      List.map (fun t -> ((cfi, t), attack ~cfi t)) [ Entry_of_evil; Mid_function ])
    [ true; false ]

(* The pointer-sealing schemes make the table entry itself the defence:
   even with the coarse CFI of assumption A2 dropped, a raw overwrite of
   the sealed pointer fails authentication at the call site. *)
let sealing_summary () =
  List.concat_map
    (fun scheme ->
      List.map
        (fun t -> ((scheme, t), attack ~scheme ~cfi:false t))
        [ Entry_of_evil; Mid_function ])
    [ Scheme.pactight; Scheme.parts ]
