(** Machine-level brute-force guessing against forked siblings (§4.3).

    A parent process (PACStack-protected, small PAC width so the
    experiment terminates) is forked repeatedly; each child inherits the
    parent's PA keys, the adversary corrupts the child's chain slot with a
    guessed token and observes whether the child crashes. The pure-model
    statistics live in {!Pacstack_acs.Games}; this experiment demonstrates
    the same effect end-to-end through the kernel's fork and the real
    instrumentation. *)

type result = {
  pac_bits : int;
  trials : int;
  mean_guesses : float;  (** guesses until a forged return survives *)
  expected : float;  (** (2^b + 1) / 2 for enumerated guessing *)
}

val run : ?pac_bits:int -> ?trials:int -> ?seed:int64 -> unit -> result
(** Defaults: [pac_bits = 6], [trials = 20]. *)

val total_guesses : ?pac_bits:int -> trials:int -> Pacstack_util.Rng.t -> int
(** Shardable form of {!run}: the summed guess count over [trials]
    end-to-end attacks driven from the given generator. Shard totals add;
    divide by the summed trials for the campaign mean. *)
