module Word64 = Pacstack_util.Word64
module Machine = Pacstack_machine.Machine
module Scheme = Pacstack_harden.Scheme
module Compile = Pacstack_minic.Compile
module Scenarios = Pacstack_workloads.Scenarios
module Surface = Pacstack_harden.Surface

type strategy = Arbitrary_redirect | Sibling_reuse | Linear_overflow

exception Missing_evil_function of { symbol : string; scheme : Scheme.t }

let () =
  Printexc.register_printer (function
    | Missing_evil_function { symbol; scheme } ->
      Some
        (Printf.sprintf "Reuse.Missing_evil_function(victim has no %S under scheme %s)" symbol
           (Scheme.to_string scheme))
    | _ -> None)

let strategy_to_string = function
  | Arbitrary_redirect -> "arbitrary redirect"
  | Sibling_reuse -> "sibling PAC reuse"
  | Linear_overflow -> "linear buffer overflow"

let all_strategies = [ Arbitrary_redirect; Sibling_reuse; Linear_overflow ]

let rounds = 3

type loot = {
  mutable ret_value : Word64.t option;  (* a's stored return-address slot *)
  mutable chain_value : Word64.t option;  (* a's stored aret_{i-1} *)
  mutable shadow_value : Word64.t option;  (* a's shadow-stack entry *)
  mutable fired : bool;
}

let harvest m loot =
  if loot.ret_value = None then begin
    loot.ret_value <- Adversary.read m (Adversary.return_slot m);
    loot.chain_value <- Adversary.read m (Adversary.chain_slot m);
    loot.shadow_value <-
      Option.bind (Adversary.shadow_top_slot m) (fun slot -> Adversary.read m slot)
  end

let inject ~scheme ~strategy m loot =
  if not loot.fired then begin
    loot.fired <- true;
    let evil =
      match Adversary.symbol m "evil" with
      | Some a -> a
      | None -> raise (Missing_evil_function { symbol = "evil"; scheme })
    in
    let poke addr v = ignore (Adversary.write m addr v) in
    (* besides the saved LR, hit whatever extra word the scheme's
       epilogue derives the return target from *)
    let poke_control_slot v =
      match Surface.control_slot scheme with
      | Surface.Return_slot -> ()
      | Surface.Chain_slot -> Option.iter (fun x -> poke (Adversary.chain_slot m) x) v
      | Surface.Shadow_slot -> (
        match Adversary.shadow_top_slot m with
        | Some slot -> Option.iter (poke slot) v
        | None -> ())
    in
    match strategy with
    | Arbitrary_redirect ->
      poke (Adversary.return_slot m) evil;
      poke_control_slot (Some evil)
    | Sibling_reuse -> (
      Option.iter (poke (Adversary.return_slot m)) loot.ret_value;
      match Surface.control_slot scheme with
      | Surface.Return_slot -> ()
      | Surface.Chain_slot -> Option.iter (poke (Adversary.chain_slot m)) loot.chain_value
      | Surface.Shadow_slot -> (
        match Adversary.shadow_top_slot m with
        | Some slot -> Option.iter (poke slot) loot.shadow_value
        | None -> ()))
    | Linear_overflow ->
      (* a contiguous sled from below b's locals up through the frame
         record — trampling buffers, spill slots, the canary, the PACStack
         chain slot and the stored return address alike *)
      let fp = Adversary.frame_record m in
      let rec sled addr =
        if Int64.unsigned_compare addr (Int64.add fp 8L) <= 0 then begin
          poke addr evil;
          sled (Int64.add addr 8L)
        end
      in
      sled (Int64.sub fp 168L)
  end

let attack ~scheme ?(overrides = []) ?victim strategy =
  let victim = match victim with Some v -> v | None -> Scenarios.listing6 ~rounds in
  let expected = Adversary.benign_output scheme victim in
  let program = Compile.compile ~scheme ~overrides victim in
  let m = Machine.load program in
  let loot = { ret_value = None; chain_value = None; shadow_value = None; fired = false } in
  Machine.attach_hook m Scenarios.disclose_hook (fun m -> harvest m loot);
  Machine.attach_hook m Scenarios.overwrite_hook (fun m -> inject ~scheme ~strategy m loot);
  let outcome = Machine.run ~fuel:300_000 m in
  Adversary.classify ~expected m outcome

let matrix () =
  List.map
    (fun strategy ->
      (strategy, List.map (fun scheme -> (scheme, attack ~scheme strategy)) Scheme.all))
    all_strategies
