type event =
  | Campaign_started of {
      name : string;
      shards : int;
      trials : int;
      workers : int;
      resumed : int;
    }
  | Shard_started of { name : string; shard : Shard.t }
  | Shard_finished of {
      name : string;
      shard : Shard.t;
      elapsed_s : float;
      trials_per_sec : float;
      completed : int;
      total : int;
      eta_s : float;
    }
  | Shard_retried of { name : string; shard : Shard.t; attempt : int; error : string }
  | Shard_quarantined of { name : string; shard : Shard.t; attempts : int; error : string }
  | Pool_degraded of { name : string; live : int; deaths : int }
  | Campaign_finished of { name : string; elapsed_s : float; trials_per_sec : float }

type sink = event -> unit

let null _ = ()

let pp_event fmt = function
  | Campaign_started { name; shards; trials; workers; resumed } ->
    Format.fprintf fmt "[%s] started: %d shards, %d trials, %d worker%s%s" name shards trials
      workers
      (if workers = 1 then "" else "s")
      (if resumed = 0 then "" else Format.sprintf " (%d resumed from checkpoint)" resumed)
  | Shard_started { name; shard } -> Format.fprintf fmt "[%s] shard %a started" name Shard.pp shard
  | Shard_finished { name; shard; elapsed_s; trials_per_sec; completed; total; eta_s } ->
    Format.fprintf fmt "[%s] %d/%d %s: %.2fs (%.0f trials/s), ETA %.1fs" name completed total
      shard.Shard.label elapsed_s trials_per_sec eta_s
  | Shard_retried { name; shard; attempt; error } ->
    Format.fprintf fmt "[%s] shard %s failed attempt %d (%s), retrying" name shard.Shard.label
      attempt error
  | Shard_quarantined { name; shard; attempts; error } ->
    Format.fprintf fmt "[%s] shard %s QUARANTINED after %d attempts: %s" name shard.Shard.label
      attempts error
  | Pool_degraded { name; live; deaths } ->
    Format.fprintf fmt "[%s] pool degraded to %d live worker%s after %d abnormal child death%s"
      name live
      (if live = 1 then "" else "s")
      deaths
      (if deaths = 1 then "" else "s")
  | Campaign_finished { name; elapsed_s; trials_per_sec } ->
    Format.fprintf fmt "[%s] finished in %.2fs (%.0f trials/s)" name elapsed_s trials_per_sec

let formatter fmt = function
  | Shard_started _ -> ()
  | event -> Format.fprintf fmt "%a@." pp_event event

let synchronized sink =
  let m = Mutex.create () in
  fun event ->
    Mutex.lock m;
    Fun.protect ~finally:(fun () -> Mutex.unlock m) (fun () -> sink event)
