(** Crash-safe campaign manifests: resume without recomputing.

    A manifest is a JSON-lines file. The first line is a header binding
    the file to one campaign identity — name, seed and shard count:

    {v
    {"version":1,"campaign":"table1","seed":"1","shards":48}
    {"shard":3,"label":"on-graph/unmasked#4","trials":2500,"result":{...}}
    v}

    Each subsequent line records one completed shard; lines are appended
    and flushed as shards finish, in completion order (which is why shard
    records carry their index). Because shard results are pure functions
    of the campaign seed and shard index, a resumed campaign that loads
    finished shards from the manifest and recomputes only the rest is
    identical to an uninterrupted run. A trailing partial line (the
    process died mid-write) is ignored on load.

    {2 Hierarchical compaction}

    A 10^5+-shard mega-campaign would otherwise accumulate 10^5+ shard
    lines, making every resume O(shards-so-far) in parse time and disk.
    With a {!compaction} policy, once more than [keep] uncompacted shard
    lines exist the manifest is rewritten — atomically, via a temp file
    and [Sys.rename] — as the header plus a single merged-statistics
    line per generation:

    {v
    {"merged":true,"generation":7,"covered":[[0,4096]],"result":{...}}
    v}

    [covered] lists the shard-index ranges folded into the merged result;
    those shards are restored as "done" on resume but their individual
    results are no longer recoverable. The merge function must be
    associative and commutative, because a compacted resume folds results
    in coverage order rather than completion order. *)

type 'r codec = {
  encode : 'r -> Json.t;
  decode : Json.t -> 'r option;  (** [None] rejects a malformed record *)
}

type 'r compaction = {
  merge : 'r -> 'r -> 'r;  (** must be associative and commutative *)
  keep : int;  (** max uncompacted shard lines before a rewrite; >= 1 *)
}

type 'r restored = {
  results : 'r option array;  (** per-shard results still present as lines *)
  merged : 'r option;  (** fold of every compacted-away shard result *)
  covered : bool array;  (** [covered.(i)]: shard [i] is inside [merged] *)
  generation : int;  (** compaction generation restored from the file *)
}

type 'r file

exception
  Stale_manifest of { path : string; expected : string; found : string }
(** The manifest at [path] exists but its header binds a different
    campaign identity. [expected] and [found] are the serialized header
    objects, so the message shows exactly which of campaign name, seed or
    shard count diverged. A registered printer renders all three. *)

val open_ :
  path:string ->
  codec:'r codec ->
  ?compaction:'r compaction ->
  'r Plan.t ->
  'r file * 'r restored
(** Opens (creating if absent) the manifest at [path] for the given plan
    and returns the handle plus previously completed work: per-shard
    results, plus the merged blob and coverage map when the file was
    compacted. Raises {!Stale_manifest} if the file exists but its header
    names a different campaign, seed or shard count — a stale manifest is
    an operator error, not something to silently recompute over — and
    [Failure] if the header line is unreadable. Raises
    [Invalid_argument] if [compaction.keep < 1]. *)

val record : 'r file -> Shard.t -> 'r -> unit
(** Appends one completed-shard line and flushes; under a compaction
    policy, triggers an atomic rewrite when the uncompacted line count
    reaches [keep]. Safe to call from any domain (internally
    serialized). *)

val quarantine : 'r file -> Shard.t -> attempts:int -> error:string -> unit
(** Appends an informational line recording that the shard failed all its
    retry attempts. Quarantine lines carry no result, so a resumed
    campaign re-runs the shard rather than restoring its failure;
    compaction rewrites preserve them as history. *)

val close : 'r file -> unit

val flush_all : unit -> unit
(** Flushes every manifest currently open in the process — what a
    SIGINT/SIGTERM handler calls so an interrupted campaign is always
    resumable from its last completed shard. Safe to call from any
    domain and from a signal handler. *)
