(** Crash-safe campaign manifests: resume without recomputing.

    A manifest is a JSON-lines file. The first line is a header binding
    the file to one campaign identity — name, seed and shard count:

    {v
    {"version":1,"campaign":"table1","seed":"1","shards":48}
    {"shard":3,"label":"on-graph/unmasked#4","trials":2500,"elapsed_s":0.71,"result":{...}}
    v}

    Each subsequent line records one completed shard; lines are appended
    and flushed as shards finish, in completion order (which is why shard
    records carry their index). Because shard results are pure functions
    of the campaign seed and shard index, a resumed campaign that loads
    finished shards from the manifest and recomputes only the rest is
    identical to an uninterrupted run. A trailing partial line (the
    process died mid-write) is ignored on load. *)

type 'r codec = {
  encode : 'r -> Json.t;
  decode : Json.t -> 'r option;  (** [None] rejects a malformed record *)
}

type 'r file

val open_ : path:string -> codec:'r codec -> 'r Plan.t -> 'r file * 'r option array
(** Opens (creating if absent) the manifest at [path] for the given plan
    and returns the handle plus previously completed results indexed by
    shard. Raises [Failure] if the file exists but its header names a
    different campaign, seed or shard count — a stale manifest is an
    operator error, not something to silently recompute over. *)

val record : 'r file -> Shard.t -> 'r -> unit
(** Appends one completed-shard line and flushes. Safe to call from any
    domain (internally serialized). *)

val quarantine : 'r file -> Shard.t -> attempts:int -> error:string -> unit
(** Appends an informational line recording that the shard failed all its
    retry attempts. Quarantine lines carry no result, so a resumed
    campaign re-runs the shard rather than restoring its failure. *)

val close : 'r file -> unit

val flush_all : unit -> unit
(** Flushes every manifest currently open in the process — what a
    SIGINT/SIGTERM handler calls so an interrupted campaign is always
    resumable from its last completed shard. Safe to call from any
    domain and from a signal handler. *)
