(** Structured progress events emitted while a campaign executes.

    Events are values, not log lines: a sink can render them, ship them to
    a dashboard, or drop them. Workers emit from their own domains, so
    sinks handed to a multi-worker campaign are wrapped with
    {!synchronized} by the engine. *)

type event =
  | Campaign_started of {
      name : string;
      shards : int;
      trials : int;  (** total work units across all shards *)
      workers : int;
      resumed : int;  (** shards restored from a checkpoint, not re-run *)
    }
  | Shard_started of { name : string; shard : Shard.t }
  | Shard_finished of {
      name : string;
      shard : Shard.t;
      elapsed_s : float;  (** wall-clock seconds for this shard *)
      trials_per_sec : float;  (** this shard's own rate *)
      completed : int;  (** shards finished so far, including resumed *)
      total : int;  (** shards in the plan *)
      eta_s : float;  (** estimated wall-clock seconds to completion *)
    }
  | Shard_retried of {
      name : string;
      shard : Shard.t;
      attempt : int;  (** the attempt (1-based) that just failed *)
      error : string;
    }
  | Shard_quarantined of {
      name : string;
      shard : Shard.t;
      attempts : int;  (** attempts made, all failed *)
      error : string;  (** the last attempt's exception *)
    }
  | Pool_degraded of {
      name : string;
      live : int;  (** workers still allowed to run after the degradation *)
      deaths : int;  (** abnormal child deaths (signals, timeouts) so far *)
    }
      (** Only emitted by the process-isolation executor: a child died
          abnormally (crash, OOM kill, wall-clock timeout) and the pool
          shrank its concurrency rather than keep feeding a bad machine. *)
  | Campaign_finished of {
      name : string;
      elapsed_s : float;
      trials_per_sec : float;  (** aggregate rate over executed trials *)
    }

type sink = event -> unit

val null : sink

val formatter : Format.formatter -> sink
(** Renders campaign start/finish and per-shard completion lines;
    [Shard_started] is intentionally silent to keep output one line per
    unit of completed work. *)

val synchronized : sink -> sink
(** Serializes calls through a mutex so a sink written for one domain can
    be driven from many. *)

val pp_event : Format.formatter -> event -> unit
