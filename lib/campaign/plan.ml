type 'r t = {
  name : string;
  seed : int64;
  shards : Shard.t array;
  run : Shard.t -> Pacstack_util.Rng.t -> 'r;
}

let make ~name ~seed ~shards ~run =
  let count = Array.length shards in
  if count = 0 then invalid_arg "Plan.make: empty shard list";
  let shards =
    Array.mapi
      (fun index (label, trials) ->
        if trials <= 0 then invalid_arg "Plan.make: non-positive shard trials";
        { Shard.index; count; label; trials })
      shards
  in
  { name; seed; shards; run }

let shard_count t = Array.length t.shards

let total_trials t = Array.fold_left (fun acc s -> acc + s.Shard.trials) 0 t.shards

let split_trials ~trials ~shards =
  if shards < 1 || trials < shards then invalid_arg "Plan.split_trials";
  let base = trials / shards and extra = trials mod shards in
  Array.init shards (fun i -> base + if i < extra then 1 else 0)
