(** One independent unit of campaign work and its seed discipline.

    A shard is identified by its index within a plan; its generator is
    derived from the campaign seed and that index alone, never from
    execution order. That makes a parallel run of a plan bitwise-identical
    to a sequential run: whichever domain picks up shard [i], and whenever
    it runs, shard [i] draws exactly the stream
    [(Rng.split_n (Rng.create seed) count).(i)]. *)

type t = {
  index : int;  (** position within the plan, [0 <= index < count] *)
  count : int;  (** total number of shards in the plan *)
  label : string;  (** human-readable name, e.g. ["on-graph/masked#3"] *)
  trials : int;  (** work units in this shard (drives progress/ETA) *)
}

val rng : campaign_seed:int64 -> t -> Pacstack_util.Rng.t
(** The shard's private generator, a pure function of
    [(campaign_seed, index, count)]. *)

val pp : Format.formatter -> t -> unit
