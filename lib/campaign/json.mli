(** A minimal JSON value type with a printer and a parser, used for the
    campaign checkpoint manifest and the CLI's [--json] result export.

    Deliberately tiny: no streaming, no Unicode escapes beyond [\uXXXX]
    pass-through on input, integers kept exact (separate from floats) so
    trial counters and 64-bit seeds survive a write/read round trip. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

val to_string : t -> string
(** Compact one-line rendering (canonical for checkpoint lines).
    Non-finite [Float]s (nan, ±infinity) render as [null] — JSON has no
    literal for them, and anything else would produce a document that
    {!parse} itself rejects. The encode→decode round trip is therefore
    lossy exactly there: [Float nan] comes back as [Null]. *)

val pp : Format.formatter -> t -> unit

val parse : string -> (t, string) result
(** Parses one JSON value; trailing non-whitespace is an error. Numbers
    without [.], [e] or [E] parse as [Int], everything else as [Float]. *)

(** {1 Accessors} — total functions returning [option]. *)

val member : string -> t -> t option
(** First binding of the key in an [Obj]; [None] otherwise. *)

val to_int : t -> int option
(** [Int n] gives [Some n]; other constructors give [None]. *)

val to_float : t -> float option
(** [Float] or [Int] (widened); [None] otherwise. *)

val to_str : t -> string option
val to_list : t -> t list option
val to_bool : t -> bool option
