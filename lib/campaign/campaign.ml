type isolation = Domains | Processes

type policy = {
  retries : int;
  backoff_s : int -> float;
  shard_fuel : int option;
  fail_fast : bool;
  isolation : isolation;
  shard_timeout_s : float option;
}

let default_policy =
  {
    retries = 2;
    (* deterministic exponential backoff: 5ms, 10ms, 20ms, ... — long
       enough to step over a transient (fd pressure, allocator spike),
       short enough that a deterministic failure costs milliseconds *)
    backoff_s = (fun attempt -> 0.005 *. float_of_int (1 lsl (attempt - 1)));
    shard_fuel = None;
    fail_fast = false;
    isolation = Domains;
    shard_timeout_s = None;
  }

type quarantine = {
  shard : int;
  label : string;
  attempts : int;
  error : string;
  backtrace : string;
}

type 'r outcome = {
  plan_name : string;
  seed : int64;
  results : 'r option array;
  merged : 'r option;
  quarantined : quarantine list;
  elapsed_s : float;
  resumed : int;
  workers : int;
}

let results_exn outcome =
  if Option.is_some outcome.merged then
    failwith
      (Printf.sprintf
         "Campaign %s: results were compacted into a merged statistic; per-shard \
          results are unavailable (use fold)"
         outcome.plan_name);
  match outcome.quarantined with
  | [] -> Array.map Option.get outcome.results
  | qs ->
    let detail =
      String.concat "; "
        (List.map (fun q -> Printf.sprintf "shard %d (%s): %s" q.shard q.label q.error) qs)
    in
    failwith
      (Printf.sprintf "Campaign %s: %d shard(s) quarantined: %s" outcome.plan_name
         (List.length qs) detail)

(* Run one shard attempt under the watchdog budget (if any). The rng is
   re-derived per attempt from (campaign seed, shard index) alone, so a
   retry that succeeds produces the same result a first-attempt success
   would have: crash tolerance never changes campaign results. *)
let attempt_shard policy (plan : 'r Plan.t) (shard : Shard.t) =
  let body () = plan.Plan.run shard (Shard.rng ~campaign_seed:plan.Plan.seed shard) in
  match policy.shard_fuel with
  | None -> body ()
  | Some fuel -> Watchdog.with_budget fuel body

(* Test hook for the crash-isolation path: when the named shard runs its
   first attempt inside a forked child, the child SIGKILLs itself —
   CI and the e2e tests use this to prove a dead worker costs one retry,
   not the campaign. A no-op except under the env var. *)
let test_kill_hook (shard : Shard.t) ~attempt =
  if attempt = 1 then
    match Sys.getenv_opt "PACSTACK_TEST_KILL_SHARD" with
    | Some v when int_of_string_opt v = Some shard.Shard.index ->
      Unix.kill (Unix.getpid ()) Sys.sigkill
    | _ -> ()

let run ?(workers = 1) ?(progress = Progress.null) ?checkpoint ?compaction
    ?(policy = default_policy) (plan : 'r Plan.t) =
  if workers < 1 then invalid_arg "Campaign.run: workers < 1";
  if policy.retries < 0 then invalid_arg "Campaign.run: retries < 0";
  (match policy.shard_timeout_s with
  | Some t when t <= 0.0 -> invalid_arg "Campaign.run: shard_timeout_s <= 0"
  | _ -> ());
  let total = Plan.shard_count plan in
  let manifest, prior, merged_prior, covered =
    match checkpoint with
    | None -> (None, Array.make total None, None, Array.make total false)
    | Some (path, codec) ->
      let file, restored = Checkpoint.open_ ~path ~codec ?compaction plan in
      ( Some file,
        restored.Checkpoint.results,
        restored.Checkpoint.merged,
        restored.Checkpoint.covered )
  in
  let done_already i = prior.(i) <> None || covered.(i) in
  let resumed =
    let n = ref 0 in
    Array.iteri (fun i _ -> if done_already i then incr n) prior;
    !n
  in
  let pending =
    Array.of_list
      (List.filter (fun i -> not (done_already i)) (List.init total (fun i -> i)))
  in
  let progress = if workers > 1 then Progress.synchronized progress else progress in
  let trials_total = Plan.total_trials plan in
  let trials_resumed =
    Array.fold_left
      (fun n (s : Shard.t) -> if done_already s.Shard.index then n + s.Shard.trials else n)
      0 plan.Plan.shards
  in
  progress
    (Progress.Campaign_started
       { name = plan.Plan.name; shards = total; trials = trials_total; workers; resumed });
  let t0 = Unix.gettimeofday () in
  let shards_done = Atomic.make resumed in
  let trials_done = Atomic.make 0 in
  (* Success bookkeeping shared by both executors: checkpoint the result
     and emit the Shard_finished event with rate/ETA. *)
  let finish_shard (shard : Shard.t) result ~elapsed_s =
    Option.iter (fun file -> Checkpoint.record file shard result) manifest;
    let completed = 1 + Atomic.fetch_and_add shards_done 1 in
    let executed = shard.Shard.trials + Atomic.fetch_and_add trials_done shard.Shard.trials in
    let wall = Unix.gettimeofday () -. t0 in
    let rate = float_of_int executed /. Float.max wall 1e-9 in
    let remaining = trials_total - trials_resumed - executed in
    progress
      (Progress.Shard_finished
         {
           name = plan.Plan.name;
           shard;
           elapsed_s;
           trials_per_sec = float_of_int shard.Shard.trials /. Float.max elapsed_s 1e-9;
           completed;
           total;
           eta_s = float_of_int remaining /. Float.max rate 1e-9;
         })
  in
  (* Domain executor: shards run in-process on a domain pool; the retry
     loop lives here because an in-process attempt fails by raising. *)
  let run_one k =
    let shard = plan.Plan.shards.(pending.(k)) in
    progress (Progress.Shard_started { name = plan.Plan.name; shard });
    let s0 = Unix.gettimeofday () in
    let rec attempt n =
      (* n is 1-based; policy.retries extra attempts follow the first *)
      match attempt_shard policy plan shard with
      | result -> Either.Left result
      | exception exn ->
        let backtrace = Printexc.get_backtrace () in
        if policy.fail_fast then raise exn
        else if n <= policy.retries then begin
          progress
            (Progress.Shard_retried
               { name = plan.Plan.name; shard; attempt = n; error = Printexc.to_string exn });
          Unix.sleepf (policy.backoff_s n);
          attempt (n + 1)
        end
        else begin
          let error = Printexc.to_string exn in
          progress
            (Progress.Shard_quarantined
               { name = plan.Plan.name; shard; attempts = n; error });
          Option.iter (fun file -> Checkpoint.quarantine file shard ~attempts:n ~error) manifest;
          Either.Right
            { shard = shard.Shard.index; label = shard.Shard.label; attempts = n; error;
              backtrace }
        end
    in
    match attempt 1 with
    | Either.Right _ as q -> q
    | Either.Left result as r ->
      finish_shard shard result ~elapsed_s:(Unix.gettimeofday () -. s0);
      r
  in
  (* Process executor: each attempt in a forked child, the retry/backoff
     state machine in Procpool's event loop, all bookkeeping callbacks in
     this (single-threaded) parent. *)
  let run_processes () =
    let shard_of task = plan.Plan.shards.(pending.(task)) in
    let body ~task ~attempt =
      let shard = shard_of task in
      test_kill_hook shard ~attempt;
      attempt_shard policy plan shard
    in
    Procpool.run ~workers ?timeout_s:policy.shard_timeout_s ~retries:policy.retries
      ~backoff_s:policy.backoff_s ~fail_fast:policy.fail_fast
      ~on_start:(fun ~task ->
        progress (Progress.Shard_started { name = plan.Plan.name; shard = shard_of task }))
      ~on_result:(fun ~task ~elapsed_s result ->
        finish_shard (shard_of task) result ~elapsed_s)
      ~on_retry:(fun ~task ~attempt ~error ->
        progress
          (Progress.Shard_retried { name = plan.Plan.name; shard = shard_of task; attempt; error }))
      ~on_give_up:(fun ~task ~attempts ~error ->
        let shard = shard_of task in
        progress
          (Progress.Shard_quarantined { name = plan.Plan.name; shard; attempts; error });
        Option.iter (fun file -> Checkpoint.quarantine file shard ~attempts ~error) manifest)
      ~on_degrade:(fun ~live ~deaths ->
        progress (Progress.Pool_degraded { name = plan.Plan.name; live; deaths }))
      ~tasks:(Array.length pending) body
    |> Array.mapi (fun k -> function
         | Procpool.Done r -> Either.Left r
         | Procpool.Gave_up { attempts; error } ->
           let shard = shard_of k in
           Either.Right
             { shard = shard.Shard.index; label = shard.Shard.label; attempts; error;
               backtrace = "" })
  in
  let fresh =
    match policy.isolation with
    | Domains -> Pool.run ~workers ~tasks:(Array.length pending) run_one
    | Processes -> run_processes ()
  in
  Option.iter Checkpoint.close manifest;
  let elapsed_s = Unix.gettimeofday () -. t0 in
  let quarantined = ref [] in
  Array.iteri
    (fun k -> function
      | Either.Left r -> prior.(pending.(k)) <- Some r
      | Either.Right q -> quarantined := q :: !quarantined)
    fresh;
  let quarantined = List.sort (fun a b -> compare a.shard b.shard) !quarantined in
  progress
    (Progress.Campaign_finished
       {
         name = plan.Plan.name;
         elapsed_s;
         trials_per_sec = float_of_int (Atomic.get trials_done) /. Float.max elapsed_s 1e-9;
       });
  { plan_name = plan.Plan.name; seed = plan.Plan.seed; results = prior;
    merged = merged_prior; quarantined; elapsed_s; resumed; workers }

let fold outcome ~init ~f =
  let init = match outcome.merged with None -> init | Some m -> f init m in
  Array.fold_left (fun acc -> function None -> acc | Some r -> f acc r) init outcome.results
