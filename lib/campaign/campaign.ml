type 'r outcome = {
  plan_name : string;
  seed : int64;
  results : 'r array;
  elapsed_s : float;
  resumed : int;
  workers : int;
}

let run ?(workers = 1) ?(progress = Progress.null) ?checkpoint (plan : 'r Plan.t) =
  if workers < 1 then invalid_arg "Campaign.run: workers < 1";
  let total = Plan.shard_count plan in
  let manifest, prior =
    match checkpoint with
    | None -> (None, Array.make total None)
    | Some (path, codec) ->
      let file, prior = Checkpoint.open_ ~path ~codec plan in
      (Some file, prior)
  in
  let resumed = Array.fold_left (fun n r -> if r = None then n else n + 1) 0 prior in
  let pending =
    Array.of_list
      (List.filter (fun i -> prior.(i) = None) (List.init total (fun i -> i)))
  in
  let progress = if workers > 1 then Progress.synchronized progress else progress in
  let trials_total = Plan.total_trials plan in
  let trials_resumed =
    Array.fold_left
      (fun n (s : Shard.t) -> if prior.(s.Shard.index) <> None then n + s.Shard.trials else n)
      0 plan.Plan.shards
  in
  progress
    (Progress.Campaign_started
       { name = plan.Plan.name; shards = total; trials = trials_total; workers; resumed });
  let t0 = Unix.gettimeofday () in
  let shards_done = Atomic.make resumed in
  let trials_done = Atomic.make 0 in
  let run_one k =
    let shard = plan.Plan.shards.(pending.(k)) in
    progress (Progress.Shard_started { name = plan.Plan.name; shard });
    let s0 = Unix.gettimeofday () in
    let result = plan.Plan.run shard (Shard.rng ~campaign_seed:plan.Plan.seed shard) in
    let elapsed_s = Unix.gettimeofday () -. s0 in
    Option.iter (fun file -> Checkpoint.record file shard result) manifest;
    let completed = 1 + Atomic.fetch_and_add shards_done 1 in
    let executed = shard.Shard.trials + Atomic.fetch_and_add trials_done shard.Shard.trials in
    let wall = Unix.gettimeofday () -. t0 in
    let rate = float_of_int executed /. Float.max wall 1e-9 in
    let remaining = trials_total - trials_resumed - executed in
    progress
      (Progress.Shard_finished
         {
           name = plan.Plan.name;
           shard;
           elapsed_s;
           trials_per_sec = float_of_int shard.Shard.trials /. Float.max elapsed_s 1e-9;
           completed;
           total;
           eta_s = float_of_int remaining /. Float.max rate 1e-9;
         });
    result
  in
  let fresh = Pool.run ~workers ~tasks:(Array.length pending) run_one in
  Option.iter Checkpoint.close manifest;
  let elapsed_s = Unix.gettimeofday () -. t0 in
  Array.iteri (fun k r -> prior.(pending.(k)) <- Some r) fresh;
  let results = Array.map Option.get prior in
  progress
    (Progress.Campaign_finished
       {
         name = plan.Plan.name;
         elapsed_s;
         trials_per_sec = float_of_int (Atomic.get trials_done) /. Float.max elapsed_s 1e-9;
       });
  { plan_name = plan.Plan.name; seed = plan.Plan.seed; results; elapsed_s; resumed; workers }

let fold outcome ~init ~f = Array.fold_left f init outcome.results
