type policy = {
  retries : int;
  backoff_s : int -> float;
  shard_fuel : int option;
  fail_fast : bool;
}

let default_policy =
  {
    retries = 2;
    (* deterministic exponential backoff: 5ms, 10ms, 20ms, ... — long
       enough to step over a transient (fd pressure, allocator spike),
       short enough that a deterministic failure costs milliseconds *)
    backoff_s = (fun attempt -> 0.005 *. float_of_int (1 lsl (attempt - 1)));
    shard_fuel = None;
    fail_fast = false;
  }

type quarantine = {
  shard : int;
  label : string;
  attempts : int;
  error : string;
  backtrace : string;
}

type 'r outcome = {
  plan_name : string;
  seed : int64;
  results : 'r option array;
  quarantined : quarantine list;
  elapsed_s : float;
  resumed : int;
  workers : int;
}

let results_exn outcome =
  match outcome.quarantined with
  | [] -> Array.map Option.get outcome.results
  | qs ->
    let detail =
      String.concat "; "
        (List.map (fun q -> Printf.sprintf "shard %d (%s): %s" q.shard q.label q.error) qs)
    in
    failwith
      (Printf.sprintf "Campaign %s: %d shard(s) quarantined: %s" outcome.plan_name
         (List.length qs) detail)

(* Run one shard attempt under the watchdog budget (if any). The rng is
   re-derived per attempt from (campaign seed, shard index) alone, so a
   retry that succeeds produces the same result a first-attempt success
   would have: crash tolerance never changes campaign results. *)
let attempt_shard policy (plan : 'r Plan.t) (shard : Shard.t) =
  let body () = plan.Plan.run shard (Shard.rng ~campaign_seed:plan.Plan.seed shard) in
  match policy.shard_fuel with
  | None -> body ()
  | Some fuel -> Watchdog.with_budget fuel body

let run ?(workers = 1) ?(progress = Progress.null) ?checkpoint ?(policy = default_policy)
    (plan : 'r Plan.t) =
  if workers < 1 then invalid_arg "Campaign.run: workers < 1";
  if policy.retries < 0 then invalid_arg "Campaign.run: retries < 0";
  let total = Plan.shard_count plan in
  let manifest, prior =
    match checkpoint with
    | None -> (None, Array.make total None)
    | Some (path, codec) ->
      let file, prior = Checkpoint.open_ ~path ~codec plan in
      (Some file, prior)
  in
  let resumed = Array.fold_left (fun n r -> if r = None then n else n + 1) 0 prior in
  let pending =
    Array.of_list
      (List.filter (fun i -> prior.(i) = None) (List.init total (fun i -> i)))
  in
  let progress = if workers > 1 then Progress.synchronized progress else progress in
  let trials_total = Plan.total_trials plan in
  let trials_resumed =
    Array.fold_left
      (fun n (s : Shard.t) -> if prior.(s.Shard.index) <> None then n + s.Shard.trials else n)
      0 plan.Plan.shards
  in
  progress
    (Progress.Campaign_started
       { name = plan.Plan.name; shards = total; trials = trials_total; workers; resumed });
  let t0 = Unix.gettimeofday () in
  let shards_done = Atomic.make resumed in
  let trials_done = Atomic.make 0 in
  let run_one k =
    let shard = plan.Plan.shards.(pending.(k)) in
    progress (Progress.Shard_started { name = plan.Plan.name; shard });
    let s0 = Unix.gettimeofday () in
    let rec attempt n =
      (* n is 1-based; policy.retries extra attempts follow the first *)
      match attempt_shard policy plan shard with
      | result -> Either.Left result
      | exception exn ->
        let backtrace = Printexc.get_backtrace () in
        if policy.fail_fast then raise exn
        else if n <= policy.retries then begin
          progress
            (Progress.Shard_retried
               { name = plan.Plan.name; shard; attempt = n; error = Printexc.to_string exn });
          Unix.sleepf (policy.backoff_s n);
          attempt (n + 1)
        end
        else begin
          let error = Printexc.to_string exn in
          progress
            (Progress.Shard_quarantined
               { name = plan.Plan.name; shard; attempts = n; error });
          Option.iter (fun file -> Checkpoint.quarantine file shard ~attempts:n ~error) manifest;
          Either.Right
            { shard = shard.Shard.index; label = shard.Shard.label; attempts = n; error;
              backtrace }
        end
    in
    match attempt 1 with
    | Either.Right _ as q -> q
    | Either.Left result as r ->
      Option.iter (fun file -> Checkpoint.record file shard result) manifest;
      let completed = 1 + Atomic.fetch_and_add shards_done 1 in
      let executed = shard.Shard.trials + Atomic.fetch_and_add trials_done shard.Shard.trials in
      let wall = Unix.gettimeofday () -. t0 in
      let rate = float_of_int executed /. Float.max wall 1e-9 in
      let remaining = trials_total - trials_resumed - executed in
      progress
        (Progress.Shard_finished
           {
             name = plan.Plan.name;
             shard;
             elapsed_s = Unix.gettimeofday () -. s0;
             trials_per_sec = float_of_int shard.Shard.trials /. Float.max (Unix.gettimeofday () -. s0) 1e-9;
             completed;
             total;
             eta_s = float_of_int remaining /. Float.max rate 1e-9;
           });
      r
  in
  let fresh = Pool.run ~workers ~tasks:(Array.length pending) run_one in
  Option.iter Checkpoint.close manifest;
  let elapsed_s = Unix.gettimeofday () -. t0 in
  let quarantined = ref [] in
  Array.iteri
    (fun k -> function
      | Either.Left r -> prior.(pending.(k)) <- Some r
      | Either.Right q -> quarantined := q :: !quarantined)
    fresh;
  let quarantined = List.sort (fun a b -> compare a.shard b.shard) !quarantined in
  progress
    (Progress.Campaign_finished
       {
         name = plan.Plan.name;
         elapsed_s;
         trials_per_sec = float_of_int (Atomic.get trials_done) /. Float.max elapsed_s 1e-9;
       });
  { plan_name = plan.Plan.name; seed = plan.Plan.seed; results = prior; quarantined;
    elapsed_s; resumed; workers }

let fold outcome ~init ~f =
  Array.fold_left (fun acc -> function None -> acc | Some r -> f acc r) init outcome.results
