(** Fuel-based per-shard timeout watchdog.

    Deterministic replacement for a wall-clock timeout: the shard body
    reports work units by calling {!tick}, and once the installed budget
    is exhausted {!Exhausted} is raised — after exactly the same amount
    of work on every machine and at every worker count, so a
    shard that runs away is quarantined reproducibly.

    {!Campaign.run} installs the budget from its policy around each
    shard attempt; plan code only ever calls {!tick}. Outside any
    installed budget, ticks are free no-ops, so instrumented plans run
    unchanged when no watchdog is configured. *)

exception Exhausted of { budget : int }

val with_budget : int -> (unit -> 'a) -> 'a
(** [with_budget n f] runs [f ()] with a fresh fuel budget of [n] ticks
    on the current domain, restoring the previous budget (if any) when
    [f] returns or raises. Raises [Invalid_argument] if [n < 1]. *)

val tick : ?cost:int -> unit -> unit
(** Consumes [cost] (default 1) units of the innermost installed budget;
    raises {!Exhausted} once the budget goes negative. No-op when no
    budget is installed. *)

val remaining : unit -> int option
(** Fuel left in the installed budget, [None] outside {!with_budget}. *)
