(** The campaign engine: executes a {!Plan} on a {!Pool} of domains with
    optional checkpoint/resume and structured {!Progress} events.

    Determinism contract: for a fixed plan (name, seed, shards), the
    [results] array is identical whatever [workers] is, whether or not the
    run was interrupted and resumed, and in what order shards happened to
    finish — every shard's generator is derived from the campaign seed
    and its index only (see {!Shard.rng}), and results are reported in
    shard-index order. *)

type 'r outcome = {
  plan_name : string;
  seed : int64;
  results : 'r array;  (** one result per shard, in shard-index order *)
  elapsed_s : float;  (** wall-clock for this run (resumed shards cost 0) *)
  resumed : int;  (** shards restored from the checkpoint manifest *)
  workers : int;
}

val run :
  ?workers:int ->
  ?progress:Progress.sink ->
  ?checkpoint:string * 'r Checkpoint.codec ->
  'r Plan.t ->
  'r outcome
(** [run plan] executes every shard of [plan] and returns the merged
    outcome.

    [workers] defaults to [1]: sequential, in the calling domain, no
    parallelism anywhere — the mode reports use by default so their
    output is reproducible on any machine. With [workers > 1] shards are
    distributed over an OCaml 5 domain pool.

    [checkpoint] gives a manifest path and a result codec: previously
    completed shards are loaded instead of re-run, and each newly
    finished shard is appended and flushed, so killing the process loses
    at most the shards in flight. Raises [Failure] if the manifest at the
    path belongs to a different campaign.

    [progress] receives structured events; it is synchronized
    automatically when [workers > 1]. *)

val fold : 'r outcome -> init:'a -> f:('a -> 'r -> 'a) -> 'a
(** Folds over per-shard results in shard-index order — the merge step.
    Any associative [f] therefore gives an order-independent total. *)
