(** The campaign engine: executes a {!Plan} on a pool of domains or of
    forked worker processes, with optional checkpoint/resume, crash
    tolerance and structured {!Progress} events.

    Determinism contract: for a fixed plan (name, seed, shards), the
    aggregated results are identical whatever [workers] is, whichever
    {!isolation} executor ran them, whether or not the run was
    interrupted and resumed, and in what order shards happened to
    finish — every shard's generator is derived from the campaign seed
    and its index only (see {!Shard.rng}), and results are reported in
    shard-index order. Retries re-derive the same generator, so a shard
    that succeeds on attempt 3 returns exactly what a first-attempt
    success would have. *)

type isolation =
  | Domains
      (** shards share the address space on an OCaml 5 domain pool —
          cheapest, but a segfault or OOM kill ends the campaign *)
  | Processes
      (** each shard attempt runs in a forked child ({!Procpool}): a
          crashed, killed or hung shard is an isolated retryable
          failure, and repeated abnormal deaths shrink concurrency
          instead of crashing the run. Shard results must be
          marshallable (plain data). *)

type policy = {
  retries : int;  (** extra attempts per shard after the first *)
  backoff_s : int -> float;
      (** seconds to sleep before retry [n] (1-based). Must be a pure
          function of its argument for the deterministic-backoff
          guarantee. *)
  shard_fuel : int option;
      (** {!Watchdog} budget installed around each attempt; [None]
          disables the watchdog *)
  fail_fast : bool;
      (** abort the whole campaign on the first shard failure (the
          pre-quarantine behaviour): the failure propagates as
          {!Pool.Task_failed} under [Domains] and
          {!Procpool.Task_failed} under [Processes]. Completed shards
          are still checkpointed. *)
  isolation : isolation;  (** which executor runs the shards *)
  shard_timeout_s : float option;
      (** wall-clock deadline per shard attempt, enforced by SIGKILL —
          only meaningful under [Processes] (the in-process executor
          relies on [shard_fuel], which is deterministic). *)
}

val default_policy : policy
(** Tolerant: 2 retries with 5ms/10ms exponential backoff, no watchdog,
    no fail-fast, [Domains] isolation, no wall-clock timeout. *)

type quarantine = {
  shard : int;  (** shard index in the plan *)
  label : string;
  attempts : int;  (** attempts made, all failed *)
  error : string;  (** the last attempt's exception, printed *)
  backtrace : string;  (** empty under [Processes] (it died elsewhere) *)
}

type 'r outcome = {
  plan_name : string;
  seed : int64;
  results : 'r option array;
      (** one entry per shard in shard-index order; [None] marks a
          quarantined shard or one folded into [merged] *)
  merged : 'r option;
      (** fold of shards restored from a compacted checkpoint; their
          individual entries in [results] are [None]. [None] unless the
          run resumed from a compacted manifest. *)
  quarantined : quarantine list;  (** in shard-index order; [] normally *)
  elapsed_s : float;  (** wall-clock for this run (resumed shards cost 0) *)
  resumed : int;  (** shards restored from the checkpoint manifest *)
  workers : int;
}

val results_exn : 'r outcome -> 'r array
(** The plain results array for callers that cannot tolerate a missing
    shard; raises [Failure] naming every quarantined shard, or stating
    that results were compacted away ([merged] is [Some]) — use {!fold}
    for aggregate statistics. *)

val run :
  ?workers:int ->
  ?progress:Progress.sink ->
  ?checkpoint:string * 'r Checkpoint.codec ->
  ?compaction:'r Checkpoint.compaction ->
  ?policy:policy ->
  'r Plan.t ->
  'r outcome
(** [run plan] executes every shard of [plan] and returns the merged
    outcome.

    [workers] defaults to [1]: sequential, in the calling domain, no
    parallelism anywhere — the mode reports use by default so their
    output is reproducible on any machine. With [workers > 1] shards are
    distributed over an OCaml 5 domain pool, or over forked worker
    processes when [policy.isolation = Processes].

    [checkpoint] gives a manifest path and a result codec: previously
    completed shards are loaded instead of re-run, and each newly
    finished shard is appended and flushed, so killing the process loses
    at most the shards in flight. Raises {!Checkpoint.Stale_manifest} if
    the manifest at the path belongs to a different campaign.
    [compaction] (requires [checkpoint]) bounds manifest size: see
    {!Checkpoint.compaction}. Results folded into a compacted manifest
    come back through [merged], so downstream aggregation must go
    through {!fold} with an associative, commutative merge.

    [policy] (default {!default_policy}) controls crash tolerance: a
    shard attempt that fails — raising in-process, or dying to a
    signal/OOM/timeout under [Processes] — is retried after a
    deterministic backoff, and after [retries] failed retries the shard
    is quarantined: recorded in the manifest, reported in [quarantined],
    its [results] entry [None]. Every other shard still runs, is
    checkpointed and is bit-identical to an untroubled run.

    [progress] receives structured events; it is synchronized
    automatically when [workers > 1]. *)

val fold : 'r outcome -> init:'a -> f:('a -> 'r -> 'a) -> 'a
(** Folds the compacted blob ([merged], if any) and then per-shard
    results in shard-index order, skipping quarantined shards — the
    merge step. [f] must be associative and commutative for an
    order-independent total (commutativity only matters when resuming
    from compacted manifests, where per-shard ordering is lost). *)
