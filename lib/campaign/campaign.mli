(** The campaign engine: executes a {!Plan} on a {!Pool} of domains with
    optional checkpoint/resume, crash tolerance and structured
    {!Progress} events.

    Determinism contract: for a fixed plan (name, seed, shards), the
    [results] array is identical whatever [workers] is, whether or not the
    run was interrupted and resumed, and in what order shards happened to
    finish — every shard's generator is derived from the campaign seed
    and its index only (see {!Shard.rng}), and results are reported in
    shard-index order. Retries re-derive the same generator, so a shard
    that succeeds on attempt 3 returns exactly what a first-attempt
    success would have. *)

type policy = {
  retries : int;  (** extra attempts per shard after the first *)
  backoff_s : int -> float;
      (** seconds to sleep before retry [n] (1-based). Must be a pure
          function of its argument for the deterministic-backoff
          guarantee. *)
  shard_fuel : int option;
      (** {!Watchdog} budget installed around each attempt; [None]
          disables the watchdog *)
  fail_fast : bool;
      (** abort the whole campaign on the first shard failure (the
          pre-quarantine behaviour): the failure propagates as
          {!Pool.Task_failed}. Completed shards are still checkpointed. *)
}

val default_policy : policy
(** Tolerant: 2 retries with 5ms/10ms exponential backoff, no watchdog,
    no fail-fast. *)

type quarantine = {
  shard : int;  (** shard index in the plan *)
  label : string;
  attempts : int;  (** attempts made, all failed *)
  error : string;  (** the last attempt's exception, printed *)
  backtrace : string;
}

type 'r outcome = {
  plan_name : string;
  seed : int64;
  results : 'r option array;
      (** one entry per shard in shard-index order; [None] marks a
          quarantined shard *)
  quarantined : quarantine list;  (** in shard-index order; [] normally *)
  elapsed_s : float;  (** wall-clock for this run (resumed shards cost 0) *)
  resumed : int;  (** shards restored from the checkpoint manifest *)
  workers : int;
}

val results_exn : 'r outcome -> 'r array
(** The plain results array for callers that cannot tolerate a missing
    shard; raises [Failure] naming every quarantined shard otherwise. *)

val run :
  ?workers:int ->
  ?progress:Progress.sink ->
  ?checkpoint:string * 'r Checkpoint.codec ->
  ?policy:policy ->
  'r Plan.t ->
  'r outcome
(** [run plan] executes every shard of [plan] and returns the merged
    outcome.

    [workers] defaults to [1]: sequential, in the calling domain, no
    parallelism anywhere — the mode reports use by default so their
    output is reproducible on any machine. With [workers > 1] shards are
    distributed over an OCaml 5 domain pool.

    [checkpoint] gives a manifest path and a result codec: previously
    completed shards are loaded instead of re-run, and each newly
    finished shard is appended and flushed, so killing the process loses
    at most the shards in flight. Raises [Failure] if the manifest at the
    path belongs to a different campaign.

    [policy] (default {!default_policy}) controls crash tolerance: a
    shard attempt that raises — including {!Watchdog.Exhausted} from the
    per-attempt fuel budget — is retried after a deterministic backoff,
    and after [retries] failed retries the shard is quarantined: recorded
    in the manifest, reported in [quarantined], its [results] entry
    [None]. Every other shard still runs, is checkpointed and is
    bit-identical to an untroubled run.

    [progress] receives structured events; it is synchronized
    automatically when [workers > 1]. *)

val fold : 'r outcome -> init:'a -> f:('a -> 'r -> 'a) -> 'a
(** Folds over per-shard results in shard-index order, skipping
    quarantined shards — the merge step. Any associative [f] therefore
    gives an order-independent total. *)
