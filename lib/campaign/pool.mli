(** A work-stealing pool of OCaml 5 domains.

    [run_outcomes ~workers ~tasks f] evaluates [f i] for every [i] in
    [0 .. tasks - 1] and returns per-task outcomes in task order: [Ok r]
    for a task that returned, [Crashed (exn, backtrace)] for one that
    raised. Tasks are claimed from a shared atomic counter, so long tasks
    do not stall the queue behind them. [workers = 1] runs inline on the
    calling domain (no spawn, no synchronization); with more workers,
    [min workers tasks] domains are spawned and joined before returning.
    A crashing task cancels nothing — every other task still runs and its
    result is kept.

    [f] must be safe to call from any domain. *)

type 'a outcome = Ok of 'a | Crashed of exn * string
(** [Crashed (exn, backtrace)]: the raised exception together with the
    backtrace captured in the raising domain (empty unless backtrace
    recording is on, as in the test runner). *)

exception Task_failed of { task : int; exn : exn; backtrace : string }
(** Raised by {!run}: the lowest-index crashed task, with the failing
    task's index and captured backtrace attached. *)

exception Missing_result of { task : int }
(** A task slot was still empty after every worker domain joined — an
    engine invariant violation, not a task failure. Never raised:
    {!run_outcomes} reports it as that task's [Crashed] outcome (so the
    campaign layer retries/quarantines the shard), and {!run} in turn
    wraps it in {!Task_failed}. The registered printer names the task
    index. *)

val default_workers : unit -> int
(** [Domain.recommended_domain_count], the sensible [--workers] default
    for CPU-bound campaigns. *)

val run_outcomes : workers:int -> tasks:int -> (int -> 'a) -> 'a outcome array
(** Raises [Invalid_argument] if [workers < 1] or [tasks < 0]. *)

val run : workers:int -> tasks:int -> (int -> 'a) -> 'a array
(** {!run_outcomes} for callers that treat any task failure as fatal:
    returns the plain results if every task completed, otherwise raises
    {!Task_failed} for the first crashed task (by index) — after all
    domains have joined, so completed results are computed but
    discarded. Raises [Invalid_argument] as {!run_outcomes}. *)
