(** A work-stealing pool of OCaml 5 domains.

    [run ~workers ~tasks f] evaluates [f i] for every [i] in
    [0 .. tasks - 1] and returns the results in task order. Tasks are
    claimed from a shared atomic counter, so long tasks do not stall the
    queue behind them. [workers = 1] runs inline on the calling domain
    (no spawn, no synchronization); with more workers,
    [min workers tasks] domains are spawned and joined before returning.

    [f] must be safe to call from any domain. An exception raised by any
    task cancels nothing — remaining tasks still run — but the first
    exception (by task index) is re-raised after all domains join. *)

val default_workers : unit -> int
(** [Domain.recommended_domain_count], the sensible [--workers] default
    for CPU-bound campaigns. *)

val run : workers:int -> tasks:int -> (int -> 'a) -> 'a array
(** Raises [Invalid_argument] if [workers < 1] or [tasks < 0]. *)
