let default_workers () = Domain.recommended_domain_count ()

type 'a outcome = Ok of 'a | Crashed of exn * string

exception Task_failed of { task : int; exn : exn; backtrace : string }

exception Missing_result of { task : int }

let () =
  Printexc.register_printer (function
    | Task_failed { task; exn; backtrace } ->
      Some
        (Printf.sprintf "Pool.Task_failed(task %d): %s%s" task (Printexc.to_string exn)
           (if backtrace = "" then "" else "\n" ^ backtrace))
    | Missing_result { task } ->
      Some
        (Printf.sprintf
           "Pool.Missing_result(task %d): the work-stealing counter claimed the \
            task but no worker filled its slot"
           task)
    | _ -> None)

type 'a slot = Empty | Filled of 'a outcome

let capture f i =
  match f i with
  | r -> Ok r
  | exception e ->
    (* capture the backtrace before any other exception-raising code runs *)
    let bt = Printexc.get_backtrace () in
    Crashed (e, bt)

let run_outcomes ~workers ~tasks f =
  if workers < 1 then invalid_arg "Pool.run_outcomes: workers < 1";
  if tasks < 0 then invalid_arg "Pool.run_outcomes: tasks < 0";
  if tasks = 0 then [||]
  else if workers = 1 then Array.init tasks (capture f)
  else begin
    let results = Array.make tasks Empty in
    let next = Atomic.make 0 in
    let worker () =
      let rec go () =
        let i = Atomic.fetch_and_add next 1 in
        if i < tasks then begin
          (* each slot is written by exactly one domain and read only
             after the joins below, which synchronize *)
          results.(i) <- Filled (capture f i);
          go ()
        end
      in
      go ()
    in
    let spawned = Array.init (min workers tasks - 1) (fun _ -> Domain.spawn worker) in
    worker ();
    Array.iter Domain.join spawned;
    (* Every slot must be Filled once the joins return. If that
       invariant ever breaks, surface it as a per-task Crashed outcome
       naming the slot — the campaign layer then retries/quarantines
       that shard — instead of an assert that would kill the whole
       join with no context. *)
    Array.mapi
      (fun i -> function
        | Filled o -> o
        | Empty -> Crashed (Missing_result { task = i }, ""))
      results
  end

let run ~workers ~tasks f =
  let outcomes = run_outcomes ~workers ~tasks f in
  Array.mapi
    (fun i -> function
      | Ok r -> r
      | Crashed (exn, backtrace) -> raise (Task_failed { task = i; exn; backtrace }))
    outcomes
