let default_workers () = Domain.recommended_domain_count ()

type 'a slot = Empty | Done of 'a | Failed of exn

let run ~workers ~tasks f =
  if workers < 1 then invalid_arg "Pool.run: workers < 1";
  if tasks < 0 then invalid_arg "Pool.run: tasks < 0";
  if tasks = 0 then [||]
  else if workers = 1 then Array.init tasks f
  else begin
    let results = Array.make tasks Empty in
    let next = Atomic.make 0 in
    let worker () =
      let rec go () =
        let i = Atomic.fetch_and_add next 1 in
        if i < tasks then begin
          (* each slot is written by exactly one domain and read only
             after the joins below, which synchronize *)
          (results.(i) <- (match f i with r -> Done r | exception e -> Failed e));
          go ()
        end
      in
      go ()
    in
    let spawned = Array.init (min workers tasks - 1) (fun _ -> Domain.spawn worker) in
    worker ();
    Array.iter Domain.join spawned;
    Array.map
      (function
        | Done r -> r
        | Failed e -> raise e
        | Empty -> assert false)
      results
  end
