(* A fuel-based watchdog for shard execution.

   Wall-clock timeouts are useless for a deterministic campaign engine:
   they fire at different points on different machines (and on none in
   CI), so a run that times out is not reproducible.  Instead the budget
   is *fuel* — an abstract work counter the shard body decrements by
   calling [tick] at natural checkpoints (one trial, one machine run).
   Exhaustion then happens after exactly the same amount of work
   everywhere, so a quarantined shard is quarantined on every machine
   and at every worker count.

   The budget lives in domain-local storage: [Campaign] installs it
   around the shard body in whichever pool domain runs the shard, and
   plan code just calls [tick] with no plumbing. *)

exception Exhausted of { budget : int }

let () =
  Printexc.register_printer (function
    | Exhausted { budget } ->
      Some (Printf.sprintf "Watchdog.Exhausted(budget %d)" budget)
    | _ -> None)

type state = { budget : int; remaining : int ref }

let key : state option ref Domain.DLS.key = Domain.DLS.new_key (fun () -> ref None)

let with_budget budget f =
  if budget < 1 then invalid_arg "Watchdog.with_budget: budget < 1";
  let cell = Domain.DLS.get key in
  let saved = !cell in
  cell := Some { budget; remaining = ref budget };
  Fun.protect ~finally:(fun () -> cell := saved) f

let remaining () =
  match !(Domain.DLS.get key) with
  | None -> None
  | Some { remaining; _ } -> Some !remaining

let tick ?(cost = 1) () =
  if cost < 0 then
    invalid_arg (Printf.sprintf "Watchdog.tick: cost %d < 0" cost);
  match !(Domain.DLS.get key) with
  | None -> () (* no watchdog installed: ticks are free *)
  | Some { budget; remaining } ->
    remaining := !remaining - cost;
    if !remaining < 0 then raise (Exhausted { budget })
