(** A declarative description of an experiment campaign.

    A plan names the campaign, fixes its seed, and lists its shards —
    independent work units whose per-shard generators are derived from the
    seed and shard index (see {!Shard}). Executing the same plan yields
    the same per-shard results regardless of worker count or completion
    order; merging is the caller's fold over the index-ordered result
    array, so any associative merge is deterministic too. *)

type 'r t = private {
  name : string;
  seed : int64;
  shards : Shard.t array;
  run : Shard.t -> Pacstack_util.Rng.t -> 'r;
      (** Must be pure up to its [Rng.t] argument and safe to call from
          any domain (no shared mutable state). *)
}

val make :
  name:string ->
  seed:int64 ->
  shards:(string * int) array ->
  run:(Shard.t -> Pacstack_util.Rng.t -> 'r) ->
  'r t
(** [make ~name ~seed ~shards ~run] builds a plan from
    [(label, trials)] pairs, one per shard, in index order. Raises
    [Invalid_argument] on an empty shard array or a non-positive trial
    count. *)

val shard_count : _ t -> int

val total_trials : _ t -> int

val split_trials : trials:int -> shards:int -> int array
(** Deterministically partitions [trials] into [shards] near-equal parts
    (earlier shards get the remainder), summing back to [trials]. Raises
    [Invalid_argument] unless [trials >= shards >= 1]. *)
