module Rng = Pacstack_util.Rng

type t = { index : int; count : int; label : string; trials : int }

let rng ~campaign_seed t =
  if t.index < 0 || t.index >= t.count then invalid_arg "Shard.rng";
  (Rng.split_n (Rng.create campaign_seed) t.count).(t.index)

let pp fmt t = Format.fprintf fmt "%s (%d/%d, %d trials)" t.label (t.index + 1) t.count t.trials
