(** Fork-based process pool: run each task attempt in its own child
    process so a segfault, OOM kill or hung shard is an isolated,
    retryable failure instead of the end of the campaign.

    The parent is a single-threaded [Unix.select] event loop; children
    marshal an [('a, string) result] back over a pipe and [_exit]. The
    pool enforces an optional wall-clock deadline per attempt (the fuel
    watchdog still runs inside the child for deterministic budgets),
    retries failed attempts after a deterministic backoff, and shrinks
    its own concurrency — never below one — every time a child dies
    abnormally, so a sick machine degrades throughput instead of
    crashing the run.

    Must be called from a program state where no other domains are
    running: OCaml 5 forbids [fork] while domains are active. [Campaign]
    uses this pool and the Domain pool as alternative executors, never
    together. Task results travel through [Marshal], so they must be
    marshallable (plain data — no closures, no custom blocks). *)

type 'a outcome =
  | Done of 'a
  | Gave_up of { attempts : int; error : string }
      (** every attempt failed; [error] is the last attempt's failure *)

exception Task_failed of { task : int; error : string }
(** Raised (with a registered printer) when [fail_fast] is set and a task
    exhausts its attempts; remaining children are killed and reaped. *)

val run :
  workers:int ->
  ?timeout_s:float ->
  ?retries:int ->
  ?backoff_s:(int -> float) ->
  ?fail_fast:bool ->
  ?on_start:(task:int -> unit) ->
  ?on_result:(task:int -> elapsed_s:float -> 'a -> unit) ->
  ?on_retry:(task:int -> attempt:int -> error:string -> unit) ->
  ?on_give_up:(task:int -> attempts:int -> error:string -> unit) ->
  ?on_degrade:(live:int -> deaths:int -> unit) ->
  tasks:int ->
  (task:int -> attempt:int -> 'a) ->
  'a outcome array
(** [run ~workers ~tasks f] executes [f ~task ~attempt] (attempts are
    1-based) for every [task] in [[0, tasks)], each attempt in a forked
    child, at most [workers] children at a time, and returns the
    per-task outcomes. [timeout_s] SIGKILLs an attempt past its
    wall-clock deadline; a timed-out, signalled or otherwise
    result-less child counts as an abnormal death, shrinking the live
    worker cap to [max 1 (workers - deaths)] ([on_degrade] fires on each
    shrink). A failed attempt [n <= retries] is re-queued no earlier
    than [backoff_s n] seconds later ([on_retry]); past that the task is
    given up ([on_give_up], and [Task_failed] if [fail_fast]).
    [on_start] fires once per task at its first spawn; [on_result]
    reports the value and wall-clock seconds since that first spawn.
    All callbacks run in the parent, in the event-loop thread.
    Raises [Invalid_argument] if [workers < 1], [tasks < 0] or
    [retries < 0]. *)
