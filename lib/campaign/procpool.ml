(* A fork-based process pool: the crash-isolation executor.

   The Domain pool ([Pool]) shares one address space, so a segfault, an
   OOM kill or a runaway shard takes the whole campaign down with it.
   Here every task attempt runs in a forked child that marshals its
   result back over a pipe and [Unix._exit]s; the parent is a
   single-threaded [Unix.select] event loop that spawns, drains pipes,
   reaps children, enforces wall-clock deadlines and drives the
   retry/backoff/give-up state machine. A child that dies without
   delivering a complete marshalled value — killed by a signal, OOM'd,
   or past its deadline — is an isolated failure that feeds the same
   retry path as an ordinary exception, and each abnormal death also
   shrinks the pool's concurrency by one ([capacity] never drops below
   1): if children keep dying because the machine is sick, the pool
   degrades gracefully instead of fork-bombing it.

   Fork hazard: OCaml 5 forbids forking while other domains run. All
   forks happen from the caller's (single) domain inside this event
   loop; [Campaign] treats Domains and Processes as alternative
   executors, never nested. *)

exception Task_failed of { task : int; error : string }

let () =
  Printexc.register_printer (function
    | Task_failed { task; error } ->
      Some (Printf.sprintf "Procpool.Task_failed(task %d: %s)" task error)
    | _ -> None)

type 'a outcome = Done of 'a | Gave_up of { attempts : int; error : string }

type child = {
  pid : int;
  fd : Unix.file_descr;
  task : int;
  attempt : int;
  started : float;  (* first spawn of the task, for elapsed_s *)
  deadline : float option;
  buf : Buffer.t;
  mutable timed_out : bool;
}

let signal_name sg =
  if sg = Sys.sigkill then "SIGKILL"
  else if sg = Sys.sigsegv then "SIGSEGV"
  else if sg = Sys.sigterm then "SIGTERM"
  else if sg = Sys.sigabrt then "SIGABRT"
  else if sg = Sys.sigbus then "SIGBUS"
  else if sg = Sys.sigint then "SIGINT"
  else Printf.sprintf "signal %d" sg

(* The child writes [Marshal.to_channel] then exits; the parent only
   decodes after EOF, and only accepts a buffer that contains a complete
   marshalled value. Anything short of that — the child died mid-write —
   is an abnormal death, never a half-read garbage result. *)
let decode_buffer buf =
  let s = Buffer.contents buf in
  if String.length s < Marshal.header_size then None
  else
    match Marshal.total_size (Bytes.unsafe_of_string s) 0 with
    | exception Failure _ -> None
    | total ->
      if String.length s < total then None
      else (try Some (Marshal.from_string s 0) with Failure _ -> None)

let rec waitpid_retry pid =
  match Unix.waitpid [] pid with
  | _, status -> status
  | exception Unix.Unix_error (Unix.EINTR, _, _) -> waitpid_retry pid

let run ~workers ?timeout_s ?(retries = 0) ?(backoff_s = fun _ -> 0.)
    ?(fail_fast = false) ?(on_start = fun ~task:_ -> ())
    ?(on_result = fun ~task:_ ~elapsed_s:_ _ -> ())
    ?(on_retry = fun ~task:_ ~attempt:_ ~error:_ -> ())
    ?(on_give_up = fun ~task:_ ~attempts:_ ~error:_ -> ())
    ?(on_degrade = fun ~live:_ ~deaths:_ -> ()) ~tasks f =
  if workers < 1 then invalid_arg "Procpool.run: workers < 1";
  if tasks < 0 then invalid_arg "Procpool.run: tasks < 0";
  if retries < 0 then invalid_arg "Procpool.run: retries < 0";
  let results = Array.make tasks None in
  let first_start = Array.make tasks None in
  (* (task, attempt, not_before): attempts waiting for a worker slot or
     for their deterministic backoff to elapse *)
  let pending = ref (List.init tasks (fun i -> (i, 1, 0.0))) in
  let running = ref [] in
  let deaths = ref 0 in
  let capacity () = max 1 (workers - !deaths) in
  let finished = ref 0 in
  let spawn ~task ~attempt =
    let rd, wr = Unix.pipe () in
    let now = Unix.gettimeofday () in
    (match first_start.(task) with
    | None ->
      first_start.(task) <- Some now;
      on_start ~task
    | Some _ -> ());
    match Unix.fork () with
    | 0 ->
      (* Child. Reset inherited signal handlers (the CLI installs an
         exit-on-SIGINT handler that flushes manifests — in the child
         that would duplicate the parent's buffered writes), run the
         task, pipe the result back, and [_exit] so no inherited
         out_channel buffer is ever flushed twice. *)
      (try Sys.set_signal Sys.sigint Sys.Signal_default with Invalid_argument _ | Sys_error _ -> ());
      (try Sys.set_signal Sys.sigterm Sys.Signal_default with Invalid_argument _ | Sys_error _ -> ());
      (try Unix.close rd with Unix.Unix_error _ -> ());
      (try
         let result =
           match f ~task ~attempt with
           | v -> Stdlib.Ok v
           | exception e -> Stdlib.Error (Printexc.to_string e)
         in
         let oc = Unix.out_channel_of_descr wr in
         Marshal.to_channel oc result [];
         flush oc
       with _ -> Unix._exit 125);
      Unix._exit 0
    | pid ->
      (try Unix.close wr with Unix.Unix_error _ -> ());
      running :=
        {
          pid;
          fd = rd;
          task;
          attempt;
          started = Option.get first_start.(task);
          deadline = Option.map (fun t -> now +. t) timeout_s;
          buf = Buffer.create 256;
          timed_out = false;
        }
        :: !running
  in
  let handle_failure child ~error =
    if child.attempt <= retries then begin
      on_retry ~task:child.task ~attempt:child.attempt ~error;
      let not_before = Unix.gettimeofday () +. backoff_s child.attempt in
      pending := (child.task, child.attempt + 1, not_before) :: !pending
    end
    else begin
      results.(child.task) <- Some (Gave_up { attempts = child.attempt; error });
      incr finished;
      on_give_up ~task:child.task ~attempts:child.attempt ~error;
      if fail_fast then raise (Task_failed { task = child.task; error })
    end
  in
  let reap child =
    running := List.filter (fun c -> c.pid <> child.pid) !running;
    (try Unix.close child.fd with Unix.Unix_error _ -> ());
    let status = waitpid_retry child.pid in
    match decode_buffer child.buf with
    | Some (Stdlib.Ok v) ->
      results.(child.task) <- Some (Done v);
      incr finished;
      on_result ~task:child.task
        ~elapsed_s:(Unix.gettimeofday () -. child.started)
        v
    | Some (Stdlib.Error error) ->
      (* The task body raised and the child piped the exception back
         cleanly: an ordinary failure, not a pool death. *)
      handle_failure child ~error
    | None ->
      let error =
        if child.timed_out then
          Printf.sprintf "shard wall-clock timeout after %gs"
            (Option.value timeout_s ~default:0.)
        else
          match status with
          | Unix.WSIGNALED sg ->
            Printf.sprintf "worker killed by %s" (signal_name sg)
          | Unix.WEXITED code ->
            Printf.sprintf "worker exited with code %d without a result" code
          | Unix.WSTOPPED sg ->
            Printf.sprintf "worker stopped by %s" (signal_name sg)
      in
      let before = capacity () in
      incr deaths;
      let after = capacity () in
      if after < before then on_degrade ~live:after ~deaths:!deaths;
      handle_failure child ~error
  in
  let cleanup () =
    List.iter
      (fun c ->
        (try Unix.kill c.pid Sys.sigkill with Unix.Unix_error _ -> ());
        (try Unix.close c.fd with Unix.Unix_error _ -> ());
        try ignore (waitpid_retry c.pid) with Unix.Unix_error _ -> ())
      !running;
    running := []
  in
  Fun.protect ~finally:cleanup (fun () ->
      while !finished < tasks do
        (* Fill free worker slots with the lowest-indexed ready attempt. *)
        let rec fill () =
          if List.length !running < capacity () then begin
            let now = Unix.gettimeofday () in
            let ready, waiting =
              List.partition (fun (_, _, nb) -> nb <= now) !pending
            in
            match List.sort compare ready with
            | [] -> ()
            | (task, attempt, _) :: rest ->
              pending := rest @ waiting;
              spawn ~task ~attempt;
              fill ()
          end
        in
        fill ();
        if !finished < tasks then begin
          let now = Unix.gettimeofday () in
          let wakeups =
            List.filter_map (fun c -> c.deadline) !running
            @ List.map (fun (_, _, nb) -> nb) !pending
          in
          let timeout =
            match wakeups with
            | [] -> -1.0 (* block until a child writes or exits *)
            | ts -> Float.max 0.0 (List.fold_left Float.min infinity ts -. now)
          in
          let fds = List.map (fun c -> c.fd) !running in
          (match fds with
          | [] ->
            (* nothing running: every pending attempt is in backoff *)
            Unix.sleepf (Float.max 0.001 (Float.min timeout 0.5))
          | _ -> (
            match Unix.select fds [] [] timeout with
            | readable, _, _ ->
              List.iter
                (fun fd ->
                  match List.find_opt (fun c -> c.fd = fd) !running with
                  | None -> ()
                  | Some c -> (
                    let bytes = Bytes.create 65536 in
                    match Unix.read fd bytes 0 (Bytes.length bytes) with
                    | 0 -> reap c
                    | n -> Buffer.add_subbytes c.buf bytes 0 n
                    | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()))
                readable
            | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()));
          (* Enforce wall-clock deadlines: SIGKILL the child and let the
             resulting EOF/reap classify it as a timeout. *)
          let now = Unix.gettimeofday () in
          List.iter
            (fun c ->
              match c.deadline with
              | Some d when now >= d && not c.timed_out ->
                c.timed_out <- true;
                (try Unix.kill c.pid Sys.sigkill with Unix.Unix_error _ -> ())
              | _ -> ())
            !running
        end
      done;
      Array.map
        (function
          | Some o -> o
          | None -> Gave_up { attempts = 0; error = "no worker produced a result" })
        results)
