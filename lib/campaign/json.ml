type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

(* --- printing ----------------------------------------------------------- *)

let escape buf s =
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 -> Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"'

let rec emit buf = function
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Int n -> Buffer.add_string buf (string_of_int n)
  | Float f ->
    (* JSON has no nan/inf literal; [%.17g] would print one and the
       resulting document would not parse (not even by [parse] below).
       Non-finite floats degrade to null, like most JSON encoders. *)
    if not (Float.is_finite f) then Buffer.add_string buf "null"
    else if Float.is_integer f && Float.abs f < 1e15 then
      Buffer.add_string buf (Printf.sprintf "%.1f" f)
    else Buffer.add_string buf (Printf.sprintf "%.17g" f)
  | String s -> escape buf s
  | List vs ->
    Buffer.add_char buf '[';
    List.iteri
      (fun i v ->
        if i > 0 then Buffer.add_char buf ',';
        emit buf v)
      vs;
    Buffer.add_char buf ']'
  | Obj fields ->
    Buffer.add_char buf '{';
    List.iteri
      (fun i (k, v) ->
        if i > 0 then Buffer.add_char buf ',';
        escape buf k;
        Buffer.add_char buf ':';
        emit buf v)
      fields;
    Buffer.add_char buf '}'

let to_string v =
  let buf = Buffer.create 256 in
  emit buf v;
  Buffer.contents buf

let pp fmt v = Format.pp_print_string fmt (to_string v)

(* --- parsing ------------------------------------------------------------ *)

exception Bad of string

type cursor = { text : string; mutable pos : int }

let peek c = if c.pos < String.length c.text then Some c.text.[c.pos] else None

let advance c = c.pos <- c.pos + 1

let skip_ws c =
  let rec go () =
    match peek c with
    | Some (' ' | '\t' | '\n' | '\r') ->
      advance c;
      go ()
    | _ -> ()
  in
  go ()

let expect c ch =
  match peek c with
  | Some x when x = ch -> advance c
  | Some x -> raise (Bad (Printf.sprintf "expected %c at %d, found %c" ch c.pos x))
  | None -> raise (Bad (Printf.sprintf "expected %c at %d, found end of input" ch c.pos))

let literal c word value =
  let n = String.length word in
  if c.pos + n <= String.length c.text && String.sub c.text c.pos n = word then begin
    c.pos <- c.pos + n;
    value
  end
  else raise (Bad (Printf.sprintf "bad literal at %d" c.pos))

let parse_string c =
  expect c '"';
  let buf = Buffer.create 16 in
  let rec go () =
    match peek c with
    | None -> raise (Bad "unterminated string")
    | Some '"' -> advance c
    | Some '\\' ->
      advance c;
      (match peek c with
      | Some '"' -> Buffer.add_char buf '"'
      | Some '\\' -> Buffer.add_char buf '\\'
      | Some '/' -> Buffer.add_char buf '/'
      | Some 'n' -> Buffer.add_char buf '\n'
      | Some 'r' -> Buffer.add_char buf '\r'
      | Some 't' -> Buffer.add_char buf '\t'
      | Some 'b' -> Buffer.add_char buf '\b'
      | Some 'f' -> Buffer.add_char buf '\012'
      | Some 'u' ->
        if c.pos + 4 >= String.length c.text then raise (Bad "truncated \\u escape");
        let hex = String.sub c.text (c.pos + 1) 4 in
        let code =
          try int_of_string ("0x" ^ hex) with _ -> raise (Bad "bad \\u escape")
        in
        (* ASCII pass-through only; everything else becomes '?' *)
        Buffer.add_char buf (if code < 0x80 then Char.chr code else '?');
        c.pos <- c.pos + 4
      | _ -> raise (Bad "bad escape"));
      advance c;
      go ()
    | Some ch ->
      Buffer.add_char buf ch;
      advance c;
      go ()
  in
  go ();
  Buffer.contents buf

let parse_number c =
  let start = c.pos in
  let rec go () =
    match peek c with
    | Some ('0' .. '9' | '-' | '+' | '.' | 'e' | 'E') ->
      advance c;
      go ()
    | _ -> ()
  in
  go ();
  let s = String.sub c.text start (c.pos - start) in
  let is_float = String.exists (fun ch -> ch = '.' || ch = 'e' || ch = 'E') s in
  if is_float then
    match float_of_string_opt s with
    | Some f -> Float f
    | None -> raise (Bad (Printf.sprintf "bad number %S" s))
  else
    match int_of_string_opt s with
    | Some n -> Int n
    | None -> (
      (* out-of-range integer literal: fall back to float *)
      match float_of_string_opt s with
      | Some f -> Float f
      | None -> raise (Bad (Printf.sprintf "bad number %S" s)))

let rec parse_value c =
  skip_ws c;
  match peek c with
  | None -> raise (Bad "empty input")
  | Some 'n' -> literal c "null" Null
  | Some 't' -> literal c "true" (Bool true)
  | Some 'f' -> literal c "false" (Bool false)
  | Some '"' -> String (parse_string c)
  | Some ('-' | '0' .. '9') -> parse_number c
  | Some '[' ->
    advance c;
    skip_ws c;
    if peek c = Some ']' then begin
      advance c;
      List []
    end
    else begin
      let items = ref [ parse_value c ] in
      let rec go () =
        skip_ws c;
        match peek c with
        | Some ',' ->
          advance c;
          items := parse_value c :: !items;
          go ()
        | Some ']' -> advance c
        | _ -> raise (Bad (Printf.sprintf "expected , or ] at %d" c.pos))
      in
      go ();
      List (List.rev !items)
    end
  | Some '{' ->
    advance c;
    skip_ws c;
    if peek c = Some '}' then begin
      advance c;
      Obj []
    end
    else begin
      let field () =
        skip_ws c;
        let k = parse_string c in
        skip_ws c;
        expect c ':';
        (k, parse_value c)
      in
      let fields = ref [ field () ] in
      let rec go () =
        skip_ws c;
        match peek c with
        | Some ',' ->
          advance c;
          fields := field () :: !fields;
          go ()
        | Some '}' -> advance c
        | _ -> raise (Bad (Printf.sprintf "expected , or } at %d" c.pos))
      in
      go ();
      Obj (List.rev !fields)
    end
  | Some ch -> raise (Bad (Printf.sprintf "unexpected %c at %d" ch c.pos))

let parse text =
  let c = { text; pos = 0 } in
  match parse_value c with
  | v ->
    skip_ws c;
    if c.pos = String.length text then Ok v
    else Error (Printf.sprintf "trailing garbage at %d" c.pos)
  | exception Bad msg -> Error msg

(* --- accessors ---------------------------------------------------------- *)

let member key = function Obj fields -> List.assoc_opt key fields | _ -> None
let to_int = function Int n -> Some n | _ -> None

let to_float = function
  | Float f -> Some f
  | Int n -> Some (float_of_int n)
  | _ -> None

let to_str = function String s -> Some s | _ -> None
let to_list = function List vs -> Some vs | _ -> None
let to_bool = function Bool b -> Some b | _ -> None
