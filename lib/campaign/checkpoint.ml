type 'r codec = { encode : 'r -> Json.t; decode : Json.t -> 'r option }

type 'r file = { id : int; oc : out_channel; codec : 'r codec; mutex : Mutex.t }

(* Registry of open manifests, so a signal handler can flush everything
   in flight ([flush_all]) before the process exits: an interrupted
   campaign is then always resumable from its last completed shard.
   [record] already flushes after every line, so the registry only
   matters for out_channel buffering between a write and its flush — but
   that window is exactly where SIGINT likes to land. *)
let registry : (int, out_channel) Hashtbl.t = Hashtbl.create 7
let registry_mutex = Mutex.create ()
let next_id = ref 0

let register oc =
  Mutex.lock registry_mutex;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock registry_mutex)
    (fun () ->
      let id = !next_id in
      incr next_id;
      Hashtbl.replace registry id oc;
      id)

let unregister id =
  Mutex.lock registry_mutex;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock registry_mutex)
    (fun () -> Hashtbl.remove registry id)

(* Called from signal handlers: if the interrupted thread holds the
   registry lock, flush without it (iteration may then race a register,
   but a best-effort flush beats a self-deadlock on the way out). *)
let flush_all () =
  let locked = Mutex.try_lock registry_mutex in
  Fun.protect
    ~finally:(fun () -> if locked then Mutex.unlock registry_mutex)
    (fun () -> Hashtbl.iter (fun _ oc -> try flush oc with Sys_error _ -> ()) registry)

let version = 1

let header (plan : _ Plan.t) =
  Json.Obj
    [
      ("version", Json.Int version);
      ("campaign", Json.String plan.Plan.name);
      ("seed", Json.String (Int64.to_string plan.Plan.seed));
      ("shards", Json.Int (Plan.shard_count plan));
    ]

let header_matches (plan : _ Plan.t) json =
  Json.member "version" json = Some (Json.Int version)
  && Json.member "campaign" json = Some (Json.String plan.Plan.name)
  && Json.member "seed" json = Some (Json.String (Int64.to_string plan.Plan.seed))
  && Json.member "shards" json = Some (Json.Int (Plan.shard_count plan))

let load_existing ~path ~codec (plan : _ Plan.t) =
  let lines = In_channel.with_open_text path In_channel.input_lines in
  match lines with
  | [] -> Ok [||] (* empty file: treat as fresh *)
  | header_line :: records -> (
    match Json.parse header_line with
    | Error e -> Error (Printf.sprintf "unreadable header: %s" e)
    | Ok json when not (header_matches plan json) ->
      Error "written by a different campaign (name, seed or shard count mismatch)"
    | Ok _ ->
      let results = Array.make (Plan.shard_count plan) None in
      List.iter
        (fun line ->
          (* a torn trailing line from a crash mid-write parses as an
             error and is simply not restored *)
          match Json.parse line with
          | Error _ -> ()
          | Ok json -> (
            match (Json.member "shard" json, Json.member "result" json) with
            | Some idx_json, Some result_json -> (
              match Option.bind (Json.to_int idx_json) (fun idx ->
                        if idx < 0 || idx >= Array.length results then None
                        else Option.map (fun r -> (idx, r)) (codec.decode result_json))
              with
              | Some (idx, r) -> results.(idx) <- Some r
              | None -> ())
            | _ -> ()))
        records;
      Ok results)

let open_ ~path ~codec plan =
  let existed =
    Sys.file_exists path && In_channel.with_open_bin path In_channel.length > 0L
  in
  let prior =
    if existed then
      match load_existing ~path ~codec plan with
      | Ok results when Array.length results > 0 -> results
      | Ok _ -> Array.make (Plan.shard_count plan) None
      | Error msg -> failwith (Printf.sprintf "Checkpoint %s: %s" path msg)
    else Array.make (Plan.shard_count plan) None
  in
  let oc = open_out_gen [ Open_append; Open_creat ] 0o644 path in
  if not existed then begin
    output_string oc (Json.to_string (header plan));
    output_char oc '\n';
    flush oc
  end;
  ({ id = register oc; oc; codec; mutex = Mutex.create () }, prior)

let append_line t line =
  Mutex.lock t.mutex;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock t.mutex)
    (fun () ->
      output_string t.oc (Json.to_string line);
      output_char t.oc '\n';
      flush t.oc)

let record t (shard : Shard.t) result =
  append_line t
    (Json.Obj
       [
         ("shard", Json.Int shard.Shard.index);
         ("label", Json.String shard.Shard.label);
         ("trials", Json.Int shard.Shard.trials);
         ("result", t.codec.encode result);
       ])

(* A quarantine line has no "result" member, so [load_existing] never
   restores it: a resumed campaign re-runs the quarantined shard (its
   failure may have been environmental). The line exists so the manifest
   documents what happened to every shard of a failed run. *)
let quarantine t (shard : Shard.t) ~attempts ~error =
  append_line t
    (Json.Obj
       [
         ("shard", Json.Int shard.Shard.index);
         ("label", Json.String shard.Shard.label);
         ("quarantined", Json.Bool true);
         ("attempts", Json.Int attempts);
         ("error", Json.String error);
       ])

let close t =
  unregister t.id;
  close_out t.oc
