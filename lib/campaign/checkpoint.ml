type 'r codec = { encode : 'r -> Json.t; decode : Json.t -> 'r option }

(* Compaction policy: once more than [keep] uncompacted shard lines have
   accumulated, the manifest is rewritten as a single merged-statistics
   line. [merge] must be associative AND commutative: a compacted
   manifest folds results in coverage order, not completion order, so a
   non-commutative merge would make resumed totals depend on history. *)
type 'r compaction = { merge : 'r -> 'r -> 'r; keep : int }

type 'r restored = {
  results : 'r option array;
  merged : 'r option;
  covered : bool array;
  generation : int;
}

type 'r file = {
  mutable id : int;
  mutable oc : out_channel;
  codec : 'r codec;
  mutex : Mutex.t;
  path : string;
  header_json : Json.t;
  compaction : 'r compaction option;
  (* compaction state, all guarded by [mutex] *)
  mutable merged : 'r option;
  mutable covered : (int * int) list;  (* sorted disjoint [lo, hi) ranges *)
  mutable generation : int;
  mutable fresh : (int * 'r) list;  (* uncompacted shard results *)
  mutable quarantine_lines : Json.t list;  (* preserved across rewrites *)
}

exception
  Stale_manifest of { path : string; expected : string; found : string }

let () =
  Printexc.register_printer (function
    | Stale_manifest { path; expected; found } ->
      Some
        (Printf.sprintf
           "Checkpoint.Stale_manifest: %s was written by a different campaign\n\
           \  expected header %s\n\
           \  found header    %s" path expected found)
    | _ -> None)

(* Registry of open manifests, so a signal handler can flush everything
   in flight ([flush_all]) before the process exits: an interrupted
   campaign is then always resumable from its last completed shard.
   [record] already flushes after every line, so the registry only
   matters for out_channel buffering between a write and its flush — but
   that window is exactly where SIGINT likes to land. *)
let registry : (int, out_channel) Hashtbl.t = Hashtbl.create 7
let registry_mutex = Mutex.create ()
let next_id = ref 0

let register oc =
  Mutex.lock registry_mutex;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock registry_mutex)
    (fun () ->
      let id = !next_id in
      incr next_id;
      Hashtbl.replace registry id oc;
      id)

let unregister id =
  Mutex.lock registry_mutex;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock registry_mutex)
    (fun () -> Hashtbl.remove registry id)

(* Called from signal handlers: if the interrupted thread holds the
   registry lock, flush without it (iteration may then race a register,
   but a best-effort flush beats a self-deadlock on the way out). *)
let flush_all () =
  let locked = Mutex.try_lock registry_mutex in
  Fun.protect
    ~finally:(fun () -> if locked then Mutex.unlock registry_mutex)
    (fun () -> Hashtbl.iter (fun _ oc -> try flush oc with Sys_error _ -> ()) registry)

let version = 1

let header (plan : _ Plan.t) =
  Json.Obj
    [
      ("version", Json.Int version);
      ("campaign", Json.String plan.Plan.name);
      ("seed", Json.String (Int64.to_string plan.Plan.seed));
      ("shards", Json.Int (Plan.shard_count plan));
    ]

let header_matches (plan : _ Plan.t) json =
  Json.member "version" json = Some (Json.Int version)
  && Json.member "campaign" json = Some (Json.String plan.Plan.name)
  && Json.member "seed" json = Some (Json.String (Int64.to_string plan.Plan.seed))
  && Json.member "shards" json = Some (Json.Int (Plan.shard_count plan))

(* Normalize a list of disjoint-or-overlapping [lo, hi) ranges into
   sorted disjoint coalesced form. *)
let normalize_ranges ranges =
  let sorted = List.sort compare ranges in
  List.fold_left
    (fun acc (lo, hi) ->
      if hi <= lo then acc
      else
        match acc with
        | (plo, phi) :: rest when lo <= phi -> (plo, max phi hi) :: rest
        | _ -> (lo, hi) :: acc)
    [] sorted
  |> List.rev

let ranges_of_indices indices =
  normalize_ranges (List.map (fun i -> (i, i + 1)) indices)

let ranges_to_json ranges =
  Json.List (List.map (fun (lo, hi) -> Json.List [ Json.Int lo; Json.Int hi ]) ranges)

let ranges_of_json json =
  match Json.to_list json with
  | None -> None
  | Some items ->
    let parse = function
      | Json.List [ a; b ] ->
        Option.bind (Json.to_int a) (fun lo ->
            Option.map (fun hi -> (lo, hi)) (Json.to_int b))
      | _ -> None
    in
    let parsed = List.filter_map parse items in
    if List.length parsed = List.length items then Some (normalize_ranges parsed)
    else None

type 'r loaded = {
  l_results : 'r option array;
  l_merged : 'r option;
  l_covered : (int * int) list;
  l_generation : int;
  l_quarantines : Json.t list;
}

let load_existing ~path ~codec ?compaction (plan : _ Plan.t) =
  let shard_count = Plan.shard_count plan in
  let fresh () =
    {
      l_results = Array.make shard_count None;
      l_merged = None;
      l_covered = [];
      l_generation = 0;
      l_quarantines = [];
    }
  in
  let lines = In_channel.with_open_text path In_channel.input_lines in
  match lines with
  | [] -> Ok (fresh ()) (* empty file: treat as fresh *)
  | header_line :: records -> (
    match Json.parse header_line with
    | Error e -> Error (Printf.sprintf "unreadable header: %s" e)
    | Ok json when not (header_matches plan json) ->
      raise
        (Stale_manifest
           {
             path;
             expected = Json.to_string (header plan);
             found = Json.to_string json;
           })
    | Ok _ ->
      let acc = ref (fresh ()) in
      let merge_restored r =
        let l = !acc in
        match (compaction, l.l_merged) with
        | Some c, Some m -> acc := { l with l_merged = Some (c.merge m r) }
        | _, _ -> acc := { l with l_merged = Some r }
      in
      List.iter
        (fun line ->
          (* a torn trailing line from a crash mid-write parses as an
             error and is simply not restored *)
          match Json.parse line with
          | Error _ -> ()
          | Ok json -> (
            match Json.member "merged" json with
            | Some (Json.Bool true) -> (
              match
                ( Option.bind (Json.member "result" json) codec.decode,
                  Option.bind (Json.member "covered" json) ranges_of_json )
              with
              | Some r, Some ranges ->
                merge_restored r;
                let gen =
                  Option.bind (Json.member "generation" json) Json.to_int
                  |> Option.value ~default:1
                in
                let l = !acc in
                acc :=
                  {
                    l with
                    l_covered = normalize_ranges (ranges @ l.l_covered);
                    l_generation = max gen l.l_generation;
                  }
              | _ -> ())
            | _ -> (
              match Json.member "quarantined" json with
              | Some (Json.Bool true) ->
                let l = !acc in
                acc := { l with l_quarantines = json :: l.l_quarantines }
              | _ -> (
                match (Json.member "shard" json, Json.member "result" json) with
                | Some idx_json, Some result_json -> (
                  match
                    Option.bind (Json.to_int idx_json) (fun idx ->
                        if idx < 0 || idx >= shard_count then None
                        else Option.map (fun r -> (idx, r)) (codec.decode result_json))
                  with
                  | Some (idx, r) -> !acc.l_results.(idx) <- Some r
                  | None -> ())
                | _ -> ()))))
        records;
      let l = !acc in
      Ok { l with l_quarantines = List.rev l.l_quarantines })

let covered_array ~shard_count ranges =
  let a = Array.make shard_count false in
  List.iter
    (fun (lo, hi) ->
      for i = max 0 lo to min shard_count (max 0 hi) - 1 do
        a.(i) <- true
      done)
    ranges;
  a

let open_ ~path ~codec ?compaction plan =
  (match compaction with
  | Some { keep; _ } when keep < 1 -> invalid_arg "Checkpoint.open_: keep < 1"
  | _ -> ());
  let existed =
    Sys.file_exists path && In_channel.with_open_bin path In_channel.length > 0L
  in
  let loaded =
    if existed then
      match load_existing ~path ~codec ?compaction plan with
      | Ok l -> l
      | Error msg -> failwith (Printf.sprintf "Checkpoint %s: %s" path msg)
    else
      {
        l_results = Array.make (Plan.shard_count plan) None;
        l_merged = None;
        l_covered = [];
        l_generation = 0;
        l_quarantines = [];
      }
  in
  let oc = open_out_gen [ Open_append; Open_creat ] 0o644 path in
  if not existed then begin
    output_string oc (Json.to_string (header plan));
    output_char oc '\n';
    flush oc
  end;
  (* Under compaction, per-shard results restored from the manifest are
     re-queued as fresh so the next rewrite folds them into the merged
     line instead of dropping them from the file. *)
  let fresh =
    match compaction with
    | None -> []
    | Some _ ->
      Array.to_seq loaded.l_results
      |> Seq.mapi (fun i r -> (i, r))
      |> Seq.filter_map (fun (i, r) -> Option.map (fun r -> (i, r)) r)
      |> List.of_seq
  in
  let t =
    {
      id = register oc;
      oc;
      codec;
      mutex = Mutex.create ();
      path;
      header_json = header plan;
      compaction;
      merged = loaded.l_merged;
      covered = loaded.l_covered;
      generation = loaded.l_generation;
      fresh;
      quarantine_lines = loaded.l_quarantines;
    }
  in
  let restored =
    {
      results = loaded.l_results;
      merged = loaded.l_merged;
      covered = covered_array ~shard_count:(Plan.shard_count plan) loaded.l_covered;
      generation = loaded.l_generation;
    }
  in
  (t, restored)

let output_line oc line =
  output_string oc (Json.to_string line);
  output_char oc '\n'

let append_line_locked t line =
  output_line t.oc line;
  flush t.oc

let merged_line t result =
  Json.Obj
    [
      ("merged", Json.Bool true);
      ("generation", Json.Int t.generation);
      ("covered", ranges_to_json t.covered);
      ("result", t.codec.encode result);
    ]

(* Rewrite the manifest as header + one merged line (+ preserved
   quarantine history), via a temp file and an atomic rename so a crash
   mid-rewrite leaves either the old manifest or the new one, never a
   torn hybrid. Caller holds [t.mutex]. *)
let compact_locked t c =
  let in_order = List.sort (fun (a, _) (b, _) -> compare a b) t.fresh in
  let merged =
    List.fold_left
      (fun acc (_, r) ->
        match acc with None -> Some r | Some m -> Some (c.merge m r))
      t.merged in_order
  in
  match merged with
  | None -> ()
  | Some m ->
    t.merged <- merged;
    t.covered <-
      normalize_ranges (ranges_of_indices (List.map fst in_order) @ t.covered);
    t.generation <- t.generation + 1;
    t.fresh <- [];
    let tmp = t.path ^ ".compact.tmp" in
    let oc_tmp = open_out_gen [ Open_wronly; Open_creat; Open_trunc ] 0o644 tmp in
    Fun.protect
      ~finally:(fun () -> try close_out oc_tmp with Sys_error _ -> ())
      (fun () ->
        output_line oc_tmp t.header_json;
        output_line oc_tmp (merged_line t m);
        List.iter (output_line oc_tmp) t.quarantine_lines;
        flush oc_tmp);
    Sys.rename tmp t.path;
    (try close_out t.oc with Sys_error _ -> ());
    unregister t.id;
    t.oc <- open_out_gen [ Open_append ] 0o644 t.path;
    t.id <- register t.oc

let record t (shard : Shard.t) result =
  Mutex.lock t.mutex;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock t.mutex)
    (fun () ->
      match t.compaction with
      | Some c when List.length t.fresh + 1 >= c.keep ->
        (* The triggering result goes straight into the merged line; no
           point appending a shard line we are about to rewrite away. *)
        t.fresh <- (shard.Shard.index, result) :: t.fresh;
        compact_locked t c
      | compaction ->
        (match compaction with
        | Some _ -> t.fresh <- (shard.Shard.index, result) :: t.fresh
        | None -> ());
        append_line_locked t
          (Json.Obj
             [
               ("shard", Json.Int shard.Shard.index);
               ("label", Json.String shard.Shard.label);
               ("trials", Json.Int shard.Shard.trials);
               ("result", t.codec.encode result);
             ]))

(* A quarantine line has no "result" member, so [load_existing] never
   restores it: a resumed campaign re-runs the quarantined shard (its
   failure may have been environmental). The line exists so the manifest
   documents what happened to every shard of a failed run, and compaction
   rewrites preserve it verbatim. *)
let quarantine t (shard : Shard.t) ~attempts ~error =
  let line =
    Json.Obj
      [
        ("shard", Json.Int shard.Shard.index);
        ("label", Json.String shard.Shard.label);
        ("quarantined", Json.Bool true);
        ("attempts", Json.Int attempts);
        ("error", Json.String error);
      ]
  in
  Mutex.lock t.mutex;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock t.mutex)
    (fun () ->
      t.quarantine_lines <- t.quarantine_lines @ [ line ];
      append_line_locked t line)

let close t =
  unregister t.id;
  close_out t.oc
