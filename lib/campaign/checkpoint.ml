type 'r codec = { encode : 'r -> Json.t; decode : Json.t -> 'r option }

type 'r file = { oc : out_channel; codec : 'r codec; mutex : Mutex.t }

let version = 1

let header (plan : _ Plan.t) =
  Json.Obj
    [
      ("version", Json.Int version);
      ("campaign", Json.String plan.Plan.name);
      ("seed", Json.String (Int64.to_string plan.Plan.seed));
      ("shards", Json.Int (Plan.shard_count plan));
    ]

let header_matches (plan : _ Plan.t) json =
  Json.member "version" json = Some (Json.Int version)
  && Json.member "campaign" json = Some (Json.String plan.Plan.name)
  && Json.member "seed" json = Some (Json.String (Int64.to_string plan.Plan.seed))
  && Json.member "shards" json = Some (Json.Int (Plan.shard_count plan))

let load_existing ~path ~codec (plan : _ Plan.t) =
  let lines = In_channel.with_open_text path In_channel.input_lines in
  match lines with
  | [] -> Ok [||] (* empty file: treat as fresh *)
  | header_line :: records -> (
    match Json.parse header_line with
    | Error e -> Error (Printf.sprintf "unreadable header: %s" e)
    | Ok json when not (header_matches plan json) ->
      Error "written by a different campaign (name, seed or shard count mismatch)"
    | Ok _ ->
      let results = Array.make (Plan.shard_count plan) None in
      List.iter
        (fun line ->
          (* a torn trailing line from a crash mid-write parses as an
             error and is simply not restored *)
          match Json.parse line with
          | Error _ -> ()
          | Ok json -> (
            match (Json.member "shard" json, Json.member "result" json) with
            | Some idx_json, Some result_json -> (
              match Option.bind (Json.to_int idx_json) (fun idx ->
                        if idx < 0 || idx >= Array.length results then None
                        else Option.map (fun r -> (idx, r)) (codec.decode result_json))
              with
              | Some (idx, r) -> results.(idx) <- Some r
              | None -> ())
            | _ -> ()))
        records;
      Ok results)

let open_ ~path ~codec plan =
  let existed =
    Sys.file_exists path && In_channel.with_open_bin path In_channel.length > 0L
  in
  let prior =
    if existed then
      match load_existing ~path ~codec plan with
      | Ok results when Array.length results > 0 -> results
      | Ok _ -> Array.make (Plan.shard_count plan) None
      | Error msg -> failwith (Printf.sprintf "Checkpoint %s: %s" path msg)
    else Array.make (Plan.shard_count plan) None
  in
  let oc = open_out_gen [ Open_append; Open_creat ] 0o644 path in
  if not existed then begin
    output_string oc (Json.to_string (header plan));
    output_char oc '\n';
    flush oc
  end;
  ({ oc; codec; mutex = Mutex.create () }, prior)

let record t (shard : Shard.t) result =
  let line =
    Json.Obj
      [
        ("shard", Json.Int shard.Shard.index);
        ("label", Json.String shard.Shard.label);
        ("trials", Json.Int shard.Shard.trials);
        ("result", t.codec.encode result);
      ]
  in
  Mutex.lock t.mutex;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock t.mutex)
    (fun () ->
      output_string t.oc (Json.to_string line);
      output_char t.oc '\n';
      flush t.oc)

let close t = close_out t.oc
