type binop = Add | Sub | Mul | Div | And | Or | Xor | Shl | Shr

type relop = Eq | Ne | Lt | Le | Gt | Ge

type expr =
  | Int of int64
  | Var of string
  | Addr_local of string
  | Addr_global of string
  | Addr_func of string
  | Load of expr
  | Load_byte of expr
  | Binop of binop * expr * expr
  | Call of string * expr list
  | Call_ptr of expr * expr list

type cond = Rel of relop * expr * expr

type stmt =
  | Let of string * expr
  | Store of expr * expr
  | Store_byte of expr * expr
  | Expr of expr
  | If of cond * stmt list * stmt list
  | While of cond * stmt list
  | Return of expr option
  | Tail_call of string * expr list
  | Setjmp of string * expr
  | Longjmp of expr * expr
  | Hook of string
  | Print of expr
  | Block of stmt list
  | Halt of expr
  | Try of stmt list * string * stmt list
  | Throw of expr

type local = Scalar of string | Array of string * int

type fdef = {
  fname : string;
  params : string list;
  locals : local list;
  body : stmt list;
}

type program = {
  globals : (string * int) list;
  fundefs : fdef list;
  main : string;
}

let fdef ?(params = []) ?(locals = []) fname body = { fname; params; locals; body }

let program ?(globals = []) ?(main = "main") fundefs = { globals; fundefs; main }

let rec expr_calls = function
  | Int _ | Var _ | Addr_local _ | Addr_global _ | Addr_func _ -> false
  | Load e | Load_byte e -> expr_calls e
  | Binop (_, a, b) -> expr_calls a || expr_calls b
  | Call _ | Call_ptr _ -> true

let cond_calls (Rel (_, a, b)) = expr_calls a || expr_calls b

let rec stmt_calls = function
  | Let (_, e) | Expr e | Print e | Return (Some e) -> expr_calls e
  | Store (a, b) | Store_byte (a, b) | Longjmp (a, b) -> expr_calls a || expr_calls b
  | If (c, t, f) -> cond_calls c || calls_in_body t || calls_in_body f
  | While (c, b) -> cond_calls c || calls_in_body b
  | Return None | Hook _ -> false
  | Tail_call _ | Setjmp _ -> true
  | Block b -> calls_in_body b
  | Halt e -> expr_calls e
  | Try _ | Throw _ -> true  (* desugar to setjmp/longjmp *)

and calls_in_body body = List.exists stmt_calls body

let has_arrays f = List.exists (function Array _ -> true | Scalar _ -> false) f.locals

(* Statement counts, used by the fuzzer's shrinker to measure progress
   and by tests to bound the size of a shrunk reproducer.  Every stmt
   constructor counts as one, plus the contents of its sub-bodies. *)
let rec stmt_size s =
  1
  +
  match s with
  | If (_, t, f) -> body_size t + body_size f
  | While (_, b) | Block b -> body_size b
  | Try (b, _, h) -> body_size b + body_size h
  | Let _ | Store _ | Store_byte _ | Expr _ | Return _ | Tail_call _ | Setjmp _
  | Longjmp _ | Hook _ | Print _ | Halt _ | Throw _ ->
      0

and body_size body = List.fold_left (fun acc s -> acc + stmt_size s) 0 body

let program_size p = List.fold_left (fun acc f -> acc + body_size f.body) 0 p.fundefs
