(** Abstract syntax of mini-C, the small C-like language compiled onto the
    simulated ISA.

    It covers what the paper's evaluation needs from C: scalar locals,
    stack buffers (the raw material of overflows), pointers, direct,
    indirect and tail calls, loops, [setjmp]/[longjmp], and the hook
    intrinsic that marks where a memory-corruption vulnerability gives the
    adversary control. *)

type binop = Add | Sub | Mul | Div | And | Or | Xor | Shl | Shr

type relop = Eq | Ne | Lt | Le | Gt | Ge

type expr =
  | Int of int64
  | Var of string  (** scalar local or parameter *)
  | Addr_local of string  (** address of a local (array) *)
  | Addr_global of string  (** address of a data object *)
  | Addr_func of string  (** function pointer *)
  | Load of expr  (** 64-bit load through a pointer *)
  | Load_byte of expr
  | Binop of binop * expr * expr
  | Call of string * expr list
  | Call_ptr of expr * expr list  (** indirect call through a pointer *)

type cond = Rel of relop * expr * expr

type stmt =
  | Let of string * expr  (** assign a scalar local *)
  | Store of expr * expr  (** [*addr = value] *)
  | Store_byte of expr * expr
  | Expr of expr  (** evaluate for side effects *)
  | If of cond * stmt list * stmt list
  | While of cond * stmt list
  | Return of expr option
  | Tail_call of string * expr list
      (** call in tail position: compiled to a non-linking branch after the
          epilogue, as in Listing 8 *)
  | Setjmp of string * expr  (** [local = setjmp(bufaddr)] *)
  | Longjmp of expr * expr  (** [longjmp(bufaddr, value)] *)
  | Hook of string  (** adversary attachment point *)
  | Print of expr  (** debug-output syscall *)
  | Block of stmt list  (** statement grouping (no scoping) *)
  | Halt of expr  (** stop the machine with an exit code *)
  | Try of stmt list * string * stmt list
      (** [Try (body, x, handler)]: run [body]; a {!Throw} anywhere below
          transfers to [handler] with the thrown value in local [x].
          Desugared onto setjmp/longjmp by {!Exceptions} — the C++-style
          unwinding of §9.1. *)
  | Throw of expr  (** non-zero value; 0 is delivered as 1 *)

type local = Scalar of string | Array of string * int  (** name, bytes *)

type fdef = {
  fname : string;
  params : string list;  (** at most 6 *)
  locals : local list;
  body : stmt list;
}

type program = {
  globals : (string * int) list;  (** data objects: name, bytes *)
  fundefs : fdef list;
  main : string;
}

val fdef : ?params:string list -> ?locals:local list -> string -> stmt list -> fdef
val program : ?globals:(string * int) list -> ?main:string -> fdef list -> program
(** [main] defaults to ["main"]. *)

val calls_in_body : stmt list -> bool
(** Whether any statement performs a call — including setjmp, longjmp and
    tail calls (a tail-calling function is instrumented, as in
    Listing 8). *)

val has_arrays : fdef -> bool

val stmt_size : stmt -> int
(** Number of statement nodes in [s], counting nested bodies. *)

val body_size : stmt list -> int

val program_size : program -> int
(** Total statement count over all function bodies — the size metric
    minimised by the fuzzer's shrinker. *)
