module Instr = Pacstack_isa.Instr
module Reg = Pacstack_isa.Reg
module Cond = Pacstack_isa.Cond
module Program = Pacstack_isa.Program
module Scheme = Pacstack_harden.Scheme
module Frame = Pacstack_harden.Frame
module Runtime = Pacstack_harden.Runtime

exception Error of string

let error fmt = Printf.ksprintf (fun s -> raise (Error s)) fmt

let temp_count = 6  (* X9..X14 *)
let max_args = 6

let align8 n = (n + 7) land lnot 7
let align16 n = (n + 15) land lnot 15

(* Per-function layout: parameter and local slots are SP-relative offsets
   into the locals region; the spill area for expression temporaries sits
   above them. *)
type layout = {
  slots : (string, int) Hashtbl.t;
  arrays : (string, int) Hashtbl.t;  (* array base offsets *)
  spill_base : int;
  locals_bytes : int;
}

let layout_of (f : Ast.fdef) =
  let slots = Hashtbl.create 16 in
  let arrays = Hashtbl.create 4 in
  let off = ref 0 in
  let declare name bytes =
    if Hashtbl.mem slots name || Hashtbl.mem arrays name then
      error "%s: duplicate variable %s" f.fname name;
    let o = !off in
    off := o + align8 bytes;
    o
  in
  List.iter (fun p -> Hashtbl.replace slots p (declare p 8)) f.params;
  List.iter
    (function
      | Ast.Scalar s -> Hashtbl.replace slots s (declare s 8)
      | Ast.Array (s, bytes) ->
        if bytes <= 0 then error "%s: array %s has size %d" f.fname s bytes;
        Hashtbl.replace arrays s (declare s bytes))
    f.locals;
  let makes_calls = Ast.calls_in_body f.body in
  let spill_base = !off in
  let total = !off + (if makes_calls then 8 * temp_count else 0) in
  { slots; arrays; spill_base; locals_bytes = align16 total }

let function_traits (f : Ast.fdef) =
  let l = layout_of f in
  Frame.traits ~is_leaf:(not (Ast.calls_in_body f.body)) ~has_arrays:(Ast.has_arrays f)
    ~locals_bytes:l.locals_bytes ()

let temp d = Reg.x (9 + d)

let sp_slot off = { Instr.base = Reg.SP; offset = off; index = Instr.Offset }
let deref r = { Instr.base = r; offset = 0; index = Instr.Offset }

type ctx = {
  fname : string;
  layout : layout;
  scheme : Scheme.t;
  mutable next_label : int;
}

let fresh_label ctx =
  let n = ctx.next_label in
  ctx.next_label <- n + 1;
  Printf.sprintf ".L%d" n

let slot_of ctx name =
  match Hashtbl.find_opt ctx.layout.slots name with
  | Some o -> o
  | None -> error "%s: unknown variable %s" ctx.fname name

let relop_cond = function
  | Ast.Eq -> Cond.EQ
  | Ast.Ne -> Cond.NE
  | Ast.Lt -> Cond.LT
  | Ast.Le -> Cond.LE
  | Ast.Gt -> Cond.GT
  | Ast.Ge -> Cond.GE

let binop_instr op rd rn rm =
  let rmop = Instr.Reg rm in
  match (op : Ast.binop) with
  | Ast.Add -> Instr.Add (rd, rn, rmop)
  | Ast.Sub -> Instr.Sub (rd, rn, rmop)
  | Ast.Mul -> Instr.Mul (rd, rn, rm)
  | Ast.Div -> Instr.Udiv (rd, rn, rm)
  | Ast.And -> Instr.And_ (rd, rn, rmop)
  | Ast.Or -> Instr.Orr (rd, rn, rmop)
  | Ast.Xor -> Instr.Eor (rd, rn, rmop)
  | Ast.Shl -> Instr.Lsl_ (rd, rn, rmop)
  | Ast.Shr -> Instr.Lsr_ (rd, rn, rmop)

(* Spill the [live] lowest temporaries around a call; the temporaries above
   them hold already-evaluated arguments and are consumed before the
   callee can clobber them. *)
let spill_temps ctx live =
  List.init live (fun k -> Instr.Str (temp k, sp_slot (ctx.layout.spill_base + (8 * k))))

let reload_temps ctx live =
  List.init live (fun k -> Instr.Ldr (temp k, sp_slot (ctx.layout.spill_base + (8 * k))))

let rec compile_expr ctx d (e : Ast.expr) =
  if d >= temp_count then error "%s: expression too deep (max %d temporaries)" ctx.fname temp_count;
  let dst = temp d in
  match e with
  | Ast.Int v -> [ Instr.Mov (dst, Instr.Imm v) ]
  | Ast.Var s -> [ Instr.Ldr (dst, sp_slot (slot_of ctx s)) ]
  | Ast.Addr_local s -> (
    let off =
      match Hashtbl.find_opt ctx.layout.arrays s with
      | Some o -> Some o
      | None -> Hashtbl.find_opt ctx.layout.slots s
    in
    match off with
    | Some o -> [ Instr.Add (dst, Reg.SP, Instr.Imm (Int64.of_int o)) ]
    | None -> error "%s: unknown local %s" ctx.fname s)
  | Ast.Addr_global s -> [ Instr.Adr (dst, s) ]
  | Ast.Addr_func s ->
    (* code pointers are sealed at creation under the sealing schemes
       (PACTight/PARTS); fnptr_call authenticates before the blr *)
    Instr.Adr (dst, s) :: Scheme.fnptr_seal ctx.scheme dst
  | Ast.Load e -> compile_expr ctx d e @ [ Instr.Ldr (dst, deref dst) ]
  | Ast.Load_byte e -> compile_expr ctx d e @ [ Instr.Ldrb (dst, deref dst) ]
  | Ast.Binop (op, a, b) ->
    compile_expr ctx d a @ compile_expr ctx (d + 1) b @ [ binop_instr op dst dst (temp (d + 1)) ]
  | Ast.Call (f, args) -> compile_call ctx d ~target:(`Direct f) args
  | Ast.Call_ptr (fe, args) ->
    compile_expr ctx d fe @ compile_call ctx (d + 1) ~target:(`Indirect (temp d)) args
    @ [ Instr.Mov (dst, Instr.Reg (temp (d + 1))) ]

and compile_call ctx d ~target args =
  let n = List.length args in
  if n > max_args then error "%s: too many call arguments (%d > %d)" ctx.fname n max_args;
  let arg_code = List.concat (List.mapi (fun i a -> compile_expr ctx (d + i) a) args) in
  let moves = List.init n (fun i -> Instr.Mov (Reg.x i, Instr.Reg (temp (d + i)))) in
  let call =
    match target with
    | `Direct f -> [ Instr.Bl f ]
    | `Indirect r -> Scheme.fnptr_call ctx.scheme r
  in
  arg_code @ spill_temps ctx d @ moves @ call @ reload_temps ctx d
  @ [ Instr.Mov (temp d, Instr.Reg (Reg.x 0)) ]

let compile_cond ctx (Ast.Rel (op, a, b)) ~false_target =
  compile_expr ctx 0 a @ compile_expr ctx 1 b
  @ [ Instr.Cmp (temp 0, Instr.Reg (temp 1));
      Instr.Bcond (Cond.negate (relop_cond op), false_target) ]

let return_label = ".Lret"

(* Tail call: run the scheme epilogue but replace the returning instruction
   with a plain branch (Listing 8). [retaa] splits into [autiasp; b]. *)
let tail_branch epilogue target =
  let rec patch = function
    | [] -> error "internal: epilogue without return"
    | [ Instr.Ret _ ] -> [ Instr.B target ]
    | [ Instr.Retaa ] -> [ Instr.Autiasp; Instr.B target ]
    | i :: rest -> i :: patch rest
  in
  patch epilogue

let rec compile_stmt ctx ~epilogue (s : Ast.stmt) =
  let ins l = List.map (fun i -> Program.Ins i) l in
  match s with
  | Ast.Let (x, e) ->
    ins (compile_expr ctx 0 e @ [ Instr.Str (temp 0, sp_slot (slot_of ctx x)) ])
  | Ast.Store (addr, v) ->
    ins (compile_expr ctx 0 addr @ compile_expr ctx 1 v @ [ Instr.Str (temp 1, deref (temp 0)) ])
  | Ast.Store_byte (addr, v) ->
    ins (compile_expr ctx 0 addr @ compile_expr ctx 1 v @ [ Instr.Strb (temp 1, deref (temp 0)) ])
  | Ast.Expr e -> ins (compile_expr ctx 0 e)
  | Ast.If (c, then_, else_) ->
    let lelse = fresh_label ctx and lend = fresh_label ctx in
    List.concat
      [
        ins (compile_cond ctx c ~false_target:lelse);
        compile_body ctx ~epilogue then_;
        [ Program.Ins (Instr.B lend); Program.Lbl lelse ];
        compile_body ctx ~epilogue else_;
        [ Program.Lbl lend ];
      ]
  | Ast.While (c, body) ->
    let lhead = fresh_label ctx and lend = fresh_label ctx in
    List.concat
      [
        [ Program.Lbl lhead ];
        ins (compile_cond ctx c ~false_target:lend);
        compile_body ctx ~epilogue body;
        [ Program.Ins (Instr.B lhead); Program.Lbl lend ];
      ]
  | Ast.Return None -> [ Program.Ins (Instr.B return_label) ]
  | Ast.Return (Some e) ->
    ins (compile_expr ctx 0 e @ [ Instr.Mov (Reg.x 0, Instr.Reg (temp 0)); Instr.B return_label ])
  | Ast.Tail_call (f, args) ->
    let n = List.length args in
    if n > max_args then error "%s: too many tail-call arguments" ctx.fname;
    let arg_code = List.concat (List.mapi (fun i a -> compile_expr ctx i a) args) in
    let moves = List.init n (fun i -> Instr.Mov (Reg.x i, Instr.Reg (temp i))) in
    ins (arg_code @ moves @ tail_branch epilogue f)
  | Ast.Setjmp (x, bufaddr) ->
    ins
      (compile_expr ctx 0 bufaddr
      @ [
          Instr.Mov (Reg.x 0, Instr.Reg (temp 0));
          Instr.Bl (Runtime.setjmp_entry ctx.scheme);
          Instr.Str (Reg.x 0, sp_slot (slot_of ctx x));
        ])
  | Ast.Longjmp (bufaddr, v) ->
    ins
      (compile_expr ctx 0 bufaddr @ compile_expr ctx 1 v
      @ [
          Instr.Mov (Reg.x 0, Instr.Reg (temp 0));
          Instr.Mov (Reg.x 1, Instr.Reg (temp 1));
          Instr.Bl (Runtime.longjmp_entry ctx.scheme);
        ])
  | Ast.Hook name -> [ Program.Ins (Instr.Hook name) ]
  | Ast.Print e ->
    ins (compile_expr ctx 0 e @ [ Instr.Mov (Reg.x 0, Instr.Reg (temp 0)); Instr.Svc 1 ])
  | Ast.Block b -> compile_body ctx ~epilogue b
  | Ast.Halt e ->
    ins (compile_expr ctx 0 e @ [ Instr.Mov (Reg.x 0, Instr.Reg (temp 0)); Instr.Hlt ])
  | Ast.Try _ | Ast.Throw _ ->
    error "%s: Try/Throw must be desugared (Compile runs Exceptions.desugar automatically)"
      ctx.fname

and compile_body ctx ~epilogue body =
  List.concat_map (compile_stmt ctx ~epilogue) body

let compile_fdef ~scheme (f : Ast.fdef) =
  if List.length f.params > max_args then error "%s: too many parameters" f.fname;
  let layout = layout_of f in
  let traits =
    Frame.traits ~is_leaf:(not (Ast.calls_in_body f.body)) ~has_arrays:(Ast.has_arrays f)
      ~locals_bytes:layout.locals_bytes ()
  in
  let ctx = { fname = f.fname; layout; scheme; next_label = 0 } in
  let epilogue = Frame.epilogue scheme traits in
  let param_stores =
    List.mapi (fun i p -> Instr.Str (Reg.x i, sp_slot (slot_of ctx p))) f.params
  in
  let items =
    List.concat
      [
        List.map (fun i -> Program.Ins i) (Frame.prologue scheme traits @ param_stores);
        compile_body ctx ~epilogue f.body;
        [ Program.Lbl return_label ];
        List.map (fun i -> Program.Ins i) epilogue;
      ]
  in
  Program.func f.fname items

(* Separate compilation: the translation unit alone, with unresolved
   references to the runtime (and any other units) left external. *)
let compile_unit ~scheme ?(overrides = []) ?(optimize = false) (p : Ast.program) =
  let p = Exceptions.desugar p in
  let scheme_of f =
    match List.assoc_opt f.Ast.fname overrides with Some s -> s | None -> scheme
  in
  let post f = if optimize then Peephole.function_pass f else f in
  {
    Pacstack_isa.Objfile.funcs =
      List.map (fun f -> post (compile_fdef ~scheme:(scheme_of f) f)) p.fundefs;
    data = List.map (fun (dname, size) -> { Program.dname; size }) p.globals;
  }

(* The libc-flavoured runtime as its own unit: setjmp/longjmp, the
   PACStack wrappers, the canary failure handler and the guard object. *)
let runtime_unit () =
  {
    Pacstack_isa.Objfile.funcs = Runtime.functions;
    data = [ { Program.dname = "__stack_chk_guard"; size = 8 } ];
  }

let compile ~scheme ?(overrides = []) ?(optimize = false) (p : Ast.program) =
  let p = Exceptions.desugar p in
  let scheme_of f =
    match List.assoc_opt f.Ast.fname overrides with Some s -> s | None -> scheme
  in
  let post f = if optimize then Peephole.function_pass f else f in
  let funcs = List.map (fun f -> post (compile_fdef ~scheme:(scheme_of f) f)) p.fundefs in
  let data = List.map (fun (dname, size) -> { Program.dname; size }) p.globals in
  (* the canary guard object referenced by Stack_protector epilogues *)
  let data =
    if List.exists (fun (d : Program.data) -> d.dname = "__stack_chk_guard") data then data
    else data @ [ { Program.dname = "__stack_chk_guard"; size = 8 } ]
  in
  try Program.make ~data ~entry:p.main (funcs @ Runtime.functions)
  with Invalid_argument m -> error "%s" m
