module Word64 = Pacstack_util.Word64
module Rng = Pacstack_util.Rng

type key = { w0 : Word64.t; k0 : Word64.t }

let key ~w0 ~k0 = { w0; k0 }
let random_key rng = { w0 = Rng.next64 rng; k0 = Rng.next64 rng }
let key_equal a b = Word64.equal a.w0 b.w0 && Word64.equal a.k0 b.k0
let pp_key fmt k = Format.fprintf fmt "(w0=%a k0=%a)" Word64.pp k.w0 Word64.pp k.k0

let default_rounds = 7

let alpha = 0xC0AC29B7C97C50DDL

let round_constants =
  [|
    0x0000000000000000L;
    0x13198A2E03707344L;
    0xA4093822299F31D0L;
    0x082EFA98EC4E6C89L;
    0x452821E638D01377L;
    0xBE5466CF34E90C6CL;
    0x3F84D5B5B5470917L;
    0x9216D5D98979FB1BL;
  |]

let round_constant i =
  if i < 0 || i >= Array.length round_constants then invalid_arg "Qarma64.round_constant"
  else round_constants.(i)

(* Cell shuffle τ and tweak-cell permutation h, as in the QARMA
   specification; [perm.(i)] is the index of the input cell that lands in
   output cell [i]. *)
let tau_perm = [| 0; 11; 6; 13; 10; 1; 12; 7; 5; 14; 3; 8; 15; 4; 9; 2 |]
let h_perm = [| 6; 5; 14; 15; 0; 1; 2; 3; 7; 12; 13; 4; 8; 9; 10; 11 |]

let invert_perm p =
  let inv = Array.make (Array.length p) 0 in
  Array.iteri (fun i v -> inv.(v) <- i) p;
  inv

let tau_inv_perm = invert_perm tau_perm
let h_inv_perm = invert_perm h_perm

(* --- reference implementation (the oracle) ----------------------------- *)
(* Cell-by-cell, exactly as the specification reads. Retained unchanged so
   the SWAR fast path below can be differentially tested against it; the
   frozen known-answer vectors in test_qarma.ml pin both. *)

let permute_cells perm w =
  let cells = Word64.to_nibbles w in
  Word64.of_nibbles (Array.map (fun src -> cells.(src)) perm)

let tau_ref = permute_cells tau_perm
let tau_inv_ref = permute_cells tau_inv_perm

(* 4-bit rotation left. *)
let rho4 x n =
  let n = n land 3 in
  ((x lsl n) lor (x lsr (4 - n))) land 0xf

(* M = circ(0, ρ, ρ², ρ) applied column-wise to the 4×4 cell array
   (row-major, cell 0 top-left). M is involutory, so it is its own
   inverse. *)
let mix_columns_ref w =
  let cells = Word64.to_nibbles w in
  let out = Array.make 16 0 in
  for col = 0 to 3 do
    for row = 0 to 3 do
      let acc = ref 0 in
      for src = 0 to 3 do
        let d = (src - row + 4) land 3 in
        if d <> 0 then begin
          let e = if d = 2 then 2 else 1 in
          acc := !acc lxor rho4 cells.((src * 4) + col) e
        end
      done;
      out.((row * 4) + col) <- !acc
    done
  done;
  Word64.of_nibbles out

(* LFSR ω on a 4-bit cell: (b3,b2,b1,b0) -> (b0 xor b1, b3, b2, b1). *)
let omega x =
  let b0 = x land 1 and b1 = (x lsr 1) land 1 in
  ((b0 lxor b1) lsl 3) lor (x lsr 1)

let omega_inv x =
  let b3 = (x lsr 3) land 1 and b0 = x land 1 in
  (((x land 7) lsl 1) lor (b3 lxor b0)) land 0xf

(* Tweak cells refreshed by the LFSR on each update. *)
let lfsr_cells = [ 0; 1; 3; 4 ]

let apply_lfsr f w =
  List.fold_left (fun acc i -> Word64.set_nibble acc i (f (Word64.nibble acc i))) w lfsr_cells

let tweak_forward_ref t = apply_lfsr omega (permute_cells h_perm t)
let tweak_backward_ref t = permute_cells h_inv_perm (apply_lfsr omega_inv t)

(* One forward round: add tweakey, then (unless short) shuffle and mix,
   then substitute. The backward round is the exact inverse. *)
let forward_round_ref sbox s tk ~short =
  let s = Int64.logxor s tk in
  let s = if short then s else mix_columns_ref (tau_ref s) in
  Sbox.sub_cells sbox s

let backward_round_ref sbox s tk ~short =
  let s = Sbox.sub_cells_inv sbox s in
  let s = if short then s else tau_inv_ref (mix_columns_ref s) in
  Int64.logxor s tk

(* Orthomorphism used to derive the second whitening key. *)
let ortho w = Int64.logxor (Word64.rotr w 1) (Int64.shift_right_logical w 63)

let check_rounds rounds =
  if rounds < 1 || rounds > Array.length round_constants then invalid_arg "Qarma64: rounds"

(* Tweak values t_0 .. t_rounds; forward round i and backward round i both
   use t_i, the centre uses t_rounds. *)
let tweak_schedule ~rounds tweak =
  let ts = Array.make (rounds + 1) tweak in
  for i = 1 to rounds do
    ts.(i) <- tweak_forward_ref ts.(i - 1)
  done;
  ts

let encrypt_ref ?(rounds = default_rounds) ?(sbox = Sbox.sigma1) key ~tweak p =
  check_rounds rounds;
  let { w0; k0 } = key in
  let w1 = ortho w0 in
  let k1 = k0 in
  let ts = tweak_schedule ~rounds tweak in
  let s = ref (Int64.logxor p w0) in
  for i = 0 to rounds - 1 do
    s := forward_round_ref sbox !s (Int64.logxor k0 (Int64.logxor ts.(i) round_constants.(i))) ~short:(i = 0)
  done;
  (* centre: forward half-round, pseudo-reflector, backward half-round *)
  s := forward_round_ref sbox !s (Int64.logxor w1 ts.(rounds)) ~short:false;
  s := tau_ref !s;
  s := mix_columns_ref !s;
  s := Int64.logxor !s k1;
  s := tau_inv_ref !s;
  s := backward_round_ref sbox !s (Int64.logxor w0 ts.(rounds)) ~short:false;
  for i = rounds - 1 downto 0 do
    let tk = Int64.logxor (Int64.logxor k0 alpha) (Int64.logxor ts.(i) round_constants.(i)) in
    s := backward_round_ref sbox !s tk ~short:(i = 0)
  done;
  Int64.logxor !s w1

let decrypt_ref ?(rounds = default_rounds) ?(sbox = Sbox.sigma1) key ~tweak c =
  check_rounds rounds;
  let { w0; k0 } = key in
  let w1 = ortho w0 in
  let k1 = k0 in
  let ts = tweak_schedule ~rounds tweak in
  let s = ref (Int64.logxor c w1) in
  for i = 0 to rounds - 1 do
    let tk = Int64.logxor (Int64.logxor k0 alpha) (Int64.logxor ts.(i) round_constants.(i)) in
    s := forward_round_ref sbox !s tk ~short:(i = 0)
  done;
  s := forward_round_ref sbox !s (Int64.logxor w0 ts.(rounds)) ~short:false;
  (* inverse of the pseudo-reflector: τ, ⊕k1, M (self-inverse), τ⁻¹ *)
  s := tau_ref !s;
  s := Int64.logxor !s k1;
  s := mix_columns_ref !s;
  s := tau_inv_ref !s;
  s := backward_round_ref sbox !s (Int64.logxor w1 ts.(rounds)) ~short:false;
  for i = rounds - 1 downto 0 do
    s := backward_round_ref sbox !s (Int64.logxor k0 (Int64.logxor ts.(i) round_constants.(i))) ~short:(i = 0)
  done;
  Int64.logxor !s w0

module Reference = struct
  let encrypt = encrypt_ref
  let decrypt = decrypt_ref
  let tau = tau_ref
  let tau_inv = tau_inv_ref
  let mix_columns = mix_columns_ref
  let tweak_forward = tweak_forward_ref
  let tweak_backward = tweak_backward_ref
end

(* --- SWAR fast path ----------------------------------------------------- *)
(* Everything below operates on the whole 64-bit state at once. Cell i
   occupies bits [4·(15−i), 4·(15−i)+4) (cell 0 is the top nibble), so a
   cell permutation is a fixed set of nibble moves — compiled once into
   (shift, source-mask) pairs — rows of the 4×4 state are contiguous
   16-bit lanes, and the ρ^e cell rotations of MixColumns are two-mask
   shift networks. No per-call allocation anywhere on this path. *)

(* Compile [perm] into parallel (shift, source-mask) arrays: output cell i
   takes input cell perm.(i), i.e. the nibble at source-lo 4·(15−src)
   moves by 4·(src − i) bits (left when positive). Nibbles moving the
   same distance share one masked shift. *)
let compile_perm perm =
  let tbl = Hashtbl.create 16 in
  Array.iteri
    (fun i src ->
      let shift = 4 * (src - i) in
      let src_mask = Int64.shift_left 0xFL (4 * (15 - src)) in
      let cur = Option.value (Hashtbl.find_opt tbl shift) ~default:0L in
      Hashtbl.replace tbl shift (Int64.logor cur src_mask))
    perm;
  let pairs = List.sort compare (Hashtbl.fold (fun s m acc -> (s, m) :: acc) tbl []) in
  (Array.of_list (List.map fst pairs), Array.of_list (List.map snd pairs))

let apply_net (shifts, masks) w =
  let acc = ref 0L in
  for j = 0 to Array.length shifts - 1 do
    let part = Int64.logand w (Array.unsafe_get masks j) in
    let s = Array.unsafe_get shifts j in
    acc :=
      Int64.logor !acc
        (if s >= 0 then Int64.shift_left part s else Int64.shift_right_logical part (-s))
  done;
  !acc

let tau_net = compile_perm tau_perm
let tau_inv_net = compile_perm tau_inv_perm
let h_net = compile_perm h_perm
let h_inv_net = compile_perm h_inv_perm

let tau w = apply_net tau_net w
let tau_inv w = apply_net tau_inv_net w

(* ρ (rotate each nibble left by 1) and ρ² as masked shifts over all 16
   cells at once. *)
let nrotl1 x =
  Int64.logor
    (Int64.logand (Int64.shift_left x 1) 0xEEEEEEEEEEEEEEEEL)
    (Int64.logand (Int64.shift_right_logical x 3) 0x1111111111111111L)

let nrotl2 x =
  Int64.logor
    (Int64.logand (Int64.shift_left x 2) 0xCCCCCCCCCCCCCCCCL)
    (Int64.logand (Int64.shift_right_logical x 2) 0x3333333333333333L)

(* Row r of the state is the 16-bit lane at bits [48−16r, 64−16r); rotating
   the whole word left by 16·k moves row r+k into row r's lane. M being
   circ(0, ρ, ρ², ρ), each output row is ρ(row+1) ⊕ ρ²(row+2) ⊕ ρ(row+3). *)
let mix_columns w =
  Int64.logxor
    (nrotl1 (Word64.rotl w 16))
    (Int64.logxor (nrotl2 (Word64.rotl w 32)) (nrotl1 (Word64.rotl w 48)))

(* The LFSR'd tweak cells {0,1,3,4} are hex digits {15,14,12,11}. *)
let lfsr_mask = 0xFF0FF00000000000L
let lfsr_low3 = Int64.logand lfsr_mask 0x7777777777777777L
let lfsr_hi3 = Int64.logand lfsr_mask 0xEEEEEEEEEEEEEEEEL
let lfsr_b0 = Int64.logand lfsr_mask 0x1111111111111111L

(* ω on the masked nibbles: (b3,b2,b1,b0) → (b0⊕b1, b3, b2, b1). *)
let lfsr_forward w =
  let x = Int64.logand w lfsr_mask in
  let keep = Int64.logand w (Int64.lognot lfsr_mask) in
  let low3 = Int64.logand (Int64.shift_right_logical x 1) lfsr_low3 in
  let top =
    Int64.shift_left (Int64.logand (Int64.logxor x (Int64.shift_right_logical x 1)) lfsr_b0) 3
  in
  Int64.logor keep (Int64.logor low3 top)

(* ω⁻¹: (b3,b2,b1,b0) → (b2, b1, b0, b3⊕b0). *)
let lfsr_backward w =
  let x = Int64.logand w lfsr_mask in
  let keep = Int64.logand w (Int64.lognot lfsr_mask) in
  let hi3 = Int64.logand (Int64.shift_left x 1) lfsr_hi3 in
  let low =
    Int64.logand (Int64.logxor x (Int64.shift_right_logical x 3)) lfsr_b0
  in
  Int64.logor keep (Int64.logor hi3 low)

let tweak_forward t = lfsr_forward (apply_net h_net t)
let tweak_backward t = apply_net h_inv_net (lfsr_backward t)

(* --- precomputed per-key cipher context --------------------------------- *)
(* Everything that depends only on (key, rounds, sbox) — the second
   whitening key w1 = ortho w0 and the per-round tweakey constants
   k0 ⊕ rc_i (forward) and k0 ⊕ α ⊕ rc_i (backward) — is computed once
   here instead of on every MAC. *)

type ctx = {
  rounds : int;
  sbox : Sbox.t;
  w0 : Word64.t;
  w1 : Word64.t;
  k1 : Word64.t;
  rk_fwd : Word64.t array;  (* k0 ⊕ rc_i *)
  rk_bwd : Word64.t array;  (* k0 ⊕ α ⊕ rc_i *)
}

let prepare ?(rounds = default_rounds) ?(sbox = Sbox.sigma1) key =
  check_rounds rounds;
  let { w0; k0 } = key in
  {
    rounds;
    sbox;
    w0;
    w1 = ortho w0;
    k1 = k0;
    rk_fwd = Array.init rounds (fun i -> Int64.logxor k0 round_constants.(i));
    rk_bwd = Array.init rounds (fun i -> Int64.logxor (Int64.logxor k0 alpha) round_constants.(i));
  }

(* The round loops keep the running tweak in a mutable cell and step it
   with the SWAR schedule (forward on the way in, backward on the way
   out), so no t_0..t_r array is materialised per call. *)
let encrypt_ctx ctx ~tweak p =
  let sbox = ctx.sbox in
  let rounds = ctx.rounds in
  let s = ref (Int64.logxor p ctx.w0) in
  let t = ref tweak in
  for i = 0 to rounds - 1 do
    let x = Int64.logxor !s (Int64.logxor ctx.rk_fwd.(i) !t) in
    let x = if i = 0 then x else mix_columns (tau x) in
    s := Sbox.sub_cells_fast sbox x;
    t := tweak_forward !t
  done;
  (* t = t_rounds: forward half-round, pseudo-reflector, backward half-round *)
  let x = Int64.logxor !s (Int64.logxor ctx.w1 !t) in
  let x = Sbox.sub_cells_fast sbox (mix_columns (tau x)) in
  let x = tau_inv (Int64.logxor (mix_columns (tau x)) ctx.k1) in
  let x = Sbox.sub_cells_inv_fast sbox x in
  let x = tau_inv (mix_columns x) in
  s := Int64.logxor x (Int64.logxor ctx.w0 !t);
  for i = rounds - 1 downto 0 do
    t := tweak_backward !t;
    let x = Sbox.sub_cells_inv_fast sbox !s in
    let x = if i = 0 then x else tau_inv (mix_columns x) in
    s := Int64.logxor x (Int64.logxor ctx.rk_bwd.(i) !t)
  done;
  Int64.logxor !s ctx.w1

let decrypt_ctx ctx ~tweak c =
  let sbox = ctx.sbox in
  let rounds = ctx.rounds in
  let s = ref (Int64.logxor c ctx.w1) in
  let t = ref tweak in
  for i = 0 to rounds - 1 do
    let x = Int64.logxor !s (Int64.logxor ctx.rk_bwd.(i) !t) in
    let x = if i = 0 then x else mix_columns (tau x) in
    s := Sbox.sub_cells_fast sbox x;
    t := tweak_forward !t
  done;
  let x = Int64.logxor !s (Int64.logxor ctx.w0 !t) in
  let x = Sbox.sub_cells_fast sbox (mix_columns (tau x)) in
  (* inverse of the pseudo-reflector: τ, ⊕k1, M (self-inverse), τ⁻¹ *)
  let x = tau_inv (mix_columns (Int64.logxor (tau x) ctx.k1)) in
  let x = Sbox.sub_cells_inv_fast sbox x in
  let x = tau_inv (mix_columns x) in
  s := Int64.logxor x (Int64.logxor ctx.w1 !t);
  for i = rounds - 1 downto 0 do
    t := tweak_backward !t;
    let x = Sbox.sub_cells_inv_fast sbox !s in
    let x = if i = 0 then x else tau_inv (mix_columns x) in
    s := Int64.logxor x (Int64.logxor ctx.rk_fwd.(i) !t)
  done;
  Int64.logxor !s ctx.w0

let encrypt ?rounds ?sbox key ~tweak p = encrypt_ctx (prepare ?rounds ?sbox key) ~tweak p
let decrypt ?rounds ?sbox key ~tweak c = decrypt_ctx (prepare ?rounds ?sbox key) ~tweak c
