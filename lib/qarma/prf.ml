module Word64 = Pacstack_util.Word64
module Rng = Pacstack_util.Rng

type t =
  | Qarma of { key : Qarma64.key; rounds : int; ctx : Qarma64.ctx }
  | Fast of Word64.t

(* The per-key cipher context (w1, round tweakeys) is precomputed here,
   once, rather than re-derived on every mac64. *)
let create ?(rounds = Qarma64.default_rounds) key =
  Qarma { key; rounds; ctx = Qarma64.prepare ~rounds key }
let create_fast secret = Fast secret

let of_rng ?(fast = false) ?rounds rng =
  if fast then Fast (Rng.next64 rng)
  else create ?rounds (Qarma64.random_key rng)

(* SplitMix64 finalizer: a high-quality 64-bit mixer. *)
let[@inline] mix z =
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xbf58476d1ce4e5b9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94d049bb133111ebL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let[@inline] mac64 t ~data ~modifier =
  match t with
  | Qarma { ctx; _ } -> Qarma64.encrypt_ctx ctx ~tweak:modifier data
  | Fast secret ->
    (* Two dependent mixing rounds bind data, modifier and key. *)
    let a = mix (Int64.logxor data secret) in
    let b = mix (Int64.logxor modifier (Int64.add secret 0x9e3779b97f4a7c15L)) in
    mix (Int64.logxor a (Word64.rotl b 17))

let[@inline] mac t ~bits ~data ~modifier =
  if bits < 1 || bits > 32 then invalid_arg "Prf.mac: bits";
  Int64.logand (mac64 t ~data ~modifier) (Word64.mask bits)

let key = function Qarma { key; _ } -> Some key | Fast _ -> None

let equal a b =
  match a, b with
  | Qarma { key = k1; rounds = r1; _ }, Qarma { key = k2; rounds = r2; _ } ->
    Qarma64.key_equal k1 k2 && r1 = r2
  | Fast s1, Fast s2 -> Word64.equal s1 s2
  | Qarma _, Fast _ | Fast _, Qarma _ -> false
