(** A QARMA-64-structured tweakable block cipher.

    This is the cryptographic primitive behind the simulated ARMv8.3-A
    pointer-authentication instructions, mirroring the reference PA design
    which uses QARMA-64 (Avanzi 2017). The implementation follows the
    published structure — 16 4-bit cells, [r] forward rounds, a central
    pseudo-reflector, [r] backward rounds under the α-reflected key, a
    tweakey schedule with cell permutation [h] and LFSR ω — and is verified
    by construction-level tests (exact invertibility, tweak/key/plaintext
    avalanche, per-tweak bijectivity) plus frozen regression vectors. See
    DESIGN.md for why bit-exactness against ARM silicon is not required for
    the reproduction. *)

type key = private {
  w0 : Pacstack_util.Word64.t;  (** whitening key *)
  k0 : Pacstack_util.Word64.t;  (** core key *)
}

val key : w0:Pacstack_util.Word64.t -> k0:Pacstack_util.Word64.t -> key
val random_key : Pacstack_util.Rng.t -> key
val key_equal : key -> key -> bool
val pp_key : Format.formatter -> key -> unit

val default_rounds : int
(** 7, the full-strength QARMA-64 parameter. *)

val encrypt :
  ?rounds:int -> ?sbox:Sbox.t -> key ->
  tweak:Pacstack_util.Word64.t ->
  Pacstack_util.Word64.t -> Pacstack_util.Word64.t
(** [encrypt key ~tweak p] is the ciphertext block. [rounds] defaults to
    {!default_rounds}; [sbox] to [Sbox.sigma1]. Computed on the SWAR fast
    path (bit-identical to {!Reference.encrypt}). *)

val decrypt :
  ?rounds:int -> ?sbox:Sbox.t -> key ->
  tweak:Pacstack_util.Word64.t ->
  Pacstack_util.Word64.t -> Pacstack_util.Word64.t
(** Exact inverse of {!encrypt} for equal parameters. *)

(** {1 Precomputed cipher context}

    Everything derivable from the key alone — the second whitening key
    [w1 = ortho w0] and the per-round tweakey constants [k0 ⊕ rc_i] and
    [k0 ⊕ α ⊕ rc_i] — computed once, so a long-lived MAC instance (see
    {!Prf.create}) pays for the key schedule once rather than per call.
    The per-call path is allocation-free SWAR over the whole 64-bit
    state. *)

type ctx

val prepare : ?rounds:int -> ?sbox:Sbox.t -> key -> ctx

val encrypt_ctx :
  ctx -> tweak:Pacstack_util.Word64.t -> Pacstack_util.Word64.t -> Pacstack_util.Word64.t
(** Bit-identical to {!encrypt} with the parameters [prepare] was given. *)

val decrypt_ctx :
  ctx -> tweak:Pacstack_util.Word64.t -> Pacstack_util.Word64.t -> Pacstack_util.Word64.t

(** {1 Exposed internals}

    The diffusion-layer building blocks are exposed for direct testing.
    These are the SWAR implementations (fused mask-shift networks for
    τ/h, masked nibble rotations for M, byte-table S-box application);
    {!Reference} retains the cell-by-cell originals as the oracle. *)

val tau : Pacstack_util.Word64.t -> Pacstack_util.Word64.t
val tau_inv : Pacstack_util.Word64.t -> Pacstack_util.Word64.t
val mix_columns : Pacstack_util.Word64.t -> Pacstack_util.Word64.t
(** The involutory matrix M = circ(0, ρ, ρ², ρ). *)

val tweak_forward : Pacstack_util.Word64.t -> Pacstack_util.Word64.t
val tweak_backward : Pacstack_util.Word64.t -> Pacstack_util.Word64.t

(** {1 The reference implementation}

    The original cell-by-cell implementation, retained unchanged as the
    differential-testing oracle: the fast path must agree bit-for-bit on
    random (key, tweak, plaintext) triples, and the frozen known-answer
    vectors pin both. *)

module Reference : sig
  val encrypt :
    ?rounds:int -> ?sbox:Sbox.t -> key ->
    tweak:Pacstack_util.Word64.t ->
    Pacstack_util.Word64.t -> Pacstack_util.Word64.t

  val decrypt :
    ?rounds:int -> ?sbox:Sbox.t -> key ->
    tweak:Pacstack_util.Word64.t ->
    Pacstack_util.Word64.t -> Pacstack_util.Word64.t

  val tau : Pacstack_util.Word64.t -> Pacstack_util.Word64.t
  val tau_inv : Pacstack_util.Word64.t -> Pacstack_util.Word64.t
  val mix_columns : Pacstack_util.Word64.t -> Pacstack_util.Word64.t
  val tweak_forward : Pacstack_util.Word64.t -> Pacstack_util.Word64.t
  val tweak_backward : Pacstack_util.Word64.t -> Pacstack_util.Word64.t
end

val alpha : Pacstack_util.Word64.t
val round_constant : int -> Pacstack_util.Word64.t
(** [round_constant i] for [0 <= i < 8]. *)
