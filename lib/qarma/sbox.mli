(** The three 4-bit substitution boxes of the QARMA family.

    [sigma0] is an involution used in the lightweight variant, [sigma1] is
    the recommended S-box, [sigma2] the stronger alternative. *)

type t

val sigma0 : t
val sigma1 : t
val sigma2 : t

val apply : t -> int -> int
(** [apply s x] substitutes the 4-bit value [x]; raises [Invalid_argument]
    if [x] is outside [0, 15]. *)

val apply_inv : t -> int -> int

val sub_cells : t -> Pacstack_util.Word64.t -> Pacstack_util.Word64.t
(** Applies the S-box to all 16 cells of a block, cell by cell — the
    reference path the SWAR implementation is checked against. *)

val sub_cells_inv : t -> Pacstack_util.Word64.t -> Pacstack_util.Word64.t

val sub_cells_fast : t -> Pacstack_util.Word64.t -> Pacstack_util.Word64.t
(** Bit-identical to {!sub_cells}, computed with 8 byte-table reads and
    no per-cell array traffic (the cipher's hot path). *)

val sub_cells_inv_fast : t -> Pacstack_util.Word64.t -> Pacstack_util.Word64.t

val is_involution : t -> bool
val is_permutation : t -> bool
