module Word64 = Pacstack_util.Word64

(* [fwd]/[inv] are the nibble permutation and its inverse; [fwd_byte]/
   [inv_byte] apply them to both nibbles of a byte at once, so the SWAR
   cipher substitutes a 64-bit state with 8 table reads and no per-cell
   traffic. *)
type t = { fwd : int array; inv : int array; fwd_byte : int array; inv_byte : int array }

let byte_table nib =
  Array.init 256 (fun b -> (nib.((b lsr 4) land 0xf) lsl 4) lor nib.(b land 0xf))

let make fwd =
  assert (Array.length fwd = 16);
  let inv = Array.make 16 (-1) in
  Array.iteri (fun i v -> inv.(v) <- i) fwd;
  assert (not (Array.exists (fun v -> v < 0) inv));
  { fwd; inv; fwd_byte = byte_table fwd; inv_byte = byte_table inv }

let sigma0 = make [| 0; 14; 2; 10; 9; 15; 8; 11; 6; 4; 3; 7; 13; 12; 1; 5 |]
let sigma1 = make [| 10; 13; 14; 6; 15; 7; 3; 5; 9; 8; 0; 12; 11; 1; 2; 4 |]
let sigma2 = make [| 11; 6; 8; 15; 12; 0; 9; 14; 3; 7; 4; 5; 13; 2; 1; 10 |]

let check x = if x < 0 || x > 15 then invalid_arg "Sbox.apply"

let apply t x = check x; t.fwd.(x)
let apply_inv t x = check x; t.inv.(x)

(* Reference cell-by-cell substitution, kept as the oracle the SWAR fast
   path is differentially tested against. *)
let map_cells f w =
  let rec go i acc = if i > 15 then acc else go (i + 1) (Word64.set_nibble acc i (f (Word64.nibble w i))) in
  go 0 w

let sub_cells t w = map_cells (fun x -> t.fwd.(x)) w
let sub_cells_inv t w = map_cells (fun x -> t.inv.(x)) w

let sub_bytes tbl w =
  let r = ref 0L in
  for b = 7 downto 0 do
    let v = Int64.to_int (Int64.shift_right_logical w (8 * b)) land 0xff in
    r := Int64.logor !r (Int64.shift_left (Int64.of_int tbl.(v)) (8 * b))
  done;
  !r

let sub_cells_fast t w = sub_bytes t.fwd_byte w
let sub_cells_inv_fast t w = sub_bytes t.inv_byte w

let is_permutation t =
  let seen = Array.make 16 false in
  Array.iter (fun v -> seen.(v) <- true) t.fwd;
  Array.for_all Fun.id seen

let is_involution t =
  let rec go i = i > 15 || (t.fwd.(t.fwd.(i)) = i && go (i + 1)) in
  go 0
