(* Pretty-printer for generated mini-C programs, used when reporting a
   (shrunk) failing seed.  The output is C-flavoured for reading, not
   for parsing back — a failure is reproduced from its seed, never from
   this text. *)

module Ast = Pacstack_minic.Ast

let binop = function
  | Ast.Add -> "+"
  | Sub -> "-"
  | Mul -> "*"
  | Div -> "/"
  | And -> "&"
  | Or -> "|"
  | Xor -> "^"
  | Shl -> "<<"
  | Shr -> ">>"

let relop = function
  | Ast.Eq -> "=="
  | Ne -> "!="
  | Lt -> "<"
  | Le -> "<="
  | Gt -> ">"
  | Ge -> ">="

let rec expr fmt (e : Ast.expr) =
  match e with
  | Int v -> Format.fprintf fmt "%Ld" v
  | Var x -> Format.pp_print_string fmt x
  | Addr_local x -> Format.fprintf fmt "&%s" x
  | Addr_global g -> Format.fprintf fmt "&@@%s" g
  | Addr_func f -> Format.fprintf fmt "&%s()" f
  | Load e -> Format.fprintf fmt "*(%a)" expr e
  | Load_byte e -> Format.fprintf fmt "*(u8*)(%a)" expr e
  | Binop (op, a, b) -> Format.fprintf fmt "(%a %s %a)" expr a (binop op) expr b
  | Call (f, args) -> Format.fprintf fmt "%s(%a)" f args_pp args
  | Call_ptr (fe, args) -> Format.fprintf fmt "(*%a)(%a)" expr fe args_pp args

and args_pp fmt args =
  Format.pp_print_list
    ~pp_sep:(fun fmt () -> Format.fprintf fmt ", ")
    expr fmt args

let cond fmt (Ast.Rel (op, a, b)) =
  Format.fprintf fmt "%a %s %a" expr a (relop op) expr b

let rec stmt fmt (s : Ast.stmt) =
  match s with
  | Let (x, e) -> Format.fprintf fmt "%s = %a;" x expr e
  | Store (a, e) -> Format.fprintf fmt "*(%a) = %a;" expr a expr e
  | Store_byte (a, e) -> Format.fprintf fmt "*(u8*)(%a) = %a;" expr a expr e
  | Expr e -> Format.fprintf fmt "%a;" expr e
  | If (c, t, []) -> Format.fprintf fmt "@[<v 2>if (%a) {%a@]@,}" cond c body t
  | If (c, t, f) ->
      Format.fprintf fmt "@[<v 2>if (%a) {%a@]@,@[<v 2>} else {%a@]@,}" cond c
        body t body f
  | While (c, b) -> Format.fprintf fmt "@[<v 2>while (%a) {%a@]@,}" cond c body b
  | Return None -> Format.fprintf fmt "return;"
  | Return (Some e) -> Format.fprintf fmt "return %a;" expr e
  | Tail_call (f, args) -> Format.fprintf fmt "tail return %s(%a);" f args_pp args
  | Setjmp (x, buf) -> Format.fprintf fmt "%s = setjmp(%a);" x expr buf
  | Longjmp (buf, v) -> Format.fprintf fmt "longjmp(%a, %a);" expr buf expr v
  | Hook name -> Format.fprintf fmt "__hook(\"%s\");" name
  | Print e -> Format.fprintf fmt "print(%a);" expr e
  | Block b -> Format.fprintf fmt "@[<v 2>{%a@]@,}" body b
  | Halt e -> Format.fprintf fmt "exit(%a);" expr e
  | Try (b, x, h) ->
      Format.fprintf fmt "@[<v 2>try {%a@]@,@[<v 2>} catch (%s) {%a@]@,}" body b
        x body h
  | Throw e -> Format.fprintf fmt "throw %a;" expr e

and body fmt b = List.iter (fun s -> Format.fprintf fmt "@,%a" stmt s) b

let local fmt = function
  | Ast.Scalar x -> Format.fprintf fmt "int64 %s;" x
  | Ast.Array (x, bytes) -> Format.fprintf fmt "u8 %s[%d];" x bytes

let fdef fmt (f : Ast.fdef) =
  Format.fprintf fmt "@[<v 2>%s(%s) {" f.fname (String.concat ", " f.params);
  List.iter (fun l -> Format.fprintf fmt "@,%a" local l) f.locals;
  body fmt f.body;
  Format.fprintf fmt "@]@,}"

let program fmt (p : Ast.program) =
  Format.fprintf fmt "@[<v>";
  List.iter (fun (g, bytes) -> Format.fprintf fmt "u8 @@%s[%d];@," g bytes) p.globals;
  List.iter (fun f -> Format.fprintf fmt "%a@," fdef f) p.fundefs;
  Format.fprintf fmt "@]"

let program_to_string p = Format.asprintf "%a" program p
