(* A reference interpreter for the mini-C AST.

   This is the oracle half of the differential fuzzer: it evaluates an
   [Ast.program] directly — no compilation, no hardening scheme, no
   register file — and produces the same [Trace.t] observables as a run
   of the compiled image on the machine model.  Where the language has
   a semantics choice, the interpreter mirrors `lib/machine` exactly:

   - all arithmetic is two's-complement int64 (wrapping add/sub/mul);
   - division is *unsigned* and total (x/0 = 0), like the Udiv the
     compiler emits;
   - shifts take the low six bits of the shift amount;
   - relational operators are signed, like the conditions the compiler
     selects;
   - memory is byte-addressable and little-endian: the interpreter
     reuses the machine's own [Memory] module for its store, so mixed
     byte/word access to arrays and globals agrees with the image by
     construction;
   - globals start zeroed (fresh pages); stack frames are *not* zeroed
     on entry — like the machine's recycled stack memory, uninitialised
     locals hold stale garbage, which is why the generator initialises
     everything before use;
   - indirect calls are checked against the set of function entry
     addresses, mirroring the machine's forward-CFI check on Blr;
   - setjmp returns twice: a longjmp with value 0 delivers 1, and a
     [Throw] caught by [Try] likewise delivers max(value, 1), because
     the machine lowers try/throw onto the same longjmp runtime.

   Variables live in memory slots (not an environment of values) so
   that [Addr_local] aliasing — writing through a pointer to a scalar —
   behaves exactly as on the machine.  The interpreter's address space
   is private and arbitrary; addresses are never observable. *)

module Ast = Pacstack_minic.Ast
module Memory = Pacstack_machine.Memory
module Trap = Pacstack_machine.Trap

(* Private layout: one region for globals, one descending stack, and a
   fake "code" region whose slots stand in for function entry points.
   The constants are unrelated to Image's layout on purpose — nothing
   may leak layout into observables. *)
let code_base = 0x4000L
let globals_base = 0x100000L
let stack_top = 0x7fff0000L
let stack_limit = 0x7ff00000L (* ~1 MiB of interpreter stack *)

type state = {
  mem : Memory.t;
  globals : (string, int64) Hashtbl.t; (* global name -> base address *)
  funcs : (string, Ast.fdef) Hashtbl.t;
  func_addr : (string, int64) Hashtbl.t;
  addr_func : (int64, Ast.fdef) Hashtbl.t;
  jmpbufs : (int64, int) Hashtbl.t; (* armed buffer address -> token *)
  mutable sp : int64;
  mutable next_token : int;
  mutable steps : int;
  max_steps : int;
  mutable out : int64 list; (* reversed output *)
}

(* Internal control-flow signals. *)
exception Halted of int
exception Return_sig of int64
exception Throw_sig of int64
exception Longjmp_sig of int * int64 (* token, value *)
exception Undefined of string (* interpreter-detected UB -> Trace.Trap *)
exception Out_of_steps

let tick st =
  st.steps <- st.steps + 1;
  if st.steps > st.max_steps then raise Out_of_steps

(* A frame environment maps every variable name (params, scalars,
   arrays, try catch-variables) to the address of its slot. *)
type env = (string, int64) Hashtbl.t

let slot env x =
  match Hashtbl.find_opt env x with
  | Some a -> a
  | None -> raise (Undefined ("unknown variable " ^ x))

let global_addr st g =
  match Hashtbl.find_opt st.globals g with
  | Some a -> a
  | None -> raise (Undefined ("unknown global " ^ g))

let func_address st f =
  match Hashtbl.find_opt st.func_addr f with
  | Some a -> a
  | None -> raise (Undefined ("unknown function " ^ f))

(* Exactly the machine's binop semantics (Machine.exec). *)
let binop (op : Ast.binop) a b =
  match op with
  | Add -> Int64.add a b
  | Sub -> Int64.sub a b
  | Mul -> Int64.mul a b
  | Div -> if Int64.equal b 0L then 0L else Int64.unsigned_div a b
  | And -> Int64.logand a b
  | Or -> Int64.logor a b
  | Xor -> Int64.logxor a b
  | Shl -> Int64.shift_left a (Int64.to_int b land 63)
  | Shr -> Int64.shift_right_logical a (Int64.to_int b land 63)

let relop (op : Ast.relop) a b =
  let c = Int64.compare a b in
  match op with
  | Eq -> c = 0
  | Ne -> c <> 0
  | Lt -> c < 0
  | Le -> c <= 0
  | Gt -> c > 0
  | Ge -> c >= 0

(* Frame layout: every param, scalar local, declared array and Try
   catch-variable gets a slot below the caller's sp.  Catch variables
   are found by scanning the body: the compiler's desugaring declares
   them implicitly, so the surface AST does not list them in locals. *)
let rec catch_vars_stmt acc (s : Ast.stmt) =
  match s with
  | Try (body, x, handler) ->
      let acc = if List.mem x acc then acc else x :: acc in
      catch_vars_body (catch_vars_body acc body) handler
  | If (_, t, f) -> catch_vars_body (catch_vars_body acc t) f
  | While (_, b) | Block b -> catch_vars_body acc b
  | Let _ | Store _ | Store_byte _ | Expr _ | Return _ | Tail_call _ | Setjmp _
  | Longjmp _ | Hook _ | Print _ | Halt _ | Throw _ ->
      acc

and catch_vars_body acc body = List.fold_left catch_vars_stmt acc body

let align8 n = (n + 7) land lnot 7

let push_frame st (fd : Ast.fdef) args =
  if List.length args <> List.length fd.params then
    raise (Undefined ("arity mismatch calling " ^ fd.fname));
  let env : env = Hashtbl.create 16 in
  let bytes = ref 0 in
  let alloc name size =
    let addr = Int64.sub st.sp (Int64.of_int (!bytes + size)) in
    bytes := align8 (!bytes + size);
    Hashtbl.replace env name addr
  in
  List.iter (fun p -> alloc p 8) fd.params;
  List.iter
    (fun (l : Ast.local) ->
      match l with
      | Scalar x -> alloc x 8
      | Array (x, size) -> alloc x (align8 (max size 1)))
    fd.locals;
  List.iter (fun x -> alloc x 8) (catch_vars_body [] fd.body);
  st.sp <- Int64.sub st.sp (Int64.of_int (align8 !bytes));
  if Int64.unsigned_compare st.sp stack_limit < 0 then
    raise (Undefined "interpreter stack overflow");
  List.iter2 (fun p v -> Memory.store64 st.mem (slot env p) v) fd.params args;
  env

let rec eval st env (e : Ast.expr) =
  tick st;
  match e with
  | Int v -> v
  | Var x -> Memory.load64 st.mem (slot env x)
  | Addr_local x -> slot env x
  | Addr_global g -> global_addr st g
  | Addr_func f -> func_address st f
  | Load a -> Memory.load64 st.mem (eval st env a)
  | Load_byte a -> Int64.of_int (Memory.load8 st.mem (eval st env a))
  | Binop (op, a, b) ->
      let va = eval st env a in
      let vb = eval st env b in
      binop op va vb
  | Call (f, args) ->
      let vs = eval_args st env args in
      let fd =
        match Hashtbl.find_opt st.funcs f with
        | Some fd -> fd
        | None -> raise (Undefined ("call to unknown function " ^ f))
      in
      call st fd vs
  | Call_ptr (fe, args) ->
      (* Target first, then arguments — the compiler's order. *)
      let target = eval st env fe in
      let vs = eval_args st env args in
      let fd =
        match Hashtbl.find_opt st.addr_func target with
        | Some fd -> fd
        (* Mirrors the machine's forward-CFI trap on Blr to a
           non-entry address. *)
        | None -> raise (Undefined "indirect call to non-function address")
      in
      call st fd vs

and eval_args st env args =
  (* Explicit left-to-right, like compiled argument evaluation. *)
  List.fold_left (fun acc a -> eval st env a :: acc) [] args |> List.rev

and call st fd vs =
  let saved_sp = st.sp in
  let env = push_frame st fd vs in
  let result =
    try
      exec_body st env fd.body;
      (* Falling off the end: the machine returns with whatever is in
         x0.  The generator always ends bodies with Return, so pin an
         arbitrary-but-fixed value. *)
      0L
    with Return_sig v -> v
  in
  st.sp <- saved_sp;
  result

and cond st env (c : Ast.cond) =
  match c with
  | Rel (op, a, b) ->
      let va = eval st env a in
      let vb = eval st env b in
      relop op va vb

and exec_body st env body =
  match body with
  | [] -> ()
  | Ast.Setjmp (x, bufe) :: rest ->
      (* Replay semantics: arm the buffer, then execute the rest of
         this statement list; a longjmp to this buffer restores sp and
         re-executes the rest with the delivered value in x. *)
      tick st;
      let buf = eval st env bufe in
      let token = st.next_token in
      st.next_token <- token + 1;
      Hashtbl.replace st.jmpbufs buf token;
      let saved_sp = st.sp in
      Memory.store64 st.mem (slot env x) 0L;
      let rec attempt () =
        try exec_body st env rest
        with Longjmp_sig (t, v) when t = token ->
          st.sp <- saved_sp;
          Memory.store64 st.mem (slot env x)
            (if Int64.equal v 0L then 1L else v);
          attempt ()
      in
      attempt ()
  | s :: rest ->
      exec_stmt st env s;
      exec_body st env rest

and exec_stmt st env (s : Ast.stmt) =
  tick st;
  match s with
  | Let (x, e) ->
      let v = eval st env e in
      Memory.store64 st.mem (slot env x) v
  | Store (a, e) ->
      (* Address first, then value — the compiler's order. *)
      let addr = eval st env a in
      let v = eval st env e in
      Memory.store64 st.mem addr v
  | Store_byte (a, e) ->
      let addr = eval st env a in
      let v = eval st env e in
      Memory.store8 st.mem addr (Int64.to_int v land 0xff)
  | Expr e -> ignore (eval st env e)
  | If (c, t, f) -> if cond st env c then exec_body st env t else exec_body st env f
  | While (c, b) ->
      while cond st env c do
        exec_body st env b
      done
  | Return None -> raise (Return_sig 0L)
  | Return (Some e) -> raise (Return_sig (eval st env e))
  | Tail_call (f, args) ->
      (* The callee's return value becomes this function's return
         value; observationally a call followed by return. *)
      let vs = eval_args st env args in
      let fd =
        match Hashtbl.find_opt st.funcs f with
        | Some fd -> fd
        | None -> raise (Undefined ("tail call to unknown function " ^ f))
      in
      raise (Return_sig (call st fd vs))
  | Setjmp _ ->
      (* Handled in exec_body; a Setjmp that is the last statement of a
         block arms a buffer nothing can observe. *)
      exec_body st env [ s ]
  | Longjmp (bufe, ve) ->
      let buf = eval st env bufe in
      let v = eval st env ve in
      let token =
        match Hashtbl.find_opt st.jmpbufs buf with
        | Some t -> t
        | None -> raise (Undefined "longjmp to unarmed buffer")
      in
      raise (Longjmp_sig (token, v))
  | Hook _ -> () (* attack intrinsics have no architectural observables *)
  | Print e -> st.out <- eval st env e :: st.out
  | Block b -> exec_body st env b
  | Halt e -> raise (Halted (Int64.to_int (eval st env e)))
  | Try (body, x, handler) ->
      let saved_sp = st.sp in
      let delivered =
        try
          exec_body st env body;
          None
        with Throw_sig v -> Some v
      in
      (match delivered with
      | None -> ()
      | Some v ->
          st.sp <- saved_sp;
          (* The machine lowers throw onto longjmp, so a thrown 0
             arrives as 1. *)
          Memory.store64 st.mem (slot env x)
            (if Int64.equal v 0L then 1L else v);
          exec_body st env handler)
  | Throw e -> raise (Throw_sig (eval st env e))

(* --- program setup ------------------------------------------------------ *)

let setup ~max_steps (p : Ast.program) =
  let mem = Memory.create () in
  let st =
    {
      mem;
      globals = Hashtbl.create 8;
      funcs = Hashtbl.create 8;
      func_addr = Hashtbl.create 8;
      addr_func = Hashtbl.create 8;
      jmpbufs = Hashtbl.create 4;
      sp = stack_top;
      next_token = 1;
      steps = 0;
      max_steps;
      out = [];
    }
  in
  (* Globals: zero-initialised contiguous slots, 16-byte aligned so
     masked power-of-two indexing stays in bounds. *)
  let gbytes =
    List.fold_left (fun acc (_, size) -> acc + align8 (max size 8)) 0 p.globals
  in
  Memory.map mem ~addr:globals_base
    ~size:(max Memory.page_size (align8 gbytes + 16))
    Memory.perm_rw;
  let next = ref globals_base in
  List.iter
    (fun (name, size) ->
      Hashtbl.replace st.globals name !next;
      next := Int64.add !next (Int64.of_int (align8 (max size 8))))
    p.globals;
  (* Stack pages. *)
  Memory.map mem ~addr:stack_limit
    ~size:(Int64.to_int (Int64.sub stack_top stack_limit))
    Memory.perm_rw;
  (* Function table: each function gets a distinct fake entry address.
     The slots live in unmapped space — loading from them would trap,
     as loading from a code address traps on the machine's W^X map for
     data access... they are just names, never dereferenced. *)
  List.iteri
    (fun idx (fd : Ast.fdef) ->
      if Hashtbl.mem st.funcs fd.fname then
        raise (Undefined ("duplicate function " ^ fd.fname));
      let addr = Int64.add code_base (Int64.of_int (idx * 16)) in
      Hashtbl.replace st.funcs fd.fname fd;
      Hashtbl.replace st.func_addr fd.fname addr;
      Hashtbl.replace st.addr_func addr fd)
    p.fundefs;
  st

(* --- entry point -------------------------------------------------------- *)

let default_max_steps = 2_000_000

(* Run [p] and produce its observable trace.  Never raises: undefined
   behaviour and memory faults map to [Trace.Trap], step exhaustion to
   [Trace.Fuel]. *)
let run ?(max_steps = default_max_steps) (p : Ast.program) : Trace.t =
  match
    let st = setup ~max_steps p in
    let outcome =
      try
        let main =
          match Hashtbl.find_opt st.funcs p.main with
          | Some fd -> fd
          | None -> raise (Undefined ("missing entry function " ^ p.main))
        in
        if main.params <> [] then raise (Undefined "entry function takes arguments");
        let v = call st main [] in
        Trace.Exit (Int64.to_int v)
      with
      | Halted code -> Trace.Exit code
      | Throw_sig _ ->
          (* Uncaught throw: the runtime's __throw finds no handler and
             halts with the fixed uncaught-exception exit code. *)
          Trace.Exit Pacstack_minic.Exceptions.uncaught_exit_code
      | Longjmp_sig _ | Undefined _ | Trap.Fault _ -> Trace.Trap
      | Out_of_steps -> Trace.Fuel
    in
    { Trace.outcome; output = List.rev st.out }
  with
  | t -> t
  | exception Trap.Fault _ -> { Trace.outcome = Trap; output = [] }
  | exception Undefined _ -> { Trace.outcome = Trap; output = [] }
