(* The observable trace of a mini-C program execution.

   Both the reference interpreter (Interp) and the hardware model
   (Machine, via Oracle) reduce an execution to this record, and the
   differential oracle compares nothing else.  The observables are
   deliberately minimal:

   - [outcome] — how the execution ended: a normal exit with a code, a
     trap (any fault: the oracle compares trap-or-not, not the precise
     trap cause, because the schemes legitimately differ in *which*
     check fires first), or fuel exhaustion (treated as "skip this
     seed" by the oracle, never as a divergence);
   - [output] — the exact sequence of 64-bit values written through the
     [Print] statement (SVC 1 on the machine side), in order.

   Addresses are intentionally *not* observable: stack layout, global
   placement and code addresses all differ between the interpreter's
   abstract store and the compiled image, so generated programs never
   print or store pointer-derived values (see Gen). *)

type outcome =
  | Exit of int  (** normal termination with this exit code *)
  | Trap  (** any machine fault / interpreter-detected undefined behaviour *)
  | Fuel  (** ran out of fuel/steps — oracle skips, never a verdict *)

type t = { outcome : outcome; output : int64 list }

let exit_code code = { outcome = Exit code; output = [] }

let pp_outcome fmt = function
  | Exit c -> Format.fprintf fmt "exit %d" c
  | Trap -> Format.fprintf fmt "trap"
  | Fuel -> Format.fprintf fmt "out-of-fuel"

let pp fmt t =
  Format.fprintf fmt "%a; output [%a]" pp_outcome t.outcome
    (Format.pp_print_list
       ~pp_sep:(fun fmt () -> Format.fprintf fmt "; ")
       (fun fmt v -> Format.fprintf fmt "%Ld" v))
    t.output

let to_string t = Format.asprintf "%a" pp t

let equal_outcome a b =
  match (a, b) with
  | Exit x, Exit y -> x = y
  | Trap, Trap -> true
  | Fuel, Fuel -> true
  | (Exit _ | Trap | Fuel), _ -> false

let equal a b =
  equal_outcome a.outcome b.outcome && List.equal Int64.equal a.output b.output
