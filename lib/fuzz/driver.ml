(* The fuzzing driver: seed discipline, per-seed verdicts, mergeable
   statistics.

   Seed discipline: fuzz seed [i] of a campaign with seed [S] derives
   its generator rng as [split (create (S + i))] — a fresh SplitMix64
   stream per seed, independent of worker count and of how seeds are
   partitioned into shards.  Re-running any seed in isolation (e.g. to
   reproduce or shrink a failure) regenerates the identical program
   from just [(S, i)]. *)

module Ast = Pacstack_minic.Ast
module Rng = Pacstack_util.Rng

let seed_rng ~campaign_seed i =
  Rng.split (Rng.create (Int64.add campaign_seed (Int64.of_int i)))

let program_of_seed ?vuln ~campaign_seed i =
  Gen.generate ?vuln (seed_rng ~campaign_seed i)

(* One failure record, flat and serialisable.  The program itself is
   not stored: it is regenerable from (campaign_seed, seed). *)
type failure = {
  seed : int;
  scheme : string;
  optimize : bool;
  site : string;
  expected : string;
  actual : string;
}

type stats = {
  programs : int; (* seeds fuzzed *)
  runs : int; (* machine executions compared against the oracle *)
  skipped : int; (* seeds skipped for fuel on either side *)
  crashes : int; (* harness exceptions (compile error on generated code) *)
  failures : failure list; (* divergences, in seed order *)
}

let empty = { programs = 0; runs = 0; skipped = 0; crashes = 0; failures = [] }

let merge a b =
  {
    programs = a.programs + b.programs;
    runs = a.runs + b.runs;
    skipped = a.skipped + b.skipped;
    crashes = a.crashes + b.crashes;
    failures = a.failures @ b.failures;
  }

let failure_of_divergence ~seed (d : Oracle.divergence) =
  {
    seed;
    scheme = Pacstack_harden.Scheme.to_string d.scheme;
    optimize = d.optimize;
    site = Oracle.site_to_string d.site;
    expected = Trace.to_string d.expected;
    actual = Trace.to_string d.actual;
  }

module Obs = Pacstack_obs.Obs

(* One guarded call per seed; the verdict trace event is keyed by the
   seed index, which campaign sharding assigns to exactly one worker —
   the property the deterministic trace merge relies on. *)
let obs_seed i verdict (s : stats) =
  if Obs.enabled () then begin
    Obs.Metrics.incr "fuzz.programs";
    Obs.Metrics.incr ~by:s.runs "fuzz.runs";
    Obs.Metrics.incr ~by:s.skipped "fuzz.skipped";
    Obs.Metrics.incr ~by:s.crashes "fuzz.crashes";
    Obs.Metrics.incr ~by:(List.length s.failures) "fuzz.divergences";
    Obs.Metrics.incr ("fuzz.verdict." ^ verdict);
    Obs.Trace.emit ~key:i "fuzz.seed"
      [ ("verdict", Obs.Json.String verdict); ("runs", Obs.Json.Int s.runs) ]
  end;
  s

let run_seed cfg ~campaign_seed i : stats =
  match
    let p = program_of_seed ~campaign_seed i in
    Oracle.check cfg p
  with
  | Oracle.Agree runs -> obs_seed i "agree" { empty with programs = 1; runs }
  | Oracle.Skipped _ -> obs_seed i "skip" { empty with programs = 1; skipped = 1 }
  | Oracle.Disagree ds ->
    obs_seed i "divergence"
      {
        empty with
        programs = 1;
        runs = List.length ds;
        failures = List.map (failure_of_divergence ~seed:i) ds;
      }
  | exception _ -> obs_seed i "crash" { empty with programs = 1; crashes = 1 }

(* Fuzz the half-open seed range [lo, hi). *)
let run_range cfg ~campaign_seed ~lo ~hi : stats =
  let acc = ref empty in
  for i = lo to hi - 1 do
    acc := merge !acc (run_seed cfg ~campaign_seed i)
  done;
  !acc

let triage_entries (s : stats) =
  List.map
    (fun (f : failure) ->
      { Triage.seed = f.seed; scheme = f.scheme; optimize = f.optimize; site = f.site })
    s.failures

let pp_stats fmt (s : stats) =
  Format.fprintf fmt
    "@[<v>programs %d, machine runs %d, skipped %d, crashes %d, divergences %d@]"
    s.programs s.runs s.skipped s.crashes (List.length s.failures)
