(* The differential oracle.

   One generated program is compiled under every hardening scheme, with
   and without the peephole optimizer, executed on the machine model,
   and each run's observable trace is compared against the reference
   interpreter's.  Fuel exhaustion on either side skips the seed (a
   slow program proves nothing either way); any other difference is a
   divergence, attributed to its first point of disagreement.

   [transform] is a hook applied to the compiled [Program.t] before it
   is loaded — tests use it to plant a deliberate miscompilation and
   check that the oracle catches and the shrinker localises it.  It is
   never set in production fuzzing. *)

module Ast = Pacstack_minic.Ast
module Compile = Pacstack_minic.Compile
module Scheme = Pacstack_harden.Scheme
module Machine = Pacstack_machine.Machine
module Program = Pacstack_isa.Program

type config = {
  schemes : Scheme.t list;
  optimize : bool list; (* peephole off/on variants to run *)
  machine_fuel : int;
  interp_steps : int;
  transform : (Program.t -> Program.t) option;
}

let default_config =
  {
    schemes = Scheme.all;
    optimize = [ false; true ];
    machine_fuel = 10_000_000;
    interp_steps = Interp.default_max_steps;
    transform = None;
  }

(* Compile and run one variant on the machine model. *)
let machine_trace cfg ~scheme ~optimize (p : Ast.program) : Trace.t =
  let compiled = Compile.compile ~scheme ~optimize p in
  let compiled =
    match cfg.transform with Some f -> f compiled | None -> compiled
  in
  let m = Machine.load compiled in
  let outcome =
    match Machine.run ~fuel:cfg.machine_fuel m with
    | Machine.Halted code -> Trace.Exit code
    | Machine.Faulted _ -> Trace.Trap
    | Machine.Out_of_fuel -> Trace.Fuel
  in
  { Trace.outcome; output = Machine.output m }

type site = First_output of int | Outcome
(** Where a divergence first becomes visible: output position [i], or
    the final outcome after identical output. *)

let pp_site fmt = function
  | First_output i -> Format.fprintf fmt "output[%d]" i
  | Outcome -> Format.fprintf fmt "outcome"

let site_to_string s = Format.asprintf "%a" pp_site s

let first_divergence ~(expected : Trace.t) ~(actual : Trace.t) =
  let rec scan i a b =
    match (a, b) with
    | x :: a', y :: b' ->
        if Int64.equal x y then scan (i + 1) a' b' else First_output i
    | [], [] -> Outcome
    | [], _ :: _ | _ :: _, [] -> First_output i
  in
  if Trace.equal expected actual then Outcome (* unused: only for diverging pairs *)
  else
    match scan 0 expected.output actual.output with
    | First_output i -> First_output i
    | Outcome -> Outcome

type divergence = {
  scheme : Scheme.t;
  optimize : bool;
  expected : Trace.t; (* the interpreter's trace *)
  actual : Trace.t; (* the machine's trace *)
  site : site;
}

let pp_divergence fmt d =
  Format.fprintf fmt "@[<v 2>%s%s diverges at %a:@ interpreter: %a@ machine:     %a@]"
    (Scheme.to_string d.scheme)
    (if d.optimize then "+peephole" else "")
    pp_site d.site Trace.pp d.expected Trace.pp d.actual

type verdict =
  | Agree of int  (** all variants matched; the count of machine runs *)
  | Disagree of divergence list
  | Skipped of string  (** fuel ran out somewhere: no verdict *)

(* Compare every (scheme, optimize) variant of [p] against the
   interpreter.  Compile errors propagate as exceptions: the generator
   promises compilable programs, so a raise is a fuzzer bug the driver
   records as a crash. *)
let check cfg (p : Ast.program) : verdict =
  let expected = Interp.run ~max_steps:cfg.interp_steps p in
  if expected.outcome = Trace.Fuel then Skipped "interpreter out of steps"
  else begin
    let runs = ref 0 in
    let divergences = ref [] in
    let fuel_out = ref false in
    List.iter
      (fun scheme ->
        List.iter
          (fun optimize ->
            if not !fuel_out then begin
              let actual = machine_trace cfg ~scheme ~optimize p in
              if actual.outcome = Trace.Fuel then fuel_out := true
              else begin
                incr runs;
                if not (Trace.equal expected actual) then
                  divergences :=
                    {
                      scheme;
                      optimize;
                      expected;
                      actual;
                      site = first_divergence ~expected ~actual;
                    }
                    :: !divergences
              end
            end)
          cfg.optimize)
      cfg.schemes;
    if !fuel_out then Skipped "machine out of fuel"
    else
      match List.rev !divergences with
      | [] -> Agree !runs
      | ds -> Disagree ds
  end
