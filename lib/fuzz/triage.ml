(* Crash triage: bucket divergences by first-divergence site.

   Two failures land in the same bucket when they diverge under the
   same scheme and optimizer setting, at the same kind of site, with
   the same outcome shape — the usual granularity at which one compiler
   bug produces many failing seeds.  The report prints one exemplar
   seed per bucket, cheapest first. *)

module Scheme = Pacstack_harden.Scheme

type entry = { seed : int; scheme : string; optimize : bool; site : string }

let bucket_key (e : entry) =
  Printf.sprintf "%s%s @ %s" e.scheme (if e.optimize then "+peephole" else "") e.site

let of_divergence ~seed (d : Oracle.divergence) =
  {
    seed;
    scheme = Scheme.to_string d.scheme;
    optimize = d.optimize;
    site = Oracle.site_to_string d.site;
  }

type bucket = { key : string; count : int; exemplar : int (* lowest seed *) }

let buckets (entries : entry list) : bucket list =
  let tbl = Hashtbl.create 16 in
  List.iter
    (fun e ->
      let key = bucket_key e in
      match Hashtbl.find_opt tbl key with
      | None -> Hashtbl.replace tbl key (1, e.seed)
      | Some (n, ex) -> Hashtbl.replace tbl key (n + 1, min ex e.seed))
    entries;
  Hashtbl.fold (fun key (count, exemplar) acc -> { key; count; exemplar } :: acc) tbl []
  |> List.sort (fun a b ->
         match compare b.count a.count with 0 -> compare a.key b.key | c -> c)

let pp_buckets fmt bs =
  List.iter
    (fun b ->
      Format.fprintf fmt "%4d  %-40s  e.g. seed %d@," b.count b.key b.exemplar)
    bs
