(* Delta-debugging shrinker for diverging programs.

   Greedy descent over one-step reductions: drop a whole function, drop
   a statement, replace a compound statement by one of its sub-bodies,
   or splice a nested block into its parent.  A candidate is accepted
   when [keep] still holds (i.e. the divergence still reproduces); the
   predicate is applied under try — a candidate that no longer compiles
   simply fails [keep] and is discarded.  Descent repeats to a fixpoint,
   so the result is locally minimal: no single deletion preserves the
   bug.  Statement counts use [Ast.program_size]. *)

module Ast = Pacstack_minic.Ast

(* All one-step reductions of a statement list: for each position,
   remove the statement, splice its sub-body, or reduce it in place. *)
let rec list_reductions (body : Ast.stmt list) : Ast.stmt list list =
  let n = List.length body in
  let arr = Array.of_list body in
  let with_at i repl =
    Array.to_list (Array.mapi (fun j s -> if j = i then repl else [ s ]) arr)
    |> List.concat
  in
  List.concat
    (List.init n (fun i ->
         let s = arr.(i) in
         with_at i [] (* drop statement i *)
         :: List.map (fun s' -> with_at i [ s' ]) (stmt_reductions s)
         @
         match s with
         | Ast.Block b -> [ with_at i b ] (* splice nested block *)
         | _ -> []))

and stmt_reductions (s : Ast.stmt) : Ast.stmt list =
  match s with
  | Ast.If (c, t, f) ->
      [ Ast.Block t; Ast.Block f ]
      @ List.map (fun t' -> Ast.If (c, t', f)) (list_reductions t)
      @ List.map (fun f' -> Ast.If (c, t, f')) (list_reductions f)
  | Ast.While (c, b) ->
      Ast.Block b :: List.map (fun b' -> Ast.While (c, b')) (list_reductions b)
  | Ast.Block b -> List.map (fun b' -> Ast.Block b') (list_reductions b)
  | Ast.Try (b, x, h) ->
      [ Ast.Block b; Ast.Block h ]
      @ List.map (fun b' -> Ast.Try (b', x, h)) (list_reductions b)
      @ List.map (fun h' -> Ast.Try (b, x, h')) (list_reductions h)
  | Ast.Let _ | Ast.Store _ | Ast.Store_byte _ | Ast.Expr _ | Ast.Return _
  | Ast.Tail_call _ | Ast.Setjmp _ | Ast.Longjmp _ | Ast.Hook _ | Ast.Print _
  | Ast.Halt _ | Ast.Throw _ ->
      []

(* Candidate programs one step smaller than [p]: drop a non-main
   function, or reduce one function body. *)
let candidates (p : Ast.program) : Ast.program list =
  let drop_funcs =
    List.filter_map
      (fun (f : Ast.fdef) ->
        if f.fname = p.main then None
        else
          Some
            {
              p with
              fundefs = List.filter (fun (g : Ast.fdef) -> g.fname <> f.fname) p.fundefs;
            })
      p.fundefs
  in
  let reduce_bodies =
    List.concat_map
      (fun (f : Ast.fdef) ->
        List.map
          (fun body' ->
            {
              p with
              fundefs =
                List.map
                  (fun (g : Ast.fdef) ->
                    if g.fname = f.fname then { g with body = body' } else g)
                  p.fundefs;
            })
          (list_reductions f.body))
      p.fundefs
  in
  drop_funcs @ reduce_bodies

(* Greedy fixpoint: take the first accepted reduction, repeat. *)
let shrink ~keep (p : Ast.program) =
  let keeps q = try keep q with _ -> false in
  let rec go p =
    match List.find_opt keeps (candidates p) with
    | Some p' -> go p'
    | None -> p
  in
  if keeps p then go p else p
