(* Seeded random mini-C program generator.

   Built on the [Minic.Build] combinators, driven by a SplitMix64 [Rng]:
   the same seed always yields the same program, on any host and at any
   worker count.  The grammar is weighted, and every generated program
   is *closed over the differential oracle's blind spots* — it must
   behave identically on the reference interpreter and on the compiled
   image under every scheme, so the generator enforces:

   - termination: loops are counting loops over fresh counters that no
     statement may reassign, with constant bounds; recursion decrements
     a first argument that callers pass as a small constant, with a
     `<= 0` base case; raw longjmp sites are one-shot (guarded by a
     global flag);
   - no observable addresses: pointer-valued Addr_ expressions only
     flow into load/store/call-target positions, never into printed or
     stored data — stack layout differs between interpreter and image;
   - initialise-before-use: stack memory is recycled garbage on both
     sides, but *different* garbage, so every scalar and every array
     slot is written before the function body can read it (globals are
     zero pages on both sides and need no initialisation);
   - in-bounds indexing: array/global subscripts are either constant and
     in range or masked with [slots-1] over power-of-two slot counts;
   - bounded expression depth: the compiler has six expression
     temporaries, so every expression position carries a "room" budget;
   - per-program exception discipline: a program uses raw
     setjmp/longjmp or try/throw, never both (mixing them can strand
     the lowered handler chain — real UB, not a miscompile);
   - at most one [Try] per function, with no Return/Tail_call inside
     the protected body (the lowered handler-pop would be skipped — UB
     by design, as in C);
   - main never tail-calls in setjmp programs (a longjmp back into a
     main that tail-called away would resurrect a frame the callee
     overwrote).

   [~vuln:true] additionally sprinkles [Hook] attack intrinsics; hooks
   are architecturally silent unless a harness registers them, and the
   differential driver never does — they exist so the attacker harness
   can reuse fuzzed corpora. *)

module Ast = Pacstack_minic.Ast
module B = Pacstack_minic.Build
module Rng = Pacstack_util.Rng

type callee = {
  cname : string;
  arity : int;
  bounded : bool; (* recursive: first argument must be a small constant *)
}

type mode = Plain | Setjmp_mode | Throw_mode

type scope = {
  rng : Rng.t;
  reads : string list; (* scalars known to be initialised here *)
  writes : string list; (* scalars statements may assign *)
  arrays : (string * int) list; (* local arrays: name, 8-byte slots (pow2) *)
  globals : (string * int) list; (* data globals: name, slots (pow2) *)
  callees : callee list;
  allow_callptr : bool;
  mode : mode;
  allow_return : bool;
  allow_tail : bool;
  depth : int;
  vuln : bool;
  fresh : int ref; (* program-wide counter for generated names *)
  budget : int ref; (* statements remaining for this function *)
  new_locals : Ast.local list ref; (* loop counters needing declaration *)
}

(* List.init with a guaranteed left-to-right effect order, so the rng
   stream (and thus the generated program) never depends on stdlib
   evaluation-order choices. *)
let tabulate n f =
  let rec go i acc = if i >= n then List.rev acc else go (i + 1) (f i :: acc) in
  go 0 []

let interesting_consts =
  [| 0L; 1L; 2L; -1L; 3L; 7L; 13L; 64L; 255L; 256L; 1024L; 0x7fffffffL; -1000L |]

let const rng =
  if Rng.bool rng then Ast.Int (Rng.choose rng interesting_consts)
  else Ast.Int (Int64.of_int (Rng.int rng 25 - 8))

let pick_list rng l = List.nth l (Rng.int rng (List.length l))

(* --- data expressions ---------------------------------------------------

   [room] is how many extra compiler temporaries the expression may
   consume beyond its starting depth.  Leaf costs: constants and
   variables 0; loads with a constant offset 1; masked variable
   indexing 2 (the mask and the shift each burn a temp). *)

let ops = [| Ast.Add; Sub; Mul; Div; And; Or; Xor; Shl; Shr |]

(* address of a random in-bounds 8-byte slot of a named region, with its
   temp cost *)
let slot_addr rng base slots reads =
  if slots > 1 && reads <> [] && Rng.int rng 3 = 0 then
    ( Ast.Binop
        ( Add,
          base,
          Binop
            ( Shl,
              Binop (And, Var (pick_list rng reads), Int (Int64.of_int (slots - 1))),
              Int 3L ) ),
      2 )
  else (Ast.Binop (Add, base, Int (Int64.of_int (8 * Rng.int rng slots))), 1)

let rec data_expr sc room =
  let rng = sc.rng in
  if room <= 0 || Rng.int rng 5 < 2 then data_leaf sc room
  else
    let a = data_expr sc room in
    let b = data_expr sc (room - 1) in
    Ast.Binop (Rng.choose rng ops, a, b)

and data_leaf sc room =
  let rng = sc.rng in
  let choices = ref [ `Const; `Const ] in
  if sc.reads <> [] then choices := `Var :: `Var :: !choices;
  if room >= 1 && sc.globals <> [] then choices := `Glob :: !choices;
  if room >= 1 && sc.arrays <> [] then choices := `Arr :: `Byte :: !choices;
  match pick_list rng !choices with
  | `Const -> const rng
  | `Var -> Ast.Var (pick_list rng sc.reads)
  | `Glob ->
      let g, slots = pick_list rng sc.globals in
      let addr, cost = slot_addr rng (Ast.Addr_global g) slots sc.reads in
      if cost > room then Ast.Load (Ast.Addr_global g) else Ast.Load addr
  | `Arr ->
      let a, slots = pick_list rng sc.arrays in
      let addr, cost = slot_addr rng (Ast.Addr_local a) slots sc.reads in
      if cost > room then Ast.Load (Ast.Addr_local a) else Ast.Load addr
  | `Byte ->
      let a, slots = pick_list rng sc.arrays in
      Ast.Load_byte
        (Binop (Add, Addr_local a, Int (Int64.of_int (Rng.int rng (8 * slots)))))

let data_cond sc =
  let a = data_expr sc 2 in
  let b = data_expr sc 2 in
  Ast.Rel (Rng.choose sc.rng [| Ast.Eq; Ne; Lt; Le; Gt; Ge |], a, b)

(* A random writable 8-byte location: an array slot, a global slot, or a
   scalar aliased through its address (exercises Addr_local aliasing). *)
let store_target sc =
  let rng = sc.rng in
  let choices = ref [] in
  if sc.arrays <> [] then choices := `Arr :: `Arr :: !choices;
  if sc.globals <> [] then choices := `Glob :: !choices;
  if sc.writes <> [] then choices := `Alias :: !choices;
  match !choices with
  | [] -> None
  | cs ->
      Some
        (match pick_list rng cs with
        | `Arr ->
            let a, slots = pick_list rng sc.arrays in
            fst (slot_addr rng (Ast.Addr_local a) slots sc.reads)
        | `Glob ->
            let g, slots = pick_list rng sc.globals in
            fst (slot_addr rng (Ast.Addr_global g) slots sc.reads)
        | `Alias -> Ast.Addr_local (pick_list rng sc.writes))

(* --- calls --------------------------------------------------------------- *)

let call_args sc (c : callee) =
  tabulate c.arity (fun i ->
      if i = 0 && c.bounded then Ast.Int (Int64.of_int (Rng.int sc.rng 7))
      else data_expr sc 2)

let callptr_expr sc =
  (* load a slot of the global function-pointer table; both slots hold
     arity-1 function addresses before any call can run *)
  let rng = sc.rng in
  let idx =
    if sc.reads <> [] && Rng.bool rng then
      Ast.Binop (Shl, Binop (And, Var (pick_list rng sc.reads), Int 1L), Int 3L)
    else Ast.Int (Int64.of_int (8 * Rng.int rng 2))
  in
  let arg = data_expr sc 2 in
  Ast.Call_ptr (Load (Binop (Add, Addr_global "ftab", idx)), [ arg ])

(* --- statements ---------------------------------------------------------- *)

let fresh_name sc prefix =
  let n = !(sc.fresh) in
  sc.fresh := n + 1;
  prefix ^ string_of_int n

let rec gen_stmt sc : Ast.stmt list =
  let rng = sc.rng in
  decr sc.budget;
  let weighted = ref [] in
  let add w kind = if w > 0 then weighted := (w, kind) :: !weighted in
  add 4 `Let;
  add (if sc.arrays <> [] || sc.globals <> [] || sc.writes <> [] then 3 else 0) `Store;
  add (if sc.arrays <> [] then 1 else 0) `Store_byte;
  add 3 `Print;
  add (if sc.depth < 3 && !(sc.budget) > 2 then 2 else 0) `If;
  add (if sc.depth < 2 && !(sc.budget) > 3 then 2 else 0) `For;
  add (if sc.callees <> [] then 3 else 0) `Call;
  add (if sc.allow_callptr then 1 else 0) `Callptr;
  add (if sc.mode = Throw_mode then 1 else 0) `Throw;
  add (if sc.mode = Setjmp_mode then 1 else 0) `Longjmp;
  add (if sc.allow_return && sc.depth > 0 then 1 else 0) `Return;
  add (if sc.vuln then 1 else 0) `Hook;
  let total = List.fold_left (fun a (w, _) -> a + w) 0 !weighted in
  let rec select n = function
    | [] -> `Let
    | (w, k) :: rest -> if n < w then k else select (n - w) rest
  in
  match select (Rng.int rng total) !weighted with
  | `Let when sc.writes = [] -> [ B.print (data_expr sc 3) ]
  | `Let ->
      let x = pick_list rng sc.writes in
      [ B.set x (data_expr sc 3) ]
  | `Store -> (
      match store_target sc with
      | Some addr -> [ B.store addr (data_expr sc 3) ]
      | None -> [ B.print (data_expr sc 3) ])
  | `Store_byte ->
      let a, slots = pick_list rng sc.arrays in
      let addr =
        Ast.Binop (Add, Addr_local a, Int (Int64.of_int (Rng.int rng (8 * slots))))
      in
      [ B.store8 addr (data_expr sc 3) ]
  | `Print -> [ B.print (data_expr sc 3) ]
  | `If ->
      let c = data_cond sc in
      let t = gen_body { sc with depth = sc.depth + 1 } (1 + Rng.int rng 3) in
      let f =
        if Rng.bool rng then []
        else gen_body { sc with depth = sc.depth + 1 } (1 + Rng.int rng 2)
      in
      [ B.if_ c t f ]
  | `For ->
      let k = fresh_name sc "k" in
      sc.new_locals := Ast.Scalar k :: !(sc.new_locals);
      let bound = 1 + Rng.int rng 4 in
      (* the counter is readable but never assignable inside the body,
         which is what guarantees termination; Return out of a loop is
         legal but generated sparingly via the enclosing scope *)
      let body_sc = { sc with reads = k :: sc.reads; depth = sc.depth + 1 } in
      let body = gen_body body_sc (1 + Rng.int rng 3) in
      [ B.for_ k ~from:(B.i 0) ~below:(B.i bound) body ]
  | `Call ->
      let c = pick_list rng sc.callees in
      let args = call_args sc c in
      if sc.writes <> [] && Rng.int rng 4 > 0 then
        [ B.set (pick_list rng sc.writes) (Ast.Call (c.cname, args)) ]
      else [ B.expr (Ast.Call (c.cname, args)) ]
  | `Callptr ->
      let e = callptr_expr sc in
      if sc.writes <> [] then [ B.set (pick_list rng sc.writes) e ]
      else [ B.expr e ]
  | `Throw ->
      (* conditional, so a throw site does not always abort what follows *)
      let c = data_cond sc in
      [ B.if_ c [ B.throw (data_expr sc 2) ] [] ]
  | `Longjmp ->
      (* one-shot: a global flag guards the jump, so the re-executed
         continuation of setjmp cannot jump again *)
      let v = data_expr sc 1 in
      [
        B.if_
          (Ast.Rel (Eq, Load (Addr_global "jonce"), Int 0L))
          [ B.store (B.glob "jonce") (B.i 1); Ast.Longjmp (Addr_global "jb", v) ]
          [];
      ]
  | `Return -> [ B.ret (data_expr sc 3) ]
  | `Hook -> [ B.hook (fresh_name sc "vuln") ]

and gen_body sc n =
  if !(sc.budget) <= 0 then [ B.print (data_expr sc 2) ]
  else List.concat (tabulate n (fun _ -> gen_stmt sc))

(* --- try/throw decoration ------------------------------------------------ *)

(* Insert at most one Try per function, at the top level of its body.
   The protected body must not Return or Tail_call (the lowered
   handler-pop would be skipped); the handler may — by the time it
   runs, this function's handler is already unlinked, and it is the
   only Try in the function. *)
let maybe_wrap_try sc body =
  if sc.mode = Throw_mode && Rng.int sc.rng 2 = 0 && !(sc.budget) > 2 then begin
    let x = fresh_name sc "exn" in
    let try_sc = { sc with allow_return = false; allow_tail = false } in
    let protected = gen_body try_sc (1 + Rng.int sc.rng 2) in
    let handler_sc = { sc with reads = x :: sc.reads } in
    let handler = B.print (Ast.Var x) :: gen_body handler_sc (Rng.int sc.rng 2) in
    let pos = Rng.int sc.rng (1 + List.length body) in
    List.filteri (fun i _ -> i < pos) body
    @ [ B.try_ protected x handler ]
    @ List.filteri (fun i _ -> i >= pos) body
  end
  else body

(* --- functions ----------------------------------------------------------- *)

(* Initialise every declared scalar and every array slot before the
   random body may read them.  Scalar initialisers may read only the
   parameters and the zero-filled globals — never the arrays, which are
   not initialised yet at that point. *)
let init_stmts sc params scalars arrays =
  let param_scope = { sc with reads = params; arrays = [] } in
  List.map (fun s -> B.set s (data_expr param_scope 2)) scalars
  @ List.concat_map
      (fun (a, slots) ->
        tabulate slots (fun k ->
            B.store
              (Ast.Binop (Add, Addr_local a, Int (Int64.of_int (8 * k))))
              (const sc.rng)))
      arrays

type finfo = { fd : Ast.fdef; info : callee }

let gen_function ~rng ~vuln ~mode ~globals ~callees ~allow_callptr ~fresh ~name
    ~arity ~recursive =
  let params = tabulate arity (fun i -> "p" ^ string_of_int i) in
  let nscalars = 1 + Rng.int rng 3 in
  let scalars = tabulate nscalars (fun i -> "s" ^ string_of_int i) in
  let arrays =
    tabulate (Rng.int rng 3) (fun i ->
        ("a" ^ string_of_int i, Rng.choose rng [| 1; 2; 4 |]))
  in
  let sc =
    {
      rng;
      reads = params @ scalars;
      writes = scalars;
      arrays;
      globals;
      callees;
      allow_callptr;
      mode;
      allow_return = true;
      allow_tail = callees <> [] && (mode <> Setjmp_mode || name <> "main");
      depth = 0;
      vuln;
      fresh;
      budget = ref (10 + Rng.int rng 10);
      new_locals = ref [];
    }
  in
  let init = init_stmts sc params scalars arrays in
  let body = gen_body sc (2 + Rng.int rng 4) in
  let body = maybe_wrap_try sc body in
  (* recursion: decrement-and-recurse on the first parameter, with a
     <= 0 base case guarding everything (it may read only parameters) *)
  let guard =
    if recursive then [ B.if_ B.(v (List.hd params) <= i 0) [ B.ret (B.i 1) ] [] ]
    else []
  in
  let rec_part =
    if recursive then begin
      let rest_args = tabulate (arity - 1) (fun _ -> data_expr sc 2) in
      [
        B.set (List.hd scalars)
          (Ast.Call (name, Ast.Binop (Sub, Var (List.hd params), Int 1L) :: rest_args));
        B.print (Ast.Var (List.hd scalars));
      ]
    end
    else []
  in
  let terminal =
    if sc.allow_tail && (not recursive) && Rng.int rng 5 = 0 then begin
      let c = pick_list rng callees in
      [ Ast.Tail_call (c.cname, call_args sc c) ]
    end
    else [ B.ret (data_expr sc 3) ]
  in
  let body = guard @ init @ body @ rec_part @ terminal in
  let locals =
    List.map (fun s -> Ast.Scalar s) scalars
    @ List.map (fun (a, slots) -> Ast.Array (a, 8 * slots)) arrays
    @ !(sc.new_locals)
  in
  { fd = Ast.fdef name ~params ~locals body; info = { cname = name; arity; bounded = recursive } }

(* --- whole programs ------------------------------------------------------ *)

let generate ?(vuln = false) rng : Ast.program =
  let fresh = ref 0 in
  let mode =
    match Rng.int rng 3 with 0 -> Plain | 1 -> Setjmp_mode | _ -> Throw_mode
  in
  let nglobals = 1 + Rng.int rng 3 in
  let data_globals =
    tabulate nglobals (fun i -> ("g" ^ string_of_int i, Rng.choose rng [| 1; 2; 4 |]))
  in
  let globals =
    List.map (fun (g, slots) -> (g, 8 * slots)) data_globals
    @ [ ("ftab", 16) ]
    @ (if mode = Setjmp_mode then [ ("jb", 136); ("jonce", 8) ] else [])
  in
  let nf = 2 + Rng.int rng 3 in
  let rec build i acc =
    if i >= nf then List.rev acc
    else begin
      let name = "f" ^ string_of_int i in
      let arity = if i < 2 then 1 else 1 + Rng.int rng 3 in
      let recursive = i >= 2 && Rng.int rng 3 = 0 in
      let callees = List.rev_map (fun f -> f.info) acc in
      (* f0/f1 sit in the indirect-call table; letting them call through
         the table would allow unbounded mutual recursion *)
      let f =
        gen_function ~rng ~vuln ~mode ~globals:data_globals ~callees
          ~allow_callptr:(i >= 2) ~fresh ~name ~arity ~recursive
      in
      build (i + 1) (f :: acc)
    end
  in
  let funcs = build 0 [] in
  let callees = List.map (fun f -> f.info) funcs in
  let main =
    gen_function ~rng ~vuln ~mode ~globals:data_globals ~callees
      ~allow_callptr:true ~fresh ~name:"main" ~arity:0 ~recursive:false
  in
  (* main prologue: fill the indirect-call table, then (setjmp mode) arm
     the jump buffer and print the value setjmp delivered *)
  let table_init =
    [
      B.store (B.glob "ftab") (B.fn "f0");
      B.store B.(glob "ftab" + i 8) (B.fn "f1");
    ]
  in
  let setjmp_arm =
    if mode = Setjmp_mode then
      [
        Ast.Setjmp ("sj", Ast.Addr_global "jb");
        B.if_ B.(v "sj" != i 0) [ B.print (B.v "sj") ] [];
      ]
    else []
  in
  let main_fd =
    {
      main.fd with
      body = table_init @ setjmp_arm @ main.fd.body;
      locals =
        (if mode = Setjmp_mode then Ast.Scalar "sj" :: main.fd.locals
         else main.fd.locals);
    }
  in
  Ast.program ~globals (List.map (fun f -> f.fd) funcs @ [ main_fd ])
