module Json = Pacstack_campaign.Json
module Progress = Pacstack_campaign.Progress
module Shard = Pacstack_campaign.Shard

(* The flag is an [Atomic.t] so worker domains spawned after [enable]
   are guaranteed to observe it; [Atomic.get] on a bool compiles to a
   plain load, so a disabled guard is one load and one predictable
   branch. *)
let flag = Atomic.make false
let enabled () = Atomic.get flag
let enable () = Atomic.set flag true
let disable () = Atomic.set flag false

module Metrics = struct
  type value =
    | Counter of int
    | Gauge of float
    | Histogram of { lo : float; hi : float; counts : int array; total : int }

  type cell =
    | C of { mutable n : int }
    | G of { mutable v : float }
    | H of { lo : float; hi : float; counts : int array; mutable total : int }

  let lock = Mutex.create ()
  let cells : (string, cell) Hashtbl.t = Hashtbl.create 64

  let with_lock f =
    Mutex.lock lock;
    Fun.protect ~finally:(fun () -> Mutex.unlock lock) f

  let incr ?(by = 1) name =
    if enabled () then
      with_lock (fun () ->
          match Hashtbl.find_opt cells name with
          | Some (C c) -> c.n <- c.n + by
          | Some _ -> ()
          | None -> Hashtbl.replace cells name (C { n = by }))

  let gauge name v =
    if enabled () then
      with_lock (fun () ->
          match Hashtbl.find_opt cells name with
          | Some (G g) -> g.v <- v
          | Some _ -> ()
          | None -> Hashtbl.replace cells name (G { v }))

  let make_histogram ~lo ~hi ~buckets =
    let buckets = max 1 buckets in
    H { lo; hi; counts = Array.make buckets 0; total = 0 }

  let register_histogram name ~lo ~hi ~buckets =
    with_lock (fun () ->
        if not (Hashtbl.mem cells name) then
          Hashtbl.replace cells name (make_histogram ~lo ~hi ~buckets))

  let observe_cell cell x =
    match cell with
    | H ({ lo; hi; counts; _ } as h) ->
      let buckets = Array.length counts in
      let idx =
        if Float.is_nan x || x <= lo then 0
        else if x >= hi then buckets - 1
        else
          let i =
            int_of_float (float_of_int buckets *. (x -. lo) /. (hi -. lo))
          in
          if i >= buckets then buckets - 1 else i
      in
      counts.(idx) <- counts.(idx) + 1;
      h.total <- h.total + 1
    | C _ | G _ -> ()

  let observe name x =
    if enabled () then
      with_lock (fun () ->
          match Hashtbl.find_opt cells name with
          | Some (H _ as h) -> observe_cell h x
          | Some _ -> ()
          | None ->
            let h = make_histogram ~lo:0. ~hi:1e6 ~buckets:20 in
            observe_cell h x;
            Hashtbl.replace cells name h)

  let value_of_cell = function
    | C { n } -> Counter n
    | G { v } -> Gauge v
    | H { lo; hi; counts; total } ->
      Histogram { lo; hi; counts = Array.copy counts; total }

  let snapshot () =
    with_lock (fun () ->
        Hashtbl.fold (fun name c acc -> (name, value_of_cell c) :: acc) cells [])
    |> List.sort (fun (a, _) (b, _) -> String.compare a b)

  let find name =
    with_lock (fun () -> Option.map value_of_cell (Hashtbl.find_opt cells name))

  let reset () = with_lock (fun () -> Hashtbl.reset cells)

  let pp_snapshot fmt snap =
    let kind = function
      | Counter _ -> "counter"
      | Gauge _ -> "gauge"
      | Histogram _ -> "histogram"
    in
    let render = function
      | Counter n -> string_of_int n
      | Gauge v -> Printf.sprintf "%g" v
      | Histogram { lo; hi; counts; total } ->
        let nonzero =
          Array.fold_left (fun a c -> if c > 0 then a + 1 else a) 0 counts
        in
        Printf.sprintf "total=%d buckets=%d/%d range=[%g,%g)" total nonzero
          (Array.length counts) lo hi
    in
    let width =
      List.fold_left (fun w (name, _) -> max w (String.length name)) 6 snap
    in
    Format.fprintf fmt "%-*s  %-9s  %s@." width "metric" "kind" "value";
    List.iter
      (fun (name, v) ->
        Format.fprintf fmt "%-*s  %-9s  %s@." width name (kind v) (render v))
      snap
end

module Trace = struct
  type event = {
    key : int;
    seq : int;
    name : string;
    fields : (string * Json.t) list;
  }

  type buf = {
    ring : event option array;
    mutable next : int;
    mutable count : int;
    mutable seq : int;
    mutable dropped : int;
  }

  let capacity = Atomic.make 8192
  let set_capacity n = Atomic.set capacity (max 1 n)

  let lock = Mutex.create ()
  let bufs : buf list ref = ref []

  let with_lock f =
    Mutex.lock lock;
    Fun.protect ~finally:(fun () -> Mutex.unlock lock) f

  (* One ring per domain; the registry keeps buffers of finished domains
     alive so their events survive until [events] / [reset]. *)
  let dls : buf Domain.DLS.key =
    Domain.DLS.new_key (fun () ->
        let b =
          { ring = Array.make (Atomic.get capacity) None;
            next = 0;
            count = 0;
            seq = 0;
            dropped = 0 }
        in
        with_lock (fun () -> bufs := b :: !bufs);
        b)

  let emit ?(key = -1) name fields =
    if enabled () then begin
      let b = Domain.DLS.get dls in
      let size = Array.length b.ring in
      let ev = { key; seq = b.seq; name; fields } in
      b.seq <- b.seq + 1;
      b.ring.(b.next) <- Some ev;
      b.next <- (b.next + 1) mod size;
      if b.count < size then b.count <- b.count + 1
      else b.dropped <- b.dropped + 1
    end

  (* Oldest-first extraction of one ring. Mutating [emit]s race only
     with the emitting domain itself; callers drain after workers have
     joined, which the campaign drivers guarantee. *)
  let of_buf b =
    let size = Array.length b.ring in
    let start = if b.count < size then 0 else b.next in
    List.init b.count (fun i ->
        match b.ring.((start + i) mod size) with
        | Some ev -> ev
        | None -> { key = -1; seq = 0; name = "?"; fields = [] })

  (* Merged order must not depend on worker count, yet a key's events can
     originate on different domains (a worker's inject.fault and the
     coordinator's shard_finished share a key), so domain-local [seq]
     values are not comparable across emitters. Sort on (key, name,
     emitter seq) — same-key same-name events always come from a single
     domain under the one-writer-per-key discipline, where [seq] is the
     deterministic emission order — then renumber [seq] as the rank
     within the key, so the published artifact is bit-identical at any
     worker count. *)
  let events () =
    let sorted =
      with_lock (fun () -> List.concat_map of_buf !bufs)
      |> List.sort (fun a b ->
             match compare a.key b.key with
             | 0 -> (
               match String.compare a.name b.name with
               | 0 -> compare a.seq b.seq
               | c -> c)
             | c -> c)
    in
    let rec renumber prev_key rank = function
      | [] -> []
      | ev :: tl ->
        let rank = if ev.key = prev_key then rank + 1 else 0 in
        { ev with seq = rank } :: renumber ev.key rank tl
    in
    renumber min_int (-1) sorted

  let dropped () =
    with_lock (fun () -> List.fold_left (fun a b -> a + b.dropped) 0 !bufs)

  let reset () =
    with_lock (fun () ->
        List.iter
          (fun b ->
            Array.fill b.ring 0 (Array.length b.ring) None;
            b.next <- 0;
            b.count <- 0;
            b.seq <- 0;
            b.dropped <- 0)
          !bufs)
end

let reset () =
  Metrics.reset ();
  Trace.reset ()

module Sink = struct
  let metric_json (name, v) =
    let tail =
      match (v : Metrics.value) with
      | Counter n -> [ ("kind", Json.String "counter"); ("value", Json.Int n) ]
      | Gauge f -> [ ("kind", Json.String "gauge"); ("value", Json.Float f) ]
      | Histogram { lo; hi; counts; total } ->
        [ ("kind", Json.String "histogram");
          ("lo", Json.Float lo);
          ("hi", Json.Float hi);
          ("total", Json.Int total);
          ("counts", Json.List (Array.to_list (Array.map (fun c -> Json.Int c) counts)))
        ]
    in
    Json.Obj (("type", Json.String "metric") :: ("name", Json.String name) :: tail)

  let event_json (ev : Trace.event) =
    Json.Obj
      [ ("type", Json.String "event");
        ("key", Json.Int ev.key);
        ("seq", Json.Int ev.seq);
        ("name", Json.String ev.name);
        ("fields", Json.Obj ev.fields)
      ]

  let header () =
    Json.Obj
      [ ("type", Json.String "header");
        ("schema", Json.String "pacstack-obs");
        ("version", Json.Int 1);
        ("dropped", Json.Int (Trace.dropped ()))
      ]

  let lines () =
    Json.to_string (header ())
    :: List.map (fun m -> Json.to_string (metric_json m)) (Metrics.snapshot ())
    @ List.map (fun e -> Json.to_string (event_json e)) (Trace.events ())

  let write_channel oc =
    List.iter
      (fun line ->
        output_string oc line;
        output_char oc '\n')
      (lines ())

  let write_file path =
    let oc = open_out path in
    Fun.protect ~finally:(fun () -> close_out oc) (fun () -> write_channel oc)
end

module Campaign_hooks = struct
  (* Wall-clock quantities (shard latencies, trials/sec) and the worker
     count are deliberately NOT recorded: the sink is a deterministic
     artifact, bit-identical at any worker count; timing stays on the
     human-facing Progress stderr stream. *)
  let progress_sink () : Progress.sink =
    Metrics.register_histogram "campaign.shard_trials" ~lo:0. ~hi:10_000.
      ~buckets:20;
    fun event ->
      if enabled () then
        match event with
        | Progress.Campaign_started { name; shards; trials; resumed; _ } ->
          Metrics.incr "campaign.runs";
          Trace.emit "campaign.started"
            [ ("campaign", Json.String name);
              ("shards", Json.Int shards);
              ("trials", Json.Int trials);
              ("resumed", Json.Int resumed)
            ]
        | Progress.Shard_started _ -> Metrics.incr "campaign.tasks"
        | Progress.Shard_finished { name; shard; _ } ->
          Metrics.incr "campaign.shards_finished";
          Metrics.observe "campaign.shard_trials"
            (float_of_int shard.Shard.trials);
          Trace.emit ~key:shard.Shard.index "campaign.shard_finished"
            [ ("campaign", Json.String name);
              ("label", Json.String shard.Shard.label);
              ("trials", Json.Int shard.Shard.trials)
            ]
        | Progress.Shard_retried { name; shard; attempt; error } ->
          Metrics.incr "campaign.retries";
          Trace.emit ~key:shard.Shard.index "campaign.shard_retried"
            [ ("campaign", Json.String name);
              ("attempt", Json.Int attempt);
              ("error", Json.String error)
            ]
        | Progress.Shard_quarantined { name; shard; attempts; error } ->
          Metrics.incr "campaign.quarantines";
          Trace.emit ~key:shard.Shard.index "campaign.shard_quarantined"
            [ ("campaign", Json.String name);
              ("attempts", Json.Int attempts);
              ("error", Json.String error)
            ]
        | Progress.Pool_degraded { name; live; deaths } ->
          Metrics.incr "campaign.pool_degradations";
          Trace.emit "campaign.pool_degraded"
            [ ("campaign", Json.String name);
              ("live", Json.Int live);
              ("deaths", Json.Int deaths)
            ]
        | Progress.Campaign_finished { name; _ } ->
          Trace.emit "campaign.finished" [ ("campaign", Json.String name) ]
end
