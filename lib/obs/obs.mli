(** Zero-dependency observability: a metrics registry, a structured-event
    tracer and a JSON-lines sink.

    Everything is gated on one process-global flag, {!enabled}. The
    contract with the hot paths (see DESIGN.md, "Observability") is that
    a *disabled* instrumentation site costs at most one atomic-bool load
    and a predictable branch — call sites must check {!enabled} before
    building metric names or event fields, and the layers that publish
    per-run aggregates (the machine interpreter) keep their per-step cost
    at zero by counting into plain fields they already maintain and
    flushing once per run.

    Determinism: metrics and traces are write-only side channels — no
    experiment reads them, and they draw no randomness — so enabling
    them cannot perturb campaign results (the bench harness asserts a
    traced 4-worker injection campaign stays bit-identical to the
    1-worker run). Trace buffers are per-domain; {!Trace.events} merges
    them by sorting on [(key, name, emission order)] and renumbering
    [seq] as the rank within the key, which is deterministic as long as
    same-key same-name events are emitted by exactly one domain —
    precisely what campaign sharding guarantees. No instrumentation site
    records wall-clock time or the worker count, so the {!Sink} export
    itself is bit-identical at any [--workers]. *)

module Json = Pacstack_campaign.Json

val enabled : unit -> bool
(** One atomic load; [false] unless {!enable} was called. *)

val enable : unit -> unit
(** Turns instrumentation on. Call before spawning worker domains (the
    campaign subcommands do) so every domain observes the flag. *)

val disable : unit -> unit
(** Turns instrumentation off. Recorded metrics and trace events are
    kept until {!reset}. *)

val reset : unit -> unit
(** Clears all metrics and every domain's trace buffer. *)

(** {1 Metrics} — a registry of named counters, gauges and fixed-bucket
    histograms. All operations are no-ops while disabled; all are safe
    to call from any domain (one global mutex — instrumentation sites
    publish aggregates, not per-step updates, so contention is cold). *)

module Metrics : sig
  type value =
    | Counter of int
    | Gauge of float
    | Histogram of { lo : float; hi : float; counts : int array; total : int }

  val incr : ?by:int -> string -> unit
  (** Adds [by] (default 1) to a counter, creating it at zero. *)

  val gauge : string -> float -> unit
  (** Sets a gauge to its latest value. *)

  val register_histogram : string -> lo:float -> hi:float -> buckets:int -> unit
  (** Declares a fixed-bucket histogram; idempotent. An {!observe} on an
      undeclared name creates one with [lo = 0., hi = 1e6, buckets = 20]. *)

  val observe : string -> float -> unit
  (** Adds one sample; out-of-range samples clamp to the edge buckets. *)

  val snapshot : unit -> (string * value) list
  (** Every metric, sorted by name; arrays are copies. *)

  val find : string -> value option

  val pp_snapshot : Format.formatter -> (string * value) list -> unit
  (** Aligned name / kind / value table (the [pacstack metrics] output). *)
end

(** {1 Tracing} — bounded per-domain ring buffers of structured events.
    When a buffer is full the oldest event is dropped (and counted);
    tracing can therefore never grow memory without bound or block a
    worker. *)

module Trace : sig
  type event = {
    key : int;
        (** merge key: the shard / fault / seed index the event belongs
            to, [-1] for campaign-level events. Each key must be emitted
            by exactly one domain for the merge to be deterministic. *)
    seq : int;
        (** inside {!emit}: the per-domain emission counter; in the list
            returned by {!events}: renumbered to the event's rank within
            its key, so the value is worker-count independent *)
    name : string;
    fields : (string * Json.t) list;
  }

  val set_capacity : int -> unit
  (** Ring capacity for buffers created after this call (default 8192).
      Buffers already materialised by a domain keep their size. *)

  val emit : ?key:int -> string -> (string * Json.t) list -> unit
  (** Appends an event to the calling domain's buffer ([key] defaults to
      [-1]). No-op while disabled. *)

  val events : unit -> event list
  (** All buffered events across all domains, sorted by
      [(key, name, emission order)] with [seq] renumbered per key. *)

  val dropped : unit -> int
  (** Events lost to ring overflow since the last {!reset}. *)
end

(** {1 Sink} — JSON-lines export of both registries, one value per line
    via the campaign {!Json} codec: a header line
    [{"type":"header",...}] carrying the drop count, then one
    [{"type":"metric",...}] per metric and one [{"type":"event",...}]
    per trace event. *)

module Sink : sig
  val metric_json : string * Metrics.value -> Json.t
  val event_json : Trace.event -> Json.t

  val lines : unit -> string list
  (** Header, metrics (name order), then events (merge order). Every
      line parses back with {!Json.parse}. *)

  val write_channel : out_channel -> unit
  val write_file : string -> unit
end

(** {1 Campaign hooks} — observability for the campaign engine without a
    dependency cycle: [lib/campaign] cannot depend on this library (the
    sink uses its JSON codec), so pool/shard activity is observed
    through the structured {!Pacstack_campaign.Progress} events the
    engine already emits. *)

module Campaign_hooks : sig
  val progress_sink : unit -> Pacstack_campaign.Progress.sink
  (** A sink that counts tasks, retries and quarantines
      ([campaign.tasks] / [campaign.retries] / [campaign.quarantines]),
      feeds per-shard trial counts into the [campaign.shard_trials]
      histogram, and emits one trace event per shard keyed by its index.
      Wall-clock fields and the worker count are deliberately omitted so
      the export stays deterministic; timing remains on the Progress
      stderr stream. Compose it with a rendering sink:
      [fun e -> obs_sink e; formatter_sink e]. *)
end
