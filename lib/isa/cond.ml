type t = EQ | NE | LT | LE | GT | GE | HS | LO

let negate = function
  | EQ -> NE
  | NE -> EQ
  | LT -> GE
  | GE -> LT
  | LE -> GT
  | GT -> LE
  | HS -> LO
  | LO -> HS

let to_string = function
  | EQ -> "eq"
  | NE -> "ne"
  | LT -> "lt"
  | LE -> "le"
  | GT -> "gt"
  | GE -> "ge"
  | HS -> "hs"
  | LO -> "lo"

let of_string s =
  match String.lowercase_ascii s with
  | "eq" -> Some EQ
  | "ne" -> Some NE
  | "lt" -> Some LT
  | "le" -> Some LE
  | "gt" -> Some GT
  | "ge" -> Some GE
  | "hs" -> Some HS
  | "lo" -> Some LO
  | _ -> None

let pp fmt c = Format.pp_print_string fmt (to_string c)

type flags = { n : bool; z : bool; c : bool; v : bool }

let flags_zero = { n = false; z = false; c = false; v = false }

let of_compare a b =
  let diff = Int64.sub a b in
  let n = diff < 0L in
  let z = diff = 0L in
  (* carry = no unsigned borrow *)
  let c = Int64.unsigned_compare a b >= 0 in
  (* signed overflow: operands of differing sign and result sign differs
     from the first operand *)
  let v = (a < 0L) <> (b < 0L) && (diff < 0L) <> (a < 0L) in
  { n; z; c; v }

let holds cond f =
  match cond with
  | EQ -> f.z
  | NE -> not f.z
  | LT -> f.n <> f.v
  | GE -> f.n = f.v
  | GT -> (not f.z) && f.n = f.v
  | LE -> f.z || f.n <> f.v
  | HS -> f.c
  | LO -> not f.c

(* Packed representation for the execution hot path: NZCV in the low
   four bits of an immediate int (bit 3 = N .. bit 0 = V), so compares
   and PA status updates allocate nothing. *)

let bits_of_flags f =
  (if f.n then 8 else 0) lor (if f.z then 4 else 0) lor (if f.c then 2 else 0)
  lor if f.v then 1 else 0

let flags_of_bits w =
  { n = w land 8 <> 0; z = w land 4 <> 0; c = w land 2 <> 0; v = w land 1 <> 0 }

let[@inline] bits_of_compare a b =
  let diff = Int64.sub a b in
  let n = diff < 0L in
  let z = diff = 0L in
  let c = Int64.unsigned_compare a b >= 0 in
  let v = (a < 0L) <> (b < 0L) && n <> (a < 0L) in
  (if n then 8 else 0) lor (if z then 4 else 0) lor (if c then 2 else 0)
  lor if v then 1 else 0

let[@inline] holds_bits cond w =
  let n = w land 8 <> 0 and z = w land 4 <> 0 in
  match cond with
  | EQ -> z
  | NE -> not z
  | LT -> n <> (w land 1 <> 0)
  | GE -> n = (w land 1 <> 0)
  | GT -> (not z) && n = (w land 1 <> 0)
  | LE -> z || n <> (w land 1 <> 0)
  | HS -> w land 2 <> 0
  | LO -> w land 2 = 0
