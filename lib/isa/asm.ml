exception Parse_error of int * string

let fail line msg = raise (Parse_error (line, msg))

(* Tokens of an instruction line: words, immediates, and the punctuation
   that matters for addressing modes. *)
type token = Word of string | Imm of int64 | LBracket | RBracket | Bang

let tokenize line s =
  let n = String.length s in
  let toks = ref [] in
  let i = ref 0 in
  let is_word_char c =
    (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || (c >= '0' && c <= '9')
    || c = '_' || c = '.' || c = '$'
  in
  while !i < n do
    let c = s.[!i] in
    if c = ' ' || c = '\t' || c = ',' then incr i
    else if c = '[' then (toks := LBracket :: !toks; incr i)
    else if c = ']' then (toks := RBracket :: !toks; incr i)
    else if c = '!' then (toks := Bang :: !toks; incr i)
    else if c = '#' then begin
      incr i;
      let start = !i in
      if !i < n && (s.[!i] = '-' || s.[!i] = '+') then incr i;
      while !i < n && (is_word_char s.[!i]) do incr i done;
      let lit = String.sub s start (!i - start) in
      match Int64.of_string_opt lit with
      | Some v -> toks := Imm v :: !toks
      | None -> fail line (Printf.sprintf "bad immediate %S" lit)
    end
    else if is_word_char c || c = '-' then begin
      let start = !i in
      incr i;
      while !i < n && is_word_char s.[!i] do incr i done;
      toks := Word (String.sub s start (!i - start)) :: !toks
    end
    else fail line (Printf.sprintf "unexpected character %C" c)
  done;
  List.rev !toks

let reg line = function
  | Word w -> (
    match Reg.of_string w with
    | Some r -> r
    | None -> fail line (Printf.sprintf "expected register, got %S" w))
  | Imm _ | LBracket | RBracket | Bang -> fail line "expected register"

let operand line = function
  | Imm v -> Instr.Imm v
  | (Word _ | LBracket | RBracket | Bang) as t -> Instr.Reg (reg line t)

let label line = function
  | Word w -> w
  | Imm _ | LBracket | RBracket | Bang -> fail line "expected label"

(* Memory operands: [base] / [base, #off] / [base, #off]! / [base], #off *)
let mem line toks =
  match toks with
  | LBracket :: b :: RBracket :: rest -> (
    let base = reg line b in
    match rest with
    | [] -> { Instr.base; offset = 0; index = Offset }
    | [ Imm off ] -> { Instr.base; offset = Int64.to_int off; index = Post }
    | _ -> fail line "bad addressing mode")
  | LBracket :: b :: Imm off :: RBracket :: rest -> (
    let base = reg line b in
    let offset = Int64.to_int off in
    match rest with
    | [] -> { Instr.base; offset; index = Offset }
    | [ Bang ] -> { Instr.base; offset; index = Pre }
    | _ -> fail line "bad addressing mode")
  | _ -> fail line "expected memory operand"

let parse_instr_tokens line toks =
  let open Instr in
  let rrr_op ctor rest =
    match rest with
    | [ a; b; c ] -> ctor (reg line a) (reg line b) (operand line c)
    | _ -> fail line "expected rd, rn, operand"
  in
  let rrr ctor rest =
    match rest with
    | [ a; b; c ] -> ctor (reg line a) (reg line b) (reg line c)
    | _ -> fail line "expected rd, rn, rm"
  in
  let ld_st ctor rest =
    match rest with
    | rt :: m -> ctor (reg line rt) (mem line m)
    | [] -> fail line "expected rt, mem"
  in
  let ld_st_pair ctor rest =
    match rest with
    | r1 :: r2 :: m -> ctor (reg line r1) (reg line r2) (mem line m)
    | _ -> fail line "expected r1, r2, mem"
  in
  match toks with
  | [] -> fail line "empty instruction"
  | Word w :: rest -> (
    match String.lowercase_ascii w, rest with
    | "add", _ -> rrr_op (fun a b c -> Add (a, b, c)) rest
    | "sub", _ -> rrr_op (fun a b c -> Sub (a, b, c)) rest
    | "mul", _ -> rrr (fun a b c -> Mul (a, b, c)) rest
    | "udiv", _ -> rrr (fun a b c -> Udiv (a, b, c)) rest
    | "and", _ -> rrr_op (fun a b c -> And_ (a, b, c)) rest
    | "orr", _ -> rrr_op (fun a b c -> Orr (a, b, c)) rest
    | "eor", _ -> rrr_op (fun a b c -> Eor (a, b, c)) rest
    | "lsl", _ -> rrr_op (fun a b c -> Lsl_ (a, b, c)) rest
    | "lsr", _ -> rrr_op (fun a b c -> Lsr_ (a, b, c)) rest
    | "mov", [ a; b ] -> Mov (reg line a, operand line b)
    | "cmp", [ a; b ] -> Cmp (reg line a, operand line b)
    | "adr", [ a; l ] -> Adr (reg line a, label line l)
    | "ldr", _ -> ld_st (fun r m -> Ldr (r, m)) rest
    | "str", _ -> ld_st (fun r m -> Str (r, m)) rest
    | "ldrb", _ -> ld_st (fun r m -> Ldrb (r, m)) rest
    | "strb", _ -> ld_st (fun r m -> Strb (r, m)) rest
    | "ldp", _ -> ld_st_pair (fun a b m -> Ldp (a, b, m)) rest
    | "stp", _ -> ld_st_pair (fun a b m -> Stp (a, b, m)) rest
    | "b", [ l ] -> B (label line l)
    | "cbz", [ r; l ] -> Cbz (reg line r, label line l)
    | "cbnz", [ r; l ] -> Cbnz (reg line r, label line l)
    | "bl", [ l ] -> Bl (label line l)
    | "blr", [ r ] -> Blr (reg line r)
    | "br", [ r ] -> Br (reg line r)
    | "ret", [] -> Ret Reg.lr
    | "ret", [ r ] -> Ret (reg line r)
    | "retaa", [] -> Retaa
    | "pacia", [ a; b ] -> Pacia (reg line a, reg line b)
    | "autia", [ a; b ] -> Autia (reg line a, reg line b)
    | "paciasp", [] -> Paciasp
    | "autiasp", [] -> Autiasp
    | "xpaci", [ r ] -> Xpaci (reg line r)
    | "pacga", _ -> rrr (fun a b c -> Pacga (a, b, c)) rest
    | "svc", [ Imm n ] -> Svc (Int64.to_int n)
    | "nop", [] -> Nop
    | "hlt", [] -> Hlt
    | "hook", [ l ] -> Hook (label line l)
    | m, _ when String.length m > 2 && String.sub m 0 2 = "b." -> (
      let c = String.sub m 2 (String.length m - 2) in
      match Cond.of_string c, rest with
      | Some c, [ l ] -> Bcond (c, label line l)
      | Some _, _ -> fail line "b.cond expects one label"
      | None, _ -> fail line (Printf.sprintf "unknown condition %S" c))
    | m, _ -> fail line (Printf.sprintf "unknown mnemonic %S" m))
  | (Imm _ | LBracket | RBracket | Bang) :: _ -> fail line "expected mnemonic"

let strip_comment s =
  let cut i = String.sub s 0 i in
  let s = match String.index_opt s ';' with Some i -> cut i | None -> s in
  match String.length s, String.index_opt s '/' with
  | n, Some i when i + 1 < n && s.[i + 1] = '/' -> String.sub s 0 i
  | _ -> s

let parse_instr s =
  parse_instr_tokens 1 (tokenize 1 (strip_comment s))

type pstate = {
  mutable data : Program.data list;
  mutable entry : string option;
  mutable funcs : Program.func list;
  mutable current : (string * Program.item list) option;
}

let parse text =
  let st = { data = []; entry = None; funcs = []; current = None } in
  let finish_func line =
    match st.current with
    | None -> fail line ".endfunc without .func"
    | Some (name, items) ->
      st.funcs <- { Program.name; body = List.rev items } :: st.funcs;
      st.current <- None
  in
  let handle_line lineno raw =
    let s = String.trim (strip_comment raw) in
    if s = "" then ()
    (* a trailing colon always means a label, even with a leading dot —
       the compiler emits local labels as [.L0:] *)
    else if s.[String.length s - 1] = ':' then begin
      let l = String.sub s 0 (String.length s - 1) in
      match st.current with
      | None -> fail lineno "label outside .func"
      | Some (name, items) -> st.current <- Some (name, Program.Lbl l :: items)
    end
    else if s.[0] = '.' then begin
      match String.split_on_char ' ' s |> List.filter (fun x -> x <> "") with
      | [ ".data"; name; size ] -> (
        match int_of_string_opt size with
        | Some size -> st.data <- { Program.dname = name; size } :: st.data
        | None -> fail lineno "bad .data size")
      | [ ".entry"; name ] -> st.entry <- Some name
      | [ ".func"; name ] ->
        if st.current <> None then fail lineno "nested .func";
        st.current <- Some (name, [])
      | [ ".endfunc" ] -> finish_func lineno
      | _ -> fail lineno (Printf.sprintf "unknown directive %S" s)
    end
    else begin
      let i = parse_instr_tokens lineno (tokenize lineno s) in
      match st.current with
      | None -> fail lineno "instruction outside .func"
      | Some (name, items) -> st.current <- Some (name, Program.Ins i :: items)
    end
  in
  List.iteri (fun i l -> handle_line (i + 1) l) (String.split_on_char '\n' text);
  if st.current <> None then fail 0 "missing .endfunc";
  match st.entry with
  | None -> fail 0 "missing .entry"
  | Some entry -> (
    try Program.make ~data:(List.rev st.data) ~entry (List.rev st.funcs)
    with Invalid_argument m -> fail 0 m)

let print p = Format.asprintf "%a" Program.pp p
