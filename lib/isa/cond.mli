(** Branch condition codes (signed comparisons over the NZCV flags). *)

type t = EQ | NE | LT | LE | GT | GE | HS | LO

val negate : t -> t
val to_string : t -> string
val of_string : string -> t option
val pp : Format.formatter -> t -> unit

type flags = { n : bool; z : bool; c : bool; v : bool }

val flags_zero : flags
val of_compare : Pacstack_util.Word64.t -> Pacstack_util.Word64.t -> flags
(** Flags produced by [cmp a, b] (i.e. [a - b]). *)

val holds : t -> flags -> bool

(** {1 Packed flags}

    The execution engines keep NZCV packed in an immediate int
    (bit 3 = N, bit 2 = Z, bit 1 = C, bit 0 = V) so the compare hot
    path allocates nothing; the record form remains the boundary
    representation (accessors, saved contexts). *)

val bits_of_flags : flags -> int
val flags_of_bits : int -> flags

val bits_of_compare : Pacstack_util.Word64.t -> Pacstack_util.Word64.t -> int
(** Packed equivalent of {!of_compare}. *)

val holds_bits : t -> int -> bool
(** Packed equivalent of {!holds}:
    [holds_bits c (bits_of_flags f) = holds c f]. *)
