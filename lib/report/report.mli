(** Regeneration of every table and figure in the paper's evaluation, plus
    the security experiments of §4.3 and §6 (see the per-experiment index
    in DESIGN.md). Each function prints a self-contained section comparing
    the paper's numbers with the measured ones; {!all} prints everything.
    All experiments are deterministic for a fixed [seed]. *)

val table1 :
  ?seed:int64 -> ?workers:int -> ?scale:float ->
  ?progress:Pacstack_campaign.Progress.sink -> Format.formatter -> unit
(** Table 1: maximum success probability of call-stack integrity
    violations — closed forms next to Monte-Carlo estimates at a small
    PAC width. Routed through the campaign engine; [workers] defaults to
    1 and the printed numbers are identical for any worker count.
    [scale] multiplies trial counts (tests regenerate the table at tiny
    scales; the numbers are then noisy but the shape is exercised). *)

val table2_and_figure5 : Format.formatter -> unit
(** Table 2 (geometric-mean overheads, SPECrate and SPECspeed) and
    Figure 5 (per-benchmark overhead, all five instrumentations). *)

val table3 : Format.formatter -> unit
(** Table 3: NGINX-style SSL TPS with 4 and 8 workers. *)

val reuse_matrix : Format.formatter -> unit
(** §6.1: the Listing 6 attack strategies against every scheme. *)

val birthday :
  ?seed:int64 -> ?workers:int -> ?scale:float ->
  ?progress:Pacstack_campaign.Progress.sink -> Format.formatter -> unit
(** §6.2.1: harvested-token count until a PAC collision (campaign-
    sharded), and the mask distinguisher advantage (Appendix A).
    [scale] multiplies trial counts as in {!table1}. *)

val bruteforce :
  ?seed:int64 -> ?workers:int -> ?scale:float ->
  ?progress:Pacstack_campaign.Progress.sink -> Format.formatter -> unit
(** §4.3: expected guesses under divide-and-conquer, re-seeded and
    independent strategies, plus the end-to-end forked-sibling attack —
    both routed through the campaign engine.  [scale] multiplies trial
    counts as in {!table1}. *)

val gadget : Format.formatter -> unit
(** §6.3.1: the signing gadget works at the PA level and is defeated by
    PACStack across tail calls. *)

val sigreturn : Format.formatter -> unit
(** §6.3.2 and Appendix B: forged sigreturn frames with and without the
    kernel [asigret] chain. *)

val unwind_demo : Format.formatter -> unit
(** §9.1: ACS-validated backtrace and frame-by-frame validated longjmp,
    rejecting forged targets. *)

val interop : Format.formatter -> unit
(** §9.2: partial instrumentation — protected app with unprotected
    libraries and vice versa. *)

val forward_cfi : Format.formatter -> unit
(** Assumption A2 exercised: coarse-grained forward CFI blocks
    mid-function targets but admits wrong function entries. *)

val gadget_surface : Format.formatter -> unit
(** Static count of usable vs PA-guarded return gadgets per scheme. *)

val sp_collisions : Format.formatter -> unit
(** Measured reuse of SP values across call sites — the weakness of the
    [-mbranch-protection] modifier (§2.2.1). *)

val injection :
  ?seed:int64 -> ?workers:int -> ?faults:int ->
  ?progress:Pacstack_campaign.Progress.sink -> Format.formatter -> unit
(** Fault-injection campaign summary: per-scheme detected / benign /
    silent counts with mean detection latency in cycles, at the
    collision-observable PAC width. Identical for any worker count. *)

val confirm : Format.formatter -> unit
(** §7.3: the compatibility suite across all schemes. *)

val fleet :
  ?seed:int64 -> ?workers:int -> ?connections:int ->
  ?progress:Pacstack_campaign.Progress.sink -> Format.formatter -> unit
(** Fleet simulation (lib/fleet): a reduced open-loop run — default 192
    connections for 1 virtual second over 4 cells, every scheme — and
    the per-scheme p50/p95/p99/p999 latency table. Identical for any
    worker count, like every campaign-backed section. *)

val observability :
  ?scheme:Pacstack_harden.Scheme.t -> Format.formatter -> unit
(** Enables lib/obs, runs a small sampler through every instrumented
    layer (a server measurement under [scheme] — default pacstack — two
    fuzz seeds and one injected fault under all schemes), then prints
    the metrics registry as a table plus the trace-event count. Leaves
    obs disabled; recorded metrics/events stay readable (e.g. for a
    [--trace] export) until [Obs.reset]. Backs [pacstack_cli metrics]. *)

val all : ?seed:int64 -> ?workers:int -> Format.formatter -> unit
