module Rng = Pacstack_util.Rng
module Analysis = Pacstack_acs.Analysis
module Games = Pacstack_acs.Games
module Scheme = Pacstack_harden.Scheme
module Speclike = Pacstack_workloads.Speclike
module Server = Pacstack_workloads.Server
module Bruteforce = Pacstack_attacker.Bruteforce
module Inject_engine = Pacstack_inject.Engine
module Mega = Pacstack_inject.Mega
module Stats = Pacstack_util.Stats
module Fleet = Pacstack_fleet.Fleet
module Fleet_arrival = Pacstack_fleet.Arrival
module Fleet_json = Pacstack_fleet.Json
module Campaign = Pacstack_campaign.Campaign
module Plan = Pacstack_campaign.Plan
module Shard = Pacstack_campaign.Shard
module Checkpoint = Pacstack_campaign.Checkpoint
module Progress = Pacstack_campaign.Progress
module Json = Pacstack_campaign.Json

let scaled scale trials = max 1 (int_of_float ((float_of_int trials *. scale) +. 0.5))

(* --- Table 1 ------------------------------------------------------------ *)

let table1_cells =
  [
    (Analysis.On_graph, false, 8, 20_000);
    (Analysis.On_graph, true, 8, 60_000);
    (Analysis.Off_graph_to_call_site, false, 8, 200_000);
    (Analysis.Off_graph_to_call_site, true, 8, 200_000);
    (Analysis.Off_graph_arbitrary, false, 5, 400_000);
    (Analysis.Off_graph_arbitrary, true, 5, 400_000);
  ]

let cell_label (kind, masked, _, _) =
  Format.asprintf "%a/%s" Analysis.pp_violation_kind kind
    (if masked then "masked" else "unmasked")

let table1_plan ?(scale = 1.0) ?(shards_per_cell = 8) ~seed () =
  (* specs.(shard_index) tells the shard which cell it belongs to; the
     shard structure is a pure function of (cells, scale, shards_per_cell),
     never of worker count, which is what makes parallel runs replayable *)
  let specs =
    Array.of_list
      (List.concat
         (List.mapi
            (fun cell ((kind, masked, bits, trials) as row) ->
              let trials = scaled scale trials in
              let parts = min shards_per_cell trials in
              Array.to_list
                (Array.mapi
                   (fun i part ->
                     (Printf.sprintf "%s#%d" (cell_label row) i, part, cell, kind, masked, bits))
                   (Plan.split_trials ~trials ~shards:parts)))
            table1_cells))
  in
  Plan.make ~name:"table1" ~seed
    ~shards:(Array.map (fun (label, trials, _, _, _, _) -> (label, trials)) specs)
    ~run:(fun shard rng ->
      let _, trials, cell, kind, masked, bits = specs.(shard.Shard.index) in
      (cell, Games.violation_success ~masked ~kind ~bits ~harvest:600 ~trials rng))

let table1_codec =
  {
    Checkpoint.encode =
      (fun (cell, (e : Games.estimate)) ->
        Json.Obj
          [
            ("cell", Json.Int cell);
            ("successes", Json.Int e.Games.successes);
            ("trials", Json.Int e.Games.trials);
          ]);
    decode =
      (fun json ->
        match
          ( Option.bind (Json.member "cell" json) Json.to_int,
            Option.bind (Json.member "successes" json) Json.to_int,
            Option.bind (Json.member "trials" json) Json.to_int )
        with
        | Some cell, Some successes, Some trials ->
          Some (cell, Games.estimate ~successes ~trials)
        | _ -> None);
  }

let table1_estimates outcome =
  let cells = Array.make (List.length table1_cells) None in
  Campaign.fold outcome ~init:() ~f:(fun () (cell, est) ->
      cells.(cell) <-
        Some (match cells.(cell) with None -> est | Some acc -> Games.merge_estimates acc est));
  Array.map Option.get cells

(* --- birthday harvest --------------------------------------------------- *)

let birthday_plan ?(scale = 1.0) ?(shards = 8) ~seed () =
  let trials = scaled scale 400 in
  let shards = min shards trials in
  let parts = Plan.split_trials ~trials ~shards in
  Plan.make ~name:"birthday" ~seed
    ~shards:(Array.mapi (fun i part -> (Printf.sprintf "harvest#%d" i, part)) parts)
    ~run:(fun shard rng -> Games.birthday_total ~bits:16 ~trials:shard.Shard.trials rng)

let int_codec =
  {
    Checkpoint.encode = (fun total -> Json.Int total);
    decode = Json.to_int;
  }

let birthday_codec = int_codec

let birthday_mean ~plan outcome =
  float_of_int (Campaign.fold outcome ~init:0 ~f:( + ))
  /. float_of_int (Plan.total_trials plan)

(* --- guessing games and the machine brute force ------------------------- *)

let guessing_rows =
  [
    (Games.Divide_and_conquer, 8, 4000);
    (Games.Reseeded, 8, 4000);
    (Games.Independent, 6, 600);
  ]

let guessing_plan ?(scale = 1.0) ?(shards_per_strategy = 4) ~seed () =
  let specs =
    Array.of_list
      (List.concat
         (List.mapi
            (fun row (strategy, bits, trials) ->
              let trials = scaled scale trials in
              let parts = min shards_per_strategy trials in
              Array.to_list
                (Array.mapi
                   (fun i part ->
                     ( Format.asprintf "%a#%d" Games.pp_guess_strategy strategy i,
                       part, row, strategy, bits ))
                   (Plan.split_trials ~trials ~shards:parts)))
            guessing_rows))
  in
  Plan.make ~name:"guessing" ~seed
    ~shards:(Array.map (fun (label, trials, _, _, _) -> (label, trials)) specs)
    ~run:(fun shard rng ->
      let _, trials, row, strategy, bits = specs.(shard.Shard.index) in
      (row, Games.guessing_total ~strategy ~bits ~trials rng))

let guessing_codec =
  {
    Checkpoint.encode =
      (fun (row, total) -> Json.Obj [ ("strategy", Json.Int row); ("guesses", Json.Int total) ]);
    decode =
      (fun json ->
        match
          ( Option.bind (Json.member "strategy" json) Json.to_int,
            Option.bind (Json.member "guesses" json) Json.to_int )
        with
        | Some row, Some total -> Some (row, total)
        | _ -> None);
  }

let guessing_means ~plan outcome =
  let rows = List.length guessing_rows in
  let totals = Array.make rows 0 and trials = Array.make rows 0 in
  Array.iteri
    (fun i (row, total) ->
      totals.(row) <- totals.(row) + total;
      trials.(row) <- trials.(row) + plan.Plan.shards.(i).Shard.trials)
    (Campaign.results_exn outcome);
  Array.map2 (fun t n -> float_of_int t /. float_of_int (max 1 n)) totals trials

let bruteforce_plan ?(scale = 1.0) ?(pac_bits = 6) ?(shards = 5) ~seed () =
  let trials = scaled scale 15 in
  let shards = min shards trials in
  let parts = Plan.split_trials ~trials ~shards in
  Plan.make ~name:"bruteforce" ~seed
    ~shards:(Array.mapi (fun i part -> (Printf.sprintf "siblings#%d" i, part)) parts)
    ~run:(fun shard rng -> Bruteforce.total_guesses ~pac_bits ~trials:shard.Shard.trials rng)

let bruteforce_codec = int_codec

(* --- differential fuzzing ------------------------------------------------ *)

module Fuzz_driver = Pacstack_fuzz.Driver
module Fuzz_oracle = Pacstack_fuzz.Oracle

(* Shard = contiguous seed range.  Seed [i]'s program derives from
   (campaign seed, i) alone — see Driver.seed_rng — so the report is
   bit-identical at any worker count and any shard split. *)
let fuzz_plan ?schemes ?optimize ?(seeds = 200) ?(shards = 8) ~seed () =
  let cfg =
    {
      Fuzz_oracle.default_config with
      schemes = Option.value schemes ~default:Fuzz_oracle.default_config.schemes;
      optimize = Option.value optimize ~default:Fuzz_oracle.default_config.optimize;
    }
  in
  let shards = max 1 (min shards seeds) in
  let parts = Plan.split_trials ~trials:seeds ~shards in
  let ranges =
    let lo = ref 0 in
    Array.map
      (fun part ->
        let range = (!lo, !lo + part) in
        lo := !lo + part;
        range)
      parts
  in
  Plan.make ~name:"fuzz" ~seed
    ~shards:
      (Array.map (fun (lo, hi) -> (Printf.sprintf "seeds[%d,%d)" lo hi, hi - lo)) ranges)
    ~run:(fun shard _rng ->
      let lo, hi = ranges.(shard.Shard.index) in
      Fuzz_driver.run_range cfg ~campaign_seed:seed ~lo ~hi)

let fuzz_codec =
  let failure_to_json (f : Fuzz_driver.failure) =
    Json.Obj
      [
        ("seed", Json.Int f.Fuzz_driver.seed);
        ("scheme", Json.String f.Fuzz_driver.scheme);
        ("optimize", Json.Bool f.Fuzz_driver.optimize);
        ("site", Json.String f.Fuzz_driver.site);
        ("expected", Json.String f.Fuzz_driver.expected);
        ("actual", Json.String f.Fuzz_driver.actual);
      ]
  in
  let failure_of_json json =
    let str k = Option.bind (Json.member k json) Json.to_str in
    let int k = Option.bind (Json.member k json) Json.to_int in
    match
      ( int "seed", str "scheme",
        Option.bind (Json.member "optimize" json) Json.to_bool,
        str "site", str "expected", str "actual" )
    with
    | Some seed, Some scheme, Some optimize, Some site, Some expected, Some actual ->
      Some { Fuzz_driver.seed; scheme; optimize; site; expected; actual }
    | _ -> None
  in
  {
    Checkpoint.encode =
      (fun (s : Fuzz_driver.stats) ->
        Json.Obj
          [
            ("programs", Json.Int s.Fuzz_driver.programs);
            ("runs", Json.Int s.Fuzz_driver.runs);
            ("skipped", Json.Int s.Fuzz_driver.skipped);
            ("crashes", Json.Int s.Fuzz_driver.crashes);
            ("failures", Json.List (List.map failure_to_json s.Fuzz_driver.failures));
          ]);
    decode =
      (fun json ->
        let int k = Option.bind (Json.member k json) Json.to_int in
        match
          ( int "programs", int "runs", int "skipped", int "crashes",
            Json.member "failures" json )
        with
        | Some programs, Some runs, Some skipped, Some crashes, Some (Json.List fs) ->
          let failures = List.filter_map failure_of_json fs in
          if List.length failures = List.length fs then
            Some { Fuzz_driver.programs; runs; skipped; crashes; failures }
          else None
        | _ -> None);
  }

let fuzz_totals outcome =
  Campaign.fold outcome ~init:Fuzz_driver.empty ~f:Fuzz_driver.merge

let fuzz_stats_json (s : Fuzz_driver.stats) =
  match fuzz_codec.Checkpoint.encode s with
  | Json.Obj fields -> fields
  | other -> [ ("stats", other) ]

(* --- fault injection ------------------------------------------------------ *)

let inject_plan ?schemes ?(pac_bits = 4) ?tamper ?(faults = 120) ?(shards = 8) ~seed () =
  let cfg =
    {
      Inject_engine.default_config with
      pac_bits;
      schemes = Option.value schemes ~default:Inject_engine.default_config.schemes;
      tamper;
    }
  in
  let shards = max 1 (min shards faults) in
  let parts = Plan.split_trials ~trials:faults ~shards in
  let ranges =
    let lo = ref 0 in
    Array.map
      (fun part ->
        let range = (!lo, !lo + part) in
        lo := !lo + part;
        range)
      parts
  in
  Plan.make ~name:"inject" ~seed
    ~shards:
      (Array.map (fun (lo, hi) -> (Printf.sprintf "faults[%d,%d)" lo hi, hi - lo)) ranges)
    ~run:(fun shard _rng ->
      let lo, hi = ranges.(shard.Shard.index) in
      Inject_engine.run_range cfg ~campaign_seed:seed ~first:lo ~count:(hi - lo))

let inject_codec =
  { Checkpoint.encode = Inject_engine.stats_to_json; decode = Inject_engine.stats_of_json }

let inject_totals outcome =
  Campaign.fold outcome ~init:Inject_engine.empty ~f:Inject_engine.merge

let inject_stats_json (s : Inject_engine.stats) =
  match Inject_engine.stats_to_json s with
  | Json.Obj fields -> fields
  | other -> [ ("stats", other) ]

(* Every reported rate carries a Wilson 95% interval: at rare-event
   scales the point estimate alone (often exactly 0) says nothing about
   what the sample size actually excludes. *)
let wilson_ci ~successes ~trials =
  if trials = 0 then (0.0, 1.0) else Stats.wilson ~successes ~trials

(* The detection-rate table: per scheme, how the campaign's faults
   classified and how long detected corruption lived. *)
let pp_inject_table fmt (s : Inject_engine.stats) =
  Format.fprintf fmt "%-24s %9s %9s %9s %13s %23s %13s@." "scheme" "detected" "benign"
    "silent" "silent-rate" "wilson-95%" "mean-latency";
  List.iter
    (fun (name, (c : Inject_engine.cell)) ->
      let total = c.Inject_engine.detected + c.Inject_engine.benign + c.Inject_engine.silent in
      let rate =
        if total = 0 then 0.0 else float_of_int c.Inject_engine.silent /. float_of_int total
      in
      let lo, hi = wilson_ci ~successes:c.Inject_engine.silent ~trials:total in
      let latency =
        if c.Inject_engine.detected = 0 then "-"
        else
          Printf.sprintf "%.1f"
            (float_of_int c.Inject_engine.latency_sum /. float_of_int c.Inject_engine.detected)
      in
      Format.fprintf fmt "%-24s %9d %9d %9d %13.3f %23s %13s@." name c.Inject_engine.detected
        c.Inject_engine.benign c.Inject_engine.silent rate
        (Printf.sprintf "[%.4f, %.4f]" lo hi)
        latency)
    s.Inject_engine.cells

(* The long-format detection-rate table: every (injection site, scheme)
   cell, site-major, with the detection rate and its Wilson interval —
   the headline site x scheme comparison across the scheme family. *)
let pp_inject_site_table fmt (s : Inject_engine.stats) =
  Format.fprintf fmt "@.%-16s %-24s %9s %9s %9s %10s %23s@." "site" "scheme" "detected"
    "benign" "silent" "det-rate" "wilson-95%";
  let last_site = ref "" in
  List.iter
    (fun ((site, name), (c : Inject_engine.cell)) ->
      let total = c.Inject_engine.detected + c.Inject_engine.benign + c.Inject_engine.silent in
      let rate =
        if total = 0 then 0.0 else float_of_int c.Inject_engine.detected /. float_of_int total
      in
      let lo, hi = wilson_ci ~successes:c.Inject_engine.detected ~trials:total in
      if !last_site <> "" && !last_site <> site then Format.fprintf fmt "@.";
      last_site := site;
      Format.fprintf fmt "%-16s %-24s %9d %9d %9d %10.3f %23s@." site name
        c.Inject_engine.detected c.Inject_engine.benign c.Inject_engine.silent rate
        (Printf.sprintf "[%.4f, %.4f]" lo hi))
    s.Inject_engine.site_cells

(* --- mega campaigns: streaming sufficient statistics ---------------------- *)

let mega_plan ?schemes ?(pac_bits = 4) ?tamper ?(faults = 120) ?(shard_faults = 512)
    ~seed () =
  if faults < 1 then invalid_arg "Plans.mega_plan: faults < 1";
  if shard_faults < 1 then invalid_arg "Plans.mega_plan: shard_faults < 1";
  let cfg =
    {
      Inject_engine.default_config with
      pac_bits;
      schemes = Option.value schemes ~default:Inject_engine.default_config.schemes;
      tamper;
    }
  in
  let shards = (faults + shard_faults - 1) / shard_faults in
  let ranges =
    Array.init shards (fun i ->
        let lo = i * shard_faults in
        (lo, min faults (lo + shard_faults)))
  in
  Plan.make ~name:"inject-mega" ~seed
    ~shards:
      (Array.map (fun (lo, hi) -> (Printf.sprintf "faults[%d,%d)" lo hi, hi - lo)) ranges)
    ~run:(fun shard _rng ->
      let lo, hi = ranges.(shard.Shard.index) in
      Mega.run_range cfg ~campaign_seed:seed ~first:lo ~count:(hi - lo))

let mega_codec = { Checkpoint.encode = Mega.to_json; decode = Mega.of_json }
let mega_compaction ~keep = { Checkpoint.merge = Mega.merge; keep }
let mega_totals outcome = Campaign.fold outcome ~init:Mega.empty ~f:Mega.merge

let mega_stats_json (t : Mega.t) =
  let rates =
    List.map
      (fun (name, (c : Mega.cell)) ->
        let total = c.Mega.detected + c.Mega.benign + c.Mega.silent in
        let lo, hi = wilson_ci ~successes:c.Mega.silent ~trials:total in
        Json.Obj
          [
            ("scheme", Json.String name);
            ("trials", Json.Int total);
            ( "silent_rate",
              Json.Float
                (if total = 0 then 0.0
                 else float_of_int c.Mega.silent /. float_of_int total) );
            ("wilson_lo", Json.Float lo);
            ("wilson_hi", Json.Float hi);
          ])
      t.Mega.cells
  in
  (match Mega.to_json t with
  | Json.Obj fields -> fields
  | other -> [ ("stats", other) ])
  @ [
      ("silent_rates", Json.List rates);
      ("repro_dropped", Json.Int (Mega.repro_dropped t));
    ]

let pp_mega_table fmt (t : Mega.t) =
  Format.fprintf fmt "%-24s %10s %10s %8s %11s %25s %12s@." "scheme" "detected" "benign"
    "silent" "silent-rate" "wilson-95%" "p95-latency";
  List.iter
    (fun (name, (c : Mega.cell)) ->
      let total = c.Mega.detected + c.Mega.benign + c.Mega.silent in
      let rate =
        if total = 0 then 0.0 else float_of_int c.Mega.silent /. float_of_int total
      in
      let lo, hi = wilson_ci ~successes:c.Mega.silent ~trials:total in
      let p95 =
        match Mega.latency_percentile c 95.0 with
        | None -> "-"
        | Some v -> Printf.sprintf "%.0f" v
      in
      Format.fprintf fmt "%-24s %10d %10d %8d %11.3e %25s %12s@." name c.Mega.detected
        c.Mega.benign c.Mega.silent rate
        (Printf.sprintf "[%.3e, %.3e]" lo hi)
        p95)
    t.Mega.cells;
  let dropped = Mega.repro_dropped t in
  if dropped > 0 then
    Format.fprintf fmt "(%d silent reproducer%s beyond the %d-entry cap not retained)@."
      dropped
      (if dropped = 1 then "" else "s")
      Mega.repro_cap

let quarantine_json (outcome : _ Campaign.outcome) =
  ( "quarantined",
    Json.List
      (List.map
         (fun (q : Campaign.quarantine) ->
           Json.Obj
             [
               ("shard", Json.Int q.Campaign.shard);
               ("label", Json.String q.Campaign.label);
               ("attempts", Json.Int q.Campaign.attempts);
               ("error", Json.String q.Campaign.error);
             ])
         outcome.Campaign.quarantined) )

(* --- overhead sweeps ----------------------------------------------------- *)

let spec_schemes = Scheme.all

let spec_plan ~seed () =
  let cells =
    Array.of_list (Speclike.sweep_cells ~variants:[ Speclike.Rate ] ~schemes:spec_schemes)
  in
  Plan.make ~name:"spec" ~seed
    ~shards:
      (Array.map
         (fun (variant, bench, scheme) ->
           ( Printf.sprintf "%s/%s/%s" (Speclike.variant_to_string variant) bench
               (Scheme.to_string scheme),
             1 ))
         cells)
    ~run:(fun shard _rng ->
      let variant, bench, scheme = cells.(shard.Shard.index) in
      Speclike.measure_cell ~variant ~scheme bench)

let variant_of_string = function
  | "rate" -> Some Speclike.Rate
  | "speed" -> Some Speclike.Speed
  | _ -> None

let spec_codec =
  {
    Checkpoint.encode =
      (fun (m : Speclike.measurement) ->
        Json.Obj
          [
            ("bench", Json.String m.Speclike.bench);
            ("variant", Json.String (Speclike.variant_to_string m.Speclike.variant));
            ("scheme", Json.String (Scheme.to_string m.Speclike.scheme));
            ("cycles", Json.Int m.Speclike.cycles);
            ("instructions", Json.Int m.Speclike.instructions);
            ("mem_ops", Json.Int m.Speclike.mem_ops);
            ("checksum", Json.String (Int64.to_string m.Speclike.checksum));
          ]);
    decode =
      (fun json ->
        let str k = Option.bind (Json.member k json) Json.to_str in
        let int k = Option.bind (Json.member k json) Json.to_int in
        match
          ( str "bench",
            Option.bind (str "variant") variant_of_string,
            Option.bind (str "scheme") Scheme.of_string,
            int "cycles", int "instructions", int "mem_ops",
            Option.bind (str "checksum") Int64.of_string_opt )
        with
        | Some bench, Some variant, Some scheme, Some cycles, Some instructions,
          Some mem_ops, Some checksum ->
          Some { Speclike.bench; variant; scheme; cycles; instructions; mem_ops; checksum }
        | _ -> None);
  }

let server_plan ~seed () =
  let cells = Array.of_list (Server.sweep_cells ()) in
  Plan.make ~name:"server" ~seed
    ~shards:
      (Array.map
         (fun (workers, scheme) ->
           (Printf.sprintf "%dw/%s" workers (Scheme.to_string scheme), 1))
         cells)
    ~run:(fun shard _rng ->
      let workers, scheme = cells.(shard.Shard.index) in
      Server.measure ~scheme ~workers ())

let server_codec =
  {
    Checkpoint.encode =
      (fun (r : Server.result) ->
        Json.Obj
          [
            ("scheme", Json.String (Scheme.to_string r.Server.scheme));
            ("workers", Json.Int r.Server.workers);
            ("req_per_sec", Json.Float r.Server.req_per_sec);
            ("sigma", Json.Float r.Server.sigma);
            ("cycles_per_request", Json.Float r.Server.cycles_per_request);
            ("mem_ops_per_request", Json.Float r.Server.mem_ops_per_request);
          ]);
    decode =
      (fun json ->
        let flt k = Option.bind (Json.member k json) Json.to_float in
        match
          ( Option.bind (Option.bind (Json.member "scheme" json) Json.to_str) Scheme.of_string,
            Option.bind (Json.member "workers" json) Json.to_int,
            flt "req_per_sec", flt "sigma", flt "cycles_per_request", flt "mem_ops_per_request" )
        with
        | Some scheme, Some workers, Some req_per_sec, Some sigma, Some cycles_per_request,
          Some mem_ops_per_request ->
          Some
            { Server.scheme; workers; req_per_sec; sigma; cycles_per_request; mem_ops_per_request }
        | _ -> None);
  }

(* --- uniform CLI entries -------------------------------------------------- *)

type entry = {
  name : string;
  doc : string;
  default_seed : int64;
  execute :
    workers:int ->
    seed:int64 ->
    checkpoint:string option ->
    progress:Progress.sink ->
    Format.formatter ->
    Json.t;
}

let with_checkpoint checkpoint codec = Option.map (fun path -> (path, codec)) checkpoint

let outcome_header (o : _ Campaign.outcome) =
  [
    ("campaign", Json.String o.Campaign.plan_name);
    ("seed", Json.String (Int64.to_string o.Campaign.seed));
    ("workers", Json.Int o.Campaign.workers);
    ("elapsed_s", Json.Float o.Campaign.elapsed_s);
    ("resumed_shards", Json.Int o.Campaign.resumed);
  ]

let table1_entry =
  {
    name = "table1";
    doc = "Table 1 violation-success probabilities";
    default_seed = 1L;
    execute =
      (fun ~workers ~seed ~checkpoint ~progress fmt ->
        let plan = table1_plan ~seed () in
        let outcome =
          Campaign.run ~workers ~progress ?checkpoint:(with_checkpoint checkpoint table1_codec)
            plan
        in
        let per_cell = table1_estimates outcome in
        Format.fprintf fmt "%-34s %-8s %-6s %-12s %-12s@." "violation" "masking" "b"
          "paper(theory)" "measured";
        List.iteri
          (fun i (kind, masked, bits, _) ->
            Format.fprintf fmt "%-34s %-8b %-6d %-12.2e %-12.2e@."
              (Format.asprintf "%a" Analysis.pp_violation_kind kind)
              masked bits
              (Analysis.table1_success_probability ~masked kind ~bits)
              per_cell.(i).Games.rate)
          table1_cells;
        Json.Obj
          (outcome_header outcome
          @ [
              ( "cells",
                Json.List
                  (List.mapi
                     (fun i (kind, masked, bits, _) ->
                       Json.Obj
                         [
                           ("violation", Json.String (Format.asprintf "%a" Analysis.pp_violation_kind kind));
                           ("masked", Json.Bool masked);
                           ("bits", Json.Int bits);
                           ("successes", Json.Int per_cell.(i).Games.successes);
                           ("trials", Json.Int per_cell.(i).Games.trials);
                           ("rate", Json.Float per_cell.(i).Games.rate);
                         ])
                     table1_cells) );
            ]));
  }

let birthday_entry =
  {
    name = "birthday";
    doc = "§6.2.1 tokens harvested until a PAC collision";
    default_seed = 2L;
    execute =
      (fun ~workers ~seed ~checkpoint ~progress fmt ->
        let plan = birthday_plan ~seed () in
        let outcome =
          Campaign.run ~workers ~progress
            ?checkpoint:(with_checkpoint checkpoint birthday_codec) plan
        in
        let mean = birthday_mean ~plan outcome in
        Format.fprintf fmt
          "tokens harvested until PAC collision (b=16): measured %.1f, paper ~%.1f@." mean
          (Analysis.collision_harvest_mean ~bits:16);
        Json.Obj
          (outcome_header outcome
          @ [ ("mean_harvest", Json.Float mean); ("bits", Json.Int 16) ]));
  }

let expected_guesses strategy bits =
  match strategy with
  | Games.Divide_and_conquer -> Analysis.guesses_divide_and_conquer ~bits
  | Games.Reseeded -> Analysis.guesses_reseeded ~bits
  | Games.Independent -> Analysis.guesses_independent ~bits

let guessing_entry =
  {
    name = "guessing";
    doc = "§4.3 guessing strategies (model-level)";
    default_seed = 3L;
    execute =
      (fun ~workers ~seed ~checkpoint ~progress fmt ->
        let plan = guessing_plan ~seed () in
        let outcome =
          Campaign.run ~workers ~progress
            ?checkpoint:(with_checkpoint checkpoint guessing_codec) plan
        in
        let means = guessing_means ~plan outcome in
        Format.fprintf fmt "%-38s %-6s %12s %12s@." "strategy" "b" "measured" "expected";
        List.iteri
          (fun i (strategy, bits, _) ->
            Format.fprintf fmt "%-38s %-6d %12.0f %12.0f@."
              (Format.asprintf "%a" Games.pp_guess_strategy strategy)
              bits means.(i) (expected_guesses strategy bits))
          guessing_rows;
        Json.Obj
          (outcome_header outcome
          @ [
              ( "strategies",
                Json.List
                  (List.mapi
                     (fun i (strategy, bits, _) ->
                       Json.Obj
                         [
                           ( "strategy",
                             Json.String (Format.asprintf "%a" Games.pp_guess_strategy strategy) );
                           ("bits", Json.Int bits);
                           ("mean_guesses", Json.Float means.(i));
                           ("expected", Json.Float (expected_guesses strategy bits));
                         ])
                     guessing_rows) );
            ]));
  }

let bruteforce_entry =
  {
    name = "bruteforce";
    doc = "§4.3 end-to-end forked-sibling attack on the machine";
    default_seed = 3L;
    execute =
      (fun ~workers ~seed ~checkpoint ~progress fmt ->
        let plan = bruteforce_plan ~seed () in
        let outcome =
          Campaign.run ~workers ~progress
            ?checkpoint:(with_checkpoint checkpoint bruteforce_codec) plan
        in
        let trials = Plan.total_trials plan in
        let mean = float_of_int (Campaign.fold outcome ~init:0 ~f:( + )) /. float_of_int trials in
        Format.fprintf fmt
          "end-to-end forked-sibling attack (machine, b=6): %.0f guesses/success (expectation %.0f)@."
          mean (2.0 ** 6.0);
        Json.Obj
          (outcome_header outcome
          @ [
              ("pac_bits", Json.Int 6);
              ("trials", Json.Int trials);
              ("mean_guesses", Json.Float mean);
            ]));
  }

let spec_entry =
  {
    name = "spec";
    doc = "SPECrate-like overhead sweep (benchmark x scheme grid)";
    default_seed = 0L;
    execute =
      (fun ~workers ~seed ~checkpoint ~progress fmt ->
        let plan = spec_plan ~seed () in
        let outcome =
          Campaign.run ~workers ~progress ?checkpoint:(with_checkpoint checkpoint spec_codec)
            plan
        in
        let results = Campaign.results_exn outcome in
        let baseline_of bench =
          let m =
            Array.to_list results
            |> List.find (fun (m : Speclike.measurement) ->
                   m.Speclike.bench = bench && Scheme.equal m.Speclike.scheme Scheme.unprotected)
          in
          m
        in
        Format.fprintf fmt "%-14s %-24s %12s %10s@." "benchmark" "scheme" "cycles" "overhead";
        Array.iter
          (fun (m : Speclike.measurement) ->
            Format.fprintf fmt "%-14s %-24s %12d %9.2f%%@." m.Speclike.bench
              (Scheme.to_string m.Speclike.scheme)
              m.Speclike.cycles
              (Speclike.overhead_pct ~baseline:(baseline_of m.Speclike.bench) m))
          results;
        Json.Obj
          (outcome_header outcome
          @ [
              ( "cells",
                Json.List
                  (Array.to_list
                     (Array.map
                        (fun (m : Speclike.measurement) ->
                          Json.Obj
                            [
                              ("bench", Json.String m.Speclike.bench);
                              ("scheme", Json.String (Scheme.to_string m.Speclike.scheme));
                              ("cycles", Json.Int m.Speclike.cycles);
                              ( "overhead_pct",
                                Json.Float
                                  (Speclike.overhead_pct ~baseline:(baseline_of m.Speclike.bench) m)
                              );
                            ])
                        results)) );
            ]));
  }

let server_entry =
  {
    name = "server";
    doc = "Table 3 server-throughput sweep (workers x scheme grid)";
    default_seed = 0L;
    execute =
      (fun ~workers ~seed ~checkpoint ~progress fmt ->
        let plan = server_plan ~seed () in
        let outcome =
          Campaign.run ~workers ~progress ?checkpoint:(with_checkpoint checkpoint server_codec)
            plan
        in
        let results = Campaign.results_exn outcome in
        let baseline_of workers =
          Array.to_list results
          |> List.find (fun (r : Server.result) ->
                 r.Server.workers = workers && Scheme.equal r.Server.scheme Scheme.unprotected)
        in
        Format.fprintf fmt "%-8s %-18s %12s %10s@." "workers" "scheme" "req/s" "overhead";
        Array.iter
          (fun (r : Server.result) ->
            Format.fprintf fmt "%-8d %-18s %11.1fk %9.1f%%@." r.Server.workers
              (Scheme.to_string r.Server.scheme)
              (r.Server.req_per_sec /. 1000.0)
              (Server.overhead_pct ~baseline:(baseline_of r.Server.workers) r))
          results;
        Json.Obj
          (outcome_header outcome
          @ [
              ( "cells",
                Json.List
                  (Array.to_list
                     (Array.map
                        (fun (r : Server.result) ->
                          Json.Obj
                            [
                              ("workers", Json.Int r.Server.workers);
                              ("scheme", Json.String (Scheme.to_string r.Server.scheme));
                              ("req_per_sec", Json.Float r.Server.req_per_sec);
                              ( "overhead_pct",
                                Json.Float
                                  (Server.overhead_pct ~baseline:(baseline_of r.Server.workers) r)
                              );
                            ])
                        results)) );
            ]));
  }

let fuzz_entry =
  {
    name = "fuzz";
    doc = "differential fuzzing of the mini-C pipeline against the reference interpreter";
    default_seed = 1L;
    execute =
      (fun ~workers ~seed ~checkpoint ~progress fmt ->
        let plan = fuzz_plan ~seed () in
        let outcome =
          Campaign.run ~workers ~progress ?checkpoint:(with_checkpoint checkpoint fuzz_codec)
            plan
        in
        let totals = fuzz_totals outcome in
        Format.fprintf fmt "%a@." Fuzz_driver.pp_stats totals;
        Format.fprintf fmt "throughput: %.1f programs/s@."
          (float_of_int totals.Fuzz_driver.programs /. max 1e-9 outcome.Campaign.elapsed_s);
        (match Pacstack_fuzz.Triage.buckets (Fuzz_driver.triage_entries totals) with
        | [] -> ()
        | buckets ->
          Format.fprintf fmt "@[<v>divergence buckets:@,%a@]@."
            Pacstack_fuzz.Triage.pp_buckets buckets);
        Json.Obj (outcome_header outcome @ fuzz_stats_json totals));
  }

(* --- fleet simulation ----------------------------------------------------- *)

let fleet_execute cfg ~workers ~seed ~checkpoint ~progress fmt =
  let cfg = { cfg with Fleet.seed } in
  let plan = Fleet.plan cfg in
  let outcome =
    Campaign.run ~workers ~progress
      ?checkpoint:(with_checkpoint checkpoint Fleet_json.checkpoint_codec) plan
  in
  let rows = Fleet.tabulate cfg outcome in
  Format.fprintf fmt "fleet: %d connections, %.2f virtual s, %s arrivals, %d cells x %d cores@."
    cfg.Fleet.connections cfg.Fleet.duration_s
    (Fleet_arrival.to_string cfg.Fleet.arrival)
    cfg.Fleet.cells cfg.Fleet.cores;
  Fleet.pp_table cfg fmt rows;
  match Fleet_json.table_to_json cfg rows with
  | Json.Obj fields -> Json.Obj (outcome_header outcome @ fields @ [ quarantine_json outcome ])
  | other -> other

let fleet_entry =
  {
    name = "fleet";
    doc = "fleet-scale open-loop traffic with per-scheme tail latency";
    default_seed = Fleet.default.Fleet.seed;
    execute = fleet_execute Fleet.default;
  }

let inject_entry =
  {
    name = "inject";
    doc = "deterministic fault injection across the hardening schemes";
    default_seed = 7L;
    execute =
      (fun ~workers ~seed ~checkpoint ~progress fmt ->
        let plan = inject_plan ~seed () in
        let outcome =
          Campaign.run ~workers ~progress
            ?checkpoint:(with_checkpoint checkpoint inject_codec) plan
        in
        let totals = inject_totals outcome in
        pp_inject_table fmt totals;
        pp_inject_site_table fmt totals;
        (match outcome.Campaign.quarantined with
        | [] -> ()
        | qs ->
          Format.fprintf fmt "quarantined shards:@.";
          List.iter
            (fun (q : Campaign.quarantine) ->
              Format.fprintf fmt "  shard %d (%s) after %d attempts: %s@." q.Campaign.shard
                q.Campaign.label q.Campaign.attempts q.Campaign.error)
            qs);
        Json.Obj (outcome_header outcome @ inject_stats_json totals @ [ quarantine_json outcome ]));
  }

let entries =
  [
    table1_entry; birthday_entry; guessing_entry; bruteforce_entry; spec_entry;
    server_entry; fuzz_entry; inject_entry; fleet_entry;
  ]

let find name = List.find_opt (fun e -> e.name = name) entries
