module Rng = Pacstack_util.Rng
module Stats = Pacstack_util.Stats
module Word64 = Pacstack_util.Word64
module Analysis = Pacstack_acs.Analysis
module Games = Pacstack_acs.Games
module Scheme = Pacstack_harden.Scheme
module Speclike = Pacstack_workloads.Speclike
module Server = Pacstack_workloads.Server
module Confirm = Pacstack_workloads.Confirm
module Scenarios = Pacstack_workloads.Scenarios
module Adversary = Pacstack_attacker.Adversary
module Reuse = Pacstack_attacker.Reuse
module Gadget = Pacstack_attacker.Gadget
module Sigreturn = Pacstack_attacker.Sigreturn
module Bruteforce = Pacstack_attacker.Bruteforce
module Kernel = Pacstack_machine.Kernel
module Machine = Pacstack_machine.Machine
module Unwind = Pacstack_machine.Unwind
module Compile = Pacstack_minic.Compile

module Campaign = Pacstack_campaign.Campaign
module Progress = Pacstack_campaign.Progress

let section fmt title = Format.fprintf fmt "@.=== %s ===@." title

(* --- Table 1 ----------------------------------------------------------- *)

(* Routed through the campaign engine: the per-cell trials are sharded
   by Plans.table1_plan, so the same table can be regenerated on one
   worker (the default — sequential, reproducible anywhere) or on many
   with bitwise-identical numbers. *)
let table1 ?(seed = 1L) ?(workers = 1) ?(scale = 1.0) ?progress fmt =
  section fmt "Table 1: max success probability of call-stack integrity violations";
  let plan = Plans.table1_plan ~scale ~seed () in
  let outcome = Campaign.run ~workers ?progress plan in
  let per_cell = Plans.table1_estimates outcome in
  Format.fprintf fmt "%-34s %-8s %-6s %-12s %-12s@." "violation" "masking" "b" "paper(theory)"
    "measured";
  List.iteri
    (fun i (kind, masked, bits, _trials) ->
      let theory = Analysis.table1_success_probability ~masked kind ~bits in
      Format.fprintf fmt "%-34s %-8b %-6d %-12.2e %-12.2e@."
        (Format.asprintf "%a" Analysis.pp_violation_kind kind)
        masked bits theory per_cell.(i).Games.rate)
    Plans.table1_cells

(* --- Table 2 / Figure 5 ------------------------------------------------ *)

let schemes_measured =
  [ Scheme.pacstack; Scheme.pacstack_nomask; Scheme.shadow_stack; Scheme.branch_protection;
    Scheme.stack_protector; Scheme.pcan; Scheme.zipper; Scheme.pactight; Scheme.parts ]

(* geometric mean of (1 + overhead) ratios, reported back as a percentage *)
let geomean_overhead per_bench =
  (Stats.geometric_mean (List.map (fun oh -> 1.0 +. (oh /. 100.0)) per_bench) -. 1.0) *. 100.0

let spec_overheads variant =
  List.map
    (fun bench ->
      let baseline = Speclike.measure ~scheme:Scheme.unprotected variant bench in
      let per_scheme =
        List.map
          (fun scheme ->
            let m = Speclike.measure ~scheme variant bench in
            if not (Int64.equal m.Speclike.checksum baseline.Speclike.checksum) then
              failwith (bench.Speclike.name ^ ": checksum mismatch under " ^ Scheme.to_string scheme);
            (scheme, Speclike.overhead_pct ~baseline m))
          schemes_measured
      in
      (bench.Speclike.name, per_scheme))
    Speclike.all

(* keyed by canonical name: the registry is open, and the paper only
   reports numbers for the schemes it measured *)
let paper_table2 scheme =
  match Scheme.to_string scheme with
  | "pacstack" -> Some (2.75, 3.28)
  | "pacstack-nomask" -> Some (0.86, 1.56)
  | "shadow-call-stack" -> Some (0.85, 0.77)
  | "branch-protection" -> Some (0.43, 0.72)
  | "stack-protector-strong" -> Some (0.43, 0.25)
  | "baseline" -> Some (0.0, 0.0)
  | _ -> None

(* measured calls per 1000 instructions of the baseline build — the
   paper's §7.1 "overhead is proportional to call frequency" evidence *)
let call_density bench =
  let program = Compile.compile ~scheme:Scheme.unprotected (bench.Speclike.program Speclike.Rate) in
  let m = Machine.load program in
  let profile = Pacstack_machine.Profile.attach m in
  (match Machine.run ~fuel:100_000_000 m with
  | Machine.Halted 0 -> ()
  | _ -> failwith (bench.Speclike.name ^ ": profiling run failed"));
  Pacstack_machine.Profile.call_density profile

let table2_and_figure5 fmt =
  let rate = spec_overheads Speclike.Rate in
  let speed = spec_overheads Speclike.Speed in
  section fmt "Figure 5: per-benchmark overhead w.r.t. baseline (%%, SPECrate-like)";
  Format.fprintf fmt "%-12s %10s" "benchmark" "calls/ki";
  List.iter (fun s -> Format.fprintf fmt " %18s" (Scheme.to_string s)) schemes_measured;
  Format.fprintf fmt "@.";
  List.iter2
    (fun bench (name, per_scheme) ->
      Format.fprintf fmt "%-12s %10.1f" name (call_density bench);
      List.iter (fun (_, oh) -> Format.fprintf fmt " %17.2f%%" oh) per_scheme;
      Format.fprintf fmt "@.")
    Speclike.all rate;
  section fmt "Table 2: geometric mean of overheads";
  Format.fprintf fmt "%-24s %14s %14s %20s@." "scheme" "SPECrate" "SPECspeed"
    "paper (rate/speed)";
  List.iter
    (fun scheme ->
      let mean_of table =
        geomean_overhead (List.map (fun (_, per) -> List.assoc scheme per) table)
      in
      let paper =
        match paper_table2 scheme with
        | Some (p_rate, p_speed) -> Format.asprintf "%.2f%%/%.2f%%" p_rate p_speed
        | None -> "-"
      in
      Format.fprintf fmt "%-24s %13.2f%% %13.2f%% %20s@." (Scheme.to_string scheme)
        (mean_of rate) (mean_of speed) paper)
    schemes_measured;
  (* the paper reports the C++ benchmarks separately: 2.0 %% masked,
     0.9 %% unmasked *)
  let cpp_mean scheme =
    geomean_overhead
      (List.map
         (fun bench ->
           let baseline = Speclike.measure ~scheme:Scheme.unprotected Speclike.Rate bench in
           Speclike.overhead_pct ~baseline (Speclike.measure ~scheme Speclike.Rate bench))
         Speclike.cpp)
  in
  Format.fprintf fmt "@.C++-like benchmarks (omnetpp, leela, xalancbmk):@.";
  Format.fprintf fmt "  pacstack        %5.2f%%  (paper 2.0%%)@." (cpp_mean Scheme.pacstack);
  Format.fprintf fmt "  pacstack-nomask %5.2f%%  (paper 0.9%%)@."
    (cpp_mean Scheme.pacstack_nomask)

(* --- Table 3 ------------------------------------------------------------ *)

let table3 fmt =
  section fmt "Table 3: SSL transactions per second (NGINX-style server)";
  Format.fprintf fmt "%-8s %-18s %12s %8s %10s %18s@." "workers" "scheme" "req/s" "sigma"
    "overhead" "paper req/s (oh)";
  let paper workers scheme =
    match (workers, Scheme.to_string scheme) with
    | 4, "baseline" -> "14.2k"
    | 4, "pacstack-nomask" -> "13.7k (3.5%)"
    | 4, "pacstack" -> "13.5k (4.9%)"
    | 8, "baseline" -> "30.7k"
    | 8, "pacstack-nomask" -> "28.6k (6.8%)"
    | 8, "pacstack" -> "27.2k (11.4%)"
    | _ -> "-"
  in
  List.iter
    (fun workers ->
      let baseline = Server.measure ~scheme:Scheme.unprotected ~workers () in
      List.iter
        (fun scheme ->
          let r =
            if Scheme.equal scheme Scheme.unprotected then baseline
            else Server.measure ~scheme ~workers ()
          in
          Format.fprintf fmt "%-8d %-18s %11.1fk %8.0f %9.1f%% %18s@." workers
            (Scheme.to_string scheme)
            (r.Server.req_per_sec /. 1000.0)
            r.Server.sigma
            (Server.overhead_pct ~baseline r)
            (paper workers scheme))
        [ Scheme.unprotected; Scheme.pacstack_nomask; Scheme.pacstack;
          Scheme.pcan; Scheme.zipper; Scheme.pactight; Scheme.parts ])
    [ 4; 8 ]

(* --- security experiments ---------------------------------------------- *)

let reuse_matrix fmt =
  section fmt "Reuse attacks on the Listing 6 victim (paper 6.1)";
  Format.fprintf fmt "%-26s" "strategy \\ scheme";
  List.iter (fun s -> Format.fprintf fmt " %22s" (Scheme.to_string s)) Scheme.all;
  Format.fprintf fmt "@.";
  List.iter
    (fun (strategy, row) ->
      Format.fprintf fmt "%-26s" (Reuse.strategy_to_string strategy);
      List.iter
        (fun (_, outcome) -> Format.fprintf fmt " %22s" (Adversary.outcome_to_string outcome))
        row;
      Format.fprintf fmt "@.")
    (Reuse.matrix ())

let birthday ?(seed = 2L) ?(workers = 1) ?(scale = 1.0) ?progress fmt =
  section fmt "Collisions (paper 6.2.1) and mask hiding (Appendix A)";
  (* the harvest is sharded through the campaign engine; the Appendix A
     distinguisher games stay sequential on their own stream *)
  let plan = Plans.birthday_plan ~scale ~seed () in
  let outcome = Campaign.run ~workers ?progress plan in
  let measured = Plans.birthday_mean ~plan outcome in
  let rng = Rng.create seed in
  Format.fprintf fmt "tokens harvested until PAC collision (b=16): measured %.1f, paper ~%.1f@."
    measured
    (Analysis.collision_harvest_mean ~bits:16);
  let trials = max 1 (int_of_float ((3000.0 *. scale) +. 0.5)) in
  let adv = Games.mask_distinguisher_advantage ~bits:12 ~queries:256 ~trials rng in
  Format.fprintf fmt
    "mask distinguisher advantage (b=12, 256 queries): %.4f (theory: negligible)@." adv;
  let th = Games.theorem1_check ~bits:10 ~queries:128 ~trials rng in
  Format.fprintf fmt
    "Theorem 1 (Appendix A): collision adv %.4f <= 2 x distinguisher adv + slack = %.4f: %b@."
    th.Games.collision_advantage th.Games.bound th.Games.holds

let bruteforce ?(seed = 3L) ?(workers = 1) ?(scale = 1.0) ?progress fmt =
  section fmt "Brute-force guessing (paper 4.3)";
  let guessing = Plans.guessing_plan ~scale ~seed () in
  let means = Plans.guessing_means ~plan:guessing (Campaign.run ~workers ?progress guessing) in
  Format.fprintf fmt "%-38s %-6s %12s %12s@." "strategy" "b" "measured" "expected";
  List.iteri
    (fun i (strategy, bits, _trials) ->
      let expected =
        match strategy with
        | Games.Divide_and_conquer -> Analysis.guesses_divide_and_conquer ~bits
        | Games.Reseeded -> Analysis.guesses_reseeded ~bits
        | Games.Independent -> Analysis.guesses_independent ~bits
      in
      Format.fprintf fmt "%-38s %-6d %12.0f %12.0f@."
        (Format.asprintf "%a" Games.pp_guess_strategy strategy)
        bits means.(i) expected)
    Plans.guessing_rows;
  let machine = Plans.bruteforce_plan ~scale ~seed () in
  let outcome = Campaign.run ~workers ?progress machine in
  let trials = Pacstack_campaign.Plan.total_trials machine in
  let mean = float_of_int (Campaign.fold outcome ~init:0 ~f:( + )) /. float_of_int trials in
  Format.fprintf fmt
    "end-to-end forked-sibling attack (machine, b=%d): %.0f guesses/success (geometric mean expectation %.0f)@."
    6 mean (2.0 ** 6.0)

let gadget fmt =
  section fmt "PA signing gadget (paper 6.3.1)";
  let rng = Rng.create 4L in
  let prf = Pacstack_qarma.Prf.of_rng ~fast:true rng in
  let cfg = Pacstack_pa.Config.default in
  Format.fprintf fmt "aut;pac gadget forges a valid PAC for an arbitrary pointer: %b@."
    (Gadget.gadget_forges_valid_pointer cfg prf ~target:0x1234_5678L ~modifier:0xabcdL);
  Format.fprintf fmt "gadget-forged aret injected across a tail call (PACStack):        %s@."
    (Adversary.outcome_to_string (Gadget.tail_call_attack ~masked:true));
  Format.fprintf fmt "gadget-forged aret injected across a tail call (PACStack-nomask): %s@."
    (Adversary.outcome_to_string (Gadget.tail_call_attack ~masked:false))

let sigreturn fmt =
  section fmt "Sigreturn-oriented programming (paper 6.3.2, Appendix B)";
  Format.fprintf fmt "benign signal round-trip, unprotected kernel: %b@."
    (Sigreturn.benign_roundtrip ~policy:Kernel.Sig_unprotected);
  Format.fprintf fmt "benign signal round-trip, asigret-chained kernel: %b@."
    (Sigreturn.benign_roundtrip ~policy:Kernel.Sig_chained);
  Format.fprintf fmt "forged sigreturn frame, unprotected kernel: %s@."
    (Adversary.outcome_to_string (Sigreturn.attack ~policy:Kernel.Sig_unprotected ()));
  Format.fprintf fmt "forged sigreturn frame, asigret-chained kernel: %s@."
    (Adversary.outcome_to_string (Sigreturn.attack ~policy:Kernel.Sig_chained ()));
  Format.fprintf fmt "forged sigreturn frame, full-register pacga chain: %s@."
    (Adversary.outcome_to_string (Sigreturn.attack ~policy:Kernel.Sig_chained_full ()))

let unwind_demo fmt =
  section fmt "ACS-validated unwinding (paper 9.1)";
  let depth = 6 in
  let program = Compile.compile ~scheme:Scheme.pacstack (Scenarios.unwind_victim ~depth) in
  let m = Machine.load program in
  let report = ref [] in
  Machine.attach_hook m "deep" (fun m ->
      let jb = Option.get (Adversary.symbol m "jb") in
      let target_aret = Option.get (Adversary.read m (Int64.add jb 72L)) in
      let target_sp = Option.get (Adversary.read m (Int64.add jb 96L)) in
      (match Unwind.backtrace m with
      | Ok frames ->
        report := Printf.sprintf "validated backtrace: %d frames" (List.length frames) :: !report
      | Error e -> report := Printf.sprintf "backtrace failed at depth %d: %s" e.Unwind.depth e.Unwind.reason :: !report);
      (match Unwind.unwind_to m ~target_sp ~target_aret with
      | Ok d -> report := Printf.sprintf "validated longjmp target found after %d frames" d :: !report
      | Error e -> report := Printf.sprintf "validated longjmp refused: %s" e.Unwind.reason :: !report);
      (match Unwind.unwind_to m ~target_sp ~target_aret:(Int64.logxor target_aret 0xff0000000000L) with
      | Ok d -> report := Printf.sprintf "FORGED target accepted after %d frames (BAD)" d :: !report
      | Error e ->
        report := Printf.sprintf "forged longjmp target rejected: %s" e.Unwind.reason :: !report);
      (* the 9.1 proposal end-to-end: the unwinder itself performs the
         validated non-local transfer *)
      match Unwind.validated_longjmp m ~jmp_buf:jb ~value:77L with
      | Ok d -> report := Printf.sprintf "validated_longjmp transferred after %d frames" d :: !report
      | Error e -> report := Printf.sprintf "validated_longjmp refused: %s" e.Unwind.reason :: !report);
  (match Machine.run ~fuel:1_000_000 m with
  | Machine.Halted 0 -> ()
  | Machine.Halted c -> Format.fprintf fmt "victim exited %d@." c
  | Machine.Faulted f -> Format.fprintf fmt "victim faulted: %s@." (Pacstack_machine.Trap.to_string f)
  | Machine.Out_of_fuel -> Format.fprintf fmt "victim out of fuel@.");
  List.iter (fun line -> Format.fprintf fmt "%s@." line) (List.rev !report);
  Format.fprintf fmt "longjmp landed with value: %s@."
    (String.concat ", " (List.map Int64.to_string (Machine.output m)))

let interop fmt =
  section fmt "Mixed instrumented/uninstrumented deployment (paper 9.2)";
  let app = [ "main"; "func"; "a"; "b" ] in
  let show label outcome = Format.fprintf fmt "%-52s %s@." label (Adversary.outcome_to_string outcome) in
  show "sibling reuse, everything PACStack-protected:"
    (Reuse.attack ~scheme:Scheme.pacstack Reuse.Sibling_reuse);
  show "app protected, library uninstrumented:"
    (Reuse.attack ~scheme:Scheme.unprotected
       ~overrides:(List.map (fun f -> (f, Scheme.pacstack)) app)
       Reuse.Sibling_reuse);
  show "library protected, app uninstrumented:"
    (Reuse.attack ~scheme:Scheme.pacstack
       ~overrides:(List.map (fun f -> (f, Scheme.unprotected)) app)
       Reuse.Sibling_reuse);
  Format.fprintf fmt
    "(partial protection helps only the instrumented functions; returns in the@.";
  Format.fprintf fmt " unprotected app remain attackable, as 9.2 cautions)@."

let forward_cfi fmt =
  section fmt "Forward-edge CFI, assumption A2 (paper 3, 6.3)";
  List.iter
    (fun ((cfi, target), outcome) ->
      Format.fprintf fmt "CFI %-9s function pointer -> %-22s %s@."
        (if cfi then "enforced," else "disabled,")
        (match target with
        | Pacstack_attacker.Forward_cfi.Entry_of_evil -> "another function entry:"
        | Pacstack_attacker.Forward_cfi.Mid_function -> "mid-function address:")
        (Adversary.outcome_to_string outcome))
    (Pacstack_attacker.Forward_cfi.summary ());
  Format.fprintf fmt
    "(coarse CFI admits wrong-but-valid entries - exactly why backward-edge@.";
  Format.fprintf fmt " protection is still required; mid-function targets are rejected)@.";
  Format.fprintf fmt "@.Pointer sealing, coarse CFI disabled:@.";
  List.iter
    (fun ((scheme, target), outcome) ->
      Format.fprintf fmt "%-16s function pointer -> %-22s %s@." (Scheme.to_string scheme)
        (match target with
        | Pacstack_attacker.Forward_cfi.Entry_of_evil -> "another function entry:"
        | Pacstack_attacker.Forward_cfi.Mid_function -> "mid-function address:")
        (Adversary.outcome_to_string outcome))
    (Pacstack_attacker.Forward_cfi.sealing_summary ());
  Format.fprintf fmt
    "(sealed dispatch entries fail authentication after a raw overwrite -@.";
  Format.fprintf fmt " the sealing schemes subsume assumption A2 at the call site)@."

let gadget_surface fmt =
  section fmt "ROP gadget surface (paper 2.1, 9.2)";
  let victim = Scenarios.listing6 ~rounds:2 in
  Format.fprintf fmt "%-24s %s@." "scheme" "return sites";
  List.iter
    (fun scheme ->
      let r = Pacstack_attacker.Gadget_scan.scan_scheme scheme victim in
      Format.fprintf fmt "%-24s %a@." (Scheme.to_string scheme)
        Pacstack_attacker.Gadget_scan.pp r)
    Scheme.all;
  Format.fprintf fmt
    "(PA-based schemes leave no plainly-usable return gadgets - the 9.2 point@.";
  Format.fprintf fmt " that protected libraries remove gadgets from the adversary's pool)@."

let sp_collisions fmt =
  section fmt "SP-modifier reuse (paper 2.2.1: why the SP is a weak modifier)";
  List.iter
    (fun name ->
      match Speclike.find name with
      | None -> ()
      | Some bench ->
        let program = Compile.compile ~scheme:Scheme.unprotected (bench.Speclike.program Speclike.Rate) in
        let m = Machine.load program in
        let seen = Hashtbl.create 256 in
        let calls = ref 0 in
        Machine.set_tracer m
          (Some
             (fun m instr ->
               match instr with
               | Pacstack_isa.Instr.Bl _ | Pacstack_isa.Instr.Blr _ ->
                 incr calls;
                 let sp = Machine.get m Pacstack_isa.Reg.SP in
                 Hashtbl.replace seen sp (1 + Option.value (Hashtbl.find_opt seen sp) ~default:0)
               | _ -> ()));
        (match Machine.run ~fuel:100_000_000 m with
        | Machine.Halted 0 -> ()
        | _ -> failwith (name ^ ": SP-stat run failed"));
        let distinct = Hashtbl.length seen in
        let repeats = !calls - distinct in
        Format.fprintf fmt
          "%-12s %7d calls use only %5d distinct SP values (%.1f%% of signatures reuse a modifier)@."
          name !calls distinct
          (100.0 *. float_of_int repeats /. float_of_int (max 1 !calls)))
    [ "perlbench"; "gcc"; "mcf"; "x264" ]

let confirm fmt =
  section fmt "ConFIRM-style compatibility suite (paper 7.3)";
  Format.fprintf fmt "%-20s" "test \\ scheme";
  List.iter (fun s -> Format.fprintf fmt " %22s" (Scheme.to_string s)) Scheme.all;
  Format.fprintf fmt "@.";
  let rows = List.map (fun scheme -> (scheme, Confirm.run_all ~scheme)) Scheme.all in
  List.iteri
    (fun idx t ->
      Format.fprintf fmt "%-20s" t.Confirm.name;
      List.iter
        (fun (_, results) ->
          let _, outcome = List.nth results idx in
          let cell = match outcome with Confirm.Pass -> "pass" | Confirm.Fail m -> "FAIL:" ^ m in
          Format.fprintf fmt " %22s" cell)
        rows;
      Format.fprintf fmt "@.")
    Confirm.all

(* --- fault injection ---------------------------------------------------- *)

let injection ?(seed = 7L) ?(workers = 1) ?(faults = 120) ?progress fmt =
  section fmt "Fault injection: detection rate per scheme";
  let plan = Plans.inject_plan ~faults ~seed () in
  let outcome = Campaign.run ~workers ?progress plan in
  let totals = Plans.inject_totals outcome in
  Format.fprintf fmt "%d faults x %d schemes at pac_bits=4, seed %Ld@."
    totals.Pacstack_inject.Engine.faults
    (List.length totals.Pacstack_inject.Engine.cells)
    seed;
  Plans.pp_inject_table fmt totals;
  Plans.pp_inject_site_table fmt totals;
  match outcome.Campaign.quarantined with
  | [] -> ()
  | qs -> Format.fprintf fmt "quarantined shards: %d@." (List.length qs)

let fleet ?(seed = 7L) ?(workers = 1) ?(connections = 192) ?(progress = Progress.null) fmt =
  section fmt "Fleet simulation: per-scheme tail latency under open-loop load";
  let cfg =
    { Pacstack_fleet.Fleet.default with connections; duration_s = 1.0; cells = 4; seed }
  in
  ignore (Plans.fleet_execute cfg ~workers ~seed ~checkpoint:None ~progress fmt)

(* --- observability ------------------------------------------------------ *)

module Obs = Pacstack_obs.Obs

let observability ?(scheme = Scheme.pacstack) fmt =
  section fmt "Observability: lib/obs metrics from an instrumented sampler";
  Obs.enable ();
  Obs.reset ();
  (* A small slice of every instrumented layer: one server measurement
     (machine + harden + server counters under [scheme]), two fuzz seeds
     (12 oracle runs each), one injected fault under all six schemes. *)
  ignore (Server.measure ~scheme ~workers:4 ~variants:2 ());
  ignore
    (Pacstack_fuzz.Driver.run_range Pacstack_fuzz.Oracle.default_config
       ~campaign_seed:1L ~lo:0 ~hi:2);
  ignore
    (Pacstack_inject.Engine.run_fault Pacstack_inject.Engine.default_config
       ~campaign_seed:1L 0);
  Obs.disable ();
  Format.fprintf fmt
    "sampler: server x1 (%s, 4 workers), fuzz seeds x2, faults x1 (all schemes)@.@."
    (Scheme.to_string scheme);
  Obs.Metrics.pp_snapshot fmt (Obs.Metrics.snapshot ());
  Format.fprintf fmt "trace events: %d (dropped %d)@."
    (List.length (Obs.Trace.events ()))
    (Obs.Trace.dropped ())

let all ?(seed = 1L) ?(workers = 1) fmt =
  table1 ~seed ~workers fmt;
  table2_and_figure5 fmt;
  table3 fmt;
  reuse_matrix fmt;
  birthday ~seed ~workers fmt;
  bruteforce ~seed ~workers fmt;
  gadget fmt;
  sigreturn fmt;
  unwind_demo fmt;
  interop fmt;
  forward_cfi fmt;
  gadget_surface fmt;
  sp_collisions fmt;
  injection ~workers fmt;
  fleet ~workers fmt;
  confirm fmt
