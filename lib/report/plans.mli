(** Campaign plans for the paper's Monte-Carlo experiments and sweeps.

    Each plan turns one experiment into independent shards for the
    {!Pacstack_campaign} engine: the Table 1 violation games, the §6.2.1
    birthday harvest, the §4.3 guessing games, the end-to-end machine
    brute force, and the SPEC-like / server overhead sweeps. Every plan
    comes with a checkpoint codec and a merge helper, plus a uniform
    {!entry} wrapper that the CLI's [campaign] subcommand and {!Report}
    drive.

    [?scale] on the stochastic plans multiplies trial counts (down for
    tests and micro-benchmarks, up for production-size hunts) without
    changing the shard structure. *)

module Campaign = Pacstack_campaign.Campaign
module Plan = Pacstack_campaign.Plan
module Checkpoint = Pacstack_campaign.Checkpoint
module Progress = Pacstack_campaign.Progress
module Json = Pacstack_campaign.Json

(** {1 Table 1 — violation-success probabilities} *)

val table1_cells : (Pacstack_acs.Analysis.violation_kind * bool * int * int) list
(** The six Table 1 cells as [(kind, masked, bits, trials)]. *)

val table1_plan :
  ?scale:float -> ?shards_per_cell:int -> seed:int64 -> unit ->
  (int * Pacstack_acs.Games.estimate) Plan.t
(** Each cell's trials split over [shards_per_cell] (default 8) shards;
    a shard reports [(cell_index, estimate)]. *)

val table1_codec : (int * Pacstack_acs.Games.estimate) Checkpoint.codec

val table1_estimates :
  (int * Pacstack_acs.Games.estimate) Campaign.outcome -> Pacstack_acs.Games.estimate array
(** Per-cell pooled estimates, in {!table1_cells} order. *)

(** {1 §6.2.1 — birthday harvest} *)

val birthday_plan : ?scale:float -> ?shards:int -> seed:int64 -> unit -> int Plan.t
(** Shards report summed harvest counts; default 8 shards over 400
    trials at [b = 16]. *)

val birthday_codec : int Checkpoint.codec

val birthday_mean : plan:int Plan.t -> int Campaign.outcome -> float
(** Mean tokens harvested until collision, over the plan's total trials. *)

(** {1 §4.3 — guessing games and the machine brute force} *)

val guessing_rows : (Pacstack_acs.Games.guess_strategy * int * int) list
(** [(strategy, bits, trials)] — the three strategies Report prints. *)

val guessing_plan :
  ?scale:float -> ?shards_per_strategy:int -> seed:int64 -> unit -> (int * int) Plan.t
(** Shards report [(strategy_index, summed_guesses)]. *)

val guessing_codec : (int * int) Checkpoint.codec

val guessing_means : plan:(int * int) Plan.t -> (int * int) Campaign.outcome -> float array
(** Mean guesses per strategy, in {!guessing_rows} order. *)

val bruteforce_plan :
  ?scale:float -> ?pac_bits:int -> ?shards:int -> seed:int64 -> unit -> int Plan.t
(** The end-to-end forked-sibling attack on the simulated machine;
    default 5 shards of 3 trials at [pac_bits = 6]. *)

val bruteforce_codec : int Checkpoint.codec

(** {1 Differential fuzzing} *)

val fuzz_plan :
  ?schemes:Pacstack_harden.Scheme.t list ->
  ?optimize:bool list ->
  ?seeds:int ->
  ?shards:int ->
  seed:int64 ->
  unit ->
  Pacstack_fuzz.Driver.stats Plan.t
(** Differential fuzzing of the mini-C pipeline: each shard fuzzes a
    contiguous seed range (default 200 seeds over 8 shards) under the
    given schemes and optimizer settings (defaults: all six schemes,
    peephole off and on).  Seed [i]'s program depends only on the
    campaign seed and [i], so results are identical at any worker
    count. *)

val fuzz_codec : Pacstack_fuzz.Driver.stats Checkpoint.codec

val fuzz_totals :
  Pacstack_fuzz.Driver.stats Campaign.outcome -> Pacstack_fuzz.Driver.stats
(** Merge all shard statistics. *)

val fuzz_stats_json : Pacstack_fuzz.Driver.stats -> (string * Json.t) list
(** The merged statistics as JSON object fields (worker-count
    independent — no timing). *)

(** {1 Fault injection} *)

val inject_plan :
  ?schemes:Pacstack_harden.Scheme.t list ->
  ?pac_bits:int ->
  ?tamper:(Pacstack_machine.Machine.t -> unit) ->
  ?faults:int ->
  ?shards:int ->
  seed:int64 ->
  unit ->
  Pacstack_inject.Engine.stats Plan.t
(** Deterministic fault injection: each shard runs a contiguous fault
    range (default 120 faults over 8 shards) under the given schemes
    (default all six) at [pac_bits] (default 4, so the 2^-b collision
    events of the reuse analysis are observable). Fault [i] depends only
    on the campaign seed and [i] — identical at any worker count.
    [tamper] is the test-only planted-fault hook of
    {!Pacstack_inject.Engine.config}. *)

val inject_codec : Pacstack_inject.Engine.stats Checkpoint.codec

val inject_totals :
  Pacstack_inject.Engine.stats Campaign.outcome -> Pacstack_inject.Engine.stats
(** Merge all shard statistics (quarantined shards contribute
    nothing). *)

val inject_stats_json : Pacstack_inject.Engine.stats -> (string * Json.t) list

val pp_inject_table : Format.formatter -> Pacstack_inject.Engine.stats -> unit
(** The per-scheme detection-rate table; silent rates carry Wilson 95%
    intervals. *)

val pp_inject_site_table : Format.formatter -> Pacstack_inject.Engine.stats -> unit
(** The long-format (injection site x scheme) detection-rate table with
    Wilson 95% intervals, site-major in {!Pacstack_inject.Fault.all_sites}
    order. *)

(** {1 Mega campaigns (streaming sufficient statistics)} *)

val mega_plan :
  ?schemes:Pacstack_harden.Scheme.t list ->
  ?pac_bits:int ->
  ?tamper:(Pacstack_machine.Machine.t -> unit) ->
  ?faults:int ->
  ?shard_faults:int ->
  seed:int64 ->
  unit ->
  Pacstack_inject.Mega.t Plan.t
(** Like {!inject_plan} but each shard folds its contiguous fault range
    into a constant-size {!Pacstack_inject.Mega.t} summary — memory is
    O(shards), not O(faults), which is what makes 10^6+-fault campaigns
    possible. [shard_faults] (default 512) is the faults-per-shard
    granularity: shard count is [ceil (faults / shard_faults)]. Raises
    [Invalid_argument] if [faults < 1] or [shard_faults < 1]. *)

val mega_codec : Pacstack_inject.Mega.t Checkpoint.codec

val mega_compaction : keep:int -> Pacstack_inject.Mega.t Checkpoint.compaction
(** Checkpoint compaction policy for mega manifests: merge is
    {!Pacstack_inject.Mega.merge} (associative and commutative, as
    compaction requires). *)

val mega_totals : Pacstack_inject.Mega.t Campaign.outcome -> Pacstack_inject.Mega.t
(** Merge all shard summaries, including the compacted blob of a resumed
    manifest. *)

val mega_stats_json : Pacstack_inject.Mega.t -> (string * Json.t) list
(** The merged summary as JSON object fields, plus per-scheme
    [silent_rates] with Wilson 95% bounds and the count of reproducers
    dropped by the retention cap. *)

val pp_mega_table : Format.formatter -> Pacstack_inject.Mega.t -> unit
(** The per-scheme table with silent rates as Wilson 95% intervals and
    p95 detection latency from the log2 histogram sketch. *)

val quarantine_json : _ Campaign.outcome -> string * Json.t
(** The outcome's quarantined shards as a JSON field. *)

(** {1 Fleet simulation} *)

val fleet_execute :
  Pacstack_fleet.Fleet.config ->
  workers:int ->
  seed:int64 ->
  checkpoint:string option ->
  progress:Progress.sink ->
  Format.formatter ->
  Json.t
(** Runs the fleet campaign ({!Pacstack_fleet.Fleet.plan}) for the given
    configuration ([seed] overrides the config's), prints the per-scheme
    latency table, and returns the merged table as JSON — the shared
    engine behind both the [campaign fleet] entry (default config) and
    the dedicated [fleet] subcommand (parsed flags). *)

(** {1 Overhead sweeps} *)

val spec_plan : seed:int64 -> unit -> Pacstack_workloads.Speclike.measurement Plan.t
(** One shard per (benchmark × scheme) cell of the SPECrate-like sweep,
    baseline included. Deterministic — the shard RNG is unused. *)

val spec_codec : Pacstack_workloads.Speclike.measurement Checkpoint.codec

val server_plan : seed:int64 -> unit -> Pacstack_workloads.Server.result Plan.t
(** One shard per (workers × scheme) Table 3 cell. *)

val server_codec : Pacstack_workloads.Server.result Checkpoint.codec

(** {1 Uniform CLI entries} *)

type entry = {
  name : string;
  doc : string;
  default_seed : int64;
  execute :
    workers:int ->
    seed:int64 ->
    checkpoint:string option ->
    progress:Progress.sink ->
    Format.formatter ->
    Json.t;
      (** Runs the campaign, prints a human-readable summary to the
          formatter, and returns the merged results as JSON. *)
}

val entries : entry list
val find : string -> entry option
