module Rng = Pacstack_util.Rng
module Analysis = Pacstack_acs.Analysis
module Games = Pacstack_acs.Games
module Scheme = Pacstack_harden.Scheme
module Speclike = Pacstack_workloads.Speclike
module Server = Pacstack_workloads.Server
module Machine = Pacstack_machine.Machine
module Profile = Pacstack_machine.Profile
module Compile = Pacstack_minic.Compile
module Reuse = Pacstack_attacker.Reuse
module Adversary = Pacstack_attacker.Adversary
module Stats = Pacstack_util.Stats

let schemes =
  [ Scheme.pacstack; Scheme.pacstack_nomask; Scheme.shadow_stack; Scheme.branch_protection;
    Scheme.stack_protector; Scheme.pcan; Scheme.zipper; Scheme.pactight; Scheme.parts ]

let write_csv ~dir ~name rows =
  if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
  let path = Filename.concat dir name in
  Out_channel.with_open_text path (fun oc ->
      List.iter (fun row -> Out_channel.output_string oc (String.concat "," row ^ "\n")) rows);
  path

let table1 ?(seed = 1L) ?(scale = 1.0) ~dir () =
  let rng = Rng.create seed in
  let rows =
    List.map
      (fun (kind, masked, bits, trials) ->
        let trials = max 1 (int_of_float ((float_of_int trials *. scale) +. 0.5)) in
        let theory = Analysis.table1_success_probability ~masked kind ~bits in
        let est = Games.violation_success ~masked ~kind ~bits ~harvest:600 ~trials rng in
        [
          Format.asprintf "%a" Analysis.pp_violation_kind kind;
          string_of_bool masked;
          string_of_int bits;
          Printf.sprintf "%.3e" theory;
          Printf.sprintf "%.3e" est.Games.rate;
        ])
      [
        (Analysis.On_graph, false, 8, 20_000);
        (Analysis.On_graph, true, 8, 60_000);
        (Analysis.Off_graph_to_call_site, false, 8, 200_000);
        (Analysis.Off_graph_to_call_site, true, 8, 200_000);
        (Analysis.Off_graph_arbitrary, false, 5, 400_000);
        (Analysis.Off_graph_arbitrary, true, 5, 400_000);
      ]
  in
  write_csv ~dir ~name:"table1.csv"
    ([ "violation"; "masking"; "bits"; "theory"; "measured" ] :: rows)

let measure_overheads variant =
  List.map
    (fun bench ->
      let baseline = Speclike.measure ~scheme:Scheme.unprotected variant bench in
      ( bench,
        List.map
          (fun scheme ->
            (scheme, Speclike.overhead_pct ~baseline (Speclike.measure ~scheme variant bench)))
          schemes ))
    Speclike.all

let density bench =
  let program = Compile.compile ~scheme:Scheme.unprotected (bench.Speclike.program Speclike.Rate) in
  let m = Machine.load program in
  let profile = Profile.attach m in
  ignore (Machine.run ~fuel:100_000_000 m);
  Profile.call_density profile

let figure5 ~dir =
  let rows =
    List.map
      (fun (bench, per) ->
        bench.Speclike.name
        :: Printf.sprintf "%.2f" (density bench)
        :: List.map (fun (_, oh) -> Printf.sprintf "%.3f" oh) per)
      (measure_overheads Speclike.Rate)
  in
  write_csv ~dir ~name:"figure5.csv"
    (("benchmark" :: "calls_per_ki" :: List.map Scheme.to_string schemes) :: rows)

let geomean per_bench =
  (Stats.geometric_mean (List.map (fun oh -> 1.0 +. (oh /. 100.0)) per_bench) -. 1.0) *. 100.0

let table2 ~dir =
  let rate = measure_overheads Speclike.Rate in
  let speed = measure_overheads Speclike.Speed in
  let rows =
    List.map
      (fun scheme ->
        let mean_of table = geomean (List.map (fun (_, per) -> List.assoc scheme per) table) in
        [
          Scheme.to_string scheme;
          Printf.sprintf "%.3f" (mean_of rate);
          Printf.sprintf "%.3f" (mean_of speed);
        ])
      schemes
  in
  write_csv ~dir ~name:"table2.csv" ([ "scheme"; "specrate_pct"; "specspeed_pct" ] :: rows)

let table3 ~dir =
  let rows =
    List.concat_map
      (fun workers ->
        let baseline = Server.measure ~scheme:Scheme.unprotected ~workers () in
        List.map
          (fun scheme ->
            let r =
              if Scheme.equal scheme Scheme.unprotected then baseline
              else Server.measure ~scheme ~workers ()
            in
            [
              string_of_int workers;
              Scheme.to_string scheme;
              Printf.sprintf "%.0f" r.Server.req_per_sec;
              Printf.sprintf "%.0f" r.Server.sigma;
              Printf.sprintf "%.2f" (Server.overhead_pct ~baseline r);
            ])
          [ Scheme.unprotected; Scheme.pacstack_nomask; Scheme.pacstack;
            Scheme.pcan; Scheme.zipper; Scheme.pactight; Scheme.parts ])
      [ 4; 8 ]
  in
  write_csv ~dir ~name:"table3.csv"
    ([ "workers"; "scheme"; "req_per_sec"; "sigma"; "overhead_pct" ] :: rows)

let attacks ~dir =
  let rows =
    List.concat_map
      (fun (strategy, row) ->
        List.map
          (fun (scheme, outcome) ->
            [
              Reuse.strategy_to_string strategy;
              Scheme.to_string scheme;
              Adversary.outcome_to_string outcome;
            ])
          row)
      (Reuse.matrix ())
  in
  write_csv ~dir ~name:"attacks.csv" ([ "strategy"; "scheme"; "outcome" ] :: rows)

let all ?seed ?scale ~dir () =
  [ table1 ?seed ?scale ~dir (); figure5 ~dir; table2 ~dir; table3 ~dir; attacks ~dir ]
