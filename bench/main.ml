(* The benchmark harness: regenerates every table and figure of the
   paper's evaluation (via Pacstack_report) and then runs one Bechamel
   micro-benchmark per table/figure plus primitive micro-benchmarks, so
   the cost of each reproduction kernel is itself measured. *)

open Bechamel
open Toolkit
module Rng = Pacstack_util.Rng
module Scheme = Pacstack_harden.Scheme
module Speclike = Pacstack_workloads.Speclike
module Server = Pacstack_workloads.Server
module Games = Pacstack_acs.Games
module Analysis = Pacstack_acs.Analysis
module Machine = Pacstack_machine.Machine
module Compile = Pacstack_minic.Compile

let ( .%[] ) tbl key = Hashtbl.find tbl key

(* --- one Test.make per table/figure ----------------------------------- *)

let test_table1 =
  Test.make ~name:"table1_cell"
    (Staged.stage (fun () ->
         let rng = Rng.create 11L in
         Games.violation_success ~masked:true ~kind:Analysis.Off_graph_to_call_site ~bits:8
           ~trials:200 rng))

let bench_spec name =
  match Speclike.find name with
  | Some b -> b
  | None -> failwith ("unknown benchmark " ^ name)

let test_table2 =
  Test.make ~name:"table2_mcf_pacstack"
    (Staged.stage (fun () ->
         Speclike.measure ~scheme:Scheme.pacstack Speclike.Rate (bench_spec "mcf")))

let test_figure5 =
  Test.make ~name:"figure5_x264_baseline"
    (Staged.stage (fun () ->
         Speclike.measure ~scheme:Scheme.Unprotected Speclike.Rate (bench_spec "x264")))

let test_table3 =
  Test.make ~name:"table3_handshake"
    (Staged.stage (fun () -> Server.measure ~scheme:Scheme.pacstack ~workers:4 ~variants:2 ()))

(* --- primitive micro-benchmarks ---------------------------------------- *)

let qarma_prf =
  Pacstack_qarma.Prf.create (Pacstack_qarma.Qarma64.random_key (Rng.create 5L))

let fast_prf = Pacstack_qarma.Prf.create_fast 0x1234L

let test_qarma =
  Test.make ~name:"qarma64_mac"
    (Staged.stage (fun () -> Pacstack_qarma.Prf.mac64 qarma_prf ~data:42L ~modifier:7L))

let test_fast_mac =
  Test.make ~name:"fast_mac"
    (Staged.stage (fun () -> Pacstack_qarma.Prf.mac64 fast_prf ~data:42L ~modifier:7L))

module Campaign = Pacstack_campaign.Campaign
module Pool = Pacstack_campaign.Pool
module Plans = Pacstack_report.Plans

let test_pool_dispatch =
  (* raw pool overhead: scheduling 64 trivial tasks over 4 domains *)
  Test.make ~name:"campaign_pool_dispatch64"
    (Staged.stage (fun () -> Pool.run ~workers:4 ~tasks:64 (fun i -> i * i)))

let test_campaign_birthday =
  Test.make ~name:"campaign_birthday_seq"
    (Staged.stage (fun () -> Campaign.run (Plans.birthday_plan ~scale:0.1 ~seed:7L ())))

let fib_machine =
  let program =
    Pacstack_minic.(
      Compile.compile ~scheme:Scheme.pacstack
        (Ast.program
           [
             Ast.fdef "fib" ~params:[ "n" ] ~locals:[ Ast.Scalar "a"; Ast.Scalar "b" ]
               Build.
                 [
                   if_ (v "n" <= i 1) [ ret (v "n") ] [];
                   set "a" (call "fib" [ v "n" - i 1 ]);
                   set "b" (call "fib" [ v "n" - i 2 ]);
                   ret (v "a" + v "b");
                 ];
             Ast.fdef "main" ~locals:[ Ast.Scalar "r" ]
               Build.[ set "r" (call "fib" [ i 10 ]); ret (i 0) ];
           ]))
  in
  fun () -> Machine.run ~fuel:100_000 (Machine.load program)

let test_machine =
  Test.make ~name:"machine_fib10_pacstack" (Staged.stage fib_machine)

module Fuzz_driver = Pacstack_fuzz.Driver
module Fuzz_oracle = Pacstack_fuzz.Oracle

let test_fuzz_seed =
  (* one full differential check: generate, interpret, compile and run
     under all 6 schemes x {peephole off, on} *)
  Test.make ~name:"fuzz_seed_all_schemes"
    (Staged.stage (fun () ->
         Fuzz_driver.run_seed Fuzz_oracle.default_config ~campaign_seed:11L 3))

let tests =
  Test.make_grouped ~name:"pacstack"
    [ test_table1; test_table2; test_figure5; test_table3; test_qarma; test_fast_mac;
      test_machine; test_pool_dispatch; test_campaign_birthday; test_fuzz_seed ]

(* --- campaign pool: wall-clock scaling ---------------------------------- *)

(* The ISSUE 1 acceptance check: run the same Table 1 campaign plan on 1
   worker and on 4 and report the wall-clock ratio. On a multi-core host
   the 4-worker run is measurably faster; on a single-core container the
   ratio degrades towards (or below) 1x, which the report makes visible
   rather than hiding. Determinism is asserted either way. *)
let campaign_scaling () =
  Format.printf "@.=== Campaign engine: wall-clock scaling (Table 1 plan) ===@.";
  Format.printf "host cores (recommended domains): %d@." (Pool.default_workers ());
  let plan () = Plans.table1_plan ~scale:0.05 ~seed:42L () in
  let time workers =
    let t0 = Unix.gettimeofday () in
    let outcome = Campaign.run ~workers (plan ()) in
    (Unix.gettimeofday () -. t0, Plans.table1_estimates outcome)
  in
  let t1, r1 = time 1 in
  let t4, r4 = time 4 in
  let identical =
    Array.for_all2
      (fun (a : Pacstack_acs.Games.estimate) (b : Pacstack_acs.Games.estimate) ->
        a.successes = b.successes && a.trials = b.trials)
      r1 r4
  in
  Format.printf "1 worker:  %6.2fs@." t1;
  Format.printf "4 workers: %6.2fs  (speedup %.2fx)@." t4 (t1 /. t4);
  Format.printf "results identical across worker counts: %b@." identical;
  if not identical then failwith "campaign determinism violated in bench harness"

(* --- differential fuzzing: programs/sec --------------------------------- *)

let fuzz_throughput () =
  Format.printf "@.=== Differential fuzzing: throughput ===@.";
  let seeds = 64 in
  let time workers =
    let t0 = Unix.gettimeofday () in
    let outcome = Campaign.run ~workers (Plans.fuzz_plan ~seeds ~seed:11L ()) in
    (Unix.gettimeofday () -. t0, Plans.fuzz_totals outcome)
  in
  let t1, s1 = time 1 in
  let t4, s4 = time 4 in
  Format.printf "1 worker:  %6.2fs  %7.1f programs/s@." t1 (float_of_int seeds /. t1);
  Format.printf "4 workers: %6.2fs  %7.1f programs/s  (speedup %.2fx)@." t4
    (float_of_int seeds /. t4) (t1 /. t4);
  Format.printf "divergences: %d, crashes: %d, skipped: %d@."
    (List.length s1.Fuzz_driver.failures) s1.Fuzz_driver.crashes s1.Fuzz_driver.skipped;
  let identical = s1 = s4 in
  Format.printf "results identical across worker counts: %b@." identical;
  if not identical then failwith "fuzz determinism violated in bench harness"

(* --- fault injection: faults/sec and retry overhead ---------------------- *)

let injection_throughput () =
  Format.printf "@.=== Fault injection: throughput ===@.";
  let faults = 48 in
  let time workers =
    let t0 = Unix.gettimeofday () in
    let outcome = Campaign.run ~workers (Plans.inject_plan ~faults ~seed:7L ()) in
    (Unix.gettimeofday () -. t0, Plans.inject_totals outcome)
  in
  let t1, s1 = time 1 in
  let t4, s4 = time 4 in
  Format.printf "1 worker:  %6.2fs  %7.1f faults/s@." t1 (float_of_int faults /. t1);
  Format.printf "4 workers: %6.2fs  %7.1f faults/s  (speedup %.2fx)@." t4
    (float_of_int faults /. t4) (t1 /. t4);
  let silents cells =
    List.fold_left (fun acc (_, c) -> acc + c.Pacstack_inject.Engine.silent) 0 cells
  in
  Format.printf "silent corruptions (all schemes): %d@." (silents s1.Pacstack_inject.Engine.cells);
  let identical = s1 = s4 in
  Format.printf "results identical across worker counts: %b@." identical;
  if not identical then failwith "injection determinism violated in bench harness"

(* Crash-tolerance tax: the same plan with every shard failing once
   before succeeding, against the clean run — measures the retry path
   (re-derived shard RNG + backoff), not the experiment itself. *)
let retry_overhead () =
  Format.printf "@.=== Campaign crash tolerance: retry overhead ===@.";
  let faults = 24 in
  let plan () = Plans.inject_plan ~faults ~seed:7L () in
  let no_backoff = { Campaign.default_policy with Campaign.backoff_s = (fun _ -> 0.) } in
  let time policy transform =
    let t0 = Unix.gettimeofday () in
    let outcome = Campaign.run ~workers:1 ~policy (transform (plan ())) in
    (Unix.gettimeofday () -. t0, Plans.inject_totals outcome)
  in
  let flaky (plan : _ Pacstack_campaign.Plan.t) =
    let failed = Array.make (Pacstack_campaign.Plan.shard_count plan) false in
    Pacstack_campaign.Plan.make ~name:plan.Pacstack_campaign.Plan.name
      ~seed:plan.Pacstack_campaign.Plan.seed
      ~shards:
        (Array.map
           (fun (s : Pacstack_campaign.Shard.t) ->
             (s.Pacstack_campaign.Shard.label, s.Pacstack_campaign.Shard.trials))
           plan.Pacstack_campaign.Plan.shards)
      ~run:(fun shard rng ->
        let i = shard.Pacstack_campaign.Shard.index in
        if not failed.(i) then begin
          failed.(i) <- true;
          failwith "transient bench failure"
        end;
        plan.Pacstack_campaign.Plan.run shard rng)
  in
  let t_clean, s_clean = time no_backoff (fun p -> p) in
  let t_flaky, s_flaky = time no_backoff flaky in
  Format.printf "clean run:            %6.2fs@." t_clean;
  Format.printf "every shard fails 1x: %6.2fs  (overhead %.2fx)@." t_flaky (t_flaky /. t_clean);
  Format.printf "results identical despite retries: %b@." (s_clean = s_flaky);
  if s_clean <> s_flaky then failwith "retry determinism violated in bench harness"

let run_bechamel () =
  let ols = Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |] in
  let cfg = Benchmark.cfg ~limit:200 ~quota:(Time.second 0.5) ~kde:None () in
  let raw = Benchmark.all cfg Instance.[ monotonic_clock ] tests in
  let results = Analyze.all ols Instance.monotonic_clock raw in
  let names = Hashtbl.fold (fun k _ acc -> k :: acc) results [] in
  Format.printf "@.=== Bechamel micro-benchmarks (monotonic clock) ===@.";
  List.iter
    (fun name ->
      let est =
        match Analyze.OLS.estimates results.%[name] with
        | Some [ t ] -> Printf.sprintf "%12.1f ns/run" t
        | Some _ | None -> "(no estimate)"
      in
      Format.printf "%-32s %s@." name est)
    (List.sort compare names)

let () =
  Format.printf "PACStack reproduction: regenerating all tables and figures@.";
  Pacstack_report.Report.all Format.std_formatter;
  run_bechamel ();
  campaign_scaling ();
  fuzz_throughput ();
  injection_throughput ();
  retry_overhead ();
  Format.printf "@.done.@."
