(* The benchmark harness: regenerates every table and figure of the
   paper's evaluation (via Pacstack_report), runs one Bechamel
   micro-benchmark per table/figure plus primitive micro-benchmarks, and
   measures the hot-path sections (MAC, machine step, loader, fuzz,
   injection and fleet throughput) that BENCH_09.json records, plus the
   lib/obs disabled-path overhead bound and the mega-campaign engine tax
   over the raw streaming fold.

   Modes:
     bench                 full run: report + bechamel + sections + scaling
     bench --quick         hot-path sections only (the CI perf-smoke job)
     bench --json          also write the sections to BENCH_09.json
     bench --out FILE      like --json, to FILE
     bench --gate          check the generous throughput floors and the
                           obs overhead ceilings; exit 1 on miss *)

open Bechamel
open Toolkit
module Rng = Pacstack_util.Rng
module Scheme = Pacstack_harden.Scheme
module Speclike = Pacstack_workloads.Speclike
module Server = Pacstack_workloads.Server
module Games = Pacstack_acs.Games
module Analysis = Pacstack_acs.Analysis
module Machine = Pacstack_machine.Machine
module Compile = Pacstack_minic.Compile
module Json = Pacstack_campaign.Json
module Qarma64 = Pacstack_qarma.Qarma64
module Prf = Pacstack_qarma.Prf
module Obs = Pacstack_obs.Obs
module Inject_engine = Pacstack_inject.Engine
module Mega = Pacstack_inject.Mega
module Fleet = Pacstack_fleet.Fleet
module Scheduler = Pacstack_fleet.Scheduler

let ( .%[] ) tbl key = Hashtbl.find tbl key

(* --- one Test.make per table/figure ----------------------------------- *)

let test_table1 =
  Test.make ~name:"table1_cell"
    (Staged.stage (fun () ->
         let rng = Rng.create 11L in
         Games.violation_success ~masked:true ~kind:Analysis.Off_graph_to_call_site ~bits:8
           ~trials:200 rng))

let bench_spec name =
  match Speclike.find name with
  | Some b -> b
  | None -> failwith ("unknown benchmark " ^ name)

let test_table2 =
  Test.make ~name:"table2_mcf_pacstack"
    (Staged.stage (fun () ->
         Speclike.measure ~scheme:Scheme.pacstack Speclike.Rate (bench_spec "mcf")))

let test_figure5 =
  Test.make ~name:"figure5_x264_baseline"
    (Staged.stage (fun () ->
         Speclike.measure ~scheme:Scheme.unprotected Speclike.Rate (bench_spec "x264")))

let test_table3 =
  Test.make ~name:"table3_handshake"
    (Staged.stage (fun () -> Server.measure ~scheme:Scheme.pacstack ~workers:4 ~variants:2 ()))

(* --- primitive micro-benchmarks ---------------------------------------- *)

let qarma_prf = Prf.create (Qarma64.random_key (Rng.create 5L))
let fast_prf = Prf.create_fast 0x1234L

let test_qarma =
  Test.make ~name:"qarma64_mac"
    (Staged.stage (fun () -> Prf.mac64 qarma_prf ~data:42L ~modifier:7L))

let test_fast_mac =
  Test.make ~name:"fast_mac"
    (Staged.stage (fun () -> Prf.mac64 fast_prf ~data:42L ~modifier:7L))

module Campaign = Pacstack_campaign.Campaign
module Pool = Pacstack_campaign.Pool
module Plans = Pacstack_report.Plans

let test_pool_dispatch =
  (* raw pool overhead: scheduling 64 trivial tasks over 4 domains *)
  Test.make ~name:"campaign_pool_dispatch64"
    (Staged.stage (fun () -> Pool.run ~workers:4 ~tasks:64 (fun i -> i * i)))

let test_campaign_birthday =
  Test.make ~name:"campaign_birthday_seq"
    (Staged.stage (fun () -> Campaign.run (Plans.birthday_plan ~scale:0.1 ~seed:7L ())))

let fib_program_under scheme n =
  Pacstack_minic.(
    Compile.compile ~scheme
      (Ast.program
         [
           Ast.fdef "fib" ~params:[ "n" ] ~locals:[ Ast.Scalar "a"; Ast.Scalar "b" ]
             Build.
               [
                 if_ (v "n" <= i 1) [ ret (v "n") ] [];
                 set "a" (call "fib" [ v "n" - i 1 ]);
                 set "b" (call "fib" [ v "n" - i 2 ]);
                 ret (v "a" + v "b");
               ];
           Ast.fdef "main" ~locals:[ Ast.Scalar "r" ]
             Build.[ set "r" (call "fib" [ i n ]); ret (i 0) ];
         ]))

let fib_program n = fib_program_under Scheme.pacstack n
let fib_program_unprotected n = fib_program_under Scheme.unprotected n
let fib10 = fib_program 10

let test_machine =
  Test.make ~name:"machine_fib10_pacstack"
    (Staged.stage (fun () -> Machine.run ~fuel:100_000 (Machine.load fib10)))

module Fuzz_driver = Pacstack_fuzz.Driver
module Fuzz_oracle = Pacstack_fuzz.Oracle

let test_fuzz_seed =
  (* one full differential check: generate, interpret, compile and run
     under all 6 schemes x {peephole off, on} *)
  Test.make ~name:"fuzz_seed_all_schemes"
    (Staged.stage (fun () ->
         Fuzz_driver.run_seed Fuzz_oracle.default_config ~campaign_seed:11L 3))

let tests =
  Test.make_grouped ~name:"pacstack"
    [ test_table1; test_table2; test_figure5; test_table3; test_qarma; test_fast_mac;
      test_machine; test_pool_dispatch; test_campaign_birthday; test_fuzz_seed ]

(* --- hot-path sections: the BENCH_07.json payload ------------------------ *)

type section = {
  sname : string;
  ns_per_op : float;
  ops_per_sec : float;
  before_ns : float option;   (* ns/op of the slow path this replaced *)
  before_src : string option; (* where the "before" number comes from *)
}

let speedup s = Option.map (fun b -> b /. s.ns_per_op) s.before_ns

let section ?before ?src sname ns =
  { sname; ns_per_op = ns; ops_per_sec = 1e9 /. ns; before_ns = before; before_src = src }

let time_per_op ~iters f =
  ignore (Sys.opaque_identity (f ()));
  let t0 = Unix.gettimeofday () in
  for _ = 1 to iters do
    ignore (Sys.opaque_identity (f ()))
  done;
  (Unix.gettimeofday () -. t0) *. 1e9 /. float_of_int iters

(* ns/op of the same operations at the seed commit, measured on the
   development host that produced the "after" numbers in DESIGN.md's
   performance table. The reference-QARMA "before" is re-measured in every
   run (the oracle is kept in-tree); the others contextualise cross-machine
   runs — the gates below use absolute floors with large headroom instead
   of these. *)
let seed_src = "seed commit, recorded"
let seed_machine_step_ns = 138.1
let seed_machine_load_ns = 285_236.
let seed_fuzz_ns = 1e9 /. 70.0
let seed_inject_ns = 1e9 /. 61.1

(* The dispatch the threaded engine replaced: machine_step as recorded in
   BENCH_08's predecessor, measured on the same host lineage. The
   step_speedup gate compares against this fixed anchor, not the
   re-measured reference (which also got faster when the build switched
   to the release profile for cross-module inlining). *)
let bench07_src = "BENCH_07, recorded"
let bench07_machine_step_ns = 57.17193567435222

let perf_sections () =
  Format.printf "@.measuring hot-path sections...@.";
  let key = Qarma64.key ~w0:0x0123456789abcdefL ~k0:0xfedcba9876543210L in
  let prf = Prf.create key in
  let ref_ns =
    time_per_op ~iters:3_000 (fun () -> Qarma64.Reference.encrypt key ~tweak:7L 42L)
  in
  let fast_ns = time_per_op ~iters:200_000 (fun () -> Prf.mac64 prf ~data:42L ~modifier:7L) in
  (* machine interpreter: a pacstack-instrumented recursive fib(15),
     once per engine — machine_step keeps tracking the reference
     fetch-then-match dispatch, machine_step_threaded the compiled-ops
     engine that [Machine.run] actually uses *)
  let program = fib_program 15 in
  let steps =
    let m = Machine.load program in
    ignore (Machine.run ~fuel:10_000_000 m);
    Machine.instructions_retired m
  in
  let time_steps runf =
    (* best of several batches: the minimum is the robust statistic for a
       CPU-bound loop on a noisy shared host — every other sample is the
       same work plus scheduling interference *)
    let best = ref infinity in
    for _ = 1 to 8 do
      let runs = 5 in
      let machines = Array.init runs (fun _ -> Machine.load program) in
      let t0 = Unix.gettimeofday () in
      Array.iter (fun m -> ignore (runf m)) machines;
      let ns = (Unix.gettimeofday () -. t0) *. 1e9 /. float_of_int (runs * steps) in
      if ns < !best then best := ns
    done;
    !best
  in
  let step_ns = time_steps (fun m -> Machine.Reference.run ~fuel:10_000_000 m) in
  let step_thr_ns = time_steps (fun m -> Machine.run ~fuel:10_000_000 m) in
  (* registry indirection: the scheme registry is a compile-time surface
     (descriptor closures run while instruction lists are built) and must
     leave no run-time residue. Round-tripping the image through the
     assembler reconstructs the instruction list with no descriptor
     anywhere near it; the result must be structurally identical (a
     zero-noise proof that nothing registry-shaped reaches the image)
     and must step at the same rate. Where each image's compiled-ops
     closures land on the heap swings paired timings by several percent
     either way, so each round compiles and parses fresh images and the
     gate takes the best paired round: layout luck averages out of the
     minimum, while a real per-step indirection cost would lift every
     round and still trip the 2% ceiling. *)
  let registry_pct =
    let batch p =
      let runs = 5 in
      let machines = Array.init runs (fun _ -> Machine.load p) in
      let t0 = Unix.gettimeofday () in
      Array.iter (fun m -> ignore (Machine.run ~fuel:10_000_000 m)) machines;
      (Unix.gettimeofday () -. t0) *. 1e9 /. float_of_int (runs * steps)
    in
    let best = ref (infinity, infinity, infinity) in
    for round = 1 to 8 do
      let p = fib_program 15 in
      let r = Pacstack_isa.Asm.parse (Pacstack_isa.Asm.print p) in
      if p <> r then failwith "bench: asm roundtrip changed the compiled image";
      ignore (batch p);
      ignore (batch r);
      let reg, plain =
        if round mod 2 = 0 then (batch p, batch r)
        else
          let plain = batch r in
          (batch p, plain)
      in
      let pct = (reg -. plain) /. plain *. 100. in
      let best_pct, _, _ = !best in
      if pct < best_pct then best := (pct, reg, plain)
    done;
    !best
  in
  let _, step_reg_ns, step_plain_ns = registry_pct in
  let load_ns = time_per_op ~iters:50 (fun () -> Machine.load program) in
  (* end-to-end engines at 1 worker, with an N-worker determinism check.
     The 4-worker runs execute fully instrumented and traced (obs enabled,
     campaign progress hooks attached): the ISSUE 5 acceptance criterion is
     that a traced parallel campaign stays bit-identical to the plain
     sequential one — obs is a write-only side channel. *)
  let traced f =
    Obs.reset ();
    Obs.enable ();
    let sink = Obs.Campaign_hooks.progress_sink () in
    Fun.protect
      ~finally:(fun () ->
        Obs.disable ();
        Obs.reset ())
      (fun () -> f sink)
  in
  let fuzz_seeds = 64 in
  let time_fuzz ?progress workers =
    let t0 = Unix.gettimeofday () in
    let o = Campaign.run ~workers ?progress (Plans.fuzz_plan ~seeds:fuzz_seeds ~seed:11L ()) in
    (Unix.gettimeofday () -. t0, Plans.fuzz_totals o)
  in
  let tf1, f1 = time_fuzz 1 in
  let _, f4 = traced (fun sink -> time_fuzz ~progress:sink 4) in
  if f1 <> f4 then failwith "bench: fuzz results differ across worker counts";
  let faults = 48 in
  let time_inject ?progress workers =
    let t0 = Unix.gettimeofday () in
    let o = Campaign.run ~workers ?progress (Plans.inject_plan ~faults ~seed:7L ()) in
    (Unix.gettimeofday () -. t0, Plans.inject_totals o)
  in
  let ti1, i1 = time_inject 1 in
  let _, i4 = traced (fun sink -> time_inject ~progress:sink 4) in
  if i1 <> i4 then failwith "bench: injection results differ across worker counts";
  (* fleet: 1k open-loop connections against unprotected and pacstack;
     ns per simulated request (service-cost calibration included), with
     the same traced-4-worker identity check as fuzz and injection *)
  let fleet_cfg =
    {
      Fleet.default with
      Fleet.connections = 1000;
      duration_s = 1.0;
      schemes = [ Scheme.unprotected; Scheme.pacstack ];
    }
  in
  let time_fleet ?progress workers =
    let t0 = Unix.gettimeofday () in
    let o = Campaign.run ~workers ?progress (Fleet.plan fleet_cfg) in
    (Unix.gettimeofday () -. t0, Fleet.tabulate fleet_cfg o)
  in
  let tfl1, fl1 = time_fleet 1 in
  let _, fl4 = traced (fun sink -> time_fleet ~progress:sink 4) in
  if fl1 <> fl4 then failwith "bench: fleet results differ across worker counts";
  let fleet_requests =
    List.fold_left (fun acc (r : Fleet.stats) -> acc + r.Fleet.completed) 0 fl1
  in
  Format.printf
    "fuzz, injection and fleet results identical at 1 worker vs traced 4 workers: true@.";
  (* the fleet's event queue alone: one push + one pop per event on a
     randomly-ordered 4k-event backlog *)
  let sched_ns =
    let n = 4096 in
    let rng = Rng.create 3L in
    let times = Array.init n (fun _ -> Rng.int rng 1_000_000) in
    time_per_op ~iters:200 (fun () ->
        let h = Scheduler.create () in
        for i = 0 to n - 1 do
          Scheduler.push h ~time:times.(i) ~tie:0 i
        done;
        let rec drain acc = match Scheduler.pop h with None -> acc | Some _ -> drain (acc + 1) in
        drain 0)
    /. float_of_int n
  in
  [
    section "qarma_mac_reference" ref_ns;
    section ~before:ref_ns ~src:"reference oracle, this run" "qarma_mac_fast" fast_ns;
    section ~before:seed_machine_step_ns ~src:seed_src "machine_step" step_ns;
    section ~before:bench07_machine_step_ns ~src:bench07_src "machine_step_threaded"
      step_thr_ns;
    section ~before:step_plain_ns ~src:"asm-roundtrip image, this run"
      "machine_step_registry" step_reg_ns;
    section ~before:seed_machine_load_ns ~src:seed_src "machine_load" load_ns;
    section ~before:seed_fuzz_ns ~src:seed_src "fuzz_program"
      (tf1 *. 1e9 /. float_of_int fuzz_seeds);
    section ~before:seed_inject_ns ~src:seed_src "inject_fault"
      (ti1 *. 1e9 /. float_of_int faults);
    section "scheduler_event" sched_ns;
    section "fleet_request" (tfl1 *. 1e9 /. float_of_int (max 1 fleet_requests));
  ]

let print_sections sections =
  Format.printf "@.=== Hot-path sections ===@.";
  Format.printf "%-22s %14s %16s %14s %9s@." "section" "ns/op" "ops/s" "before ns/op" "speedup";
  List.iter
    (fun s ->
      Format.printf "%-22s %14.1f %16.1f %14s %9s@." s.sname s.ns_per_op s.ops_per_sec
        (match s.before_ns with Some v -> Printf.sprintf "%.1f" v | None -> "-")
        (match speedup s with Some v -> Printf.sprintf "%.2fx" v | None -> "-"))
    sections

(* --- mega-campaign engine tax -------------------------------------------- *)

(* ns/fault of the raw streaming fold (Mega.run_range called directly)
   versus the same faults driven through the full campaign machinery:
   shards, checkpoint manifest, hierarchical compaction. The difference
   is what a 10^8-fault run pays for crash tolerance per fault, gated as
   a ceiling below. The totals of the two paths are also asserted
   bit-identical — the raw fold IS the campaign's semantics. *)

type campaign_cost = {
  raw_ns_per_fault : float;
  engine_ns_per_fault : float;
  overhead_pct : float;
  co_faults : int;
}

let campaign_cost () =
  Format.printf "@.measuring mega-campaign engine tax...@.";
  let co_faults = 32 and seed = 7L in
  let raw () =
    Mega.run_range Inject_engine.default_config ~campaign_seed:seed ~first:0
      ~count:co_faults
  in
  let engine () =
    let path = Filename.temp_file "pacstack_bench_mega" ".jsonl" in
    Sys.remove path;
    Fun.protect
      ~finally:(fun () -> if Sys.file_exists path then Sys.remove path)
      (fun () ->
        let outcome =
          Campaign.run ~workers:1
            ~checkpoint:(path, Plans.mega_codec)
            ~compaction:(Plans.mega_compaction ~keep:2)
            (Plans.mega_plan ~faults:co_faults ~shard_faults:8 ~seed ())
        in
        Plans.mega_totals outcome)
  in
  let time_min f =
    let best = ref infinity and result = ref None in
    for _ = 1 to 2 do
      let t0 = Unix.gettimeofday () in
      let r = f () in
      let dt = Unix.gettimeofday () -. t0 in
      if dt < !best then best := dt;
      result := Some r
    done;
    (!best, Option.get !result)
  in
  let t_raw, m_raw = time_min raw in
  let t_engine, m_engine = time_min engine in
  if m_raw <> m_engine then
    failwith "bench: mega campaign totals differ from the raw streaming fold";
  let raw_ns = t_raw *. 1e9 /. float_of_int co_faults in
  let engine_ns = t_engine *. 1e9 /. float_of_int co_faults in
  {
    raw_ns_per_fault = raw_ns;
    engine_ns_per_fault = engine_ns;
    overhead_pct = (engine_ns -. raw_ns) /. raw_ns *. 100.;
    co_faults;
  }

let print_campaign_cost c =
  Format.printf "@.=== Mega-campaign engine tax (gated <= 25%%) ===@.";
  Format.printf "raw streaming fold:    %10.1f ns/fault@." c.raw_ns_per_fault;
  Format.printf "campaign engine:       %10.1f ns/fault@." c.engine_ns_per_fault;
  Format.printf "overhead:              %10.2f %%  (%d faults, checkpoint + compaction)@."
    c.overhead_pct c.co_faults

(* --- threaded-engine allocation residuals --------------------------------- *)

(* Compares used to allocate a [Cond.flags] record and pac/aut boxed
   their MAC result through [Pac.result]. Both are gone (packed NZCV
   int, [Pac.auth_value]); what remains is the unavoidable Int64 boxing
   on cross-module memory loads, which every instruction mix pays alike.
   The assertion is therefore differential: a compare-saturated loop and
   a pac/aut-saturated call tree must allocate no more minor words per
   step than their plain-ALU / unprotected twins. *)

type alloc_residuals = {
  alu_words_per_step : float;
  cmp_words_per_step : float;
  pac_words_per_step : float;
  unprot_words_per_step : float;
}

let alloc_residuals () =
  Format.printf "@.measuring threaded-engine allocation residuals...@.";
  let words_per_step p =
    (* warm load caches, then measure the steady-state run only *)
    let m = Machine.load p in
    ignore (Machine.run ~fuel:10_000_000 m);
    let steps = Machine.instructions_retired m in
    let m2 = Machine.load p in
    let w0 = Gc.minor_words () in
    ignore (Machine.run ~fuel:10_000_000 m2);
    (Gc.minor_words () -. w0) /. float_of_int steps
  in
  let loop body =
    Pacstack_minic.(
      Compile.compile ~scheme:Scheme.unprotected
        (Ast.program
           [
             Ast.fdef "main"
               ~locals:[ Ast.Scalar "k"; Ast.Scalar "s" ]
               Build.
                 [
                   set "s" (i 0);
                   for_ "k" ~from:(i 0) ~below:(i 50_000) body;
                   ret (i 0);
                 ];
           ]))
  in
  let alu =
    loop
      Pacstack_minic.Build.
        [ set "s" (v "s" + v "k"); set "s" (v "s" lxor i 3); set "s" (v "s" + i 1) ]
  in
  let cmp =
    loop
      Pacstack_minic.Build.
        [
          if_ (v "k" <= i 25_000) [ set "s" (v "s" + i 1) ] [ set "s" (v "s" + i 2) ];
          if_ (v "s" == i 7) [ set "s" (v "s" + i 3) ] [];
        ]
  in
  {
    alu_words_per_step = words_per_step alu;
    cmp_words_per_step = words_per_step cmp;
    pac_words_per_step = words_per_step (fib_program 15);
    unprot_words_per_step = words_per_step (fib_program_unprotected 15);
  }

let print_alloc_residuals a =
  Format.printf "@.=== Threaded-engine allocation residuals (gated, differential) ===@.";
  Format.printf "plain ALU loop:        %8.4f minor words/step@." a.alu_words_per_step;
  Format.printf "compare-saturated:     %8.4f minor words/step@." a.cmp_words_per_step;
  Format.printf "fib unprotected:       %8.4f minor words/step@." a.unprot_words_per_step;
  Format.printf "fib pacstack:          %8.4f minor words/step@." a.pac_words_per_step

(* --- lib/obs disabled-path overhead --------------------------------------- *)

(* The ISSUE 5 acceptance criterion: instrumentation must cost under 2% on
   the machine-step and fuzz hot paths while disabled. The disabled path
   executes only [Obs.enabled] guards (one atomic load + predictable
   branch) at sites the hot loops already branch on — PA instructions,
   TLB refills, one publish per machine run — so the overhead bound is
   (guards per op) x (guard cost) / (op cost). Guard cost is measured on
   a 64-deep unrolled loop; guard frequency comes from an *enabled*
   profiling run, whose counters record how often each guarded site
   fired. Summing emission-side counters overestimates the number of
   guard executions, which only makes the bound more conservative. *)

type obs_cost = { guard_ns : float; machine_pct : float; fuzz_pct : float }

let obs_guard_ns () =
  let f () =
    let acc = ref 0 in
    for _ = 1 to 64 do
      if Obs.enabled () then incr acc
    done;
    !acc
  in
  time_per_op ~iters:100_000 f /. 64.

let prefixed p s = String.length s >= String.length p && String.sub s 0 (String.length p) = p

let suffixed suf s =
  let n = String.length s and m = String.length suf in
  n >= m && String.sub s (n - m) m = suf

(* Counters whose recorded value bounds the number of guarded-site
   executions. Per-run aggregates (machine.instructions) and values
   derived at publish time (TLB hits) are excluded: they are flushed
   behind the single per-run guard, not counted per event. *)
let obs_guard_count () =
  List.fold_left
    (fun acc (name, v) ->
      match v with
      | Obs.Metrics.Counter n
        when (prefixed "machine.pac." name || prefixed "machine.tlb." name
             || prefixed "machine.trap." name || prefixed "harden." name
             || prefixed "fuzz." name)
             && not (suffixed "_hit" name) -> acc + n
      | _ -> acc)
    0 (Obs.Metrics.snapshot ())

let obs_overhead ~step_ns ~fuzz_ns =
  let guard_ns = obs_guard_ns () in
  Obs.reset ();
  Obs.enable ();
  (* guard frequency on the interpreter: the same fib(15) run the
     machine_step section times, +1 for the per-run publish guard *)
  let m = Machine.load (fib_program 15) in
  ignore (Machine.run ~fuel:10_000_000 m);
  let steps = Machine.instructions_retired m in
  let machine_guards = obs_guard_count () + 1 in
  Obs.reset ();
  (* guard frequency per fuzz program: one full differential seed *)
  ignore (Fuzz_driver.run_seed Fuzz_oracle.default_config ~campaign_seed:11L 3);
  let fuzz_guards = obs_guard_count () in
  Obs.disable ();
  Obs.reset ();
  {
    guard_ns;
    machine_pct =
      float_of_int machine_guards /. float_of_int steps *. guard_ns /. step_ns *. 100.;
    fuzz_pct = float_of_int fuzz_guards *. guard_ns /. fuzz_ns *. 100.;
  }

let print_obs_cost c =
  Format.printf "@.=== lib/obs disabled-path overhead (gated <= 2%%) ===@.";
  Format.printf "disabled guard:        %8.2f ns (atomic load + branch, 64-deep unroll)@."
    c.guard_ns;
  Format.printf "machine_step overhead: %8.4f %%@." c.machine_pct;
  Format.printf "fuzz_seed overhead:    %8.4f %%@." c.fuzz_pct

(* --- throughput gates ----------------------------------------------------- *)

(* Floors are deliberately generous — at least 2x (mostly 3-5x) below the
   numbers measured on the development host — so the CI perf-smoke job
   catches order-of-magnitude regressions, not machine-to-machine noise.
   Re-baselined after the threaded-code engine landed: everything that
   runs machines (fuzz, injection, fleet, the step rates themselves) got
   faster, so the old floors had drifted to 5-15x headroom.
   The obs gates run the other way: ceilings on the disabled-path
   instrumentation overhead. *)

type gate_op = Floor | Ceiling

type gate = { gname : string; metric : string; op : gate_op; limit : float; value : float }

let gate_pass g = match g.op with Floor -> g.value >= g.limit | Ceiling -> g.value <= g.limit
let gate_op_string g = match g.op with Floor -> ">=" | Ceiling -> "<="

let gates sections obs cost alloc =
  let s n = List.find (fun x -> x.sname = n) sections in
  let mac_speedup = match speedup (s "qarma_mac_fast") with Some v -> v | None -> 0. in
  let registry_pct =
    let r = s "machine_step_registry" in
    match r.before_ns with
    | Some before -> (r.ns_per_op -. before) /. before *. 100.
    | None -> infinity
  in
  [
    { gname = "mac_speedup"; metric = "fast MAC speedup over reference (x)";
      op = Floor; limit = 5.0; value = mac_speedup };
    { gname = "mac_rate"; metric = "QARMA MACs per second";
      op = Floor; limit = 200_000.; value = (s "qarma_mac_fast").ops_per_sec };
    { gname = "step_rate"; metric = "machine steps per second";
      op = Floor; limit = 5_000_000.; value = (s "machine_step").ops_per_sec };
    (* re-baselined from 5.0: measured ~5.2x, and a shared host swings
       the best-of-8 by +-7% — the old floor had 4% headroom and flaked
       on runs that touched nothing near the engine *)
    { gname = "step_speedup";
      metric = "threaded engine speedup over BENCH_07 machine_step (x)";
      op = Floor; limit = 4.0;
      value = (match speedup (s "machine_step_threaded") with Some v -> v | None -> 0.) };
    { gname = "threaded_step_rate"; metric = "threaded machine steps per second";
      op = Floor; limit = 30_000_000.; value = (s "machine_step_threaded").ops_per_sec };
    { gname = "fuzz_rate"; metric = "fuzz programs per second";
      op = Floor; limit = 40.; value = (s "fuzz_program").ops_per_sec };
    { gname = "inject_rate"; metric = "injected faults per second";
      op = Floor; limit = 50.; value = (s "inject_fault").ops_per_sec };
    { gname = "scheduler_rate"; metric = "fleet scheduler events per second";
      op = Floor; limit = 500_000.; value = (s "scheduler_event").ops_per_sec };
    { gname = "fleet_rate"; metric = "simulated fleet requests per second";
      op = Floor; limit = 4_000.; value = (s "fleet_request").ops_per_sec };
    { gname = "obs_machine_overhead"; metric = "disabled obs overhead on machine step (%)";
      op = Ceiling; limit = 2.0; value = obs.machine_pct };
    { gname = "obs_fuzz_overhead"; metric = "disabled obs overhead on fuzz seed (%)";
      op = Ceiling; limit = 2.0; value = obs.fuzz_pct };
    { gname = "campaign_overhead"; metric = "mega campaign tax over raw engine (%)";
      op = Ceiling; limit = 25.0; value = cost.overhead_pct };
    { gname = "registry_indirection";
      metric = "registry-compiled vs asm-roundtrip threaded step (%)";
      op = Ceiling; limit = 2.0; value = registry_pct };
    { gname = "cmp_no_alloc";
      metric = "compare-loop minor words/step over plain-ALU loop";
      op = Ceiling; limit = 0.02;
      value = alloc.cmp_words_per_step -. alloc.alu_words_per_step };
    { gname = "pac_no_alloc";
      metric = "pacstack-fib minor words/step over unprotected fib";
      op = Ceiling; limit = 0.02;
      value = alloc.pac_words_per_step -. alloc.unprot_words_per_step };
  ]

(* --- JSON export (schema documented in README.md) ------------------------- *)

let json_of ~mode sections obs cost alloc gate_results =
  let opt f = function Some v -> f v | None -> Json.Null in
  Json.Obj
    [
      ("schema_version", Json.Int 4);
      ("bench", Json.String "pacstack-hot-path");
      ("mode", Json.String mode);
      ( "obs_overhead",
        Json.Obj
          [
            ("guard_ns", Json.Float obs.guard_ns);
            ("machine_step_pct", Json.Float obs.machine_pct);
            ("fuzz_seed_pct", Json.Float obs.fuzz_pct);
          ] );
      ( "campaign_overhead",
        Json.Obj
          [
            ("raw_ns_per_fault", Json.Float cost.raw_ns_per_fault);
            ("engine_ns_per_fault", Json.Float cost.engine_ns_per_fault);
            ("overhead_pct", Json.Float cost.overhead_pct);
            ("faults", Json.Int cost.co_faults);
          ] );
      ( "alloc_residuals",
        Json.Obj
          [
            ("alu_words_per_step", Json.Float alloc.alu_words_per_step);
            ("cmp_words_per_step", Json.Float alloc.cmp_words_per_step);
            ("pac_words_per_step", Json.Float alloc.pac_words_per_step);
            ("unprotected_words_per_step", Json.Float alloc.unprot_words_per_step);
          ] );
      ( "sections",
        Json.List
          (List.map
             (fun s ->
               Json.Obj
                 [
                   ("name", Json.String s.sname);
                   ("ns_per_op", Json.Float s.ns_per_op);
                   ("ops_per_sec", Json.Float s.ops_per_sec);
                   ("before_ns_per_op", opt (fun v -> Json.Float v) s.before_ns);
                   ("before_source", opt (fun v -> Json.String v) s.before_src);
                   ("speedup", opt (fun v -> Json.Float v) (speedup s));
                 ])
             sections) );
      ( "gates",
        match gate_results with
        | None -> Json.Null
        | Some gs ->
          Json.List
            (List.map
               (fun (g, pass) ->
                 Json.Obj
                   [
                     ("name", Json.String g.gname);
                     ("metric", Json.String g.metric);
                     ("op", Json.String (gate_op_string g));
                     ("limit", Json.Float g.limit);
                     ("value", Json.Float g.value);
                     ("pass", Json.Bool pass);
                   ])
               gs) );
    ]

(* --- campaign pool: wall-clock scaling ---------------------------------- *)

(* The ISSUE 1 acceptance check: run the same Table 1 campaign plan on 1
   worker and on 4 and report the wall-clock ratio. On a multi-core host
   the 4-worker run is measurably faster; on a single-core container the
   ratio degrades towards (or below) 1x, which the report makes visible
   rather than hiding. Determinism is asserted either way. *)
let campaign_scaling () =
  Format.printf "@.=== Campaign engine: wall-clock scaling (Table 1 plan) ===@.";
  Format.printf "host cores (recommended domains): %d@." (Pool.default_workers ());
  let plan () = Plans.table1_plan ~scale:0.05 ~seed:42L () in
  let time workers =
    let t0 = Unix.gettimeofday () in
    let outcome = Campaign.run ~workers (plan ()) in
    (Unix.gettimeofday () -. t0, Plans.table1_estimates outcome)
  in
  let t1, r1 = time 1 in
  let t4, r4 = time 4 in
  let identical =
    Array.for_all2
      (fun (a : Pacstack_acs.Games.estimate) (b : Pacstack_acs.Games.estimate) ->
        a.successes = b.successes && a.trials = b.trials)
      r1 r4
  in
  Format.printf "1 worker:  %6.2fs@." t1;
  Format.printf "4 workers: %6.2fs  (speedup %.2fx)@." t4 (t1 /. t4);
  Format.printf "results identical across worker counts: %b@." identical;
  if not identical then failwith "campaign determinism violated in bench harness"

(* Crash-tolerance tax: the same plan with every shard failing once
   before succeeding, against the clean run — measures the retry path
   (re-derived shard RNG + backoff), not the experiment itself. *)
let retry_overhead () =
  Format.printf "@.=== Campaign crash tolerance: retry overhead ===@.";
  let faults = 24 in
  let plan () = Plans.inject_plan ~faults ~seed:7L () in
  let no_backoff = { Campaign.default_policy with Campaign.backoff_s = (fun _ -> 0.) } in
  let time policy transform =
    let t0 = Unix.gettimeofday () in
    let outcome = Campaign.run ~workers:1 ~policy (transform (plan ())) in
    (Unix.gettimeofday () -. t0, Plans.inject_totals outcome)
  in
  let flaky (plan : _ Pacstack_campaign.Plan.t) =
    let failed = Array.make (Pacstack_campaign.Plan.shard_count plan) false in
    Pacstack_campaign.Plan.make ~name:plan.Pacstack_campaign.Plan.name
      ~seed:plan.Pacstack_campaign.Plan.seed
      ~shards:
        (Array.map
           (fun (s : Pacstack_campaign.Shard.t) ->
             (s.Pacstack_campaign.Shard.label, s.Pacstack_campaign.Shard.trials))
           plan.Pacstack_campaign.Plan.shards)
      ~run:(fun shard rng ->
        let i = shard.Pacstack_campaign.Shard.index in
        if not failed.(i) then begin
          failed.(i) <- true;
          failwith "transient bench failure"
        end;
        plan.Pacstack_campaign.Plan.run shard rng)
  in
  let t_clean, s_clean = time no_backoff (fun p -> p) in
  let t_flaky, s_flaky = time no_backoff flaky in
  Format.printf "clean run:            %6.2fs@." t_clean;
  Format.printf "every shard fails 1x: %6.2fs  (overhead %.2fx)@." t_flaky (t_flaky /. t_clean);
  Format.printf "results identical despite retries: %b@." (s_clean = s_flaky);
  if s_clean <> s_flaky then failwith "retry determinism violated in bench harness"

let run_bechamel () =
  let ols = Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |] in
  let cfg = Benchmark.cfg ~limit:200 ~quota:(Time.second 0.5) ~kde:None () in
  let raw = Benchmark.all cfg Instance.[ monotonic_clock ] tests in
  let results = Analyze.all ols Instance.monotonic_clock raw in
  let names = Hashtbl.fold (fun k _ acc -> k :: acc) results [] in
  Format.printf "@.=== Bechamel micro-benchmarks (monotonic clock) ===@.";
  List.iter
    (fun name ->
      let est =
        match Analyze.OLS.estimates results.%[name] with
        | Some [ t ] -> Printf.sprintf "%12.1f ns/run" t
        | Some _ | None -> "(no estimate)"
      in
      Format.printf "%-32s %s@." name est)
    (List.sort compare names)

let () =
  let quick = ref false and json = ref false and gate = ref false in
  let out = ref "BENCH_09.json" in
  let rec parse = function
    | [] -> ()
    | "--quick" :: rest -> quick := true; parse rest
    | "--json" :: rest -> json := true; parse rest
    | "--gate" :: rest -> gate := true; parse rest
    | "--out" :: file :: rest -> out := file; json := true; parse rest
    | arg :: _ ->
      Printf.eprintf "bench: unknown argument %s\nusage: bench [--quick] [--json] [--gate] [--out FILE]\n" arg;
      exit 2
  in
  parse (List.tl (Array.to_list Sys.argv));
  if not !quick then begin
    Format.printf "PACStack reproduction: regenerating all tables and figures@.";
    Pacstack_report.Report.all Format.std_formatter;
    run_bechamel ()
  end;
  let sections = perf_sections () in
  print_sections sections;
  let ns_of n = (List.find (fun x -> x.sname = n) sections).ns_per_op in
  let obs =
    obs_overhead ~step_ns:(ns_of "machine_step") ~fuzz_ns:(ns_of "fuzz_program")
  in
  print_obs_cost obs;
  let cost = campaign_cost () in
  print_campaign_cost cost;
  let alloc = alloc_residuals () in
  print_alloc_residuals alloc;
  if not !quick then begin
    campaign_scaling ();
    retry_overhead ()
  end;
  let gate_results =
    if not !gate then None
    else Some (List.map (fun g -> (g, gate_pass g)) (gates sections obs cost alloc))
  in
  (match gate_results with
  | None -> ()
  | Some gs ->
    Format.printf "@.=== Gates ===@.";
    List.iter
      (fun (g, pass) ->
        Format.printf "%-20s %-42s %s %12.1f  value %16.4f  %s@." g.gname g.metric
          (gate_op_string g) g.limit g.value
          (if pass then "ok" else "FAIL"))
      gs);
  if !json then begin
    let doc =
      json_of ~mode:(if !quick then "quick" else "full") sections obs cost alloc
        gate_results
    in
    let oc = open_out !out in
    output_string oc (Json.to_string doc);
    output_string oc "\n";
    close_out oc;
    Format.printf "wrote %s@." !out
  end;
  (match gate_results with
  | Some gs when List.exists (fun (_, pass) -> not pass) gs ->
    prerr_endline "bench: throughput gate failed";
    exit 1
  | _ -> ());
  Format.printf "@.done.@."
