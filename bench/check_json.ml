(* Golden-schema validator for the bench JSON export and for lib/obs
   trace files, used from dune runtest and the CI perf-smoke job.

     check_json BENCH.json        validate the bench export: parses with
                                  the campaign Json codec and carries the
                                  documented schema_version / section /
                                  gate keys (see README.md)
     check_json --trace FILE      validate a JSON-lines obs trace: every
                                  line parses, the header comes first,
                                  and every record is a metric or event
     check_json --manifest FILE   validate a campaign checkpoint manifest:
                                  binding header first, then only shard,
                                  merged-statistics or quarantine lines;
                                  a torn FINAL line is tolerated (that is
                                  the crash the format is designed for),
                                  a torn middle line is not

   Exits 0 when the file validates, 1 with a message naming the first
   violation otherwise. *)

module Json = Pacstack_campaign.Json

let fail fmt = Printf.ksprintf (fun m -> prerr_endline ("check_json: " ^ m); exit 1) fmt

let str_member name v =
  match Json.(Option.bind (member name v) to_str) with
  | Some s -> s
  | None -> fail "missing string field %S in %s" name (Json.to_string v)

let int_member name v =
  match Json.(Option.bind (member name v) to_int) with
  | Some n -> n
  | None -> fail "missing int field %S in %s" name (Json.to_string v)

let float_member name v =
  match Json.(Option.bind (member name v) to_float) with
  | Some f -> f
  | None -> fail "missing number field %S in %s" name (Json.to_string v)

let require_member name v =
  match Json.member name v with
  | Some f -> f
  | None -> fail "missing field %S in %s" name (Json.to_string v)

let list_member name v =
  match Json.to_list (require_member name v) with
  | Some l -> l
  | None -> fail "field %S is not a list in %s" name (Json.to_string v)

(* --- the BENCH_09.json schema ------------------------------------------- *)

let check_section s =
  let name = str_member "name" s in
  let ns = float_member "ns_per_op" s in
  let ops = float_member "ops_per_sec" s in
  if not (Float.is_finite ns && ns > 0.) then fail "section %S: bad ns_per_op" name;
  if not (Float.is_finite ops && ops > 0.) then fail "section %S: bad ops_per_sec" name;
  (* optional keys must still be present (possibly null) *)
  ignore (require_member "before_ns_per_op" s);
  ignore (require_member "before_source" s);
  ignore (require_member "speedup" s);
  name

let check_gate g =
  let name = str_member "name" g in
  ignore (str_member "metric" g);
  (match str_member "op" g with
  | ">=" | "<=" -> ()
  | op -> fail "gate %S: unknown op %S" name op);
  ignore (float_member "limit" g);
  ignore (float_member "value" g);
  match Json.(Option.bind (member "pass" g) to_bool) with
  | Some _ -> ()
  | None -> fail "gate %S: missing bool field \"pass\"" name

let check_bench path =
  let text = In_channel.with_open_text path In_channel.input_all in
  let doc =
    match Json.parse text with
    | Ok v -> v
    | Error e -> fail "%s does not parse: %s" path e
  in
  let version = int_member "schema_version" doc in
  if version <> 4 then fail "schema_version %d, expected 4" version;
  if str_member "bench" doc <> "pacstack-hot-path" then fail "unexpected bench id";
  (match str_member "mode" doc with
  | "quick" | "full" -> ()
  | m -> fail "unknown mode %S" m);
  let obs = require_member "obs_overhead" doc in
  ignore (float_member "guard_ns" obs);
  ignore (float_member "machine_step_pct" obs);
  ignore (float_member "fuzz_seed_pct" obs);
  let cost = require_member "campaign_overhead" doc in
  let raw = float_member "raw_ns_per_fault" cost in
  let engine = float_member "engine_ns_per_fault" cost in
  ignore (float_member "overhead_pct" cost);
  if int_member "faults" cost < 1 then fail "campaign_overhead: bad fault count";
  if not (Float.is_finite raw && raw > 0.) then
    fail "campaign_overhead: bad raw_ns_per_fault";
  if not (Float.is_finite engine && engine > 0.) then
    fail "campaign_overhead: bad engine_ns_per_fault";
  let alloc = require_member "alloc_residuals" doc in
  List.iter
    (fun k ->
      let v = float_member k alloc in
      if not (Float.is_finite v && v >= 0.) then fail "alloc_residuals: bad %s" k)
    [
      "alu_words_per_step"; "cmp_words_per_step"; "pac_words_per_step";
      "unprotected_words_per_step";
    ];
  let sections = List.map check_section (list_member "sections" doc) in
  List.iter
    (fun required ->
      if not (List.mem required sections) then fail "missing section %S" required)
    [
      "qarma_mac_fast"; "machine_step"; "machine_step_threaded";
      "machine_step_registry"; "machine_load"; "fuzz_program"; "inject_fault";
      "scheduler_event"; "fleet_request";
    ];
  (match require_member "gates" doc with
  | Json.Null -> ()
  | gates -> (
    match Json.to_list gates with
    | Some gs -> List.iter check_gate gs
    | None -> fail "\"gates\" is neither null nor a list"));
  Printf.printf "check_json: %s ok (%d sections)\n" path (List.length sections)

(* --- obs trace files (JSON lines) ---------------------------------------- *)

let check_trace path =
  let lines = In_channel.with_open_text path In_channel.input_lines in
  let n_metrics = ref 0 and n_events = ref 0 in
  (match lines with
  | [] -> fail "%s is empty" path
  | header :: rest ->
    (match Json.parse header with
    | Error e -> fail "%s line 1 does not parse: %s" path e
    | Ok v ->
      if str_member "type" v <> "header" then fail "line 1 is not the header";
      if str_member "schema" v <> "pacstack-obs" then fail "unknown trace schema";
      ignore (int_member "version" v);
      ignore (int_member "dropped" v));
    List.iteri
      (fun i line ->
        let lineno = i + 2 in
        match Json.parse line with
        | Error e -> fail "%s line %d does not parse: %s" path lineno e
        | Ok v -> (
          match str_member "type" v with
          | "metric" ->
            incr n_metrics;
            ignore (str_member "name" v);
            (match str_member "kind" v with
            | "counter" | "gauge" | "histogram" -> ()
            | k -> fail "line %d: unknown metric kind %S" lineno k)
          | "event" ->
            incr n_events;
            ignore (str_member "name" v);
            ignore (int_member "key" v);
            ignore (int_member "seq" v);
            ignore (require_member "fields" v)
          | t -> fail "line %d: unknown record type %S" lineno t))
      rest);
  Printf.printf "check_json: %s ok (%d metrics, %d events)\n" path !n_metrics !n_events

(* --- campaign checkpoint manifests (JSON lines) --------------------------- *)

let check_manifest path =
  let lines = In_channel.with_open_text path In_channel.input_lines in
  let n_shards = ref 0 and n_merged = ref 0 and n_quarantined = ref 0 in
  let last = List.length lines in
  (match lines with
  | [] -> fail "%s is empty" path
  | header :: rest ->
    (match Json.parse header with
    | Error e -> fail "%s line 1 does not parse: %s" path e
    | Ok v ->
      ignore (int_member "version" v);
      ignore (str_member "campaign" v);
      ignore (str_member "seed" v);
      if int_member "shards" v < 1 then fail "header: bad shard count");
    List.iteri
      (fun i line ->
        let lineno = i + 2 in
        match Json.parse line with
        | Error e ->
          (* A torn trailing line is the crash the append-only format is
             designed to survive; anywhere else it is corruption. *)
          if lineno = last then
            Printf.printf "check_json: %s line %d torn (tolerated)\n" path lineno
          else fail "%s line %d does not parse: %s" path lineno e
        | Ok v -> (
          match Json.(Option.bind (member "merged" v) to_bool) with
          | Some true ->
            incr n_merged;
            ignore (int_member "generation" v);
            List.iter
              (fun r ->
                match Json.to_list r with
                | Some [ lo; hi ]
                  when Option.is_some (Json.to_int lo) && Option.is_some (Json.to_int hi)
                  -> ()
                | _ -> fail "line %d: bad covered range" lineno)
              (list_member "covered" v);
            ignore (require_member "result" v)
          | Some false | None -> (
            match Json.(Option.bind (member "quarantined" v) to_bool) with
            | Some true ->
              incr n_quarantined;
              ignore (int_member "shard" v);
              ignore (int_member "attempts" v);
              ignore (str_member "error" v)
            | Some false | None ->
              incr n_shards;
              ignore (int_member "shard" v);
              ignore (require_member "result" v))))
      rest);
  Printf.printf "check_json: %s ok (%d shard, %d merged, %d quarantine lines)\n" path
    !n_shards !n_merged !n_quarantined

let () =
  match Array.to_list Sys.argv with
  | [ _; "--trace"; path ] -> check_trace path
  | [ _; "--manifest"; path ] -> check_manifest path
  | [ _; path ] -> check_bench path
  | _ ->
    prerr_endline
      "usage: check_json BENCH.json | check_json --trace TRACE.jsonl | check_json \
       --manifest MANIFEST.jsonl";
    exit 2
