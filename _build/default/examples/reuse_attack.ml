(* The paper's motivating attack (§6.1, Listing 6), step by step.

   A victim function [func] calls two siblings [a] and [b]. Because both
   call sites share the stack-pointer value, -mbranch-protection signs
   their return addresses with the same modifier: an adversary who reads
   [a]'s signed return address off the stack can substitute it into [b]'s
   frame and bend the control flow — without ever guessing a PAC.
   PACStack binds each return address to the whole call path, so the same
   substitution has nothing to grab onto.

   Run with: dune exec examples/reuse_attack.exe *)

module Reuse = Pacstack_attacker.Reuse
module Adversary = Pacstack_attacker.Adversary
module Scheme = Pacstack_harden.Scheme

let describe scheme outcome =
  let verdict =
    match (outcome : Adversary.outcome) with
    | Adversary.Hijacked -> "the adversary took control"
    | Adversary.Bent -> "control flow was bent to a stale-but-valid target"
    | Adversary.Detected m -> "attack detected: " ^ m
    | Adversary.No_effect -> "attack had no effect"
  in
  Printf.printf "  %-24s %s\n" (Scheme.to_string scheme) verdict

let () =
  List.iter
    (fun strategy ->
      Printf.printf "%s:\n" (String.capitalize_ascii (Reuse.strategy_to_string strategy));
      List.iter (fun scheme -> describe scheme (Reuse.attack ~scheme strategy)) Scheme.all;
      print_newline ())
    Reuse.all_strategies;
  print_endline
    "Summary: only PACStack neutralises all three strategies; in particular the\n\
     sibling-reuse attack succeeds against -mbranch-protection (same-SP signed\n\
     return addresses are interchangeable) but not against the chained MACs of\n\
     the authenticated call stack."
