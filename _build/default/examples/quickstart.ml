(* Quickstart: write a mini-C program, compile it under PACStack, run it
   on the simulated machine, and look at what the instrumentation did.

   Run with: dune exec examples/quickstart.exe *)

module Ast = Pacstack_minic.Ast
module B = Pacstack_minic.Build
module Compile = Pacstack_minic.Compile
module Scheme = Pacstack_harden.Scheme
module Machine = Pacstack_machine.Machine
module Program = Pacstack_isa.Program

(* A program: greatest common divisor, computed recursively. *)
let gcd_program =
  Ast.program
    [
      Ast.fdef "gcd" ~params:[ "a"; "b" ] ~locals:[ Ast.Scalar "r" ]
        B.[
          if_ (v "b" == i 0) [ ret (v "a") ] [];
          set "r" (v "a" - (v "a" / v "b" * v "b"));
          Ast.Tail_call ("gcd", [ v "b"; v "r" ]);
        ];
      Ast.fdef "main" ~locals:[ Ast.Scalar "g" ]
        B.[
          set "g" (call "gcd" [ i 1071; i 462 ]);
          print (v "g");
          ret (i 0);
        ];
    ]

let run_under scheme =
  let compiled = Compile.compile ~scheme gcd_program in
  let machine = Machine.load compiled in
  match Machine.run machine with
  | Machine.Halted 0 ->
    Printf.printf "%-24s gcd(1071, 462) = %s in %d cycles (%d instructions)\n"
      (Scheme.to_string scheme)
      (String.concat "," (List.map Int64.to_string (Machine.output machine)))
      (Machine.cycles machine)
      (Machine.instructions_retired machine)
  | Machine.Halted c -> Printf.printf "%-24s exited with %d\n" (Scheme.to_string scheme) c
  | Machine.Faulted f ->
    Printf.printf "%-24s faulted: %s\n" (Scheme.to_string scheme)
      (Pacstack_machine.Trap.to_string f)
  | Machine.Out_of_fuel -> Printf.printf "%-24s ran out of fuel\n" (Scheme.to_string scheme)

let () =
  print_endline "Running gcd under every return-address protection scheme:";
  List.iter run_under Scheme.all;
  (* Show the code PACStack emits: this is Listing 3 of the paper wrapped
     around the function body. *)
  print_endline "\nPACStack-instrumented assembly of gcd:";
  let compiled = Compile.compile ~scheme:Scheme.pacstack gcd_program in
  (match Program.find_func compiled "gcd" with
  | Some f ->
    List.iter
      (function
        | Program.Lbl l -> Printf.printf "%s:\n" l
        | Program.Ins ins -> Printf.printf "  %s\n" (Pacstack_isa.Instr.to_string ins))
      f.Program.body
  | None -> ())
