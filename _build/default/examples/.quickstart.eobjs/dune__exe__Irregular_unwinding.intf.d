examples/irregular_unwinding.mli:
