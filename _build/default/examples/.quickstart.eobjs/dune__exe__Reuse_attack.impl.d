examples/reuse_attack.ml: List Pacstack_attacker Pacstack_harden Printf String
