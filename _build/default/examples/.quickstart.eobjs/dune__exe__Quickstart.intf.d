examples/quickstart.mli:
