examples/quickstart.ml: Int64 List Pacstack_harden Pacstack_isa Pacstack_machine Pacstack_minic Printf String
