examples/server_protection.mli:
