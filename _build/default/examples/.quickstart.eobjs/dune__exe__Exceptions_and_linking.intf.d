examples/exceptions_and_linking.mli:
