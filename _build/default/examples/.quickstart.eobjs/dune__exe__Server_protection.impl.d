examples/server_protection.ml: List Pacstack_harden Pacstack_workloads Printf
