examples/reuse_attack.mli:
