(* Irregular stack unwinding under PACStack (§4.4, §5.3, §9.1).

   1. setjmp/longjmp work unchanged: the PACStack wrappers bind the saved
      return address to the chain and the SP value (Listings 4–5).
   2. A forged jmp_buf (the adversary splices in a different chain value)
      is rejected when the target is revalidated.
   3. The ACS-validated unwinder walks the frame chain, authenticating
      every step — the libunwind extension the paper proposes.

   Run with: dune exec examples/irregular_unwinding.exe *)

module Scenarios = Pacstack_workloads.Scenarios
module Scheme = Pacstack_harden.Scheme
module Compile = Pacstack_minic.Compile
module Machine = Pacstack_machine.Machine
module Unwind = Pacstack_machine.Unwind
module Adversary = Pacstack_attacker.Adversary

let depth = 5

let run ~forge =
  let program = Compile.compile ~scheme:Scheme.pacstack (Scenarios.unwind_victim ~depth) in
  let machine = Machine.load program in
  Machine.attach_hook machine "deep" (fun m ->
      let jb = Option.get (Adversary.symbol m "jb") in
      (match Unwind.backtrace m with
      | Ok frames ->
        Printf.printf "  validated backtrace from the bottom of the recursion (%d frames):\n"
          (List.length frames);
        List.iter
          (fun f ->
            Printf.printf "    ret -> %s\n"
              (Option.value f.Unwind.func ~default:"<unknown>"))
          frames
      | Error e -> Printf.printf "  backtrace failed at %d: %s\n" e.Unwind.depth e.Unwind.reason);
      if forge then begin
        (* the adversary replaces the chain value saved in the jmp_buf *)
        let slot = Int64.add jb 72L in
        let stale = Option.get (Adversary.read m slot) in
        ignore (Adversary.write m slot (Int64.logxor stale 0x0badL))
      end);
  match Machine.run ~fuel:1_000_000 machine with
  | Machine.Halted 0 ->
    Printf.printf "  longjmp delivered: output = %s\n"
      (String.concat ", " (List.map Int64.to_string (Machine.output machine)))
  | Machine.Halted c -> Printf.printf "  exited %d\n" c
  | Machine.Faulted f ->
    Printf.printf "  faulted: %s  (the forged jmp_buf was rejected)\n"
      (Pacstack_machine.Trap.to_string f)
  | Machine.Out_of_fuel -> print_endline "  out of fuel"

let () =
  Printf.printf "Benign longjmp across %d PACStack frames:\n" depth;
  run ~forge:false;
  Printf.printf "\nSame longjmp after the adversary tampers with the jmp_buf chain value:\n";
  run ~forge:true
