(* Exceptions and separate compilation under PACStack.

   1. mini-C try/throw is desugared onto the setjmp/longjmp machinery, so
      under PACStack every non-local transfer goes through the Listing 4-5
      wrappers — C++-style exceptions (§9.1) for free.
   2. The application and its "library" are compiled as separate object
      files with different hardening, serialized to the binary object
      format, read back and linked (§9.2's deployment model).

   Run with: dune exec examples/exceptions_and_linking.exe *)

module Ast = Pacstack_minic.Ast
module B = Pacstack_minic.Build
module Compile = Pacstack_minic.Compile
module Scheme = Pacstack_harden.Scheme
module Objfile = Pacstack_isa.Objfile
module Link = Pacstack_isa.Link
module Machine = Pacstack_machine.Machine

(* the "library": parsing that throws on malformed input *)
let library =
  Ast.program ~main:"parse_digit"
    [
      Ast.fdef "parse_digit" ~params:[ "c" ]
        B.[
          if_ (v "c" < i 48) [ throw (i 400) ] [];
          if_ (v "c" > i 57) [ throw (i 400) ] [];
          ret (v "c" - i 48);
        ];
    ]

(* the application: catches the library's exceptions *)
let application =
  Ast.program
    [
      Ast.fdef "main" ~locals:[ Ast.Scalar "k"; Ast.Scalar "d" ]
        B.[
          for_ "k" ~from:(i 48) ~below:(i 61)
            [
              try_
                [ set "d" (call "parse_digit" [ v "k" ]); print (v "d") ]
                "err"
                [ print (v "err") ];
            ];
          ret (i 0);
        ];
    ]

let () =
  (* compile the app under full PACStack, the library without masking, and
     ship both through the on-disk object format *)
  let units =
    [
      Compile.compile_unit ~scheme:Scheme.pacstack application;
      Compile.compile_unit ~scheme:Scheme.pacstack_nomask library;
      Compile.runtime_unit ();
    ]
  in
  List.iteri
    (fun idx u ->
      Printf.printf "unit %d: defines [%s], needs [%s], %d bytes on disk\n" idx
        (String.concat ", " (Objfile.defined_symbols u))
        (String.concat ", " (Objfile.referenced_symbols u))
        (String.length (Objfile.write u)))
    units;
  let units = List.map (fun u -> Objfile.read (Objfile.write u)) units in
  let program = Link.link units in
  let machine = Machine.load program in
  match Machine.run machine with
  | Machine.Halted 0 ->
    Printf.printf "output: %s\n"
      (String.concat " " (List.map Int64.to_string (Machine.output machine)));
    print_endline
      "digits 0-9 parsed, the three out-of-range characters each threw 400 across\n\
       the instrumented library boundary and were caught in main."
  | Machine.Halted c -> Printf.printf "exit %d\n" c
  | Machine.Faulted f -> Printf.printf "fault: %s\n" (Pacstack_machine.Trap.to_string f)
  | Machine.Out_of_fuel -> print_endline "out of fuel"
