test/test_isa.ml: Alcotest Array Int64 List Pacstack_isa Pacstack_util QCheck2 QCheck_alcotest String
