test/test_harden.ml: Alcotest Fmt List Pacstack_harden Pacstack_isa String
