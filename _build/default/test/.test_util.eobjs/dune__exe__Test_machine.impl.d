test/test_machine.ml: Alcotest Array Int32 Int64 List Option Pacstack_harden Pacstack_isa Pacstack_machine Pacstack_minic Pacstack_pa Pacstack_util Pacstack_workloads Printf String
