test/test_minic.ml: Alcotest Int64 List Pacstack_harden Pacstack_isa Pacstack_machine Pacstack_minic Printf QCheck2 QCheck_alcotest String
