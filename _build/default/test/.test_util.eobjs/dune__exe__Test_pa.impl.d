test/test_pa.ml: Alcotest Int64 List Pacstack_pa Pacstack_qarma Pacstack_util Printf QCheck2 QCheck_alcotest
