test/test_util.ml: Alcotest Array Fun Int64 List Pacstack_util QCheck2 QCheck_alcotest
