test/test_attacker.mli:
