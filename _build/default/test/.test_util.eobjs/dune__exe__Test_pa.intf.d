test/test_pa.mli:
