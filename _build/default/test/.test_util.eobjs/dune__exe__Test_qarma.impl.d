test/test_qarma.ml: Alcotest Array Int64 List Pacstack_qarma Pacstack_util Printf QCheck2 QCheck_alcotest
