test/test_acs.ml: Alcotest Array Int64 List Pacstack_acs Pacstack_pa Pacstack_qarma Pacstack_util Printf QCheck2 QCheck_alcotest
