test/test_qarma.mli:
