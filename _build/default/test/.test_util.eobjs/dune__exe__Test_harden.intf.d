test/test_harden.mli:
