test/test_acs.mli:
