(* Tests for the pointer-authentication layer: pointer layout, PAC
   computation/verification and the architectural corner cases the paper's
   attacks depend on (error-bit propagation, the pac-on-invalid bit flip). *)

module Word64 = Pacstack_util.Word64
module Rng = Pacstack_util.Rng
module Config = Pacstack_pa.Config
module Pointer = Pacstack_pa.Pointer
module Pac = Pacstack_pa.Pac
module Keys = Pacstack_pa.Keys
module Prf = Pacstack_qarma.Prf

let check_w64 = Alcotest.testable Word64.pp Word64.equal
let qtest name count gen prop = QCheck_alcotest.to_alcotest (QCheck2.Test.make ~name ~count gen prop)

let cfg = Config.default
let prf = Prf.create_fast 0xfeedL

let canonical_gen =
  QCheck2.Gen.(map (fun a -> Int64.logand (Int64.of_int a) (Word64.mask 39)) int)

let modifier_gen =
  QCheck2.Gen.(
    map2 (fun a b -> Int64.logxor (Int64.of_int a) (Int64.shift_left (Int64.of_int b) 31)) int int)

(* --- Config ---------------------------------------------------------------- *)

let test_config_default () =
  Alcotest.(check int) "va_size 39" 39 cfg.Config.va_size;
  Alcotest.(check int) "16 PAC bits" 16 cfg.Config.pac_bits;
  Alcotest.(check int) "pac_lo" 39 (Config.pac_lo cfg);
  Alcotest.(check int) "error bit 63" 63 (Config.error_bit cfg)

let test_config_validation () =
  Alcotest.check_raises "too many PAC bits" (Invalid_argument "Pa.Config.make: pac_bits")
    (fun () -> ignore (Config.make ~va_size:39 ~pac_bits:17 ()));
  Alcotest.check_raises "zero PAC bits" (Invalid_argument "Pa.Config.make: pac_bits")
    (fun () -> ignore (Config.make ~pac_bits:0 ()));
  Alcotest.check_raises "bad va_size" (Invalid_argument "Pa.Config.make: va_size") (fun () ->
      ignore (Config.make ~va_size:60 ()))

let test_config_with_pac_bits () =
  let c = Config.with_pac_bits cfg 8 in
  Alcotest.(check int) "narrowed" 8 c.Config.pac_bits;
  Alcotest.(check int) "va_size kept" 39 c.Config.va_size

(* --- Pointer ---------------------------------------------------------------- *)

let test_pointer_canonical () =
  Alcotest.(check bool) "low pointer canonical" true (Pointer.is_canonical cfg 0x12345L);
  Alcotest.(check bool) "max canonical" true
    (Pointer.is_canonical cfg (Word64.mask 39));
  Alcotest.(check bool) "bit 39 set" false
    (Pointer.is_canonical cfg (Int64.shift_left 1L 39));
  Alcotest.(check bool) "error bit" false (Pointer.is_canonical cfg Int64.min_int)

let prop_pointer_pac_field =
  qtest "pac field embed/extract" 300
    QCheck2.Gen.(tup2 canonical_gen (int_range 0 0xffff))
    (fun (p, pac) ->
      let pac = Int64.of_int pac in
      let p' = Pointer.with_pac_field cfg p pac in
      Word64.equal (Pointer.pac_field cfg p') pac
      && Word64.equal (Pointer.address cfg p') p)

let test_pointer_error_flag () =
  let bad = Pointer.set_error cfg 0x1234L in
  Alcotest.(check bool) "has error" true (Pointer.has_error cfg bad);
  Alcotest.(check bool) "not canonical" false (Pointer.is_canonical cfg bad);
  Alcotest.check check_w64 "address preserved" 0x1234L (Pointer.address cfg bad)

let test_auth_split () =
  let p = Pointer.with_pac_field cfg 0x42L 0xbeefL in
  let pac, addr = Pointer.auth_split cfg p in
  Alcotest.check check_w64 "pac" 0xbeefL pac;
  Alcotest.check check_w64 "addr" 0x42L addr

(* --- Pac ---------------------------------------------------------------------- *)

let prop_sign_verify =
  qtest "pac/aut roundtrip" 300
    QCheck2.Gen.(tup2 canonical_gen modifier_gen)
    (fun (p, modifier) ->
      match Pac.auth cfg prf (Pac.add cfg prf p ~modifier) ~modifier with
      | Pac.Valid addr -> Word64.equal addr p
      | Pac.Invalid _ -> false)

let test_auth_wrong_modifier () =
  let signed = Pac.add cfg prf 0x1000L ~modifier:1L in
  match Pac.auth cfg prf signed ~modifier:2L with
  | Pac.Valid _ -> Alcotest.fail "wrong modifier accepted"
  | Pac.Invalid p ->
    Alcotest.(check bool) "error bit set" true (Pointer.has_error cfg p);
    Alcotest.check check_w64 "address stripped" 0x1000L (Pointer.address cfg p)

let test_auth_tampered_pac () =
  let signed = Pac.add cfg prf 0x1000L ~modifier:1L in
  let tampered = Word64.flip_bit signed (Config.pac_lo cfg) in
  match Pac.auth cfg prf tampered ~modifier:1L with
  | Pac.Valid _ -> Alcotest.fail "tampered PAC accepted"
  | Pac.Invalid _ -> ()

let test_auth_tampered_address () =
  let signed = Pac.add cfg prf 0x1000L ~modifier:1L in
  let tampered = Word64.flip_bit signed 3 in
  match Pac.auth cfg prf tampered ~modifier:1L with
  | Pac.Valid _ -> Alcotest.fail "tampered address accepted"
  | Pac.Invalid _ -> ()

let test_failed_pointer_never_revalidates () =
  (* even if the PAC field of an error-flagged pointer happens to match,
     the error bit keeps it invalid *)
  let signed = Pac.add cfg prf 0x2000L ~modifier:7L in
  let failed = Pointer.set_error cfg signed in
  let failed = Pointer.with_pac_field cfg failed (Pointer.pac_field cfg signed) in
  let failed = Word64.set_bit failed 63 true in
  match Pac.auth cfg prf failed ~modifier:7L with
  | Pac.Valid _ -> Alcotest.fail "error-flagged pointer revalidated"
  | Pac.Invalid _ -> ()

let test_strip () =
  let signed = Pac.add cfg prf 0x3000L ~modifier:9L in
  Alcotest.check check_w64 "xpac strips" 0x3000L (Pac.strip cfg signed)

let test_pac_on_invalid_flips_bit () =
  (* the §6.3.1 gadget precondition: signing a non-canonical pointer
     yields the PAC of the stripped address with bit p flipped *)
  let target = 0x4000L in
  let clean = Pac.add cfg prf target ~modifier:5L in
  let corrupted = Pointer.set_error cfg target in
  let dirty = Pac.add cfg prf corrupted ~modifier:5L in
  Alcotest.check check_w64 "exactly PAC bit 0 differs" (Int64.shift_left 1L (Config.pac_lo cfg))
    (Int64.logxor clean dirty)

let test_pacga () =
  let mac = Pac.generic cfg prf 0x123456789abcdefL ~modifier:0x42L in
  Alcotest.check check_w64 "low half zero" 0L (Word64.extract mac ~lo:0 ~width:32);
  Alcotest.(check bool) "high half nonzero" false
    (Word64.equal (Word64.extract mac ~lo:32 ~width:32) 0L);
  let mac2 = Pac.generic cfg prf 0x123456789abcdefL ~modifier:0x43L in
  Alcotest.(check bool) "modifier-sensitive" false (Word64.equal mac mac2)

let test_small_pac_collision_rate () =
  (* with b bits, random pointers verify with probability about 2^-b *)
  let small = Config.make ~pac_bits:8 () in
  let rng = Rng.create 5L in
  let hits = ref 0 in
  let n = 20_000 in
  for _ = 1 to n do
    let p = Pointer.with_pac_field small (Rng.bits rng 39) (Rng.bits rng 8) in
    match Pac.auth small prf p ~modifier:(Rng.next64 rng) with
    | Pac.Valid _ -> incr hits
    | Pac.Invalid _ -> ()
  done;
  let rate = float_of_int !hits /. float_of_int n in
  Alcotest.(check bool)
    (Printf.sprintf "rate %.4f near 1/256" rate)
    true
    (rate > 0.5 /. 256.0 && rate < 2.0 /. 256.0)

(* --- Keys ------------------------------------------------------------------------ *)

let test_keys_distinct () =
  let keys = Keys.generate ~fast:true (Rng.create 11L) in
  let macs =
    List.map (fun w -> Prf.mac64 (Keys.get keys w) ~data:1L ~modifier:2L) Keys.all
  in
  Alcotest.(check int) "five distinct keys" 5 (List.length (List.sort_uniq compare macs))

let test_keys_regenerate () =
  let rng = Rng.create 12L in
  let a = Keys.generate ~fast:true rng in
  let b = Keys.generate ~fast:true rng in
  Alcotest.(check bool) "regenerated keys differ" false (Keys.equal a b);
  Alcotest.(check bool) "reflexive" true (Keys.equal a a)

let test_key_names () =
  Alcotest.(check string) "IA name" "APIAKey" (Keys.which_to_string Keys.IA);
  Alcotest.(check int) "five keys" 5 (List.length Keys.all)

let () =
  Alcotest.run "pa"
    [
      ( "config",
        [
          Alcotest.test_case "defaults" `Quick test_config_default;
          Alcotest.test_case "validation" `Quick test_config_validation;
          Alcotest.test_case "with_pac_bits" `Quick test_config_with_pac_bits;
        ] );
      ( "pointer",
        [
          Alcotest.test_case "canonical" `Quick test_pointer_canonical;
          prop_pointer_pac_field;
          Alcotest.test_case "error flag" `Quick test_pointer_error_flag;
          Alcotest.test_case "auth_split" `Quick test_auth_split;
        ] );
      ( "pac",
        [
          prop_sign_verify;
          Alcotest.test_case "wrong modifier rejected" `Quick test_auth_wrong_modifier;
          Alcotest.test_case "tampered PAC rejected" `Quick test_auth_tampered_pac;
          Alcotest.test_case "tampered address rejected" `Quick test_auth_tampered_address;
          Alcotest.test_case "error bit sticks" `Quick test_failed_pointer_never_revalidates;
          Alcotest.test_case "xpac" `Quick test_strip;
          Alcotest.test_case "pac on invalid flips bit p" `Quick test_pac_on_invalid_flips_bit;
          Alcotest.test_case "pacga" `Quick test_pacga;
          Alcotest.test_case "collision rate at b=8" `Quick test_small_pac_collision_rate;
        ] );
      ( "keys",
        [
          Alcotest.test_case "distinct" `Quick test_keys_distinct;
          Alcotest.test_case "regeneration" `Quick test_keys_regenerate;
          Alcotest.test_case "names" `Quick test_key_names;
        ] );
    ]
