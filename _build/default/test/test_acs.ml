(* Tests for the ACS core: the chained-token data structure, the closed
   forms and the Monte-Carlo security games against their §4/§6
   expectations. *)

module Word64 = Pacstack_util.Word64
module Rng = Pacstack_util.Rng
module Config = Pacstack_pa.Config
module Prf = Pacstack_qarma.Prf
module Chain = Pacstack_acs.Chain
module Analysis = Pacstack_acs.Analysis
module Games = Pacstack_acs.Games

let qtest name count gen prop = QCheck_alcotest.to_alcotest (QCheck2.Test.make ~name ~count gen prop)

let cfg = Config.default
let fresh_chain ?masked ?seed () = Chain.create ?masked ?seed ~cfg (Prf.create_fast 0xc4a1L)

let ret_gen = QCheck2.Gen.(map (fun a -> Int64.logor 4L (Int64.logand (Int64.of_int a) (Word64.mask 39))) int)

(* --- Chain ------------------------------------------------------------------ *)

let test_chain_push_pop () =
  let c = fresh_chain () in
  Chain.push c ~ret:0x1000L;
  Chain.push c ~ret:0x2000L;
  Alcotest.(check int) "depth" 2 (Chain.depth c);
  (match Chain.pop c with
  | Ok ret -> Alcotest.(check int64) "inner ret" 0x2000L ret
  | Error _ -> Alcotest.fail "verification failed");
  (match Chain.pop c with
  | Ok ret -> Alcotest.(check int64) "outer ret" 0x1000L ret
  | Error _ -> Alcotest.fail "verification failed");
  Alcotest.(check int) "empty" 0 (Chain.depth c)

let prop_chain_lifo =
  qtest "deep chains verify in LIFO order" 50
    QCheck2.Gen.(list_size (int_range 1 40) ret_gen)
    (fun rets ->
      let c = fresh_chain () in
      List.iter (fun ret -> Chain.push c ~ret) rets;
      List.for_all
        (fun expected -> match Chain.pop c with Ok r -> Int64.equal r expected | Error _ -> false)
        (List.rev rets))

let prop_chain_lifo_unmasked =
  qtest "unmasked chains verify too" 50
    QCheck2.Gen.(list_size (int_range 1 40) ret_gen)
    (fun rets ->
      let c = fresh_chain ~masked:false () in
      List.iter (fun ret -> Chain.push c ~ret) rets;
      List.for_all
        (fun expected -> match Chain.pop c with Ok r -> Int64.equal r expected | Error _ -> false)
        (List.rev rets))

let test_chain_validation () =
  let c = fresh_chain () in
  Alcotest.check_raises "zero ret"
    (Invalid_argument "Chain.push: return address must be canonical and non-zero") (fun () ->
      Chain.push c ~ret:0L);
  Alcotest.check_raises "non-canonical ret"
    (Invalid_argument "Chain.push: return address must be canonical and non-zero") (fun () ->
      Chain.push c ~ret:Int64.min_int);
  Alcotest.check_raises "pop empty" (Invalid_argument "Chain.pop: empty chain") (fun () ->
      ignore (Chain.pop c))

let test_chain_tamper_detected () =
  let c = fresh_chain () in
  Chain.push c ~ret:0x1000L;
  Chain.push c ~ret:0x2000L;
  Chain.push c ~ret:0x3000L;
  (* corrupt the newest stored aret, consumed by the next pop *)
  Chain.tamper c 2 0xbad0bad0L;
  (match Chain.pop c with
  | Ok _ -> Alcotest.fail "tampered chain verified"
  | Error v -> Alcotest.(check int) "detected at top" 3 v.Chain.depth)

let test_chain_swap_detected () =
  (* swapping two stored arets (a reuse within the chain) is detected *)
  let c = fresh_chain () in
  List.iter (fun r -> Chain.push c ~ret:r) [ 0x1000L; 0x2000L; 0x3000L; 0x4000L ];
  let stored = Chain.stored c in
  Chain.tamper c 2 stored.(3);
  Chain.tamper c 3 stored.(2);
  (match Chain.pop c with
  | Ok _ -> Alcotest.fail "swap survived first pop"
  | Error _ -> ())

let test_chain_masking_hides_tokens () =
  (* same rets and seed: the masked chain's stored values must differ from
     the unmasked ones (the mask is in effect) *)
  let cm = fresh_chain ~masked:true () in
  let cu = fresh_chain ~masked:false () in
  List.iter
    (fun r ->
      Chain.push cm ~ret:r;
      Chain.push cu ~ret:r)
    [ 0x1000L; 0x2000L; 0x3000L ];
  let sm = Chain.stored cm and su = Chain.stored cu in
  (* index 0 is the seed (0), the rest must differ *)
  Alcotest.(check bool) "masked differs" false (Word64.equal sm.(1) su.(1));
  Alcotest.(check bool) "masked differs" false (Word64.equal sm.(2) su.(2))

let test_chain_seeding () =
  (* §4.3 re-seeding: different seeds yield different arets for equal rets *)
  let c1 = fresh_chain ~seed:1L () in
  let c2 = fresh_chain ~seed:2L () in
  Chain.push c1 ~ret:0x1000L;
  Chain.push c2 ~ret:0x1000L;
  Alcotest.(check bool) "seeds separate the chains" false
    (Word64.equal (Chain.current c1) (Chain.current c2))

let test_chain_clone () =
  let c = fresh_chain () in
  Chain.push c ~ret:0x1000L;
  let d = Chain.clone c in
  Chain.push c ~ret:0x2000L;
  Alcotest.(check int) "clone keeps its depth" 1 (Chain.depth d);
  match Chain.pop d with
  | Ok r -> Alcotest.(check int64) "clone pops its own" 0x1000L r
  | Error _ -> Alcotest.fail "clone verification failed"

let test_aret_of_matches_push () =
  let c = fresh_chain () in
  let prev = Chain.current c in
  let predicted = Chain.aret_of c ~ret:0x1000L ~modifier:prev in
  Chain.push c ~ret:0x1000L;
  Alcotest.(check int64) "oracle agrees with instrumentation" predicted (Chain.current c)

(* --- Analysis ------------------------------------------------------------------- *)

let feq = Alcotest.float 1e-12

let test_table1_theory () =
  Alcotest.check feq "on-graph unmasked" 1.0
    (Analysis.table1_success_probability ~masked:false Analysis.On_graph ~bits:16);
  Alcotest.check feq "on-graph masked" (1.0 /. 65536.0)
    (Analysis.table1_success_probability ~masked:true Analysis.On_graph ~bits:16);
  Alcotest.check feq "off-graph call-site" (1.0 /. 65536.0)
    (Analysis.table1_success_probability ~masked:false Analysis.Off_graph_to_call_site ~bits:16);
  Alcotest.check feq "off-graph arbitrary" (2.0 ** -32.0)
    (Analysis.table1_success_probability ~masked:true Analysis.Off_graph_arbitrary ~bits:16)

let test_guess_formulas () =
  Alcotest.check feq "divide and conquer" 257.0 (Analysis.guesses_divide_and_conquer ~bits:8);
  Alcotest.check feq "reseeded" 512.0 (Analysis.guesses_reseeded ~bits:8);
  Alcotest.check feq "independent" 65536.0 (Analysis.guesses_independent ~bits:8)

let test_collision_mean () =
  Alcotest.check (Alcotest.float 0.5) "321 tokens" 320.8 (Analysis.collision_harvest_mean ~bits:16)

(* --- Games ------------------------------------------------------------------------ *)

let in_range label lo hi v = Alcotest.(check bool) (Printf.sprintf "%s: %g" label v) true (v >= lo && v <= hi)

let test_birthday_game () =
  let rng = Rng.create 21L in
  let mean = Games.birthday_harvest ~bits:16 ~trials:150 rng in
  in_range "birthday mean" 290.0 350.0 mean

let test_on_graph_unmasked () =
  let rng = Rng.create 22L in
  let e = Games.violation_success ~masked:false ~kind:Analysis.On_graph ~bits:8 ~harvest:120 ~trials:400 rng in
  in_range "unmasked on-graph near certainty" 0.97 1.0 e.Games.rate

let test_on_graph_masked () =
  let rng = Rng.create 23L in
  let e = Games.violation_success ~masked:true ~kind:Analysis.On_graph ~bits:8 ~harvest:120 ~trials:20_000 rng in
  (* 2^-8 = 0.0039 *)
  in_range "masked on-graph" 0.002 0.006 e.Games.rate

let test_off_graph_callsite () =
  let rng = Rng.create 24L in
  let e =
    Games.violation_success ~masked:true ~kind:Analysis.Off_graph_to_call_site ~bits:8
      ~trials:60_000 rng
  in
  in_range "off-graph call-site" 0.0030 0.0048 e.Games.rate

let test_off_graph_arbitrary () =
  let rng = Rng.create 25L in
  let e =
    Games.violation_success ~masked:true ~kind:Analysis.Off_graph_arbitrary ~bits:4
      ~trials:120_000 rng
  in
  (* 2^-8 = 0.0039 *)
  in_range "off-graph arbitrary" 0.0028 0.0051 e.Games.rate

let test_estimate_ci () =
  let rng = Rng.create 26L in
  let e = Games.violation_success ~masked:true ~kind:Analysis.Off_graph_to_call_site ~bits:8 ~trials:30_000 rng in
  Alcotest.(check bool) "CI brackets the rate" true
    (e.Games.ci_low <= e.Games.rate && e.Games.rate <= e.Games.ci_high);
  Alcotest.(check bool) "CI brackets theory" true
    (e.Games.ci_low <= 1.0 /. 256.0 && 1.0 /. 256.0 <= e.Games.ci_high)

let test_mask_distinguisher () =
  let rng = Rng.create 27L in
  let adv = Games.mask_distinguisher_advantage ~bits:12 ~queries:200 ~trials:1500 rng in
  in_range "advantage negligible" 0.0 0.05 adv

let test_guessing_means () =
  let rng = Rng.create 28L in
  let dnc = Games.guessing_mean ~strategy:Games.Divide_and_conquer ~bits:8 ~trials:2500 rng in
  in_range "divide-and-conquer ~257" 240.0 275.0 dnc;
  let reseed = Games.guessing_mean ~strategy:Games.Reseeded ~bits:8 ~trials:2500 rng in
  in_range "reseeded ~512" 470.0 560.0 reseed;
  let indep = Games.guessing_mean ~strategy:Games.Independent ~bits:5 ~trials:500 rng in
  in_range "independent ~1024" 880.0 1180.0 indep;
  Alcotest.(check bool) "reseeding raises the cost" true (reseed > dnc *. 1.5)

let test_theorem1 () =
  let rng = Rng.create 30L in
  let th = Games.theorem1_check ~bits:10 ~queries:96 ~trials:1200 rng in
  Alcotest.(check bool) "masked collision advantage negligible" true
    (th.Games.collision_advantage < 0.02);
  Alcotest.(check bool) "Theorem 1 bound holds" true th.Games.holds

let test_game_argument_validation () =
  let rng = Rng.create 29L in
  Alcotest.check_raises "zero trials" (Invalid_argument "Games.birthday_harvest") (fun () ->
      ignore (Games.birthday_harvest ~trials:0 rng))

let () =
  Alcotest.run "acs"
    [
      ( "chain",
        [
          Alcotest.test_case "push/pop" `Quick test_chain_push_pop;
          prop_chain_lifo;
          prop_chain_lifo_unmasked;
          Alcotest.test_case "validation" `Quick test_chain_validation;
          Alcotest.test_case "tamper detected" `Quick test_chain_tamper_detected;
          Alcotest.test_case "swap detected" `Quick test_chain_swap_detected;
          Alcotest.test_case "masking in effect" `Quick test_chain_masking_hides_tokens;
          Alcotest.test_case "re-seeding" `Quick test_chain_seeding;
          Alcotest.test_case "clone" `Quick test_chain_clone;
          Alcotest.test_case "aret oracle" `Quick test_aret_of_matches_push;
        ] );
      ( "analysis",
        [
          Alcotest.test_case "table 1 closed forms" `Quick test_table1_theory;
          Alcotest.test_case "guess formulas" `Quick test_guess_formulas;
          Alcotest.test_case "collision mean" `Quick test_collision_mean;
        ] );
      ( "games",
        [
          Alcotest.test_case "birthday" `Quick test_birthday_game;
          Alcotest.test_case "on-graph unmasked" `Quick test_on_graph_unmasked;
          Alcotest.test_case "on-graph masked" `Quick test_on_graph_masked;
          Alcotest.test_case "off-graph call-site" `Quick test_off_graph_callsite;
          Alcotest.test_case "off-graph arbitrary" `Quick test_off_graph_arbitrary;
          Alcotest.test_case "confidence interval" `Quick test_estimate_ci;
          Alcotest.test_case "mask distinguisher" `Quick test_mask_distinguisher;
          Alcotest.test_case "guessing means" `Quick test_guessing_means;
          Alcotest.test_case "Theorem 1 bound" `Quick test_theorem1;
          Alcotest.test_case "argument validation" `Quick test_game_argument_validation;
        ] );
    ]
