(** The five ARMv8.3-A pointer-authentication keys.

    Keys live at EL1: the kernel generates a fresh set per process on
    [exec] and user space can use but never read them (§2.2). *)

type which = IA | IB | DA | DB | GA

val all : which list
val which_to_string : which -> string
val pp_which : Format.formatter -> which -> unit

type t

val generate : ?fast:bool -> ?rounds:int -> Pacstack_util.Rng.t -> t
(** Fresh random key set. [fast] (default false) selects the mixer-backed
    PRF instantiation; [rounds] the QARMA round count otherwise. *)

val get : t -> which -> Pacstack_qarma.Prf.t

val equal : t -> t -> bool
(** Key-material equality — used by tests to check the kernel really does
    regenerate keys on [exec]. *)
