(** Virtual-address layout governing where pointer authentication codes
    live inside a 64-bit pointer.

    With a 39-bit user virtual address space (the paper's default Linux
    configuration, §2.2) and no address tags, bits \[39, 54\] hold the PAC
    — 16 bits. Bit 55 selects the user/kernel half (always 0 here: we only
    model user pointers) and the remaining top bits are reserved. The PAC
    width is configurable downwards so that security experiments can use a
    small [b] where 2^-b events are observable. *)

type t = private {
  va_size : int;   (** significant address bits, e.g. 39 *)
  pac_bits : int;  (** PAC width [b]; at most [55 - va_size] *)
}

val make : ?va_size:int -> ?pac_bits:int -> unit -> t
(** Defaults: [va_size = 39], [pac_bits = 55 - va_size = 16]. Raises
    [Invalid_argument] if the PAC does not fit. *)

val default : t
(** [make ()]. *)

val with_pac_bits : t -> int -> t

val pac_lo : t -> int
(** Lowest bit index of the PAC field (= [va_size]). *)

val error_bit : t -> int
(** The well-known high-order bit an [aut] failure flips to make the
    pointer non-canonical: bit 63. *)

val pp : Format.formatter -> t -> unit
