lib/pa/keys.mli: Format Pacstack_qarma Pacstack_util
