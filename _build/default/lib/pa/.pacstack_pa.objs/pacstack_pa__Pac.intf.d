lib/pa/pac.mli: Config Pacstack_qarma Pacstack_util Pointer
