lib/pa/config.mli: Format
