lib/pa/pac.ml: Config Int64 Pacstack_qarma Pacstack_util Pointer
