lib/pa/keys.ml: Format List Pacstack_qarma
