lib/pa/pointer.ml: Config Pacstack_util
