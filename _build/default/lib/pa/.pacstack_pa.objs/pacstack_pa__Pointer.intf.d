lib/pa/pointer.mli: Config Format Pacstack_util
