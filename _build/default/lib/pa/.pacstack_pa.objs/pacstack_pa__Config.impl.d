lib/pa/config.ml: Format Option
