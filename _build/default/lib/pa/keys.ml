module Prf = Pacstack_qarma.Prf

type which = IA | IB | DA | DB | GA

let all = [ IA; IB; DA; DB; GA ]

let which_to_string = function
  | IA -> "APIAKey"
  | IB -> "APIBKey"
  | DA -> "APDAKey"
  | DB -> "APDBKey"
  | GA -> "APGAKey"

let pp_which fmt w = Format.pp_print_string fmt (which_to_string w)

type t = { ia : Prf.t; ib : Prf.t; da : Prf.t; db : Prf.t; ga : Prf.t }

let generate ?fast ?rounds rng =
  let fresh () = Prf.of_rng ?fast ?rounds rng in
  { ia = fresh (); ib = fresh (); da = fresh (); db = fresh (); ga = fresh () }

let get t = function
  | IA -> t.ia
  | IB -> t.ib
  | DA -> t.da
  | DB -> t.db
  | GA -> t.ga

let equal a b = List.for_all (fun w -> Prf.equal (get a w) (get b w)) all
