(** Pointer layout operations: canonical form, PAC field embedding and the
    architectural invalid-pointer encoding. *)

type t = Pacstack_util.Word64.t
(** A 64-bit pointer value, possibly carrying a PAC in its upper bits. *)

val address : Config.t -> t -> t
(** Low [va_size] bits: the virtual address with PAC and flags stripped.
    This is the architectural [xpac] operation. *)

val is_canonical : Config.t -> t -> bool
(** True iff all bits at and above [va_size] are zero — the only pointers
    the MMU will translate in our user-space model. *)

val pac_field : Config.t -> t -> t
(** The embedded PAC, right-aligned ([pac_bits] wide). *)

val with_pac_field : Config.t -> t -> t -> t
(** [with_pac_field cfg p v] embeds the low [pac_bits] bits of [v]. *)

val set_error : Config.t -> t -> t
(** [address] of the pointer with the well-known error bit set: the result
    of a failed [aut]. *)

val has_error : Config.t -> t -> bool

val auth_split : Config.t -> t -> t * t
(** [(pac_field, address)] — the paper's view of an authenticated return
    address [aret = auth || ret]. *)

val pp : Format.formatter -> t -> unit
