(** Concrete syntax for mini-C.

    A small C-flavoured language accepted by the CLI ([pacstack cc]) and
    the tests:

    {v
    global buf[64];                 // 64 bytes of zeroed data

    fn parse(c) {
      var d;
      if (c < 48) { throw 400; }
      d = c - 48;
      return d;
    }

    fn main() {
      var k; var r; array tmp[32];  // stack buffer, 32 bytes
      for (k = 48; k < 58; k = k + 1) {
        try { r = parse(k); print(r); }
        catch (e) { print(e); }
      }
      tmp[0] = r;                   // word-indexed array access
      store8(&tmp + 1, 7);          // byte store builtin
      return 0;
    }
    v}

    Notes:
    - [name\[e\]] reads/writes the 64-bit word at byte offset [8*e] of a
      local array or global;
    - [&name] takes the address of an array, global or function;
    - [*e] dereferences a 64-bit pointer; [load8]/[store8] access bytes;
    - builtins: [print(e)], [halt(e)], [hook("name")], [setjmp(e)],
      [longjmp(e, v)], [call(fptr, args...)] for indirect calls,
      [tail f(args)] for tail calls;
    - conditions are comparisons ([== != < <= > >=]) of expressions;
    - [var]/[array] declarations may appear anywhere in a block and are
      hoisted to the function scope. *)

exception Error of int * string
(** Line number (1-based) and message. *)

val program : string -> Ast.program
(** Parses a full program; the entry point is [main]. *)

val from_file : string -> Ast.program
