type severity = Error | Warning

type diagnostic = {
  severity : severity;
  where : string;
  message : string;
}

let pp_diagnostic fmt d =
  Format.fprintf fmt "%s: %s: %s"
    (match d.severity with Error -> "error" | Warning -> "warning")
    d.where d.message

let diag severity where fmt = Printf.ksprintf (fun message -> { severity; where; message }) fmt

(* ---- expression/statement walkers ------------------------------------------ *)

let rec expr_calls f (e : Ast.expr) =
  match e with
  | Ast.Int _ | Ast.Var _ | Ast.Addr_local _ | Ast.Addr_global _ | Ast.Addr_func _ -> ()
  | Ast.Load e | Ast.Load_byte e -> expr_calls f e
  | Ast.Binop (_, a, b) ->
    expr_calls f a;
    expr_calls f b
  | Ast.Call (name, args) ->
    f name (List.length args);
    List.iter (expr_calls f) args
  | Ast.Call_ptr (fe, args) ->
    expr_calls f fe;
    List.iter (expr_calls f) args

let rec stmt_exprs f (s : Ast.stmt) =
  match s with
  | Ast.Let (_, e) | Ast.Expr e | Ast.Print e | Ast.Return (Some e) | Ast.Halt e | Ast.Throw e
    -> f e
  | Ast.Store (a, b) | Ast.Store_byte (a, b) | Ast.Longjmp (a, b) ->
    f a;
    f b
  | Ast.Setjmp (_, e) -> f e
  | Ast.Tail_call (_, args) -> List.iter f args
  | Ast.If (Ast.Rel (_, a, b), t, fl) ->
    f a;
    f b;
    List.iter (stmt_exprs f) t;
    List.iter (stmt_exprs f) fl
  | Ast.While (Ast.Rel (_, a, b), body) ->
    f a;
    f b;
    List.iter (stmt_exprs f) body
  | Ast.Try (body, _, handler) ->
    List.iter (stmt_exprs f) body;
    List.iter (stmt_exprs f) handler
  | Ast.Block body -> List.iter (stmt_exprs f) body
  | Ast.Return None | Ast.Hook _ -> ()

let rec stmts f (s : Ast.stmt) =
  f s;
  match s with
  | Ast.If (_, t, fl) ->
    List.iter (stmts f) t;
    List.iter (stmts f) fl
  | Ast.While (_, body) | Ast.Block body -> List.iter (stmts f) body
  | Ast.Try (body, _, handler) ->
    List.iter (stmts f) body;
    List.iter (stmts f) handler
  | Ast.Let _ | Ast.Store _ | Ast.Store_byte _ | Ast.Expr _ | Ast.Return _ | Ast.Tail_call _
  | Ast.Setjmp _ | Ast.Longjmp _ | Ast.Hook _ | Ast.Print _ | Ast.Halt _ | Ast.Throw _ -> ()

let terminal = function
  | Ast.Return _ | Ast.Halt _ | Ast.Tail_call _ | Ast.Throw _ -> true
  | Ast.Let _ | Ast.Store _ | Ast.Store_byte _ | Ast.Expr _ | Ast.If _ | Ast.While _
  | Ast.Setjmp _ | Ast.Longjmp _ | Ast.Hook _ | Ast.Print _ | Ast.Block _ | Ast.Try _ -> false

let rec unreachable_in where acc = function
  | [] -> acc
  | s :: rest ->
    let acc =
      match s with
      | Ast.If (_, t, fl) -> unreachable_in where (unreachable_in where acc t) fl
      | Ast.While (_, b) | Ast.Block b -> unreachable_in where acc b
      | Ast.Try (b, _, h) -> unreachable_in where (unreachable_in where acc b) h
      | _ -> acc
    in
    if terminal s && rest <> [] then
      diag Warning where "unreachable statements after a terminating statement" :: acc
    else unreachable_in where acc rest

(* reads of scalars never written anywhere in the function *)
let uninitialised_reads (f : Ast.fdef) =
  let scalars = Hashtbl.create 8 in
  List.iter
    (function Ast.Scalar s -> Hashtbl.replace scalars s () | Ast.Array _ -> ())
    f.locals;
  let written = Hashtbl.create 8 in
  List.iter (fun p -> Hashtbl.replace written p ()) f.params;
  List.iter
    (stmts (function
      | Ast.Let (x, _) | Ast.Setjmp (x, _) -> Hashtbl.replace written x ()
      | Ast.Try (_, x, _) -> Hashtbl.replace written x ()
      | _ -> ()))
    f.body;
  let read = Hashtbl.create 8 in
  let rec expr_reads (e : Ast.expr) =
    match e with
    | Ast.Var x -> Hashtbl.replace read x ()
    | Ast.Int _ | Ast.Addr_local _ | Ast.Addr_global _ | Ast.Addr_func _ -> ()
    | Ast.Load e | Ast.Load_byte e -> expr_reads e
    | Ast.Binop (_, a, b) ->
      expr_reads a;
      expr_reads b
    | Ast.Call (_, args) -> List.iter expr_reads args
    | Ast.Call_ptr (fe, args) ->
      expr_reads fe;
      List.iter expr_reads args
  in
  List.iter (stmt_exprs expr_reads) f.body;
  Hashtbl.fold
    (fun x () acc ->
      if Hashtbl.mem scalars x && not (Hashtbl.mem written x) then
        diag Warning f.fname "scalar %s is read but never assigned" x :: acc
      else acc)
    read []

let program (p : Ast.program) =
  let acc = ref [] in
  let add d = acc := d :: !acc in
  (* duplicate functions *)
  let seen = Hashtbl.create 16 in
  let arities = Hashtbl.create 16 in
  List.iter
    (fun (f : Ast.fdef) ->
      if Hashtbl.mem seen f.fname then
        add (diag Error "<program>" "function %s defined twice" f.fname);
      Hashtbl.replace seen f.fname ();
      Hashtbl.replace arities f.fname (List.length f.params))
    p.fundefs;
  List.iter
    (fun (f : Ast.fdef) ->
      (* arity of direct and tail calls against known definitions *)
      let check_call name n =
        match Hashtbl.find_opt arities name with
        | Some arity when arity <> n ->
          add (diag Error f.fname "call to %s with %d arguments, expected %d" name n arity)
        | Some _ | None -> ()
      in
      List.iter (stmt_exprs (expr_calls check_call)) f.body;
      List.iter
        (stmts (function
          | Ast.Tail_call (name, args) -> check_call name (List.length args)
          | _ -> ()))
        f.body;
      (* handler shadowing a parameter *)
      List.iter
        (stmts (function
          | Ast.Try (_, x, _) when List.mem x f.params ->
            add (diag Error f.fname "catch variable %s shadows a parameter" x)
          | _ -> ()))
        f.body;
      List.iter add (unreachable_in f.fname [] f.body);
      List.iter add (uninitialised_reads f))
    p.fundefs;
  List.stable_sort
    (fun a b ->
      compare
        (match a.severity with Error -> 0 | Warning -> 1)
        (match b.severity with Error -> 0 | Warning -> 1))
    (List.rev !acc)

let errors p = List.filter (fun d -> d.severity = Error) (program p)

let check_exn p =
  match errors p with
  | [] -> p
  | d :: _ -> raise (Compile.Error (Format.asprintf "%a" pp_diagnostic d))
