module Instr = Pacstack_isa.Instr
module Reg = Pacstack_isa.Reg
module Program = Pacstack_isa.Program

let is_self_move = function
  | Instr.Mov (rd, Instr.Reg rs) -> Reg.equal rd rs
  | Instr.Add (rd, rn, Instr.Imm 0L) | Instr.Sub (rd, rn, Instr.Imm 0L) -> Reg.equal rd rn
  | _ -> false

(* str r, [slot]; ldr r, [same slot]  -->  drop the reload (plain SP/FP
   offset addressing only; pre/post indexing mutates the base). *)
let redundant_reload a b =
  match a, b with
  | ( Instr.Str (r1, { Instr.base = b1; offset = o1; index = Instr.Offset }),
      Instr.Ldr (r2, { Instr.base = b2; offset = o2; index = Instr.Offset }) ) ->
    Reg.equal r1 r2 && Reg.equal b1 b2 && o1 = o2
  | _ -> false

let branch_to_next a rest =
  match a with
  | Instr.B target -> (
    match rest with
    | Program.Lbl l :: _ -> l = target
    | _ -> false)
  | _ -> false

let rec optimize_items = function
  | [] -> []
  | Program.Ins i :: rest when is_self_move i -> optimize_items rest
  | Program.Ins i :: rest when branch_to_next i rest -> optimize_items rest
  | Program.Ins a :: Program.Ins b :: rest when redundant_reload a b ->
    (* keep the store, drop the reload, and re-examine the store against
       what now follows *)
    optimize_items (Program.Ins a :: rest)
  | item :: rest -> item :: optimize_items rest

(* iterate to a fixpoint: removals can expose new opportunities *)
let rec fixpoint items =
  let items' = optimize_items items in
  if List.length items' = List.length items then items else fixpoint items'

let function_pass (f : Program.func) = { f with body = fixpoint f.body }

let program_pass (p : Program.t) = Program.map_funcs function_pass p

let removed_count before after =
  Program.instruction_count before - Program.instruction_count after
