(** Static semantic checks for mini-C programs.

    The code generator catches unknown variables and malformed frames;
    this pass catches the mistakes that would otherwise produce silently
    wrong code:

    - calls to known functions with the wrong arity (arguments land in
      whatever X0–X5 happen to hold);
    - duplicate function definitions;
    - statements after a [Return]/[Halt]/[Tail_call] in the same block
      (unreachable);
    - reads of scalar locals never assigned (uninitialised: they read as
      whatever the stack slot holds);
    - [Throw]/[Try] of a program whose handler variable shadows a
      parameter.

    {!Compile} does not run this automatically (some tests exercise the
    unchecked paths); call {!program} from front ends. *)

type severity = Error | Warning

type diagnostic = {
  severity : severity;
  where : string;  (** function name, or "<program>" *)
  message : string;
}

val pp_diagnostic : Format.formatter -> diagnostic -> unit

val program : Ast.program -> diagnostic list
(** All diagnostics, errors first. *)

val errors : Ast.program -> diagnostic list

val check_exn : Ast.program -> Ast.program
(** Returns the program unchanged if {!errors} is empty; raises
    [Compile.Error] with the first error otherwise. *)
