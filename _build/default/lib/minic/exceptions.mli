(** Desugaring of [Try]/[Throw] onto the setjmp/longjmp machinery.

    Each [Try] gets a [jmp_buf] in its function's frame, chained through
    the global [__exn_top] so the innermost active handler — possibly many
    frames up the call stack — catches a [Throw]. Under the PACStack
    schemes the resulting non-local transfers therefore go through the
    Listing 4–5 wrappers, making this the C++-exception analogue the paper
    discusses in §9.1.

    An uncaught throw calls the synthesized [__uncaught_throw], which
    terminates the program with {!uncaught_exit_code}. A thrown value of 0
    arrives in the handler as 1 ([longjmp] semantics). *)

val uncaught_exit_code : int

val exn_top_symbol : string
(** Global holding the address of the innermost live handler's buffer. *)

val desugar : Ast.program -> Ast.program
(** Rewrites every [Try]/[Throw]; programs without them are returned
    unchanged. Idempotent. *)
