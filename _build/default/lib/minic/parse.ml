exception Error of int * string

let fail line fmt = Printf.ksprintf (fun s -> raise (Error (line, s))) fmt

(* --- lexer ---------------------------------------------------------------- *)

type token =
  | INT of int64
  | IDENT of string
  | STRING of string
  | PUNCT of string  (* ( ) { } [ ] ; , = == != < <= > >= + - * / & | ^ << >> *)
  | EOF

type lexed = { tok : token; line : int }

let keywords =
  [ "fn"; "global"; "var"; "array"; "if"; "else"; "while"; "for"; "return"; "print"; "halt";
    "hook"; "try"; "catch"; "throw"; "tail"; "setjmp"; "longjmp"; "call"; "load8"; "store8" ]

let is_keyword s = List.mem s keywords

let lex src =
  let n = String.length src in
  let toks = ref [] in
  let line = ref 1 in
  let i = ref 0 in
  let push tok = toks := { tok; line = !line } :: !toks in
  let peek k = if !i + k < n then Some src.[!i + k] else None in
  let is_ident_char c =
    (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || (c >= '0' && c <= '9') || c = '_'
  in
  while !i < n do
    let c = src.[!i] in
    if c = '\n' then begin
      incr line;
      incr i
    end
    else if c = ' ' || c = '\t' || c = '\r' then incr i
    else if c = '/' && peek 1 = Some '/' then begin
      while !i < n && src.[!i] <> '\n' do
        incr i
      done
    end
    else if c >= '0' && c <= '9' then begin
      let start = !i in
      if c = '0' && (peek 1 = Some 'x' || peek 1 = Some 'X') then begin
        i := !i + 2;
        while !i < n && is_ident_char src.[!i] do
          incr i
        done
      end
      else
        while !i < n && is_ident_char src.[!i] do
          incr i
        done;
      let lit = String.sub src start (!i - start) in
      match Int64.of_string_opt lit with
      | Some v -> push (INT v)
      | None -> fail !line "bad integer literal %S" lit
    end
    else if is_ident_char c then begin
      let start = !i in
      while !i < n && is_ident_char src.[!i] do
        incr i
      done;
      push (IDENT (String.sub src start (!i - start)))
    end
    else if c = '"' then begin
      incr i;
      let start = !i in
      while !i < n && src.[!i] <> '"' do
        if src.[!i] = '\n' then fail !line "unterminated string";
        incr i
      done;
      if !i >= n then fail !line "unterminated string";
      push (STRING (String.sub src start (!i - start)));
      incr i
    end
    else begin
      let two =
        match c, peek 1 with
        | '=', Some '=' -> Some "=="
        | '!', Some '=' -> Some "!="
        | '<', Some '=' -> Some "<="
        | '>', Some '=' -> Some ">="
        | '<', Some '<' -> Some "<<"
        | '>', Some '>' -> Some ">>"
        | _ -> None
      in
      match two with
      | Some p ->
        push (PUNCT p);
        i := !i + 2
      | None ->
        (match c with
        | '(' | ')' | '{' | '}' | '[' | ']' | ';' | ',' | '=' | '<' | '>' | '+' | '-' | '*'
        | '/' | '&' | '|' | '^' ->
          push (PUNCT (String.make 1 c))
        | _ -> fail !line "unexpected character %C" c);
        incr i
    end
  done;
  push EOF;
  List.rev !toks

(* --- parser state ----------------------------------------------------------- *)

type state = {
  mutable toks : lexed list;
  globals : (string, unit) Hashtbl.t;
  functions : (string, unit) Hashtbl.t;
  (* per-function *)
  mutable arrays : (string, unit) Hashtbl.t;
  mutable decls : Ast.local list;  (* reversed *)
  mutable declared : (string, unit) Hashtbl.t;
}

let here st = match st.toks with { line; _ } :: _ -> line | [] -> 0

let peek st = match st.toks with { tok; _ } :: _ -> tok | [] -> EOF

let advance st = match st.toks with _ :: rest -> st.toks <- rest | [] -> ()

let token_to_string = function
  | INT v -> Int64.to_string v
  | IDENT s -> s
  | STRING s -> Printf.sprintf "%S" s
  | PUNCT p -> p
  | EOF -> "<eof>"

let expect st p =
  match peek st with
  | PUNCT q when q = p -> advance st
  | t -> fail (here st) "expected %S, got %s" p (token_to_string t)

let expect_ident st =
  match peek st with
  | IDENT s when not (is_keyword s) ->
    advance st;
    s
  | t -> fail (here st) "expected identifier, got %s" (token_to_string t)

let accept st p =
  match peek st with
  | PUNCT q when q = p ->
    advance st;
    true
  | _ -> false

let accept_kw st kw =
  match peek st with
  | IDENT s when s = kw ->
    advance st;
    true
  | _ -> false

(* address of a named object, resolved against the current scopes *)
let address_of st line name =
  if Hashtbl.mem st.arrays name then Ast.Addr_local name
  else if Hashtbl.mem st.globals name then Ast.Addr_global name
  else if Hashtbl.mem st.functions name then Ast.Addr_func name
  else fail line "unknown array, global or function %s" name

let word_slot st line name idx =
  Ast.Binop (Ast.Add, address_of st line name, Ast.Binop (Ast.Shl, idx, Ast.Int 3L))

(* --- expressions -------------------------------------------------------------- *)

let rec expr st = bitor st

and binop_chain st sub table =
  let lhs = ref (sub st) in
  let rec go () =
    match peek st with
    | PUNCT p when List.mem_assoc p table ->
      advance st;
      let rhs = sub st in
      lhs := Ast.Binop (List.assoc p table, !lhs, rhs);
      go ()
    | _ -> ()
  in
  go ();
  !lhs

and bitor st = binop_chain st bitxor [ ("|", Ast.Or) ]
and bitxor st = binop_chain st bitand [ ("^", Ast.Xor) ]
and bitand st = binop_chain st shift [ ("&", Ast.And) ]
and shift st = binop_chain st additive [ ("<<", Ast.Shl); (">>", Ast.Shr) ]
and additive st = binop_chain st mult [ ("+", Ast.Add); ("-", Ast.Sub) ]
and mult st = binop_chain st unary [ ("*", Ast.Mul); ("/", Ast.Div) ]

and unary st =
  match peek st with
  | PUNCT "*" ->
    advance st;
    Ast.Load (unary st)
  | PUNCT "&" ->
    advance st;
    let line = here st in
    let name = expect_ident st in
    address_of st line name
  | PUNCT "-" ->
    advance st;
    Ast.Binop (Ast.Sub, Ast.Int 0L, unary st)
  | _ -> primary st

and args st =
  expect st "(";
  if accept st ")" then []
  else
    let rec go acc =
      let a = expr st in
      if accept st "," then go (a :: acc)
      else begin
        expect st ")";
        List.rev (a :: acc)
      end
    in
    go []

and primary st =
  let line = here st in
  match peek st with
  | INT v ->
    advance st;
    Ast.Int v
  | PUNCT "(" ->
    advance st;
    let e = expr st in
    expect st ")";
    e
  | IDENT "load8" ->
    advance st;
    (match args st with
    | [ a ] -> Ast.Load_byte a
    | _ -> fail line "load8 expects one argument")
  | IDENT "setjmp" ->
    advance st;
    fail line "setjmp may only appear as `x = setjmp(addr);`"
  | IDENT "call" ->
    advance st;
    (match args st with
    | f :: rest -> Ast.Call_ptr (f, rest)
    | [] -> fail line "call expects a function pointer")
  | IDENT name when not (is_keyword name) -> (
    advance st;
    match peek st with
    | PUNCT "(" -> Ast.Call (name, args st)
    | PUNCT "[" ->
      advance st;
      let idx = expr st in
      expect st "]";
      Ast.Load (word_slot st line name idx)
    | _ -> Ast.Var name)
  | t -> fail line "expected expression, got %s" (token_to_string t)

let cond st =
  let lhs = expr st in
  let op =
    match peek st with
    | PUNCT "==" -> Ast.Eq
    | PUNCT "!=" -> Ast.Ne
    | PUNCT "<" -> Ast.Lt
    | PUNCT "<=" -> Ast.Le
    | PUNCT ">" -> Ast.Gt
    | PUNCT ">=" -> Ast.Ge
    | t -> fail (here st) "expected comparison operator, got %s" (token_to_string t)
  in
  advance st;
  let rhs = expr st in
  Ast.Rel (op, lhs, rhs)

(* --- statements ------------------------------------------------------------------ *)

let declare st line local =
  let name = match local with Ast.Scalar s | Ast.Array (s, _) -> s in
  if Hashtbl.mem st.declared name then fail line "duplicate declaration of %s" name;
  Hashtbl.replace st.declared name ();
  (match local with Ast.Array _ -> Hashtbl.replace st.arrays name () | Ast.Scalar _ -> ());
  st.decls <- local :: st.decls

(* assignment or expression statement, without the trailing ';' *)
let rec simple_stmt st =
  let line = here st in
  match peek st with
  | PUNCT "*" ->
    advance st;
    let addr = unary st in
    expect st "=";
    let v = expr st in
    Ast.Store (addr, v)
  | IDENT "store8" ->
    advance st;
    (match args st with
    | [ a; v ] -> Ast.Store_byte (a, v)
    | _ -> fail line "store8 expects (address, value)")
  | IDENT name when not (is_keyword name) -> (
    advance st;
    match peek st with
    | PUNCT "=" ->
      advance st;
      if accept_kw st "setjmp" then (
        match args st with
        | [ a ] -> Ast.Setjmp (name, a)
        | _ -> fail line "setjmp expects one address")
      else Ast.Let (name, expr st)
    | PUNCT "[" ->
      advance st;
      let idx = expr st in
      expect st "]";
      expect st "=";
      let v = expr st in
      Ast.Store (word_slot st line name idx, v)
    | PUNCT "(" -> Ast.Expr (Ast.Call (name, args st))
    | t -> fail line "expected statement, got %s after %s" (token_to_string t) name)
  | _ -> Ast.Expr (expr st)

and stmt st =
  let line = here st in
  if accept_kw st "var" then begin
    let name = expect_ident st in
    expect st ";";
    declare st line (Ast.Scalar name);
    Ast.Block []
  end
  else if accept_kw st "array" then begin
    let name = expect_ident st in
    expect st "[";
    let size =
      match peek st with
      | INT v ->
        advance st;
        Int64.to_int v
      | t -> fail line "array size must be a literal, got %s" (token_to_string t)
    in
    expect st "]";
    expect st ";";
    declare st line (Ast.Array (name, size));
    Ast.Block []
  end
  else if accept_kw st "if" then begin
    expect st "(";
    let c = cond st in
    expect st ")";
    let then_ = block st in
    let else_ = if accept_kw st "else" then block st else [] in
    Ast.If (c, then_, else_)
  end
  else if accept_kw st "while" then begin
    expect st "(";
    let c = cond st in
    expect st ")";
    Ast.While (c, block st)
  end
  else if accept_kw st "for" then begin
    expect st "(";
    let init = if peek st = PUNCT ";" then Ast.Block [] else simple_stmt st in
    expect st ";";
    let c = cond st in
    expect st ";";
    let step = if peek st = PUNCT ")" then Ast.Block [] else simple_stmt st in
    expect st ")";
    let body = block st in
    Ast.Block [ init; Ast.While (c, body @ [ step ]) ]
  end
  else if accept_kw st "return" then
    if accept st ";" then Ast.Return None
    else begin
      let e = expr st in
      expect st ";";
      Ast.Return (Some e)
    end
  else if accept_kw st "print" then begin
    let a = args st in
    expect st ";";
    match a with [ e ] -> Ast.Print e | _ -> fail line "print expects one argument"
  end
  else if accept_kw st "halt" then begin
    let a = args st in
    expect st ";";
    match a with [ e ] -> Ast.Halt e | _ -> fail line "halt expects one argument"
  end
  else if accept_kw st "hook" then begin
    expect st "(";
    let name =
      match peek st with
      | STRING s ->
        advance st;
        s
      | t -> fail line "hook expects a string, got %s" (token_to_string t)
    in
    expect st ")";
    expect st ";";
    Ast.Hook name
  end
  else if accept_kw st "throw" then begin
    let e = expr st in
    expect st ";";
    Ast.Throw e
  end
  else if accept_kw st "try" then begin
    let body = block st in
    if not (accept_kw st "catch") then fail (here st) "expected catch";
    expect st "(";
    let x = expect_ident st in
    expect st ")";
    declare st line (Ast.Scalar x);
    let handler = block st in
    Ast.Try (body, x, handler)
  end
  else if accept_kw st "tail" then begin
    let f = expect_ident st in
    let a = args st in
    expect st ";";
    Ast.Tail_call (f, a)
  end
  else if accept_kw st "longjmp" then begin
    let a = args st in
    expect st ";";
    match a with
    | [ buf; v ] -> Ast.Longjmp (buf, v)
    | _ -> fail line "longjmp expects (buffer, value)"
  end
  else begin
    let s = simple_stmt st in
    expect st ";";
    s
  end

and block st =
  expect st "{";
  let rec go acc =
    if accept st "}" then List.rev acc
    else if peek st = EOF then fail (here st) "unexpected end of input in block"
    else go (stmt st :: acc)
  in
  go []

(* --- top level ----------------------------------------------------------------- *)

(* pre-scan for function and global names so forward references resolve *)
let prescan st =
  let rec go = function
    | { tok = IDENT "fn"; _ } :: { tok = IDENT name; _ } :: rest ->
      Hashtbl.replace st.functions name ();
      go rest
    | { tok = IDENT "global"; _ } :: { tok = IDENT name; _ } :: rest ->
      Hashtbl.replace st.globals name ();
      go rest
    | _ :: rest -> go rest
    | [] -> ()
  in
  go st.toks

let fdef st =
  let name = expect_ident st in
  expect st "(";
  let params =
    if accept st ")" then []
    else
      let rec go acc =
        let p = expect_ident st in
        if accept st "," then go (p :: acc)
        else begin
          expect st ")";
          List.rev (p :: acc)
        end
      in
      go []
  in
  st.arrays <- Hashtbl.create 8;
  st.decls <- [];
  st.declared <- Hashtbl.create 8;
  List.iter (fun p -> Hashtbl.replace st.declared p ()) params;
  let body = block st in
  Ast.fdef name ~params ~locals:(List.rev st.decls) body

let program src =
  let st =
    {
      toks = lex src;
      globals = Hashtbl.create 8;
      functions = Hashtbl.create 8;
      arrays = Hashtbl.create 8;
      decls = [];
      declared = Hashtbl.create 8;
    }
  in
  prescan st;
  let globals = ref [] in
  let fundefs = ref [] in
  let rec go () =
    match peek st with
    | EOF -> ()
    | IDENT "fn" ->
      advance st;
      fundefs := fdef st :: !fundefs;
      go ()
    | IDENT "global" ->
      advance st;
      let line = here st in
      let name = expect_ident st in
      expect st "[";
      let size =
        match peek st with
        | INT v ->
          advance st;
          Int64.to_int v
        | t -> fail line "global size must be a literal, got %s" (token_to_string t)
      in
      expect st "]";
      expect st ";";
      globals := (name, size) :: !globals;
      go ()
    | t -> fail (here st) "expected fn or global, got %s" (token_to_string t)
  in
  go ();
  if not (Hashtbl.mem st.functions "main") then fail 0 "no main function";
  Ast.program ~globals:(List.rev !globals) (List.rev !fundefs)

let from_file path =
  program (In_channel.with_open_text path In_channel.input_all)
