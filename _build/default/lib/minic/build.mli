(** Combinators for writing mini-C programs concisely. Workloads, examples
    and tests construct their victim/benchmark programs with these. *)

open Ast

val i : int -> expr
val i64 : int64 -> expr
val v : string -> expr
(** Variable reference. *)

val addr : string -> expr
(** Address of a local array. *)

val glob : string -> expr
(** Address of a global data object. *)

val fn : string -> expr
(** Function pointer. *)

val load : expr -> expr
val load8 : expr -> expr
val idx : string -> expr -> expr
(** [idx arr e] — address of byte [e] of local array [arr]. *)

val ( + ) : expr -> expr -> expr
val ( - ) : expr -> expr -> expr
val ( * ) : expr -> expr -> expr
val ( / ) : expr -> expr -> expr
val ( land ) : expr -> expr -> expr
val ( lor ) : expr -> expr -> expr
val ( lxor ) : expr -> expr -> expr
val ( lsl ) : expr -> expr -> expr
val ( lsr ) : expr -> expr -> expr

val call : string -> expr list -> expr

val ( == ) : expr -> expr -> cond
val ( != ) : expr -> expr -> cond
val ( < ) : expr -> expr -> cond
val ( <= ) : expr -> expr -> cond
val ( > ) : expr -> expr -> cond
val ( >= ) : expr -> expr -> cond

val set : string -> expr -> stmt
val store : expr -> expr -> stmt
val store8 : expr -> expr -> stmt
val expr : expr -> stmt
val if_ : cond -> stmt list -> stmt list -> stmt
val while_ : cond -> stmt list -> stmt
val for_ : string -> from:expr -> below:expr -> stmt list -> stmt
(** Counting loop over a scalar local. *)

val ret : expr -> stmt
val ret0 : stmt
val print : expr -> stmt
val hook : string -> stmt
val halt : expr -> stmt
val try_ : stmt list -> string -> stmt list -> stmt
(** [try_ body x handler]. *)

val throw : expr -> stmt
