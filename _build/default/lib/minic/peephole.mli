(** A small peephole optimizer over compiled functions.

    Removes the local redundancies our straightforward code generator
    produces, without touching anything a hardening pass emitted:

    - self moves ([mov xN, xN]),
    - additions/subtractions of zero onto the same register,
    - branches to the immediately following label,
    - reloads of a register just stored to the same stack slot.

    Safe by construction in this machine model (no memory-mapped I/O, no
    visible flag effects from the removed instructions). The optimizer is
    opt-in ([Compile.compile ~optimize:true]) so that the default output
    matches the paper's listings instruction for instruction. *)

val function_pass : Pacstack_isa.Program.func -> Pacstack_isa.Program.func

val program_pass : Pacstack_isa.Program.t -> Pacstack_isa.Program.t

val removed_count : Pacstack_isa.Program.t -> Pacstack_isa.Program.t -> int
(** Instructions eliminated between an input and output program. *)
