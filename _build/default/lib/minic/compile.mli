(** The mini-C to ISA compiler.

    Plays the role of the paper's LLVM backend: lowers each function with
    the AAPCS64-flavoured convention (arguments in X0–X5, result in X0,
    expression temporaries in X9–X14 spilled around calls) and wraps the
    body in the prologue/epilogue of the selected hardening scheme
    ({!Pacstack_harden.Frame}). The {!Pacstack_harden.Runtime} support
    functions are linked into every output. *)

exception Error of string

val compile :
  scheme:Pacstack_harden.Scheme.t ->
  ?overrides:(string * Pacstack_harden.Scheme.t) list ->
  ?optimize:bool ->
  Ast.program -> Pacstack_isa.Program.t
(** [overrides] assigns individual functions a different scheme — the §9.2
    mixed instrumented/uninstrumented deployment scenario. Raises {!Error}
    on malformed programs (unknown variables, too many arguments, too-deep
    expressions). [optimize] (default false) runs the {!Peephole} pass. *)

val compile_unit :
  scheme:Pacstack_harden.Scheme.t ->
  ?overrides:(string * Pacstack_harden.Scheme.t) list ->
  ?optimize:bool ->
  Ast.program -> Pacstack_isa.Objfile.t
(** Separate compilation: lowers only this translation unit, leaving
    references to the runtime (or other units) unresolved. Link with
    {!runtime_unit} and any libraries via {!Pacstack_isa.Link}. *)

val runtime_unit : unit -> Pacstack_isa.Objfile.t
(** The support runtime as an object file — so application and "libc" can
    be hardened independently, the §9.2 deployment scenario. *)

val function_traits : Ast.fdef -> Pacstack_harden.Frame.traits
(** The traits the compiler derives for a function (exposed for tests and
    for static overhead analysis). *)
