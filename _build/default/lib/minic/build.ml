open Ast

let i n = Int (Int64.of_int n)
let i64 v = Int v
let v s = Var s
let addr s = Addr_local s
let glob s = Addr_global s
let fn s = Addr_func s
let load e = Load e
let load8 e = Load_byte e
let idx arr e = Binop (Add, Addr_local arr, e)

let ( + ) a b = Binop (Add, a, b)
let ( - ) a b = Binop (Sub, a, b)
let ( * ) a b = Binop (Mul, a, b)
let ( / ) a b = Binop (Div, a, b)
let ( land ) a b = Binop (And, a, b)
let ( lor ) a b = Binop (Or, a, b)
let ( lxor ) a b = Binop (Xor, a, b)
let ( lsl ) a b = Binop (Shl, a, b)
let ( lsr ) a b = Binop (Shr, a, b)

let call f args = Call (f, args)

let ( == ) a b = Rel (Eq, a, b)
let ( != ) a b = Rel (Ne, a, b)
let ( < ) a b = Rel (Lt, a, b)
let ( <= ) a b = Rel (Le, a, b)
let ( > ) a b = Rel (Gt, a, b)
let ( >= ) a b = Rel (Ge, a, b)

let set x e = Let (x, e)
let store a e = Store (a, e)
let store8 a e = Store_byte (a, e)
let expr e = Expr e
let if_ c t f = If (c, t, f)
let while_ c b = While (c, b)

let for_ x ~from ~below body =
  Block
    [
      Let (x, from);
      While (Rel (Lt, Var x, below), body @ [ Let (x, Binop (Add, Var x, Int 1L)) ]);
    ]

let ret e = Return (Some e)

let ret0 = Return None
let print e = Print e
let hook s = Hook s
let halt e = Halt e
let try_ body x handler = Try (body, x, handler)
let throw e = Throw e
