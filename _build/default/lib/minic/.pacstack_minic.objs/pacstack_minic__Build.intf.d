lib/minic/build.mli: Ast
