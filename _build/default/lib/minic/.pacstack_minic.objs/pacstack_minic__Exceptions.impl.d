lib/minic/exceptions.ml: Ast Hashtbl Int64 List Printf
