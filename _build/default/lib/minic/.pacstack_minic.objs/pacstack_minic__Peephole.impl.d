lib/minic/peephole.ml: List Pacstack_isa
