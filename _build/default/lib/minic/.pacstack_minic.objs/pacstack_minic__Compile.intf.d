lib/minic/compile.mli: Ast Pacstack_harden Pacstack_isa
