lib/minic/exceptions.mli: Ast
