lib/minic/parse.mli: Ast
