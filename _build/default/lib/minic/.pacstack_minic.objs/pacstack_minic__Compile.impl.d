lib/minic/compile.ml: Ast Exceptions Hashtbl Int64 List Pacstack_harden Pacstack_isa Peephole Printf
