lib/minic/parse.ml: Ast Hashtbl In_channel Int64 List Printf String
