lib/minic/peephole.mli: Pacstack_isa
