lib/minic/build.ml: Ast Int64
