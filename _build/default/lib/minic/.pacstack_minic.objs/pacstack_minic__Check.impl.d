lib/minic/check.ml: Ast Compile Format Hashtbl List Printf
