lib/minic/ast.mli:
