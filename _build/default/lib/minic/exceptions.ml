let uncaught_exit_code = 125
let exn_top_symbol = "__exn_top"
let throw_symbol = "__throw"

(* jmp_buf (128 bytes) plus one word chaining to the previous handler *)
let try_buf_bytes = 136
let prev_slot = 128

let rec stmt_has_exn = function
  | Ast.Try _ | Ast.Throw _ -> true
  | Ast.If (_, t, f) -> body_has_exn t || body_has_exn f
  | Ast.While (_, b) | Ast.Block b -> body_has_exn b
  | Ast.Let _ | Ast.Store _ | Ast.Store_byte _ | Ast.Expr _ | Ast.Return _ | Ast.Tail_call _
  | Ast.Setjmp _ | Ast.Longjmp _ | Ast.Hook _ | Ast.Print _ | Ast.Halt _ -> false

and body_has_exn body = List.exists stmt_has_exn body

let program_has_exn (p : Ast.program) = List.exists (fun f -> body_has_exn f.Ast.body) p.fundefs

(* Rewrite one function: number its Try sites, collect synthesized locals. *)
let desugar_fdef (f : Ast.fdef) =
  let counter = ref 0 in
  let extra_locals = ref [] in
  let declared = Hashtbl.create 8 in
  List.iter (fun p -> Hashtbl.replace declared p ()) f.params;
  List.iter
    (function Ast.Scalar s | Ast.Array (s, _) -> Hashtbl.replace declared s ())
    f.locals;
  let declare l =
    let name = match l with Ast.Scalar s | Ast.Array (s, _) -> s in
    if not (Hashtbl.mem declared name) then begin
      Hashtbl.replace declared name ();
      extra_locals := l :: !extra_locals
    end
  in
  let rec stmt = function
    | Ast.Try (body, x, handler) ->
      let n = !counter in
      incr counter;
      let buf = Printf.sprintf "__try%d" n in
      let r = Printf.sprintf "__try_r%d" n in
      declare (Ast.Array (buf, try_buf_bytes));
      declare (Ast.Scalar r);
      declare (Ast.Scalar x);
      let buf_addr = Ast.Addr_local buf in
      let prev = Ast.Load (Ast.Binop (Ast.Add, buf_addr, Ast.Int (Int64.of_int prev_slot))) in
      let pop = Ast.Store (Ast.Addr_global exn_top_symbol, prev) in
      Ast.Block
        [
          (* remember the enclosing handler, arm ours, publish it *)
          Ast.Store
            ( Ast.Binop (Ast.Add, buf_addr, Ast.Int (Int64.of_int prev_slot)),
              Ast.Load (Ast.Addr_global exn_top_symbol) );
          Ast.Setjmp (r, buf_addr);
          Ast.If
            ( Ast.Rel (Ast.Eq, Ast.Var r, Ast.Int 0L),
              (Ast.Store (Ast.Addr_global exn_top_symbol, buf_addr) :: List.map stmt body)
              @ [ pop ],
              pop :: Ast.Let (x, Ast.Var r) :: List.map stmt handler );
        ]
    | Ast.Throw e -> Ast.Expr (Ast.Call (throw_symbol, [ e ]))
    | Ast.If (c, t, fl) -> Ast.If (c, List.map stmt t, List.map stmt fl)
    | Ast.While (c, b) -> Ast.While (c, List.map stmt b)
    | Ast.Block b -> Ast.Block (List.map stmt b)
    | ( Ast.Let _ | Ast.Store _ | Ast.Store_byte _ | Ast.Expr _ | Ast.Return _ | Ast.Tail_call _
      | Ast.Setjmp _ | Ast.Longjmp _ | Ast.Hook _ | Ast.Print _ | Ast.Halt _ ) as s -> s
  in
  let body = List.map stmt f.body in
  { f with body; locals = f.locals @ List.rev !extra_locals }

(* Raising: longjmp to the innermost live handler, or die loudly. *)
let throw_fdef =
  Ast.fdef throw_symbol ~params:[ "v" ] ~locals:[ Ast.Scalar "h" ]
    [
      Ast.Let ("h", Ast.Load (Ast.Addr_global exn_top_symbol));
      Ast.If
        ( Ast.Rel (Ast.Eq, Ast.Var "h", Ast.Int 0L),
          [ Ast.Halt (Ast.Int (Int64.of_int uncaught_exit_code)) ],
          [] );
      Ast.Longjmp (Ast.Var "h", Ast.Var "v");
    ]

let desugar (p : Ast.program) =
  if not (program_has_exn p) then p
  else
    {
      p with
      fundefs = List.map desugar_fdef p.fundefs @ [ throw_fdef ];
      globals = p.globals @ [ (exn_top_symbol, 8) ];
    }
