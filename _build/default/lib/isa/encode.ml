exception Unencodable of string

type pools = { constants : int64 array; symbols : string array }

(* Word layout: op[31:26] a[25:20] b[19:14] c[13:8] d[7:0]. Field use is
   per-opcode; immediates and labels are 14-bit pool indices in (c << 8 | d),
   memory offsets are immediate-encoded (12-bit signed for single
   transfers packed into c[3:0] and d, 6-bit 8-byte-scaled for pairs in
   the low bits of c and d). *)

let op_bits = 6
let reg_bits = 6

(* opcode numbers; the _i suffix marks immediate-operand variants *)
let op_add = 1
and op_add_i = 2
and op_sub = 3
and op_sub_i = 4
and op_mul = 5
and op_udiv = 6
and op_and = 7
and op_and_i = 8
and op_orr = 9
and op_orr_i = 10
and op_eor = 11
and op_eor_i = 12
and op_lsl = 13
and op_lsl_i = 14
and op_lsr = 15
and op_lsr_i = 16
and op_mov = 17
and op_mov_i = 18
and op_cmp = 19
and op_cmp_i = 20
and op_adr = 21
and op_ldr = 22
and op_str = 23
and op_ldrb = 24
and op_strb = 25
and op_ldp = 26
and op_stp = 27
and op_b = 28
and op_bcond = 29
and op_cbz = 30
and op_cbnz = 31
and op_bl = 32
and op_blr = 33
and op_br = 34
and op_ret = 35
and op_retaa = 36
and op_pacia = 37
and op_autia = 38
and op_paciasp = 39
and op_autiasp = 40
and op_xpaci = 41
and op_pacga = 42
and op_svc = 43
and op_nop = 44
and op_hlt = 45
and op_hook = 46

let reg_code = function Reg.X n -> n | Reg.SP -> 31 | Reg.XZR -> 32

let reg_of_code = function
  | n when n >= 0 && n <= 30 -> Reg.X n
  | 31 -> Reg.SP
  | 32 -> Reg.XZR
  | n -> invalid_arg (Printf.sprintf "Encode: bad register code %d" n)

let cond_code = function
  | Cond.EQ -> 0
  | Cond.NE -> 1
  | Cond.LT -> 2
  | Cond.LE -> 3
  | Cond.GT -> 4
  | Cond.GE -> 5
  | Cond.HS -> 6
  | Cond.LO -> 7

let cond_of_code = function
  | 0 -> Cond.EQ
  | 1 -> Cond.NE
  | 2 -> Cond.LT
  | 3 -> Cond.LE
  | 4 -> Cond.GT
  | 5 -> Cond.GE
  | 6 -> Cond.HS
  | 7 -> Cond.LO
  | n -> invalid_arg (Printf.sprintf "Encode: bad condition code %d" n)

let index_code = function Instr.Offset -> 0 | Instr.Pre -> 1 | Instr.Post -> 2

let index_of_code = function
  | 0 -> Instr.Offset
  | 1 -> Instr.Pre
  | 2 -> Instr.Post
  | n -> invalid_arg (Printf.sprintf "Encode: bad index mode %d" n)

(* pool builders with interning *)
type builder = {
  mutable consts : int64 list;  (* reversed *)
  const_ids : (int64, int) Hashtbl.t;
  mutable syms : string list;
  sym_ids : (string, int) Hashtbl.t;
}

let pool_limit = 1 lsl 14

let intern tbl list_ref count v =
  match Hashtbl.find_opt tbl v with
  | Some i -> i
  | None ->
    let i = count () in
    if i >= pool_limit then raise (Unencodable "pool overflow");
    Hashtbl.replace tbl v i;
    list_ref ();
    i

let const_id bld v =
  intern bld.const_ids (fun () -> bld.consts <- v :: bld.consts) (fun () -> Hashtbl.length bld.const_ids) v

let sym_id bld v =
  intern bld.sym_ids (fun () -> bld.syms <- v :: bld.syms) (fun () -> Hashtbl.length bld.sym_ids) v

let word ~op ~a ~b ~c ~d =
  if op < 0 || op >= 1 lsl op_bits then invalid_arg "Encode.word: op";
  assert (a >= 0 && a < 1 lsl reg_bits);
  assert (b >= 0 && b < 1 lsl reg_bits);
  assert (c >= 0 && c < 64);
  assert (d >= 0 && d < 256);
  Int32.of_int ((op lsl 26) lor (a lsl 20) lor (b lsl 14) lor (c lsl 8) lor d)

let word_idx ~op ~a ~b ~idx =
  if idx < 0 || idx >= pool_limit then raise (Unencodable "pool index");
  word ~op ~a ~b ~c:(idx lsr 8) ~d:(idx land 0xff)

(* single-transfer memory operand: c = mode:2 | offset[11:8], d = offset[7:0] *)
let word_mem ~op ~a ({ Instr.base; offset; index } : Instr.mem) =
  if offset < -2048 || offset > 2047 then
    raise (Unencodable (Printf.sprintf "memory offset %d out of 12-bit range" offset));
  let off12 = offset land 0xfff in
  word ~op ~a ~b:(reg_code base) ~c:((index_code index lsl 4) lor (off12 lsr 8)) ~d:(off12 land 0xff)

(* pair transfer: c = mode:2 | rt2[5:2]? — instead: a=rt1, b=rt2, c = base
   packed with mode is impossible in 6 bits, so c = mode:2 | scaled
   offset:4 high bits and d = base:6 | scaled offset low 2 bits. *)
let word_pair ~op ~rt1 ~rt2 ({ Instr.base; offset; index } : Instr.mem) =
  if offset land 7 <> 0 then raise (Unencodable "pair offset must be 8-byte aligned");
  let scaled = offset asr 3 in
  if scaled < -32 || scaled > 31 then
    raise (Unencodable (Printf.sprintf "pair offset %d out of scaled 6-bit range" offset));
  let off6 = scaled land 0x3f in
  word ~op ~a:(reg_code rt1) ~b:(reg_code rt2)
    ~c:((index_code index lsl 4) lor (off6 lsr 2))
    ~d:((reg_code base lsl 2) lor (off6 land 3))

let encode_one bld instr =
  let r = reg_code in
  let rrr op rd rn rm = word ~op ~a:(r rd) ~b:(r rn) ~c:(r rm) ~d:0 in
  let rr_operand opr opi rd rn = function
    | Instr.Reg rm -> word ~op:opr ~a:(r rd) ~b:(r rn) ~c:(r rm) ~d:0
    | Instr.Imm v -> word_idx ~op:opi ~a:(r rd) ~b:(r rn) ~idx:(const_id bld v)
  in
  match (instr : Instr.t) with
  | Instr.Add (rd, rn, o) -> rr_operand op_add op_add_i rd rn o
  | Instr.Sub (rd, rn, o) -> rr_operand op_sub op_sub_i rd rn o
  | Instr.Mul (rd, rn, rm) -> rrr op_mul rd rn rm
  | Instr.Udiv (rd, rn, rm) -> rrr op_udiv rd rn rm
  | Instr.And_ (rd, rn, o) -> rr_operand op_and op_and_i rd rn o
  | Instr.Orr (rd, rn, o) -> rr_operand op_orr op_orr_i rd rn o
  | Instr.Eor (rd, rn, o) -> rr_operand op_eor op_eor_i rd rn o
  | Instr.Lsl_ (rd, rn, o) -> rr_operand op_lsl op_lsl_i rd rn o
  | Instr.Lsr_ (rd, rn, o) -> rr_operand op_lsr op_lsr_i rd rn o
  | Instr.Mov (rd, o) -> rr_operand op_mov op_mov_i rd Reg.XZR o
  | Instr.Cmp (rn, o) -> rr_operand op_cmp op_cmp_i Reg.XZR rn o
  | Instr.Adr (rd, l) -> word_idx ~op:op_adr ~a:(r rd) ~b:0 ~idx:(sym_id bld l)
  | Instr.Ldr (rt, m) -> word_mem ~op:op_ldr ~a:(r rt) m
  | Instr.Str (rt, m) -> word_mem ~op:op_str ~a:(r rt) m
  | Instr.Ldrb (rt, m) -> word_mem ~op:op_ldrb ~a:(r rt) m
  | Instr.Strb (rt, m) -> word_mem ~op:op_strb ~a:(r rt) m
  | Instr.Ldp (r1, r2, m) -> word_pair ~op:op_ldp ~rt1:r1 ~rt2:r2 m
  | Instr.Stp (r1, r2, m) -> word_pair ~op:op_stp ~rt1:r1 ~rt2:r2 m
  | Instr.B l -> word_idx ~op:op_b ~a:0 ~b:0 ~idx:(sym_id bld l)
  | Instr.Bcond (c, l) -> word_idx ~op:op_bcond ~a:(cond_code c) ~b:0 ~idx:(sym_id bld l)
  | Instr.Cbz (rt, l) -> word_idx ~op:op_cbz ~a:(r rt) ~b:0 ~idx:(sym_id bld l)
  | Instr.Cbnz (rt, l) -> word_idx ~op:op_cbnz ~a:(r rt) ~b:0 ~idx:(sym_id bld l)
  | Instr.Bl l -> word_idx ~op:op_bl ~a:0 ~b:0 ~idx:(sym_id bld l)
  | Instr.Blr rt -> word ~op:op_blr ~a:(r rt) ~b:0 ~c:0 ~d:0
  | Instr.Br rt -> word ~op:op_br ~a:(r rt) ~b:0 ~c:0 ~d:0
  | Instr.Ret rt -> word ~op:op_ret ~a:(r rt) ~b:0 ~c:0 ~d:0
  | Instr.Retaa -> word ~op:op_retaa ~a:0 ~b:0 ~c:0 ~d:0
  | Instr.Pacia (rd, rn) -> word ~op:op_pacia ~a:(r rd) ~b:(r rn) ~c:0 ~d:0
  | Instr.Autia (rd, rn) -> word ~op:op_autia ~a:(r rd) ~b:(r rn) ~c:0 ~d:0
  | Instr.Paciasp -> word ~op:op_paciasp ~a:0 ~b:0 ~c:0 ~d:0
  | Instr.Autiasp -> word ~op:op_autiasp ~a:0 ~b:0 ~c:0 ~d:0
  | Instr.Xpaci rt -> word ~op:op_xpaci ~a:(r rt) ~b:0 ~c:0 ~d:0
  | Instr.Pacga (rd, rn, rm) -> rrr op_pacga rd rn rm
  | Instr.Svc n ->
    if n < 0 || n > 255 then raise (Unencodable "svc immediate out of range");
    word ~op:op_svc ~a:0 ~b:0 ~c:0 ~d:n
  | Instr.Nop -> word ~op:op_nop ~a:0 ~b:0 ~c:0 ~d:0
  | Instr.Hlt -> word ~op:op_hlt ~a:0 ~b:0 ~c:0 ~d:0
  | Instr.Hook l -> word_idx ~op:op_hook ~a:0 ~b:0 ~idx:(sym_id bld l)

let encode instrs =
  let bld =
    { consts = []; const_ids = Hashtbl.create 32; syms = []; sym_ids = Hashtbl.create 32 }
  in
  let words = Array.of_list (List.map (encode_one bld) instrs) in
  ( words,
    {
      constants = Array.of_list (List.rev bld.consts);
      symbols = Array.of_list (List.rev bld.syms);
    } )

let sign_extend v bits =
  let shift = 64 - bits in
  Int64.to_int (Int64.shift_right (Int64.shift_left (Int64.of_int v) shift) shift)

let decode w pools =
  let w = Int32.to_int w land 0xffffffff in
  let op = (w lsr 26) land 0x3f in
  let a = (w lsr 20) land 0x3f in
  let b = (w lsr 14) land 0x3f in
  let c = (w lsr 8) land 0x3f in
  let d = w land 0xff in
  let idx = (c lsl 8) lor d in
  let const () =
    if idx >= Array.length pools.constants then invalid_arg "Encode.decode: constant index"
    else pools.constants.(idx)
  in
  let sym () =
    if idx >= Array.length pools.symbols then invalid_arg "Encode.decode: symbol index"
    else pools.symbols.(idx)
  in
  let mem () =
    let index = index_of_code (c lsr 4) in
    let offset = sign_extend (((c land 0xf) lsl 8) lor d) 12 in
    { Instr.base = reg_of_code b; offset; index }
  in
  let pair_mem () =
    let index = index_of_code (c lsr 4) in
    let scaled = sign_extend (((c land 0xf) lsl 2) lor (d land 3)) 6 in
    { Instr.base = reg_of_code (d lsr 2); offset = scaled * 8; index }
  in
  let ra () = reg_of_code a and rb () = reg_of_code b and rc () = reg_of_code c in
  match op with
  | o when o = op_add -> Instr.Add (ra (), rb (), Instr.Reg (rc ()))
  | o when o = op_add_i -> Instr.Add (ra (), rb (), Instr.Imm (const ()))
  | o when o = op_sub -> Instr.Sub (ra (), rb (), Instr.Reg (rc ()))
  | o when o = op_sub_i -> Instr.Sub (ra (), rb (), Instr.Imm (const ()))
  | o when o = op_mul -> Instr.Mul (ra (), rb (), rc ())
  | o when o = op_udiv -> Instr.Udiv (ra (), rb (), rc ())
  | o when o = op_and -> Instr.And_ (ra (), rb (), Instr.Reg (rc ()))
  | o when o = op_and_i -> Instr.And_ (ra (), rb (), Instr.Imm (const ()))
  | o when o = op_orr -> Instr.Orr (ra (), rb (), Instr.Reg (rc ()))
  | o when o = op_orr_i -> Instr.Orr (ra (), rb (), Instr.Imm (const ()))
  | o when o = op_eor -> Instr.Eor (ra (), rb (), Instr.Reg (rc ()))
  | o when o = op_eor_i -> Instr.Eor (ra (), rb (), Instr.Imm (const ()))
  | o when o = op_lsl -> Instr.Lsl_ (ra (), rb (), Instr.Reg (rc ()))
  | o when o = op_lsl_i -> Instr.Lsl_ (ra (), rb (), Instr.Imm (const ()))
  | o when o = op_lsr -> Instr.Lsr_ (ra (), rb (), Instr.Reg (rc ()))
  | o when o = op_lsr_i -> Instr.Lsr_ (ra (), rb (), Instr.Imm (const ()))
  | o when o = op_mov -> Instr.Mov (ra (), Instr.Reg (rc ()))
  | o when o = op_mov_i -> Instr.Mov (ra (), Instr.Imm (const ()))
  | o when o = op_cmp -> Instr.Cmp (rb (), Instr.Reg (rc ()))
  | o when o = op_cmp_i -> Instr.Cmp (rb (), Instr.Imm (const ()))
  | o when o = op_adr -> Instr.Adr (ra (), sym ())
  | o when o = op_ldr -> Instr.Ldr (ra (), mem ())
  | o when o = op_str -> Instr.Str (ra (), mem ())
  | o when o = op_ldrb -> Instr.Ldrb (ra (), mem ())
  | o when o = op_strb -> Instr.Strb (ra (), mem ())
  | o when o = op_ldp -> Instr.Ldp (ra (), rb (), pair_mem ())
  | o when o = op_stp -> Instr.Stp (ra (), rb (), pair_mem ())
  | o when o = op_b -> Instr.B (sym ())
  | o when o = op_bcond -> Instr.Bcond (cond_of_code a, sym ())
  | o when o = op_cbz -> Instr.Cbz (ra (), sym ())
  | o when o = op_cbnz -> Instr.Cbnz (ra (), sym ())
  | o when o = op_bl -> Instr.Bl (sym ())
  | o when o = op_blr -> Instr.Blr (ra ())
  | o when o = op_br -> Instr.Br (ra ())
  | o when o = op_ret -> Instr.Ret (ra ())
  | o when o = op_retaa -> Instr.Retaa
  | o when o = op_pacia -> Instr.Pacia (ra (), rb ())
  | o when o = op_autia -> Instr.Autia (ra (), rb ())
  | o when o = op_paciasp -> Instr.Paciasp
  | o when o = op_autiasp -> Instr.Autiasp
  | o when o = op_xpaci -> Instr.Xpaci (ra ())
  | o when o = op_pacga -> Instr.Pacga (ra (), rb (), rc ())
  | o when o = op_svc -> Instr.Svc d
  | o when o = op_nop -> Instr.Nop
  | o when o = op_hlt -> Instr.Hlt
  | o when o = op_hook -> Instr.Hook (sym ())
  | o -> invalid_arg (Printf.sprintf "Encode.decode: unknown opcode %d" o)

let decode_all words pools = Array.to_list (Array.map (fun w -> decode w pools) words)

let disassemble words pools =
  String.concat "\n" (List.map Instr.to_string (decode_all words pools))
