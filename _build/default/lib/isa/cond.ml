type t = EQ | NE | LT | LE | GT | GE | HS | LO

let negate = function
  | EQ -> NE
  | NE -> EQ
  | LT -> GE
  | GE -> LT
  | LE -> GT
  | GT -> LE
  | HS -> LO
  | LO -> HS

let to_string = function
  | EQ -> "eq"
  | NE -> "ne"
  | LT -> "lt"
  | LE -> "le"
  | GT -> "gt"
  | GE -> "ge"
  | HS -> "hs"
  | LO -> "lo"

let of_string s =
  match String.lowercase_ascii s with
  | "eq" -> Some EQ
  | "ne" -> Some NE
  | "lt" -> Some LT
  | "le" -> Some LE
  | "gt" -> Some GT
  | "ge" -> Some GE
  | "hs" -> Some HS
  | "lo" -> Some LO
  | _ -> None

let pp fmt c = Format.pp_print_string fmt (to_string c)

type flags = { n : bool; z : bool; c : bool; v : bool }

let flags_zero = { n = false; z = false; c = false; v = false }

let of_compare a b =
  let diff = Int64.sub a b in
  let n = diff < 0L in
  let z = diff = 0L in
  (* carry = no unsigned borrow *)
  let c = Int64.unsigned_compare a b >= 0 in
  (* signed overflow: operands of differing sign and result sign differs
     from the first operand *)
  let v = (a < 0L) <> (b < 0L) && (diff < 0L) <> (a < 0L) in
  { n; z; c; v }

let holds cond f =
  match cond with
  | EQ -> f.z
  | NE -> not f.z
  | LT -> f.n <> f.v
  | GE -> f.n = f.v
  | GT -> (not f.z) && f.n = f.v
  | LE -> f.z || f.n <> f.v
  | HS -> f.c
  | LO -> not f.c
