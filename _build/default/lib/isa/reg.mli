(** General-purpose registers of the simulated AArch64 subset.

    [X 0]..[X 30] plus [SP] and the zero register [XZR]. The conventional
    roles the paper relies on are exposed as named values. *)

type t = X of int | SP | XZR

val x : int -> t
(** [x n] for [0 <= n <= 30]; raises [Invalid_argument] otherwise. *)

val lr : t
(** X30, the link register. *)

val fp : t
(** X29, the frame pointer. *)

val cr : t
(** X28, the PACStack chain register holding the latest authenticated
    return address (§5.1). *)

val shadow : t
(** X18, the ShadowCallStack base register. *)

val scratch : t
(** X15, the caller-clobbered temporary PACStack uses for masks
    (Listing 3). *)

val equal : t -> t -> bool
val compare : t -> t -> int
val to_string : t -> string
val of_string : string -> t option
val pp : Format.formatter -> t -> unit

val is_callee_saved : t -> bool
(** X19–X28, SP and FP per the AAPCS64 convention. *)
