(** Relocatable object files.

    A unit is a set of functions and data objects with unresolved symbol
    references — what a compiler emits per translation unit. Units
    serialize to a compact binary format (instructions in their
    {!Encode} binary form plus the constant/symbol pools) and link into
    runnable {!Program}s with {!Link}. This is what lets the §9.2
    experiments build an application and its libraries as separately
    compiled, separately hardened artefacts. *)

type t = {
  funcs : Program.func list;
  data : Program.data list;
}

exception Corrupt of string
(** Raised by {!read} on malformed input. *)

val of_program : Program.t -> t
(** Forgets the entry point. *)

val defined_symbols : t -> string list
val referenced_symbols : t -> string list
(** Symbols used but not defined by this unit (external references). *)

val write : t -> string
(** Binary serialization. *)

val read : string -> t
(** Inverse of {!write}. *)

val save : t -> string -> unit
(** [save t path] writes the object file to disk. *)

val load : string -> t
