type operand = Reg of Reg.t | Imm of int64

type index_mode = Offset | Pre | Post

type mem = { base : Reg.t; offset : int; index : index_mode }

type label = string

type t =
  | Add of Reg.t * Reg.t * operand
  | Sub of Reg.t * Reg.t * operand
  | Mul of Reg.t * Reg.t * Reg.t
  | Udiv of Reg.t * Reg.t * Reg.t
  | And_ of Reg.t * Reg.t * operand
  | Orr of Reg.t * Reg.t * operand
  | Eor of Reg.t * Reg.t * operand
  | Lsl_ of Reg.t * Reg.t * operand
  | Lsr_ of Reg.t * Reg.t * operand
  | Mov of Reg.t * operand
  | Cmp of Reg.t * operand
  | Adr of Reg.t * label
  | Ldr of Reg.t * mem
  | Str of Reg.t * mem
  | Ldrb of Reg.t * mem
  | Strb of Reg.t * mem
  | Ldp of Reg.t * Reg.t * mem
  | Stp of Reg.t * Reg.t * mem
  | B of label
  | Bcond of Cond.t * label
  | Cbz of Reg.t * label
  | Cbnz of Reg.t * label
  | Bl of label
  | Blr of Reg.t
  | Br of Reg.t
  | Ret of Reg.t
  | Retaa
  | Pacia of Reg.t * Reg.t
  | Autia of Reg.t * Reg.t
  | Paciasp
  | Autiasp
  | Xpaci of Reg.t
  | Pacga of Reg.t * Reg.t * Reg.t
  | Svc of int
  | Nop
  | Hlt
  | Hook of string

let cycles = function
  | Add _ | Sub _ | And_ _ | Orr _ | Eor _ | Lsl_ _ | Lsr_ _ | Mov _ | Cmp _ | Adr _ -> 1
  | Mul _ -> 3
  | Udiv _ -> 12
  | Ldr _ | Str _ | Ldrb _ | Strb _ -> 4
  | Ldp _ | Stp _ -> 5
  | B _ | Bcond _ | Cbz _ | Cbnz _ -> 1
  | Bl _ | Blr _ | Br _ | Ret _ -> 2
  | Retaa -> 5
  | Pacia _ | Autia _ | Paciasp | Autiasp | Xpaci _ | Pacga _ -> 3
  | Svc _ -> 100
  | Nop -> 1
  | Hlt -> 1
  | Hook _ -> 0

let reads_label = function
  | Adr (_, l) | B l | Bcond (_, l) | Cbz (_, l) | Cbnz (_, l) | Bl l -> Some l
  | Add _ | Sub _ | Mul _ | Udiv _ | And_ _ | Orr _ | Eor _ | Lsl_ _ | Lsr_ _
  | Mov _ | Cmp _ | Ldr _ | Str _ | Ldrb _ | Strb _ | Ldp _ | Stp _
  | Blr _ | Br _ | Ret _ | Retaa | Pacia _ | Autia _ | Paciasp | Autiasp
  | Xpaci _ | Pacga _ | Svc _ | Nop | Hlt | Hook _ -> None

let pp_operand fmt = function
  | Reg r -> Reg.pp fmt r
  | Imm i -> Format.fprintf fmt "#%Ld" i

let pp_mem fmt { base; offset; index } =
  match index with
  | Offset ->
    if offset = 0 then Format.fprintf fmt "[%a]" Reg.pp base
    else Format.fprintf fmt "[%a, #%d]" Reg.pp base offset
  | Pre -> Format.fprintf fmt "[%a, #%d]!" Reg.pp base offset
  | Post -> Format.fprintf fmt "[%a], #%d" Reg.pp base offset

let pp fmt instr =
  let rrr_op name rd rn op =
    Format.fprintf fmt "%s %a, %a, %a" name Reg.pp rd Reg.pp rn pp_operand op
  in
  let rrr name rd rn rm =
    Format.fprintf fmt "%s %a, %a, %a" name Reg.pp rd Reg.pp rn Reg.pp rm
  in
  match instr with
  | Add (rd, rn, op) -> rrr_op "add" rd rn op
  | Sub (rd, rn, op) -> rrr_op "sub" rd rn op
  | Mul (rd, rn, rm) -> rrr "mul" rd rn rm
  | Udiv (rd, rn, rm) -> rrr "udiv" rd rn rm
  | And_ (rd, rn, op) -> rrr_op "and" rd rn op
  | Orr (rd, rn, op) -> rrr_op "orr" rd rn op
  | Eor (rd, rn, op) -> rrr_op "eor" rd rn op
  | Lsl_ (rd, rn, op) -> rrr_op "lsl" rd rn op
  | Lsr_ (rd, rn, op) -> rrr_op "lsr" rd rn op
  | Mov (rd, op) -> Format.fprintf fmt "mov %a, %a" Reg.pp rd pp_operand op
  | Cmp (rn, op) -> Format.fprintf fmt "cmp %a, %a" Reg.pp rn pp_operand op
  | Adr (rd, l) -> Format.fprintf fmt "adr %a, %s" Reg.pp rd l
  | Ldr (rt, m) -> Format.fprintf fmt "ldr %a, %a" Reg.pp rt pp_mem m
  | Str (rt, m) -> Format.fprintf fmt "str %a, %a" Reg.pp rt pp_mem m
  | Ldrb (rt, m) -> Format.fprintf fmt "ldrb %a, %a" Reg.pp rt pp_mem m
  | Strb (rt, m) -> Format.fprintf fmt "strb %a, %a" Reg.pp rt pp_mem m
  | Ldp (r1, r2, m) -> Format.fprintf fmt "ldp %a, %a, %a" Reg.pp r1 Reg.pp r2 pp_mem m
  | Stp (r1, r2, m) -> Format.fprintf fmt "stp %a, %a, %a" Reg.pp r1 Reg.pp r2 pp_mem m
  | B l -> Format.fprintf fmt "b %s" l
  | Bcond (c, l) -> Format.fprintf fmt "b.%a %s" Cond.pp c l
  | Cbz (r, l) -> Format.fprintf fmt "cbz %a, %s" Reg.pp r l
  | Cbnz (r, l) -> Format.fprintf fmt "cbnz %a, %s" Reg.pp r l
  | Bl l -> Format.fprintf fmt "bl %s" l
  | Blr r -> Format.fprintf fmt "blr %a" Reg.pp r
  | Br r -> Format.fprintf fmt "br %a" Reg.pp r
  | Ret r -> if Reg.equal r Reg.lr then Format.pp_print_string fmt "ret" else Format.fprintf fmt "ret %a" Reg.pp r
  | Retaa -> Format.pp_print_string fmt "retaa"
  | Pacia (rd, rn) -> Format.fprintf fmt "pacia %a, %a" Reg.pp rd Reg.pp rn
  | Autia (rd, rn) -> Format.fprintf fmt "autia %a, %a" Reg.pp rd Reg.pp rn
  | Paciasp -> Format.pp_print_string fmt "paciasp"
  | Autiasp -> Format.pp_print_string fmt "autiasp"
  | Xpaci r -> Format.fprintf fmt "xpaci %a" Reg.pp r
  | Pacga (rd, rn, rm) -> rrr "pacga" rd rn rm
  | Svc n -> Format.fprintf fmt "svc #%d" n
  | Nop -> Format.pp_print_string fmt "nop"
  | Hlt -> Format.pp_print_string fmt "hlt"
  | Hook name -> Format.fprintf fmt "hook %s" name

let to_string i = Format.asprintf "%a" pp i
