(** Branch condition codes (signed comparisons over the NZCV flags). *)

type t = EQ | NE | LT | LE | GT | GE | HS | LO

val negate : t -> t
val to_string : t -> string
val of_string : string -> t option
val pp : Format.formatter -> t -> unit

type flags = { n : bool; z : bool; c : bool; v : bool }

val flags_zero : flags
val of_compare : Pacstack_util.Word64.t -> Pacstack_util.Word64.t -> flags
(** Flags produced by [cmp a, b] (i.e. [a - b]). *)

val holds : t -> flags -> bool
