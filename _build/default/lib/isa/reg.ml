type t = X of int | SP | XZR

let x n = if n < 0 || n > 30 then invalid_arg "Reg.x" else X n

let lr = X 30
let fp = X 29
let cr = X 28
let shadow = X 18
let scratch = X 15

let equal a b =
  match a, b with
  | X n, X m -> n = m
  | SP, SP | XZR, XZR -> true
  | X _, (SP | XZR) | SP, (X _ | XZR) | XZR, (X _ | SP) -> false

let rank = function X n -> n | SP -> 31 | XZR -> 32
let compare a b = Int.compare (rank a) (rank b)

let to_string = function
  | X 29 -> "fp"
  | X 30 -> "lr"
  | X n -> "x" ^ string_of_int n
  | SP -> "sp"
  | XZR -> "xzr"

let of_string s =
  match String.lowercase_ascii s with
  | "sp" -> Some SP
  | "xzr" -> Some XZR
  | "fp" -> Some (X 29)
  | "lr" -> Some (X 30)
  | s when String.length s >= 2 && s.[0] = 'x' -> (
    match int_of_string_opt (String.sub s 1 (String.length s - 1)) with
    | Some n when n >= 0 && n <= 30 -> Some (X n)
    | Some _ | None -> None)
  | _ -> None

let pp fmt r = Format.pp_print_string fmt (to_string r)

let is_callee_saved = function
  | X n -> n >= 19 && n <= 29
  | SP -> true
  | XZR -> false
