type item = Lbl of string | Ins of Instr.t

type func = { name : string; body : item list }

type data = { dname : string; size : int }

type t = { funcs : func list; data : data list; entry : string }

let func name body = { name; body }

let instructions f =
  List.filter_map (function Ins i -> Some i | Lbl _ -> None) f.body

let local_labels f =
  List.filter_map (function Lbl l -> Some l | Ins _ -> None) f.body

let symbols t = List.map (fun f -> f.name) t.funcs @ List.map (fun d -> d.dname) t.data

let validate t =
  let seen = Hashtbl.create 16 in
  let define kind name =
    if Hashtbl.mem seen name then
      invalid_arg (Printf.sprintf "Program: duplicate %s symbol %s" kind name);
    Hashtbl.add seen name ()
  in
  List.iter (fun f -> define "function" f.name) t.funcs;
  List.iter (fun d -> define "data" d.dname) t.data;
  if not (Hashtbl.mem seen t.entry) then
    invalid_arg (Printf.sprintf "Program: entry symbol %s undefined" t.entry);
  List.iter
    (fun d ->
      if d.size <= 0 then invalid_arg (Printf.sprintf "Program: data %s has size %d" d.dname d.size))
    t.data;
  let check_func f =
    let locals = Hashtbl.create 8 in
    List.iter
      (fun l ->
        if Hashtbl.mem locals l then
          invalid_arg (Printf.sprintf "Program: duplicate label %s in %s" l f.name);
        Hashtbl.add locals l ())
      (local_labels f);
    List.iter
      (fun i ->
        match Instr.reads_label i with
        | None -> ()
        | Some l ->
          if not (Hashtbl.mem locals l || Hashtbl.mem seen l) then
            invalid_arg (Printf.sprintf "Program: unknown label %s in %s" l f.name))
      (instructions f)
  in
  List.iter check_func t.funcs

let make ?(data = []) ~entry funcs =
  let t = { funcs; data; entry } in
  validate t;
  t

let instruction_count t =
  List.fold_left (fun acc f -> acc + List.length (instructions f)) 0 t.funcs

let find_func t name = List.find_opt (fun f -> f.name = name) t.funcs

let map_funcs fn t =
  let t = { t with funcs = List.map fn t.funcs } in
  validate t;
  t

let pp fmt t =
  List.iter (fun d -> Format.fprintf fmt ".data %s %d@." d.dname d.size) t.data;
  Format.fprintf fmt ".entry %s@." t.entry;
  List.iter
    (fun f ->
      Format.fprintf fmt ".func %s@." f.name;
      List.iter
        (function
          | Lbl l -> Format.fprintf fmt "%s:@." l
          | Ins i -> Format.fprintf fmt "  %a@." Instr.pp i)
        f.body;
      Format.fprintf fmt ".endfunc@.")
    t.funcs
