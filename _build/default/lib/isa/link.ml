type error =
  | Duplicate_symbol of string * int * int
  | Undefined_symbols of string list
  | Missing_entry of string

exception Link_error of error

let error_to_string = function
  | Duplicate_symbol (s, i, j) -> Printf.sprintf "symbol %s defined in units %d and %d" s i j
  | Undefined_symbols ss -> "undefined symbols: " ^ String.concat ", " ss
  | Missing_entry e -> Printf.sprintf "entry symbol %s not defined by any unit" e

let default_linkonce = [ "__throw"; "__exn_top" ]

(* Drop later definitions of link-once (COMDAT-style) symbols — every
   translation unit synthesizes its own copy of the exception runtime, and
   exactly one must survive. *)
let dedupe_linkonce ~linkonce units =
  let keep = Hashtbl.create 8 in
  List.map
    (fun (u : Objfile.t) ->
      let fresh sym =
        if not (List.mem sym linkonce) then true
        else if Hashtbl.mem keep sym then false
        else begin
          Hashtbl.replace keep sym ();
          true
        end
      in
      {
        Objfile.funcs = List.filter (fun (f : Program.func) -> fresh f.name) u.funcs;
        data = List.filter (fun (d : Program.data) -> fresh d.dname) u.data;
      })
    units

let definitions units =
  let where = Hashtbl.create 32 in
  List.iteri
    (fun idx u ->
      List.iter
        (fun sym ->
          match Hashtbl.find_opt where sym with
          | Some first -> raise (Link_error (Duplicate_symbol (sym, first, idx)))
          | None -> Hashtbl.replace where sym idx)
        (Objfile.defined_symbols u))
    units;
  where

let undefined_symbols units =
  let units = dedupe_linkonce ~linkonce:default_linkonce units in
  match definitions units with
  | exception Link_error _ -> []
  | defined ->
    List.concat_map
      (fun u -> List.filter (fun s -> not (Hashtbl.mem defined s)) (Objfile.referenced_symbols u))
      units
    |> List.sort_uniq compare

let link ?(entry = "main") ?(linkonce = default_linkonce) units =
  let units = dedupe_linkonce ~linkonce units in
  let defined = definitions units in
  let undefined =
    List.concat_map
      (fun u -> List.filter (fun s -> not (Hashtbl.mem defined s)) (Objfile.referenced_symbols u))
      units
    |> List.sort_uniq compare
  in
  if undefined <> [] then raise (Link_error (Undefined_symbols undefined));
  if not (Hashtbl.mem defined entry) then raise (Link_error (Missing_entry entry));
  let funcs = List.concat_map (fun (u : Objfile.t) -> u.funcs) units in
  let data = List.concat_map (fun (u : Objfile.t) -> u.data) units in
  try Program.make ~data ~entry funcs
  with Invalid_argument m -> raise (Link_error (Undefined_symbols [ m ]))
