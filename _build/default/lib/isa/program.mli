(** Assembly-level program representation: a set of functions (each a list
    of labels and instructions), zero-initialised data objects and an entry
    symbol. *)

type item = Lbl of string | Ins of Instr.t

type func = { name : string; body : item list }

type data = { dname : string; size : int }
(** A [size]-byte zero-initialised data object addressable via its
    symbol. *)

type t = { funcs : func list; data : data list; entry : string }

val make : ?data:data list -> entry:string -> func list -> t
(** Validates and returns the program; raises [Invalid_argument] when the
    entry symbol is missing, a symbol is defined twice, or an instruction
    references an unknown label/symbol. *)

val func : string -> item list -> func

val instructions : func -> Instr.t list
val instruction_count : t -> int
val find_func : t -> string -> func option
val symbols : t -> string list
(** All global symbols: function names and data names. *)

val map_funcs : (func -> func) -> t -> t

val pp : Format.formatter -> t -> unit
(** Prints the program in the concrete syntax accepted by {!Asm.parse}. *)
