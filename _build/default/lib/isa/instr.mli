(** The instruction set of the simulated AArch64 subset.

    Large enough to express everything the paper's listings need — frame
    records, pair load/store with pre/post-indexing, indirect calls, tail
    calls, the PA instruction family — and nothing more. *)

type operand = Reg of Reg.t | Imm of int64

type index_mode =
  | Offset  (** [\[base, #off\]] — address untouched *)
  | Pre     (** [\[base, #off\]!] — base updated before access *)
  | Post    (** [\[base\], #off] — base updated after access *)

type mem = { base : Reg.t; offset : int; index : index_mode }

type label = string

type t =
  (* data processing *)
  | Add of Reg.t * Reg.t * operand
  | Sub of Reg.t * Reg.t * operand
  | Mul of Reg.t * Reg.t * Reg.t
  | Udiv of Reg.t * Reg.t * Reg.t
  | And_ of Reg.t * Reg.t * operand
  | Orr of Reg.t * Reg.t * operand
  | Eor of Reg.t * Reg.t * operand
  | Lsl_ of Reg.t * Reg.t * operand
  | Lsr_ of Reg.t * Reg.t * operand
  | Mov of Reg.t * operand
  | Cmp of Reg.t * operand
  | Adr of Reg.t * label  (** address of a code or data symbol *)
  (* memory *)
  | Ldr of Reg.t * mem
  | Str of Reg.t * mem
  | Ldrb of Reg.t * mem
  | Strb of Reg.t * mem
  | Ldp of Reg.t * Reg.t * mem
  | Stp of Reg.t * Reg.t * mem
  (* control flow *)
  | B of label
  | Bcond of Cond.t * label
  | Cbz of Reg.t * label
  | Cbnz of Reg.t * label
  | Bl of label
  | Blr of Reg.t
  | Br of Reg.t
  | Ret of Reg.t
  | Retaa  (** authenticate LR against SP, then return (§2.2.1) *)
  (* pointer authentication *)
  | Pacia of Reg.t * Reg.t  (** sign \[rd\] with modifier \[rn\], key IA *)
  | Autia of Reg.t * Reg.t
  | Paciasp  (** [pacia lr, sp] *)
  | Autiasp
  | Xpaci of Reg.t
  | Pacga of Reg.t * Reg.t * Reg.t  (** rd <- 32-bit MAC of rn under rm *)
  (* system *)
  | Svc of int
  | Nop
  | Hlt  (** stop the machine (normal program exit in bare programs) *)
  | Hook of string
      (** Pseudo-instruction marking an attacker attachment point
          (e.g. the vulnerability inside [stack_overwrite]); executes as a
          no-op unless an adversary is attached. *)

val cycles : t -> int
(** Cost model (see DESIGN.md): ALU/branch 1, mul 3, div 12, load/store 4,
    pair load/store 5, call/return 2, PAC operations 3, [Retaa] 5,
    [Svc] 100, [Hook] 0. *)

val reads_label : t -> label option
(** The label this instruction references, if any. *)

val pp : Format.formatter -> t -> unit
val to_string : t -> string
