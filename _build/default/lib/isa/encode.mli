(** Binary encoding of the instruction set.

    Instructions encode to fixed 32-bit words (as on AArch64), with two
    side tables playing the role of literal pools: a constant pool for
    immediates and a symbol pool for label references. The machine loader
    writes the encoded words into the executable pages, so the code an
    adversary can read through the W⊕X lens is real bytes, and the
    disassembler reproduces the assembly listing.

    Encoding limits (checked, {!Unencodable} on violation): memory-operand
    offsets fit 12 signed bits for single transfers and 6 signed
    8-byte-scaled bits for pair transfers; [svc] immediates fit 8 bits;
    at most 2^14 distinct constants and symbols per program. *)

exception Unencodable of string

type pools = {
  constants : int64 array;  (** immediate literal pool *)
  symbols : string array;  (** label/symbol pool *)
}

val encode : Instr.t list -> int32 array * pools
(** Encodes an instruction sequence, building the pools. *)

val decode : int32 -> pools -> Instr.t
(** Decodes one word against the pools; raises [Invalid_argument] on a
    malformed word. *)

val decode_all : int32 array -> pools -> Instr.t list

val disassemble : int32 array -> pools -> string
(** One instruction per line, in {!Asm} concrete syntax. *)
