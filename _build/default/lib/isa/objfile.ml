type t = {
  funcs : Program.func list;
  data : Program.data list;
}

exception Corrupt of string

let magic = "PACO"
let version = 1

let of_program (p : Program.t) = { funcs = p.funcs; data = p.data }

let defined_symbols t =
  List.map (fun (f : Program.func) -> f.name) t.funcs
  @ List.map (fun (d : Program.data) -> d.dname) t.data

let referenced_symbols t =
  let defined = Hashtbl.create 16 in
  List.iter (fun s -> Hashtbl.replace defined s ()) (defined_symbols t);
  let locals f =
    let tbl = Hashtbl.create 8 in
    List.iter
      (function Program.Lbl l -> Hashtbl.replace tbl l () | Program.Ins _ -> ())
      f.Program.body;
    tbl
  in
  let refs = Hashtbl.create 16 in
  List.iter
    (fun (f : Program.func) ->
      let local = locals f in
      List.iter
        (fun i ->
          match Instr.reads_label i with
          | Some l when not (Hashtbl.mem local l || Hashtbl.mem defined l) ->
            Hashtbl.replace refs l ()
          | Some _ | None -> ())
        (Program.instructions f))
    t.funcs;
  List.sort compare (Hashtbl.fold (fun k () acc -> k :: acc) refs [])

(* --- serialization ------------------------------------------------------- *)

let put_u16 b v =
  if v < 0 || v > 0xffff then raise (Corrupt "u16 out of range");
  Buffer.add_char b (Char.chr (v land 0xff));
  Buffer.add_char b (Char.chr ((v lsr 8) land 0xff))

let put_u32 b v =
  Buffer.add_char b (Char.chr (v land 0xff));
  Buffer.add_char b (Char.chr ((v lsr 8) land 0xff));
  Buffer.add_char b (Char.chr ((v lsr 16) land 0xff));
  Buffer.add_char b (Char.chr ((v lsr 24) land 0xff))

let put_u64 b (v : int64) =
  for i = 0 to 7 do
    Buffer.add_char b (Char.chr (Int64.to_int (Int64.shift_right_logical v (8 * i)) land 0xff))
  done

let put_str b s =
  put_u16 b (String.length s);
  Buffer.add_string b s

let write t =
  let b = Buffer.create 1024 in
  Buffer.add_string b magic;
  put_u16 b version;
  put_u16 b (List.length t.data);
  List.iter
    (fun (d : Program.data) ->
      put_str b d.dname;
      put_u32 b d.size)
    t.data;
  put_u16 b (List.length t.funcs);
  List.iter
    (fun (f : Program.func) ->
      put_str b f.name;
      let instrs = Program.instructions f in
      let words, pools = Encode.encode instrs in
      (* item stream: labels interleaved with indices into the word array *)
      put_u32 b (List.length f.body);
      let widx = ref 0 in
      List.iter
        (function
          | Program.Lbl l ->
            Buffer.add_char b '\000';
            put_str b l
          | Program.Ins _ ->
            Buffer.add_char b '\001';
            put_u32 b (Int32.to_int words.(!widx) land 0xffffffff);
            incr widx)
        f.body;
      put_u16 b (Array.length pools.Encode.constants);
      Array.iter (put_u64 b) pools.Encode.constants;
      put_u16 b (Array.length pools.Encode.symbols);
      Array.iter (put_str b) pools.Encode.symbols)
    t.funcs;
  Buffer.contents b

type reader = { s : string; mutable pos : int }

let need r n = if r.pos + n > String.length r.s then raise (Corrupt "truncated object file")

let get_byte r =
  need r 1;
  let c = Char.code r.s.[r.pos] in
  r.pos <- r.pos + 1;
  c

let get_u16 r =
  let a = get_byte r in
  a lor (get_byte r lsl 8)

let get_u32 r =
  let a = get_u16 r in
  a lor (get_u16 r lsl 16)

let get_u64 r =
  let rec go i acc =
    if i = 8 then acc
    else go (i + 1) (Int64.logor acc (Int64.shift_left (Int64.of_int (get_byte r)) (8 * i)))
  in
  go 0 0L

let get_str r =
  let n = get_u16 r in
  need r n;
  let s = String.sub r.s r.pos n in
  r.pos <- r.pos + n;
  s

let read s =
  let r = { s; pos = 0 } in
  need r 4;
  if String.sub s 0 4 <> magic then raise (Corrupt "bad magic");
  r.pos <- 4;
  if get_u16 r <> version then raise (Corrupt "unsupported version");
  let ndata = get_u16 r in
  let data =
    List.init ndata (fun _ ->
        let dname = get_str r in
        let size = get_u32 r in
        { Program.dname; size })
  in
  let nfuncs = get_u16 r in
  let funcs =
    List.init nfuncs (fun _ ->
        let name = get_str r in
        let nitems = get_u32 r in
        (* first pass: raw items with encoded words *)
        let raw =
          List.init nitems (fun _ ->
              match get_byte r with
              | 0 -> `Lbl (get_str r)
              | 1 -> `Word (Int32.of_int (get_u32 r))
              | t -> raise (Corrupt (Printf.sprintf "bad item tag %d" t)))
        in
        let nconst = get_u16 r in
        let constants = Array.init nconst (fun _ -> get_u64 r) in
        let nsym = get_u16 r in
        let symbols = Array.init nsym (fun _ -> get_str r) in
        let pools = { Encode.constants; symbols } in
        let body =
          List.map
            (function
              | `Lbl l -> Program.Lbl l
              | `Word w -> (
                match Encode.decode w pools with
                | i -> Program.Ins i
                | exception Invalid_argument m -> raise (Corrupt m)))
            raw
        in
        { Program.name; body })
  in
  if r.pos <> String.length s then raise (Corrupt "trailing bytes");
  { funcs; data }

let save t path = Out_channel.with_open_bin path (fun oc -> Out_channel.output_string oc (write t))

let load path =
  match In_channel.with_open_bin path In_channel.input_all with
  | s -> read s
  | exception Sys_error m -> raise (Corrupt m)
