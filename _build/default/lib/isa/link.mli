(** A static linker over {!Objfile} units. *)

type error =
  | Duplicate_symbol of string * int * int  (** symbol, unit indices *)
  | Undefined_symbols of string list
  | Missing_entry of string

exception Link_error of error

val error_to_string : error -> string

val undefined_symbols : Objfile.t list -> string list
(** Symbols referenced by some unit but defined by none. *)

val default_linkonce : string list
(** Symbols every translation unit may define, of which the first
    definition wins (COMDAT semantics): the synthesized exception
    runtime. *)

val link : ?entry:string -> ?linkonce:string list -> Objfile.t list -> Program.t
(** Combines the units into a validated program (entry defaults to
    ["main"]); raises {!Link_error} on duplicate definitions (other than
    [linkonce] ones, which default to {!default_linkonce}), unresolved
    references or a missing entry symbol. *)
