lib/isa/program.ml: Format Hashtbl Instr List Printf
