lib/isa/cond.mli: Format Pacstack_util
