lib/isa/objfile.ml: Array Buffer Char Encode Hashtbl In_channel Instr Int32 Int64 List Out_channel Printf Program String
