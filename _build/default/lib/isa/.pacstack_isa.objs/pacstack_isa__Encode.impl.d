lib/isa/encode.ml: Array Cond Hashtbl Instr Int32 Int64 List Printf Reg String
