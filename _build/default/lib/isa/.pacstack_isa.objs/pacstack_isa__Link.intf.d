lib/isa/link.mli: Objfile Program
