lib/isa/asm.ml: Cond Format Instr Int64 List Printf Program Reg String
