lib/isa/objfile.mli: Program
