lib/isa/link.ml: Hashtbl List Objfile Printf Program String
