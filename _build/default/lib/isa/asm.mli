(** Textual assembler for the simulated ISA.

    The concrete syntax is exactly what {!Program.pp} prints, so
    [parse (Format.asprintf "%a" Program.pp p)] round-trips any valid
    program. Comments start with [;] or [//]; labels end with [:];
    directives are [.data name size], [.entry name], [.func name] and
    [.endfunc]. *)

exception Parse_error of int * string
(** Line number (1-based) and message. *)

val parse : string -> Program.t
val parse_instr : string -> Instr.t
(** Parses a single instruction line; raises {!Parse_error} with line 1. *)

val print : Program.t -> string
