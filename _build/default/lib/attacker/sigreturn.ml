module Word64 = Pacstack_util.Word64
module Rng = Pacstack_util.Rng
module Machine = Pacstack_machine.Machine
module Kernel = Pacstack_machine.Kernel
module Image = Pacstack_machine.Image
module Memory = Pacstack_machine.Memory
module Trap = Pacstack_machine.Trap
module Reg = Pacstack_isa.Reg
module Scheme = Pacstack_harden.Scheme
module Compile = Pacstack_minic.Compile
module Scenarios = Pacstack_workloads.Scenarios

let victim_scheme = Scheme.pacstack

let step_until m ~instructions =
  while Machine.instructions_retired m < instructions && Machine.halted m = None do
    Machine.step m
  done

(* Fabricate a full signal frame whose restored PC is [evil] and redirect
   the machine to the sigreturn trampoline — the §6.3.2 premise of a raw
   [svc] gadget reachable by the adversary. *)
let forge_and_trigger m =
  match Adversary.symbol m "evil" with
  | None -> ()
  | Some evil ->
    let sp = Machine.get m Reg.SP in
    let frame = Int64.sub sp 512L in
    let ctx = Machine.save_context m in
    let words = Machine.context_words ctx in
    words.(32) <- evil;  (* PC *)
    words.(31) <- sp;    (* restored SP *)
    words.(28) <- 0xdeadL;  (* CR of the adversary's choosing *)
    Array.iteri
      (fun idx w -> ignore (Adversary.write m (Int64.add frame (Int64.of_int (8 * idx))) w))
      words;
    ignore (Adversary.write m (Int64.add frame (Int64.of_int (8 * 34))) 0L);
    (* the modelled gadget: control reaches the trampoline with SP pointing
       at the forged frame *)
    Machine.set m Reg.SP frame;
    Machine.set_pc m (Image.sigreturn_trampoline (Machine.image m))

let run_victim ~policy ~attach ~deliver_real_signal =
  let victim = Scenarios.sigreturn_victim in
  let expected = Adversary.benign_output victim_scheme victim in
  (* a benign signal prints 105 before the final sum *)
  let expected = if deliver_real_signal then 105L :: expected else expected in
  let program = Compile.compile ~scheme:victim_scheme victim in
  let kernel = Kernel.create ~signal_policy:policy (Rng.create 0x51637L) in
  let machine = Machine.load program in
  let proc = Kernel.adopt kernel machine in
  if attach then Machine.attach_hook machine "gadget" forge_and_trigger;
  (match if deliver_real_signal then Some (step_until machine ~instructions:400) else None with
  | Some () -> Kernel.deliver_signal kernel proc ~handler:"handler" ~signum:5
  | None -> ());
  let outcome = Kernel.run kernel proc ~fuel:2_000_000 in
  Adversary.classify ~expected machine outcome

let attack ~policy ?(deliver_real_signal = true) () =
  run_victim ~policy ~attach:true ~deliver_real_signal

let benign_roundtrip ~policy =
  match run_victim ~policy ~attach:false ~deliver_real_signal:true with
  | Adversary.No_effect -> true
  | Adversary.Hijacked | Adversary.Bent | Adversary.Detected _ -> false
