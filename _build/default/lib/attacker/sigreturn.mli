(** The §6.3.2 sigreturn attack and the Appendix B defence.

    The adversary fabricates a complete signal frame (every register,
    including PC and CR) on the stack and triggers an unwarranted
    [sigreturn] — modelling a victim binary that issues raw [svc]
    instructions, which is the case the paper identifies as unprotected by
    ASLR-only mitigations. With the Appendix B [asigret] chain the kernel
    refuses frames it never produced. *)

val attack :
  policy:Pacstack_machine.Kernel.signal_policy ->
  ?deliver_real_signal:bool ->
  unit -> Adversary.outcome
(** Runs the sigreturn victim under PACStack. [deliver_real_signal]
    (default true) lets a benign signal round-trip first, proving the
    defence does not break legitimate signals. Expected:
    [Sig_unprotected] → [Hijacked]; [Sig_chained] → [Detected]. *)

val benign_roundtrip : policy:Pacstack_machine.Kernel.signal_policy -> bool
(** No adversary: deliver a signal, let the handler run and sigreturn,
    check the program completes with the right output (compatibility). *)
