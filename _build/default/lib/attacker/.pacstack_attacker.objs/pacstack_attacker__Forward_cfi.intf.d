lib/attacker/forward_cfi.mli: Adversary
