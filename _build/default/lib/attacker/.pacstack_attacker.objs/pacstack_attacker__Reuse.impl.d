lib/attacker/reuse.ml: Adversary Int64 List Option Pacstack_harden Pacstack_machine Pacstack_minic Pacstack_util Pacstack_workloads
