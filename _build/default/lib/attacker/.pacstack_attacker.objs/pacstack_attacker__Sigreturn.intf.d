lib/attacker/sigreturn.mli: Adversary Pacstack_machine
