lib/attacker/gadget_scan.ml: Format List Pacstack_harden Pacstack_isa Pacstack_minic
