lib/attacker/gadget_scan.mli: Format Pacstack_harden Pacstack_isa Pacstack_minic
