lib/attacker/bruteforce.mli:
