lib/attacker/forward_cfi.ml: Adversary Int64 List Option Pacstack_harden Pacstack_machine Pacstack_minic Pacstack_workloads
