lib/attacker/adversary.ml: Format Int64 List Pacstack_isa Pacstack_machine Pacstack_minic Pacstack_util Pacstack_workloads
