lib/attacker/reuse.mli: Adversary Pacstack_harden
