lib/attacker/gadget.mli: Adversary Pacstack_pa Pacstack_qarma Pacstack_util
