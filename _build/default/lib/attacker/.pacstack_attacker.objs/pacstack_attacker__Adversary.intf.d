lib/attacker/adversary.mli: Format Pacstack_harden Pacstack_machine Pacstack_minic Pacstack_util
