module Instr = Pacstack_isa.Instr
module Reg = Pacstack_isa.Reg
module Program = Pacstack_isa.Program
module Scheme = Pacstack_harden.Scheme

type classification = Usable | Pa_guarded | Shadowed | Register_resident

type report = {
  total_returns : int;
  usable : int;
  pa_guarded : int;
  shadowed : int;
  register_resident : int;
}

let classification_to_string = function
  | Usable -> "usable"
  | Pa_guarded -> "PA-guarded"
  | Shadowed -> "shadowed"
  | Register_resident -> "register-resident"

(* Classify one return by the instructions leading to it (labels are
   transparent: any path reaching the return passes the same suffix in our
   single-epilogue code shape). *)
let classify_return ~window ret_reg =
  let rec scan = function
    | [] ->
      (* the return register was never reloaded from memory: a leaf whose
         LR stays in the register file cannot be corrupted by a memory
         adversary *)
      Register_resident
    | Instr.Autia (rd, _) :: _ when Reg.equal rd ret_reg -> Pa_guarded
    | Instr.Autiasp :: _ when Reg.equal ret_reg Reg.lr -> Pa_guarded
    | Instr.Ldr (rd, { Instr.base; _ }) :: _ when Reg.equal rd ret_reg && Reg.equal base Reg.shadow
      -> Shadowed
    (* an unguarded reload from regular memory: classic ROP material *)
    | Instr.Ldr (rd, _) :: _ when Reg.equal rd ret_reg -> Usable
    | Instr.Ldp (r1, r2, _) :: _ when Reg.equal r1 ret_reg || Reg.equal r2 ret_reg -> Usable
    | _ :: rest -> scan rest
  in
  scan window

let scan (p : Program.t) =
  let total = ref 0 and usable = ref 0 and guarded = ref 0 and shadowed = ref 0 in
  let resident = ref 0 in
  List.iter
    (fun f ->
      let instrs = Program.instructions f in
      (* walk with the reversed prefix as the lookback window *)
      let rec go prefix = function
        | [] -> ()
        | i :: rest ->
          (match i with
          | Instr.Retaa ->
            incr total;
            incr guarded
          | Instr.Ret r -> (
            incr total;
            match classify_return ~window:prefix r with
            | Usable -> incr usable
            | Pa_guarded -> incr guarded
            | Shadowed -> incr shadowed
            | Register_resident -> incr resident)
          | _ -> ());
          go (i :: prefix) rest
      in
      go [] instrs)
    p.funcs;
  {
    total_returns = !total;
    usable = !usable;
    pa_guarded = !guarded;
    shadowed = !shadowed;
    register_resident = !resident;
  }

let scan_scheme scheme program = scan (Pacstack_minic.Compile.compile ~scheme program)

let pp fmt r =
  Format.fprintf fmt "%d returns: %d usable, %d PA-guarded, %d shadowed, %d register-resident"
    r.total_returns r.usable r.pa_guarded r.shadowed r.register_resident
