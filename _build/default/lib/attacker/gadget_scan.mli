(** Static ROP-gadget-surface analysis of compiled binaries.

    A classic ROP gadget is a short instruction suffix ending in an
    unprotected return. This scanner walks a program's code image and
    classifies every return site:

    - {e usable}: a plain [ret] whose return address comes from attackable
      memory unguarded (the raw material of §2.1's ROP attacks);
    - {e PA-guarded}: the return is [retaa] or immediately preceded by an
      [autia] on the return-address register — reusing it requires
      forging a PAC;
    - {e shadowed}: a plain [ret] preceded by a shadow-stack reload of LR
      (protected only as long as the shadow stack location holds).

    The paper's §9.2 observation — "functions in a PACStack-protected
    library effectively remove a potentially large set of reusable
    gadgets" — becomes a measurable quantity here. *)

type classification =
  | Usable
  | Pa_guarded
  | Shadowed
  | Register_resident
      (** a leaf return whose LR never left the register file — out of a
          memory adversary's reach regardless of scheme *)

type report = {
  total_returns : int;
  usable : int;
  pa_guarded : int;
  shadowed : int;
  register_resident : int;
}

val classification_to_string : classification -> string

val scan : Pacstack_isa.Program.t -> report
(** Classifies every return site in the program. *)

val scan_scheme :
  Pacstack_harden.Scheme.t -> Pacstack_minic.Ast.program -> report
(** Compiles the program under a scheme and scans the result. *)

val pp : Format.formatter -> report -> unit
