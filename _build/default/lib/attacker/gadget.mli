(** The §6.3.1 signing-gadget analysis.

    Google Project Zero observed that an [aut]-then-[pac] sequence can be
    abused to produce a valid PAC for an arbitrary pointer: [aut] on a
    forged pointer strips the PAC and corrupts a high bit, and a following
    [pac] signs the stripped address while flipping one well-known PAC bit
    [p]; flipping [p] back yields a valid signed pointer.

    {!forge_with_gadget} reproduces that mechanic at the PA level.
    {!tail_call_attack} runs the Listing 8 scenario: in PACStack the
    [aut]/[pac] pair spans a tail call, but the intermediate value lives
    in CR, which the adversary cannot touch — so the forgery is detected
    at the tail-callee's return. *)

val forge_with_gadget :
  Pacstack_pa.Config.t -> Pacstack_qarma.Prf.t ->
  target:Pacstack_util.Word64.t -> modifier:Pacstack_util.Word64.t ->
  Pacstack_util.Word64.t
(** The signed pointer an adversary obtains for an arbitrary [target] by
    driving a forged pointer through [aut; pac] and flipping bit [p]. *)

val gadget_forges_valid_pointer :
  Pacstack_pa.Config.t -> Pacstack_qarma.Prf.t ->
  target:Pacstack_util.Word64.t -> modifier:Pacstack_util.Word64.t -> bool
(** True: the gadget works against a scheme that lets the adversary touch
    the intermediate value (demonstrates the vulnerability exists in our
    PA semantics, as in real ARMv8.3). *)

val tail_call_attack : masked:bool -> Adversary.outcome
(** The same forgery attempted against PACStack across a tail call
    (expected: detected). *)
