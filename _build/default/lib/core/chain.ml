module Word64 = Pacstack_util.Word64
module Config = Pacstack_pa.Config
module Pointer = Pacstack_pa.Pointer
module Pac = Pacstack_pa.Pac
module Prf = Pacstack_qarma.Prf

type t = {
  cfg : Config.t;
  prf : Prf.t;
  masked : bool;
  seed : Word64.t;
  mutable current : Word64.t;
  mutable stack : Word64.t list;  (* newest first; stored arets *)
  mutable depth : int;
}

type violation = { depth : int; expected : Word64.t; got : Word64.t }

let create ?(masked = true) ?(seed = 0L) ~cfg prf =
  { cfg; prf; masked; seed; current = seed; stack = []; depth = 0 }

let config t = t.cfg
let masked t = t.masked
let depth (t : t) = t.depth
let current t = t.current

let mask_value t ~modifier =
  (* H_k(0, aret_{i-1}) confined to the token field, as pacia(0, m)
     produces (§5.2). *)
  Pac.add t.cfg t.prf 0L ~modifier

let aret_of t ~ret ~modifier =
  let signed = Pac.add t.cfg t.prf ret ~modifier in
  if t.masked then Int64.logxor signed (mask_value t ~modifier) else signed

let push t ~ret =
  if not (Pointer.is_canonical t.cfg ret) || Word64.equal ret 0L then
    invalid_arg "Chain.push: return address must be canonical and non-zero";
  let aret = aret_of t ~ret ~modifier:t.current in
  t.stack <- t.current :: t.stack;
  t.current <- aret;
  t.depth <- t.depth + 1

let pop t =
  match t.stack with
  | [] -> invalid_arg "Chain.pop: empty chain"
  | prev :: rest ->
    let aret = t.current in
    let unmasked = if t.masked then Int64.logxor aret (mask_value t ~modifier:prev) else aret in
    t.stack <- rest;
    t.current <- prev;
    t.depth <- t.depth - 1;
    (match Pac.auth t.cfg t.prf unmasked ~modifier:prev with
    | Pac.Valid ret -> Ok ret
    | Pac.Invalid _ ->
      let expected =
        Pac.compute t.cfg t.prf ~address:(Pointer.address t.cfg unmasked) ~modifier:prev
      in
      Error { depth = t.depth + 1; expected; got = Pointer.pac_field t.cfg unmasked })

let stored t = Array.of_list (List.rev t.stack)

let tamper t i v =
  let arr = Array.of_list t.stack in
  let n = Array.length arr in
  if i < 0 || i >= n then invalid_arg "Chain.tamper";
  arr.(n - 1 - i) <- v;
  t.stack <- Array.to_list arr

let clone t = { t with stack = t.stack }
