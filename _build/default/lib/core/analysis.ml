module Stats = Pacstack_util.Stats

type violation_kind = On_graph | Off_graph_to_call_site | Off_graph_arbitrary

let pp_violation_kind fmt = function
  | On_graph -> Format.pp_print_string fmt "on-graph"
  | Off_graph_to_call_site -> Format.pp_print_string fmt "off-graph to call-site"
  | Off_graph_arbitrary -> Format.pp_print_string fmt "off-graph to arbitrary address"

let pow2 b = 2.0 ** float_of_int b

let table1_success_probability ~masked kind ~bits =
  match kind, masked with
  | On_graph, false -> 1.0
  | On_graph, true -> 1.0 /. pow2 bits
  | Off_graph_to_call_site, _ -> 1.0 /. pow2 bits
  | Off_graph_arbitrary, _ -> 1.0 /. pow2 (2 * bits)

let collision_harvest_mean ~bits = Stats.birthday_expected_tokens ~bits

let collision_probability ~bits ~harvested =
  Stats.birthday_collision_probability ~bits ~drawn:harvested

let guesses_divide_and_conquer ~bits = 2.0 *. ((pow2 bits +. 1.0) /. 2.0)
let guesses_reseeded ~bits = 2.0 *. pow2 bits
let guesses_independent ~bits = pow2 (2 * bits)
let single_process_guesses ~bits ~p = Stats.guesses_for_success ~bits ~p
