(** Closed-form security bounds from §4.3, §6.2 and Table 1. *)

type violation_kind =
  | On_graph
      (** the substituted [aret] follows the call graph (harvestable) *)
  | Off_graph_to_call_site
      (** leaves the call graph but targets a valid call-site return *)
  | Off_graph_arbitrary
      (** leaves the call graph to an address never used as a return *)

val pp_violation_kind : Format.formatter -> violation_kind -> unit

val table1_success_probability : masked:bool -> violation_kind -> bits:int -> float
(** The maximum adversary success probability of Table 1:
    on-graph 1 (unmasked) or 2^-b (masked); off-graph to call-site 2^-b;
    off-graph arbitrary 2^-2b. *)

val collision_harvest_mean : bits:int -> float
(** Mean number of harvested tokens before two collide,
    √(π·2^b/2) (§6.2.1) — ≈ 321 for b = 16. *)

val collision_probability : bits:int -> harvested:int -> float
(** Birthday bound for [harvested] tokens. *)

(** Expected number of guesses for the §4.3 brute-force strategies. *)

val guesses_divide_and_conquer : bits:int -> float
(** Shared keys, no re-seeding: the two stages are separable and each
    answer is fixed across siblings, so enumeration without replacement
    gives 2·(2^b+1)/2 ≈ 2^b. *)

val guesses_reseeded : bits:int -> float
(** Per-fork/thread re-seeding: each guess faces fresh randomness, two
    sequential geometric stages of mean 2^b: 2^(b+1). *)

val guesses_independent : bits:int -> float
(** Both tokens must be guessed in one shot: 2^(2b). *)

val single_process_guesses : bits:int -> p:float -> float
(** Guesses to reach success probability [p] when one failure is fatal
    (fresh key per run): log(1-p)/log(1-2^-b). *)
