(** The authenticated call stack as a pure data structure (§4).

    A chain binds every live return address into a sequence of [b]-bit
    authentication tokens:

    {v auth_i = H_k(ret_i, aret_{i-1})        aret_i = auth_i || ret_i v}

    with [aret_{-1} = seed]. Only the newest [aret_n] needs integrity
    (it lives in the CR register); everything older sits in attackable
    memory, which this model exposes via {!stored} / {!tamper}.

    With [masked = true] every stored token is XOR-masked with
    [H_k(0, aret_{i-1})] (§4.2), hiding token collisions from an adversary
    who can read the whole stack. *)

type t

type violation = {
  depth : int;          (** frames from the top when detected *)
  expected : Pacstack_util.Word64.t;
  got : Pacstack_util.Word64.t;
}

val create :
  ?masked:bool ->
  ?seed:Pacstack_util.Word64.t ->
  cfg:Pacstack_pa.Config.t ->
  Pacstack_qarma.Prf.t -> t
(** [masked] defaults to true; [seed] (the §4.3 re-seeding value, e.g. a
    thread id) defaults to 0. *)

val config : t -> Pacstack_pa.Config.t
val masked : t -> bool
val depth : t -> int

val current : t -> Pacstack_util.Word64.t
(** [aret_n] — the CR value. Never stored where {!tamper} can reach. *)

val push : t -> ret:Pacstack_util.Word64.t -> unit
(** Function call with return address [ret]: the previous [aret] moves to
    attackable storage and the new [aret] becomes current. The return
    address must be a canonical non-zero pointer. *)

val pop : t -> (Pacstack_util.Word64.t, violation) result
(** Function return: loads the stored [aret_{i-1}], verifies the current
    [aret_i] against it and, on success, returns [ret_i] and makes
    [aret_{i-1}] current. A verification failure models the translation
    fault a corrupted pointer causes (the chain is left popped, matching a
    crashed process). Raises [Invalid_argument] on an empty chain. *)

val stored : t -> Pacstack_util.Word64.t array
(** Adversary view of the stack: stored (masked) [aret] values, index 0 the
    oldest. Also visible: nothing else — masks are never stored (§5.2). *)

val tamper : t -> int -> Pacstack_util.Word64.t -> unit
(** Adversary write to a stored slot. *)

val aret_of : t -> ret:Pacstack_util.Word64.t -> modifier:Pacstack_util.Word64.t -> Pacstack_util.Word64.t
(** The authenticated return address the instrumentation would produce for
    [ret] under a given previous [aret] — the oracle the adversary gets by
    observing executions ({!push} uses exactly this). Masked iff the chain
    is. *)

val clone : t -> t
(** Deep copy (fork). *)
