lib/core/analysis.ml: Format Pacstack_util
