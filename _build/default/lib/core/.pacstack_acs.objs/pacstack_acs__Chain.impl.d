lib/core/chain.ml: Array Int64 List Pacstack_pa Pacstack_qarma Pacstack_util
