lib/core/games.mli: Analysis Format Pacstack_util
