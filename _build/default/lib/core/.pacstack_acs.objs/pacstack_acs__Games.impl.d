lib/core/games.ml: Analysis Array Float Format Hashtbl Int64 Pacstack_qarma Pacstack_util
