lib/core/chain.mli: Pacstack_pa Pacstack_qarma Pacstack_util
