(** A ConFIRM-flavoured compatibility micro-suite (§7.3).

    The paper runs the 11 Linux/AArch64-applicable ConFIRM tests and
    verifies they pass with and without PACStack. Each test here is a
    program exercising one corner case that historically breaks CFI
    schemes, with its expected output; {!run} executes it under a scheme
    and checks behaviour is unchanged. *)

type test = {
  name : string;
  description : string;
  program : Pacstack_minic.Ast.program;
  expected : int64 list;  (** required program output *)
  needs_kernel : bool;  (** uses signals/threads and must run under {!Pacstack_machine.Kernel} *)
  overrides : (string * Pacstack_harden.Scheme.t) list;
      (** per-function scheme overrides (the mixed-linkage test) *)
}

val all : test list
(** The 11 tests. *)

type outcome = Pass | Fail of string

val run : scheme:Pacstack_harden.Scheme.t -> test -> outcome

val run_all : scheme:Pacstack_harden.Scheme.t -> (test * outcome) list
