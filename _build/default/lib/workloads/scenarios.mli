(** Victim programs for the security experiments of §6.

    Each program contains a deliberate memory-corruption vulnerability
    marked by hook intrinsics; {!Pacstack_attacker} attaches to the hooks.
    All victims share the convention that the function [evil] — never
    legitimately called — prints {!evil_marker} when reached, so attack
    success is observable in the program output. *)

val evil_marker : int64

val disclose_hook : string
(** Hook inside function [a]: fires while [a]'s frame is live, letting the
    adversary read harvested values off the stack. *)

val overwrite_hook : string
(** Hook inside function [b]: fires while [b]'s frame is live, letting the
    adversary corrupt it (the Listing 6 buffer overflow). *)

val listing6 : rounds:int -> Pacstack_minic.Ast.program
(** The §6.1 reuse-attack victim: [func] calls [a] then [b] from two
    call sites that share the SP value; run for [rounds] iterations. The
    program prints a trace value after each round and 0 on clean exit. *)

val tail_call_victim : Pacstack_minic.Ast.program
(** The §6.3.1 signing-gadget victim: [a] ends in a tail call to [b]
    whose frame (holding the stored [aret]) is adversary-writable while
    [b] runs. *)

val sigreturn_victim : Pacstack_minic.Ast.program
(** The §6.3.2 victim: a long-running loop with a registered signal
    handler; the adversary fabricates a signal frame and forces a
    [sigreturn]. Defines [handler] (benign) and [evil]. *)

val unwind_victim : depth:int -> Pacstack_minic.Ast.program
(** §9.1 victim: [main] setjmps into a buffer, descends [depth] frames and
    longjmps back; hooks let the experiment capture/expire the buffer. *)
