lib/workloads/server.mli: Pacstack_harden Pacstack_minic
