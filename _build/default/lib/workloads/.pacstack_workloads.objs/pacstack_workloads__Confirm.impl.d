lib/workloads/confirm.ml: Int64 List Pacstack_harden Pacstack_machine Pacstack_minic Pacstack_util Printf String
