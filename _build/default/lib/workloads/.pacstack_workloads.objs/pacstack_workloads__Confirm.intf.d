lib/workloads/confirm.mli: Pacstack_harden Pacstack_minic
