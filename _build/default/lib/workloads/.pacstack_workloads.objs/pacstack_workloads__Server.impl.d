lib/workloads/server.ml: Float List Pacstack_harden Pacstack_machine Pacstack_minic Pacstack_util Printf
