lib/workloads/scenarios.ml: Pacstack_minic
