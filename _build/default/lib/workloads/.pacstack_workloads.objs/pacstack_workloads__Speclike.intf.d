lib/workloads/speclike.mli: Pacstack_harden Pacstack_minic
