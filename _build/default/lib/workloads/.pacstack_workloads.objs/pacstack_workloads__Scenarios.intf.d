lib/workloads/scenarios.mli: Pacstack_minic
