module Ast = Pacstack_minic.Ast
module B = Pacstack_minic.Build

let evil_marker = 7777L

let disclose_hook = "disclose"
let overwrite_hook = "overwrite"

(* The function the adversary wants to reach. Never called legitimately. *)
let evil_fn =
  Ast.fdef "evil" ~locals:[ Ast.Scalar "z" ]
    B.[
      print (i64 evil_marker);
      (* spin so that a hijacked control flow cannot stumble back into the
         legitimate trace *)
      set "z" (i 1);
      while_ (v "z" == i 1) [];
      ret (i 0);
    ]

(* §6.1 / Listing 6: func calls a (stack disclosure) and b (stack
   overwrite) from call sites that share the SP value, making their signed
   return addresses interchangeable under SP-modifier schemes. *)
let listing6 ~rounds =
  Ast.program
    [
      evil_fn;
      Ast.fdef "a" ~locals:[ Ast.Scalar "t" ]
        B.[
          Ast.Hook disclose_hook;
          set "t" (call "id" [ i 1 ]);
          ret (v "t");
        ];
      Ast.fdef "id" ~params:[ "x" ] B.[ ret (v "x") ];
      Ast.fdef "b" ~locals:[ Ast.Array ("buf", 64); Ast.Scalar "t" ]
        B.[
          store (idx "buf" (i 0)) (i 11);
          Ast.Hook overwrite_hook;
          set "t" (call "id" [ i 2 ]);
          ret (v "t" + load (idx "buf" (i 0)) - i 11);
        ];
      Ast.fdef "func" ~params:[ "k" ]
        ~locals:[ Ast.Scalar "x"; Ast.Scalar "y" ]
        B.[
          set "x" (call "a" []);
          set "y" (call "b" []);
          ret (v "x" + v "y");
        ];
      Ast.fdef "main"
        ~locals:[ Ast.Scalar "k"; Ast.Scalar "t" ]
        B.[
          for_ "k" ~from:(i 0) ~below:(i rounds)
            [ set "t" (call "func" [ v "k" ]); print (v "t") ];
          print (i 0);
          ret (i 0);
        ];
    ]

(* §6.3.1 / Listing 8: [a] ends in a tail call to [b]; the stored chain
   value in [b]'s frame is the adversary's only handle. *)
let tail_call_victim =
  Ast.program
    [
      evil_fn;
      Ast.fdef "b" ~params:[ "k" ]
        ~locals:[ Ast.Scalar "t" ]
        B.[
          Ast.Hook overwrite_hook;
          set "t" (call "id" [ v "k" ]);
          ret (v "t" + i 1);
        ];
      Ast.fdef "id" ~params:[ "x" ] B.[ ret (v "x") ];
      Ast.fdef "a" ~params:[ "k" ]
        ~locals:[ Ast.Scalar "t" ]
        B.[
          set "t" (call "id" [ v "k" + i 10 ]);
          Ast.Tail_call ("b", [ v "t" ]);
        ];
      Ast.fdef "main"
        ~locals:[ Ast.Scalar "x" ]
        B.[
          set "x" (call "a" [ i 5 ]);
          print (v "x");
          ret (i 0);
        ];
    ]

(* §6.3.2: a long-running request loop; [handler] is the benign signal
   handler, [gadget] marks the point where the adversary exercises its
   "reached the sigreturn trampoline" capability. *)
let sigreturn_victim =
  Ast.program
    [
      evil_fn;
      Ast.fdef "handler" ~params:[ "sig" ]
        B.[
          print (v "sig" + i 100);
          ret (i 0);
        ];
      Ast.fdef "work" ~params:[ "k" ] B.[ ret ((v "k" * i 31) lxor (v "k" lsr i 3)) ];
      Ast.fdef "main"
        ~locals:[ Ast.Scalar "k"; Ast.Scalar "s" ]
        B.[
          set "s" (i 0);
          for_ "k" ~from:(i 0) ~below:(i 4000)
            [
              set "s" (v "s" + call "work" [ v "k" ]);
              if_ ((v "k" land i 1023) == i 512) [ Ast.Hook "gadget" ] [];
            ];
          print (v "s");
          ret (i 0);
        ];
    ]

(* §9.1: setjmp in main, descend, longjmp back from the bottom. The hook
   at the bottom lets the experiment inspect/forge the jmp_buf and run the
   validated unwinder. *)
let unwind_victim ~depth =
  Ast.program
    ~globals:[ ("jb", 128) ]
    [
      Ast.fdef "down" ~params:[ "d" ]
        ~locals:[ Ast.Scalar "r" ]
        B.[
          if_ (v "d" == i 0)
            [ Ast.Hook "deep"; Ast.Longjmp (glob "jb", i 42) ]
            [];
          set "r" (call "down" [ v "d" - i 1 ]);
          ret (v "r");
        ];
      Ast.fdef "main"
        ~locals:[ Ast.Scalar "r"; Ast.Scalar "x" ]
        B.[
          Ast.Setjmp ("r", glob "jb");
          if_ (v "r" != i 0) [ print (v "r"); ret (i 0) ] [];
          set "x" (call "down" [ i depth ]);
          print (v "x");
          ret (i 1);
        ];
    ]
