module Word64 = Pacstack_util.Word64
module Reg = Pacstack_isa.Reg
module Instr = Pacstack_isa.Instr

type t = {
  m : Machine.t;
  breakpoints : (Word64.t, unit) Hashtbl.t;
  watchpoints : (Word64.t, Word64.t) Hashtbl.t;  (* addr -> last seen value *)
}

type stop =
  | Breakpoint of Word64.t
  | Watchpoint of Word64.t * Word64.t * Word64.t
  | Halted of int
  | Faulted of Trap.t
  | Out_of_fuel

let create m = { m; breakpoints = Hashtbl.create 8; watchpoints = Hashtbl.create 8 }

let break_at_addr t addr = Hashtbl.replace t.breakpoints addr ()

let break_at t sym =
  match Image.symbol (Machine.image t.m) sym with
  | Some addr -> break_at_addr t addr
  | None -> invalid_arg ("Debug.break_at: unknown symbol " ^ sym)

let current_value m addr =
  Option.value (Memory.peek64 (Machine.memory m) addr) ~default:0L

let watch t addr = Hashtbl.replace t.watchpoints addr (current_value t.m addr)

let clear t =
  Hashtbl.reset t.breakpoints;
  Hashtbl.reset t.watchpoints

let check_watchpoints t =
  Hashtbl.fold
    (fun addr old acc ->
      match acc with
      | Some _ -> acc
      | None ->
        let now = current_value t.m addr in
        if Word64.equal now old then None
        else begin
          Hashtbl.replace t.watchpoints addr now;
          Some (Watchpoint (addr, old, now))
        end)
    t.watchpoints None

let poll t =
  match Machine.halted t.m with
  | Some code -> Some (Halted code)
  | None -> (
    match check_watchpoints t with
    | Some s -> Some s
    | None ->
      if Hashtbl.mem t.breakpoints (Machine.pc t.m) then Some (Breakpoint (Machine.pc t.m))
      else None)

let step t =
  match Machine.step t.m with
  | () -> poll t
  | exception Trap.Fault f -> Some (Faulted f)

(* [step] advances before polling, so a breakpoint at the current PC does
   not immediately re-trigger. *)
let continue_ ?(fuel = 1_000_000) t =
  let rec go budget =
    if budget = 0 then Out_of_fuel
    else
      match step t with
      | Some s -> s
      | None -> go (budget - 1)
  in
  go fuel

let where t =
  let pc = Machine.pc t.m in
  let image = Machine.image t.m in
  match Image.function_at image pc with
  | Some f -> (
    match Image.function_bounds image f with
    | Some (first, _) -> Printf.sprintf "%s+%Ld" f (Int64.sub pc first)
    | None -> f)
  | None -> Printf.sprintf "0x%Lx" pc

let disassemble_around ?(window = 4) t =
  let image = Machine.image t.m in
  let pc = Machine.pc t.m in
  let buf = Buffer.create 256 in
  for k = -window to window do
    let addr = Int64.add pc (Int64.of_int (4 * k)) in
    match Image.fetch image addr with
    | None -> ()
    | Some i ->
      Buffer.add_string buf
        (Printf.sprintf "%s0x%Lx: %s\n" (if k = 0 then "=> " else "   ") addr (Instr.to_string i))
  done;
  Buffer.contents buf

let backtrace t =
  let image = Machine.image t.m in
  let mem = Machine.memory t.m in
  let rec walk acc depth fp =
    if depth > 256 || Word64.equal fp 0L then List.rev acc
    else
      match Memory.peek64 mem fp, Memory.peek64 mem (Int64.add fp 8L) with
      | Some caller_fp, Some ret ->
        let name =
          match Image.function_at image ret with
          | Some f -> f
          | None -> Printf.sprintf "0x%Lx" ret
        in
        walk (name :: acc) (depth + 1) caller_fp
      | _ -> List.rev acc
  in
  where t :: walk [] 0 (Machine.get t.m Reg.fp)
