(** ACS-validating stack unwinder (§9.1).

    Walks the frame-pointer chain of a PACStack-instrumented program,
    authenticating every frame's stored [aret] step by step — the
    libunwind extension the paper proposes for securing [longjmp] and C++
    exceptions. Frame convention (emitted by the PACStack hardening pass):
    [\[fp\] = caller FP], [\[fp+8\] = plain return address],
    [\[fp-16\] = stored (masked) aret_{i-1}]. *)

type frame = {
  return_address : Pacstack_util.Word64.t;  (** authenticated ret_i *)
  frame_pointer : Pacstack_util.Word64.t;
  func : string option;  (** function containing the return address *)
}

type error = {
  depth : int;  (** frames successfully validated before the failure *)
  reason : string;
}

val backtrace :
  ?masked:bool -> ?max_depth:int -> Machine.t -> (frame list, error) result
(** Validates the whole chain starting from the live CR and FP registers.
    [masked] (default true) matches the instrumentation variant. The list
    is innermost-first. *)

val unwind_to :
  ?masked:bool -> ?max_depth:int -> Machine.t ->
  target_sp:Pacstack_util.Word64.t ->
  target_aret:Pacstack_util.Word64.t ->
  (int, error) result
(** Frame-by-frame validated [longjmp]: succeeds with the unwind depth iff
    a validated frame matches both the target SP and the target [aret]
    (the freshness check that defeats expired [jmp_buf] reuse, §9.1). *)

val validated_longjmp :
  ?masked:bool -> ?max_depth:int -> Machine.t ->
  jmp_buf:Pacstack_util.Word64.t ->
  value:Pacstack_util.Word64.t ->
  (int, error) result
(** The §9.1 proposal made executable: validates the whole chain down to
    the environment saved in [jmp_buf] (layout of
    {!Pacstack_harden.Runtime}), authenticates the buffer's bound return
    address, and only then performs the non-local transfer — restoring the
    callee-saved registers, SP and PC on the machine. Returns the unwound
    depth; on any validation failure the machine is left untouched. *)
