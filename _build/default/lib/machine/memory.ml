module Word64 = Pacstack_util.Word64

type perm = { readable : bool; writable : bool; executable : bool }

let perm_r = { readable = true; writable = false; executable = false }
let perm_rw = { readable = true; writable = true; executable = false }
let perm_rx = { readable = true; writable = false; executable = true }

let pp_perm fmt p =
  Format.fprintf fmt "%c%c%c"
    (if p.readable then 'r' else '-')
    (if p.writable then 'w' else '-')
    (if p.executable then 'x' else '-')

type page = { data : Bytes.t; perm : perm }

type t = { pages : (int64, page) Hashtbl.t }

let page_size = 4096
let page_bits = 12

let create () = { pages = Hashtbl.create 64 }

let page_index addr = Int64.shift_right_logical addr page_bits
let page_offset addr = Int64.to_int (Int64.logand addr (Int64.of_int (page_size - 1)))

let map t ~addr ~size perm =
  if size <= 0 then invalid_arg "Memory.map: size";
  if perm.writable && perm.executable then invalid_arg "Memory.map: W^X violation";
  let first = page_index addr in
  let last = page_index (Int64.add addr (Int64.of_int (size - 1))) in
  let n = Int64.to_int (Int64.sub last first) in
  for i = 0 to n do
    let idx = Int64.add first (Int64.of_int i) in
    if Hashtbl.mem t.pages idx then
      invalid_arg (Printf.sprintf "Memory.map: page %Lx already mapped" idx)
  done;
  for i = 0 to n do
    let idx = Int64.add first (Int64.of_int i) in
    Hashtbl.replace t.pages idx { data = Bytes.make page_size '\000'; perm }
  done

let unmap t ~addr ~size =
  if size <= 0 then invalid_arg "Memory.unmap: size";
  let first = page_index addr in
  let last = page_index (Int64.add addr (Int64.of_int (size - 1))) in
  let n = Int64.to_int (Int64.sub last first) in
  for i = 0 to n do
    Hashtbl.remove t.pages (Int64.add first (Int64.of_int i))
  done

let protect t ~addr ~size perm =
  if size <= 0 then invalid_arg "Memory.protect: size";
  if perm.writable && perm.executable then invalid_arg "Memory.protect: W^X violation";
  let first = page_index addr in
  let last = page_index (Int64.add addr (Int64.of_int (size - 1))) in
  let n = Int64.to_int (Int64.sub last first) in
  for i = 0 to n do
    let idx = Int64.add first (Int64.of_int i) in
    match Hashtbl.find_opt t.pages idx with
    | None -> invalid_arg (Printf.sprintf "Memory.protect: page %Lx not mapped" idx)
    | Some p -> Hashtbl.replace t.pages idx { p with perm }
  done

let find t addr = Hashtbl.find_opt t.pages (page_index addr)

let is_mapped t addr = find t addr <> None
let perm_at t addr = Option.map (fun p -> p.perm) (find t addr)

let page_for t addr access =
  match find t addr with
  | None -> raise (Trap.Fault (Trap.Unmapped (addr, access)))
  | Some p -> p

let load8 t addr =
  let p = page_for t addr Trap.Read in
  if not p.perm.readable then raise (Trap.Fault (Trap.Permission (addr, Trap.Read)));
  Char.code (Bytes.get p.data (page_offset addr))

let store8 t addr v =
  let p = page_for t addr Trap.Write in
  if not p.perm.writable then raise (Trap.Fault (Trap.Permission (addr, Trap.Write)));
  Bytes.set p.data (page_offset addr) (Char.chr (v land 0xff))

let load64 t addr =
  (* Fast path: the common aligned access within one page. *)
  let off = page_offset addr in
  if off <= page_size - 8 then begin
    let p = page_for t addr Trap.Read in
    if not p.perm.readable then raise (Trap.Fault (Trap.Permission (addr, Trap.Read)));
    Bytes.get_int64_le p.data off
  end
  else
    let rec go i acc =
      if i < 0 then acc
      else go (i - 1) (Int64.logor (Int64.shift_left acc 8) (Int64.of_int (load8 t (Int64.add addr (Int64.of_int i)))))
    in
    go 7 0L

let store64 t addr v =
  let off = page_offset addr in
  if off <= page_size - 8 then begin
    let p = page_for t addr Trap.Write in
    if not p.perm.writable then raise (Trap.Fault (Trap.Permission (addr, Trap.Write)));
    Bytes.set_int64_le p.data off v
  end
  else
    for i = 0 to 7 do
      store8 t (Int64.add addr (Int64.of_int i)) (Int64.to_int (Word64.extract v ~lo:(8 * i) ~width:8))
    done

let check_exec t addr =
  let p = page_for t addr Trap.Execute in
  if not p.perm.executable then raise (Trap.Fault (Trap.Permission (addr, Trap.Execute)))

let peek64 t addr =
  match find t addr with
  | None -> None
  | Some _ -> (
    (* Crossing into an unmapped page also yields None. *)
    try
      let rec go i acc =
        if i < 0 then acc
        else
          match find t (Int64.add addr (Int64.of_int i)) with
          | None -> raise Exit
          | Some p ->
            let b = Char.code (Bytes.get p.data (page_offset (Int64.add addr (Int64.of_int i)))) in
            go (i - 1) (Int64.logor (Int64.shift_left acc 8) (Int64.of_int b))
      in
      Some (go 7 0L)
    with Exit -> None)

let poke64 t addr v =
  let writable_at a =
    match find t a with Some p -> p.perm.writable | None -> false
  in
  let ok = ref true in
  for i = 0 to 7 do
    if not (writable_at (Int64.add addr (Int64.of_int i))) then ok := false
  done;
  if !ok then
    for i = 0 to 7 do
      let a = Int64.add addr (Int64.of_int i) in
      let p = page_for t a Trap.Write in
      Bytes.set p.data (page_offset a) (Char.chr (Int64.to_int (Word64.extract v ~lo:(8 * i) ~width:8)))
    done;
  !ok

let copy t =
  let pages = Hashtbl.create (Hashtbl.length t.pages) in
  Hashtbl.iter (fun k p -> Hashtbl.replace pages k { p with data = Bytes.copy p.data }) t.pages;
  { pages }

let mapped_ranges t =
  let idxs = Hashtbl.fold (fun k p acc -> (k, p.perm) :: acc) t.pages [] in
  let idxs = List.sort (fun (a, _) (b, _) -> Int64.unsigned_compare a b) idxs in
  let rec runs acc = function
    | [] -> List.rev acc
    | (idx, perm) :: rest -> (
      match acc with
      | (start, size, p) :: tl
        when p = perm && Int64.equal (Int64.add start (Int64.of_int size)) (Int64.shift_left idx page_bits) ->
        runs ((start, size + page_size, p) :: tl) rest
      | _ -> runs ((Int64.shift_left idx page_bits, page_size, perm) :: acc) rest)
  in
  runs [] idxs
