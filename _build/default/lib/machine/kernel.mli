(** A minimal EL1 personality on top of {!Machine}.

    Provides what the paper assumes of Linux 5.0 (§2.2, §5.4, §6.3.2):
    per-process PA keys regenerated on [exec], [fork] into sibling
    processes that share keys, kernel-side storage of thread contexts so a
    suspended thread's CR is unreachable from user space, signal delivery
    and [sigreturn] — optionally hardened with the Appendix B
    authenticated signal-return chain.

    Syscall ABI (number in the [svc] immediate):
    - 0: exit, code in X0
    - 1: debug print of X0
    - 2: fork — child's X0 = 0, parent's X0 = child pid
    - 3: thread spawn — X0 entry address, X1 stack top
    - 4: yield to the next runnable thread of this process
    - 5: sigreturn
    - 6: getpid into X0
    - 7: mprotect — X0 address, X1 size, X2 protection (r=4, w=2, x=1);
      X0 becomes 0 on success, -1 when refused (W⊕X, assumption A1, or
      unmapped pages) *)

type signal_policy =
  | Sig_unprotected  (** frames validated by nothing, as in mainline Linux *)
  | Sig_chained      (** the Appendix B [asigret] chain, keyed with GA *)
  | Sig_chained_full
      (** Appendix B's stronger variant: the chain covers every saved
          register (a pacga fold over the whole frame), so forging any
          register — not just PC/CR — is detected *)

type t
type proc

val create :
  ?signal_policy:signal_policy ->
  ?fast_keys:bool ->
  Pacstack_util.Rng.t -> t
(** [fast_keys] (default true) selects the mixer-backed PRF for generated
    key sets. *)

val boot : t -> Pacstack_isa.Program.t -> proc
(** Loads the program into a fresh machine with fresh PA keys and
    registers it as a process. *)

val adopt : t -> Machine.t -> proc
(** Registers an existing machine as a process (its syscall handler is
    replaced). *)

val machine : proc -> Machine.t
val pid : proc -> int
val processes : t -> proc list
(** All live processes, oldest first. *)

val children : t -> proc -> proc list

val exec : t -> proc -> Pacstack_isa.Program.t -> unit
(** Replaces the process image and — as Linux does — generates a fresh PA
    key set. *)

val deliver_signal : t -> proc -> handler:string -> signum:int -> unit
(** Suspends the process, pushes the signal frame onto the user stack and
    redirects execution to [handler] with LR pointing at the sigreturn
    trampoline. Raises [Invalid_argument] if the handler symbol is
    unknown. *)

val signal_depth : proc -> int

val thread_count : proc -> int
(** Runnable-but-suspended thread contexts held by the kernel. *)

val run : ?fuel:int -> t -> proc -> Machine.outcome
(** Runs one process to completion (other processes are untouched —
    scheduling across processes is driven by the experiment). *)

val run_all :
  ?fuel:int -> ?quantum:int -> t -> (proc * Machine.outcome) list
(** Round-robin scheduler over every live process (parents and forked
    children), [quantum] instructions per slice; a faulting process is
    killed with code 139, as a crashing sibling would be. Returns the
    final outcome of every process. *)

val run_preemptive : ?fuel:int -> quantum:int -> t -> proc -> Machine.outcome
(** Like {!run}, but a timer preempts the running thread every [quantum]
    retired instructions and rotates to the next runnable thread of the
    process — §5.4's register save/restore under involuntary context
    switches. The preempted context is kernel-private, as with [yield]. *)
