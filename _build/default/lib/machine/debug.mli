(** A small debugger over the simulated machine: symbolic breakpoints,
    memory watchpoints, and state inspection. Used by tests and handy when
    developing new instrumentation passes. *)

type t

val create : Machine.t -> t

val break_at : t -> string -> unit
(** Break when PC reaches the named function's entry. Raises
    [Invalid_argument] for unknown symbols. *)

val break_at_addr : t -> Pacstack_util.Word64.t -> unit

val watch : t -> Pacstack_util.Word64.t -> unit
(** Break when the 64-bit word at the address changes value. *)

val clear : t -> unit
(** Remove all breakpoints and watchpoints. *)

type stop =
  | Breakpoint of Pacstack_util.Word64.t
  | Watchpoint of Pacstack_util.Word64.t * Pacstack_util.Word64.t * Pacstack_util.Word64.t
      (** address, old value, new value *)
  | Halted of int
  | Faulted of Trap.t
  | Out_of_fuel

val continue_ : ?fuel:int -> t -> stop
(** Run until something interesting happens. A breakpoint hit at the
    current PC does not immediately re-trigger. *)

val step : t -> stop option
(** Single instruction; [None] if execution simply advanced. *)

val where : t -> string
(** "function+offset" for the current PC. *)

val disassemble_around : ?window:int -> t -> string
(** Disassembly of the instructions surrounding PC, the current one
    marked. *)

val backtrace : t -> string list
(** Frame-pointer-chain backtrace (unvalidated — works for all schemes);
    innermost first. *)
