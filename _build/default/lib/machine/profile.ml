module Instr = Pacstack_isa.Instr
module Reg = Pacstack_isa.Reg

type entry = {
  mutable cycles : int;
  mutable instructions : int;
  mutable activations : int;
}

type t = {
  table : (string, entry) Hashtbl.t;
  edges : (string * string, int) Hashtbl.t;
  (* sorted (first, past, name) for binary search, plus a one-entry cache *)
  bounds : (int64 * int64 * string) array;
  mutable cached : (int64 * int64 * string) option;
  mutable total_instr : int;
  mutable total_calls : int;
  mutable pending_call : string option;  (* caller of an in-flight bl/blr *)
}

let function_of t addr =
  let hit (lo, hi, _) = Int64.unsigned_compare addr lo >= 0 && Int64.unsigned_compare addr hi < 0 in
  match t.cached with
  | Some ((_, _, name) as c) when hit c -> Some name
  | _ ->
    let rec search lo hi =
      if lo >= hi then None
      else
        let mid = (lo + hi) / 2 in
        let ((first, past, name) as c) = t.bounds.(mid) in
        if Int64.unsigned_compare addr first < 0 then search lo mid
        else if Int64.unsigned_compare addr past >= 0 then search (mid + 1) hi
        else begin
          t.cached <- Some c;
          Some name
        end
    in
    search 0 (Array.length t.bounds)

let entry t name =
  match Hashtbl.find_opt t.table name with
  | Some e -> e
  | None ->
    let e = { cycles = 0; instructions = 0; activations = 0 } in
    Hashtbl.replace t.table name e;
    e

let trace t m instr =
  match function_of t (Machine.pc m) with
  | None -> ()
  | Some name ->
    let e = entry t name in
    e.cycles <- e.cycles + Instr.cycles instr;
    e.instructions <- e.instructions + 1;
    t.total_instr <- t.total_instr + 1;
    (* the previous instruction was a call landing here *)
    (match t.pending_call with
    | Some caller ->
      e.activations <- e.activations + 1;
      t.total_calls <- t.total_calls + 1;
      let key = (caller, name) in
      Hashtbl.replace t.edges key (1 + Option.value (Hashtbl.find_opt t.edges key) ~default:0);
      t.pending_call <- None
    | None -> ());
    (match instr with
    | Instr.Bl _ | Instr.Blr _ -> t.pending_call <- Some name
    | _ -> ())

let attach m =
  let image = Machine.image m in
  let program = Image.program image in
  let bounds =
    List.filter_map
      (fun (f : Pacstack_isa.Program.func) ->
        Option.map (fun (first, past) -> (first, past, f.name)) (Image.function_bounds image f.name))
      program.funcs
  in
  let bounds = Array.of_list bounds in
  Array.sort (fun (a, _, _) (b, _, _) -> Int64.unsigned_compare a b) bounds;
  let t =
    {
      table = Hashtbl.create 32;
      edges = Hashtbl.create 32;
      bounds;
      cached = None;
      total_instr = 0;
      total_calls = 0;
      pending_call = None;
    }
  in
  Machine.set_tracer m (Some (fun m instr -> trace t m instr));
  t

let detach m = Machine.set_tracer m None

let functions t =
  Hashtbl.fold (fun k v acc -> (k, v) :: acc) t.table []
  |> List.sort (fun (_, a) (_, b) -> Int.compare b.cycles a.cycles)

let entry_of t name = Hashtbl.find_opt t.table name

let call_edges t =
  Hashtbl.fold (fun k v acc -> (k, v) :: acc) t.edges []
  |> List.sort (fun (_, a) (_, b) -> Int.compare b a)

let total_calls t = t.total_calls

let call_density t =
  if t.total_instr = 0 then 0.0
  else 1000.0 *. float_of_int t.total_calls /. float_of_int t.total_instr

let pp fmt t =
  Format.fprintf fmt "%-24s %10s %10s %8s@." "function" "cycles" "instrs" "calls";
  List.iter
    (fun (name, e) ->
      Format.fprintf fmt "%-24s %10d %10d %8d@." name e.cycles e.instructions e.activations)
    (functions t)
