module Word64 = Pacstack_util.Word64
module Rng = Pacstack_util.Rng
module Keys = Pacstack_pa.Keys
module Prf = Pacstack_qarma.Prf
module Reg = Pacstack_isa.Reg

type signal_policy = Sig_unprotected | Sig_chained | Sig_chained_full

type t = {
  rng : Rng.t;
  fast_keys : bool;
  signal_policy : signal_policy;
  mutable next_pid : int;
  mutable procs : proc list;  (* newest first *)
}

and proc = {
  pid : int;
  parent : int option;
  mutable m : Machine.t;
  mutable sig_ref : Word64.t;  (* kernel-side asigret reference, 0 = none *)
  mutable sig_depth : int;
  mutable threads : Machine.context list;  (* suspended contexts, kernel-side *)
}

let create ?(signal_policy = Sig_unprotected) ?(fast_keys = true) rng =
  { rng; fast_keys; signal_policy; next_pid = 1; procs = [] }

let machine p = p.m
let pid p = p.pid
let processes t = List.rev t.procs
let children t p = List.filter (fun q -> q.parent = Some p.pid) (processes t)
let signal_depth p = p.sig_depth
let thread_count p = List.length p.threads

(* Signal frame: 34 context words + the previous asigret chain value + one
   pad word to keep SP 16-byte aligned. *)
let frame_words = 36
let frame_bytes = frame_words * 8

(* The Appendix B chain value binding the interrupted PC and CR to all
   outer interrupted contexts, keyed with the generic (GA) key. *)
let sig_token m ~pc ~cr ~prev =
  let ga = Keys.get (Machine.keys m) Keys.GA in
  Prf.mac64 ga ~data:pc ~modifier:(Int64.logxor prev (Word64.rotl cr 17))

(* Appendix B's stronger variant: "all register values could be included
   in the asigret calculation using the pacga instruction" — a pacga-style
   fold over the whole saved context. *)
let sig_token_full m ~words ~prev =
  let ga = Keys.get (Machine.keys m) Keys.GA in
  Array.fold_left (fun acc w -> Prf.mac64 ga ~data:w ~modifier:acc) prev words

let do_sigreturn t p =
  let m = p.m in
  let sp = Machine.get m Reg.SP in
  let words = Array.init 34 (fun i -> Memory.load64 (Machine.memory m) (Int64.add sp (Int64.of_int (8 * i)))) in
  let prev = Memory.load64 (Machine.memory m) (Int64.add sp (Int64.of_int (8 * 34))) in
  let ctx = Machine.context_of_words words in
  let accept () =
    p.sig_depth <- max 0 (p.sig_depth - 1);
    p.sig_ref <- prev;
    Machine.restore_context m ctx
  in
  match t.signal_policy with
  | Sig_unprotected -> accept ()
  | Sig_chained | Sig_chained_full ->
    let expected =
      match t.signal_policy with
      | Sig_chained_full -> sig_token_full m ~words ~prev
      | Sig_chained | Sig_unprotected ->
        let pc = Machine.context_pc ctx in
        let cr = Machine.context_get ctx Reg.cr in
        sig_token m ~pc ~cr ~prev
    in
    if Word64.equal expected p.sig_ref && p.sig_depth > 0 then accept ()
    else
      (* forged or replayed frame: the kernel terminates the process *)
      Machine.set_halted m 139

let rec handler t p m n =
  match n with
  | 0 -> Machine.set_halted m (Int64.to_int (Machine.get m (Reg.x 0)))
  | 1 -> Machine.push_output m (Machine.get m (Reg.x 0))
  | 2 ->
    let child_m = Machine.clone m in
    let child =
      {
        pid = t.next_pid;
        parent = Some p.pid;
        m = child_m;
        sig_ref = p.sig_ref;
        sig_depth = p.sig_depth;
        threads = [];
      }
    in
    t.next_pid <- t.next_pid + 1;
    Machine.set child_m (Reg.x 0) 0L;
    Machine.set m (Reg.x 0) (Int64.of_int child.pid);
    (* the child must answer its own syscalls *)
    Machine.set_syscall_handler child_m (fun m n -> handler t child m n);
    t.procs <- child :: t.procs
  | 3 ->
    let entry = Machine.get m (Reg.x 0) in
    let stack = Machine.get m (Reg.x 1) in
    let ctx = Machine.save_context m in
    let words = Machine.context_words ctx in
    let words = Array.copy words in
    words.(31) <- stack;  (* SP *)
    words.(32) <- entry;  (* PC *)
    words.(30) <- Image.halt_addr (Machine.image m);  (* LR: thread exit *)
    p.threads <- p.threads @ [ Machine.context_of_words words ]
  | 4 -> (
    match p.threads with
    | [] -> ()
    | next :: rest ->
      let current = Machine.save_context m in
      p.threads <- rest @ [ current ];
      Machine.restore_context m next)
  | 5 -> do_sigreturn t p
  | 6 -> Machine.set m (Reg.x 0) (Int64.of_int p.pid)
  | 7 ->
    (* mprotect(addr, size, prot): prot bits r=4 w=2 x=1. The kernel is
       the guardian of assumption A1 — W+X requests are refused. *)
    let addr = Machine.get m (Reg.x 0) in
    let size = Int64.to_int (Machine.get m (Reg.x 1)) in
    let prot = Int64.to_int (Machine.get m (Reg.x 2)) in
    let perm =
      {
        Memory.readable = prot land 4 <> 0;
        writable = prot land 2 <> 0;
        executable = prot land 1 <> 0;
      }
    in
    let result =
      match Memory.protect (Machine.memory m) ~addr ~size perm with
      | () -> 0L
      | exception Invalid_argument _ -> -1L
    in
    Machine.set m (Reg.x 0) result
  | n -> raise (Trap.Fault (Trap.Undefined (Printf.sprintf "unknown syscall %d" n)))

let register t machine ~parent =
  let p = { pid = t.next_pid; parent; m = machine; sig_ref = 0L; sig_depth = 0; threads = [] } in
  t.next_pid <- t.next_pid + 1;
  Machine.set_syscall_handler machine (fun m n -> handler t p m n);
  t.procs <- p :: t.procs;
  p

let boot t program =
  let keys = Keys.generate ~fast:t.fast_keys t.rng in
  let machine = Machine.load ~keys ~rng:(Rng.split t.rng) program in
  register t machine ~parent:None

let adopt t machine = register t machine ~parent:None

let exec t p program =
  let keys = Keys.generate ~fast:t.fast_keys t.rng in
  let machine = Machine.load ~keys ~rng:(Rng.split t.rng) program in
  Machine.set_syscall_handler machine (fun m n -> handler t p m n);
  p.m <- machine;
  p.sig_ref <- 0L;
  p.sig_depth <- 0;
  p.threads <- []

let deliver_signal t p ~handler ~signum =
  let m = p.m in
  let image = Machine.image m in
  let handler_addr =
    match Image.symbol image handler with
    | Some a -> a
    | None -> invalid_arg ("Kernel.deliver_signal: unknown handler " ^ handler)
  in
  let ctx = Machine.save_context m in
  let words = Machine.context_words ctx in
  let sp = Int64.sub (Machine.get m Reg.SP) (Int64.of_int frame_bytes) in
  Array.iteri
    (fun i w -> Memory.store64 (Machine.memory m) (Int64.add sp (Int64.of_int (8 * i))) w)
    words;
  Memory.store64 (Machine.memory m) (Int64.add sp (Int64.of_int (8 * 34))) p.sig_ref;
  (match t.signal_policy with
  | Sig_unprotected -> ()
  | Sig_chained ->
    let pc = Machine.context_pc ctx in
    let cr = Machine.context_get ctx Reg.cr in
    p.sig_ref <- sig_token m ~pc ~cr ~prev:p.sig_ref
  | Sig_chained_full -> p.sig_ref <- sig_token_full m ~words ~prev:p.sig_ref);
  p.sig_depth <- p.sig_depth + 1;
  Machine.set m Reg.SP sp;
  Machine.set m (Reg.x 0) (Int64.of_int signum);
  Machine.set m Reg.lr (Image.sigreturn_trampoline image);
  Machine.set_pc m handler_addr

let rotate_threads p =
  match p.threads with
  | [] -> ()
  | next :: rest ->
    let current = Machine.save_context p.m in
    p.threads <- rest @ [ current ];
    Machine.restore_context p.m next

let run ?fuel t p =
  ignore t;
  Machine.run ?fuel p.m

(* Round-robin across all live processes of the kernel, a time slice of
   [quantum] retired instructions each. *)
let run_all ?(fuel = 10_000_000) ?(quantum = 1000) t =
  if quantum <= 0 then invalid_arg "Kernel.run_all: quantum";
  let live () = List.filter (fun p -> Machine.halted p.m = None) (processes t) in
  let rec slice budget = function
    | [] -> (
      match live () with
      | [] -> List.map (fun p -> (p, Machine.run ~fuel:0 p.m)) (processes t)
      | again -> if budget <= 0 then [] else slice budget again)
    | p :: rest ->
      let rec steps n =
        if n = 0 || Machine.halted p.m <> None then ()
        else
          match Machine.step p.m with
          | () -> steps (n - 1)
          | exception Trap.Fault _ -> Machine.set_halted p.m 139
      in
      steps (min quantum budget);
      slice (budget - quantum) rest
  in
  ignore (slice fuel (live ()));
  List.map (fun p -> (p, Machine.run ~fuel:0 p.m)) (processes t)

(* Preemptive scheduling: a timer interrupt every [quantum] retired
   instructions forces a thread switch, the registers of the preempted
   thread moving into kernel-private storage exactly as on a voluntary
   yield (§5.4 holds under preemption too). *)
let run_preemptive ?(fuel = 10_000_000) ~quantum t p =
  ignore t;
  if quantum <= 0 then invalid_arg "Kernel.run_preemptive: quantum";
  let m = p.m in
  let rec go budget slice =
    match Machine.halted m with
    | Some code -> Machine.Halted code
    | None ->
      if budget = 0 then Machine.Out_of_fuel
      else if slice = 0 then begin
        rotate_threads p;
        go budget quantum
      end
      else (
        match Machine.step m with
        | () -> go (budget - 1) (slice - 1)
        | exception Trap.Fault f -> Machine.Faulted f)
  in
  go fuel quantum
