(** Execution profiler: per-function cycle/instruction/call attribution
    and dynamic call-graph extraction.

    Used by the evaluation to substantiate the paper's §7.1 claim that
    instrumentation overhead is proportional to function-call frequency —
    {!call_density} is the measured calls-per-kilo-instruction figure
    reported alongside Figure 5. *)

type entry = {
  mutable cycles : int;
  mutable instructions : int;
  mutable activations : int;  (** times entered via [bl]/[blr] *)
}

type t

val attach : Machine.t -> t
(** Installs the profiler as the machine's tracer (replacing any other). *)

val detach : Machine.t -> unit

val functions : t -> (string * entry) list
(** Per-function totals, hottest (by cycles) first. *)

val entry_of : t -> string -> entry option

val call_edges : t -> ((string * string) * int) list
(** Dynamic call graph: ((caller, callee), count), heaviest first. *)

val total_calls : t -> int

val call_density : t -> float
(** Calls per 1000 retired instructions. *)

val pp : Format.formatter -> t -> unit
(** A sorted flat profile. *)
