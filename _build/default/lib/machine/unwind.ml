module Word64 = Pacstack_util.Word64
module Pac = Pacstack_pa.Pac
module Keys = Pacstack_pa.Keys
module Reg = Pacstack_isa.Reg

type frame = {
  return_address : Word64.t;
  frame_pointer : Word64.t;
  func : string option;
}

type error = { depth : int; reason : string }

let mask_of m ~aret_prev =
  (* pacia(0, aret_prev): a pointer whose address bits are zero and whose
     PAC field is the mask — XORing it into an aret masks/unmasks exactly
     the auth part (Listing 3). *)
  Pac.add (Machine.config m) (Keys.get (Machine.keys m) Keys.IA) 0L ~modifier:aret_prev

(* Validate one frame: authenticate the live [aret] against the stored
   [aret_{i-1}] at [fp-16] and follow the frame-record link at [fp]. *)
let step_frame ~masked m ~aret ~fp =
  let mem = Machine.memory m in
  let cfg = Machine.config m in
  let ia = Keys.get (Machine.keys m) Keys.IA in
  match Memory.peek64 mem (Int64.sub fp 16L), Memory.peek64 mem fp with
  | None, _ | _, None -> Error "frame record outside mapped memory"
  | Some aret_prev, Some caller_fp ->
    let unmasked = if masked then Int64.logxor aret (mask_of m ~aret_prev) else aret in
    (match Pac.auth cfg ia unmasked ~modifier:aret_prev with
    | Pac.Invalid _ -> Error "authentication failure"
    | Pac.Valid ret -> Ok (ret, aret_prev, caller_fp))

let backtrace ?(masked = true) ?(max_depth = 4096) m =
  let rec go depth aret fp acc =
    if Word64.equal aret 0L then Ok (List.rev acc)
    else if depth >= max_depth then Error { depth; reason = "max depth exceeded" }
    else
      match step_frame ~masked m ~aret ~fp with
      | Error reason -> Error { depth; reason }
      | Ok (ret, aret_prev, caller_fp) ->
        let frame =
          { return_address = ret; frame_pointer = fp; func = Image.function_at (Machine.image m) ret }
        in
        go (depth + 1) aret_prev caller_fp (frame :: acc)
  in
  go 0 (Machine.get m Reg.cr) (Machine.get m Reg.fp) []

(* jmp_buf slot offsets (kept in sync with Pacstack_harden.Runtime) *)
let slot_x i = 8 * (i - 19)
let slot_fp = 80
let slot_lr = 88
let slot_sp = 96
let slot_x18 = 104

let validated_longjmp ?(masked = true) ?(max_depth = 4096) m ~jmp_buf ~value =
  let mem = Machine.memory m in
  let read off = Memory.peek64 mem (Int64.add jmp_buf (Int64.of_int off)) in
  match read (slot_x 28), read slot_sp, read slot_lr with
  | Some target_aret, Some target_sp, Some bound_lr -> (
    let rec walk depth aret fp =
      if Word64.equal aret target_aret && Int64.unsigned_compare target_sp fp <= 0 then Ok depth
      else if Word64.equal aret 0L then
        Error { depth; reason = "target frame not found in validated chain" }
      else if depth >= max_depth then Error { depth; reason = "max depth exceeded" }
      else
        match step_frame ~masked m ~aret ~fp with
        | Error reason -> Error { depth; reason }
        | Ok (_ret, aret_prev, caller_fp) -> walk (depth + 1) aret_prev caller_fp
    in
    match walk 0 (Machine.get m Reg.cr) (Machine.get m Reg.fp) with
    | Error e -> Error e
    | Ok depth -> (
      (* authenticate the bound return address exactly as the Listing 5
         wrapper does *)
      let cfg = Machine.config m in
      let ia = Pacstack_pa.Keys.get (Machine.keys m) Pacstack_pa.Keys.IA in
      let sp_binding = Pac.add cfg ia target_sp ~modifier:target_aret in
      let unbound = Int64.logxor bound_lr sp_binding in
      match Pac.auth cfg ia unbound ~modifier:target_aret with
      | Pac.Invalid _ -> Error { depth; reason = "jmp_buf return address failed authentication" }
      | Pac.Valid ret ->
        (* perform the transfer: restore the saved environment *)
        let restore reg off = Option.iter (Machine.set m reg) (read off) in
        for r = 19 to 28 do
          restore (Reg.x r) (slot_x r)
        done;
        restore Reg.fp slot_fp;
        restore Reg.shadow slot_x18;
        Machine.set m Reg.SP target_sp;
        Machine.set m (Reg.x 0) (if Word64.equal value 0L then 1L else value);
        Machine.set_pc m ret;
        Ok depth))
  | _ -> Error { depth = 0; reason = "jmp_buf outside mapped memory" }

let unwind_to ?(masked = true) ?(max_depth = 4096) m ~target_sp ~target_aret =
  let rec go depth aret fp =
    if Word64.equal aret target_aret && Int64.unsigned_compare target_sp fp <= 0 then Ok depth
    else if Word64.equal aret 0L then
      Error { depth; reason = "target frame not found in validated chain" }
    else if depth >= max_depth then Error { depth; reason = "max depth exceeded" }
    else
      match step_frame ~masked m ~aret ~fp with
      | Error reason -> Error { depth; reason }
      | Ok (_ret, aret_prev, caller_fp) -> go (depth + 1) aret_prev caller_fp
  in
  go 0 (Machine.get m Reg.cr) (Machine.get m Reg.fp)
