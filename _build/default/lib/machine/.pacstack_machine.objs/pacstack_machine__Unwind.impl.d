lib/machine/unwind.ml: Image Int64 List Machine Memory Option Pacstack_isa Pacstack_pa Pacstack_util
