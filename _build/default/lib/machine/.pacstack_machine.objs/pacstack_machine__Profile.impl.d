lib/machine/profile.ml: Array Format Hashtbl Image Int Int64 List Machine Option Pacstack_isa
