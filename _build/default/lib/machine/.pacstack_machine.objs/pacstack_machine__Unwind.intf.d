lib/machine/unwind.mli: Machine Pacstack_util
