lib/machine/debug.ml: Buffer Hashtbl Image Int64 List Machine Memory Option Pacstack_isa Pacstack_util Printf Trap
