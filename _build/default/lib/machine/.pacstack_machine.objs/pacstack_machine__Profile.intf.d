lib/machine/profile.mli: Format Machine
