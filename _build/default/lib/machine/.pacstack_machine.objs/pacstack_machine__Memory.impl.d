lib/machine/memory.ml: Bytes Char Format Hashtbl Int64 List Option Pacstack_util Printf Trap
