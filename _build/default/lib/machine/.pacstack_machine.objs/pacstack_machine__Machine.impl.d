lib/machine/machine.ml: Array Format Hashtbl Image Int32 Int64 List Memory Pacstack_isa Pacstack_pa Pacstack_util Printf Trap
