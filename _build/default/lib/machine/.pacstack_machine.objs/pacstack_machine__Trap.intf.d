lib/machine/trap.mli: Format Pacstack_util
