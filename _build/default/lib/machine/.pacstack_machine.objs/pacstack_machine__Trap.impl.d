lib/machine/trap.ml: Format Pacstack_util
