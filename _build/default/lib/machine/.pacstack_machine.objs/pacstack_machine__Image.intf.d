lib/machine/image.mli: Pacstack_isa Pacstack_util
