lib/machine/memory.mli: Format Pacstack_util
