lib/machine/image.ml: Array Hashtbl Int64 List Pacstack_isa Pacstack_util
