lib/machine/kernel.mli: Machine Pacstack_isa Pacstack_util
