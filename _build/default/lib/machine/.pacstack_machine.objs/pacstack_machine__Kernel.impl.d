lib/machine/kernel.ml: Array Image Int64 List Machine Memory Pacstack_isa Pacstack_pa Pacstack_qarma Pacstack_util Printf Trap
