lib/machine/machine.mli: Format Image Memory Pacstack_isa Pacstack_pa Pacstack_util Trap
