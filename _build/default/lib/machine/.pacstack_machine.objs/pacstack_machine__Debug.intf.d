lib/machine/debug.mli: Machine Pacstack_util Trap
