(** The three 4-bit substitution boxes of the QARMA family.

    [sigma0] is an involution used in the lightweight variant, [sigma1] is
    the recommended S-box, [sigma2] the stronger alternative. *)

type t

val sigma0 : t
val sigma1 : t
val sigma2 : t

val apply : t -> int -> int
(** [apply s x] substitutes the 4-bit value [x]; raises [Invalid_argument]
    if [x] is outside [0, 15]. *)

val apply_inv : t -> int -> int

val sub_cells : t -> Pacstack_util.Word64.t -> Pacstack_util.Word64.t
(** Applies the S-box to all 16 cells of a block. *)

val sub_cells_inv : t -> Pacstack_util.Word64.t -> Pacstack_util.Word64.t

val is_involution : t -> bool
val is_permutation : t -> bool
