module Word64 = Pacstack_util.Word64
module Rng = Pacstack_util.Rng

type key = { w0 : Word64.t; k0 : Word64.t }

let key ~w0 ~k0 = { w0; k0 }
let random_key rng = { w0 = Rng.next64 rng; k0 = Rng.next64 rng }
let key_equal a b = Word64.equal a.w0 b.w0 && Word64.equal a.k0 b.k0
let pp_key fmt k = Format.fprintf fmt "(w0=%a k0=%a)" Word64.pp k.w0 Word64.pp k.k0

let default_rounds = 7

let alpha = 0xC0AC29B7C97C50DDL

let round_constants =
  [|
    0x0000000000000000L;
    0x13198A2E03707344L;
    0xA4093822299F31D0L;
    0x082EFA98EC4E6C89L;
    0x452821E638D01377L;
    0xBE5466CF34E90C6CL;
    0x3F84D5B5B5470917L;
    0x9216D5D98979FB1BL;
  |]

let round_constant i =
  if i < 0 || i >= Array.length round_constants then invalid_arg "Qarma64.round_constant"
  else round_constants.(i)

(* Cell shuffle τ and tweak-cell permutation h, as in the QARMA
   specification; [perm.(i)] is the index of the input cell that lands in
   output cell [i]. *)
let tau_perm = [| 0; 11; 6; 13; 10; 1; 12; 7; 5; 14; 3; 8; 15; 4; 9; 2 |]
let h_perm = [| 6; 5; 14; 15; 0; 1; 2; 3; 7; 12; 13; 4; 8; 9; 10; 11 |]

let invert_perm p =
  let inv = Array.make (Array.length p) 0 in
  Array.iteri (fun i v -> inv.(v) <- i) p;
  inv

let tau_inv_perm = invert_perm tau_perm
let h_inv_perm = invert_perm h_perm

let permute_cells perm w =
  let cells = Word64.to_nibbles w in
  Word64.of_nibbles (Array.map (fun src -> cells.(src)) perm)

let tau = permute_cells tau_perm
let tau_inv = permute_cells tau_inv_perm

(* 4-bit rotation left. *)
let rho4 x n =
  let n = n land 3 in
  ((x lsl n) lor (x lsr (4 - n))) land 0xf

(* M = circ(0, ρ, ρ², ρ) applied column-wise to the 4×4 cell array
   (row-major, cell 0 top-left). M is involutory, so it is its own
   inverse. *)
let mix_columns w =
  let cells = Word64.to_nibbles w in
  let out = Array.make 16 0 in
  for col = 0 to 3 do
    for row = 0 to 3 do
      let acc = ref 0 in
      for src = 0 to 3 do
        let d = (src - row + 4) land 3 in
        if d <> 0 then begin
          let e = if d = 2 then 2 else 1 in
          acc := !acc lxor rho4 cells.((src * 4) + col) e
        end
      done;
      out.((row * 4) + col) <- !acc
    done
  done;
  Word64.of_nibbles out

(* LFSR ω on a 4-bit cell: (b3,b2,b1,b0) -> (b0 xor b1, b3, b2, b1). *)
let omega x =
  let b0 = x land 1 and b1 = (x lsr 1) land 1 in
  ((b0 lxor b1) lsl 3) lor (x lsr 1)

let omega_inv x =
  let b3 = (x lsr 3) land 1 and b0 = x land 1 in
  (((x land 7) lsl 1) lor (b3 lxor b0)) land 0xf

(* Tweak cells refreshed by the LFSR on each update. *)
let lfsr_cells = [ 0; 1; 3; 4 ]

let apply_lfsr f w =
  List.fold_left (fun acc i -> Word64.set_nibble acc i (f (Word64.nibble acc i))) w lfsr_cells

let tweak_forward t = apply_lfsr omega (permute_cells h_perm t)
let tweak_backward t = permute_cells h_inv_perm (apply_lfsr omega_inv t)

(* One forward round: add tweakey, then (unless short) shuffle and mix,
   then substitute. The backward round is the exact inverse. *)
let forward_round sbox s tk ~short =
  let s = Int64.logxor s tk in
  let s = if short then s else mix_columns (tau s) in
  Sbox.sub_cells sbox s

let backward_round sbox s tk ~short =
  let s = Sbox.sub_cells_inv sbox s in
  let s = if short then s else tau_inv (mix_columns s) in
  Int64.logxor s tk

(* Orthomorphism used to derive the second whitening key. *)
let ortho w = Int64.logxor (Word64.rotr w 1) (Int64.shift_right_logical w 63)

let check_rounds rounds =
  if rounds < 1 || rounds > Array.length round_constants then invalid_arg "Qarma64: rounds"

(* Tweak values t_0 .. t_rounds; forward round i and backward round i both
   use t_i, the centre uses t_rounds. *)
let tweak_schedule ~rounds tweak =
  let ts = Array.make (rounds + 1) tweak in
  for i = 1 to rounds do
    ts.(i) <- tweak_forward ts.(i - 1)
  done;
  ts

let encrypt ?(rounds = default_rounds) ?(sbox = Sbox.sigma1) key ~tweak p =
  check_rounds rounds;
  let { w0; k0 } = key in
  let w1 = ortho w0 in
  let k1 = k0 in
  let ts = tweak_schedule ~rounds tweak in
  let s = ref (Int64.logxor p w0) in
  for i = 0 to rounds - 1 do
    s := forward_round sbox !s (Int64.logxor k0 (Int64.logxor ts.(i) round_constants.(i))) ~short:(i = 0)
  done;
  (* centre: forward half-round, pseudo-reflector, backward half-round *)
  s := forward_round sbox !s (Int64.logxor w1 ts.(rounds)) ~short:false;
  s := tau !s;
  s := mix_columns !s;
  s := Int64.logxor !s k1;
  s := tau_inv !s;
  s := backward_round sbox !s (Int64.logxor w0 ts.(rounds)) ~short:false;
  for i = rounds - 1 downto 0 do
    let tk = Int64.logxor (Int64.logxor k0 alpha) (Int64.logxor ts.(i) round_constants.(i)) in
    s := backward_round sbox !s tk ~short:(i = 0)
  done;
  Int64.logxor !s w1

let decrypt ?(rounds = default_rounds) ?(sbox = Sbox.sigma1) key ~tweak c =
  check_rounds rounds;
  let { w0; k0 } = key in
  let w1 = ortho w0 in
  let k1 = k0 in
  let ts = tweak_schedule ~rounds tweak in
  let s = ref (Int64.logxor c w1) in
  for i = 0 to rounds - 1 do
    let tk = Int64.logxor (Int64.logxor k0 alpha) (Int64.logxor ts.(i) round_constants.(i)) in
    s := forward_round sbox !s tk ~short:(i = 0)
  done;
  s := forward_round sbox !s (Int64.logxor w0 ts.(rounds)) ~short:false;
  (* inverse of the pseudo-reflector: τ, ⊕k1, M (self-inverse), τ⁻¹ *)
  s := tau !s;
  s := Int64.logxor !s k1;
  s := mix_columns !s;
  s := tau_inv !s;
  s := backward_round sbox !s (Int64.logxor w1 ts.(rounds)) ~short:false;
  for i = rounds - 1 downto 0 do
    s := backward_round sbox !s (Int64.logxor k0 (Int64.logxor ts.(i) round_constants.(i))) ~short:(i = 0)
  done;
  Int64.logxor !s w0
