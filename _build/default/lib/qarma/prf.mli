(** The tweakable MAC [H_k] used throughout the paper.

    [H_k(P, M)] is a keyed function of a 64-bit pointer value [P] and a
    64-bit modifier [M]. Two interchangeable instantiations are provided:

    - {!create}: truncated QARMA-64 ciphertext of [P] under tweak [M] — the
      construction ARMv8.3-A pointer authentication uses. The reference
      instantiation.
    - {!create_fast}: a keyed SplitMix-style mixer. The paper's security
      analysis models [H_k] as a random oracle, so statistical experiments
      that need millions of evaluations may use this instantiation without
      affecting any measured quantity (cycle costs are independent of MAC
      values). *)

type t

val create : ?rounds:int -> Qarma64.key -> t
(** QARMA-backed MAC; [rounds] defaults to [Qarma64.default_rounds]. *)

val create_fast : Pacstack_util.Word64.t -> t
(** Mixer-backed MAC keyed by a 64-bit secret. *)

val of_rng : ?fast:bool -> ?rounds:int -> Pacstack_util.Rng.t -> t
(** Fresh random key drawn from the generator; [fast] defaults to
    [false]. *)

val mac64 : t -> data:Pacstack_util.Word64.t -> modifier:Pacstack_util.Word64.t -> Pacstack_util.Word64.t
(** Full 64-bit MAC output. *)

val mac : t -> bits:int -> data:Pacstack_util.Word64.t -> modifier:Pacstack_util.Word64.t -> Pacstack_util.Word64.t
(** [mac t ~bits ~data ~modifier] is the [bits]-bit authentication token
    (the low [bits] bits of {!mac64}), [1 <= bits <= 32]. *)

val key : t -> Qarma64.key option
(** The QARMA key, when QARMA-backed. *)

val equal : t -> t -> bool
(** Key-material equality. *)
