lib/qarma/prf.mli: Pacstack_util Qarma64
