lib/qarma/qarma64.ml: Array Format Int64 List Pacstack_util Sbox
