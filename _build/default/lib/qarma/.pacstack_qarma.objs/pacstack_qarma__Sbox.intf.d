lib/qarma/sbox.mli: Pacstack_util
