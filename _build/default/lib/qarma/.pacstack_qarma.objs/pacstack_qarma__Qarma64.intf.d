lib/qarma/qarma64.mli: Format Pacstack_util Sbox
