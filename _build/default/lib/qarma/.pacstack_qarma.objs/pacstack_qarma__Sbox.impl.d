lib/qarma/sbox.ml: Array Fun Pacstack_util
