lib/qarma/prf.ml: Int64 Pacstack_util Qarma64
