module Word64 = Pacstack_util.Word64

type t = { fwd : int array; inv : int array }

let make fwd =
  assert (Array.length fwd = 16);
  let inv = Array.make 16 (-1) in
  Array.iteri (fun i v -> inv.(v) <- i) fwd;
  assert (not (Array.exists (fun v -> v < 0) inv));
  { fwd; inv }

let sigma0 = make [| 0; 14; 2; 10; 9; 15; 8; 11; 6; 4; 3; 7; 13; 12; 1; 5 |]
let sigma1 = make [| 10; 13; 14; 6; 15; 7; 3; 5; 9; 8; 0; 12; 11; 1; 2; 4 |]
let sigma2 = make [| 11; 6; 8; 15; 12; 0; 9; 14; 3; 7; 4; 5; 13; 2; 1; 10 |]

let check x = if x < 0 || x > 15 then invalid_arg "Sbox.apply"

let apply t x = check x; t.fwd.(x)
let apply_inv t x = check x; t.inv.(x)

let map_cells f w =
  let rec go i acc = if i > 15 then acc else go (i + 1) (Word64.set_nibble acc i (f (Word64.nibble w i))) in
  go 0 w

let sub_cells t w = map_cells (fun x -> t.fwd.(x)) w
let sub_cells_inv t w = map_cells (fun x -> t.inv.(x)) w

let is_permutation t =
  let seen = Array.make 16 false in
  Array.iter (fun v -> seen.(v) <- true) t.fwd;
  Array.for_all Fun.id seen

let is_involution t =
  let rec go i = i > 15 || (t.fwd.(t.fwd.(i)) = i && go (i + 1)) in
  go 0
