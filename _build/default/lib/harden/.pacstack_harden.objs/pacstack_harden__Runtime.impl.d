lib/harden/runtime.ml: Frame Int64 List Pacstack_isa Scheme
