lib/harden/scheme.ml: Format String
