lib/harden/frame.ml: Int64 Pacstack_isa Scheme
