lib/harden/runtime.mli: Pacstack_isa Scheme
