lib/harden/frame.mli: Pacstack_isa Scheme
