lib/harden/scheme.mli: Format
