type t =
  | Unprotected
  | Stack_protector
  | Branch_protection
  | Shadow_stack
  | Pacstack of { masked : bool }

let pacstack = Pacstack { masked = true }
let pacstack_nomask = Pacstack { masked = false }

let all =
  [ Unprotected; Stack_protector; Branch_protection; Shadow_stack; pacstack_nomask; pacstack ]

let to_string = function
  | Unprotected -> "baseline"
  | Stack_protector -> "stack-protector-strong"
  | Branch_protection -> "branch-protection"
  | Shadow_stack -> "shadow-call-stack"
  | Pacstack { masked = true } -> "pacstack"
  | Pacstack { masked = false } -> "pacstack-nomask"

let of_string s =
  match String.lowercase_ascii s with
  | "baseline" | "none" | "unprotected" -> Some Unprotected
  | "stack-protector-strong" | "canary" -> Some Stack_protector
  | "branch-protection" | "mbranch-protection" -> Some Branch_protection
  | "shadow-call-stack" | "shadowcallstack" | "scs" -> Some Shadow_stack
  | "pacstack" -> Some pacstack
  | "pacstack-nomask" -> Some pacstack_nomask
  | _ -> None

let pp fmt t = Format.pp_print_string fmt (to_string t)

let equal a b =
  match a, b with
  | Unprotected, Unprotected
  | Stack_protector, Stack_protector
  | Branch_protection, Branch_protection
  | Shadow_stack, Shadow_stack -> true
  | Pacstack { masked = m1 }, Pacstack { masked = m2 } -> m1 = m2
  | (Unprotected | Stack_protector | Branch_protection | Shadow_stack | Pacstack _), _ -> false

let uses_chain_register = function
  | Pacstack _ -> true
  | Unprotected | Stack_protector | Branch_protection | Shadow_stack -> false
