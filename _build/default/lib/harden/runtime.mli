(** Runtime-support functions linked into every hardened program: the
    canary failure handler, a minimal [setjmp]/[longjmp], and the PACStack
    wrappers of Listings 4–5 that bind [jmp_buf] contents to the ACS.

    [jmp_buf] layout (byte offsets into the buffer):
    x19..x28 at 0..72, FP 80, LR 88, SP 96 — 128 bytes reserved. *)

val jmp_buf_bytes : int

val setjmp_symbol : string
val longjmp_symbol : string
val pacstack_setjmp_symbol : string
val pacstack_longjmp_symbol : string

val setjmp_entry : Scheme.t -> string
(** Which symbol a [setjmp] call site should target under a scheme. *)

val longjmp_entry : Scheme.t -> string

val functions : Pacstack_isa.Program.func list
(** All runtime functions; linked unconditionally (unused ones cost only
    code bytes). *)
