(** The return-address protection schemes the paper evaluates (§7). *)

type t =
  | Unprotected
  | Stack_protector  (** [-mstack-protector-strong]: canaries, buffer-holding functions only *)
  | Branch_protection  (** [-mbranch-protection]: [paciasp]/[retaa], SP modifier *)
  | Shadow_stack  (** Clang ShadowCallStack, X18-based *)
  | Pacstack of { masked : bool }  (** the paper's contribution, Listings 2–3 *)

val all : t list
(** In the order the paper's tables list them. *)

val pacstack : t
val pacstack_nomask : t

val to_string : t -> string
val of_string : string -> t option
val pp : Format.formatter -> t -> unit
val equal : t -> t -> bool

val uses_chain_register : t -> bool
(** True for the PACStack variants: X28 is reserved (§5.1). *)
