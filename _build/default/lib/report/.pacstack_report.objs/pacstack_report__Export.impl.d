lib/report/export.ml: Filename Format List Out_channel Pacstack_acs Pacstack_attacker Pacstack_harden Pacstack_machine Pacstack_minic Pacstack_util Pacstack_workloads Printf String Sys
