lib/report/export.mli:
