(** 64-bit word utilities shared by the cipher, the pointer-authentication
    layer and the machine simulator.

    All values are [int64] treated as unsigned 64-bit words. *)

type t = int64

val equal : t -> t -> bool
val compare : t -> t -> int

(** {1 Bit access} *)

val bit : t -> int -> bool
(** [bit w i] is bit [i] of [w], [0 <= i < 64], bit 0 the least significant. *)

val set_bit : t -> int -> bool -> t
(** [set_bit w i v] is [w] with bit [i] forced to [v]. *)

val flip_bit : t -> int -> t

val extract : t -> lo:int -> width:int -> t
(** [extract w ~lo ~width] is the [width]-bit field of [w] starting at bit
    [lo], right-aligned. [width] may be 0 (yielding [0L]) up to [64 - lo]. *)

val insert : t -> lo:int -> width:int -> t -> t
(** [insert w ~lo ~width v] replaces the [width]-bit field of [w] at [lo]
    with the low [width] bits of [v]. *)

val mask : int -> t
(** [mask n] is a word with the [n] low bits set, [0 <= n <= 64]. *)

(** {1 Rotations and shifts} *)

val rotl : t -> int -> t
val rotr : t -> int -> t
val shift_right_logical : t -> int -> t

(** {1 Counting} *)

val popcount : t -> int
val hamming : t -> t -> int
(** [hamming a b] is the number of differing bits. *)

val parity : t -> int

(** {1 Nibbles}

    The QARMA cipher views a 64-bit block as 16 4-bit cells, cell 0 being
    the most significant nibble (big-endian cell order, as in the QARMA
    specification). *)

val nibble : t -> int -> int
(** [nibble w i] is cell [i] (0 = most significant), in [0, 15]. *)

val set_nibble : t -> int -> int -> t

val of_nibbles : int array -> t
(** [of_nibbles cells] packs 16 cells, [cells.(0)] most significant. *)

val to_nibbles : t -> int array

(** {1 Bytes} *)

val byte : t -> int -> int
(** [byte w i] is byte [i], byte 0 the least significant. *)

val set_byte : t -> int -> int -> t

(** {1 Formatting} *)

val to_hex : t -> string
(** 16 lowercase hex digits, zero-padded. *)

val of_hex : string -> t
(** Parses up to 16 hex digits; raises [Invalid_argument] on bad input. *)

val pp : Format.formatter -> t -> unit
