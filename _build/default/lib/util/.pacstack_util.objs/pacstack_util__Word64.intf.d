lib/util/word64.mli: Format
