lib/util/word64.ml: Array Char Format Int64 Printf String
