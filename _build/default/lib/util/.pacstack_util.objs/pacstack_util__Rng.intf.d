lib/util/rng.mli:
