(* Protecting a CPU-bound server with PACStack (§7.2).

   Measures SSL-handshake throughput of the NGINX-style server simulation
   for 4 and 8 workers, under no protection, PACStack without masking and
   full PACStack — the Table 3 experiment as a library call.

   Run with: dune exec examples/server_protection.exe *)

module Server = Pacstack_workloads.Server
module Scheme = Pacstack_harden.Scheme

let () =
  List.iter
    (fun workers ->
      Printf.printf "%d workers:\n" workers;
      let baseline = Server.measure ~scheme:Scheme.unprotected ~workers () in
      List.iter
        (fun scheme ->
          let r =
            if Scheme.equal scheme Scheme.unprotected then baseline
            else Server.measure ~scheme ~workers ()
          in
          Printf.printf "  %-18s %8.1fk req/s (sigma %4.0f)  %5.1f%% slower  [%7.0f cycles, %5.0f mem ops per request]\n"
            (Scheme.to_string scheme)
            (r.Server.req_per_sec /. 1000.0)
            r.Server.sigma
            (Server.overhead_pct ~baseline r)
            r.Server.cycles_per_request r.Server.mem_ops_per_request)
        [ Scheme.unprotected; Scheme.pacstack_nomask; Scheme.pacstack ])
    [ 4; 8 ];
  print_endline
    "\nAs in the paper, the per-request cost of PACStack is a few percent, and the\n\
     extra memory traffic of the instrumentation bites harder as workers contend\n\
     for the memory system."
