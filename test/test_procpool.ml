(* Tests for the fork-based process pool and the crash-isolated mega
   campaign executor.

   These live in their own binary, separate from test_campaign.ml, for a
   hard runtime reason: OCaml 5 forbids Unix.fork in any process that
   has EVER created another domain, even after Domain.join. The campaign
   suite spawns domain pools, which would poison every fork here. This
   binary therefore never uses more than 1 domain worker (Pool.run at
   workers = 1 executes inline) — the same constraint the campaign
   engine itself documents: Domains and Processes are alternative
   executors, never nested. *)

module Json = Pacstack_campaign.Json
module Plan = Pacstack_campaign.Plan
module Progress = Pacstack_campaign.Progress
module Checkpoint = Pacstack_campaign.Checkpoint
module Campaign = Pacstack_campaign.Campaign
module Procpool = Pacstack_campaign.Procpool
module Plans = Pacstack_report.Plans

let contains haystack needle =
  let hl = String.length haystack and nl = String.length needle in
  let rec go i = i + nl <= hl && (String.sub haystack i nl = needle || go (i + 1)) in
  nl = 0 || go 0

(* --- Procpool: fork-based crash isolation -------------------------------- *)

let test_procpool_matches_sequential () =
  let f ~task ~attempt:_ = (task * task) + 3 in
  let expected = Array.init 9 (fun i -> Procpool.Done ((i * i) + 3)) in
  Alcotest.(check bool) "1 worker" true (Procpool.run ~workers:1 ~tasks:9 f = expected);
  Alcotest.(check bool) "4 workers" true (Procpool.run ~workers:4 ~tasks:9 f = expected);
  Alcotest.(check bool) "more workers than tasks" true
    (Procpool.run ~workers:16 ~tasks:9 f = expected);
  Alcotest.(check bool) "no tasks" true (Procpool.run ~workers:2 ~tasks:0 f = [||])

let test_procpool_retries_killed_child () =
  (* the tentpole property: a SIGKILL mid-task is an isolated, retryable
     failure — the pool degrades, re-runs the task, and every result is
     still produced *)
  let degraded = ref [] and retried = ref 0 in
  let out =
    Procpool.run ~workers:2 ~retries:2
      ~backoff_s:(fun _ -> 0.)
      ~on_retry:(fun ~task:_ ~attempt:_ ~error:_ -> incr retried)
      ~on_degrade:(fun ~live ~deaths -> degraded := (live, deaths) :: !degraded)
      ~tasks:4
      (fun ~task ~attempt ->
        if task = 1 && attempt = 1 then Unix.kill (Unix.getpid ()) Sys.sigkill;
        task * 10)
  in
  Alcotest.(check bool) "every task completes" true
    (out = Array.init 4 (fun i -> Procpool.Done (i * 10)));
  Alcotest.(check int) "killed attempt retried once" 1 !retried;
  match !degraded with
  | [ (live, deaths) ] ->
    Alcotest.(check int) "one abnormal death" 1 deaths;
    Alcotest.(check int) "capacity shrank to 1" 1 live
  | d -> Alcotest.failf "expected one degrade event, got %d" (List.length d)

let test_procpool_gives_up_on_persistent_failure () =
  (* a clean in-task exception is piped back as an error, not a pool
     death: no degrade, and past the retry budget the task is given up *)
  let gave = ref [] and degraded = ref 0 in
  let out =
    Procpool.run ~workers:2 ~retries:1
      ~backoff_s:(fun _ -> 0.)
      ~on_give_up:(fun ~task ~attempts ~error -> gave := (task, attempts, error) :: !gave)
      ~on_degrade:(fun ~live:_ ~deaths:_ -> incr degraded)
      ~tasks:3
      (fun ~task ~attempt:_ -> if task = 2 then failwith "task 2 is cursed" else task)
  in
  (match out.(2) with
  | Procpool.Gave_up { attempts; error } ->
    Alcotest.(check int) "attempts = 1 + retries" 2 attempts;
    Alcotest.(check bool) "error preserved" true (contains error "task 2 is cursed")
  | Procpool.Done _ -> Alcotest.fail "task 2 should have been given up");
  Alcotest.(check bool) "healthy tasks complete" true
    (out.(0) = Procpool.Done 0 && out.(1) = Procpool.Done 1);
  Alcotest.(check int) "exactly one give-up" 1 (List.length !gave);
  Alcotest.(check int) "clean failures do not degrade the pool" 0 !degraded

let test_procpool_timeout_kills_hung_child () =
  let out =
    Procpool.run ~workers:1 ~timeout_s:0.2 ~tasks:1 (fun ~task:_ ~attempt:_ ->
        Unix.sleep 600;
        0)
  in
  match out.(0) with
  | Procpool.Gave_up { error; _ } ->
    Alcotest.(check bool) ("error names the timeout: " ^ error) true
      (contains error "timeout")
  | Procpool.Done _ -> Alcotest.fail "hung child should have been killed"

let test_procpool_fail_fast_raises () =
  match
    Procpool.run ~workers:2 ~fail_fast:true ~tasks:4 (fun ~task ~attempt:_ ->
        if task = 3 then failwith "fatal" else task)
  with
  | _ -> Alcotest.fail "expected Task_failed"
  | exception Procpool.Task_failed { task; error } ->
    Alcotest.(check int) "task index attached" 3 task;
    Alcotest.(check bool) "error preserved" true (contains error "fatal")

let test_procpool_rejects_bad_args () =
  Alcotest.check_raises "workers < 1" (Invalid_argument "Procpool.run: workers < 1")
    (fun () -> ignore (Procpool.run ~workers:0 ~tasks:1 (fun ~task ~attempt:_ -> task)))

(* --- Mega campaign under process isolation ------------------------------- *)

let no_backoff = { Campaign.default_policy with backoff_s = (fun _ -> 0.) }
let process_policy = { no_backoff with Campaign.isolation = Campaign.Processes }

(* The ISSUE acceptance criterion: a 4-worker process-pool campaign with
   one child SIGKILLed mid-shard completes, retries the shard, and its
   statistics are bit-identical to an uninterrupted 1-worker run (which
   executes inline — no domains, see the header comment). The kill is
   injected by the env-var test hook the CI smoke also uses; attempt 2
   of the same shard runs clean on a re-derived RNG. *)
let test_process_pool_survives_sigkill () =
  let plan () = Plans.mega_plan ~pac_bits:6 ~faults:24 ~shard_faults:4 ~seed:21L () in
  let reference = Campaign.run ~workers:1 (plan ()) in
  Unix.putenv "PACSTACK_TEST_KILL_SHARD" "2";
  Fun.protect
    ~finally:(fun () -> Unix.putenv "PACSTACK_TEST_KILL_SHARD" "")
    (fun () ->
      let retried = ref 0 and degraded = ref 0 in
      let sink = function
        | Progress.Shard_retried _ -> incr retried
        | Progress.Pool_degraded _ -> incr degraded
        | _ -> ()
      in
      let outcome =
        Campaign.run ~workers:4 ~progress:sink ~policy:process_policy (plan ())
      in
      Alcotest.(check int) "no quarantine" 0 (List.length outcome.Campaign.quarantined);
      Alcotest.(check int) "killed shard retried" 1 !retried;
      Alcotest.(check int) "pool degraded once" 1 !degraded;
      Alcotest.(check bool) "process-pool totals = 1-worker totals" true
        (Plans.mega_totals outcome = Plans.mega_totals reference))

(* A shard whose child ALWAYS dies abnormally ends up quarantined in the
   manifest, and the campaign still completes every healthy shard. *)
let test_process_pool_quarantines_persistent_crasher () =
  let plan =
    Plan.make ~name:"crashy" ~seed:31L
      ~shards:(Array.init 4 (fun i -> (Printf.sprintf "c#%d" i, 1)))
      ~run:(fun shard _rng ->
        if shard.Pacstack_campaign.Shard.index = 1 then
          Unix.kill (Unix.getpid ()) Sys.sigkill;
        shard.Pacstack_campaign.Shard.index * 100)
  in
  let policy = { process_policy with Campaign.retries = 1 } in
  let outcome = Campaign.run ~workers:2 ~policy plan in
  (match outcome.Campaign.quarantined with
  | [ q ] ->
    Alcotest.(check int) "crashing shard quarantined" 1 q.Campaign.shard;
    Alcotest.(check int) "attempts = 1 + retries" 2 q.Campaign.attempts;
    Alcotest.(check bool) ("death cause recorded: " ^ q.Campaign.error) true
      (contains q.Campaign.error "SIGKILL")
  | qs -> Alcotest.failf "expected exactly one quarantine, got %d" (List.length qs));
  Alcotest.(check (array (option int))) "healthy shards completed"
    [| Some 0; None; Some 200; Some 300 |] outcome.Campaign.results

let () =
  Alcotest.run "procpool"
    [
      ( "procpool",
        [
          Alcotest.test_case "matches sequential" `Quick test_procpool_matches_sequential;
          Alcotest.test_case "retries SIGKILLed child" `Quick
            test_procpool_retries_killed_child;
          Alcotest.test_case "gives up on persistent failure" `Quick
            test_procpool_gives_up_on_persistent_failure;
          Alcotest.test_case "timeout kills hung child" `Quick
            test_procpool_timeout_kills_hung_child;
          Alcotest.test_case "fail-fast raises" `Quick test_procpool_fail_fast_raises;
          Alcotest.test_case "rejects bad args" `Quick test_procpool_rejects_bad_args;
        ] );
      ( "process isolation",
        [
          Alcotest.test_case "survives SIGKILLed worker" `Quick
            test_process_pool_survives_sigkill;
          Alcotest.test_case "quarantines persistent crasher" `Quick
            test_process_pool_quarantines_persistent_crasher;
        ] );
    ]
