(* Tests for the machine simulator: memory, instruction semantics, faults,
   the kernel personality (fork/threads/signals) and the ACS-validating
   unwinder. *)

module Word64 = Pacstack_util.Word64
module Rng = Pacstack_util.Rng
module Config = Pacstack_pa.Config
module Keys = Pacstack_pa.Keys
module Memory = Pacstack_machine.Memory
module Machine = Pacstack_machine.Machine
module Kernel = Pacstack_machine.Kernel
module Image = Pacstack_machine.Image
module Trap = Pacstack_machine.Trap
module Unwind = Pacstack_machine.Unwind
module Asm = Pacstack_isa.Asm
module Reg = Pacstack_isa.Reg
module Scheme = Pacstack_harden.Scheme

let check_w64 = Alcotest.testable Word64.pp Word64.equal

(* --- Memory ---------------------------------------------------------------- *)

let test_mem_map_load_store () =
  let m = Memory.create () in
  Memory.map m ~addr:0x1000L ~size:4096 Memory.perm_rw;
  Memory.store64 m 0x1008L 0xdeadbeefL;
  Alcotest.check check_w64 "load back" 0xdeadbeefL (Memory.load64 m 0x1008L);
  Memory.store8 m 0x1000L 0xab;
  Alcotest.(check int) "byte" 0xab (Memory.load8 m 0x1000L)

let test_mem_little_endian () =
  let m = Memory.create () in
  Memory.map m ~addr:0L ~size:4096 Memory.perm_rw;
  Memory.store64 m 0L 0x0102030405060708L;
  Alcotest.(check int) "LSB first" 0x08 (Memory.load8 m 0L);
  Alcotest.(check int) "MSB last" 0x01 (Memory.load8 m 7L)

let test_mem_cross_page () =
  let m = Memory.create () in
  Memory.map m ~addr:0L ~size:8192 Memory.perm_rw;
  let addr = 0xffcL in
  Memory.store64 m addr 0x1122334455667788L;
  Alcotest.check check_w64 "cross-page roundtrip" 0x1122334455667788L (Memory.load64 m addr)

let test_mem_unmapped_fault () =
  let m = Memory.create () in
  Alcotest.check_raises "read" (Trap.Fault (Trap.Unmapped (0x5000L, Trap.Read))) (fun () ->
      ignore (Memory.load64 m 0x5000L))

let test_mem_wxorx () =
  Alcotest.check_raises "w+x refused" (Invalid_argument "Memory.map: W^X violation") (fun () ->
      Memory.map (Memory.create ()) ~addr:0L ~size:16
        { Memory.readable = true; writable = true; executable = true })

let test_mem_permissions () =
  let m = Memory.create () in
  Memory.map m ~addr:0L ~size:4096 Memory.perm_rx;
  Alcotest.check_raises "write to rx" (Trap.Fault (Trap.Permission (0x10L, Trap.Write)))
    (fun () -> Memory.store64 m 0x10L 1L);
  Memory.check_exec m 0x10L;
  Memory.map m ~addr:0x1000L ~size:4096 Memory.perm_rw;
  Alcotest.check_raises "exec of rw" (Trap.Fault (Trap.Permission (0x1000L, Trap.Execute)))
    (fun () -> Memory.check_exec m 0x1000L)

let test_mem_double_map () =
  let m = Memory.create () in
  Memory.map m ~addr:0L ~size:4096 Memory.perm_rw;
  Alcotest.check_raises "double map" (Invalid_argument "Memory.map: page 0 already mapped")
    (fun () -> Memory.map m ~addr:0L ~size:16 Memory.perm_rw);
  Memory.unmap m ~addr:0L ~size:4096;
  Memory.map m ~addr:0L ~size:4096 Memory.perm_r

let test_mem_peek_poke () =
  let m = Memory.create () in
  Memory.map m ~addr:0L ~size:4096 Memory.perm_rx;
  Memory.map m ~addr:0x1000L ~size:4096 Memory.perm_rw;
  Alcotest.(check bool) "peek unmapped" true (Memory.peek64 m 0x9000L = None);
  Alcotest.(check bool) "peek rx allowed" true (Memory.peek64 m 0x0L = Some 0L);
  Alcotest.(check bool) "poke rx refused" false (Memory.poke64 m 0x0L 1L);
  Alcotest.(check bool) "poke rw ok" true (Memory.poke64 m 0x1000L 5L);
  Alcotest.check check_w64 "poked" 5L (Memory.load64 m 0x1000L);
  (* poke straddling into an unwritable page must not partially write *)
  Alcotest.(check bool) "straddling poke refused" false (Memory.poke64 m 0xffcL 0x1234L);
  Alcotest.check check_w64 "no partial write" 0L
    (Word64.extract (Memory.load64 m 0x1000L) ~lo:32 ~width:16)

let test_mem_copy_independent () =
  let m = Memory.create () in
  Memory.map m ~addr:0L ~size:4096 Memory.perm_rw;
  Memory.store64 m 0L 1L;
  let c = Memory.copy m in
  Memory.store64 m 0L 2L;
  Alcotest.check check_w64 "copy unchanged" 1L (Memory.load64 c 0L)

let test_mem_word32 () =
  let m = Memory.create () in
  Memory.map m ~addr:0L ~size:8192 Memory.perm_rw;
  Memory.store32 m 0x10L 0xdeadbeefl;
  Alcotest.(check int32) "32-bit roundtrip" 0xdeadbeefl (Memory.load32 m 0x10L);
  Alcotest.(check int) "LSB first" 0xef (Memory.load8 m 0x10L);
  Alcotest.(check int) "MSB last" 0xde (Memory.load8 m 0x13L);
  let addr = 0xffeL in
  Memory.store32 m addr 0x11223344l;
  Alcotest.(check int32) "cross-page roundtrip" 0x11223344l (Memory.load32 m addr)

(* The one-entry TLBs must never let a cached translation outlive a
   permission change: populate the TLB, drop the permission, and the very
   next access has to fault. *)

let perm_none = { Memory.readable = false; writable = false; executable = false }

let test_mem_tlb_protect () =
  let m = Memory.create () in
  Memory.map m ~addr:0x1000L ~size:4096 Memory.perm_rw;
  Memory.store64 m 0x1000L 0x42L;
  Alcotest.check check_w64 "read populates TLB" 0x42L (Memory.load64 m 0x1000L);
  Memory.protect m ~addr:0x1000L ~size:4096 perm_none;
  Alcotest.check_raises "stale-TLB read after protect"
    (Trap.Fault (Trap.Permission (0x1000L, Trap.Read)))
    (fun () -> ignore (Memory.load64 m 0x1000L));
  Alcotest.check_raises "stale-TLB write after protect"
    (Trap.Fault (Trap.Permission (0x1000L, Trap.Write)))
    (fun () -> Memory.store64 m 0x1000L 1L);
  (* restoring the permission restores access, contents intact *)
  Memory.protect m ~addr:0x1000L ~size:4096 Memory.perm_r;
  Alcotest.check check_w64 "contents survive protect" 0x42L (Memory.load64 m 0x1000L)

let test_mem_tlb_unmap () =
  let m = Memory.create () in
  Memory.map m ~addr:0x2000L ~size:4096 Memory.perm_rw;
  Memory.store64 m 0x2000L 0x99L;
  Alcotest.check check_w64 "read populates TLB" 0x99L (Memory.load64 m 0x2000L);
  Memory.unmap m ~addr:0x2000L ~size:4096;
  Alcotest.check_raises "stale-TLB read after unmap"
    (Trap.Fault (Trap.Unmapped (0x2000L, Trap.Read)))
    (fun () -> ignore (Memory.load64 m 0x2000L));
  (* remapping must not resurrect the old page's contents *)
  Memory.map m ~addr:0x2000L ~size:4096 Memory.perm_rw;
  Alcotest.check check_w64 "remapped page is zero" 0L (Memory.load64 m 0x2000L)

let test_mem_tlb_exec () =
  let m = Memory.create () in
  Memory.map m ~addr:0x4000L ~size:4096 Memory.perm_rx;
  Memory.check_exec m 0x4000L;
  (* populated x-TLB *)
  Memory.protect m ~addr:0x4000L ~size:4096 Memory.perm_rw;
  Alcotest.check_raises "stale-TLB exec after protect"
    (Trap.Fault (Trap.Permission (0x4000L, Trap.Execute)))
    (fun () -> Memory.check_exec m 0x4000L);
  Memory.protect m ~addr:0x4000L ~size:4096 Memory.perm_rx;
  Memory.check_exec m 0x4000L;
  Memory.unmap m ~addr:0x4000L ~size:4096;
  Alcotest.check_raises "stale-TLB exec after unmap"
    (Trap.Fault (Trap.Unmapped (0x4000L, Trap.Execute)))
    (fun () -> Memory.check_exec m 0x4000L)

let test_mem_ranges () =
  let m = Memory.create () in
  Memory.map m ~addr:0L ~size:8192 Memory.perm_rw;
  Memory.map m ~addr:0x10000L ~size:4096 Memory.perm_rx;
  match Memory.mapped_ranges m with
  | [ (a1, s1, _); (a2, s2, _) ] ->
    Alcotest.check check_w64 "first base" 0L a1;
    Alcotest.(check int) "first size" 8192 s1;
    Alcotest.check check_w64 "second base" 0x10000L a2;
    Alcotest.(check int) "second size" 4096 s2
  | rs -> Alcotest.fail (Printf.sprintf "expected 2 runs, got %d" (List.length rs))

(* --- Machine semantics ------------------------------------------------------ *)

let run_asm ?cfg src =
  let m = Machine.load ?cfg (Asm.parse src) in
  (Machine.run ~fuel:100_000 m, m)

let expect_output src expected =
  match run_asm src with
  | Machine.Halted 0, m ->
    Alcotest.(check (list int64)) "output" expected (Machine.output m)
  | Machine.Halted c, _ -> Alcotest.fail (Printf.sprintf "exit %d" c)
  | Machine.Faulted f, _ -> Alcotest.fail (Trap.to_string f)
  | Machine.Out_of_fuel, _ -> Alcotest.fail "fuel"

let test_arithmetic () =
  expect_output
    {|.entry main
.func main
  mov x1, #10
  mov x2, #3
  add x3, x1, x2
  mov x0, x3
  svc #1
  sub x3, x1, x2
  mov x0, x3
  svc #1
  mul x3, x1, x2
  mov x0, x3
  svc #1
  udiv x3, x1, x2
  mov x0, x3
  svc #1
  mov x4, #0
  udiv x3, x1, x4
  mov x0, x3
  svc #1
  mov x0, #0
  hlt
.endfunc|}
    [ 13L; 7L; 30L; 3L; 0L ]

let test_logic_shifts () =
  expect_output
    {|.entry main
.func main
  mov x1, #12
  mov x2, #10
  and x0, x1, x2
  svc #1
  orr x0, x1, x2
  svc #1
  eor x0, x1, x2
  svc #1
  lsl x0, x1, #2
  svc #1
  lsr x0, x1, #2
  svc #1
  mov x0, #0
  hlt
.endfunc|}
    [ 8L; 14L; 6L; 48L; 3L ]

let test_branches () =
  expect_output
    {|.entry main
.func main
  mov x1, #0
  mov x2, #0
loop:
  add x2, x2, x1
  add x1, x1, #1
  cmp x1, #5
  b.lt loop
  mov x0, x2
  svc #1
  cbz x1, bad
  cbnz x2, good
bad:
  mov x0, #99
  svc #1
good:
  mov x0, #0
  hlt
.endfunc|}
    [ 10L ]

let test_stack_pair_ops () =
  expect_output
    {|.entry main
.func main
  mov x1, #111
  mov x2, #222
  stp x1, x2, [sp, #-16]!
  mov x1, #0
  mov x2, #0
  ldp x1, x2, [sp], #16
  mov x0, x1
  svc #1
  mov x0, x2
  svc #1
  mov x0, #0
  hlt
.endfunc|}
    [ 111L; 222L ]

let test_call_return () =
  expect_output
    {|.entry main
.func main
  mov x0, #5
  bl addseven
  svc #1
  adr x9, addseven
  mov x0, #10
  blr x9
  svc #1
  mov x0, #0
  hlt
.endfunc
.func addseven
  add x0, x0, #7
  ret
.endfunc|}
    [ 12L; 17L ]

let test_write_to_code_faults () =
  match run_asm ".entry main\n.func main\n  adr x1, main\n  str x1, [x1]\n  hlt\n.endfunc" with
  | Machine.Faulted (Trap.Permission (_, Trap.Write)), _ -> ()
  | _ -> Alcotest.fail "expected W^X fault"

let test_exec_of_data_faults () =
  match
    run_asm ".data buf 16\n.entry main\n.func main\n  adr x1, buf\n  br x1\n  hlt\n.endfunc"
  with
  | Machine.Faulted (Trap.Permission (_, Trap.Execute)), _ -> ()
  | _ -> Alcotest.fail "expected execute fault"

let test_noncanonical_load_faults () =
  match
    run_asm
      ".entry main\n.func main\n  mov x1, #1\n  lsl x1, x1, #62\n  ldr x2, [x1]\n  hlt\n.endfunc"
  with
  | Machine.Faulted (Trap.Translation (_, Trap.Read)), _ -> ()
  | _ -> Alcotest.fail "expected translation fault"

let test_retaa_roundtrip () =
  (* paciasp at entry, retaa at exit: the Listing 1 pattern *)
  expect_output
    {|.entry main
.func main
  mov x0, #1
  bl protected
  svc #1
  mov x0, #0
  hlt
.endfunc
.func protected
  paciasp
  stp fp, lr, [sp, #-16]!
  add x0, x0, #41
  ldp fp, lr, [sp], #16
  retaa
.endfunc|}
    [ 42L ]

let test_retaa_detects_corruption () =
  (* overwriting the signed return address with a plain one faults *)
  match
    run_asm
      {|.entry main
.func main
  bl victim
  hlt
.endfunc
.func victim
  paciasp
  stp fp, lr, [sp, #-16]!
  adr x9, main
  str x9, [sp, #8]
  ldp fp, lr, [sp], #16
  retaa
.endfunc|}
  with
  | Machine.Faulted (Trap.Translation (_, Trap.Execute)), _ -> ()
  | r, _ ->
    Alcotest.fail
      (match r with
      | Machine.Halted c -> Printf.sprintf "halted %d" c
      | Machine.Faulted f -> Trap.to_string f
      | Machine.Out_of_fuel -> "fuel")

let test_pacia_autia_machine () =
  expect_output
    {|.entry main
.func main
  mov x1, #4096
  mov x2, #77
  pacia x1, x2
  autia x1, x2
  mov x0, x1
  svc #1
  mov x0, #0
  hlt
.endfunc|}
    [ 4096L ]

let test_xpaci () =
  expect_output
    {|.entry main
.func main
  mov x1, #4096
  mov x2, #77
  pacia x1, x2
  xpaci x1
  mov x0, x1
  svc #1
  mov x0, #0
  hlt
.endfunc|}
    [ 4096L ]

let test_hooks () =
  let m = Machine.load (Asm.parse ".entry main\n.func main\n  hook probe\n  mov x0, #0\n  hlt\n.endfunc") in
  let fired = ref 0 in
  Machine.attach_hook m "probe" (fun _ -> incr fired);
  ignore (Machine.run m);
  Alcotest.(check int) "hook fired once" 1 !fired

let test_clone_independent () =
  let m = Machine.load (Asm.parse ".entry main\n.func main\n  mov x0, #0\n  hlt\n.endfunc") in
  let c = Machine.clone m in
  Machine.set m (Reg.x 5) 9L;
  Alcotest.check check_w64 "clone regs isolated" 0L (Machine.get c (Reg.x 5));
  (* data_base holds the canary guard; use an untouched slot further in *)
  let slot = Int64.add Image.data_base 64L in
  Memory.store64 (Machine.memory m) slot 3L;
  Alcotest.check check_w64 "clone memory isolated" 0L (Memory.load64 (Machine.memory c) slot)

let test_context_words_roundtrip () =
  let m = Machine.load (Asm.parse ".entry main\n.func main\n  hlt\n.endfunc") in
  Machine.set m (Reg.x 7) 0x77L;
  let ctx = Machine.save_context m in
  let words = Machine.context_words ctx in
  Alcotest.(check int) "34 words" 34 (Array.length words);
  let ctx2 = Machine.context_of_words words in
  Alcotest.check check_w64 "x7 preserved" 0x77L (Machine.context_get ctx2 (Reg.x 7));
  Alcotest.check check_w64 "pc preserved" (Machine.pc m) (Machine.context_pc ctx2)

let test_xzr_semantics () =
  expect_output
    {|.entry main
.func main
  mov xzr, #5
  mov x0, xzr
  svc #1
  mov x0, #0
  hlt
.endfunc|}
    [ 0L ]

(* --- Kernel ------------------------------------------------------------------ *)

let boot src =
  let k = Kernel.create (Rng.create 1L) in
  let p = Kernel.boot k (Asm.parse src) in
  (k, p, Kernel.machine p)

let test_kernel_fork () =
  let k, p, m =
    boot
      {|.entry main
.func main
  svc #2
  svc #1
  mov x0, #0
  hlt
.endfunc|}
  in
  (match Kernel.run k p with
  | Machine.Halted 0 -> ()
  | _ -> Alcotest.fail "parent failed");
  (* parent printed the child pid *)
  (match Machine.output m with
  | [ pid ] -> Alcotest.(check bool) "child pid positive" true (pid > 0L)
  | _ -> Alcotest.fail "expected one output");
  match Kernel.children k p with
  | [ child ] -> (
    (* child resumes after the svc with x0 = 0 and prints it *)
    match Kernel.run k child with
    | Machine.Halted 0 ->
      Alcotest.(check (list int64)) "child printed 0" [ 0L ]
        (Machine.output (Kernel.machine child));
      Alcotest.(check bool) "keys shared" true
        (Keys.equal (Machine.keys m) (Machine.keys (Kernel.machine child)))
    | _ -> Alcotest.fail "child failed")
  | _ -> Alcotest.fail "expected one child"

let test_kernel_exec_regenerates_keys () =
  let k, p, m = boot ".entry main\n.func main\n  mov x0, #0\n  hlt\n.endfunc" in
  let keys_before = Machine.keys m in
  Kernel.exec k p (Asm.parse ".entry main\n.func main\n  mov x0, #0\n  hlt\n.endfunc");
  Alcotest.(check bool) "fresh keys on exec" false
    (Keys.equal keys_before (Machine.keys (Kernel.machine p)))

let test_kernel_getpid () =
  let k, p, m =
    boot ".entry main\n.func main\n  svc #6\n  svc #1\n  mov x0, #0\n  hlt\n.endfunc"
  in
  ignore (Kernel.run k p);
  Alcotest.(check (list int64)) "pid printed" [ Int64.of_int (Kernel.pid p) ] (Machine.output m)

let thread_src =
  {|.entry main
.func main
  adr x0, worker
  mov x1, #1
  lsl x1, x1, #38
  svc #3
  svc #4
  mov x0, #2
  svc #1
  mov x0, #0
  hlt
.endfunc
.func worker
  mov x0, #1
  svc #1
  svc #4
  hlt
.endfunc|}

let test_kernel_threads () =
  (* main spawns a worker, yields to it, worker prints then yields back *)
  let k, p, m = boot thread_src in
  (match Kernel.run k p with
  | Machine.Halted 0 -> ()
  | Machine.Halted c -> Alcotest.fail (Printf.sprintf "exit %d" c)
  | Machine.Faulted f -> Alcotest.fail (Trap.to_string f)
  | Machine.Out_of_fuel -> Alcotest.fail "fuel");
  Alcotest.(check (list int64)) "worker ran between yields" [ 1L; 2L ] (Machine.output m)

let test_thread_context_not_in_user_memory () =
  (* §5.4: a suspended thread's registers live in the kernel, so no scan of
     user memory can find a sentinel value parked in a register *)
  let sentinel = 0x5e17_13e1_dead_beefL in
  let k, p, m =
    boot
      {|.entry main
.func main
  adr x0, worker
  mov x1, #1
  lsl x1, x1, #38
  svc #3
  svc #4
  mov x0, #0
  hlt
.endfunc
.func worker
  svc #4
  hlt
.endfunc|}
  in
  (* run until the worker has been spawned and we are back in main *)
  Machine.set m (Reg.x 27) sentinel;
  let rec step_until_spawned () =
    if Kernel.thread_count p = 0 && Machine.halted m = None then (
      Machine.step m;
      step_until_spawned ())
  in
  step_until_spawned ();
  Alcotest.(check bool) "thread parked" true (Kernel.thread_count p > 0);
  let found = ref false in
  List.iter
    (fun (base, size, _) ->
      let words = size / 8 in
      for i = 0 to words - 1 do
        match Memory.peek64 (Machine.memory m) (Int64.add base (Int64.of_int (8 * i))) with
        | Some v when Word64.equal v sentinel -> found := true
        | _ -> ()
      done)
    (Memory.mapped_ranges (Machine.memory m));
  ignore (Kernel.run k p);
  Alcotest.(check bool) "sentinel never hit user memory" false !found

let signal_src =
  {|.entry main
.func main
  mov x1, #0
loop:
  add x1, x1, #1
  cmp x1, #2000
  b.lt loop
  mov x0, x1
  svc #1
  mov x0, #0
  hlt
.endfunc
.func handler
  mov x0, #41
  svc #1
  ret
.endfunc|}

let test_signal_roundtrip () =
  let k, p, m = boot signal_src in
  for _ = 1 to 50 do Machine.step m done;
  let x1_before = Machine.get m (Reg.x 1) in
  Kernel.deliver_signal k p ~handler:"handler" ~signum:7;
  Alcotest.(check int) "depth 1" 1 (Kernel.signal_depth p);
  (match Kernel.run k p with
  | Machine.Halted 0 -> ()
  | _ -> Alcotest.fail "run failed");
  ignore x1_before;
  Alcotest.(check (list int64)) "handler then main" [ 41L; 2000L ] (Machine.output m);
  Alcotest.(check int) "depth restored" 0 (Kernel.signal_depth p)

let test_chained_sigreturn_rejects_forgery () =
  let k, p, m =
    let kernel = Kernel.create ~signal_policy:Kernel.Sig_chained (Rng.create 2L) in
    let p = Kernel.boot kernel (Asm.parse signal_src) in
    (kernel, p, Kernel.machine p)
  in
  for _ = 1 to 50 do Machine.step m done;
  Kernel.deliver_signal k p ~handler:"handler" ~signum:7;
  (* adversary corrupts the saved PC in the signal frame *)
  let sp = Machine.get m Reg.SP in
  let pc_slot = Int64.add sp (Int64.of_int (8 * 32)) in
  Memory.store64 (Machine.memory m) pc_slot 0x4242L;
  (match Kernel.run k p with
  | Machine.Halted 139 -> ()
  | Machine.Halted c -> Alcotest.fail (Printf.sprintf "exit %d, wanted kill 139" c)
  | Machine.Faulted f -> Alcotest.fail (Trap.to_string f)
  | Machine.Out_of_fuel -> Alcotest.fail "fuel")

let test_unprotected_sigreturn_accepts_forgery () =
  let k = Kernel.create ~signal_policy:Kernel.Sig_unprotected (Rng.create 2L) in
  let p = Kernel.boot k (Asm.parse signal_src) in
  let m = Kernel.machine p in
  for _ = 1 to 50 do Machine.step m done;
  Kernel.deliver_signal k p ~handler:"handler" ~signum:7;
  let sp = Machine.get m Reg.SP in
  (* corrupt saved x1 so the loop terminates immediately: mainline kernels
     restore whatever the frame says *)
  Memory.store64 (Machine.memory m) (Int64.add sp 8L) 1_999_999L;
  (match Kernel.run k p with
  | Machine.Halted 0 -> ()
  | _ -> Alcotest.fail "run failed");
  match Machine.output m with
  | [ 41L; v ] -> Alcotest.(check bool) "forged register honoured" true (v >= 1_999_999L)
  | _ -> Alcotest.fail "unexpected output"

let test_run_all_processes () =
  (* parent forks a child; both then do independent work; the round-robin
     scheduler completes both *)
  let src =
    {|.entry main
.func main
  svc #2
  cbz x0, child
  mov x1, #0
ploop:
  add x1, x1, #1
  cmp x1, #300
  b.lt ploop
  mov x0, #10
  svc #1
  mov x0, #0
  hlt
child:
  mov x1, #0
cloop:
  add x1, x1, #1
  cmp x1, #500
  b.lt cloop
  mov x0, #20
  svc #1
  mov x0, #0
  hlt
.endfunc|}
  in
  let k = Kernel.create (Rng.create 8L) in
  let parent = Kernel.boot k (Asm.parse src) in
  let outcomes = Kernel.run_all ~quantum:64 k in
  Alcotest.(check int) "two processes" 2 (List.length outcomes);
  List.iter
    (fun (p, o) ->
      match o with
      | Machine.Halted 0 -> ()
      | _ -> Alcotest.fail (Printf.sprintf "process %d did not finish" (Kernel.pid p)))
    outcomes;
  Alcotest.(check (list int64)) "parent output" [ 10L ]
    (Machine.output (Kernel.machine parent));
  match Kernel.children k parent with
  | [ child ] ->
    Alcotest.(check (list int64)) "child output" [ 20L ] (Machine.output (Kernel.machine child))
  | _ -> Alcotest.fail "expected one child"

let test_chained_full_rejects_any_register () =
  (* the pacga-over-everything variant detects forgery of a register the
     plain chain does not cover *)
  let forged_x5 policy =
    let k = Kernel.create ~signal_policy:policy (Rng.create 2L) in
    let p = Kernel.boot k (Asm.parse signal_src) in
    let m = Kernel.machine p in
    for _ = 1 to 50 do Machine.step m done;
    Kernel.deliver_signal k p ~handler:"handler" ~signum:7;
    let sp = Machine.get m Reg.SP in
    Memory.store64 (Machine.memory m) (Int64.add sp (Int64.of_int (8 * 5))) 0xbadL;
    Kernel.run k p
  in
  (match forged_x5 Kernel.Sig_chained with
  | Machine.Halted 0 -> ()  (* PC/CR-only chain accepts the forged X5 *)
  | _ -> Alcotest.fail "plain chain should accept a forged X5");
  match forged_x5 Kernel.Sig_chained_full with
  | Machine.Halted 139 -> ()
  | _ -> Alcotest.fail "full chain should kill the forger"

let test_chained_full_benign () =
  let k = Kernel.create ~signal_policy:Kernel.Sig_chained_full (Rng.create 2L) in
  let p = Kernel.boot k (Asm.parse signal_src) in
  let m = Kernel.machine p in
  for _ = 1 to 50 do Machine.step m done;
  Kernel.deliver_signal k p ~handler:"handler" ~signum:7;
  match Kernel.run k p with
  | Machine.Halted 0 ->
    Alcotest.(check (list int64)) "output" [ 41L; 2000L ] (Machine.output m)
  | _ -> Alcotest.fail "benign signal failed under full chaining"

let test_guest_mprotect () =
  let src =
    {|.data buf 4096
.entry main
.func main
  adr x0, main
  mov x1, #4096
  mov x2, #7
  svc #7
  svc #1
  adr x0, buf
  mov x1, #4096
  mov x2, #4
  svc #7
  svc #1
  adr x3, buf
  str x3, [x3]
  mov x0, #0
  hlt
.endfunc|}
  in
  let k = Kernel.create (Rng.create 3L) in
  let p = Kernel.boot k (Asm.parse src) in
  let m = Kernel.machine p in
  match Kernel.run k p with
  | Machine.Faulted (Trap.Permission (_, Trap.Write)) ->
    (* W+X on code refused, read-only remap succeeded, then the store to
       the now read-only data page faulted *)
    Alcotest.(check (list int64)) "syscall results" [ -1L; 0L ] (Machine.output m)
  | r ->
    Alcotest.fail
      (match r with
      | Machine.Halted c -> Printf.sprintf "halted %d" c
      | Machine.Faulted f -> Trap.to_string f
      | Machine.Out_of_fuel -> "fuel")

(* --- preemptive scheduling -------------------------------------------------------- *)

let preemptive_src =
  {|.data c1 8
.data c2 8
.entry main
.func main
  adr x0, worker
  mov x1, #1
  lsl x1, x1, #38
  svc #3
  mov x2, #0
  adr x3, c1
mainloop:
  ldr x4, [x3]
  add x4, x4, #1
  str x4, [x3]
  add x2, x2, #1
  cmp x2, #400
  b.lt mainloop
  mov x0, #0
  hlt
.endfunc
.func worker
  adr x3, c2
wloop:
  ldr x4, [x3]
  add x4, x4, #1
  str x4, [x3]
  b wloop
.endfunc|}

let test_preemptive_scheduling () =
  (* neither thread ever yields; only the timer interleaves them *)
  let k = Kernel.create (Rng.create 5L) in
  let p = Kernel.boot k (Asm.parse preemptive_src) in
  let m = Kernel.machine p in
  (match Kernel.run_preemptive ~quantum:50 k p with
  | Machine.Halted 0 -> ()
  | Machine.Halted c -> Alcotest.fail (Printf.sprintf "exit %d" c)
  | Machine.Faulted f -> Alcotest.fail (Trap.to_string f)
  | Machine.Out_of_fuel -> Alcotest.fail "fuel");
  let read sym = Memory.load64 (Machine.memory m) (Option.get (Image.symbol (Machine.image m) sym)) in
  Alcotest.(check int64) "main finished its count" 400L (read "c1");
  Alcotest.(check bool) "worker progressed without yielding" true (read "c2" > 0L);
  (* without preemption the worker never runs *)
  let k2 = Kernel.create (Rng.create 5L) in
  let p2 = Kernel.boot k2 (Asm.parse preemptive_src) in
  (match Kernel.run k2 p2 with Machine.Halted 0 -> () | _ -> Alcotest.fail "plain run failed");
  let m2 = Kernel.machine p2 in
  let read2 sym = Memory.load64 (Machine.memory m2) (Option.get (Image.symbol (Machine.image m2) sym)) in
  Alcotest.(check int64) "cooperative run starves the worker" 0L (read2 "c2")

(* --- debugger ----------------------------------------------------------------------- *)

module Debug = Pacstack_machine.Debug

let debug_machine () =
  Machine.load
    (Asm.parse
       {|.data counter 8
.entry main
.func main
  bl helper
  bl helper
  mov x0, #0
  hlt
.endfunc
.func helper
  stp fp, lr, [sp, #-16]!
  mov fp, sp
  adr x1, counter
  ldr x2, [x1]
  add x2, x2, #1
  str x2, [x1]
  ldp fp, lr, [sp], #16
  ret
.endfunc|})

let test_debug_breakpoints () =
  let m = debug_machine () in
  let d = Debug.create m in
  Debug.break_at d "helper";
  (match Debug.continue_ d with
  | Debug.Breakpoint _ -> Alcotest.(check string) "stopped at entry" "helper+0" (Debug.where d)
  | _ -> Alcotest.fail "expected first breakpoint");
  (match Debug.continue_ d with
  | Debug.Breakpoint _ -> ()
  | _ -> Alcotest.fail "expected second breakpoint");
  match Debug.continue_ d with
  | Debug.Halted 0 -> ()
  | _ -> Alcotest.fail "expected halt"

let test_debug_watchpoint () =
  let m = debug_machine () in
  let d = Debug.create m in
  let counter = Option.get (Image.symbol (Machine.image m) "counter") in
  Debug.watch d counter;
  match Debug.continue_ d with
  | Debug.Watchpoint (addr, old, now) ->
    Alcotest.(check int64) "address" counter addr;
    Alcotest.(check int64) "old" 0L old;
    Alcotest.(check int64) "new" 1L now
  | _ -> Alcotest.fail "expected watchpoint"

let test_debug_inspection () =
  let m = debug_machine () in
  let d = Debug.create m in
  Debug.break_at d "helper";
  (match Debug.continue_ d with Debug.Breakpoint _ -> () | _ -> Alcotest.fail "no bp");
  (* step into the prologue so the frame record exists *)
  ignore (Debug.step d);
  ignore (Debug.step d);
  let bt = Debug.backtrace d in
  Alcotest.(check bool) "backtrace mentions main" true
    (List.exists (fun s -> s = "main") bt);
  Alcotest.(check bool) "disassembly marks pc" true
    (String.length (Debug.disassemble_around d) > 0);
  Debug.clear d;
  match Debug.continue_ d with
  | Debug.Halted 0 -> ()
  | _ -> Alcotest.fail "clear removed breakpoints"

(* --- Unwinder ------------------------------------------------------------------ *)

let pacstack_chain_src =
  (* three nested PACStack-instrumented functions, then a hook *)
  let module B = Pacstack_minic.Build in
  let module Ast = Pacstack_minic.Ast in
  Pacstack_minic.Compile.compile ~scheme:Scheme.pacstack
    (Ast.program
       [
         Ast.fdef "f3" ~locals:[ Ast.Scalar "t" ]
           B.[ Ast.Hook "probe"; set "t" (call "id" [ i 3 ]); ret (v "t") ];
         Ast.fdef "id" ~params:[ "x" ] B.[ ret (v "x") ];
         Ast.fdef "f2" ~locals:[ Ast.Scalar "t" ] B.[ set "t" (call "f3" []); ret (v "t") ];
         Ast.fdef "f1" ~locals:[ Ast.Scalar "t" ] B.[ set "t" (call "f2" []); ret (v "t") ];
         Ast.fdef "main" ~locals:[ Ast.Scalar "t" ]
           B.[ set "t" (call "f1" []); print (v "t"); ret (i 0) ];
       ])

let test_unwind_backtrace () =
  let m = Machine.load pacstack_chain_src in
  let seen = ref [] in
  Machine.attach_hook m "probe" (fun m ->
      match Unwind.backtrace m with
      | Ok frames -> seen := List.filter_map (fun f -> f.Unwind.func) frames
      | Error e -> Alcotest.fail e.Unwind.reason);
  (match Machine.run m with
  | Machine.Halted 0 -> ()
  | _ -> Alcotest.fail "victim failed");
  Alcotest.(check (list string)) "call chain" [ "f2"; "f1"; "main"; "__halt" ] !seen

let test_unwind_detects_tamper () =
  let m = Machine.load pacstack_chain_src in
  let result = ref None in
  Machine.attach_hook m "probe" (fun m ->
      (* corrupt the deepest stored chain value, then unwind *)
      let fp = Machine.get m Reg.fp in
      let slot = Int64.sub fp 16L in
      let v = Option.get (Memory.peek64 (Machine.memory m) slot) in
      ignore (Memory.poke64 (Machine.memory m) slot (Int64.logxor v 0xff00000000L));
      result := Some (Unwind.backtrace m));
  ignore (Machine.run m);
  match !result with
  | Some (Error e) ->
    Alcotest.(check int) "fails at the first frame" 0 e.Unwind.depth;
    Alcotest.(check string) "authentication failure" "authentication failure" e.Unwind.reason
  | Some (Ok _) -> Alcotest.fail "tampered chain unwound successfully"
  | None -> Alcotest.fail "hook never fired"

let test_unwind_max_depth () =
  let m = Machine.load pacstack_chain_src in
  let result = ref None in
  Machine.attach_hook m "probe" (fun m -> result := Some (Unwind.backtrace ~max_depth:2 m));
  ignore (Machine.run m);
  match !result with
  | Some (Error e) -> Alcotest.(check string) "depth limit" "max depth exceeded" e.Unwind.reason
  | _ -> Alcotest.fail "expected depth error"

(* --- Profile ---------------------------------------------------------------- *)

module Profile = Pacstack_machine.Profile

let test_profile_attribution () =
  let m = Machine.load pacstack_chain_src in
  let p = Profile.attach m in
  (match Machine.run m with Machine.Halted 0 -> () | _ -> Alcotest.fail "run failed");
  (* every function in the chain was activated exactly once, id twice
     (once from f3, once... no — once) *)
  List.iter
    (fun name ->
      match Profile.entry_of p name with
      | Some e ->
        Alcotest.(check int) (name ^ " activations") 1 e.Profile.activations;
        Alcotest.(check bool) (name ^ " cycles counted") true (e.Profile.cycles > 0)
      | None -> Alcotest.fail (name ^ " not profiled"))
    [ "f1"; "f2"; "f3"; "id" ];
  Alcotest.(check bool) "edges include main->f1" true
    (List.mem_assoc ("main", "f1") (Profile.call_edges p));
  Alcotest.(check bool) "density positive" true (Profile.call_density p > 0.0);
  Alcotest.(check int) "total calls" 4 (Profile.total_calls p)

let test_profile_detach () =
  let m = Machine.load pacstack_chain_src in
  let p = Profile.attach m in
  Profile.detach m;
  ignore (Machine.run m);
  Alcotest.(check int) "no attribution after detach" 0 (Profile.total_calls p)

(* --- validated longjmp -------------------------------------------------------- *)

let unwind_victim_m () =
  Machine.load
    (Pacstack_minic.Compile.compile ~scheme:Scheme.pacstack
       (Pacstack_workloads.Scenarios.unwind_victim ~depth:4))

let test_validated_longjmp_transfers () =
  let m = unwind_victim_m () in
  let fired = ref false in
  Machine.attach_hook m "deep" (fun m ->
      fired := true;
      let jb = Option.get (Image.symbol (Machine.image m) "jb") in
      match Unwind.validated_longjmp m ~jmp_buf:jb ~value:55L with
      | Ok d -> Alcotest.(check bool) "unwound several frames" true (d > 0)
      | Error e -> Alcotest.fail e.Unwind.reason);
  (match Machine.run ~fuel:1_000_000 m with
  | Machine.Halted 0 -> ()
  | _ -> Alcotest.fail "victim failed");
  Alcotest.(check bool) "hook fired" true !fired;
  Alcotest.(check (list int64)) "landed with the value" [ 55L ] (Machine.output m)

let test_validated_longjmp_zero_becomes_one () =
  let m = unwind_victim_m () in
  Machine.attach_hook m "deep" (fun m ->
      let jb = Option.get (Image.symbol (Machine.image m) "jb") in
      ignore (Unwind.validated_longjmp m ~jmp_buf:jb ~value:0L));
  ignore (Machine.run ~fuel:1_000_000 m);
  Alcotest.(check (list int64)) "longjmp(0) delivers 1" [ 1L ] (Machine.output m)

let test_validated_longjmp_rejects_forgery () =
  let m = unwind_victim_m () in
  let result = ref None in
  Machine.attach_hook m "deep" (fun m ->
      let jb = Option.get (Image.symbol (Machine.image m) "jb") in
      (* corrupt the buffer's bound return address *)
      let slot = Int64.add jb 88L in
      let v = Option.get (Memory.peek64 (Machine.memory m) slot) in
      ignore (Memory.poke64 (Machine.memory m) slot (Int64.logxor v 0x1234L));
      result := Some (Unwind.validated_longjmp m ~jmp_buf:jb ~value:55L));
  ignore (Machine.run ~fuel:1_000_000 m);
  match !result with
  | Some (Error e) ->
    Alcotest.(check string) "refused" "jmp_buf return address failed authentication"
      e.Unwind.reason
  | Some (Ok _) -> Alcotest.fail "forged jmp_buf accepted"
  | None -> Alcotest.fail "hook never fired"

(* --- forward CFI + code bytes --------------------------------------------------- *)

let test_forward_cfi_blocks_midfunction () =
  let src =
    ".entry main\n.func main\n  adr x9, main\n  add x9, x9, #8\n  blr x9\n  hlt\n.endfunc\n"
  in
  let m = Machine.load (Asm.parse src) in
  (match Machine.run m with
  | Machine.Faulted (Trap.Cfi_violation _) -> ()
  | _ -> Alcotest.fail "expected CFI violation");
  (* same program with CFI disabled spins through main again *)
  let m2 = Machine.load (Asm.parse src) in
  Machine.set_forward_cfi m2 false;
  match Machine.run ~fuel:100 m2 with
  | Machine.Faulted (Trap.Cfi_violation _) -> Alcotest.fail "CFI fired while disabled"
  | _ -> ()

let test_forward_cfi_allows_entries () =
  let src =
    ".entry main\n.func main\n  adr x9, callee\n  blr x9\n  mov x0, #0\n  hlt\n.endfunc\n.func callee\n  ret\n.endfunc\n"
  in
  match Machine.run (Machine.load (Asm.parse src)) with
  | Machine.Halted 0 -> ()
  | _ -> Alcotest.fail "entry-targeted blr should pass"

let test_code_bytes_resident () =
  (* the encoded program is readable in the executable pages and
     disassembles back to itself *)
  let prog = Asm.parse ".entry main\n.func main\n  paciasp\n  nop\n  hlt\n.endfunc\n" in
  let m = Machine.load prog in
  let image = Machine.image m in
  let words, pools = Image.encoded image in
  Array.iteri
    (fun i w ->
      let addr = Int64.add Image.code_base (Int64.of_int (4 * i)) in
      let in_mem =
        Int64.to_int
          (Int64.logand (Memory.load64 (Machine.memory m) (Int64.logand addr (Int64.lognot 7L)))
             0xffffffffL)
      in
      ignore in_mem;
      let b0 = Memory.load8 (Machine.memory m) addr in
      Alcotest.(check int) "low byte matches" (Int32.to_int w land 0xff) b0)
    words;
  Alcotest.(check bool) "disassembly mentions paciasp" true
    (String.length (Pacstack_isa.Encode.disassemble words pools) > 0);
  Alcotest.(check bool) "entry is a function entry" true
    (Image.is_function_entry image (Image.entry image));
  Alcotest.(check bool) "entry+4 is not" false
    (Image.is_function_entry image (Int64.add (Image.entry image) 4L))

let () =
  Alcotest.run "machine"
    [
      ( "memory",
        [
          Alcotest.test_case "map/load/store" `Quick test_mem_map_load_store;
          Alcotest.test_case "little endian" `Quick test_mem_little_endian;
          Alcotest.test_case "cross page" `Quick test_mem_cross_page;
          Alcotest.test_case "unmapped fault" `Quick test_mem_unmapped_fault;
          Alcotest.test_case "W^X" `Quick test_mem_wxorx;
          Alcotest.test_case "permissions" `Quick test_mem_permissions;
          Alcotest.test_case "double map" `Quick test_mem_double_map;
          Alcotest.test_case "peek/poke" `Quick test_mem_peek_poke;
          Alcotest.test_case "copy independence" `Quick test_mem_copy_independent;
          Alcotest.test_case "32-bit access" `Quick test_mem_word32;
          Alcotest.test_case "TLB invalidated by protect" `Quick test_mem_tlb_protect;
          Alcotest.test_case "TLB invalidated by unmap" `Quick test_mem_tlb_unmap;
          Alcotest.test_case "exec TLB invalidation" `Quick test_mem_tlb_exec;
          Alcotest.test_case "mapped ranges" `Quick test_mem_ranges;
        ] );
      ( "semantics",
        [
          Alcotest.test_case "arithmetic" `Quick test_arithmetic;
          Alcotest.test_case "logic and shifts" `Quick test_logic_shifts;
          Alcotest.test_case "branches" `Quick test_branches;
          Alcotest.test_case "stack pairs" `Quick test_stack_pair_ops;
          Alcotest.test_case "call/return" `Quick test_call_return;
          Alcotest.test_case "W^X on code" `Quick test_write_to_code_faults;
          Alcotest.test_case "exec of data" `Quick test_exec_of_data_faults;
          Alcotest.test_case "non-canonical deref" `Quick test_noncanonical_load_faults;
          Alcotest.test_case "retaa roundtrip" `Quick test_retaa_roundtrip;
          Alcotest.test_case "retaa detects corruption" `Quick test_retaa_detects_corruption;
          Alcotest.test_case "pacia/autia" `Quick test_pacia_autia_machine;
          Alcotest.test_case "xpaci" `Quick test_xpaci;
          Alcotest.test_case "hooks" `Quick test_hooks;
          Alcotest.test_case "clone independence" `Quick test_clone_independent;
          Alcotest.test_case "context words" `Quick test_context_words_roundtrip;
          Alcotest.test_case "xzr" `Quick test_xzr_semantics;
        ] );
      ( "kernel",
        [
          Alcotest.test_case "fork" `Quick test_kernel_fork;
          Alcotest.test_case "exec regenerates keys" `Quick test_kernel_exec_regenerates_keys;
          Alcotest.test_case "getpid" `Quick test_kernel_getpid;
          Alcotest.test_case "threads" `Quick test_kernel_threads;
          Alcotest.test_case "thread context kernel-side" `Quick
            test_thread_context_not_in_user_memory;
          Alcotest.test_case "signal roundtrip" `Quick test_signal_roundtrip;
          Alcotest.test_case "chained sigreturn rejects forgery" `Quick
            test_chained_sigreturn_rejects_forgery;
          Alcotest.test_case "unprotected sigreturn accepts forgery" `Quick
            test_unprotected_sigreturn_accepts_forgery;
          Alcotest.test_case "guest mprotect respects W^X" `Quick test_guest_mprotect;
          Alcotest.test_case "run_all round-robin" `Quick test_run_all_processes;
          Alcotest.test_case "full chain covers all registers" `Quick
            test_chained_full_rejects_any_register;
          Alcotest.test_case "full chain benign round-trip" `Quick test_chained_full_benign;
        ] );
      ( "unwind",
        [
          Alcotest.test_case "backtrace" `Quick test_unwind_backtrace;
          Alcotest.test_case "detects tamper" `Quick test_unwind_detects_tamper;
          Alcotest.test_case "max depth" `Quick test_unwind_max_depth;
          Alcotest.test_case "validated longjmp transfers" `Quick
            test_validated_longjmp_transfers;
          Alcotest.test_case "validated longjmp(0) -> 1" `Quick
            test_validated_longjmp_zero_becomes_one;
          Alcotest.test_case "validated longjmp rejects forgery" `Quick
            test_validated_longjmp_rejects_forgery;
        ] );
      ( "preemption",
        [ Alcotest.test_case "timer interleaves threads" `Quick test_preemptive_scheduling ] );
      ( "debug",
        [
          Alcotest.test_case "breakpoints" `Quick test_debug_breakpoints;
          Alcotest.test_case "watchpoints" `Quick test_debug_watchpoint;
          Alcotest.test_case "inspection" `Quick test_debug_inspection;
        ] );
      ( "profile",
        [
          Alcotest.test_case "attribution" `Quick test_profile_attribution;
          Alcotest.test_case "detach" `Quick test_profile_detach;
        ] );
      ( "cfi+code",
        [
          Alcotest.test_case "CFI blocks mid-function" `Quick test_forward_cfi_blocks_midfunction;
          Alcotest.test_case "CFI allows entries" `Quick test_forward_cfi_allows_entries;
          Alcotest.test_case "code bytes resident" `Quick test_code_bytes_resident;
        ] );
    ]
