(* Tests for the adversary toolkit: the Listing 6 attack matrix is
   asserted cell by cell against the paper's security claims, plus the
   signing-gadget, sigreturn and brute-force experiments. *)

module Word64 = Pacstack_util.Word64
module Rng = Pacstack_util.Rng
module Config = Pacstack_pa.Config
module Prf = Pacstack_qarma.Prf
module Scheme = Pacstack_harden.Scheme
module Kernel = Pacstack_machine.Kernel
module Machine = Pacstack_machine.Machine
module Memory = Pacstack_machine.Memory
module Image = Pacstack_machine.Image
module Adversary = Pacstack_attacker.Adversary
module Reuse = Pacstack_attacker.Reuse
module Gadget = Pacstack_attacker.Gadget
module Sigreturn = Pacstack_attacker.Sigreturn
module Bruteforce = Pacstack_attacker.Bruteforce

let outcome =
  Alcotest.testable Adversary.pp_outcome (fun a b ->
      match a, b with
      | Adversary.Detected _, Adversary.Detected _ -> true
      | _ -> a = b)

let check_attack ~scheme ~strategy expected =
  Alcotest.check outcome
    (Printf.sprintf "%s vs %s" (Reuse.strategy_to_string strategy) (Scheme.to_string scheme))
    expected
    (Reuse.attack ~scheme strategy)

(* --- the §6.1 matrix ------------------------------------------------------------ *)

let test_arbitrary_redirect () =
  check_attack ~scheme:Scheme.unprotected ~strategy:Reuse.Arbitrary_redirect Adversary.Hijacked;
  check_attack ~scheme:Scheme.stack_protector ~strategy:Reuse.Arbitrary_redirect
    Adversary.Hijacked;
  (* targeted writes sail past canaries *)
  check_attack ~scheme:Scheme.branch_protection ~strategy:Reuse.Arbitrary_redirect
    (Adversary.Detected "");
  (* an unsigned pointer fails retaa *)
  check_attack ~scheme:Scheme.shadow_stack ~strategy:Reuse.Arbitrary_redirect Adversary.Hijacked;
  (* a software shadow stack falls once its location is known *)
  check_attack ~scheme:Scheme.pacstack_nomask ~strategy:Reuse.Arbitrary_redirect
    (Adversary.Detected "");
  check_attack ~scheme:Scheme.pacstack ~strategy:Reuse.Arbitrary_redirect (Adversary.Detected "")

let test_sibling_reuse () =
  (* the headline: every scheme except PACStack is bent by reusing the
     sibling's (signed) return address — including -mbranch-protection *)
  check_attack ~scheme:Scheme.unprotected ~strategy:Reuse.Sibling_reuse Adversary.Bent;
  check_attack ~scheme:Scheme.stack_protector ~strategy:Reuse.Sibling_reuse Adversary.Bent;
  check_attack ~scheme:Scheme.branch_protection ~strategy:Reuse.Sibling_reuse Adversary.Bent;
  check_attack ~scheme:Scheme.shadow_stack ~strategy:Reuse.Sibling_reuse Adversary.Bent;
  check_attack ~scheme:Scheme.pacstack_nomask ~strategy:Reuse.Sibling_reuse Adversary.No_effect;
  check_attack ~scheme:Scheme.pacstack ~strategy:Reuse.Sibling_reuse Adversary.No_effect

let test_linear_overflow () =
  check_attack ~scheme:Scheme.unprotected ~strategy:Reuse.Linear_overflow Adversary.Hijacked;
  check_attack ~scheme:Scheme.stack_protector ~strategy:Reuse.Linear_overflow
    (Adversary.Detected "");
  (* the canary's home turf *)
  check_attack ~scheme:Scheme.branch_protection ~strategy:Reuse.Linear_overflow
    (Adversary.Detected "");
  check_attack ~scheme:Scheme.pacstack_nomask ~strategy:Reuse.Linear_overflow
    (Adversary.Detected "");
  check_attack ~scheme:Scheme.pacstack ~strategy:Reuse.Linear_overflow (Adversary.Detected "")

let test_matrix_shape () =
  let m = Reuse.matrix () in
  Alcotest.(check int) "three strategies" 3 (List.length m);
  List.iter
    (fun (_, row) ->
      Alcotest.(check int) "all registered schemes" (List.length Scheme.all) (List.length row))
    m

(* --- signing gadget -------------------------------------------------------------- *)

let cfg = Config.default
let prf = Prf.create_fast 0x6ad6e7L

let test_gadget_forges () =
  Alcotest.(check bool) "forgery validates" true
    (Gadget.gadget_forges_valid_pointer cfg prf ~target:0xabc0L ~modifier:0x11L);
  (* without flipping bit p back, the forgery must fail *)
  let forged = Gadget.forge_with_gadget cfg prf ~target:0xabc0L ~modifier:0x11L in
  let unflipped = Word64.flip_bit forged (Config.pac_lo cfg) in
  (match Pacstack_pa.Pac.auth cfg prf unflipped ~modifier:0x11L with
  | Pacstack_pa.Pac.Valid _ -> Alcotest.fail "unflipped forgery validated"
  | Pacstack_pa.Pac.Invalid _ -> ())

let test_gadget_blocked_by_pacstack () =
  Alcotest.check outcome "masked" (Adversary.Detected "") (Gadget.tail_call_attack ~masked:true);
  Alcotest.check outcome "nomask" (Adversary.Detected "")
    (Gadget.tail_call_attack ~masked:false)

(* --- sigreturn -------------------------------------------------------------------- *)

let test_sigreturn_benign () =
  Alcotest.(check bool) "unprotected round-trip" true
    (Sigreturn.benign_roundtrip ~policy:Kernel.Sig_unprotected);
  Alcotest.(check bool) "chained round-trip" true
    (Sigreturn.benign_roundtrip ~policy:Kernel.Sig_chained)

let test_sigreturn_attack () =
  Alcotest.check outcome "unprotected kernel hijacked" Adversary.Hijacked
    (Sigreturn.attack ~policy:Kernel.Sig_unprotected ());
  Alcotest.check outcome "chained kernel detects" (Adversary.Detected "")
    (Sigreturn.attack ~policy:Kernel.Sig_chained ())

let test_sigreturn_attack_without_signal () =
  (* even with no real signal in flight, a forged frame must be refused *)
  Alcotest.check outcome "spontaneous sigreturn detected" (Adversary.Detected "")
    (Sigreturn.attack ~policy:Kernel.Sig_chained ~deliver_real_signal:false ())

(* --- brute force ------------------------------------------------------------------- *)

let test_bruteforce_scaling () =
  let r5 = Bruteforce.run ~pac_bits:5 ~trials:25 ~seed:7L () in
  Alcotest.(check bool)
    (Printf.sprintf "b=5 mean %.0f near 32" r5.Bruteforce.mean_guesses)
    true
    (r5.Bruteforce.mean_guesses > 32.0 /. 2.5 && r5.Bruteforce.mean_guesses < 32.0 *. 2.5)

(* --- forward-edge CFI (assumption A2) ------------------------------------------------ *)

module Fcfi = Pacstack_attacker.Forward_cfi

let test_cfi_blocks_midfunction_pointers () =
  Alcotest.check outcome "mid-function rejected" (Adversary.Detected "")
    (Fcfi.attack ~cfi:true Fcfi.Mid_function)

let test_cfi_admits_wrong_entries () =
  (* coarse CFI cannot tell a wrong-but-valid entry apart — the paper's
     argument for why backward-edge protection is still required *)
  Alcotest.check outcome "wrong entry admitted" Adversary.Hijacked
    (Fcfi.attack ~cfi:true Fcfi.Entry_of_evil)

(* --- §9.2 interop ---------------------------------------------------------------------- *)

let app_functions = [ "main"; "func"; "a"; "b" ]

let test_interop_protected_app () =
  let overrides = List.map (fun f -> (f, Scheme.pacstack)) app_functions in
  Alcotest.check outcome "app-side protection holds" Adversary.No_effect
    (Reuse.attack ~scheme:Scheme.unprotected ~overrides Reuse.Sibling_reuse)

let test_interop_unprotected_app () =
  let overrides = List.map (fun f -> (f, Scheme.unprotected)) app_functions in
  Alcotest.check outcome "unprotected app remains attackable" Adversary.Bent
    (Reuse.attack ~scheme:Scheme.pacstack ~overrides Reuse.Sibling_reuse)

(* --- gadget surface --------------------------------------------------------------------- *)

module Gscan = Pacstack_attacker.Gadget_scan
module Scenarios = Pacstack_workloads.Scenarios

let test_gadget_surface_counts () =
  let victim = Scenarios.listing6 ~rounds:2 in
  let base = Gscan.scan_scheme Scheme.unprotected victim in
  let pac = Gscan.scan_scheme Scheme.pacstack victim in
  let bp = Gscan.scan_scheme Scheme.branch_protection victim in
  let scs = Gscan.scan_scheme Scheme.shadow_stack victim in
  Alcotest.(check int) "same return count" base.Gscan.total_returns pac.Gscan.total_returns;
  Alcotest.(check bool) "baseline has usable gadgets" true (base.Gscan.usable > 0);
  Alcotest.(check bool) "pacstack guards the app returns" true
    (pac.Gscan.pa_guarded >= base.Gscan.usable - 1);
  Alcotest.(check bool) "pacstack leaves at most libc longjmp usable" true
    (pac.Gscan.usable <= 1);
  Alcotest.(check bool) "branch protection guards too" true (bp.Gscan.pa_guarded > 0);
  Alcotest.(check bool) "shadow stack shadows" true (scs.Gscan.shadowed > 0);
  Alcotest.(check int) "nothing unaccounted" base.Gscan.total_returns
    (pac.Gscan.usable + pac.Gscan.pa_guarded + pac.Gscan.shadowed + pac.Gscan.register_resident)

(* --- fuzz: random stack corruption never captures PACStack control flow -------------- *)

let test_random_corruption_never_hijacks () =
  (* the strongest end-to-end property: whatever the adversary scribbles
     over the victim's writable memory while a frame is live, control
     never reaches [evil] under full-width PACStack — at b = 16 a hijack
     needs a 2^-16 event per run, invisible in 150 runs *)
  let rng = Rng.create 0xf422L in
  let victim = Scenarios.listing6 ~rounds:2 in
  let program = Pacstack_minic.Compile.compile ~scheme:Scheme.pacstack victim in
  for _ = 1 to 150 do
    let m = Machine.load ~rng:(Rng.split rng) program in
    Machine.attach_hook m Scenarios.overwrite_hook (fun m ->
        let fp = Machine.get m (Pacstack_isa.Reg.fp) in
        for _ = 1 to 8 do
          (* random word-aligned writes around the live frames *)
          let off = 8 * (Rng.int rng 64 - 32) in
          let addr = Int64.add fp (Int64.of_int off) in
          ignore (Adversary.write m addr (Rng.next64 rng))
        done);
    let outcome = Machine.run ~fuel:300_000 m in
    match Adversary.classify ~expected:[] m outcome with
    | Adversary.Hijacked -> Alcotest.fail "random corruption captured control"
    | Adversary.Bent | Adversary.Detected _ | Adversary.No_effect -> ()
  done

(* --- adversary primitives ------------------------------------------------------------ *)

let test_adversary_respects_wxorx () =
  let prog = Pacstack_isa.Asm.parse ".entry main\n.func main\n  mov x0, #0\n  hlt\n.endfunc" in
  let m = Machine.load prog in
  Alcotest.(check bool) "cannot write code" false (Adversary.write m Image.code_base 0L);
  Alcotest.(check bool) "can read code" true (Adversary.read m Image.code_base <> None);
  Alcotest.(check bool) "unmapped reads as None" true (Adversary.read m 0x123456L = None)

let test_shadow_scan () =
  let prog =
    Pacstack_isa.Asm.parse
      ".entry main\n.func main\n  mov x9, #77\n  str x9, [x18], #8\n  mov x0, #0\n  hlt\n.endfunc"
  in
  let m = Machine.load prog in
  ignore (Machine.run m);
  match Adversary.shadow_top_slot m with
  | Some slot ->
    Alcotest.(check (option int64)) "finds the pushed entry" (Some 77L) (Adversary.read m slot)
  | None -> Alcotest.fail "shadow entry not found"

(* --- Typed failure exceptions ------------------------------------------ *)

(* Listing 6's shape — hooks and all — but with no [evil] landing pad:
   the attack must fail with a payload naming the symbol and scheme, not
   a bare [Failure]. *)
let victim_without_evil =
  let module Ast = Pacstack_minic.Ast in
  let module B = Pacstack_minic.Build in
  Ast.program
    [
      Ast.fdef "a" ~locals:[ Ast.Scalar "t" ]
        B.[ Ast.Hook Scenarios.disclose_hook; set "t" (call "id" [ i 1 ]); ret (v "t") ];
      Ast.fdef "id" ~params:[ "x" ] B.[ ret (v "x") ];
      Ast.fdef "b" ~locals:[ Ast.Scalar "t" ]
        B.[ Ast.Hook Scenarios.overwrite_hook; set "t" (call "id" [ i 2 ]); ret (v "t") ];
      Ast.fdef "main" ~locals:[ Ast.Scalar "x" ]
        B.[
          set "x" (call "a" [] + call "b" []);
          print (v "x");
          ret (i 0);
        ];
    ]

let test_missing_evil_payload () =
  Alcotest.check_raises "payload carries symbol and scheme"
    (Reuse.Missing_evil_function { symbol = "evil"; scheme = Scheme.unprotected })
    (fun () ->
      ignore
        (Reuse.attack ~scheme:Scheme.unprotected ~victim:victim_without_evil
           Reuse.Arbitrary_redirect))

(* A victim that never halts: [benign_output] must identify the broken
   victim/scheme pair instead of failing anonymously. *)
let test_benign_run_failed_payload () =
  let module Ast = Pacstack_minic.Ast in
  let module B = Pacstack_minic.Build in
  let spinner =
    Ast.program
      [
        Ast.fdef "main" ~locals:[ Ast.Scalar "z" ]
          B.[ set "z" (i 1); while_ (v "z" == i 1) []; ret (i 0) ];
      ]
  in
  Alcotest.check_raises "payload carries scheme and outcome"
    (Adversary.Benign_run_failed
       { scheme = Scheme.pacstack; outcome = "benign run out of fuel" })
    (fun () -> ignore (Adversary.benign_output Scheme.pacstack spinner))

let () =
  Alcotest.run "attacker"
    [
      ( "reuse",
        [
          Alcotest.test_case "arbitrary redirect" `Slow test_arbitrary_redirect;
          Alcotest.test_case "sibling reuse" `Slow test_sibling_reuse;
          Alcotest.test_case "linear overflow" `Slow test_linear_overflow;
          Alcotest.test_case "matrix shape" `Slow test_matrix_shape;
        ] );
      ( "gadget",
        [
          Alcotest.test_case "gadget forges PACs" `Quick test_gadget_forges;
          Alcotest.test_case "blocked by PACStack" `Quick test_gadget_blocked_by_pacstack;
        ] );
      ( "sigreturn",
        [
          Alcotest.test_case "benign round-trips" `Quick test_sigreturn_benign;
          Alcotest.test_case "attack outcomes" `Quick test_sigreturn_attack;
          Alcotest.test_case "spontaneous sigreturn" `Quick test_sigreturn_attack_without_signal;
        ] );
      ("bruteforce", [ Alcotest.test_case "guess scaling" `Slow test_bruteforce_scaling ]);
      ( "forward-cfi",
        [
          Alcotest.test_case "mid-function blocked" `Quick test_cfi_blocks_midfunction_pointers;
          Alcotest.test_case "wrong entries admitted" `Quick test_cfi_admits_wrong_entries;
        ] );
      ( "interop",
        [
          Alcotest.test_case "protected app" `Quick test_interop_protected_app;
          Alcotest.test_case "unprotected app" `Quick test_interop_unprotected_app;
        ] );
      ( "gadget-scan",
        [ Alcotest.test_case "surface counts" `Quick test_gadget_surface_counts ] );
      ( "fuzz",
        [
          Alcotest.test_case "random corruption never hijacks" `Slow
            test_random_corruption_never_hijacks;
        ] );
      ( "adversary",
        [
          Alcotest.test_case "W^X binds the adversary" `Quick test_adversary_respects_wxorx;
          Alcotest.test_case "shadow-region scan" `Quick test_shadow_scan;
        ] );
      ( "typed-failures",
        [
          Alcotest.test_case "missing evil function" `Quick test_missing_evil_payload;
          Alcotest.test_case "benign run failed" `Quick test_benign_run_failed_payload;
        ] );
    ]
