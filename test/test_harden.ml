(* Tests for the hardening passes: scheme naming, the exact instruction
   sequences of the paper's listings, leaf/canary heuristics and the
   well-formedness of the runtime support functions. *)

module Instr = Pacstack_isa.Instr
module Reg = Pacstack_isa.Reg
module Program = Pacstack_isa.Program
module Scheme = Pacstack_harden.Scheme
module Frame = Pacstack_harden.Frame
module Runtime = Pacstack_harden.Runtime

let show_seq l = String.concat "; " (List.map Instr.to_string l)
let check_seq = Alcotest.testable (Fmt.of_to_string show_seq) ( = )

(* --- Scheme ------------------------------------------------------------------ *)

let test_scheme_roundtrip () =
  List.iter
    (fun s ->
      Alcotest.(check bool) (Scheme.to_string s) true
        (match Scheme.of_string (Scheme.to_string s) with
        | Some s' -> Scheme.equal s s'
        | None -> false))
    Scheme.all

let test_scheme_aliases () =
  Alcotest.(check bool) "scs alias" true (Scheme.of_string "scs" = Some Scheme.shadow_stack);
  Alcotest.(check bool) "none alias" true (Scheme.of_string "none" = Some Scheme.unprotected);
  Alcotest.(check bool) "unknown" true (Scheme.of_string "pac" = None)

let test_chain_register_reservation () =
  Alcotest.(check bool) "pacstack reserves CR" true (Scheme.uses_chain_register Scheme.pacstack);
  Alcotest.(check bool) "nomask reserves CR" true
    (Scheme.uses_chain_register Scheme.pacstack_nomask);
  Alcotest.(check bool) "baseline does not" false
    (Scheme.uses_chain_register Scheme.unprotected)

(* --- Frame -------------------------------------------------------------------- *)

let nonleaf = Frame.traits ~locals_bytes:32 ()
let leaf = Frame.traits ~is_leaf:true ~locals_bytes:16 ()
let arrays = Frame.traits ~has_arrays:true ~locals_bytes:32 ()

let test_traits_validation () =
  Alcotest.check_raises "unaligned locals"
    (Invalid_argument "Frame.traits: locals_bytes must be 16-byte aligned") (fun () ->
      ignore (Frame.traits ~locals_bytes:8 ()))

let test_protects_return () =
  Alcotest.(check bool) "baseline never" false (Frame.protects_return Scheme.unprotected nonleaf);
  Alcotest.(check bool) "canary needs arrays" false
    (Frame.protects_return Scheme.stack_protector nonleaf);
  Alcotest.(check bool) "canary with arrays" true
    (Frame.protects_return Scheme.stack_protector arrays);
  Alcotest.(check bool) "pacstack non-leaf" true (Frame.protects_return Scheme.pacstack nonleaf);
  Alcotest.(check bool) "pacstack skips leaves" false (Frame.protects_return Scheme.pacstack leaf);
  Alcotest.(check bool) "bp skips leaves" false
    (Frame.protects_return Scheme.branch_protection leaf)

let test_frame_overhead () =
  Alcotest.(check int) "pacstack +16" 16 (Frame.frame_overhead_bytes Scheme.pacstack nonleaf);
  Alcotest.(check int) "scs +8" 8 (Frame.frame_overhead_bytes Scheme.shadow_stack nonleaf);
  Alcotest.(check int) "canary +16 on arrays" 16
    (Frame.frame_overhead_bytes Scheme.stack_protector arrays);
  Alcotest.(check int) "bp +0" 0 (Frame.frame_overhead_bytes Scheme.branch_protection nonleaf);
  Alcotest.(check int) "leaf +0" 0 (Frame.frame_overhead_bytes Scheme.pacstack leaf)

let sp = Reg.SP
let fp = Reg.fp
let lr = Reg.lr
let x28 = Reg.cr
let x15 = Reg.scratch
let mem base offset index = { Instr.base; offset; index }

(* Listing 2: PACStack without masking. *)
let test_pacstack_nomask_listing2 () =
  let t = Frame.traits () in
  Alcotest.check check_seq "prologue"
    [
      Instr.Str (x28, mem sp (-32) Instr.Pre);
      Instr.Stp (fp, lr, mem sp 16 Instr.Offset);
      Instr.Add (fp, sp, Instr.Imm 16L);
      Instr.Pacia (lr, x28);
      Instr.Mov (x28, Instr.Reg lr);
    ]
    (Frame.prologue Scheme.pacstack_nomask t);
  Alcotest.check check_seq "epilogue"
    [
      Instr.Mov (lr, Instr.Reg x28);
      Instr.Ldr (fp, mem sp 16 Instr.Offset);
      Instr.Ldr (x28, mem sp 32 Instr.Post);
      Instr.Autia (lr, x28);
      Instr.Ret lr;
    ]
    (Frame.epilogue Scheme.pacstack_nomask t)

(* Listing 3: the masked variant recreates and clears the mask around every
   use. *)
let test_pacstack_masked_listing3 () =
  let t = Frame.traits () in
  let prologue = Frame.prologue Scheme.pacstack t in
  let epilogue = Frame.epilogue Scheme.pacstack t in
  let mask_seq =
    [
      Instr.Mov (x15, Instr.Reg Reg.XZR);
      Instr.Pacia (x15, x28);
      Instr.Eor (lr, lr, Instr.Reg x15);
      Instr.Mov (x15, Instr.Reg Reg.XZR);
    ]
  in
  let contains ~sub l =
    let rec go = function
      | [] -> false
      | _ :: rest as l -> (List.length l >= List.length sub && List.filteri (fun i _ -> i < List.length sub) l = sub) || go rest
    in
    go l
  in
  Alcotest.(check bool) "prologue masks" true (contains ~sub:mask_seq prologue);
  Alcotest.(check bool) "epilogue unmasks" true (contains ~sub:mask_seq epilogue);
  (* mask never flows anywhere but X15, which is cleared after each use *)
  Alcotest.(check int) "two clears per sequence" 2
    (List.length
       (List.filter (fun i -> i = Instr.Mov (x15, Instr.Reg Reg.XZR)) prologue))

(* Listing 1: -mbranch-protection. *)
let test_branch_protection_listing1 () =
  let t = Frame.traits () in
  Alcotest.check check_seq "prologue"
    [ Instr.Paciasp; Instr.Stp (fp, lr, mem sp (-16) Instr.Pre); Instr.Mov (fp, Instr.Reg sp) ]
    (Frame.prologue Scheme.branch_protection t);
  Alcotest.check check_seq "epilogue"
    [ Instr.Ldp (fp, lr, mem sp 16 Instr.Post); Instr.Retaa ]
    (Frame.epilogue Scheme.branch_protection t)

let test_shadow_stack_sequences () =
  let t = Frame.traits () in
  (match Frame.prologue Scheme.shadow_stack t with
  | Instr.Str (r, { Instr.base; offset = 8; index = Instr.Post }) :: _ ->
    Alcotest.(check bool) "pushes LR via X18" true (Reg.equal r lr && Reg.equal base Reg.shadow)
  | _ -> Alcotest.fail "expected shadow push first");
  match List.rev (Frame.epilogue Scheme.shadow_stack t) with
  | Instr.Ret _ :: Instr.Ldr (r, { Instr.base; offset = -8; index = Instr.Pre }) :: _ ->
    Alcotest.(check bool) "pops LR from X18" true (Reg.equal r lr && Reg.equal base Reg.shadow)
  | _ -> Alcotest.fail "expected shadow pop before ret"

let test_canary_sequences () =
  let t = arrays in
  let prologue = Frame.prologue Scheme.stack_protector t in
  let epilogue = Frame.epilogue Scheme.stack_protector t in
  Alcotest.(check bool) "prologue stores canary" true
    (List.exists
       (function Instr.Str (_, { Instr.offset; _ }) -> offset = Frame.canary_slot t | _ -> false)
       prologue);
  Alcotest.(check bool) "epilogue branches to failure handler" true
    (List.exists
       (function Instr.Bcond (_, l) -> l = Frame.stack_chk_fail_symbol | _ -> false)
       epilogue)

let test_leaf_frames_minimal () =
  List.iter
    (fun scheme ->
      Alcotest.check check_seq
        (Scheme.to_string scheme ^ " leaf prologue")
        [ Instr.Sub (sp, sp, Instr.Imm 16L) ]
        (Frame.prologue scheme leaf);
      Alcotest.check check_seq
        (Scheme.to_string scheme ^ " leaf epilogue")
        [ Instr.Add (sp, sp, Instr.Imm 16L); Instr.Ret lr ]
        (Frame.epilogue scheme leaf))
    [ Scheme.unprotected; Scheme.branch_protection; Scheme.shadow_stack; Scheme.pacstack ]

let test_locals_allocation () =
  let t = Frame.traits ~locals_bytes:48 () in
  Alcotest.(check bool) "prologue allocates locals" true
    (List.exists (fun i -> i = Instr.Sub (sp, sp, Instr.Imm 48L)) (Frame.prologue Scheme.pacstack t));
  Alcotest.(check bool) "epilogue releases locals" true
    (List.exists (fun i -> i = Instr.Add (sp, sp, Instr.Imm 48L)) (Frame.epilogue Scheme.pacstack t))

(* --- Runtime ------------------------------------------------------------------- *)

let test_runtime_wellformed () =
  (* all runtime functions assemble into a valid program *)
  let p =
    Program.make ~entry:Runtime.setjmp_symbol Runtime.functions
  in
  Alcotest.(check bool) "five runtime functions" true (List.length p.Program.funcs = 5)

let test_runtime_entries () =
  Alcotest.(check string) "plain setjmp" Runtime.setjmp_symbol
    (Runtime.setjmp_entry Scheme.unprotected);
  Alcotest.(check string) "pacstack setjmp" Runtime.pacstack_setjmp_symbol
    (Runtime.setjmp_entry Scheme.pacstack);
  Alcotest.(check string) "pacstack longjmp" Runtime.pacstack_longjmp_symbol
    (Runtime.longjmp_entry Scheme.pacstack_nomask);
  Alcotest.(check string) "scs longjmp is plain" Runtime.longjmp_symbol
    (Runtime.longjmp_entry Scheme.shadow_stack)

let test_runtime_jmp_buf_size () =
  Alcotest.(check bool) "slots fit the buffer" true (Runtime.jmp_buf_bytes >= 112)

(* --- Registry ---------------------------------------------------------------- *)

module Oracle = Pacstack_fuzz.Oracle
module Driver = Pacstack_fuzz.Driver
module Fault = Pacstack_inject.Fault
module Engine = Pacstack_inject.Engine

let test_registry_count () =
  Alcotest.(check int) "all lists every registration" (Scheme.registered_count ())
    (List.length Scheme.all);
  Alcotest.(check int) "ten schemes ship" 10 (List.length Scheme.all);
  Alcotest.(check (list string)) "legacy six lead the table"
    (List.map Scheme.to_string Scheme.legacy)
    (List.map Scheme.to_string (List.filteri (fun i _ -> i < 6) Scheme.all))

let qcheck_roundtrip =
  QCheck_alcotest.to_alcotest
    (QCheck2.Test.make ~name:"of_string (to_string s) = Some s" ~count:200
       (QCheck2.Gen.oneofl Scheme.all) (fun s ->
         match Scheme.of_string (Scheme.to_string s) with
         | Some s' -> Scheme.equal s s'
         | None -> false))

let test_aliases_resolve () =
  List.iter
    (fun s ->
      let d = Scheme.descriptor s in
      List.iter
        (fun alias ->
          Alcotest.(check bool)
            (Printf.sprintf "alias %S -> %s" alias d.Scheme.name)
            true
            (match Scheme.of_string alias with
            | Some s' -> Scheme.equal s s'
            | None -> false))
        d.Scheme.aliases)
    Scheme.all

let test_duplicate_rejected () =
  let before = Scheme.registered_count () in
  let probe suffix aliases =
    { (Scheme.descriptor Scheme.pacstack) with Scheme.name = "dup-probe-" ^ suffix; aliases }
  in
  (* canonical name taken (case-insensitively) *)
  Alcotest.check_raises "duplicate name"
    (Scheme.Duplicate_scheme { name = "PACStack"; key = "pacstack" })
    (fun () ->
      ignore (Scheme.register { (probe "n" []) with Scheme.name = "PACStack" }));
  (* alias taken by another scheme's alias table *)
  Alcotest.check_raises "duplicate alias"
    (Scheme.Duplicate_scheme { name = "dup-probe-a"; key = "scs" })
    (fun () -> ignore (Scheme.register (probe "a" [ "fresh-alias"; "SCS" ])));
  Alcotest.(check int) "failed registration leaves the table untouched" before
    (Scheme.registered_count ());
  Alcotest.(check bool) "rejected keys stay unclaimed" true
    (Scheme.of_string "dup-probe-a" = None && Scheme.of_string "fresh-alias" = None)

(* The slot a scheme declares as its control surface, as an injection
   site the fault engine can strike. *)
let site_of_slot = function
  | Scheme.Return_slot -> Fault.Ret_slot
  | Scheme.Chain_slot -> Fault.Chain_spill
  | Scheme.Shadow_slot -> Fault.Shadow_slot

(* Every registered scheme — including any future eleventh — must make
   it through the whole evaluation pipeline: frame codegen, the
   differential fuzz oracle, and a fault at its own control slot. *)
let test_registry_conformance () =
  let campaign_seed = 0xC0FFEEL in
  List.iter
    (fun scheme ->
      let name = Scheme.to_string scheme in
      (* codegen over the trait corners used throughout this file *)
      List.iter
        (fun t ->
          let prologue = Frame.prologue scheme t in
          let epilogue = Frame.epilogue scheme t in
          Alcotest.(check bool)
            (name ^ ": epilogue returns")
            true
            (match List.rev epilogue with
            | (Instr.Ret _ | Instr.Retaa | Instr.Br _) :: _ -> true
            | _ -> false);
          ignore prologue)
        [ nonleaf; leaf; arrays ];
      (* one fuzz seed through the differential oracle, peephole off/on *)
      (match
         Oracle.check
           { Oracle.default_config with Oracle.schemes = [ scheme ] }
           (Driver.program_of_seed ~campaign_seed 0)
       with
      | Oracle.Agree runs ->
        Alcotest.(check bool) (name ^ ": oracle ran both variants") true (runs >= 2)
      | Oracle.Disagree _ -> Alcotest.failf "%s: oracle divergence on seed 0" name
      | Oracle.Skipped why -> Alcotest.failf "%s: oracle skipped seed 0: %s" name why);
      (* one injection at the scheme's declared control slot *)
      let target = site_of_slot (Scheme.descriptor scheme).Scheme.control_slot in
      let rec find_fault i =
        if i >= 512 then Alcotest.failf "%s: no fault hits %s in 512 derivations" name
            (Fault.site_to_string target)
        else if (Fault.derive ~campaign_seed i).Fault.site = target then i
        else find_fault (i + 1)
      in
      let fault = find_fault 0 in
      match
        Engine.run_fault
          { Engine.default_config with Engine.schemes = [ scheme ] }
          ~campaign_seed fault
      with
      | [ r ] ->
        Alcotest.(check bool) (name ^ ": fault ran at its control slot") true
          (Scheme.equal r.Engine.scheme scheme
          && r.Engine.spec.Fault.site = target)
      | rs -> Alcotest.failf "%s: expected one result, got %d" name (List.length rs))
    Scheme.all

let () =
  Alcotest.run "harden"
    [
      ( "scheme",
        [
          Alcotest.test_case "string roundtrip" `Quick test_scheme_roundtrip;
          Alcotest.test_case "aliases" `Quick test_scheme_aliases;
          Alcotest.test_case "chain register" `Quick test_chain_register_reservation;
        ] );
      ( "frame",
        [
          Alcotest.test_case "traits validation" `Quick test_traits_validation;
          Alcotest.test_case "protects_return" `Quick test_protects_return;
          Alcotest.test_case "frame overhead" `Quick test_frame_overhead;
          Alcotest.test_case "Listing 2 (nomask)" `Quick test_pacstack_nomask_listing2;
          Alcotest.test_case "Listing 3 (masked)" `Quick test_pacstack_masked_listing3;
          Alcotest.test_case "Listing 1 (branch protection)" `Quick
            test_branch_protection_listing1;
          Alcotest.test_case "shadow stack sequences" `Quick test_shadow_stack_sequences;
          Alcotest.test_case "canary sequences" `Quick test_canary_sequences;
          Alcotest.test_case "leaf frames minimal" `Quick test_leaf_frames_minimal;
          Alcotest.test_case "locals allocation" `Quick test_locals_allocation;
        ] );
      ( "runtime",
        [
          Alcotest.test_case "well-formed" `Quick test_runtime_wellformed;
          Alcotest.test_case "per-scheme entries" `Quick test_runtime_entries;
          Alcotest.test_case "jmp_buf size" `Quick test_runtime_jmp_buf_size;
        ] );
      ( "registry",
        [
          Alcotest.test_case "count pins coverage" `Quick test_registry_count;
          qcheck_roundtrip;
          Alcotest.test_case "aliases resolve" `Quick test_aliases_resolve;
          Alcotest.test_case "duplicates rejected" `Quick test_duplicate_rejected;
          Alcotest.test_case "every scheme end-to-end" `Quick test_registry_conformance;
        ] );
    ]
