(* Tests for the mini-C compiler: front-end validation, code-generation
   semantics checked by execution, and a cross-scheme equivalence property
   on randomly generated programs (hardening must never change program
   behaviour). *)

module Ast = Pacstack_minic.Ast
module B = Pacstack_minic.Build
module Compile = Pacstack_minic.Compile
module Scheme = Pacstack_harden.Scheme
module Machine = Pacstack_machine.Machine
module Trap = Pacstack_machine.Trap
module Frame = Pacstack_harden.Frame

let qtest name count gen prop = QCheck_alcotest.to_alcotest (QCheck2.Test.make ~name ~count gen prop)

let run_program ?(scheme = Scheme.unprotected) prog =
  let compiled = Compile.compile ~scheme prog in
  let m = Machine.load compiled in
  match Machine.run ~fuel:1_000_000 m with
  | Machine.Halted 0 -> Machine.output m
  | Machine.Halted c -> Alcotest.fail (Printf.sprintf "exit %d" c)
  | Machine.Faulted f -> Alcotest.fail (Trap.to_string f)
  | Machine.Out_of_fuel -> Alcotest.fail "fuel"

let expect ?scheme prog out = Alcotest.(check (list int64)) "output" out (run_program ?scheme prog)

let main ?locals body = Ast.program [ Ast.fdef "main" ?locals body ]

(* --- semantics -------------------------------------------------------------- *)

let test_arith () =
  expect
    (main
       B.[
         print ((i 2 + i 3) * i 4);
         print (i 10 - i 3);
         print (i 17 / i 5);
         print (i 12 land i 10);
         print (i 12 lor i 10);
         print (i 12 lxor i 10);
         print (i 3 lsl i 4);
         print (i 48 lsr i 4);
         ret (i 0);
       ])
    [ 20L; 7L; 3L; 8L; 14L; 6L; 48L; 3L ]

let test_locals_and_if () =
  expect
    (main ~locals:[ Ast.Scalar "x"; Ast.Scalar "y" ]
       B.[
         set "x" (i 5);
         set "y" (i 7);
         if_ (v "x" < v "y") [ print (i 1) ] [ print (i 2) ];
         if_ (v "x" == v "y") [ print (i 3) ] [ print (i 4) ];
         if_ (v "x" != v "y") [ print (i 5) ] [];
         ret (i 0);
       ])
    [ 1L; 4L; 5L ]

let test_while_and_for () =
  expect
    (main ~locals:[ Ast.Scalar "k"; Ast.Scalar "s" ]
       B.[
         set "s" (i 0);
         set "k" (i 0);
         while_ (v "k" < i 5) [ set "s" (v "s" + v "k"); set "k" (v "k" + i 1) ];
         print (v "s");
         for_ "k" ~from:(i 1) ~below:(i 4) [ set "s" (v "s" * v "k") ];
         print (v "s");
         ret (i 0);
       ])
    [ 10L; 60L ]

let test_arrays () =
  expect
    (main ~locals:[ Ast.Array ("a", 32); Ast.Scalar "k"; Ast.Scalar "s" ]
       B.[
         for_ "k" ~from:(i 0) ~below:(i 4) [ store (idx "a" (v "k" lsl i 3)) (v "k" * v "k") ];
         set "s" (i 0);
         for_ "k" ~from:(i 0) ~below:(i 4) [ set "s" (v "s" + load (idx "a" (v "k" lsl i 3))) ];
         print (v "s");
         store8 (idx "a" (i 1)) (i 300);
         print (load8 (idx "a" (i 1)));
         ret (i 0);
       ])
    [ 14L; 44L ]

let test_globals () =
  expect
    (Ast.program ~globals:[ ("g", 16) ]
       [
         Ast.fdef "main"
           B.[
             store (glob "g") (i 11);
             store (glob "g" + i 8) (i 31);
             print (load (glob "g") + load (glob "g" + i 8));
             ret (i 0);
           ];
       ])
    [ 42L ]

let test_calls () =
  expect
    (Ast.program
       [
         Ast.fdef "add" ~params:[ "a"; "b" ] B.[ ret (v "a" + v "b") ];
         Ast.fdef "main" B.[ print (call "add" [ i 40; i 2 ]); ret (i 0) ];
       ])
    [ 42L ]

let test_six_args () =
  expect
    (Ast.program
       [
         Ast.fdef "pack" ~params:[ "a"; "b"; "c"; "d"; "e"; "f" ]
           B.[ ret (v "a" + (v "b" * i 10) + (v "c" * i 100) + (v "d" * i 1000) + (v "e" * i 10000) + (v "f" * i 100000)) ];
         Ast.fdef "main"
           B.[ print (call "pack" [ i 1; i 2; i 3; i 4; i 5; i 6 ]); ret (i 0) ];
       ])
    [ 654321L ]

let test_nested_calls_spill () =
  (* calls nested inside argument lists force temporaries to be spilled
     around the inner calls *)
  expect
    (Ast.program
       [
         Ast.fdef "double" ~params:[ "x" ] B.[ ret (v "x" * i 2) ];
         Ast.fdef "add" ~params:[ "a"; "b" ] B.[ ret (v "a" + v "b") ];
         Ast.fdef "main"
           B.[
             print (call "add" [ call "double" [ i 3 ]; call "double" [ i 4 ] ]);
             print (call "double" [ i 100 ] + call "add" [ call "double" [ i 1 ]; i 5 ]);
             ret (i 0);
           ];
       ])
    [ 14L; 207L ]

let test_call_ptr () =
  expect
    (Ast.program
       [
         Ast.fdef "inc" ~params:[ "x" ] B.[ ret (v "x" + i 1) ];
         Ast.fdef "main" ~locals:[ Ast.Scalar "f" ]
           B.[
             set "f" (fn "inc");
             print (Ast.Call_ptr (v "f", [ i 9 ]));
             ret (i 0);
           ];
       ])
    [ 10L ]

let test_recursion () =
  expect
    (Ast.program
       [
         Ast.fdef "fact" ~params:[ "n" ] ~locals:[ Ast.Scalar "r" ]
           B.[
             if_ (v "n" <= i 1) [ ret (i 1) ] [];
             set "r" (call "fact" [ v "n" - i 1 ]);
             ret (v "n" * v "r");
           ];
         Ast.fdef "main" B.[ print (call "fact" [ i 10 ]); ret (i 0) ];
       ])
    [ 3628800L ]

let test_tail_call_all_schemes () =
  let prog =
    Ast.program
      [
        Ast.fdef "count" ~params:[ "n"; "acc" ]
          B.[
            if_ (v "n" == i 0) [ ret (v "acc") ] [];
            Ast.Tail_call ("count", [ v "n" - i 1; v "acc" + i 2 ]);
          ];
        Ast.fdef "main" B.[ print (call "count" [ i 50; i 0 ]); ret (i 0) ];
      ]
  in
  List.iter (fun scheme -> expect ~scheme prog [ 100L ]) Scheme.all

let test_setjmp_all_schemes () =
  let prog =
    Ast.program ~globals:[ ("jb", 128) ]
      [
        Ast.fdef "thrower" B.[ Ast.Longjmp (glob "jb", i 13); ret (i 99) ];
        Ast.fdef "main" ~locals:[ Ast.Scalar "r"; Ast.Scalar "x" ]
          B.[
            Ast.Setjmp ("r", glob "jb");
            if_ (v "r" != i 0) [ print (v "r"); ret (i 0) ] [];
            set "x" (call "thrower" []);
            print (v "x");
            ret (i 0);
          ];
      ]
  in
  List.iter (fun scheme -> expect ~scheme prog [ 13L ]) Scheme.all

let test_block () =
  expect (main B.[ Ast.Block [ print (i 1); Ast.Block [ print (i 2) ] ]; ret (i 0) ]) [ 1L; 2L ]

(* --- front-end validation ------------------------------------------------------ *)

let expect_error f =
  match f () with
  | exception Compile.Error _ -> ()
  | _ -> Alcotest.fail "expected Compile.Error"

let test_unknown_variable () =
  expect_error (fun () -> Compile.compile ~scheme:Scheme.unprotected (main B.[ ret (v "nope") ]))

let test_duplicate_variable () =
  expect_error (fun () ->
      Compile.compile ~scheme:Scheme.unprotected
        (main ~locals:[ Ast.Scalar "x"; Ast.Scalar "x" ] B.[ ret (i 0) ]))

let test_too_many_args () =
  expect_error (fun () ->
      Compile.compile ~scheme:Scheme.unprotected
        (Ast.program
           [
             Ast.fdef "f" ~params:[ "a" ] B.[ ret (v "a") ];
             Ast.fdef "main" B.[ ret (call "f" [ i 1; i 2; i 3; i 4; i 5; i 6; i 7 ]) ];
           ]))

let test_expression_too_deep () =
  let rec deep n = if n = 0 then B.i 1 else B.( + ) (deep (n - 1)) (deep (n - 1)) in
  expect_error (fun () ->
      Compile.compile ~scheme:Scheme.unprotected (main B.[ ret (deep 8) ]))

let test_bad_array_size () =
  expect_error (fun () ->
      Compile.compile ~scheme:Scheme.unprotected
        (main ~locals:[ Ast.Array ("a", 0) ] B.[ ret (i 0) ]))

(* --- traits --------------------------------------------------------------------- *)

let test_function_traits () =
  let leaf = Ast.fdef "f" ~params:[ "x" ] B.[ ret (v "x" + i 1) ] in
  let t = Compile.function_traits leaf in
  Alcotest.(check bool) "leaf" true t.Frame.is_leaf;
  Alcotest.(check bool) "no arrays" false t.Frame.has_arrays;
  let caller = Ast.fdef "g" ~locals:[ Ast.Array ("buf", 24) ] B.[ ret (call "f" [ i 1 ]) ] in
  let t = Compile.function_traits caller in
  Alcotest.(check bool) "non-leaf" false t.Frame.is_leaf;
  Alcotest.(check bool) "arrays" true t.Frame.has_arrays;
  (* 24-byte array padded to 8-alignment, plus 48 spill bytes, 16-aligned *)
  Alcotest.(check int) "locals bytes" 80 t.Frame.locals_bytes

let test_tail_call_counts_as_call () =
  let f = Ast.fdef "f" ~params:[ "x" ] [ Ast.Tail_call ("f", [ B.(v "x") ]) ] in
  Alcotest.(check bool) "tail-caller not leaf" false (Compile.function_traits f).Frame.is_leaf

(* --- semantic checker --------------------------------------------------------------- *)

module Check = Pacstack_minic.Check

let string_contains s sub =
  let n = String.length sub in
  let rec go i = i + n <= String.length s && (String.sub s i n = sub || go (i + 1)) in
  n = 0 || go 0

let has_error diags needle =
  List.exists
    (fun d -> d.Check.severity = Check.Error && string_contains d.Check.message needle)
    diags

let test_check_arity () =
  let prog =
    Ast.program
      [
        Ast.fdef "f" ~params:[ "a"; "b" ] B.[ ret (v "a" + v "b") ];
        Ast.fdef "main" B.[ print (call "f" [ i 1 ]); ret (i 0) ];
      ]
  in
  Alcotest.(check bool) "arity error" true (has_error (Check.program prog) "expected 2");
  match Check.check_exn prog with
  | exception Compile.Error _ -> ()
  | _ -> Alcotest.fail "check_exn accepted bad arity"

let test_check_unreachable () =
  let prog = Ast.program [ Ast.fdef "main" B.[ ret (i 0); print (i 1) ] ] in
  let diags = Check.program prog in
  Alcotest.(check bool) "unreachable warning" true
    (List.exists (fun d -> d.Check.severity = Check.Warning) diags);
  Alcotest.(check int) "warnings are not errors" 0 (List.length (Check.errors prog))

let test_check_uninitialised () =
  let prog =
    Ast.program [ Ast.fdef "main" ~locals:[ Ast.Scalar "x" ] B.[ print (v "x"); ret (i 0) ] ]
  in
  Alcotest.(check bool) "uninitialised read warning" true
    (List.exists
       (fun d -> d.Check.severity = Check.Warning)
       (Check.program prog))

let test_check_duplicate_function () =
  let prog =
    Ast.program
      [ Ast.fdef "main" B.[ ret (i 0) ]; Ast.fdef "main" B.[ ret (i 1) ] ]
  in
  Alcotest.(check bool) "duplicate function" true
    (Check.errors prog <> [])

let test_check_clean_program () =
  let prog =
    Ast.program
      [
        Ast.fdef "f" ~params:[ "a" ] B.[ ret (v "a" + i 1) ];
        Ast.fdef "main" ~locals:[ Ast.Scalar "x" ]
          B.[ set "x" (call "f" [ i 1 ]); print (v "x"); ret (i 0) ];
      ]
  in
  Alcotest.(check int) "no diagnostics" 0 (List.length (Check.program prog))

(* --- exceptions (Try/Throw) ------------------------------------------------------- *)

let exn_prog =
  Ast.program
    [
      Ast.fdef "risky" ~params:[ "n" ]
        B.[
          if_ (v "n" > i 5) [ throw (v "n") ] [];
          ret (v "n" * i 2);
        ];
      Ast.fdef "middle" ~params:[ "n" ] ~locals:[ Ast.Scalar "t" ]
        B.[ set "t" (call "risky" [ v "n" ]); ret (v "t" + i 1) ];
      Ast.fdef "main"
        B.[
          try_
            [ print (call "middle" [ i 3 ]); print (call "middle" [ i 9 ]); print (i 999) ]
            "e"
            [ print (v "e" + i 100) ];
          ret (i 0);
        ];
    ]

let test_exceptions_all_schemes () =
  (* throw propagates across two frames into the handler, under every
     hardening scheme *)
  List.iter (fun scheme -> expect ~scheme exn_prog [ 7L; 109L ]) Scheme.all

let test_exceptions_nested_rethrow () =
  let prog =
    Ast.program
      [
        Ast.fdef "main"
          B.[
            try_
              [ try_ [ throw (i 42) ] "x" [ print (v "x"); throw (i 43) ]; print (i 888) ]
              "y"
              [ print (v "y") ];
            ret (i 0);
          ];
      ]
  in
  expect ~scheme:Scheme.pacstack prog [ 42L; 43L ]

let test_exceptions_uncaught () =
  let prog = Ast.program [ Ast.fdef "main" B.[ throw (i 7); ret (i 0) ] ] in
  let m = Machine.load (Compile.compile ~scheme:Scheme.pacstack prog) in
  match Machine.run ~fuel:100_000 m with
  | Machine.Halted c ->
    Alcotest.(check int) "uncaught exit code" Pacstack_minic.Exceptions.uncaught_exit_code c
  | _ -> Alcotest.fail "expected a halt"

let test_exceptions_throw_zero () =
  let prog =
    Ast.program
      [ Ast.fdef "main" B.[ try_ [ throw (i 0) ] "e" [ print (v "e") ]; ret (i 0) ] ]
  in
  (* longjmp semantics: a thrown 0 arrives as 1 *)
  expect ~scheme:Scheme.pacstack prog [ 1L ]

let test_exceptions_desugar_idempotent () =
  let once = Pacstack_minic.Exceptions.desugar exn_prog in
  let twice = Pacstack_minic.Exceptions.desugar once in
  Alcotest.(check int) "no further rewriting" (List.length once.Ast.fundefs)
    (List.length twice.Ast.fundefs)

(* --- peephole ----------------------------------------------------------------------- *)

module Peephole = Pacstack_minic.Peephole
module Program = Pacstack_isa.Program
module Instr = Pacstack_isa.Instr
module Reg = Pacstack_isa.Reg

let test_peephole_patterns () =
  let mem0 = { Instr.base = Reg.SP; offset = 8; index = Instr.Offset } in
  let f =
    Program.func "f"
      [
        Program.Ins (Instr.Mov (Reg.x 1, Instr.Reg (Reg.x 1)));
        Program.Ins (Instr.Add (Reg.x 2, Reg.x 2, Instr.Imm 0L));
        Program.Ins (Instr.Str (Reg.x 3, mem0));
        Program.Ins (Instr.Ldr (Reg.x 3, mem0));
        Program.Ins (Instr.B ".L0");
        Program.Lbl ".L0";
        Program.Ins (Instr.Ret Reg.lr);
      ]
  in
  let f' = Peephole.function_pass f in
  Alcotest.(check int) "four of six instructions removed" 2
    (List.length (Program.instructions f'));
  Alcotest.(check bool) "store kept" true
    (List.mem (Instr.Str (Reg.x 3, mem0)) (Program.instructions f'))

let test_peephole_preserves_semantics () =
  let out prog optimize =
    let compiled = Compile.compile ~scheme:Scheme.pacstack ~optimize prog in
    let m = Machine.load compiled in
    match Machine.run ~fuel:2_000_000 m with
    | Machine.Halted 0 -> Machine.output m
    | _ -> Alcotest.fail "run failed"
  in
  List.iter
    (fun prog ->
      Alcotest.(check (list int64)) "optimized output equal" (out prog false) (out prog true))
    [ exn_prog ]

(* Property form of semantics preservation: random whole programs from
   the fuzz generator (functions, arrays, indirect calls, setjmp,
   exceptions), compiled with and without the peephole under two
   schemes, must produce identical machine traces. *)
let prop_peephole_preserves =
  let module Oracle = Pacstack_fuzz.Oracle in
  let module Trace = Pacstack_fuzz.Trace in
  qtest "peephole preserves random-program traces" 30
    QCheck2.Gen.(int_range 0 100_000)
    (fun seed ->
      let prog = Pacstack_fuzz.Driver.program_of_seed ~campaign_seed:23L seed in
      List.for_all
        (fun scheme ->
          Trace.equal
            (Oracle.machine_trace Oracle.default_config ~scheme ~optimize:false prog)
            (Oracle.machine_trace Oracle.default_config ~scheme ~optimize:true prog))
        [ Scheme.unprotected; Scheme.pacstack ])

let test_peephole_reduces () =
  let prog =
    Ast.program
      [
        Ast.fdef "main" ~locals:[ Ast.Scalar "x" ]
          B.[ set "x" (i 5); print (v "x"); ret (i 0) ];
      ]
  in
  let plain = Compile.compile ~scheme:Scheme.unprotected prog in
  let opt = Compile.compile ~scheme:Scheme.unprotected ~optimize:true prog in
  Alcotest.(check bool) "strictly fewer instructions" true
    (Peephole.removed_count plain opt > 0)

(* --- separate compilation + linking --------------------------------------------------- *)

let test_separate_compilation () =
  let lib =
    Ast.program ~main:"lib_add" [ Ast.fdef "lib_add" ~params:[ "a"; "b" ] B.[ ret (v "a" + v "b") ] ]
  in
  let app =
    Ast.program [ Ast.fdef "main" B.[ print (call "lib_add" [ i 40; i 2 ]); ret (i 0) ] ]
  in
  (* app under PACStack, library unprotected — two units plus the runtime *)
  let units =
    [
      Compile.compile_unit ~scheme:Scheme.pacstack app;
      Compile.compile_unit ~scheme:Scheme.unprotected lib;
      Compile.runtime_unit ();
    ]
  in
  (* roundtrip every unit through the binary object format first *)
  let units = List.map (fun u -> Pacstack_isa.Objfile.read (Pacstack_isa.Objfile.write u)) units in
  let program = Pacstack_isa.Link.link units in
  let m = Machine.load program in
  match Machine.run ~fuel:100_000 m with
  | Machine.Halted 0 -> Alcotest.(check (list int64)) "output" [ 42L ] (Machine.output m)
  | Machine.Halted c -> Alcotest.fail (Printf.sprintf "exit %d" c)
  | Machine.Faulted f -> Alcotest.fail (Trap.to_string f)
  | Machine.Out_of_fuel -> Alcotest.fail "fuel"

let test_undefined_reference_refused () =
  let app = Ast.program [ Ast.fdef "main" B.[ print (call "nowhere" [ i 1 ]); ret (i 0) ] ] in
  let u = Compile.compile_unit ~scheme:Scheme.unprotected app in
  match Pacstack_isa.Link.link [ u; Compile.runtime_unit () ] with
  | exception Pacstack_isa.Link.Link_error (Pacstack_isa.Link.Undefined_symbols [ "nowhere" ]) ->
    ()
  | _ -> Alcotest.fail "expected undefined-symbol error"

(* --- concrete syntax --------------------------------------------------------------- *)

module Parse = Pacstack_minic.Parse

let parse_run ?(scheme = Scheme.pacstack) src = run_program ~scheme (Parse.program src)

let test_parse_basics () =
  Alcotest.(check (list int64)) "arithmetic and precedence"
    [ 14L; 2L; 6L; 3L ]
    (parse_run
       {|fn main() {
           print(2 + 3 * 4);
           print(10 / 4);
           print(1 << 3 >> 1 ^ 2);
           print(7 & 3 | 0);
           return 0;
         }|});
  Alcotest.(check (list int64)) "unary minus" [ -5L ]
    (parse_run "fn main() { print(0 - 2 - 3); return 0; }")

let test_parse_control_flow () =
  Alcotest.(check (list int64)) "if/else, while, for"
    [ 1L; 10L; 24L ]
    (parse_run
       {|fn main() {
           var k; var s;
           if (3 < 4) { print(1); } else { print(2); }
           s = 0; k = 0;
           while (k < 5) { s = s + k; k = k + 1; }
           print(s);
           s = 1;
           for (k = 2; k <= 4; k = k + 1) { s = s * k; }
           print(s);
           return 0;
         }|})

let test_parse_memory () =
  Alcotest.(check (list int64)) "arrays, globals, bytes, deref"
    [ 11L; 22L; 200L; 11L ]
    (parse_run
       {|global g[16];
         fn main() {
           array a[16]; var p;
           a[0] = 11; g[1] = 22;
           print(a[0]); print(g[1]);
           store8(&a + 8, 200);
           print(load8(&a + 8));
           p = &a;
           print(*p);
           return 0;
         }|})

let test_parse_functions () =
  Alcotest.(check (list int64)) "calls, tail calls, fn pointers, exceptions"
    [ 21L; 15L; 4L; 1004L ]
    (parse_run
       {|fn gcd(a, b) {
           var r;
           if (b == 0) { return a; }
           r = a - a / b * b;
           tail gcd(b, r);
         }
         fn add(a, b) { return a + b; }
         fn risky(n) { if (n > 3) { throw n + 1000; } return n * 2; }
         fn main() {
           print(gcd(1071, 462));
           print(call(&add, 7, 8));
           try { print(risky(2)); print(risky(4)); } catch (e) { print(e); }
           return 0;
         }|})

let test_parse_setjmp () =
  Alcotest.(check (list int64)) "setjmp/longjmp surface syntax" [ 5L ]
    (parse_run
       {|global jb[128];
         fn deep(n) { if (n == 0) { longjmp(&jb, 5); } deep(n - 1); return 0; }
         fn main() {
           var r; var x;
           r = setjmp(&jb);
           if (r != 0) { print(r); return 0; }
           x = deep(3);
           return 1;
         }|})

let test_parse_errors () =
  let reject src =
    match Parse.program src with
    | exception Parse.Error _ -> ()
    | _ -> Alcotest.fail ("parsed invalid program: " ^ src)
  in
  reject "fn main() { return 0 }";  (* missing semicolon *)
  reject "fn main() { print(1; return 0; }";
  reject "fn main() { if 1 < 2 { } return 0; }";  (* missing parens *)
  reject "fn main() { var x; var x; return 0; }";
  reject "fn f() { return 0; }";  (* no main *)
  reject "fn main() { x = @; }";
  reject "fn main() { try { } return 0; }";  (* try without catch *)
  reject "fn main() { hook(nope); return 0; }"

let test_parse_error_line () =
  match Parse.program "fn main() {
  var x;
  x = ;
  return 0;
}" with
  | exception Parse.Error (3, _) -> ()
  | exception Parse.Error (l, m) -> Alcotest.fail (Printf.sprintf "wrong line %d: %s" l m)
  | _ -> Alcotest.fail "expected parse error"

let test_parse_comments_and_hex () =
  Alcotest.(check (list int64)) "comments and hex literals" [ 255L ]
    (parse_run "// leading comment
fn main() { print(0xff); // trailing
 return 0; }")

(* --- cross-scheme equivalence on random programs -------------------------------- *)

let gen_program =
  let open QCheck2.Gen in
  (* random straight-line arithmetic over three locals plus helper calls *)
  let expr_leaf = oneof [ map B.i (int_range 0 1000); oneofl [ B.v "x"; B.v "y"; B.v "z" ] ] in
  let op = oneofl [ B.( + ); B.( - ); B.( * ); B.( / ); B.( land ); B.( lxor ) ] in
  let expr1 = map3 (fun f a b -> f a b) op expr_leaf expr_leaf in
  let expr =
    oneof [ expr_leaf; expr1; map (fun e -> B.call "mangle" [ e ]) expr1 ]
  in
  let stmt =
    oneof
      [
        map (fun e -> B.set "x" e) expr;
        map (fun e -> B.set "y" e) expr;
        map (fun e -> B.set "z" e) expr;
        map2 (fun e1 e2 -> B.if_ B.(v "x" < v "y") [ B.set "z" e1 ] [ B.set "z" e2 ]) expr expr;
        map (fun e -> B.print e) expr;
      ]
  in
  let body = list_size (int_range 3 15) stmt in
  map
    (fun body ->
      Ast.program
        [
          Ast.fdef "mangle" ~params:[ "v" ] B.[ ret ((v "v" * i 7) lxor (v "v" lsr i 3)) ];
          Ast.fdef "main"
            ~locals:[ Ast.Scalar "x"; Ast.Scalar "y"; Ast.Scalar "z" ]
            (B.[ set "x" (i 3); set "y" (i 17); set "z" (i 0) ]
            @ body
            @ B.[ print (v "x" + v "y" + v "z"); ret (i 0) ]);
        ])
    body

(* random acyclic call graphs: up to 4 helper functions, each possibly
   calling strictly-later helpers, all invoked from main *)
let gen_callgraph_program =
  let open QCheck2.Gen in
  let n_helpers = int_range 1 4 in
  let body_op = oneofl [ Ast.Add; Ast.Sub; Ast.Mul; Ast.Xor; Ast.Shr ] in
  let helper_body idx callees =
    map2
      (fun op target ->
        let base = Ast.Binop (op, Ast.Var "x", Ast.Int (Int64.of_int (3 + idx))) in
        let e =
          match target with
          | Some callee -> Ast.Binop (Ast.Add, base, Ast.Call (callee, [ Ast.Var "x" ]))
          | None -> base
        in
        [ Ast.Return (Some e) ])
      body_op
      (if callees = [] then return None else option (oneofl callees))
  in
  bind n_helpers (fun n ->
      let names = List.init n (fun i -> Printf.sprintf "h%d" i) in
      let rec build i acc =
        if i >= n then return (List.rev acc)
        else
          let callees = List.filteri (fun j _ -> j > i) names in
          bind (helper_body i callees) (fun body ->
              build (i + 1) (Ast.fdef (List.nth names i) ~params:[ "x" ] body :: acc))
      in
      bind (build 0 []) (fun helpers ->
          map
            (fun seeds ->
              let calls =
                List.concat_map
                  (fun seed ->
                    List.map
                      (fun h -> Ast.Print (Ast.Call (h, [ Ast.Int (Int64.of_int seed) ])))
                      names)
                  seeds
              in
              Ast.program (helpers @ [ Ast.fdef "main" (calls @ [ Ast.Return (Some (Ast.Int 0L)) ]) ]))
            (list_size (int_range 1 3) (int_range 0 100))))

let run_all_schemes prog =
  List.map
    (fun scheme ->
      let m = Machine.load (Compile.compile ~scheme prog) in
      match Machine.run ~fuel:2_000_000 m with
      | Machine.Halted 0 -> Machine.output m
      | _ -> [])
    Scheme.all

let prop_callgraphs_equivalent =
  qtest "random call graphs agree across schemes" 40 gen_callgraph_program (fun prog ->
      match run_all_schemes prog with
      | [] -> false
      | first :: rest -> first <> [] && List.for_all (( = ) first) rest)

let prop_schemes_equivalent =
  qtest "all schemes compute identical outputs" 60 gen_program (fun prog ->
      let outputs =
        List.map
          (fun scheme ->
            let m = Machine.load (Compile.compile ~scheme prog) in
            match Machine.run ~fuel:2_000_000 m with
            | Machine.Halted 0 -> Machine.output m
            | _ -> [])
          Scheme.all
      in
      match outputs with
      | [] -> false
      | first :: rest -> first <> [] && List.for_all (( = ) first) rest)

let () =
  Alcotest.run "minic"
    [
      ( "semantics",
        [
          Alcotest.test_case "arithmetic" `Quick test_arith;
          Alcotest.test_case "locals and if" `Quick test_locals_and_if;
          Alcotest.test_case "while and for" `Quick test_while_and_for;
          Alcotest.test_case "arrays" `Quick test_arrays;
          Alcotest.test_case "globals" `Quick test_globals;
          Alcotest.test_case "calls" `Quick test_calls;
          Alcotest.test_case "six arguments" `Quick test_six_args;
          Alcotest.test_case "nested call spilling" `Quick test_nested_calls_spill;
          Alcotest.test_case "indirect calls" `Quick test_call_ptr;
          Alcotest.test_case "recursion" `Quick test_recursion;
          Alcotest.test_case "tail calls, all schemes" `Quick test_tail_call_all_schemes;
          Alcotest.test_case "setjmp/longjmp, all schemes" `Quick test_setjmp_all_schemes;
          Alcotest.test_case "blocks" `Quick test_block;
        ] );
      ( "validation",
        [
          Alcotest.test_case "unknown variable" `Quick test_unknown_variable;
          Alcotest.test_case "duplicate variable" `Quick test_duplicate_variable;
          Alcotest.test_case "too many arguments" `Quick test_too_many_args;
          Alcotest.test_case "expression too deep" `Quick test_expression_too_deep;
          Alcotest.test_case "bad array size" `Quick test_bad_array_size;
        ] );
      ( "traits",
        [
          Alcotest.test_case "traits" `Quick test_function_traits;
          Alcotest.test_case "tail call is a call" `Quick test_tail_call_counts_as_call;
        ] );
      ( "parser",
        [
          Alcotest.test_case "basics" `Quick test_parse_basics;
          Alcotest.test_case "control flow" `Quick test_parse_control_flow;
          Alcotest.test_case "memory" `Quick test_parse_memory;
          Alcotest.test_case "functions" `Quick test_parse_functions;
          Alcotest.test_case "setjmp" `Quick test_parse_setjmp;
          Alcotest.test_case "rejects invalid" `Quick test_parse_errors;
          Alcotest.test_case "error line numbers" `Quick test_parse_error_line;
          Alcotest.test_case "comments and hex" `Quick test_parse_comments_and_hex;
        ] );
      ( "checker",
        [
          Alcotest.test_case "arity" `Quick test_check_arity;
          Alcotest.test_case "unreachable" `Quick test_check_unreachable;
          Alcotest.test_case "uninitialised" `Quick test_check_uninitialised;
          Alcotest.test_case "duplicate function" `Quick test_check_duplicate_function;
          Alcotest.test_case "clean program" `Quick test_check_clean_program;
        ] );
      ( "exceptions",
        [
          Alcotest.test_case "all schemes" `Quick test_exceptions_all_schemes;
          Alcotest.test_case "nested rethrow" `Quick test_exceptions_nested_rethrow;
          Alcotest.test_case "uncaught" `Quick test_exceptions_uncaught;
          Alcotest.test_case "throw zero" `Quick test_exceptions_throw_zero;
          Alcotest.test_case "desugar idempotent" `Quick test_exceptions_desugar_idempotent;
        ] );
      ( "peephole",
        [
          Alcotest.test_case "patterns" `Quick test_peephole_patterns;
          Alcotest.test_case "semantics preserved" `Quick test_peephole_preserves_semantics;
          prop_peephole_preserves;
          Alcotest.test_case "reduces code" `Quick test_peephole_reduces;
        ] );
      ( "separate-compilation",
        [
          Alcotest.test_case "link and run" `Quick test_separate_compilation;
          Alcotest.test_case "undefined refused" `Quick test_undefined_reference_refused;
        ] );
      ("equivalence", [ prop_schemes_equivalent; prop_callgraphs_equivalent ]);
    ]
